//! Synthetic Montage workflow generator (paper Figure 1a, Table 2).
//!
//! Montage builds an astronomy mosaic from input sky images. The paper's
//! use cases are 6x6, 12x12 and 16x16 degree mosaics of the M17 galaxy:
//!
//! | degree | inputs | input size | runtime data |
//! |--------|--------|------------|--------------|
//! | 6x6    | 2488   | 4.9 GB     | ~50 GB       |
//! | 12x12  | ~9952  | 20 GB      | ~250 GB      |
//! | 16x16  | ~17696 | 34 GB      | ~450 GB      |
//!
//! Stage structure and per-task I/O follow §4.2.1: "mProjectPP and
//! mBackground read one input file of approximately 2MB and output one
//! file of 4MB and 2MB, respectively. mDiffFit reads two input files of
//! 4MB and outputs one file of 2MB." mProjectPP additionally writes the
//! area file Montage produces alongside each projection (which is what
//! brings the totals to Table 2's runtime-data figures), and the
//! aggregation stages (mConcatFit, mBgModel, mImgTbl, mAdd) combine
//! results globally — the tasks that break AMFS' locality model.
//!
//! ## Bundling
//!
//! Large parallel stages can be **bundled** for simulation speed:
//! `max_tasks_per_stage` caps task records by merging `B` consecutive
//! images into one record with summed CPU and bytes. Per-core work and
//! total bytes are preserved exactly; only scheduling granularity
//! coarsens. Aggregation stages are never bundled.

use memfs_simcore::units::{KB, MB};

use crate::workflow::{FileId, Workflow};

/// Input image size (~2 MB).
pub const INPUT_BYTES: u64 = 2 * MB;
/// Projected image written by mProjectPP (4 MB).
pub const PROJ_BYTES: u64 = 4 * MB;
/// Area file written alongside each projection (2 MB).
pub const AREA_BYTES: u64 = 2 * MB;
/// Difference image written by mDiffFit. The paper quotes ~2 MB per
/// output file; we use the value that reproduces Table 2's runtime-data
/// totals (~50/250/450 GB) with the documented stage structure.
pub const DIFF_BYTES: u64 = 3_200_000;
/// Background-corrected image written by mBackground (2 MB).
pub const BG_BYTES: u64 = 2 * MB;
/// Small fit-parameter file per mDiffFit.
pub const FIT_BYTES: u64 = 10 * KB;
/// Tiny FITS header record per projection (what mImgTbl actually reads).
pub const HDR_BYTES: u64 = 2 * KB;

/// mProjectPP CPU seconds per image ("mProjectPP is CPU-bound", §4.2.2).
pub const PROJ_CPU: f64 = 2.0;
/// mDiffFit CPU seconds per diff (I/O-bound stage).
pub const DIFF_CPU: f64 = 0.3;
/// mBackground CPU seconds per image (I/O-bound stage).
pub const BG_CPU: f64 = 0.4;

/// Number of input images for a `d x d` degree mosaic, anchored at the
/// paper's 2488 images for 6x6 and scaled with sky area.
pub fn n_inputs(degree: u32) -> usize {
    (2488.0 * (degree as f64 / 6.0).powi(2)).round() as usize
}

/// Overlapping image pairs diffed per image; grows mildly with mosaic
/// size (more overlaps at the larger scales).
pub fn diffs_per_image(degree: u32) -> f64 {
    3.0 + (degree as f64 - 6.0) / 6.0
}

/// Generate the Montage workflow for a `degree x degree` mosaic.
///
/// `max_tasks_per_stage` bounds simulated task records per parallel stage
/// (0 = one record per image/diff, i.e. unbundled).
pub fn montage(degree: u32, max_tasks_per_stage: usize) -> Workflow {
    let n = n_inputs(degree);
    let n_diffs = (n as f64 * diffs_per_image(degree)).round() as usize;
    // Images merged per record.
    let bundle = if max_tasks_per_stage == 0 {
        1
    } else {
        n.div_ceil(max_tasks_per_stage)
    };
    let mut wf = Workflow::new(format!("Montage {degree}x{degree}"));

    // Staged-in input images, one record per bundle of `bundle` images.
    let n_records = n.div_ceil(bundle);
    let images_in = |r: usize| -> u64 {
        if r + 1 < n_records {
            bundle as u64
        } else {
            (n - (n_records - 1) * bundle) as u64
        }
    };
    let inputs: Vec<FileId> = (0..n_records)
        .map(|r| wf.add_input(format!("/in/img_{r:05}.fits"), images_in(r) * INPUT_BYTES))
        .collect();

    // mProjectPP: per record, read the inputs, write projection + area +
    // a tiny header record (mImgTbl scans headers, not whole images).
    let mut proj_files: Vec<FileId> = Vec::with_capacity(n_records);
    let mut area_files: Vec<FileId> = Vec::with_capacity(n_records);
    let mut hdr_files: Vec<FileId> = Vec::with_capacity(n_records);
    for (r, &input) in inputs.iter().enumerate() {
        let k = images_in(r);
        let t = wf.add_task(
            "mProjectPP",
            vec![input],
            vec![
                (format!("/proj/img_{r:05}.fits"), k * PROJ_BYTES),
                (format!("/proj/area_{r:05}.fits"), k * AREA_BYTES),
                (format!("/proj/hdr_{r:05}.hdr"), k * HDR_BYTES),
            ],
            k as f64 * PROJ_CPU,
        );
        proj_files.push(wf.tasks[t.0].outputs[0]);
        area_files.push(wf.tasks[t.0].outputs[1]);
        hdr_files.push(wf.tasks[t.0].outputs[2]);
    }

    // mImgTbl: global metadata aggregation over all projection headers.
    let t_imgtbl = wf.add_task(
        "mImgTbl",
        hdr_files,
        vec![("/meta/images.tbl".into(), 10 * MB)],
        5.0,
    );
    let imgtbl = wf.tasks[t_imgtbl.0].outputs[0];

    // mDiffFit: each record carries `bundle` diffs and reads two
    // projection records (2 x bundle projected images' worth of bytes —
    // the bundled equivalent of "reads two input files of 4MB").
    let n_diff_records = n_diffs.div_ceil(bundle);
    let mut fit_files: Vec<FileId> = Vec::with_capacity(n_diff_records);
    for r in 0..n_diff_records {
        let k = if r + 1 < n_diff_records {
            bundle as u64
        } else {
            (n_diffs - (n_diff_records - 1) * bundle) as u64
        };
        let a = proj_files[r % proj_files.len()];
        let b = proj_files[(r + 1) % proj_files.len()];
        let t = wf.add_task(
            "mDiffFit",
            vec![a, b],
            vec![
                (format!("/diff/diff_{r:05}.fits"), k * DIFF_BYTES),
                (format!("/diff/fit_{r:05}.txt"), k * FIT_BYTES),
            ],
            k as f64 * DIFF_CPU,
        );
        fit_files.push(wf.tasks[t.0].outputs[1]);
    }

    // mConcatFit + mBgModel: global aggregations on the fit parameters.
    let t_concat = wf.add_task(
        "mConcatFit",
        fit_files,
        vec![("/meta/fits.tbl".into(), 50 * MB)],
        5.0,
    );
    let concat = wf.tasks[t_concat.0].outputs[0];
    let t_bgmodel = wf.add_task(
        "mBgModel",
        vec![concat, imgtbl],
        vec![("/meta/corrections.tbl".into(), 25 * MB)],
        10.0,
    );
    let corrections = wf.tasks[t_bgmodel.0].outputs[0];

    // mBackground: per projection record, reads the projection + the
    // shared corrections table (the two-input pattern that defeats
    // single-file locality) and writes the corrected images.
    let mut bg_files: Vec<FileId> = Vec::with_capacity(n_records);
    for (r, &proj) in proj_files.iter().enumerate() {
        let k = images_in(r);
        let t = wf.add_task(
            "mBackground",
            vec![proj, corrections],
            vec![(format!("/bg/bg_{r:05}.fits"), k * BG_BYTES)],
            k as f64 * BG_CPU,
        );
        bg_files.push(wf.tasks[t.0].outputs[0]);
    }

    // mAdd: the final global aggregation. It pulls every background-
    // corrected image to one node — the data-pull that, together with the
    // staged-in inputs, turns the AMFS scheduler node into Table 3's
    // hotspot — and streams the mosaic directly to permanent storage
    // ("the output must be staged out to permanent storage", §2), so the
    // mosaic itself does not occupy runtime-FS memory.
    let _ = area_files;
    let mut add_inputs = bg_files;
    add_inputs.push(imgtbl);
    wf.add_task("mAdd", add_inputs, Vec::new(), 30.0);

    wf.validate().expect("montage generator produced a bad DAG");
    wf
}

#[cfg(test)]
mod tests {
    use super::*;
    use memfs_simcore::units::GB;

    #[test]
    fn input_counts_match_table2() {
        assert_eq!(n_inputs(6), 2488);
        assert!((9900..=10000).contains(&n_inputs(12)));
        assert!((17600..=17800).contains(&n_inputs(16)));
    }

    #[test]
    fn montage6_sizes_match_table2() {
        let wf = montage(6, 0);
        let input_gb = wf.input_bytes() as f64 / GB as f64;
        let runtime_gb = wf.runtime_bytes() as f64 / GB as f64;
        assert!((4.5..=5.5).contains(&input_gb), "input {input_gb} GB");
        assert!(
            (42.0..=58.0).contains(&runtime_gb),
            "runtime {runtime_gb} GB vs paper's ~50 GB"
        );
    }

    #[test]
    fn montage12_runtime_near_250gb() {
        let wf = montage(12, 512);
        let runtime_gb = wf.runtime_bytes() as f64 / GB as f64;
        assert!(
            (200.0..=280.0).contains(&runtime_gb),
            "runtime {runtime_gb} GB vs paper's ~250 GB"
        );
        let input_gb = wf.input_bytes() as f64 / GB as f64;
        assert!((18.0..=22.0).contains(&input_gb), "input {input_gb} GB");
    }

    #[test]
    fn montage16_runtime_near_450gb() {
        let wf = montage(16, 512);
        let runtime_gb = wf.runtime_bytes() as f64 / GB as f64;
        assert!(
            (380.0..=500.0).contains(&runtime_gb),
            "runtime {runtime_gb} GB vs paper's ~450 GB"
        );
    }

    #[test]
    fn stage_structure_matches_figure1a() {
        let wf = montage(6, 128);
        let stages: Vec<String> = wf.stage_stats().iter().map(|s| s.stage.clone()).collect();
        assert_eq!(
            stages,
            vec![
                "mProjectPP",
                "mImgTbl",
                "mDiffFit",
                "mConcatFit",
                "mBgModel",
                "mBackground",
                "mAdd"
            ]
        );
    }

    #[test]
    fn bundling_preserves_totals_and_work() {
        let full = montage(6, 0);
        let bundled = montage(6, 128);
        assert_eq!(full.runtime_bytes(), bundled.runtime_bytes());
        assert_eq!(full.input_bytes(), bundled.input_bytes());
        assert!(bundled.tasks.len() < full.tasks.len() / 4);
        let cpu = |wf: &Workflow| -> f64 { wf.tasks.iter().map(|t| t.cpu_secs).sum() };
        assert!((cpu(&full) - cpu(&bundled)).abs() < 1e-6);
    }

    #[test]
    fn diff_tasks_read_two_files() {
        let wf = montage(6, 0);
        for t in wf.tasks.iter().filter(|t| t.stage == "mDiffFit") {
            assert_eq!(t.inputs.len(), 2);
        }
    }

    #[test]
    fn background_reads_shared_corrections() {
        let wf = montage(6, 0);
        let corrections = wf.file_by_name("/meta/corrections.tbl").unwrap();
        let bg: Vec<_> = wf
            .tasks
            .iter()
            .filter(|t| t.stage == "mBackground")
            .collect();
        assert_eq!(bg.len(), 2488);
        assert!(bg.iter().all(|t| t.inputs.contains(&corrections)));
    }

    #[test]
    fn aggregations_have_many_inputs() {
        let wf = montage(6, 256);
        let concat = wf.tasks.iter().find(|t| t.stage == "mConcatFit").unwrap();
        let add = wf.tasks.iter().find(|t| t.stage == "mAdd").unwrap();
        assert!(concat.inputs.len() >= crate::sched::AGGREGATION_INPUTS);
        assert!(add.inputs.len() >= crate::sched::AGGREGATION_INPUTS);
    }
}
