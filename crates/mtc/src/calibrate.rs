//! Calibration constants for the simulation and the analytic envelope.
//!
//! The paper reports end-to-end numbers on real hardware; our substrate is
//! a simulator, so a small set of software-path constants must be chosen.
//! Each constant below is tied to a paper observation (quoted) and the
//! value is fitted so the corresponding headline number lands in the
//! paper's range — EXPERIMENTS.md records the residuals. None of the
//! constants differ between MemFS and AMFS except where the paper
//! explicitly attributes a cost to one system's design (local writes,
//! locality-aware scheduling, multicast, replication).

/// memcached executes `set` slower than `get` ("Memcached is reported to
/// perform better for get rather than set", §4.1).
pub const SET_COST_FACTOR: f64 = 1.5;

/// All-to-all efficiency of striped *writes* relative to the NIC line
/// rate (TCP incast and memcached server CPU under N-to-N traffic).
/// Fitted to Table 1: MemFS write 27.4 GB/s over 64 IPoIB nodes =>
/// ~428 MB/s per node on a ~1 GB/s NIC.
pub const A2A_WRITE_EFF: f64 = 0.45;

/// All-to-all efficiency of striped *reads* for small/medium files.
/// Fitted to Table 1: MemFS 1-1 read 29.7 GB/s over 64 nodes.
pub const A2A_READ_EFF: f64 = 0.5;

/// Read efficiency for large (>= 8 MiB) files: "our prefetching mechanism
/// fetches more data from the network ... which puts more pressure on the
/// Memcached servers and also on the network layers of the operating
/// system" (§4.1, the 128 MB dip of Figures 4c/5c).
pub const A2A_READ_EFF_LARGE: f64 = 0.35;

/// File size above which the large-read efficiency applies (the per-file
/// read cache is 8 MB; beyond it prefetch pressure builds).
pub const LARGE_READ_BYTES: u64 = 8 << 20;

/// iozone record size used by the envelope throughput metrics (derived
/// from the paper's bandwidth/throughput ratios at 1 MB and 128 MB:
/// both give ~128 KB per read()/write() call).
pub const ENVELOPE_RECORD_BYTES: u64 = 128 << 10;

/// Number of metadata round trips in a MemFS file *write* (create `set`,
/// directory `append`, close `set` — §3.2.4).
pub const MEMFS_WRITE_META_OPS: f64 = 3.0;

/// AMFS per-file fixed cost on the write path (AMFS Shell bookkeeping +
/// its FUSE layer). Fitted to Table 1: AMFS write 16.9 GB/s at 1 MB files.
pub const AMFS_WRITE_OVERHEAD_SECS: f64 = 1.6e-3;

/// AMFS per-file fixed cost on the read path — larger than a pure local
/// read because "the locality-aware scheduling algorithm of AMFS is
/// slower than the locality-agnostic scheme used for MemFS" (§4.1).
pub const AMFS_READ_OVERHEAD_SECS: f64 = 0.5e-3;

/// AMFS whole-file local streaming bandwidth through its FUSE stack.
/// Fitted to Table 1's AMFS 1-1 read / write columns (~400 MB/s/node).
pub const AMFS_LOCAL_BW: f64 = 400e6;

/// AMFS remote (locality-miss) read bandwidth as a fraction of the NIC:
/// whole-file request/response without striping or pipelining. Fitted to
/// Table 1: remote 1-1 read 6.4 GB/s over 64 IPoIB nodes (~100 MB/s per
/// node) and 950 MB/s over 1 GbE.
pub const AMFS_REMOTE_BW_FRACTION: f64 = 0.1;

/// Per-round staging overhead of AMFS Shell's software multicast. Fitted
/// to Table 1: N-1 read 1.2 GB/s at 64 nodes / 1 MB files (6 rounds).
pub const AMFS_MC_ROUND_OVERHEAD_SECS: f64 = 7e-3;

/// iozone re-read amortization for N-1 reads of files that fit the 8 MB
/// per-file cache (the benchmark re-reads; warm passes come from the
/// local cache). Fitted to Table 1: MemFS N-1 read 16.1 GB/s at 1 MB.
pub const N1_REREAD_PASSES: f64 = 8.0;

/// MemFS metadata *create* CPU cost per operation beyond the two
/// round-trips (mdtest + FUSE path). Fitted to Table 1: 22 k create/s at
/// 64 nodes.
pub const MEMFS_CREATE_CPU_SECS: f64 = 2.6e-3;

/// MemFS metadata *open* cost (single `get` + FUSE path). Fitted to
/// Table 1: 61 k open/s at 64 nodes.
pub const MEMFS_OPEN_CPU_SECS: f64 = 0.9e-3;

/// AMFS local metadata open cost ("all queries are local"). Fitted to
/// Table 1: 221 k open/s at 64 nodes.
pub const AMFS_OPEN_CPU_SECS: f64 = 0.25e-3;

/// AMFS per-client create issue rate cost.
pub const AMFS_CREATE_CPU_SECS: f64 = 0.7e-3;

/// Capacity of one AMFS metadata server in create ops/s; with AMFS' skewed
/// name hash the hottest server bounds aggregate create throughput — the
/// non-linear curve of Figure 6 flattening near 25 k op/s at scale.
pub const AMFS_META_SERVER_OPS: f64 = 1.8e3;

// ---------------------------------------------------------------------
// Workflow-engine constants (Figures 7-15)
// ---------------------------------------------------------------------

/// Task launch overhead (fork/exec + AMFS-Shell/worker dispatch).
pub const TASK_SPAWN_SECS: f64 = 0.2;

/// Per-process file-system streaming bandwidth for application I/O.
/// Montage/BLAST do 4 KB-block I/O through FUSE with a full open/read/
/// close cycle per small file, which is far below the iozone large-record
/// numbers; fitted so a 32-process EC2 node drives ~400 MB/s of
/// application I/O (Figures 12b-15b show its NIC saturating once the
/// memcached serving traffic is added on top). One node's processes share
/// the NIC and, with a single mountpoint, the FUSE spinlock (Figure 10).
pub const CLIENT_IO_BW: f64 = 12e6;

/// The AMFS remote-read path used when locality is missed inside a
/// workflow (same protocol as the envelope's remote 1-1 read).
pub fn amfs_remote_bw(nic_bw: f64) -> f64 {
    nic_bw * AMFS_REMOTE_BW_FRACTION
}

#[cfg(test)]
#[allow(clippy::assertions_on_constants)] // compile-time sanity checks on tuned constants
mod tests {
    use super::*;

    #[test]
    fn efficiencies_are_fractions() {
        for e in [
            A2A_WRITE_EFF,
            A2A_READ_EFF,
            A2A_READ_EFF_LARGE,
            AMFS_REMOTE_BW_FRACTION,
        ] {
            assert!(e > 0.0 && e <= 1.0);
        }
        assert!(A2A_READ_EFF_LARGE < A2A_READ_EFF);
    }

    #[test]
    fn amfs_remote_is_slower_than_nic() {
        assert!(amfs_remote_bw(1e9) < 1e9 * 0.2);
    }

    #[test]
    fn metadata_cost_ordering_matches_paper() {
        // AMFS open fastest; MemFS open beats MemFS create.
        assert!(AMFS_OPEN_CPU_SECS < MEMFS_OPEN_CPU_SECS);
        assert!(MEMFS_OPEN_CPU_SECS < MEMFS_CREATE_CPU_SECS);
    }
}
