//! The cluster-scale workflow simulation engine.
//!
//! Drives a [`Workflow`] over a simulated [`Deployment`]: per-node core
//! slots, a per-node FUSE-mount I/O resource (with the Figure 10
//! contention curve), a max-min-fair network ([`memfs_netsim::FlowNet`]),
//! the chosen file-system policy ([`FsModel`]) and scheduler
//! ([`SchedulerKind`]). Produces per-stage wall times (Figures 7, 8,
//! 10-15), per-stage network bandwidth per node (Figures 12b-15b), and
//! per-node peak memory (Figure 9, Table 3).
//!
//! ## Task model
//!
//! Each task runs three sequential phases on its core slot:
//!
//! 1. **Read** — the planned input transfers (one aggregated striped flow
//!    and/or pairwise AMFS pulls), a mount job of the total bytes, and
//!    the per-file protocol floor, all in parallel; the phase ends when
//!    the slowest finishes.
//! 2. **Compute** — spawn overhead + the task's CPU seconds.
//! 3. **Write** — mirror of read for the outputs.
//!
//! An out-of-memory failure (AMFS' replicate-on-read exhausting the
//! "scheduler node" on Montage 12x12) aborts the run and is reported in
//! [`RunResult::failed`].

use std::collections::{BTreeMap, HashMap};

use memfs_cluster::Deployment;
use memfs_netsim::{FlowEvent, FlowId, FlowNet};
use memfs_simcore::{EfficiencyCurve, EventQueue, JobId, PsResource, SimDuration, SimTime};

use crate::calibrate;
use crate::fsmodel::{FsModel, FsModelKind, IoPlan};
use crate::sched::{place_task, SchedulerKind};
use crate::workflow::Workflow;

/// Simulation parameters.
#[derive(Debug, Clone)]
pub struct WorkflowSim {
    /// Platform.
    pub deployment: Deployment,
    /// File-system policy.
    pub fs: FsModelKind,
    /// Scheduler policy.
    pub scheduler: SchedulerKind,
}

/// Result of one simulated run.
#[derive(Debug, Clone)]
pub struct RunResult {
    /// Total wall time.
    pub makespan_secs: f64,
    /// Per-stage wall time (last completion minus first start).
    pub stage_secs: BTreeMap<String, f64>,
    /// Per-stage average network bandwidth per node, bytes/s.
    pub stage_bw_per_node: BTreeMap<String, f64>,
    /// Per-node peak storage bytes.
    pub peak_mem_per_node: Vec<u64>,
    /// Sum of per-node peaks (Figure 9's aggregate memory usage).
    pub aggregate_peak_mem: u64,
    /// Total bytes that crossed the network.
    pub network_bytes: f64,
    /// Set when the run aborted (node out of memory).
    pub failed: Option<String>,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    Read,
    Compute,
    Write,
}

#[derive(Debug)]
struct Running {
    node: usize,
    phase: Phase,
    /// Outstanding pieces of the current phase (flows + mount job +
    /// duration floor).
    pending: usize,
}

#[derive(Debug, Clone, Copy)]
enum Ev {
    /// A phase's minimum-duration floor elapsed.
    Floor(usize),
    /// Compute finished.
    ComputeDone(usize),
}

struct StageAccum {
    first_start: SimTime,
    last_end: SimTime,
    bytes: f64,
    tasks_done: usize,
    tasks_total: usize,
}

impl WorkflowSim {
    /// Run `workflow` to completion (or failure) and report.
    pub fn run(&self, workflow: &Workflow) -> RunResult {
        workflow.validate().expect("invalid workflow");
        let n_nodes = self.deployment.cluster.n_nodes;
        let profile = &self.deployment.cluster.profile;
        let fabric = FsModel::fabric(&self.deployment);
        let mut net = FlowNet::new(fabric.clone(), profile.latency);
        let mut fs = FsModel::new(self.fs, &self.deployment, workflow);

        // Per-node mount resource: capacity = cores * per-process I/O
        // bandwidth, with the mount-model efficiency folded into a table
        // curve (aggregate(n) = min(n, model curve) processes' worth).
        let spec = self.deployment.cluster.node;
        let cores = self.deployment.cores_per_node;
        let mount_curve: Vec<f64> = (1..=cores.max(1))
            .map(|n| {
                let active = self.deployment.mount.effective_parallelism(&spec, n);
                (active / cores as f64).clamp(0.0001, 1.0)
            })
            .collect();
        let mut mounts: Vec<PsResource> = (0..n_nodes)
            .map(|_| {
                PsResource::new(
                    cores as f64 * calibrate::CLIENT_IO_BW,
                    EfficiencyCurve::Table(mount_curve.clone()),
                )
            })
            .collect();

        // Stage inputs.
        if let Err(oom) = fs.stage_in(&workflow.staged_inputs()) {
            return self.failed_result(&fs, format!("stage-in: {}", oom.detail));
        }

        // Dependency bookkeeping: a task waits on each *distinct* producer
        // of its inputs (a task may read several files of one producer).
        let mut deps: Vec<usize> = vec![0; workflow.tasks.len()];
        let mut dependents: Vec<Vec<usize>> = vec![Vec::new(); workflow.tasks.len()];
        for (ti, t) in workflow.tasks.iter().enumerate() {
            let mut producers: Vec<usize> = t
                .inputs
                .iter()
                .filter_map(|f| workflow.files[f.0].producer.map(|p| p.0))
                .collect();
            producers.sort_unstable();
            producers.dedup();
            deps[ti] = producers.len();
            for p in producers {
                dependents[p].push(ti);
            }
        }

        // Transient-file reclamation: count consumers per file; a
        // transient file is unlinked when its last consumer completes.
        let mut consumers_left: Vec<usize> = vec![0; workflow.files.len()];
        for t in &workflow.tasks {
            let mut seen: Vec<usize> = t.inputs.iter().map(|f| f.0).collect();
            seen.sort_unstable();
            seen.dedup();
            for f in seen {
                consumers_left[f] += 1;
            }
        }

        let mut ready: Vec<usize> = (0..workflow.tasks.len())
            .filter(|&t| deps[t] == 0)
            .collect();
        let mut free_slots = vec![cores; n_nodes];
        let mut queue: EventQueue<Ev> = EventQueue::new();
        let mut running: HashMap<usize, Running> = HashMap::new();
        let mut flow_owner: HashMap<FlowId, usize> = HashMap::new();
        let mut mount_owner: HashMap<(usize, JobId), usize> = HashMap::new();
        let mut done = 0usize;
        let total = workflow.tasks.len();

        // Per-stage accounting.
        let mut stages: BTreeMap<String, StageAccum> = BTreeMap::new();
        for t in &workflow.tasks {
            stages
                .entry(t.stage.clone())
                .or_insert(StageAccum {
                    first_start: SimTime::MAX,
                    last_end: SimTime::ZERO,
                    bytes: 0.0,
                    tasks_done: 0,
                    tasks_total: 0,
                })
                .tasks_total += 1;
        }

        let mut now = SimTime::ZERO;
        let mut failure: Option<String> = None;

        // Helper closures are impractical with this much shared state;
        // the loop below is explicit instead.
        // How many tasks may queue up waiting for one busy data node per
        // scheduling round before the excess spills to idle nodes (the
        // multicore-aware AMFS Shell behaviour: keep locality where
        // possible, but don't idle the cluster behind one hot node).
        let patience = 2 * cores;

        'outer: loop {
            // 1. Launch ready tasks while slots allow.
            loop {
                let mut launched_any = false;
                let mut waiting = vec![0usize; n_nodes];
                let mut i = 0;
                while i < ready.len() {
                    let ti = ready[i];
                    let task = &workflow.tasks[ti];
                    let decision =
                        match place_task(self.scheduler, task, workflow, &fs, &free_slots) {
                            crate::sched::Placement::Node(n) => Some(n),
                            crate::sched::Placement::WaitFor(n) => {
                                // Bounded patience with bounded
                                // replication: the queue behind a busy
                                // data node spills to an idle node (which
                                // replicates the file there, creating a
                                // secondary home that place_task will
                                // find on the next round), but a file is
                                // never fanned out beyond owner + one
                                // replica by scheduling alone — further
                                // overflow keeps waiting, which is the
                                // throughput loss the paper attributes to
                                // AMFS' locality design.
                                waiting[n] += 1;
                                let copies = task
                                    .inputs
                                    .first()
                                    .map(|&f| fs.replica_holders(f).len())
                                    .unwrap_or(0);
                                if waiting[n] > patience && copies < 2 {
                                    free_slots
                                        .iter()
                                        .enumerate()
                                        .filter(|(_, &s)| s > 0)
                                        .max_by_key(|&(i, &s)| (s, std::cmp::Reverse(i)))
                                        .map(|(i, _)| i)
                                } else {
                                    None
                                }
                            }
                            crate::sched::Placement::Queue => None,
                        };
                    match decision {
                        Some(node) => {
                            ready.remove(i);
                            free_slots[node] -= 1;
                            let st = stages.get_mut(&task.stage).expect("stage known");
                            st.first_start = st.first_start.min(now);
                            // Start the read phase.
                            let plan = match fs.plan_read(node, &task.inputs, fabric.nic_bw()) {
                                Ok(p) => p,
                                Err(oom) => {
                                    failure = Some(format!(
                                        "task {ti} ({}) on node {}: {}",
                                        task.stage, oom.node, oom.detail
                                    ));
                                    break 'outer;
                                }
                            };
                            let pending = Self::start_phase(
                                ti,
                                node,
                                &plan,
                                true,
                                now,
                                &fabric,
                                &mut net,
                                &mut mounts,
                                &mut queue,
                                &mut flow_owner,
                                &mut mount_owner,
                            );
                            stages.get_mut(&task.stage).expect("stage").bytes +=
                                plan.network_bytes();
                            running.insert(
                                ti,
                                Running {
                                    node,
                                    phase: Phase::Read,
                                    pending,
                                },
                            );
                            launched_any = true;
                        }
                        None => {
                            i += 1;
                        }
                    }
                }
                if !launched_any {
                    break;
                }
            }

            if done == total {
                break;
            }

            // 2. Advance to the next event across all engines.
            let mut next = SimTime::MAX;
            if let Some(t) = queue.peek_time() {
                next = next.min(t);
            }
            if let Some(t) = net.next_event() {
                next = next.min(t);
            }
            for m in &mounts {
                if let Some(t) = m.next_completion() {
                    next = next.min(t);
                }
            }
            if next == SimTime::MAX {
                // No pending events but tasks undone: deadlock (should be
                // impossible for a valid DAG with enough slots).
                failure = Some(format!(
                    "simulation stalled at {now} with {} of {total} tasks done",
                    done
                ));
                break;
            }
            now = next;

            // 3. Collect completions from every engine at `now`.
            let mut finished_pieces: Vec<usize> = Vec::new();
            for ev in net.advance_to(now) {
                if let FlowEvent::Completed(id) = ev {
                    if let Some(ti) = flow_owner.remove(&id) {
                        finished_pieces.push(ti);
                    }
                }
            }
            for (node, mount) in mounts.iter_mut().enumerate() {
                for job in mount.advance_to(now) {
                    if let Some(ti) = mount_owner.remove(&(node, job)) {
                        finished_pieces.push(ti);
                    }
                }
            }
            while queue.peek_time() == Some(now) {
                let entry = queue.pop().expect("peeked");
                match entry.event {
                    Ev::Floor(ti) => finished_pieces.push(ti),
                    Ev::ComputeDone(ti) => finished_pieces.push(ti),
                }
            }

            // 4. Drive phase transitions.
            for ti in finished_pieces {
                let Some(run) = running.get_mut(&ti) else {
                    continue; // task already failed out
                };
                run.pending -= 1;
                if run.pending > 0 {
                    continue;
                }
                let task = &workflow.tasks[ti];
                match run.phase {
                    Phase::Read => {
                        run.phase = Phase::Compute;
                        run.pending = 1;
                        let dur =
                            SimDuration::from_secs_f64(calibrate::TASK_SPAWN_SECS + task.cpu_secs);
                        queue.push(now + dur, Ev::ComputeDone(ti));
                    }
                    Phase::Compute => {
                        let node = run.node;
                        let plan = match fs.plan_write(node, &task.outputs) {
                            Ok(p) => p,
                            Err(oom) => {
                                failure = Some(format!(
                                    "task {ti} ({}) on node {}: {}",
                                    task.stage, oom.node, oom.detail
                                ));
                                break 'outer;
                            }
                        };
                        let pending = Self::start_phase(
                            ti,
                            node,
                            &plan,
                            false,
                            now,
                            &fabric,
                            &mut net,
                            &mut mounts,
                            &mut queue,
                            &mut flow_owner,
                            &mut mount_owner,
                        );
                        stages.get_mut(&task.stage).expect("stage").bytes += plan.network_bytes();
                        let run = running.get_mut(&ti).expect("still running");
                        run.phase = Phase::Write;
                        run.pending = pending;
                    }
                    Phase::Write => {
                        let node = run.node;
                        running.remove(&ti);
                        free_slots[node] += 1;
                        done += 1;
                        let st = stages.get_mut(&task.stage).expect("stage");
                        st.last_end = st.last_end.max(now);
                        st.tasks_done += 1;
                        for &d in &dependents[ti] {
                            deps[d] -= 1;
                            if deps[d] == 0 {
                                ready.push(d);
                            }
                        }
                        ready.sort_unstable();
                        // Unlink transient inputs this task consumed last.
                        let mut finished_inputs: Vec<usize> =
                            task.inputs.iter().map(|f| f.0).collect();
                        finished_inputs.sort_unstable();
                        finished_inputs.dedup();
                        for f in finished_inputs {
                            consumers_left[f] -= 1;
                            if consumers_left[f] == 0 && workflow.files[f].transient {
                                fs.free_file(crate::workflow::FileId(f));
                            }
                        }
                    }
                }
            }
        }

        // Assemble the result.
        let mut stage_secs = BTreeMap::new();
        let mut stage_bw = BTreeMap::new();
        for (name, acc) in &stages {
            // Skip stages that never started or never finished a task
            // (possible when the run aborted mid-stage).
            if acc.first_start == SimTime::MAX || acc.last_end < acc.first_start {
                continue;
            }
            let dur = acc
                .last_end
                .duration_since(acc.first_start)
                .as_secs_f64()
                .max(1e-9);
            stage_secs.insert(name.clone(), dur);
            stage_bw.insert(name.clone(), acc.bytes / dur / n_nodes as f64);
        }
        let peaks: Vec<u64> = (0..n_nodes).map(|n| fs.memory.peak(n)).collect();
        RunResult {
            makespan_secs: now.as_secs_f64(),
            stage_secs,
            stage_bw_per_node: stage_bw,
            aggregate_peak_mem: peaks.iter().sum(),
            peak_mem_per_node: peaks,
            network_bytes: net.delivered_bytes(),
            failed: failure,
        }
    }

    /// Start the flows / mount job / floor of one I/O phase; returns the
    /// number of outstanding pieces.
    #[allow(clippy::too_many_arguments)]
    fn start_phase(
        ti: usize,
        node: usize,
        plan: &IoPlan,
        is_read: bool,
        now: SimTime,
        fabric: &memfs_netsim::Fabric,
        net: &mut FlowNet,
        mounts: &mut [PsResource],
        queue: &mut EventQueue<Ev>,
        flow_owner: &mut HashMap<FlowId, usize>,
        mount_owner: &mut HashMap<(usize, JobId), usize>,
    ) -> usize {
        let mut pending = 0;
        if plan.striped_bytes > 0 {
            let route = if is_read {
                FsModel::striped_read_route(fabric, node)
            } else {
                FsModel::striped_write_route(fabric, node)
            };
            let id = net.start_flow_route(now, route, plan.striped_bytes);
            flow_owner.insert(id, ti);
            pending += 1;
        }
        for &(src, bytes) in &plan.pairwise_in {
            let id = net.start_flow(
                now,
                memfs_netsim::NodeId(src),
                memfs_netsim::NodeId(node),
                bytes,
            );
            flow_owner.insert(id, ti);
            pending += 1;
        }
        if plan.mount_bytes > 0 {
            let job = mounts[node].admit(now, plan.mount_bytes as f64);
            mount_owner.insert((node, job), ti);
            pending += 1;
        }
        // Every phase gets a floor event so zero-I/O phases still advance.
        queue.push(
            now + SimDuration::from_secs_f64(plan.min_secs),
            Ev::Floor(ti),
        );
        pending + 1
    }

    fn failed_result(&self, fs: &FsModel, msg: String) -> RunResult {
        let n = self.deployment.cluster.n_nodes;
        let peaks: Vec<u64> = (0..n).map(|i| fs.memory.peak(i)).collect();
        RunResult {
            makespan_secs: 0.0,
            stage_secs: BTreeMap::new(),
            stage_bw_per_node: BTreeMap::new(),
            aggregate_peak_mem: peaks.iter().sum(),
            peak_mem_per_node: peaks,
            network_bytes: 0.0,
            failed: Some(msg),
        }
    }
}

impl IoPlan {
    /// Bytes this plan moves over the network (striped + pairwise).
    pub fn network_bytes(&self) -> f64 {
        self.striped_bytes as f64 + self.pairwise_in.iter().map(|&(_, b)| b as f64).sum::<f64>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use memfs_cluster::ClusterSpec;
    use memfs_simcore::units::MB;

    fn fanout_workflow(n_tasks: usize, file_mb: u64, cpu: f64) -> Workflow {
        let mut wf = Workflow::new("fanout");
        let input = wf.add_input("/in", file_mb * MB);
        for i in 0..n_tasks {
            wf.add_task(
                "work",
                vec![input],
                vec![(format!("/out{i}"), file_mb * MB)],
                cpu,
            );
        }
        wf
    }

    fn sim(n_nodes: usize, fs: FsModelKind, sched: SchedulerKind) -> WorkflowSim {
        WorkflowSim {
            deployment: Deployment::full(ClusterSpec::das4_ipoib(n_nodes)),
            fs,
            scheduler: sched,
        }
    }

    #[test]
    fn simple_workflow_completes() {
        let wf = fanout_workflow(32, 4, 1.0);
        let r = sim(4, FsModelKind::MemFs, SchedulerKind::Uniform).run(&wf);
        assert!(r.failed.is_none(), "{:?}", r.failed);
        assert!(r.makespan_secs > 1.0);
        assert!(r.stage_secs.contains_key("work"));
        assert!(r.network_bytes > 0.0);
    }

    #[test]
    fn more_nodes_scale_out_compute_bound_work() {
        let wf = fanout_workflow(256, 1, 4.0);
        let t8 = sim(8, FsModelKind::MemFs, SchedulerKind::Uniform)
            .run(&wf)
            .makespan_secs;
        let t32 = sim(32, FsModelKind::MemFs, SchedulerKind::Uniform)
            .run(&wf)
            .makespan_secs;
        assert!(
            t32 < t8 / 2.0,
            "horizontal scaling failed: 8 nodes {t8}s, 32 nodes {t32}s"
        );
    }

    #[test]
    fn dependencies_serialize() {
        let mut wf = Workflow::new("chain");
        let a = wf.add_input("/a", MB);
        let t0 = wf.add_task("s1", vec![a], vec![("/b".into(), MB)], 2.0);
        let b = wf.tasks[t0.0].outputs[0];
        wf.add_task("s2", vec![b], vec![("/c".into(), MB)], 2.0);
        let r = sim(4, FsModelKind::MemFs, SchedulerKind::Uniform).run(&wf);
        assert!(r.failed.is_none());
        // Two serialized ~2.2 s tasks plus I/O.
        assert!(r.makespan_secs > 4.4, "chain too fast: {}", r.makespan_secs);
    }

    #[test]
    fn memfs_balances_memory_amfs_does_not() {
        // Producers spread across the cluster write big files; a global
        // aggregation then reads them all (the Montage/BLAST reduction
        // pattern). Producers take no inputs so both schedulers spread
        // them evenly.
        let mut wf = Workflow::new("imbalance");
        let mut outs = Vec::new();
        for i in 0..16 {
            let t = wf.add_task(
                "produce",
                Vec::new(),
                vec![(format!("/big{i}"), 64 * MB)],
                0.1,
            );
            outs.push(wf.tasks[t.0].outputs[0]);
        }
        wf.add_task("aggregate", outs, vec![("/sum".into(), MB)], 0.1);

        let memfs = sim(8, FsModelKind::MemFs, SchedulerKind::Uniform).run(&wf);
        let amfs = sim(8, FsModelKind::Amfs, SchedulerKind::LocalityAware).run(&wf);
        assert!(memfs.failed.is_none());
        assert!(amfs.failed.is_none());

        let imbalance = |peaks: &[u64]| {
            let mean = peaks.iter().sum::<u64>() as f64 / peaks.len() as f64;
            *peaks.iter().max().unwrap() as f64 / mean
        };
        assert!(imbalance(&memfs.peak_mem_per_node) < 1.3);
        // The aggregation replicates all 1 GB onto the shell node.
        assert!(imbalance(&amfs.peak_mem_per_node) > 2.0);
        // And AMFS' aggregate footprint exceeds MemFS' (replication).
        assert!(amfs.aggregate_peak_mem > memfs.aggregate_peak_mem);
    }

    #[test]
    fn amfs_oom_aborts_with_diagnosis() {
        // An aggregation bigger than one node's budget crashes AMFS but
        // not MemFS — the paper's Montage 12x12 story.
        let mut deployment = Deployment::full(ClusterSpec::das4_ipoib(4));
        let budget = deployment.storage_budget_per_node();
        let mut wf = Workflow::new("crash");
        let input = wf.add_input("/seed", MB);
        let mut outs = Vec::new();
        for i in 0..8 {
            // Files sized so one node cannot hold all of them.
            let t = wf.add_task(
                "produce",
                vec![input],
                vec![(format!("/chunk{i}"), budget / 5)],
                0.1,
            );
            outs.push(wf.tasks[t.0].outputs[0]);
        }
        wf.add_task("aggregate", outs, vec![("/sum".into(), MB)], 0.1);

        deployment.cores_per_node = 8;
        let amfs = WorkflowSim {
            deployment: deployment.clone(),
            fs: FsModelKind::Amfs,
            scheduler: SchedulerKind::LocalityAware,
        }
        .run(&wf);
        assert!(amfs.failed.is_some(), "AMFS should OOM");
        let msg = amfs.failed.unwrap();
        assert!(
            msg.contains("out of memory") || msg.contains("failed"),
            "{msg}"
        );

        let memfs = WorkflowSim {
            deployment,
            fs: FsModelKind::MemFs,
            scheduler: SchedulerKind::Uniform,
        }
        .run(&wf);
        assert!(memfs.failed.is_none(), "{:?}", memfs.failed);
    }

    #[test]
    fn runs_are_deterministic() {
        let wf = fanout_workflow(64, 2, 0.5);
        let a = sim(8, FsModelKind::MemFs, SchedulerKind::Uniform).run(&wf);
        let b = sim(8, FsModelKind::MemFs, SchedulerKind::Uniform).run(&wf);
        assert_eq!(a.makespan_secs, b.makespan_secs);
        assert_eq!(a.peak_mem_per_node, b.peak_mem_per_node);
        assert_eq!(a.network_bytes, b.network_bytes);
    }

    #[test]
    fn single_mount_is_slower_beyond_knee() {
        // I/O-heavy tasks, 32 concurrent per node: a single mountpoint
        // (Figure 10a) must hurt wall time vs per-process mounts.
        let wf = fanout_workflow(256, 32, 0.05);
        let base = Deployment::full(ClusterSpec::ec2(4));
        let per_process = WorkflowSim {
            deployment: base.clone(),
            fs: FsModelKind::MemFs,
            scheduler: SchedulerKind::Uniform,
        }
        .run(&wf);
        let single = WorkflowSim {
            deployment: base.with_single_mount(),
            fs: FsModelKind::MemFs,
            scheduler: SchedulerKind::Uniform,
        }
        .run(&wf);
        assert!(per_process.failed.is_none() && single.failed.is_none());
        assert!(
            single.makespan_secs > per_process.makespan_secs * 1.3,
            "single {} vs per-process {}",
            single.makespan_secs,
            per_process.makespan_secs
        );
    }
}
