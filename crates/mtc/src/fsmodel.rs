//! File-system policy models for the cluster simulator.
//!
//! The simulation engine asks one question per I/O phase: *given this node
//! reads/writes these files, how many bytes move over which routes, how
//! much protocol time is charged, and what memory is consumed where?*
//! The two answers — MemFS' symmetric striping versus AMFS' local writes
//! with replicate-on-read — are this module.
//!
//! Placement decisions reuse the real code paths: MemFS placement *is*
//! symmetric by construction (every node holds `1/N` of every file), and
//! AMFS placement tracks owners and replicas exactly as the in-process
//! implementation in `memfs-amfs` does.

use std::collections::BTreeSet;

use memfs_cluster::{Deployment, MemoryTracker};
use memfs_netsim::{Fabric, NodeId};

use crate::calibrate;
use crate::workflow::{FileId, Workflow};

/// Which file system the simulation models.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FsModelKind {
    /// MemFS: files striped over all nodes by the distributed hash.
    MemFs,
    /// AMFS: whole files on the writer node, replicate-on-read.
    Amfs,
}

/// The network work of one I/O phase, ready to hand to the flow engine.
#[derive(Debug, Clone, Default)]
pub struct IoPlan {
    /// Bytes to move over the striped half-route of the task's node
    /// (reads land on ingress, writes leave via egress).
    pub striped_bytes: u64,
    /// Pairwise transfers `(source node, bytes)` into the task's node
    /// (AMFS remote reads).
    pub pairwise_in: Vec<(usize, u64)>,
    /// Total bytes the client pushes through its FUSE mount (local or
    /// remote alike — every byte crosses the mount).
    pub mount_bytes: u64,
    /// Minimum protocol duration (AMFS' slow whole-file remote-read
    /// path; per-file metadata costs).
    pub min_secs: f64,
}

/// Tracks file placement and memory during a simulated run.
pub struct FsModel {
    kind: FsModelKind,
    n_nodes: usize,
    /// AMFS: owner node per file (usize::MAX = not yet written).
    owner: Vec<usize>,
    /// AMFS: nodes holding replicas (owner included once written).
    replicas: Vec<BTreeSet<usize>>,
    /// Memory ledger.
    pub memory: MemoryTracker,
    /// Sizes, copied from the workflow for fast access.
    sizes: Vec<u64>,
}

/// A memory failure pinned to the operation that triggered it (the AMFS
/// Montage-12 crash of paper §4.2.1 surfaces through this).
#[derive(Debug, Clone)]
pub struct FsOom {
    /// The node that overflowed.
    pub node: usize,
    /// Human-readable description.
    pub detail: String,
}

impl FsModel {
    /// Create the model for `workflow` under `deployment`.
    pub fn new(kind: FsModelKind, deployment: &Deployment, workflow: &Workflow) -> Self {
        let n_nodes = deployment.cluster.n_nodes;
        FsModel {
            kind,
            n_nodes,
            owner: vec![usize::MAX; workflow.files.len()],
            replicas: vec![BTreeSet::new(); workflow.files.len()],
            memory: deployment.memory_tracker(),
            sizes: workflow.files.iter().map(|f| f.size).collect(),
        }
    }

    /// Which model this is.
    pub fn kind(&self) -> FsModelKind {
        self.kind
    }

    /// Stage input files into the runtime FS before execution. MemFS
    /// stripes them; under AMFS the shell performs the global
    /// partitioning and writes locally — the first source of the paper's
    /// storage imbalance ("when writing locally, this can lead to severe
    /// storage imbalance among nodes", §2). The shell spreads the
    /// overflow round-robin once its own node approaches capacity, so an
    /// oversized *input* set still stages (the paper's AMFS failure
    /// happens later, when aggregation pulls the generated data back).
    pub fn stage_in(&mut self, files: &[FileId]) -> Result<(), FsOom> {
        let shell = crate::sched::SHELL_NODE;
        let shell_headroom = self.memory.capacity() * 3 / 4;
        let mut next_other = 0usize;
        for &f in files {
            match self.kind {
                FsModelKind::MemFs => self.alloc_striped(f)?,
                FsModelKind::Amfs => {
                    let node = if self.memory.used(shell) + self.sizes[f.0] <= shell_headroom {
                        shell
                    } else {
                        next_other += 1;
                        (shell + next_other) % self.n_nodes
                    };
                    self.record_amfs_write(f, node)?;
                }
            }
        }
        Ok(())
    }

    /// The AMFS locality hint: the owner of `file`, if written.
    pub fn owner_of(&self, file: FileId) -> Option<usize> {
        match self.kind {
            FsModelKind::MemFs => None, // locality-agnostic
            FsModelKind::Amfs => {
                let o = self.owner[file.0];
                (o != usize::MAX).then_some(o)
            }
        }
    }

    /// Nodes currently holding a copy of `file` (AMFS; empty for MemFS).
    pub fn replica_holders(&self, file: FileId) -> Vec<usize> {
        match self.kind {
            FsModelKind::MemFs => Vec::new(),
            FsModelKind::Amfs => self.replicas[file.0].iter().copied().collect(),
        }
    }

    /// Whether `node` already holds a copy of `file` (AMFS).
    pub fn has_local_copy(&self, file: FileId, node: usize) -> bool {
        match self.kind {
            FsModelKind::MemFs => false,
            FsModelKind::Amfs => self.replicas[file.0].contains(&node),
        }
    }

    /// Plan the read phase of a task on `node` reading `inputs`, charging
    /// replication memory as a side effect (AMFS).
    pub fn plan_read(
        &mut self,
        node: usize,
        inputs: &[FileId],
        nic_bw: f64,
    ) -> Result<IoPlan, FsOom> {
        let mut plan = IoPlan::default();
        for &f in inputs {
            let size = self.sizes[f.0];
            plan.mount_bytes += size;
            match self.kind {
                FsModelKind::MemFs => {
                    // Stripes come from everywhere; (N-1)/N of the bytes
                    // cross the network.
                    let remote = size - size / self.n_nodes as u64;
                    plan.striped_bytes += remote;
                    plan.min_secs += calibrate::MEMFS_OPEN_CPU_SECS;
                }
                FsModelKind::Amfs => {
                    plan.min_secs += calibrate::AMFS_READ_OVERHEAD_SECS;
                    if self.replicas[f.0].contains(&node) {
                        continue; // local hit
                    }
                    let owner = self.owner[f.0];
                    debug_assert!(owner != usize::MAX, "read of unwritten file");
                    // Whole-file pull over the slow AMFS remote path...
                    plan.pairwise_in.push((owner, size));
                    plan.min_secs += size as f64 / calibrate::amfs_remote_bw(nic_bw);
                    // ...then replicate-on-read.
                    self.memory.alloc(node, size).map_err(|e| FsOom {
                        node,
                        detail: format!("replicate-on-read of {} bytes failed: {e}", size),
                    })?;
                    self.replicas[f.0].insert(node);
                }
            }
        }
        Ok(plan)
    }

    /// Plan the write phase of a task on `node` writing `outputs`,
    /// charging storage memory as a side effect.
    pub fn plan_write(&mut self, node: usize, outputs: &[FileId]) -> Result<IoPlan, FsOom> {
        let mut plan = IoPlan::default();
        for &f in outputs {
            let size = self.sizes[f.0];
            plan.mount_bytes += size;
            match self.kind {
                FsModelKind::MemFs => {
                    let remote = size - size / self.n_nodes as u64;
                    plan.striped_bytes += remote;
                    plan.min_secs +=
                        calibrate::MEMFS_WRITE_META_OPS * calibrate::MEMFS_CREATE_CPU_SECS / 3.0;
                    self.alloc_striped(f)?;
                }
                FsModelKind::Amfs => {
                    plan.min_secs += calibrate::AMFS_WRITE_OVERHEAD_SECS;
                    self.record_amfs_write(f, node)?;
                }
            }
        }
        Ok(plan)
    }

    fn alloc_striped(&mut self, f: FileId) -> Result<(), FsOom> {
        let size = self.sizes[f.0];
        let share = size / self.n_nodes as u64;
        let mut rem = size - share * self.n_nodes as u64;
        for node in 0..self.n_nodes {
            let extra = if rem > 0 {
                rem -= 1;
                1
            } else {
                0
            };
            self.memory.alloc(node, share + extra).map_err(|e| FsOom {
                node,
                detail: format!("striped store of {size} bytes failed: {e}"),
            })?;
        }
        self.owner[f.0] = 0; // striped files have no owner; mark written
        Ok(())
    }

    fn record_amfs_write(&mut self, f: FileId, node: usize) -> Result<(), FsOom> {
        let size = self.sizes[f.0];
        self.memory.alloc(node, size).map_err(|e| FsOom {
            node,
            detail: format!("local write of {size} bytes failed: {e}"),
        })?;
        self.owner[f.0] = node;
        self.replicas[f.0].insert(node);
        Ok(())
    }

    /// Unlink `file`: release its memory everywhere (striped shares for
    /// MemFS; the authoritative copy and every replica for AMFS) and
    /// forget its placement.
    pub fn free_file(&mut self, f: FileId) {
        let size = self.sizes[f.0];
        match self.kind {
            FsModelKind::MemFs => {
                if self.owner[f.0] == usize::MAX {
                    return; // never written
                }
                let share = size / self.n_nodes as u64;
                let mut rem = size - share * self.n_nodes as u64;
                for node in 0..self.n_nodes {
                    let extra = if rem > 0 {
                        rem -= 1;
                        1
                    } else {
                        0
                    };
                    self.memory.free(node, share + extra);
                }
                self.owner[f.0] = usize::MAX;
            }
            FsModelKind::Amfs => {
                for node in std::mem::take(&mut self.replicas[f.0]) {
                    self.memory.free(node, size);
                }
                self.owner[f.0] = usize::MAX;
            }
        }
    }

    /// Build the fabric for `deployment` with the aggregate constraint the
    /// striped half-routes require.
    pub fn fabric(deployment: &Deployment) -> Fabric {
        deployment
            .cluster
            .profile
            .fabric(deployment.cluster.n_nodes)
            .with_aggregate_capacity()
    }

    /// Striped-read route helper (reads land on `node`'s ingress).
    pub fn striped_read_route(fabric: &Fabric, node: usize) -> Vec<usize> {
        fabric.route_striped_read(NodeId(node))
    }

    /// Striped-write route helper.
    pub fn striped_write_route(fabric: &Fabric, node: usize) -> Vec<usize> {
        fabric.route_striped_write(NodeId(node))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use memfs_cluster::ClusterSpec;

    fn setup(kind: FsModelKind, n_nodes: usize) -> (FsModel, Workflow, Deployment) {
        let mut wf = Workflow::new("t");
        let a = wf.add_input("/a", 1000);
        let b = wf.add_input("/b", 500);
        wf.add_task("s", vec![a, b], vec![("/out".into(), 2000)], 1.0);
        let deployment = Deployment::full(ClusterSpec::das4_ipoib(n_nodes));
        let model = FsModel::new(kind, &deployment, &wf);
        (model, wf, deployment)
    }

    #[test]
    fn memfs_stage_in_stripes_evenly() {
        let (mut m, wf, _) = setup(FsModelKind::MemFs, 4);
        m.stage_in(&wf.staged_inputs()).unwrap();
        let per_node: Vec<u64> = (0..4).map(|n| m.memory.used(n)).collect();
        assert_eq!(per_node.iter().sum::<u64>(), 1500);
        let max = per_node.iter().max().unwrap();
        let min = per_node.iter().min().unwrap();
        assert!(max - min <= 2, "striping imbalance: {per_node:?}");
    }

    #[test]
    fn amfs_stage_in_lands_on_shell_node() {
        let (mut m, wf, _) = setup(FsModelKind::Amfs, 4);
        m.stage_in(&wf.staged_inputs()).unwrap();
        assert_eq!(m.memory.used(0), 1500);
        assert_eq!(m.memory.used(1), 0);
        assert_eq!(m.owner_of(FileId(0)), Some(0));
        assert_eq!(m.owner_of(FileId(1)), Some(0));
    }

    #[test]
    fn memfs_read_moves_remote_fraction() {
        let (mut m, wf, _) = setup(FsModelKind::MemFs, 4);
        m.stage_in(&wf.staged_inputs()).unwrap();
        let plan = m.plan_read(2, &[FileId(0), FileId(1)], 1e9).unwrap();
        // 3/4 of each file is remote.
        assert_eq!(plan.striped_bytes, 750 + 375);
        assert_eq!(plan.mount_bytes, 1500);
        assert!(plan.pairwise_in.is_empty());
        assert_eq!(m.owner_of(FileId(0)), None); // locality-agnostic
    }

    #[test]
    fn amfs_local_read_is_free_remote_read_replicates() {
        let (mut m, wf, _) = setup(FsModelKind::Amfs, 4);
        m.stage_in(&wf.staged_inputs()).unwrap();
        // Node 0 (the shell node) owns /a: local read, no traffic.
        let plan = m.plan_read(0, &[FileId(0)], 1e9).unwrap();
        assert!(plan.pairwise_in.is_empty());
        assert_eq!(plan.striped_bytes, 0);
        // Node 3 reads /a: pairwise pull from node 0 + replica charged.
        let before = m.memory.used(3);
        let plan = m.plan_read(3, &[FileId(0)], 1e9).unwrap();
        assert_eq!(plan.pairwise_in, vec![(0, 1000)]);
        assert!(plan.min_secs > 1000.0 / 1e9, "slow remote path charged");
        assert_eq!(m.memory.used(3), before + 1000);
        assert!(m.has_local_copy(FileId(0), 3));
        // Second read from node 3 is now local.
        let plan = m.plan_read(3, &[FileId(0)], 1e9).unwrap();
        assert!(plan.pairwise_in.is_empty());
    }

    #[test]
    fn writes_place_data_per_policy() {
        let (mut m, wf, _) = setup(FsModelKind::Amfs, 4);
        m.stage_in(&wf.staged_inputs()).unwrap();
        let out = wf.tasks[0].outputs[0];
        let plan = m.plan_write(2, &[out]).unwrap();
        assert_eq!(plan.striped_bytes, 0);
        assert_eq!(m.owner_of(out), Some(2));
        assert_eq!(m.memory.used(2), 2000);

        let (mut m, wf, _) = setup(FsModelKind::MemFs, 4);
        m.stage_in(&wf.staged_inputs()).unwrap();
        let out = wf.tasks[0].outputs[0];
        let used_before: u64 = (0..4).map(|n| m.memory.used(n)).sum();
        let plan = m.plan_write(2, &[out]).unwrap();
        assert_eq!(plan.striped_bytes, 1500); // 3/4 of 2000
        let used_after: u64 = (0..4).map(|n| m.memory.used(n)).sum();
        assert_eq!(used_after - used_before, 2000);
    }

    #[test]
    fn amfs_replication_can_oom_a_node() {
        // Tiny cluster whose nodes hold 10 KB each.
        let mut wf = Workflow::new("t");
        // 6 KB fits the shell node's 75% stage-in headroom (7.5 KB).
        let big = wf.add_input("/big", 6_000);
        wf.add_task("s", vec![big], vec![("/o".into(), 10)], 0.0);
        let mut deployment = Deployment::full(ClusterSpec::das4_ipoib(2));
        // Shrink node memory via the cluster spec.
        deployment.cluster.node.dram_bytes =
            memfs_cluster::deploy::APP_RESERVED_BYTES + 8 * 200 * 1_000_000 + 10_000;
        let mut m = FsModel::new(FsModelKind::Amfs, &deployment, &wf);
        m.stage_in(&[big]).unwrap();
        assert_eq!(m.owner_of(big), Some(0));
        // Node 1 is pre-filled so replicating 6 KB overflows its 10 KB.
        m.memory.alloc(1, 5_000).unwrap();
        let err = m.plan_read(1, &[big], 1e9).unwrap_err();
        assert_eq!(err.node, 1);
        assert!(err.detail.contains("replicate-on-read"));
    }

    #[test]
    fn oom_during_striped_write_reports_node() {
        let mut wf = Workflow::new("t");
        let f = wf.add_input("/f", 100);
        wf.add_task("s", vec![f], vec![("/o".into(), 1 << 40)], 0.0);
        let deployment = Deployment::full(ClusterSpec::das4_ipoib(2));
        let mut m = FsModel::new(FsModelKind::MemFs, &deployment, &wf);
        m.stage_in(&[f]).unwrap();
        let out = wf.tasks[0].outputs[0];
        assert!(m.plan_write(0, &[out]).is_err());
    }
}
