//! Plain-text rendering helpers for the experiment drivers: aligned
//! tables and series blocks that mirror the paper's figures/tables.

/// Render an aligned table: `header` then `rows`, columns right-aligned
/// except the first.
pub fn table(header: &[&str], rows: &[Vec<String>]) -> String {
    let n_cols = header.len();
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        assert_eq!(row.len(), n_cols, "row width mismatch");
        for (i, cell) in row.iter().enumerate() {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let mut out = String::new();
    let render_row = |cells: &[String], out: &mut String| {
        for (i, cell) in cells.iter().enumerate() {
            if i == 0 {
                out.push_str(&format!("{:<width$}", cell, width = widths[0]));
            } else {
                out.push_str(&format!("  {:>width$}", cell, width = widths[i]));
            }
        }
        out.push('\n');
    };
    let header_cells: Vec<String> = header.iter().map(|s| s.to_string()).collect();
    render_row(&header_cells, &mut out);
    let total: usize = widths.iter().sum::<usize>() + 2 * (n_cols - 1);
    out.push_str(&"-".repeat(total));
    out.push('\n');
    for row in rows {
        render_row(row, &mut out);
    }
    out
}

/// Format bytes/s as the paper's MB/s (decimal).
pub fn mbps(bytes_per_s: f64) -> String {
    format!("{:.0}", bytes_per_s / 1e6)
}

/// Format an op/s figure.
pub fn ops(per_s: f64) -> String {
    format!("{:.0}", per_s)
}

/// Format seconds with sensible precision.
pub fn secs(s: f64) -> String {
    if s >= 100.0 {
        format!("{s:.0}")
    } else if s >= 1.0 {
        format!("{s:.1}")
    } else {
        format!("{s:.3}")
    }
}

/// Format a byte count as GB (decimal) with one decimal place.
pub fn gb(bytes: u64) -> String {
    format!("{:.1}", bytes as f64 / 1e9)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_aligns_columns() {
        let out = table(
            &["Nodes", "Write", "Read"],
            &[
                vec!["8".into(), "3400".into(), "3700".into()],
                vec!["64".into(), "27403".into(), "29686".into()],
            ],
        );
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("Nodes"));
        assert!(lines[1].starts_with('-'));
        // All rows same width.
        assert_eq!(lines[0].len(), lines[2].len());
        assert_eq!(lines[2].len(), lines[3].len());
        assert!(lines[3].ends_with("29686"));
    }

    #[test]
    fn formatters() {
        assert_eq!(mbps(27_403_000_000.0), "27403");
        assert_eq!(ops(61_097.4), "61097");
        assert_eq!(secs(0.0123), "0.012");
        assert_eq!(secs(5.25), "5.2");
        assert_eq!(secs(153.0), "153");
        assert_eq!(gb(4_900_000_000), "4.9");
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn mismatched_rows_panic() {
        table(&["a", "b"], &[vec!["1".into()]]);
    }
}
