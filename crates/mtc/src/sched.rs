//! Task schedulers: the uniform placement MemFS pairs with, and the
//! AMFS-Shell-style locality-aware scheduler.
//!
//! Paper §4.2: "In conjunction with MemFS, the AMFS Shell scheduler cannot
//! perform locality-aware scheduling, thus all tasks are submitted in a
//! uniform manner to all compute nodes." For AMFS, the (multicore-aware)
//! scheduler "preserves the data-locality scheme": a task goes to the
//! node owning its first input file when that node has a free slot —
//! "AMFS Shell, however, can only guarantee that one file per job achieves
//! data locality". Aggregation tasks run on the shell's own node, which
//! is what turns node 0 into the paper's "scheduler node" (Table 3).

use crate::fsmodel::FsModel;
use crate::workflow::{TaskSpec, Workflow};

/// Outcome of a placement decision.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Placement {
    /// Run on this node now.
    Node(usize),
    /// Wait for this node (it holds the task's data but is busy). The
    /// engine applies bounded patience: if too many tasks are already
    /// waiting for one node, the excess spills to the least-loaded node —
    /// AMFS Shell's multicore spillover.
    WaitFor(usize),
    /// No slot anywhere (or policy chose to hold the task back).
    Queue,
}

/// Which placement policy the simulated run uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SchedulerKind {
    /// Spread tasks evenly over nodes (the MemFS pairing).
    Uniform,
    /// AMFS Shell: first-input locality with multicore awareness;
    /// aggregation tasks pinned to node 0.
    LocalityAware,
}

/// The node AMFS Shell runs on — aggregation stages land here.
pub const SHELL_NODE: usize = 0;

/// Number of inputs at which a task counts as a global aggregation (it
/// combines results from many producers, like mConcatFit/mAdd/merge).
pub const AGGREGATION_INPUTS: usize = 32;

/// Pick a node for `task`, given per-node free slot counts.
///
/// Both policies are deterministic: ties break toward the lowest node id.
pub fn place_task(
    kind: SchedulerKind,
    task: &TaskSpec,
    _workflow: &Workflow,
    fs: &FsModel,
    free_slots: &[usize],
) -> Placement {
    let least_loaded = || {
        free_slots
            .iter()
            .enumerate()
            .filter(|(_, &s)| s > 0)
            .max_by_key(|&(i, &s)| (s, std::cmp::Reverse(i)))
            .map(|(i, _)| i)
            .map_or(Placement::Queue, Placement::Node)
    };
    match kind {
        SchedulerKind::Uniform => least_loaded(),
        SchedulerKind::LocalityAware => {
            // Global aggregations run on the shell's node.
            if task.inputs.len() >= AGGREGATION_INPUTS {
                return if free_slots[SHELL_NODE] > 0 {
                    Placement::Node(SHELL_NODE)
                } else {
                    // Wait for the shell node rather than lose locality.
                    Placement::WaitFor(SHELL_NODE)
                };
            }
            // First-input locality: AMFS Shell "can only guarantee that
            // one file per job achieves data locality" — placement
            // follows the job's primary input (authoritative copy first,
            // then replicas accumulated by earlier reads). Secondary
            // inputs are read remotely wherever the task lands.
            if let Some(&first) = task.inputs.first() {
                if let Some(owner) = fs.owner_of(first) {
                    if free_slots[owner] > 0 {
                        return Placement::Node(owner);
                    }
                    for holder in fs.replica_holders(first) {
                        if free_slots[holder] > 0 {
                            return Placement::Node(holder);
                        }
                    }
                    // Sticky locality: the shell keeps the job queued at
                    // its data rather than replicating it elsewhere (this
                    // is how AMFS runs "blastall jobs locally to each
                    // database fragment", §4.2). The engine bounds the
                    // per-node waiting queue and spills the excess — the
                    // multicore-aware behaviour of §4.2.
                    return Placement::WaitFor(owner);
                }
            }
            least_loaded()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fsmodel::FsModelKind;
    use memfs_cluster::{ClusterSpec, Deployment};

    fn fixture() -> (Workflow, FsModel) {
        let mut wf = Workflow::new("t");
        let a = wf.add_input("/a", 100);
        let b = wf.add_input("/b", 100);
        wf.add_task("s", vec![a, b], vec![("/o".into(), 10)], 1.0);
        // An aggregation task with many inputs.
        let many: Vec<_> = (0..40)
            .map(|i| wf.add_input(format!("/m{i}"), 10))
            .collect();
        wf.add_task("agg", many, vec![("/agg".into(), 10)], 1.0);
        let deployment = Deployment::full(ClusterSpec::das4_ipoib(4));
        let mut fs = FsModel::new(FsModelKind::Amfs, &deployment, &wf);
        fs.stage_in(&wf.staged_inputs()).unwrap();
        (wf, fs)
    }

    #[test]
    fn uniform_picks_least_loaded() {
        let (wf, fs) = fixture();
        let p = place_task(
            SchedulerKind::Uniform,
            &wf.tasks[0],
            &wf,
            &fs,
            &[1, 3, 2, 3],
        );
        assert_eq!(p, Placement::Node(1)); // most free slots, lowest id on tie
        let p = place_task(
            SchedulerKind::Uniform,
            &wf.tasks[0],
            &wf,
            &fs,
            &[0, 0, 0, 0],
        );
        assert_eq!(p, Placement::Queue);
    }

    #[test]
    fn locality_follows_first_input_owner() {
        let (wf, fs) = fixture();
        // All inputs staged on the shell node.
        let owner = fs.owner_of(crate::workflow::FileId(0)).unwrap();
        assert_eq!(owner, SHELL_NODE);
        let p = place_task(
            SchedulerKind::LocalityAware,
            &wf.tasks[0],
            &wf,
            &fs,
            &[1, 1, 1, 1],
        );
        assert_eq!(p, Placement::Node(owner));
    }

    #[test]
    fn locality_waits_for_busy_data_node() {
        let (wf, fs) = fixture();
        let owner = fs.owner_of(crate::workflow::FileId(0)).unwrap();
        let mut slots = vec![2; 4];
        slots[owner] = 0;
        let p = place_task(SchedulerKind::LocalityAware, &wf.tasks[0], &wf, &fs, &slots);
        assert_eq!(p, Placement::WaitFor(owner));
    }

    #[test]
    fn locality_prefers_replica_holders() {
        let (wf, mut fs) = fixture();
        // Node 2 replicates file 0 by reading it there.
        fs.plan_read(2, &[crate::workflow::FileId(0)], 1e9).unwrap();
        let mut slots = vec![2; 4];
        slots[SHELL_NODE] = 0; // owner busy
        let p = place_task(SchedulerKind::LocalityAware, &wf.tasks[0], &wf, &fs, &slots);
        assert_eq!(p, Placement::Node(2));
    }

    #[test]
    fn aggregations_pin_to_shell_node() {
        let (wf, fs) = fixture();
        let p = place_task(
            SchedulerKind::LocalityAware,
            &wf.tasks[1],
            &wf,
            &fs,
            &[1, 8, 8, 8],
        );
        assert_eq!(p, Placement::Node(SHELL_NODE));
        // Shell node busy: the aggregation waits instead of migrating.
        let p = place_task(
            SchedulerKind::LocalityAware,
            &wf.tasks[1],
            &wf,
            &fs,
            &[0, 8, 8, 8],
        );
        assert_eq!(p, Placement::WaitFor(SHELL_NODE));
    }

    #[test]
    fn uniform_ignores_aggregation_pinning() {
        let (wf, fs) = fixture();
        let p = place_task(
            SchedulerKind::Uniform,
            &wf.tasks[1],
            &wf,
            &fs,
            &[0, 8, 8, 8],
        );
        assert_eq!(p, Placement::Node(1));
    }
}
