//! Synthetic BLAST workflow generator (paper Figure 1b, Table 2, §4.2).
//!
//! The paper's benchmark: the NCBI `nt` database (57 GB) is split offline
//! into fragments; "these fragments are copied at runtime into the MTC
//! file system ... and formatdb is applied to each fragment. ... a total
//! number of 8192 blastall queries are run against the database
//! fragments. The results are aggregated using 16 merge jobs."
//!
//! * DAS4: 512 fragments (~111 MB each), 8192 blastall tasks;
//! * EC2: 1024 fragments (~56 MB each), 16384 blastall tasks — "the
//!   results between the two different runs are comparable as they are
//!   equal in data size."
//!
//! formatdb is CPU-bound, blastall is I/O-bound at scale (§4.2.2).
//! Runtime data ≈ 200 GB: the copied-in fragments, the formatted
//! database, and the query outputs.

use memfs_simcore::units::{GB, MB};

use crate::workflow::{FileId, Workflow};

/// The NCBI nt database size (57 GB).
pub const NT_DB_BYTES: u64 = 57 * GB;
/// Formatted database expansion factor (formatdb output / input), chosen
/// so total runtime data lands near the paper's ~200 GB.
pub const FORMAT_EXPANSION_NUM: u64 = 9;
/// Denominator of the expansion factor (output = input * 9 / 5).
pub const FORMAT_EXPANSION_DEN: u64 = 5;
/// One query batch file staged in per blastall task group.
pub const QUERY_BYTES: u64 = 2 * MB;
/// Total bytes of blastall results across the whole run (fixed so the
/// DAS4 and EC2 configurations generate equal data volumes, as the paper
/// requires; per-task result size is this divided by the task count).
pub const RESULT_TOTAL_BYTES: u64 = 8 * GB;
/// Merge job count (paper: 16). Merged results are final output and are
/// staged out to permanent storage rather than kept in the runtime FS.
pub const N_MERGE: usize = 16;

/// formatdb CPU seconds per megabyte of fragment (CPU-bound stage).
pub const FORMATDB_CPU_PER_MB: f64 = 0.45;
/// blastall CPU seconds per megabyte of formatted fragment searched.
pub const BLASTALL_CPU_PER_MB: f64 = 0.045;
/// Stage-in copy CPU per megabyte (reading the fragment from external
/// storage before writing it into the runtime FS).
pub const COPYIN_CPU_PER_MB: f64 = 0.004;

/// Generate the BLAST workflow with `n_fragments` database fragments and
/// `queries_per_fragment` blastall tasks per fragment (the paper uses 16
/// on both platforms: 8192/512 and 16384/1024).
///
/// `max_tasks_per_stage` bounds task records per parallel stage by
/// bundling, exactly as in [`crate::montage`].
pub fn blast(
    n_fragments: usize,
    queries_per_fragment: usize,
    max_tasks_per_stage: usize,
) -> Workflow {
    assert!(n_fragments > 0 && queries_per_fragment > 0);
    let mut wf = Workflow::new(format!("BLAST nt ({n_fragments} fragments)"));
    let frag_bytes = NT_DB_BYTES / n_fragments as u64;
    let bundle = if max_tasks_per_stage == 0 {
        1
    } else {
        n_fragments.div_ceil(max_tasks_per_stage)
    };
    let n_records = n_fragments.div_ceil(bundle);
    let frags_in = |r: usize| -> u64 {
        if r + 1 < n_records {
            bundle as u64
        } else {
            (n_fragments - (n_records - 1) * bundle) as u64
        }
    };

    // Query batches are staged in (small; "it is achievable to have the
    // query files available on all nodes").
    let queries: Vec<FileId> = (0..N_MERGE)
        .map(|q| wf.add_input(format!("/queries/batch_{q:02}.fasta"), QUERY_BYTES))
        .collect();

    // copy-in: fragments are copied into the runtime FS at runtime, so
    // they count as runtime data (they have a producing task).
    let mut fragment_files: Vec<FileId> = Vec::with_capacity(n_records);
    for r in 0..n_records {
        let k = frags_in(r);
        let t = wf.add_task(
            "copyin",
            Vec::new(),
            vec![(format!("/db/frag_{r:04}.fasta"), k * frag_bytes)],
            k as f64 * frag_bytes as f64 / MB as f64 * COPYIN_CPU_PER_MB,
        );
        let frag = wf.tasks[t.0].outputs[0];
        // Raw fragments are superseded by the formatted database and are
        // unlinked once formatdb has consumed them — without this, the
        // 8-node configuration cannot hold BLAST's ~200 GB of runtime
        // data, and the paper demonstrably ran it.
        wf.mark_transient(frag);
        fragment_files.push(frag);
    }

    // formatdb: one per fragment (record), CPU-bound.
    let formatted_bytes = frag_bytes * FORMAT_EXPANSION_NUM / FORMAT_EXPANSION_DEN;
    let mut formatted: Vec<FileId> = Vec::with_capacity(n_records);
    for (r, &frag) in fragment_files.iter().enumerate() {
        let k = frags_in(r);
        let t = wf.add_task(
            "formatdb",
            vec![frag],
            vec![(format!("/db/fmt_{r:04}.bin"), k * formatted_bytes)],
            k as f64 * (frag_bytes as f64 / MB as f64) * FORMATDB_CPU_PER_MB,
        );
        formatted.push(wf.tasks[t.0].outputs[0]);
    }

    // blastall: `queries_per_fragment` tasks per fragment, each reading
    // the formatted fragment plus one query batch — the two-input-file
    // pattern that breaks AMFS' one-file locality guarantee.
    let result_bytes = RESULT_TOTAL_BYTES / (n_fragments as u64 * queries_per_fragment as u64);
    let mut results_by_merge: Vec<Vec<FileId>> = vec![Vec::new(); N_MERGE];
    for (r, &fmt) in formatted.iter().enumerate() {
        let k = frags_in(r);
        for q in 0..queries_per_fragment {
            let batch = queries[q % N_MERGE];
            let t = wf.add_task(
                "blastall",
                vec![fmt, batch],
                vec![(format!("/out/res_{r:04}_{q:02}.txt"), k * result_bytes)],
                k as f64 * (formatted_bytes as f64 / MB as f64) * BLASTALL_CPU_PER_MB,
            );
            let result = wf.tasks[t.0].outputs[0];
            // Results are consumed exactly once by their merge job and
            // freed afterwards.
            wf.mark_transient(result);
            results_by_merge[q % N_MERGE].push(result);
        }
    }

    // merge: 16 global aggregations streaming their final output to
    // permanent storage (stage-out, as §2 prescribes for outputs).
    for inputs in results_by_merge {
        wf.add_task("merge", inputs, Vec::new(), 10.0);
    }

    wf.validate().expect("blast generator produced a bad DAG");
    wf
}

/// The paper's DAS4 configuration: 512 fragments, 8192 blastall tasks.
pub fn blast_das4(max_tasks_per_stage: usize) -> Workflow {
    blast(512, 16, max_tasks_per_stage)
}

/// The paper's EC2 configuration: 1024 fragments, 16384 blastall tasks.
pub fn blast_ec2(max_tasks_per_stage: usize) -> Workflow {
    blast(1024, 16, max_tasks_per_stage)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn das4_config_matches_paper_counts() {
        let wf = blast_das4(0);
        let stats = wf.stage_stats();
        let by_name = |n: &str| stats.iter().find(|s| s.stage == n).unwrap().clone();
        assert_eq!(by_name("formatdb").tasks, 512);
        assert_eq!(by_name("blastall").tasks, 8192);
        assert_eq!(by_name("merge").tasks, 16);
    }

    #[test]
    fn fragment_sizes_match_paper_ranges() {
        // DAS4: 10-120 MB files; EC2: 5-60 MB files (Table 2).
        let das4_frag = NT_DB_BYTES / 512;
        let ec2_frag = NT_DB_BYTES / 1024;
        assert!((100 * MB..125 * MB).contains(&das4_frag), "{das4_frag}");
        assert!((50 * MB..62 * MB).contains(&ec2_frag), "{ec2_frag}");
    }

    #[test]
    fn runtime_data_near_200gb() {
        for wf in [blast_das4(256), blast_ec2(256)] {
            let runtime_gb = wf.runtime_bytes() as f64 / GB as f64;
            assert!(
                (160.0..=240.0).contains(&runtime_gb),
                "{}: runtime {runtime_gb} GB vs paper's ~200 GB",
                wf.name
            );
        }
    }

    #[test]
    fn both_platforms_have_equal_data_size() {
        // "the results between the two different runs are comparable as
        // they are equal in data size."
        let das4 = blast_das4(256).runtime_bytes() as f64;
        let ec2 = blast_ec2(256).runtime_bytes() as f64;
        assert!((das4 - ec2).abs() / das4 < 0.02);
    }

    #[test]
    fn blastall_reads_fragment_and_query() {
        let wf = blast_das4(128);
        for t in wf.tasks.iter().filter(|t| t.stage == "blastall") {
            assert_eq!(t.inputs.len(), 2);
        }
    }

    #[test]
    fn bundling_preserves_totals() {
        let full = blast(64, 4, 0);
        let bundled = blast(64, 4, 16);
        assert_eq!(full.runtime_bytes(), bundled.runtime_bytes());
        let cpu = |wf: &Workflow| -> f64 { wf.tasks.iter().map(|t| t.cpu_secs).sum() };
        assert!((cpu(&full) - cpu(&bundled)).abs() / cpu(&full) < 1e-9);
    }

    #[test]
    fn merge_is_an_aggregation() {
        let wf = blast_das4(256);
        let merge = wf.tasks.iter().find(|t| t.stage == "merge").unwrap();
        assert!(merge.inputs.len() >= crate::sched::AGGREGATION_INPUTS);
    }
}
