//! Workflow representation: files, tasks, stages, dependencies.
//!
//! A workflow is a DAG of tasks connected through intermediate files (the
//! MTC model of the paper's Figure 1): a task becomes ready when every
//! task producing one of its input files has completed. Initial input
//! files (produced by no task) are staged into the runtime file system
//! before execution.

use std::collections::HashMap;

/// Index of a file in a [`Workflow`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FileId(pub usize);

/// Index of a task in a [`Workflow`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TaskId(pub usize);

/// A file flowing through the workflow.
#[derive(Debug, Clone)]
pub struct FileSpec {
    /// Path-like name (unique).
    pub name: String,
    /// Size in bytes.
    pub size: u64,
    /// The producing task, or `None` for staged-in input data.
    pub producer: Option<TaskId>,
    /// Transient files are unlinked from the runtime FS once their last
    /// consumer task completes (e.g. BLAST's raw database fragments,
    /// superseded by the formatted database). Non-transient intermediates
    /// stay resident for the whole run, as the paper's memory figures
    /// assume.
    pub transient: bool,
}

/// One executable task.
#[derive(Debug, Clone)]
pub struct TaskSpec {
    /// Stage name ("mProjectPP", "blastall", …) for per-stage reporting.
    pub stage: String,
    /// Files read.
    pub inputs: Vec<FileId>,
    /// Files written.
    pub outputs: Vec<FileId>,
    /// Pure compute seconds on one core.
    pub cpu_secs: f64,
}

/// A complete workflow.
#[derive(Debug, Clone, Default)]
pub struct Workflow {
    /// Human-readable name ("Montage 6x6", …).
    pub name: String,
    /// All files (staged inputs and intermediates).
    pub files: Vec<FileSpec>,
    /// All tasks.
    pub tasks: Vec<TaskSpec>,
    names: HashMap<String, FileId>,
}

/// Aggregate statistics of one stage, used by Table 2-style summaries.
#[derive(Debug, Clone, PartialEq)]
pub struct StageStats {
    /// Stage name.
    pub stage: String,
    /// Task count.
    pub tasks: usize,
    /// Total bytes read by the stage.
    pub bytes_read: u64,
    /// Total bytes written by the stage.
    pub bytes_written: u64,
}

impl Workflow {
    /// An empty workflow with a name.
    pub fn new(name: impl Into<String>) -> Self {
        Workflow {
            name: name.into(),
            ..Default::default()
        }
    }

    /// Register a staged-in input file.
    pub fn add_input(&mut self, name: impl Into<String>, size: u64) -> FileId {
        self.add_file(name.into(), size, None)
    }

    fn add_file(&mut self, name: String, size: u64, producer: Option<TaskId>) -> FileId {
        assert!(
            !self.names.contains_key(&name),
            "duplicate file name {name}"
        );
        let id = FileId(self.files.len());
        self.names.insert(name.clone(), id);
        self.files.push(FileSpec {
            name,
            size,
            producer,
            transient: false,
        });
        id
    }

    /// Mark `file` as transient (freed after its last consumer).
    pub fn mark_transient(&mut self, file: FileId) {
        self.files[file.0].transient = true;
    }

    /// Add a task; its outputs are created as new files.
    pub fn add_task(
        &mut self,
        stage: impl Into<String>,
        inputs: Vec<FileId>,
        outputs: Vec<(String, u64)>,
        cpu_secs: f64,
    ) -> TaskId {
        let tid = TaskId(self.tasks.len());
        let out_ids: Vec<FileId> = outputs
            .into_iter()
            .map(|(name, size)| self.add_file(name, size, Some(tid)))
            .collect();
        for &f in &inputs {
            assert!(f.0 < self.files.len(), "task references unknown file");
        }
        self.tasks.push(TaskSpec {
            stage: stage.into(),
            inputs,
            outputs: out_ids,
            cpu_secs,
        });
        tid
    }

    /// Look up a file id by name.
    pub fn file_by_name(&self, name: &str) -> Option<FileId> {
        self.names.get(name).copied()
    }

    /// The file ids of staged-in inputs.
    pub fn staged_inputs(&self) -> Vec<FileId> {
        self.files
            .iter()
            .enumerate()
            .filter(|(_, f)| f.producer.is_none())
            .map(|(i, _)| FileId(i))
            .collect()
    }

    /// Total size of staged-in inputs (Table 2's "Input Size").
    pub fn input_bytes(&self) -> u64 {
        self.files
            .iter()
            .filter(|f| f.producer.is_none())
            .map(|f| f.size)
            .sum()
    }

    /// Total size of task-generated files (Table 2's "Runtime Data").
    pub fn runtime_bytes(&self) -> u64 {
        self.files
            .iter()
            .filter(|f| f.producer.is_some())
            .map(|f| f.size)
            .sum()
    }

    /// Per-stage task/byte statistics in stage-appearance order.
    pub fn stage_stats(&self) -> Vec<StageStats> {
        let mut order: Vec<String> = Vec::new();
        let mut map: HashMap<&str, StageStats> = HashMap::new();
        for task in &self.tasks {
            if !map.contains_key(task.stage.as_str()) {
                order.push(task.stage.clone());
                map.insert(
                    task.stage.as_str(),
                    StageStats {
                        stage: task.stage.clone(),
                        tasks: 0,
                        bytes_read: 0,
                        bytes_written: 0,
                    },
                );
            }
            let entry = map.get_mut(task.stage.as_str()).expect("just inserted");
            entry.tasks += 1;
            entry.bytes_read += task
                .inputs
                .iter()
                .map(|&f| self.files[f.0].size)
                .sum::<u64>();
            entry.bytes_written += task
                .outputs
                .iter()
                .map(|&f| self.files[f.0].size)
                .sum::<u64>();
        }
        order
            .iter()
            .map(|s| map.remove(s.as_str()).expect("stage recorded"))
            .collect()
    }

    /// Validate DAG invariants: every input is produced by an
    /// earlier-indexed task or staged in (generators emit tasks in
    /// topological order), and producers are consistent.
    pub fn validate(&self) -> Result<(), String> {
        for (ti, task) in self.tasks.iter().enumerate() {
            for &f in &task.inputs {
                let file = &self.files[f.0];
                if let Some(producer) = file.producer {
                    if producer.0 >= ti {
                        return Err(format!(
                            "task {ti} ({}) reads {} produced by later task {}",
                            task.stage, file.name, producer.0
                        ));
                    }
                }
            }
            for &f in &task.outputs {
                if self.files[f.0].producer != Some(TaskId(ti)) {
                    return Err(format!("output {} of task {ti} has wrong producer", f.0));
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diamond() -> Workflow {
        let mut wf = Workflow::new("diamond");
        let input = wf.add_input("/in", 100);
        let a = wf.add_task(
            "split",
            vec![input],
            vec![("/a".into(), 50), ("/b".into(), 50)],
            1.0,
        );
        let fa = wf.tasks[a.0].outputs[0];
        let fb = wf.tasks[a.0].outputs[1];
        let b = wf.add_task("work", vec![fa], vec![("/a2".into(), 25)], 2.0);
        let c = wf.add_task("work", vec![fb], vec![("/b2".into(), 25)], 2.0);
        let fa2 = wf.tasks[b.0].outputs[0];
        let fb2 = wf.tasks[c.0].outputs[0];
        wf.add_task("merge", vec![fa2, fb2], vec![("/out".into(), 40)], 0.5);
        wf
    }

    #[test]
    fn diamond_is_valid() {
        let wf = diamond();
        wf.validate().unwrap();
        assert_eq!(wf.tasks.len(), 4);
        assert_eq!(wf.files.len(), 6);
        assert_eq!(wf.input_bytes(), 100);
        assert_eq!(wf.runtime_bytes(), 50 + 50 + 25 + 25 + 40);
        assert_eq!(wf.staged_inputs(), vec![FileId(0)]);
    }

    #[test]
    fn stage_stats_aggregate_in_order() {
        let stats = diamond().stage_stats();
        assert_eq!(stats.len(), 3);
        assert_eq!(stats[0].stage, "split");
        assert_eq!(stats[1].stage, "work");
        assert_eq!(stats[1].tasks, 2);
        assert_eq!(stats[1].bytes_read, 100);
        assert_eq!(stats[1].bytes_written, 50);
        assert_eq!(stats[2].stage, "merge");
    }

    #[test]
    fn file_lookup_by_name() {
        let wf = diamond();
        assert_eq!(wf.file_by_name("/in"), Some(FileId(0)));
        assert!(wf.file_by_name("/nope").is_none());
    }

    #[test]
    #[should_panic(expected = "duplicate file name")]
    fn duplicate_names_panic() {
        let mut wf = Workflow::new("dup");
        wf.add_input("/x", 1);
        wf.add_input("/x", 2);
    }

    #[test]
    fn validate_detects_forward_reference() {
        let mut wf = Workflow::new("bad");
        let input = wf.add_input("/in", 1);
        // Task 0 output.
        wf.add_task("s", vec![input], vec![("/mid".into(), 1)], 0.0);
        // Manually corrupt: make /mid's producer a future task.
        let mid = wf.file_by_name("/mid").unwrap();
        wf.files[mid.0].producer = Some(TaskId(5));
        let mut wf2 = wf.clone();
        wf2.tasks[0].inputs = vec![mid];
        assert!(wf2.validate().is_err());
    }
}
