//! Workflow scaling drivers: vertical/horizontal scalability on DAS4
//! (Figures 7, 8) and EC2 (Figures 10-15).

use memfs_cluster::{ClusterSpec, Deployment};
use serde::Serialize;

use crate::blast::{blast_das4, blast_ec2};
use crate::engine::WorkflowSim;
use crate::fsmodel::FsModelKind;
use crate::montage::montage;
use crate::report;
use crate::sched::SchedulerKind;
use crate::workflow::Workflow;

/// One (configuration, stage) measurement.
#[derive(Debug, Clone, Serialize)]
pub struct ScalingRow {
    /// Which figure this row belongs to ("fig7a", …).
    pub figure: &'static str,
    /// "MemFS" or "AMFS".
    pub system: &'static str,
    /// Node count.
    pub nodes: usize,
    /// Concurrent tasks per node.
    pub cores_per_node: usize,
    /// Stage name.
    pub stage: String,
    /// Stage wall time, seconds.
    pub stage_secs: f64,
    /// Average network bandwidth per node during the stage, bytes/s.
    pub stage_bw_per_node: f64,
    /// Set when the whole run failed (stage values are then zero).
    pub failed: Option<String>,
}

/// Stages the paper plots for Montage.
pub const MONTAGE_STAGES: [&str; 3] = ["mProjectPP", "mDiffFit", "mBackground"];
/// Stages the paper plots for BLAST.
pub const BLAST_STAGES: [&str; 2] = ["formatdb", "blastall"];

/// Bundle cap: a few records per core keeps scheduling realistic while
/// bounding simulation cost.
pub fn bundle_for(total_cores: usize) -> usize {
    (4 * total_cores).max(512)
}

/// Run one configuration and emit rows for the given stages.
#[allow(clippy::too_many_arguments)]
pub fn run_config(
    figure: &'static str,
    workflow: &Workflow,
    deployment: Deployment,
    fs: FsModelKind,
    stages: &[&str],
) -> Vec<ScalingRow> {
    // AMFS always runs with one FUSE mountpoint per node — "for AMFS it
    // is not straightforward to use multiple mountpoints" (§4.2.2) — and
    // one FS process, which also gives it a slightly larger storage
    // budget per node.
    let (system, scheduler, deployment) = match fs {
        FsModelKind::MemFs => ("MemFS", SchedulerKind::Uniform, deployment),
        FsModelKind::Amfs => (
            "AMFS",
            SchedulerKind::LocalityAware,
            deployment.with_single_mount(),
        ),
    };
    let nodes = deployment.cluster.n_nodes;
    let cores = deployment.cores_per_node;
    let sim = WorkflowSim {
        deployment,
        fs,
        scheduler,
    };
    let result = sim.run(workflow);
    stages
        .iter()
        .map(|&stage| ScalingRow {
            figure,
            system,
            nodes,
            cores_per_node: cores,
            stage: stage.to_string(),
            stage_secs: result.stage_secs.get(stage).copied().unwrap_or(0.0),
            stage_bw_per_node: result.stage_bw_per_node.get(stage).copied().unwrap_or(0.0),
            failed: result.failed.clone(),
        })
        .collect()
}

/// Figure 7a/7b/7c: vertical scalability on 64 DAS4 nodes (64-512 cores).
pub fn run_fig7() -> Vec<ScalingRow> {
    let mut rows = Vec::new();
    // 7a: Montage 6, MemFS vs AMFS, 1-8 cores per node.
    let wf6 = montage(6, bundle_for(512));
    for cores in [1usize, 2, 4, 8] {
        for fs in [FsModelKind::MemFs, FsModelKind::Amfs] {
            let d = Deployment::full(ClusterSpec::das4_ipoib(64)).with_cores_per_node(cores);
            rows.extend(run_config("fig7a", &wf6, d, fs, &MONTAGE_STAGES));
        }
    }
    // 7b: Montage 12, MemFS only (AMFS cannot run it).
    let wf12 = montage(12, bundle_for(512));
    for cores in [2usize, 4, 8] {
        let d = Deployment::full(ClusterSpec::das4_ipoib(64)).with_cores_per_node(cores);
        rows.extend(run_config(
            "fig7b",
            &wf12,
            d,
            FsModelKind::MemFs,
            &MONTAGE_STAGES,
        ));
    }
    // 7c: BLAST, MemFS vs AMFS.
    let wfb = blast_das4(bundle_for(512));
    for cores in [1usize, 2, 4, 8] {
        for fs in [FsModelKind::MemFs, FsModelKind::Amfs] {
            let d = Deployment::full(ClusterSpec::das4_ipoib(64)).with_cores_per_node(cores);
            rows.extend(run_config("fig7c", &wfb, d, fs, &BLAST_STAGES));
        }
    }
    rows
}

/// Figure 8a/8b/8c: horizontal scalability on 8-64 DAS4 nodes.
pub fn run_fig8() -> Vec<ScalingRow> {
    let mut rows = Vec::new();
    let wf6 = montage(6, bundle_for(512));
    for nodes in [8usize, 16, 32, 64] {
        // AMFS at 8 and at 4 cores per node (the paper shows both), and
        // MemFS at 8.
        for (fig, fs, cores) in [
            ("fig8a-amfs8", FsModelKind::Amfs, 8usize),
            ("fig8a-amfs4", FsModelKind::Amfs, 4),
            ("fig8a-memfs", FsModelKind::MemFs, 8),
        ] {
            let d = Deployment::full(ClusterSpec::das4_ipoib(nodes)).with_cores_per_node(cores);
            rows.extend(run_config(fig, &wf6, d, fs, &MONTAGE_STAGES));
        }
    }
    let wf12 = montage(12, bundle_for(512));
    for nodes in [16usize, 32, 64] {
        let d = Deployment::full(ClusterSpec::das4_ipoib(nodes));
        rows.extend(run_config(
            "fig8b",
            &wf12,
            d,
            FsModelKind::MemFs,
            &MONTAGE_STAGES,
        ));
    }
    let wfb = blast_das4(bundle_for(512));
    for nodes in [8usize, 16, 32, 64] {
        for fs in [FsModelKind::MemFs, FsModelKind::Amfs] {
            let d = Deployment::full(ClusterSpec::das4_ipoib(nodes));
            rows.extend(run_config("fig8c", &wfb, d, fs, &BLAST_STAGES));
        }
    }
    rows
}

/// Figure 10: the FUSE mountpoint bottleneck — Montage 6 on 4 EC2 VMs,
/// 4-32 cores each, single mountpoint vs one per process (MemFS).
pub fn run_fig10() -> Vec<ScalingRow> {
    let mut rows = Vec::new();
    let wf = montage(6, bundle_for(128));
    for cores in [4usize, 8, 16, 32] {
        let single = Deployment::full(ClusterSpec::ec2(4))
            .with_cores_per_node(cores)
            .with_single_mount();
        rows.extend(run_config(
            "fig10a",
            &wf,
            single,
            FsModelKind::MemFs,
            &MONTAGE_STAGES,
        ));
        let per_proc = Deployment::full(ClusterSpec::ec2(4)).with_cores_per_node(cores);
        rows.extend(run_config(
            "fig10b",
            &wf,
            per_proc,
            FsModelKind::MemFs,
            &MONTAGE_STAGES,
        ));
    }
    rows
}

/// Figure 11: MemFS vs AMFS vertical scalability on 4 EC2 VMs. AMFS is
/// limited to 8 processes per node (single mountpoint + storage
/// imbalance); MemFS runs to 32 with per-process mounts.
pub fn run_fig11() -> Vec<ScalingRow> {
    let mut rows = Vec::new();
    let wf = montage(6, bundle_for(128));
    for cores in [4usize, 8, 16, 32] {
        let d = Deployment::full(ClusterSpec::ec2(4)).with_cores_per_node(cores);
        rows.extend(run_config(
            "fig11",
            &wf,
            d,
            FsModelKind::MemFs,
            &MONTAGE_STAGES,
        ));
    }
    for cores in [4usize, 8] {
        let d = Deployment::full(ClusterSpec::ec2(4))
            .with_cores_per_node(cores)
            .with_single_mount();
        rows.extend(run_config(
            "fig11",
            &wf,
            d,
            FsModelKind::Amfs,
            &MONTAGE_STAGES,
        ));
    }
    rows
}

/// Figures 12 (Montage 16) and 13 (BLAST): vertical scalability on 32
/// EC2 VMs up to 1024 cores, with per-node bandwidth.
pub fn run_fig12_13() -> Vec<ScalingRow> {
    let mut rows = Vec::new();
    let wf16 = montage(16, bundle_for(1024));
    for cores in [4usize, 8, 16, 32] {
        let d = Deployment::full(ClusterSpec::ec2(32)).with_cores_per_node(cores);
        rows.extend(run_config(
            "fig12",
            &wf16,
            d,
            FsModelKind::MemFs,
            &MONTAGE_STAGES,
        ));
    }
    let wfb = blast_ec2(bundle_for(1024));
    for cores in [4usize, 8, 16, 32] {
        let d = Deployment::full(ClusterSpec::ec2(32)).with_cores_per_node(cores);
        rows.extend(run_config(
            "fig13",
            &wfb,
            d,
            FsModelKind::MemFs,
            &BLAST_STAGES,
        ));
    }
    rows
}

/// Figures 14 (Montage 12) and 15 (BLAST): horizontal scalability on
/// 8-32 EC2 VMs, all 32 cores used.
pub fn run_fig14_15() -> Vec<ScalingRow> {
    let mut rows = Vec::new();
    let wf12 = montage(12, bundle_for(1024));
    for nodes in [8usize, 16, 32] {
        let d = Deployment::full(ClusterSpec::ec2(nodes));
        rows.extend(run_config(
            "fig14",
            &wf12,
            d,
            FsModelKind::MemFs,
            &MONTAGE_STAGES,
        ));
    }
    let wfb = blast_ec2(bundle_for(1024));
    for nodes in [8usize, 16, 32] {
        let d = Deployment::full(ClusterSpec::ec2(nodes));
        rows.extend(run_config(
            "fig15",
            &wfb,
            d,
            FsModelKind::MemFs,
            &BLAST_STAGES,
        ));
    }
    rows
}

/// Render a set of scaling rows grouped by figure, stage times and
/// per-node bandwidth side by side.
pub fn render_scaling(rows: &[ScalingRow]) -> String {
    let mut out = String::new();
    let mut figures: Vec<&'static str> = rows.iter().map(|r| r.figure).collect();
    figures.dedup();
    let mut seen = std::collections::BTreeSet::new();
    for fig in figures {
        if !seen.insert(fig) {
            continue;
        }
        out.push_str(&format!("\n[{fig}]\n"));
        let table_rows: Vec<Vec<String>> = rows
            .iter()
            .filter(|r| r.figure == fig)
            .map(|r| {
                vec![
                    format!("{} {}x{}", r.system, r.nodes, r.cores_per_node),
                    r.stage.clone(),
                    if r.failed.is_some() {
                        "FAILED".to_string()
                    } else {
                        report::secs(r.stage_secs)
                    },
                    report::mbps(r.stage_bw_per_node),
                ]
            })
            .collect();
        out.push_str(&report::table(
            &["Config", "Stage", "Time (s)", "BW/node (MB/s)"],
            &table_rows,
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Small, fast stand-ins for the full drivers (debug-build tests).
    fn tiny_montage() -> Workflow {
        montage(6, 96)
    }

    #[test]
    fn memfs_beats_amfs_on_montage_at_high_core_counts() {
        // The essence of Figures 7a/8a: with 8 cores per node AMFS'
        // locality misses hurt mDiffFit; MemFS finishes faster.
        let wf = tiny_montage();
        let d = Deployment::full(ClusterSpec::das4_ipoib(16));
        let memfs = run_config("t", &wf, d.clone(), FsModelKind::MemFs, &MONTAGE_STAGES);
        let amfs = run_config("t", &wf, d, FsModelKind::Amfs, &MONTAGE_STAGES);
        let total = |rows: &[ScalingRow]| rows.iter().map(|r| r.stage_secs).sum::<f64>();
        assert!(memfs.iter().all(|r| r.failed.is_none()));
        assert!(amfs.iter().all(|r| r.failed.is_none()));
        assert!(
            total(&memfs) < total(&amfs),
            "MemFS {} vs AMFS {}",
            total(&memfs),
            total(&amfs)
        );
    }

    #[test]
    fn memfs_vertical_scaling_on_cpu_bound_stage() {
        // mProjectPP is CPU-bound: doubling cores per node should cut its
        // time nearly in half (Figure 7a's MemFS bars).
        let wf = tiny_montage();
        let stage = |rows: &[ScalingRow], name: &str| {
            rows.iter().find(|r| r.stage == name).unwrap().stage_secs
        };
        let d2 = Deployment::full(ClusterSpec::das4_ipoib(16)).with_cores_per_node(2);
        let d8 = Deployment::full(ClusterSpec::das4_ipoib(16)).with_cores_per_node(8);
        let r2 = run_config("t", &wf, d2, FsModelKind::MemFs, &MONTAGE_STAGES);
        let r8 = run_config("t", &wf, d8, FsModelKind::MemFs, &MONTAGE_STAGES);
        let speedup = stage(&r2, "mProjectPP") / stage(&r8, "mProjectPP");
        assert!(
            (2.5..4.5).contains(&speedup),
            "mProjectPP 2->8 cores speedup {speedup}"
        );
    }

    #[test]
    fn single_mountpoint_hurts_beyond_knee() {
        // Figure 10 in miniature.
        let wf = montage(6, 64);
        let single = Deployment::full(ClusterSpec::ec2(4))
            .with_cores_per_node(32)
            .with_single_mount();
        let per_proc = Deployment::full(ClusterSpec::ec2(4)).with_cores_per_node(32);
        let r_single = run_config("t", &wf, single, FsModelKind::MemFs, &MONTAGE_STAGES);
        let r_pp = run_config("t", &wf, per_proc, FsModelKind::MemFs, &MONTAGE_STAGES);
        let io_stage = |rows: &[ScalingRow]| {
            rows.iter()
                .find(|r| r.stage == "mDiffFit")
                .unwrap()
                .stage_secs
        };
        assert!(
            io_stage(&r_single) > io_stage(&r_pp) * 1.2,
            "single {} vs per-process {}",
            io_stage(&r_single),
            io_stage(&r_pp)
        );
    }

    #[test]
    fn horizontal_scaling_reduces_stage_times() {
        let wf = tiny_montage();
        let d8 = Deployment::full(ClusterSpec::das4_ipoib(8));
        let d32 = Deployment::full(ClusterSpec::das4_ipoib(32));
        let r8 = run_config("t", &wf, d8, FsModelKind::MemFs, &MONTAGE_STAGES);
        let r32 = run_config("t", &wf, d32, FsModelKind::MemFs, &MONTAGE_STAGES);
        let total = |rows: &[ScalingRow]| rows.iter().map(|r| r.stage_secs).sum::<f64>();
        assert!(total(&r32) < total(&r8) / 1.8);
    }

    #[test]
    fn render_groups_by_figure() {
        let wf = tiny_montage();
        let d = Deployment::full(ClusterSpec::das4_ipoib(8));
        let rows = run_config("figX", &wf, d, FsModelKind::MemFs, &MONTAGE_STAGES);
        let out = render_scaling(&rows);
        assert!(out.contains("[figX]"));
        assert!(out.contains("mDiffFit"));
    }
}
