//! MTC Envelope experiment drivers: Figures 4 (bandwidth), 5
//! (throughput), 6 (metadata), 16 (application-vs-system bandwidth) and
//! Table 1.

use memfs_cluster::ClusterSpec;
use memfs_simcore::units::{KB, MB};
use serde::Serialize;

use crate::envelope::EnvelopeModel;
use crate::report;

/// The paper's node scales for Figures 4-6.
pub const NODE_SCALES: [usize; 4] = [8, 16, 32, 64];
/// The paper's file sizes: small, medium, large.
pub const FILE_SIZES: [u64; 3] = [KB, MB, 128 * MB];

/// One envelope sweep row (a point of Figures 4 and 5).
#[derive(Debug, Clone, Serialize)]
pub struct EnvelopeRow {
    /// Node count.
    pub nodes: usize,
    /// File size in bytes.
    pub file_bytes: u64,
    /// Metric name ("write", "1-1 read", "N-1 read").
    pub metric: &'static str,
    /// File system ("MemFS"/"AMFS").
    pub system: &'static str,
    /// Aggregate bandwidth bytes/s (Figure 4).
    pub bandwidth: f64,
    /// Aggregate throughput op/s (Figure 5).
    pub throughput: f64,
}

/// Run the Figure 4/5 sweep on DAS4-IPoIB.
pub fn run_envelope_sweep() -> Vec<EnvelopeRow> {
    let mut rows = Vec::new();
    for &nodes in &NODE_SCALES {
        let model = EnvelopeModel::new(ClusterSpec::das4_ipoib(nodes));
        for &file in &FILE_SIZES {
            let points = [
                ("write", "MemFS", model.memfs_write(file)),
                ("write", "AMFS", model.amfs_write(file)),
                ("1-1 read", "MemFS", model.memfs_read_1_1(file)),
                ("1-1 read", "AMFS", model.amfs_read_1_1(file)),
                ("N-1 read", "MemFS", model.memfs_read_n_1(file)),
                ("N-1 read", "AMFS", model.amfs_read_n_1(file)),
            ];
            for (metric, system, p) in points {
                rows.push(EnvelopeRow {
                    nodes,
                    file_bytes: file,
                    metric,
                    system,
                    bandwidth: p.bandwidth,
                    throughput: p.throughput,
                });
            }
        }
    }
    rows
}

/// Render the Figure 4 (bandwidth, MB/s) or Figure 5 (throughput, op/s)
/// series for one file size.
pub fn render_envelope(rows: &[EnvelopeRow], file_bytes: u64, bandwidth: bool) -> String {
    let mut out = String::new();
    let unit = if bandwidth { "MB/s" } else { "op/s" };
    out.push_str(&format!(
        "File size {}: aggregate {} vs nodes (DAS4-IPoIB)\n",
        memfs_simcore::units::fmt_bytes(file_bytes),
        unit
    ));
    let header = ["Series", "8", "16", "32", "64"];
    let mut table_rows = Vec::new();
    for system in ["MemFS", "AMFS"] {
        for metric in ["write", "1-1 read", "N-1 read"] {
            let mut cells = vec![format!("{system} {metric}")];
            for &nodes in &NODE_SCALES {
                let row = rows
                    .iter()
                    .find(|r| {
                        r.nodes == nodes
                            && r.file_bytes == file_bytes
                            && r.metric == metric
                            && r.system == system
                    })
                    .expect("sweep covers all points");
                cells.push(if bandwidth {
                    report::mbps(row.bandwidth)
                } else {
                    report::ops(row.throughput)
                });
            }
            table_rows.push(cells);
        }
    }
    out.push_str(&report::table(&header, &table_rows));
    out
}

/// One metadata point of Figure 6.
#[derive(Debug, Clone, Serialize)]
pub struct MetadataRow {
    /// Node count.
    pub nodes: usize,
    /// MemFS create op/s.
    pub memfs_create: f64,
    /// AMFS create op/s.
    pub amfs_create: f64,
    /// MemFS open op/s.
    pub memfs_open: f64,
    /// AMFS open op/s.
    pub amfs_open: f64,
}

/// Run Figure 6 (metadata throughput vs nodes, DAS4-IPoIB).
pub fn run_metadata_sweep() -> Vec<MetadataRow> {
    let mut scales = vec![4usize];
    scales.extend((8..=64).step_by(8));
    scales
        .into_iter()
        .map(|nodes| {
            let m = EnvelopeModel::new(ClusterSpec::das4_ipoib(nodes));
            MetadataRow {
                nodes,
                memfs_create: m.memfs_create(),
                amfs_create: m.amfs_create(),
                memfs_open: m.memfs_open(),
                amfs_open: m.amfs_open(),
            }
        })
        .collect()
}

/// Render Figure 6 as a table.
pub fn render_metadata(rows: &[MetadataRow]) -> String {
    let mut out = String::from("Metadata operations throughput (op/s) vs nodes\n");
    let table_rows: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.nodes.to_string(),
                report::ops(r.memfs_create),
                report::ops(r.amfs_create),
                report::ops(r.memfs_open),
                report::ops(r.amfs_open),
            ]
        })
        .collect();
    out.push_str(&report::table(
        &[
            "Nodes",
            "MemFS Create",
            "AMFS Create",
            "MemFS Open",
            "AMFS Open",
        ],
        &table_rows,
    ));
    out
}

/// Table 1: the envelope at 64 nodes / 1 MB files on both networks.
#[derive(Debug, Clone, Serialize)]
pub struct Table1 {
    /// Row labels in paper order.
    pub rows: Vec<Table1Row>,
}

/// One Table 1 row.
#[derive(Debug, Clone, Serialize)]
pub struct Table1Row {
    /// Metric label.
    pub metric: String,
    /// AMFS over IPoIB.
    pub amfs_ipoib: f64,
    /// MemFS over IPoIB.
    pub memfs_ipoib: f64,
    /// AMFS over 1 GbE.
    pub amfs_gbe: f64,
    /// MemFS over 1 GbE.
    pub memfs_gbe: f64,
}

/// Compute Table 1.
pub fn run_table1() -> Table1 {
    let file = MB;
    let ipoib = EnvelopeModel::new(ClusterSpec::das4_ipoib(64));
    let gbe = EnvelopeModel::new(ClusterSpec::das4_gbe(64));
    let bw = |m: &EnvelopeModel, f: fn(&EnvelopeModel, u64) -> crate::envelope::EnvelopePoint| {
        f(m, file).bandwidth / 1e6
    };
    let rows = vec![
        Table1Row {
            metric: "Write Bw (MB/s)".into(),
            amfs_ipoib: bw(&ipoib, EnvelopeModel::amfs_write),
            memfs_ipoib: bw(&ipoib, EnvelopeModel::memfs_write),
            amfs_gbe: bw(&gbe, EnvelopeModel::amfs_write),
            memfs_gbe: bw(&gbe, EnvelopeModel::memfs_write),
        },
        Table1Row {
            metric: "1-1 Read Bw (MB/s)".into(),
            amfs_ipoib: bw(&ipoib, EnvelopeModel::amfs_read_1_1),
            memfs_ipoib: bw(&ipoib, EnvelopeModel::memfs_read_1_1),
            amfs_gbe: bw(&gbe, EnvelopeModel::amfs_read_1_1),
            memfs_gbe: bw(&gbe, EnvelopeModel::memfs_read_1_1),
        },
        Table1Row {
            metric: "1-1 Read Bw remote (MB/s)".into(),
            amfs_ipoib: bw(&ipoib, EnvelopeModel::amfs_read_1_1_remote),
            memfs_ipoib: f64::NAN, // MemFS has no locality to lose
            amfs_gbe: bw(&gbe, EnvelopeModel::amfs_read_1_1_remote),
            memfs_gbe: f64::NAN,
        },
        Table1Row {
            metric: "N-1 Read Bw (MB/s)".into(),
            amfs_ipoib: bw(&ipoib, EnvelopeModel::amfs_read_n_1),
            memfs_ipoib: bw(&ipoib, EnvelopeModel::memfs_read_n_1),
            amfs_gbe: bw(&gbe, EnvelopeModel::amfs_read_n_1),
            memfs_gbe: bw(&gbe, EnvelopeModel::memfs_read_n_1),
        },
        Table1Row {
            metric: "Create (op/s)".into(),
            amfs_ipoib: ipoib.amfs_create(),
            memfs_ipoib: ipoib.memfs_create(),
            amfs_gbe: gbe.amfs_create(),
            memfs_gbe: gbe.memfs_create(),
        },
        Table1Row {
            metric: "Open (op/s)".into(),
            amfs_ipoib: ipoib.amfs_open(),
            memfs_ipoib: ipoib.memfs_open(),
            amfs_gbe: gbe.amfs_open(),
            memfs_gbe: gbe.memfs_open(),
        },
    ];
    Table1 { rows }
}

/// Render Table 1.
pub fn render_table1(t: &Table1) -> String {
    let mut out = String::from("Table 1: MTC Envelope, scale 64, file size 1MB\n");
    let fmt = |v: f64| {
        if v.is_nan() {
            "-".to_string()
        } else {
            format!("{v:.0}")
        }
    };
    let rows: Vec<Vec<String>> = t
        .rows
        .iter()
        .map(|r| {
            vec![
                r.metric.clone(),
                fmt(r.amfs_ipoib),
                fmt(r.memfs_ipoib),
                fmt(r.amfs_gbe),
                fmt(r.memfs_gbe),
            ]
        })
        .collect();
    out.push_str(&report::table(
        &[
            "Metric",
            "AMFS IPoIB",
            "MemFS IPoIB",
            "AMFS 1GbE",
            "MemFS 1GbE",
        ],
        &rows,
    ));
    out
}

/// One Figure 16 point.
#[derive(Debug, Clone, Serialize)]
pub struct Fig16Row {
    /// Platform name.
    pub platform: &'static str,
    /// Cores per node running iozone.
    pub cores: usize,
    /// Application bandwidth per node, bytes/s.
    pub app_bw: f64,
    /// System (application + memcached) bandwidth per node, bytes/s.
    pub system_bw: f64,
}

/// Run Figure 16: the 4 KB-block bandwidth microbenchmark on EC2 (1-32
/// cores, 8 instances) and DAS4 (1-8 cores, 8 nodes).
pub fn run_fig16() -> Vec<Fig16Row> {
    let mut rows = Vec::new();
    let ec2 = EnvelopeModel::new(ClusterSpec::ec2(8));
    for cores in [1usize, 2, 4, 8, 16, 32] {
        rows.push(Fig16Row {
            platform: "EC2",
            cores,
            app_bw: ec2.app_bandwidth_per_node(cores),
            system_bw: ec2.system_bandwidth_per_node(cores),
        });
    }
    let das4 = EnvelopeModel::new(ClusterSpec::das4_ipoib(8));
    for cores in [1usize, 2, 4, 8] {
        rows.push(Fig16Row {
            platform: "DAS4",
            cores,
            app_bw: das4.app_bandwidth_per_node(cores),
            system_bw: das4.system_bandwidth_per_node(cores),
        });
    }
    rows
}

/// Render Figure 16.
pub fn render_fig16(rows: &[Fig16Row]) -> String {
    let mut out =
        String::from("MemFS bandwidth microbenchmark (4KB blocks): per-node MB/s vs cores\n");
    let table_rows: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                format!("{} {} cores", r.platform, r.cores),
                report::mbps(r.app_bw),
                report::mbps(r.system_bw),
            ]
        })
        .collect();
    out.push_str(&report::table(
        &["Configuration", "Application", "System"],
        &table_rows,
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_covers_all_combinations() {
        let rows = run_envelope_sweep();
        assert_eq!(rows.len(), 4 * 3 * 6);
        // Bandwidth grows with node count for every MemFS series.
        for &file in &FILE_SIZES {
            for metric in ["write", "1-1 read", "N-1 read"] {
                let series: Vec<f64> = NODE_SCALES
                    .iter()
                    .map(|&n| {
                        rows.iter()
                            .find(|r| {
                                r.nodes == n
                                    && r.file_bytes == file
                                    && r.metric == metric
                                    && r.system == "MemFS"
                            })
                            .unwrap()
                            .bandwidth
                    })
                    .collect();
                assert!(
                    series.windows(2).all(|w| w[1] > w[0]),
                    "{metric}@{file} not monotonic: {series:?}"
                );
            }
        }
    }

    #[test]
    fn renders_are_nonempty_and_structured() {
        let rows = run_envelope_sweep();
        for &file in &FILE_SIZES {
            let bw = render_envelope(&rows, file, true);
            assert!(bw.contains("MemFS write"));
            assert!(bw.lines().count() >= 8);
            let tp = render_envelope(&rows, file, false);
            assert!(tp.contains("op/s"));
        }
    }

    #[test]
    fn metadata_sweep_shape() {
        let rows = run_metadata_sweep();
        assert!(rows.len() >= 8);
        let last = rows.last().unwrap();
        assert_eq!(last.nodes, 64);
        assert!(last.amfs_open > last.memfs_open);
        let out = render_metadata(&rows);
        assert!(out.contains("MemFS Create"));
    }

    #[test]
    fn table1_row_order_and_render() {
        let t = run_table1();
        assert_eq!(t.rows.len(), 6);
        assert!(t.rows[2].memfs_ipoib.is_nan());
        // GbE write is far below IPoIB write for MemFS.
        assert!(t.rows[0].memfs_gbe < t.rows[0].memfs_ipoib / 3.0);
        let out = render_table1(&t);
        assert!(out.contains("N-1 Read"));
        assert!(out.contains('-'));
    }

    #[test]
    fn fig16_rows_cover_both_platforms() {
        let rows = run_fig16();
        assert_eq!(rows.iter().filter(|r| r.platform == "EC2").count(), 6);
        assert_eq!(rows.iter().filter(|r| r.platform == "DAS4").count(), 4);
        for r in &rows {
            assert!((r.system_bw - 2.0 * r.app_bw).abs() < 1.0);
        }
        assert!(render_fig16(&rows).contains("Application"));
    }
}
