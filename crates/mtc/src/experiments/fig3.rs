//! Figure 3 — the MemFS design-decision experiments, run on the **real**
//! engine (`memfs-core` moving actual bytes), with remote-server costs
//! emulated by `memkv`'s latency/bandwidth-shaping client.
//!
//! * Figure 3a: stripe size (128 KB - 1 MB) vs write/read bandwidth —
//!   the sweep behind the paper's 512 KB choice.
//! * Figure 3b: number of buffering/prefetching threads vs bandwidth,
//!   including the no-buffering and no-prefetching baselines.
//!
//! These measure wall-clock time on the host, so absolute numbers depend
//! on the machine; the *shapes* (write bandwidth growing with stripe
//! size, reads flat in stripe size, thread scaling saturating) are the
//! reproduction target.

use std::sync::Arc;
use std::time::Instant;

use memfs_core::{MemFs, MemFsConfig};
use memfs_memkv::client::Shaping;
use memfs_memkv::{KvClient, LocalClient, Store, StoreConfig, ThrottledClient};
use serde::Serialize;

use crate::report;

/// One Figure 3a point.
#[derive(Debug, Clone, Serialize)]
pub struct Fig3aRow {
    /// Stripe size in bytes.
    pub stripe_bytes: usize,
    /// Write bandwidth, bytes/s.
    pub write_bw: f64,
    /// Read bandwidth, bytes/s.
    pub read_bw: f64,
}

/// One Figure 3b point.
#[derive(Debug, Clone, Serialize)]
pub struct Fig3bRow {
    /// Thread-pool size.
    pub threads: usize,
    /// Write bandwidth with buffering, bytes/s.
    pub write_bw: f64,
    /// Write bandwidth with the buffer reduced to one stripe
    /// (no-buffering baseline), bytes/s.
    pub write_nobuf_bw: f64,
    /// Read bandwidth with prefetching, bytes/s.
    pub read_bw: f64,
    /// Read bandwidth with prefetching disabled, bytes/s.
    pub read_noprefetch_bw: f64,
}

/// Build a pool of `n` shaped in-process servers.
fn shaped_servers(n: usize, shaping: Shaping) -> Vec<Arc<dyn KvClient>> {
    (0..n)
        .map(|_| {
            let store = Arc::new(Store::new(StoreConfig::default()));
            Arc::new(ThrottledClient::new(LocalClient::new(store), shaping)) as Arc<dyn KvClient>
        })
        .collect()
}

/// Measure write and read bandwidth for one configuration.
fn measure(config: MemFsConfig, servers: Vec<Arc<dyn KvClient>>, file_bytes: usize) -> (f64, f64) {
    let fs = MemFs::new(servers, config).expect("valid config");
    let payload = vec![0xA5u8; 1 << 20];
    let mut w = fs.create("/bench.dat").expect("create");
    let mut left = file_bytes;
    let start = Instant::now();
    while left > 0 {
        let n = left.min(payload.len());
        w.write_all(&payload[..n]).expect("write");
        left -= n;
    }
    w.close().expect("close");
    let write_secs = start.elapsed().as_secs_f64();

    // Fresh handle => fresh prefetch cache (a different reader node).
    let r = fs.open("/bench.dat").expect("open");
    let mut buf = vec![0u8; 1 << 20];
    let start = Instant::now();
    let mut off = 0u64;
    while off < file_bytes as u64 {
        let n = r.read_at(off, &mut buf).expect("read");
        assert!(n > 0);
        off += n as u64;
    }
    let read_secs = start.elapsed().as_secs_f64();
    (
        file_bytes as f64 / write_secs,
        file_bytes as f64 / read_secs,
    )
}

/// Run the Figure 3a stripe-size sweep.
pub fn run_fig3a(file_bytes: usize, shaping: Shaping) -> Vec<Fig3aRow> {
    [128usize, 256, 512, 1024]
        .iter()
        .map(|&kib| {
            let stripe = kib << 10;
            let config = MemFsConfig {
                stripe_size: stripe,
                write_buffer_size: 8 << 20,
                read_cache_size: 8 << 20,
                writer_threads: 4,
                prefetch_threads: 4,
                prefetch_window: 8,
                ..MemFsConfig::default()
            };
            let (write_bw, read_bw) = measure(config, shaped_servers(4, shaping), file_bytes);
            Fig3aRow {
                stripe_bytes: stripe,
                write_bw,
                read_bw,
            }
        })
        .collect()
}

/// Run the Figure 3b thread sweep.
pub fn run_fig3b(file_bytes: usize, shaping: Shaping) -> Vec<Fig3bRow> {
    (1usize..=8)
        .map(|threads| {
            let base = MemFsConfig {
                stripe_size: 512 << 10,
                write_buffer_size: 8 << 20,
                read_cache_size: 8 << 20,
                writer_threads: threads,
                prefetch_threads: threads,
                prefetch_window: 8,
                ..MemFsConfig::default()
            };
            let (write_bw, read_bw) = measure(base.clone(), shaped_servers(4, shaping), file_bytes);

            // No buffering: the write buffer holds a single stripe, so
            // each stripe is stored synchronously before the next fills.
            let mut nobuf = base.clone();
            nobuf.write_buffer_size = nobuf.stripe_size;
            let (write_nobuf_bw, _) = measure(nobuf, shaped_servers(4, shaping), file_bytes);

            // No prefetching. The figure's baseline is a synchronous
            // reader fetching one stripe per round trip, so pin the
            // dispatcher to sequential dispatch — otherwise a read
            // spanning several stripes fans out to all servers at once
            // and the baseline stops being a no-concurrency reader.
            let noprefetch = base.without_prefetch().with_io_parallelism(1);
            let (_, read_noprefetch_bw) =
                measure(noprefetch, shaped_servers(4, shaping), file_bytes);

            Fig3bRow {
                threads,
                write_bw,
                write_nobuf_bw,
                read_bw,
                read_noprefetch_bw,
            }
        })
        .collect()
}

/// Render Figure 3a.
pub fn render_fig3a(rows: &[Fig3aRow]) -> String {
    let mut out = String::from("Figure 3a: stripe size influence on MemFS I/O (MB/s)\n");
    let table_rows: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                format!("{} KB", r.stripe_bytes >> 10),
                report::mbps(r.write_bw),
                report::mbps(r.read_bw),
            ]
        })
        .collect();
    out.push_str(&report::table(&["Stripe", "Write", "Read"], &table_rows));
    out
}

/// Render Figure 3b.
pub fn render_fig3b(rows: &[Fig3bRow]) -> String {
    let mut out = String::from("Figure 3b: buffering and prefetching effect (MB/s)\n");
    let table_rows: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.threads.to_string(),
                report::mbps(r.write_bw),
                report::mbps(r.write_nobuf_bw),
                report::mbps(r.read_bw),
                report::mbps(r.read_noprefetch_bw),
            ]
        })
        .collect();
    out.push_str(&report::table(
        &[
            "Threads",
            "Write",
            "Write (no buf)",
            "Read",
            "Read (no prefetch)",
        ],
        &table_rows,
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    fn fast_shaping() -> Shaping {
        // Keep test wall-time low while still exercising the shaped path.
        Shaping {
            latency: Duration::from_micros(30),
            bandwidth: 2e9,
        }
    }

    #[test]
    fn fig3a_rows_cover_stripe_sizes() {
        let rows = run_fig3a(2 << 20, fast_shaping());
        assert_eq!(rows.len(), 4);
        assert_eq!(rows[0].stripe_bytes, 128 << 10);
        assert!(rows.iter().all(|r| r.write_bw > 0.0 && r.read_bw > 0.0));
        assert!(render_fig3a(&rows).contains("512 KB"));
    }

    #[test]
    fn fig3b_prefetch_helps_under_latency() {
        // With real per-request latency, prefetching must beat the
        // synchronous read path at >= 4 threads.
        let shaping = Shaping {
            latency: Duration::from_micros(400),
            bandwidth: 2e9,
        };
        let rows = run_fig3b(4 << 20, shaping);
        let r4 = rows.iter().find(|r| r.threads == 4).unwrap();
        assert!(
            r4.read_bw > r4.read_noprefetch_bw,
            "prefetch {} <= sync {}",
            r4.read_bw,
            r4.read_noprefetch_bw
        );
        assert!(render_fig3b(&rows).contains("no prefetch"));
    }
}
