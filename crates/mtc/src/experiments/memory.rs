//! Memory-distribution drivers: Figure 9 (aggregate memory consumption)
//! and Table 3 (AMFS' scheduler-node hotspot), plus the Montage 12x12
//! AMFS crash demonstration (§4.2.1).

use memfs_cluster::{ClusterSpec, Deployment};
use serde::Serialize;

use crate::engine::WorkflowSim;
use crate::experiments::scaling::bundle_for;
use crate::fsmodel::FsModelKind;
use crate::montage::montage;
use crate::report;
use crate::sched::{SchedulerKind, SHELL_NODE};

/// One Figure 9 / Table 3 measurement.
#[derive(Debug, Clone, Serialize)]
pub struct MemoryRow {
    /// Node count.
    pub nodes: usize,
    /// "MemFS" or "AMFS".
    pub system: &'static str,
    /// Aggregate peak memory over all nodes, bytes (Figure 9).
    pub aggregate_peak: u64,
    /// Peak on the scheduler node (Table 3's first column).
    pub scheduler_node_peak: u64,
    /// Mean peak over the other nodes (Table 3's second column).
    pub other_nodes_mean_peak: u64,
    /// Set when the run failed (AMFS on oversized workflows).
    pub failed: Option<String>,
}

fn run_one(nodes: usize, degree: u32, fs: FsModelKind) -> MemoryRow {
    let wf = montage(degree, bundle_for(nodes * 8));
    let deployment = Deployment::full(ClusterSpec::das4_ipoib(nodes));
    let (system, scheduler, deployment) = match fs {
        FsModelKind::MemFs => ("MemFS", SchedulerKind::Uniform, deployment),
        FsModelKind::Amfs => (
            // AMFS runs one FS process and one mountpoint per node.
            "AMFS",
            SchedulerKind::LocalityAware,
            deployment.with_single_mount(),
        ),
    };
    let sim = WorkflowSim {
        deployment,
        fs,
        scheduler,
    };
    let r = sim.run(&wf);
    let sched_peak = r.peak_mem_per_node.get(SHELL_NODE).copied().unwrap_or(0);
    let others: Vec<u64> = r
        .peak_mem_per_node
        .iter()
        .enumerate()
        .filter(|&(i, _)| i != SHELL_NODE)
        .map(|(_, &v)| v)
        .collect();
    let other_mean = if others.is_empty() {
        0
    } else {
        others.iter().sum::<u64>() / others.len() as u64
    };
    MemoryRow {
        nodes,
        system,
        aggregate_peak: r.aggregate_peak_mem,
        scheduler_node_peak: sched_peak,
        other_nodes_mean_peak: other_mean,
        failed: r.failed,
    }
}

/// Figure 9: Montage 6 aggregate memory consumption, 8-64 nodes, both
/// systems; also yields Table 3's per-node distribution for AMFS.
pub fn run_fig9_table3() -> Vec<MemoryRow> {
    let mut rows = Vec::new();
    for nodes in [8usize, 16, 32, 64] {
        rows.push(run_one(nodes, 6, FsModelKind::MemFs));
        rows.push(run_one(nodes, 6, FsModelKind::Amfs));
    }
    rows
}

/// The Montage 12x12 contrast: AMFS crashes accumulating data on the
/// scheduler node, MemFS completes (§4.2.1). Returns (MemFS, AMFS) rows.
pub fn run_montage12_crash(nodes: usize) -> (MemoryRow, MemoryRow) {
    (
        run_one(nodes, 12, FsModelKind::MemFs),
        run_one(nodes, 12, FsModelKind::Amfs),
    )
}

/// Render Figure 9.
pub fn render_fig9(rows: &[MemoryRow]) -> String {
    let mut out = String::from("Figure 9: Montage 6 aggregate memory consumption (GB)\n");
    let table_rows: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                format!("{} nodes", r.nodes),
                r.system.to_string(),
                report::gb(r.aggregate_peak),
            ]
        })
        .collect();
    out.push_str(&report::table(
        &["Scale", "System", "Aggregate peak"],
        &table_rows,
    ));
    out
}

/// Render Table 3 (AMFS rows only).
pub fn render_table3(rows: &[MemoryRow]) -> String {
    let mut out = String::from("Table 3: AMFS memory distribution for Montage 6 (GB)\n");
    let table_rows: Vec<Vec<String>> = rows
        .iter()
        .filter(|r| r.system == "AMFS")
        .map(|r| {
            vec![
                r.nodes.to_string(),
                report::gb(r.scheduler_node_peak),
                report::gb(r.other_nodes_mean_peak),
            ]
        })
        .collect();
    out.push_str(&report::table(
        &["Nodes", "Scheduler Node", "Other Nodes"],
        &table_rows,
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn amfs_concentrates_memory_on_scheduler_node() {
        // Table 3 at 8 nodes: scheduler 19 GB vs others 9.5 GB — a ~2x
        // hotspot that widens with scale (16 GB vs 1.8 GB at 64 nodes).
        let r8 = run_one(8, 6, FsModelKind::Amfs);
        assert!(r8.failed.is_none(), "{:?}", r8.failed);
        let ratio8 = r8.scheduler_node_peak as f64 / r8.other_nodes_mean_peak.max(1) as f64;
        assert!(
            ratio8 > 1.5,
            "scheduler {} vs others {}",
            r8.scheduler_node_peak,
            r8.other_nodes_mean_peak
        );
        let r32 = run_one(32, 6, FsModelKind::Amfs);
        assert!(r32.failed.is_none(), "{:?}", r32.failed);
        let ratio32 = r32.scheduler_node_peak as f64 / r32.other_nodes_mean_peak.max(1) as f64;
        assert!(
            ratio32 > ratio8,
            "hotspot should widen with scale: {ratio8} -> {ratio32}"
        );
    }

    #[test]
    fn memfs_stays_balanced_and_leaner() {
        let memfs = run_one(8, 6, FsModelKind::MemFs);
        let amfs = run_one(8, 6, FsModelKind::Amfs);
        assert!(memfs.failed.is_none());
        // Balanced: scheduler node ≈ others.
        let ratio = memfs.scheduler_node_peak as f64 / memfs.other_nodes_mean_peak.max(1) as f64;
        assert!((0.8..1.3).contains(&ratio), "MemFS imbalance {ratio}");
        // Leaner aggregate than replicating AMFS (Figure 9).
        assert!(memfs.aggregate_peak < amfs.aggregate_peak);
    }

    #[test]
    fn amfs_uses_more_memory_at_every_scale() {
        // Figure 9: AMFS' replicate-on-read keeps its aggregate footprint
        // above MemFS' single-copy striping at every scale.
        for nodes in [8usize, 32] {
            let a = run_one(nodes, 6, FsModelKind::Amfs);
            let m = run_one(nodes, 6, FsModelKind::MemFs);
            assert!(a.failed.is_none(), "AMFS failed at {nodes}: {:?}", a.failed);
            assert!(
                a.aggregate_peak > m.aggregate_peak,
                "at {nodes} nodes: AMFS {} <= MemFS {}",
                a.aggregate_peak,
                m.aggregate_peak
            );
        }
    }

    #[test]
    fn renders_contain_both_artifacts() {
        let rows = vec![
            MemoryRow {
                nodes: 8,
                system: "AMFS",
                aggregate_peak: 60_000_000_000,
                scheduler_node_peak: 19_000_000_000,
                other_nodes_mean_peak: 9_500_000_000,
                failed: None,
            },
            MemoryRow {
                nodes: 8,
                system: "MemFS",
                aggregate_peak: 50_000_000_000,
                scheduler_node_peak: 6_000_000_000,
                other_nodes_mean_peak: 6_100_000_000,
                failed: None,
            },
        ];
        assert!(render_fig9(&rows).contains("MemFS"));
        let t3 = render_table3(&rows);
        assert!(t3.contains("19.0"));
        assert!(!t3.contains("MemFS"));
    }
}
