//! One driver per table/figure of the paper's evaluation.
//!
//! Each submodule exposes `run_*` functions returning typed, serializable
//! rows plus a `render_*` function producing the paper-style text block.
//! The `memfs-bench` crate's `repro` binary is a thin CLI over these.
//!
//! | driver | paper artifact |
//! |--------|----------------|
//! | [`fig3`] | Figure 3a/3b — stripe size, buffering/prefetching (real engine) |
//! | [`envelope_figs`] | Figures 4, 5, 6, 16 and Table 1 — MTC Envelope |
//! | [`table2`] | Table 2 — application descriptions |
//! | [`scaling`] | Figures 7, 8, 10, 11, 12, 13, 14, 15 — workflow runs |
//! | [`memory`] | Figure 9 and Table 3 — memory distribution |

pub mod envelope_figs;
pub mod fig3;
pub mod memory;
pub mod scaling;
pub mod table2;
