//! # memfs-mtc
//!
//! The many-task-computing layer of the MemFS reproduction: workflow
//! models (Montage, BLAST), task schedulers (uniform vs. AMFS-Shell-style
//! locality-aware), the cluster-scale simulation engine, the analytic MTC
//! Envelope model, and one experiment driver per table/figure of the
//! paper's evaluation.
//!
//! ## Two evaluation paths
//!
//! * **Real engine** (`memfs-core` / `memfs-amfs` running actual bytes
//!   in-process) — used for the design-decision experiments that are
//!   machine-local in the paper too (Figure 3), and by the integration
//!   tests.
//! * **Simulation** ([`engine::WorkflowSim`] over `memfs-netsim` +
//!   `memfs-cluster`) — used for everything that needs 8-64 DAS4 nodes or
//!   8-32 EC2 instances. The simulation reuses the *real* placement code
//!   (`memfs-hashring`) and the real multicast schedule (`memfs-amfs`),
//!   so distribution behaviour is identical to the implementation; only
//!   time is modelled.
//!
//! Calibration constants live in [`calibrate`] and are documented against
//! the paper's reported numbers; EXPERIMENTS.md records paper-vs-measured
//! for every artifact.

pub mod blast;
pub mod calibrate;
pub mod engine;
pub mod envelope;
pub mod experiments;
pub mod fsmodel;
pub mod montage;
pub mod report;
pub mod sched;
pub mod workflow;

pub use engine::{RunResult, WorkflowSim};
pub use envelope::{EnvelopeModel, EnvelopePoint, FsKind};
pub use sched::SchedulerKind;
pub use workflow::{FileId, StageStats, TaskId, TaskSpec, Workflow};
