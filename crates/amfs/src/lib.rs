//! # memfs-amfs
//!
//! A from-scratch implementation of **AMFS**, the state-of-the-art
//! locality-based in-memory runtime file system the paper compares MemFS
//! against (Zhang et al., "Parallelizing the execution of sequential
//! scripts", SC 2013 — reference \[2\] of the paper).
//!
//! AMFS' design, as characterized by the MemFS paper:
//!
//! * **local-only writes** — a file lives wholly in the memory of the node
//!   that wrote it ("to improve write performance, the file system issues
//!   only local writes");
//! * **locality-aware scheduling** — the AMFS Shell scheduler moves tasks
//!   to the node holding their (first) input file; only one file per task
//!   can be guaranteed local;
//! * **replicate-on-read** — reading a remote file copies it whole into
//!   the reader's memory, so later local reads are fast but memory
//!   consumption grows with every remote read (the paper's Figure 9 /
//!   Table 3 imbalance, and the reason AMFS cannot run Montage 12x12);
//! * **software multicast** for N-1 reads (one file to all nodes);
//! * **per-file-name hashed metadata** whose distribution "is not
//!   uniform" (the non-linear `create` scalability of Figure 6);
//! * **whole files, no striping** — "AMFS assumes that files fit in a
//!   node's memory".
//!
//! Like `memfs-core`, this is a real, thread-safe, in-process
//! implementation; the cluster-scale behaviour is additionally modelled
//! analytically in `memfs-mtc` for the paper's 64-node experiments.

pub mod fs;
pub mod meta;
pub mod multicast;

pub use fs::{AmfsCluster, AmfsError, AmfsNode, AmfsResult};
pub use meta::skewed_metadata_server;
