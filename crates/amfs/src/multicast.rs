//! Software multicast tree construction.
//!
//! AMFS Shell implements N-1 reads by multicasting the file from its owner
//! to every node before the tasks read it locally. The classic
//! implementation is a **binomial tree**: in each round every node that
//! already holds the data forwards it to one node that does not, so N
//! nodes are covered in ⌈log2 N⌉ rounds.
//!
//! This module computes the tree and its timing model; the in-process AMFS
//! implementation uses the flat copy loop (timing is irrelevant there),
//! while the cluster simulator in `memfs-mtc` uses [`multicast_rounds`]
//! to charge the right latency/bandwidth cost — the paper's observation
//! that "multicast performance is determined by latency, bandwidth and
//! file size at a certain scale" falls straight out of this model.

/// One transfer edge of the multicast tree: `(source, destination)`.
pub type Edge = (usize, usize);

/// The binomial multicast schedule from `root` over `n` nodes: a list of
/// rounds, each round a set of parallel transfers.
///
/// Nodes are identified by their index in `0..n`; the schedule is
/// expressed in ranks relative to the root (rank 0 = root) and mapped back
/// to absolute ids.
///
/// # Panics
/// Panics if `n == 0` or `root >= n`.
pub fn multicast_rounds(root: usize, n: usize) -> Vec<Vec<Edge>> {
    assert!(n > 0, "multicast over zero nodes");
    assert!(root < n, "root {root} out of range");
    let to_abs = |rank: usize| (root + rank) % n;
    let mut rounds = Vec::new();
    let mut covered = 1usize; // ranks [0, covered) hold the data
    while covered < n {
        let mut round = Vec::new();
        // Every covered rank r sends to rank r + covered, if it exists.
        for r in 0..covered {
            let dst = r + covered;
            if dst < n {
                round.push((to_abs(r), to_abs(dst)));
            }
        }
        covered = (covered * 2).min(n);
        rounds.push(round);
    }
    rounds
}

/// Time to multicast `bytes` to `n` nodes, given per-round cost
/// `latency + bytes / bandwidth` (every round's transfers run in
/// parallel on disjoint node pairs).
pub fn multicast_time_secs(n: usize, bytes: u64, bandwidth: f64, latency: f64) -> f64 {
    if n <= 1 {
        return 0.0;
    }
    let rounds = (n as f64).log2().ceil();
    rounds * (latency + bytes as f64 / bandwidth)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    fn covered_nodes(root: usize, n: usize) -> HashSet<usize> {
        let mut have: HashSet<usize> = HashSet::from([root]);
        for round in multicast_rounds(root, n) {
            let snapshot = have.clone();
            for (src, dst) in round {
                assert!(
                    snapshot.contains(&src),
                    "round uses node {src} before it has data"
                );
                have.insert(dst);
            }
        }
        have
    }

    #[test]
    fn covers_every_node_from_any_root() {
        for n in [1usize, 2, 3, 5, 8, 17, 64] {
            for root in [0, n / 2, n - 1] {
                let have = covered_nodes(root, n);
                assert_eq!(have.len(), n, "n={n} root={root}");
            }
        }
    }

    #[test]
    fn round_count_is_log2() {
        assert_eq!(multicast_rounds(0, 1).len(), 0);
        assert_eq!(multicast_rounds(0, 2).len(), 1);
        assert_eq!(multicast_rounds(0, 8).len(), 3);
        assert_eq!(multicast_rounds(0, 9).len(), 4);
        assert_eq!(multicast_rounds(0, 64).len(), 6);
    }

    #[test]
    fn senders_are_disjoint_within_a_round() {
        for round in multicast_rounds(0, 64) {
            let mut senders = HashSet::new();
            let mut receivers = HashSet::new();
            for (s, d) in round {
                assert!(senders.insert(s), "node {s} sends twice in one round");
                assert!(receivers.insert(d), "node {d} receives twice in one round");
            }
        }
    }

    #[test]
    fn each_node_receives_exactly_once() {
        let mut recv_count = [0usize; 17];
        for round in multicast_rounds(5, 17) {
            for (_, d) in round {
                recv_count[d] += 1;
            }
        }
        recv_count[5] = 1; // root "receives" at creation
        assert!(recv_count.iter().all(|&c| c == 1));
    }

    #[test]
    fn timing_model_scales_logarithmically() {
        let t8 = multicast_time_secs(8, 1_000_000, 1e9, 50e-6);
        let t64 = multicast_time_secs(64, 1_000_000, 1e9, 50e-6);
        assert!((t64 / t8 - 2.0).abs() < 1e-9); // 6 rounds vs 3 rounds
        assert_eq!(multicast_time_secs(1, 1_000_000, 1e9, 50e-6), 0.0);
    }
}
