//! The AMFS file system: per-node stores, local writes, replicate-on-read.

use std::fmt;
use std::sync::Arc;

use bytes::{Bytes, BytesMut};
use memfs_memkv::{KvError, Store};

use crate::meta::{data_key, meta_key, skewed_metadata_server, MetaRecord};

/// AMFS error type.
#[derive(Debug)]
pub enum AmfsError {
    /// Path does not exist.
    NotFound(String),
    /// Path already exists (AMFS shares MemFS' write-once discipline).
    AlreadyExists(String),
    /// Opening a file whose writer has not closed it yet.
    NotFinalized(String),
    /// A node's memory filled up — AMFS' characteristic failure: the
    /// paper's "scheduler node crashes when trying to accumulate large
    /// amounts of data that do not fit in its main memory" (§4.2.1).
    NodeOutOfMemory {
        /// The node that overflowed.
        node: usize,
        /// The underlying store error.
        source: KvError,
    },
    /// Any other storage-layer failure.
    Storage(KvError),
}

impl fmt::Display for AmfsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AmfsError::NotFound(p) => write!(f, "{p}: no such file"),
            AmfsError::AlreadyExists(p) => write!(f, "{p}: already exists"),
            AmfsError::NotFinalized(p) => write!(f, "{p}: still being written"),
            AmfsError::NodeOutOfMemory { node, source } => {
                write!(f, "node {node} out of memory: {source}")
            }
            AmfsError::Storage(e) => write!(f, "storage error: {e}"),
        }
    }
}

impl std::error::Error for AmfsError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            AmfsError::NodeOutOfMemory { source, .. } => Some(source),
            AmfsError::Storage(e) => Some(e),
            _ => None,
        }
    }
}

/// Convenience alias.
pub type AmfsResult<T> = Result<T, AmfsError>;

struct ClusterInner {
    /// One in-memory store per node. Data lives wholly on single nodes —
    /// AMFS does not stripe.
    nodes: Vec<Arc<Store>>,
}

/// A shared AMFS cluster: per-node stores plus hashed metadata placement.
#[derive(Clone)]
pub struct AmfsCluster {
    inner: Arc<ClusterInner>,
}

impl AmfsCluster {
    /// Build a cluster from per-node stores.
    ///
    /// # Panics
    /// Panics on an empty node list.
    pub fn new(nodes: Vec<Arc<Store>>) -> Self {
        assert!(!nodes.is_empty(), "AMFS needs at least one node");
        AmfsCluster {
            inner: Arc::new(ClusterInner { nodes }),
        }
    }

    /// Number of nodes.
    pub fn n_nodes(&self) -> usize {
        self.inner.nodes.len()
    }

    /// The store of node `i` (for memory inspection in experiments).
    pub fn node_store(&self, i: usize) -> &Arc<Store> {
        &self.inner.nodes[i]
    }

    /// The mount view from node `node`.
    pub fn node(&self, node: usize) -> AmfsNode {
        assert!(node < self.n_nodes(), "node {node} out of range");
        AmfsNode {
            cluster: self.clone(),
            node,
        }
    }

    /// Per-node bytes used (the Figure 9 / Table 3 measurement).
    pub fn memory_per_node(&self) -> Vec<u64> {
        self.inner.nodes.iter().map(|s| s.bytes_used()).collect()
    }

    fn meta_store(&self, path: &str) -> &Arc<Store> {
        &self.inner.nodes[skewed_metadata_server(path, self.n_nodes())]
    }

    /// Look up a file's metadata record.
    pub fn lookup(&self, path: &str) -> AmfsResult<MetaRecord> {
        match self.meta_store(path).get(&meta_key(path)) {
            Ok(raw) => MetaRecord::decode(&raw)
                .map_err(|_| AmfsError::Storage(KvError::Protocol("bad meta record".into()))),
            Err(KvError::NotFound) => Err(AmfsError::NotFound(path.to_string())),
            Err(e) => Err(AmfsError::Storage(e)),
        }
    }

    /// The node holding the authoritative copy of `path` — the locality
    /// hint the AMFS Shell scheduler uses for task placement.
    pub fn locality_hint(&self, path: &str) -> Option<usize> {
        self.lookup(path).ok().map(|r| r.owner)
    }
}

/// AMFS as seen from one compute node.
#[derive(Clone)]
pub struct AmfsNode {
    cluster: AmfsCluster,
    node: usize,
}

impl AmfsNode {
    /// This view's node id.
    pub fn node_id(&self) -> usize {
        self.node
    }

    /// The cluster this node belongs to.
    pub fn cluster(&self) -> &AmfsCluster {
        &self.cluster
    }

    fn local_store(&self) -> &Arc<Store> {
        &self.cluster.inner.nodes[self.node]
    }

    fn oom(&self, node: usize, e: KvError) -> AmfsError {
        match e {
            KvError::OutOfMemory { .. } => AmfsError::NodeOutOfMemory { node, source: e },
            other => AmfsError::Storage(other),
        }
    }

    /// Create `path` for writing. The data will live wholly in this
    /// node's memory (AMFS' local-write policy).
    pub fn create(&self, path: &str) -> AmfsResult<AmfsWriteHandle> {
        let meta = MetaRecord {
            owner: self.node,
            size: None,
        };
        match self
            .cluster
            .meta_store(path)
            .add(&meta_key(path), Bytes::from(meta.encode()))
        {
            Ok(()) => {}
            Err(KvError::Exists) => return Err(AmfsError::AlreadyExists(path.to_string())),
            Err(e) => return Err(self.oom(skewed_metadata_server(path, self.cluster.n_nodes()), e)),
        }
        Ok(AmfsWriteHandle {
            node: self.clone(),
            path: path.to_string(),
            buf: BytesMut::new(),
            closed: false,
        })
    }

    /// Convenience: write a whole file.
    pub fn write_file(&self, path: &str, data: &[u8]) -> AmfsResult<()> {
        let mut w = self.create(path)?;
        w.write(data);
        w.close()
    }

    /// Read `path` from this node. A local hit reads from this node's
    /// memory; a remote file is fetched whole from its owner **and
    /// replicated locally** — AMFS' replicate-on-read policy, which makes
    /// the next read local but permanently charges this node's memory.
    pub fn read(&self, path: &str) -> AmfsResult<Bytes> {
        let meta = self.cluster.lookup(path)?;
        if meta.size.is_none() {
            return Err(AmfsError::NotFinalized(path.to_string()));
        }
        let key = data_key(path);
        // Local copy (authoritative or replica)?
        match self.local_store().get(&key) {
            Ok(data) => return Ok(data),
            Err(KvError::NotFound) => {}
            Err(e) => return Err(AmfsError::Storage(e)),
        }
        // Remote read from the owner...
        let data = self.cluster.inner.nodes[meta.owner]
            .get(&key)
            .map_err(AmfsError::Storage)?;
        // ...then replicate-on-read into local memory. If this node is
        // full, the read itself fails — AMFS' crash mode.
        self.local_store()
            .set(&key, data.clone())
            .map_err(|e| self.oom(self.node, e))?;
        Ok(data)
    }

    /// Whether this node currently holds a copy of `path`.
    pub fn has_local_copy(&self, path: &str) -> bool {
        self.local_store().contains(&data_key(path))
    }

    /// Multicast `path` to every node (the N-1 read preparation of the
    /// paper's §4.1). See [`crate::multicast`] for the tree construction.
    pub fn multicast(&self, path: &str) -> AmfsResult<()> {
        let meta = self.cluster.lookup(path)?;
        if meta.size.is_none() {
            return Err(AmfsError::NotFinalized(path.to_string()));
        }
        let key = data_key(path);
        let data = self.cluster.inner.nodes[meta.owner]
            .get(&key)
            .map_err(AmfsError::Storage)?;
        for (i, store) in self.cluster.inner.nodes.iter().enumerate() {
            if i == meta.owner {
                continue;
            }
            if !store.contains(&key) {
                store.set(&key, data.clone()).map_err(|e| self.oom(i, e))?;
            }
        }
        Ok(())
    }

    /// File size, if finalized.
    pub fn stat(&self, path: &str) -> AmfsResult<u64> {
        match self.cluster.lookup(path)?.size {
            Some(s) => Ok(s),
            None => Err(AmfsError::NotFinalized(path.to_string())),
        }
    }

    /// Delete `path` everywhere: authoritative copy, replicas, metadata.
    pub fn unlink(&self, path: &str) -> AmfsResult<()> {
        let meta = self.cluster.lookup(path)?;
        let key = data_key(path);
        for store in &self.cluster.inner.nodes {
            let _ = store.delete(&key);
        }
        let _ = meta;
        self.cluster
            .meta_store(path)
            .delete(&meta_key(path))
            .map_err(AmfsError::Storage)?;
        Ok(())
    }
}

/// A write handle buffering the whole file locally — AMFS works in whole
/// files ("AMFS assumes that files fit in a node's memory").
pub struct AmfsWriteHandle {
    node: AmfsNode,
    path: String,
    buf: BytesMut,
    closed: bool,
}

impl AmfsWriteHandle {
    /// Append data.
    pub fn write(&mut self, data: &[u8]) {
        assert!(!self.closed, "write after close");
        self.buf.extend_from_slice(data);
    }

    /// Bytes buffered so far.
    pub fn written(&self) -> u64 {
        self.buf.len() as u64
    }

    /// Store the file locally and finalize the metadata record.
    pub fn close(&mut self) -> AmfsResult<()> {
        assert!(!self.closed, "double close");
        self.closed = true;
        let data = std::mem::take(&mut self.buf).freeze();
        let size = data.len() as u64;
        self.node
            .local_store()
            .set(&data_key(&self.path), data)
            .map_err(|e| self.node.oom(self.node.node, e))?;
        let meta = MetaRecord {
            owner: self.node.node,
            size: Some(size),
        };
        self.node
            .cluster
            .meta_store(&self.path)
            .set(&meta_key(&self.path), Bytes::from(meta.encode()))
            .map_err(AmfsError::Storage)?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use memfs_memkv::StoreConfig;

    fn cluster(n: usize, budget: u64) -> AmfsCluster {
        let nodes = (0..n)
            .map(|_| {
                Arc::new(Store::new(StoreConfig {
                    memory_budget: budget,
                    ..StoreConfig::default()
                }))
            })
            .collect();
        AmfsCluster::new(nodes)
    }

    #[test]
    fn local_write_then_local_read() {
        let c = cluster(4, 1 << 30);
        let n0 = c.node(0);
        n0.write_file("/f", b"payload").unwrap();
        assert_eq!(n0.read("/f").unwrap().as_ref(), b"payload");
        assert!(n0.has_local_copy("/f"));
        // Data lives only on node 0.
        for i in 1..4 {
            assert!(!c.node(i).has_local_copy("/f"));
        }
    }

    #[test]
    fn remote_read_replicates() {
        let c = cluster(4, 1 << 30);
        c.node(0).write_file("/f", b"remote data").unwrap();
        let n2 = c.node(2);
        assert_eq!(n2.read("/f").unwrap().as_ref(), b"remote data");
        // Replicate-on-read: node 2 now has a copy too.
        assert!(n2.has_local_copy("/f"));
        assert!(c.node(0).has_local_copy("/f"));
        assert!(!c.node(1).has_local_copy("/f"));
    }

    #[test]
    fn replication_inflates_aggregate_memory() {
        // The Figure 9 phenomenon in miniature: N readers => N copies.
        let c = cluster(8, 1 << 30);
        c.node(0).write_file("/f", &vec![7u8; 10_000]).unwrap();
        let single = c.memory_per_node().iter().sum::<u64>();
        for i in 1..8 {
            c.node(i).read("/f").unwrap();
        }
        let replicated = c.memory_per_node().iter().sum::<u64>();
        assert!(
            replicated > single * 7,
            "8 copies should use ~8x the memory: {single} -> {replicated}"
        );
    }

    #[test]
    fn full_reader_node_fails_like_the_paper() {
        // Node 1's memory is too small to replicate the file: the read
        // fails with NodeOutOfMemory — AMFS' aggregation-crash mode.
        let nodes = vec![
            Arc::new(Store::new(StoreConfig::default())),
            Arc::new(Store::new(StoreConfig {
                memory_budget: 1_000,
                ..StoreConfig::default()
            })),
        ];
        let c = AmfsCluster::new(nodes);
        c.node(0).write_file("/big", &vec![0u8; 100_000]).unwrap();
        let err = c.node(1).read("/big").unwrap_err();
        assert!(matches!(err, AmfsError::NodeOutOfMemory { node: 1, .. }));
    }

    #[test]
    fn multicast_copies_to_all_nodes() {
        let c = cluster(6, 1 << 30);
        c.node(3).write_file("/q", b"query file").unwrap();
        c.node(0).multicast("/q").unwrap();
        for i in 0..6 {
            assert!(c.node(i).has_local_copy("/q"), "node {i} missing copy");
            assert_eq!(c.node(i).read("/q").unwrap().as_ref(), b"query file");
        }
    }

    #[test]
    fn locality_hint_points_at_owner() {
        let c = cluster(4, 1 << 30);
        c.node(2).write_file("/owned", b"x").unwrap();
        assert_eq!(c.locality_hint("/owned"), Some(2));
        assert_eq!(c.locality_hint("/nope"), None);
    }

    #[test]
    fn write_once_and_not_finalized() {
        let c = cluster(2, 1 << 30);
        let n = c.node(0);
        let mut w = n.create("/f").unwrap();
        w.write(b"abc");
        assert!(matches!(n.read("/f"), Err(AmfsError::NotFinalized(_))));
        assert!(matches!(n.create("/f"), Err(AmfsError::AlreadyExists(_))));
        w.close().unwrap();
        assert_eq!(n.stat("/f").unwrap(), 3);
    }

    #[test]
    fn unlink_removes_all_copies() {
        let c = cluster(3, 1 << 30);
        c.node(0).write_file("/f", b"data").unwrap();
        c.node(1).read("/f").unwrap(); // replica on node 1
        c.node(2).unlink("/f").unwrap();
        for i in 0..3 {
            assert!(!c.node(i).has_local_copy("/f"));
        }
        assert!(matches!(c.node(0).read("/f"), Err(AmfsError::NotFound(_))));
    }

    #[test]
    fn metadata_is_spread_by_name_hash() {
        let c = cluster(4, 1 << 30);
        for i in 0..40 {
            c.node(0).write_file(&format!("/meta{i}"), b"x").unwrap();
        }
        // Data is all on node 0, but metadata keys should appear on
        // multiple nodes.
        let meta_nodes = (0..4)
            .filter(|&i| c.node_store(i).keys().iter().any(|k| k.starts_with(b"am:")))
            .count();
        assert!(
            meta_nodes >= 2,
            "metadata concentrated on {meta_nodes} node(s)"
        );
    }
}
