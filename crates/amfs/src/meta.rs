//! AMFS metadata: per-file records placed by a (deliberately) non-uniform
//! hash of the file name.
//!
//! The MemFS paper explains AMFS' sub-linear `create` scalability by its
//! metadata placement: "AMFS distributes file metadata over all servers
//! based on a hash function of the file name; according to \[2\], this
//! distribution is not uniform" (§4.1). We reproduce that property with a
//! character-sum hash — workflow file names are highly regular
//! (`proj_0001.fits`, `proj_0002.fits`, …), and a character sum maps such
//! families onto a narrow band of servers.

use std::fmt;

/// The metadata server responsible for `path` under AMFS' name hash.
///
/// Character-sum mod N: simple, fast, and — exactly as the paper needs —
/// *not uniform* for the sequential file names MTC workflows generate.
pub fn skewed_metadata_server(path: &str, n_servers: usize) -> usize {
    assert!(n_servers > 0);
    let sum: u64 = path.bytes().map(|b| b as u64).sum();
    (sum % n_servers as u64) as usize
}

/// A file's metadata record: which node owns the (whole-file) data and its
/// size once the writer closed it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MetaRecord {
    /// Node holding the authoritative copy.
    pub owner: usize,
    /// Final size; `None` while the file is still being written.
    pub size: Option<u64>,
}

impl MetaRecord {
    /// Encode as `"<owner> <size|->"`.
    pub fn encode(&self) -> Vec<u8> {
        match self.size {
            Some(s) => format!("{} {}", self.owner, s).into_bytes(),
            None => format!("{} -", self.owner).into_bytes(),
        }
    }

    /// Decode a record.
    pub fn decode(raw: &[u8]) -> Result<MetaRecord, MetaError> {
        let text = std::str::from_utf8(raw).map_err(|_| MetaError)?;
        let mut it = text.split(' ');
        let owner = it.next().ok_or(MetaError)?.parse().map_err(|_| MetaError)?;
        let size_tok = it.next().ok_or(MetaError)?;
        if it.next().is_some() {
            return Err(MetaError);
        }
        let size = if size_tok == "-" {
            None
        } else {
            Some(size_tok.parse().map_err(|_| MetaError)?)
        };
        Ok(MetaRecord { owner, size })
    }
}

/// Corrupt AMFS metadata record.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MetaError;

impl fmt::Display for MetaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "corrupt AMFS metadata record")
    }
}

impl std::error::Error for MetaError {}

/// Key of the metadata record for `path`.
pub fn meta_key(path: &str) -> Vec<u8> {
    format!("am:{path}").into_bytes()
}

/// Key of the whole-file data blob for `path` (on whichever node stores a
/// copy — owner or replica).
pub fn data_key(path: &str) -> Vec<u8> {
    format!("ad:{path}").into_bytes()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_round_trip() {
        for rec in [
            MetaRecord {
                owner: 3,
                size: Some(12345),
            },
            MetaRecord {
                owner: 0,
                size: None,
            },
            MetaRecord {
                owner: 63,
                size: Some(0),
            },
        ] {
            assert_eq!(MetaRecord::decode(&rec.encode()).unwrap(), rec);
        }
    }

    #[test]
    fn corrupt_records_rejected() {
        assert!(MetaRecord::decode(b"").is_err());
        assert!(MetaRecord::decode(b"notanumber 5").is_err());
        assert!(MetaRecord::decode(b"3 x").is_err());
        assert!(MetaRecord::decode(b"3 5 extra").is_err());
        assert!(MetaRecord::decode(&[0xFF]).is_err());
    }

    #[test]
    fn skewed_hash_is_deterministic() {
        assert_eq!(
            skewed_metadata_server("/wf/a.dat", 16),
            skewed_metadata_server("/wf/a.dat", 16)
        );
    }

    #[test]
    fn skewed_hash_is_actually_skewed_on_sequential_names() {
        // Sequential workflow names: proj_0000.fits ... proj_0999.fits.
        // A character-sum hash maps consecutive names to consecutive
        // servers, but the *distribution over many digits* clusters.
        let n = 64;
        let mut counts = vec![0usize; n];
        for i in 0..1000 {
            let name = format!("/m17/proj_{i:04}.fits");
            counts[skewed_metadata_server(&name, n)] += 1;
        }
        let max = *counts.iter().max().unwrap() as f64;
        let mean = 1000.0 / n as f64;
        // Compare against MemFS' FNV placement of the same names.
        let mut fnv_counts = vec![0usize; n];
        for i in 0..1000 {
            let name = format!("/m17/proj_{i:04}.fits");
            let h = memfs_hashring::hash::fnv1a_32(name.as_bytes());
            fnv_counts[h as usize % n] += 1;
        }
        let fnv_max = *fnv_counts.iter().max().unwrap() as f64;
        assert!(
            max / mean > fnv_max / mean,
            "character-sum should be more skewed than FNV: {max} vs {fnv_max} (mean {mean})"
        );
    }

    #[test]
    fn keys_are_namespaced() {
        assert_eq!(meta_key("/f"), b"am:/f".to_vec());
        assert_eq!(data_key("/f"), b"ad:/f".to_vec());
        assert_ne!(meta_key("/f"), data_key("/f"));
    }
}
