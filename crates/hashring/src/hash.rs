//! Hash functions implemented from scratch (no external crates): FNV-1a
//! and Jenkins one-at-a-time for the modulo scheme, and MD5 for
//! ketama-style consistent hashing (libmemcached's ketama uses MD5).

/// 32-bit FNV-1a — libmemcached's default hash.
pub fn fnv1a_32(data: &[u8]) -> u32 {
    let mut h: u32 = 0x811C_9DC5;
    for &b in data {
        h ^= b as u32;
        h = h.wrapping_mul(0x0100_0193);
    }
    h
}

/// 64-bit FNV-1a, for wider distribution uses.
pub fn fnv1a_64(data: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in data {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Jenkins one-at-a-time — libmemcached's `HASH_JENKINS` alternative.
pub fn jenkins_oaat(data: &[u8]) -> u32 {
    let mut h: u32 = 0;
    for &b in data {
        h = h.wrapping_add(b as u32);
        h = h.wrapping_add(h << 10);
        h ^= h >> 6;
    }
    h = h.wrapping_add(h << 3);
    h ^= h >> 11;
    h.wrapping_add(h << 15)
}

/// MD5 digest (RFC 1321), used only for ketama point placement — not for
/// any security purpose.
pub fn md5(data: &[u8]) -> [u8; 16] {
    // Per-round shift amounts.
    const S: [u32; 64] = [
        7, 12, 17, 22, 7, 12, 17, 22, 7, 12, 17, 22, 7, 12, 17, 22, //
        5, 9, 14, 20, 5, 9, 14, 20, 5, 9, 14, 20, 5, 9, 14, 20, //
        4, 11, 16, 23, 4, 11, 16, 23, 4, 11, 16, 23, 4, 11, 16, 23, //
        6, 10, 15, 21, 6, 10, 15, 21, 6, 10, 15, 21, 6, 10, 15, 21,
    ];
    // K[i] = floor(2^32 * abs(sin(i + 1))).
    const K: [u32; 64] = [
        0xd76aa478, 0xe8c7b756, 0x242070db, 0xc1bdceee, 0xf57c0faf, 0x4787c62a, 0xa8304613,
        0xfd469501, 0x698098d8, 0x8b44f7af, 0xffff5bb1, 0x895cd7be, 0x6b901122, 0xfd987193,
        0xa679438e, 0x49b40821, 0xf61e2562, 0xc040b340, 0x265e5a51, 0xe9b6c7aa, 0xd62f105d,
        0x02441453, 0xd8a1e681, 0xe7d3fbc8, 0x21e1cde6, 0xc33707d6, 0xf4d50d87, 0x455a14ed,
        0xa9e3e905, 0xfcefa3f8, 0x676f02d9, 0x8d2a4c8a, 0xfffa3942, 0x8771f681, 0x6d9d6122,
        0xfde5380c, 0xa4beea44, 0x4bdecfa9, 0xf6bb4b60, 0xbebfbc70, 0x289b7ec6, 0xeaa127fa,
        0xd4ef3085, 0x04881d05, 0xd9d4d039, 0xe6db99e5, 0x1fa27cf8, 0xc4ac5665, 0xf4292244,
        0x432aff97, 0xab9423a7, 0xfc93a039, 0x655b59c3, 0x8f0ccc92, 0xffeff47d, 0x85845dd1,
        0x6fa87e4f, 0xfe2ce6e0, 0xa3014314, 0x4e0811a1, 0xf7537e82, 0xbd3af235, 0x2ad7d2bb,
        0xeb86d391,
    ];

    let mut a0: u32 = 0x6745_2301;
    let mut b0: u32 = 0xefcd_ab89;
    let mut c0: u32 = 0x98ba_dcfe;
    let mut d0: u32 = 0x1032_5476;

    // Padded message: data || 0x80 || zeros || bit-length (LE u64).
    let bit_len = (data.len() as u64).wrapping_mul(8);
    let mut msg = Vec::with_capacity(data.len() + 72);
    msg.extend_from_slice(data);
    msg.push(0x80);
    while msg.len() % 64 != 56 {
        msg.push(0);
    }
    msg.extend_from_slice(&bit_len.to_le_bytes());

    for chunk in msg.chunks_exact(64) {
        let mut m = [0u32; 16];
        for (i, w) in chunk.chunks_exact(4).enumerate() {
            m[i] = u32::from_le_bytes([w[0], w[1], w[2], w[3]]);
        }
        let (mut a, mut b, mut c, mut d) = (a0, b0, c0, d0);
        for i in 0..64 {
            let (f, g) = match i / 16 {
                0 => ((b & c) | (!b & d), i),
                1 => ((d & b) | (!d & c), (5 * i + 1) % 16),
                2 => (b ^ c ^ d, (3 * i + 5) % 16),
                _ => (c ^ (b | !d), (7 * i) % 16),
            };
            let tmp = d;
            d = c;
            c = b;
            b = b.wrapping_add(
                a.wrapping_add(f)
                    .wrapping_add(K[i])
                    .wrapping_add(m[g])
                    .rotate_left(S[i]),
            );
            a = tmp;
        }
        a0 = a0.wrapping_add(a);
        b0 = b0.wrapping_add(b);
        c0 = c0.wrapping_add(c);
        d0 = d0.wrapping_add(d);
    }

    let mut out = [0u8; 16];
    out[0..4].copy_from_slice(&a0.to_le_bytes());
    out[4..8].copy_from_slice(&b0.to_le_bytes());
    out[8..12].copy_from_slice(&c0.to_le_bytes());
    out[12..16].copy_from_slice(&d0.to_le_bytes());
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(digest: &[u8]) -> String {
        digest.iter().map(|b| format!("{b:02x}")).collect()
    }

    #[test]
    fn md5_rfc1321_test_vectors() {
        assert_eq!(hex(&md5(b"")), "d41d8cd98f00b204e9800998ecf8427e");
        assert_eq!(hex(&md5(b"a")), "0cc175b9c0f1b6a831c399e269772661");
        assert_eq!(hex(&md5(b"abc")), "900150983cd24fb0d6963f7d28e17f72");
        assert_eq!(
            hex(&md5(b"message digest")),
            "f96b697d7cb7938d525a2f31aaf161d0"
        );
        assert_eq!(
            hex(&md5(b"abcdefghijklmnopqrstuvwxyz")),
            "c3fcd3d76192e4007dfb496cca67e13b"
        );
        assert_eq!(
            hex(&md5(
                b"12345678901234567890123456789012345678901234567890123456789012345678901234567890"
            )),
            "57edf4a22be3c955ac49da2e2107b67a"
        );
    }

    #[test]
    fn md5_handles_block_boundary_lengths() {
        // 55, 56, 63, 64, 65 bytes straddle the padding boundary.
        for len in [55usize, 56, 63, 64, 65, 119, 120, 128] {
            let data = vec![b'x'; len];
            let d = md5(&data);
            // Digest must be deterministic and length-sensitive.
            assert_eq!(d, md5(&data));
            assert_ne!(d, md5(&vec![b'x'; len + 1]));
        }
    }

    #[test]
    fn fnv1a_known_values() {
        // Standard FNV-1a test vectors.
        assert_eq!(fnv1a_32(b""), 0x811C_9DC5);
        assert_eq!(fnv1a_32(b"a"), 0xE40C_292C);
        assert_eq!(fnv1a_32(b"foobar"), 0xBF9C_F968);
        assert_eq!(fnv1a_64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a_64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a_64(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn jenkins_is_deterministic_and_spreads() {
        let a = jenkins_oaat(b"file1#0");
        let b = jenkins_oaat(b"file1#1");
        let c = jenkins_oaat(b"file2#0");
        assert_eq!(a, jenkins_oaat(b"file1#0"));
        assert_ne!(a, b);
        assert_ne!(a, c);
    }
}
