//! MemFS' key naming schema over the key-value store.
//!
//! From the paper:
//!
//! * stripes — "we use the name of the file concatenated with the stripe
//!   number as key for the hash" (§3.1.2);
//! * file metadata — "a special key containing the file name" whose value
//!   is empty until close and then holds the file size (§3.2.4);
//! * directory metadata — "a Memcached key using the directory name" whose
//!   value is an appended log of child names, with deletions recorded as
//!   tombstone entries (§3.2.4).
//!
//! The three namespaces are prefixed (`s:`, `f:`, `d:`) so a file named
//! like a directory cannot collide, and so diagnostic tools can classify
//! keys.

/// Prefix for stripe data keys.
pub const STRIPE_PREFIX: &str = "s:";
/// Prefix for file-metadata keys.
pub const FILE_PREFIX: &str = "f:";
/// Prefix for directory-metadata keys.
pub const DIR_PREFIX: &str = "d:";

/// Key construction and parsing for the MemFS namespaces.
#[derive(Debug, Clone, Copy, Default)]
pub struct KeySchema;

/// Classification of a raw store key.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParsedKey<'a> {
    /// A data stripe: path + stripe index.
    Stripe {
        /// Normalized file path.
        path: &'a str,
        /// Zero-based stripe number.
        index: u64,
    },
    /// A file-size metadata record.
    FileMeta {
        /// Normalized file path.
        path: &'a str,
    },
    /// A directory log record.
    DirMeta {
        /// Normalized directory path.
        path: &'a str,
    },
    /// Not a MemFS key.
    Foreign,
}

impl KeySchema {
    /// Key of stripe `index` of `path` — `s:<path>#<index>`.
    pub fn stripe_key(path: &str, index: u64) -> Vec<u8> {
        format!("{STRIPE_PREFIX}{path}#{index}").into_bytes()
    }

    /// Key of the file-size record of `path` — `f:<path>`.
    pub fn file_key(path: &str) -> Vec<u8> {
        format!("{FILE_PREFIX}{path}").into_bytes()
    }

    /// Key of the directory log of `path` — `d:<path>`.
    pub fn dir_key(path: &str) -> Vec<u8> {
        format!("{DIR_PREFIX}{path}").into_bytes()
    }

    /// Classify a raw key.
    pub fn parse(key: &[u8]) -> ParsedKey<'_> {
        let Ok(text) = std::str::from_utf8(key) else {
            return ParsedKey::Foreign;
        };
        if let Some(rest) = text.strip_prefix(STRIPE_PREFIX) {
            // The stripe index is after the *last* '#', letting paths
            // contain '#' themselves.
            if let Some(pos) = rest.rfind('#') {
                if let Ok(index) = rest[pos + 1..].parse::<u64>() {
                    return ParsedKey::Stripe {
                        path: &rest[..pos],
                        index,
                    };
                }
            }
            ParsedKey::Foreign
        } else if let Some(path) = text.strip_prefix(FILE_PREFIX) {
            ParsedKey::FileMeta { path }
        } else if let Some(path) = text.strip_prefix(DIR_PREFIX) {
            ParsedKey::DirMeta { path }
        } else {
            ParsedKey::Foreign
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stripe_key_round_trips() {
        let key = KeySchema::stripe_key("/m17/proj_042.fits", 7);
        assert_eq!(key, b"s:/m17/proj_042.fits#7".to_vec());
        assert_eq!(
            KeySchema::parse(&key),
            ParsedKey::Stripe {
                path: "/m17/proj_042.fits",
                index: 7
            }
        );
    }

    #[test]
    fn stripe_path_containing_hash_parses() {
        let key = KeySchema::stripe_key("/odd#name", 3);
        assert_eq!(
            KeySchema::parse(&key),
            ParsedKey::Stripe {
                path: "/odd#name",
                index: 3
            }
        );
    }

    #[test]
    fn file_and_dir_keys_distinct() {
        let f = KeySchema::file_key("/x");
        let d = KeySchema::dir_key("/x");
        assert_ne!(f, d);
        assert_eq!(KeySchema::parse(&f), ParsedKey::FileMeta { path: "/x" });
        assert_eq!(KeySchema::parse(&d), ParsedKey::DirMeta { path: "/x" });
    }

    #[test]
    fn adjacent_stripes_have_distinct_keys() {
        assert_ne!(
            KeySchema::stripe_key("/f", 1),
            KeySchema::stripe_key("/f", 10)
        );
        assert_ne!(
            KeySchema::stripe_key("/f", 0),
            KeySchema::stripe_key("/f0", 0)
        );
    }

    #[test]
    fn foreign_keys_classified() {
        assert_eq!(KeySchema::parse(b"random"), ParsedKey::Foreign);
        assert_eq!(KeySchema::parse(b"s:nohash"), ParsedKey::Foreign);
        assert_eq!(KeySchema::parse(b"s:bad#idx"), ParsedKey::Foreign);
        assert_eq!(KeySchema::parse(&[0xFF, 0xFE]), ParsedKey::Foreign);
    }
}
