//! # memfs-hashring
//!
//! Client-side data distribution for MemFS — the role Libmemcached \[28\]
//! plays in the paper (§3.1.2): given a key, decide which storage server
//! holds it. Servers never talk to each other; every client computes the
//! same placement independently.
//!
//! Two schemes, as in Libmemcached:
//!
//! * [`ModuloRing`] — `hash(key) mod N`, the scheme the paper selects ("a
//!   simple hashing scheme that assigns each object to a storage server in
//!   a circular fashion, guaranteeing a balanced data distribution");
//! * [`KetamaRing`] — MD5-based consistent hashing with virtual points,
//!   the scheme the paper reserves for elastic node membership (future
//!   work there; implemented here and exercised by the remapping tests and
//!   the hashing ablation bench).
//!
//! [`schema`] defines MemFS' key naming: stripe keys are the file path
//! concatenated with the stripe number (paper §3.1.2), plus file-size and
//! directory metadata keys (§3.2.4). [`balance`] quantifies placement
//! uniformity for the load-balance experiments.

pub mod balance;
pub mod dist;
pub mod hash;
pub mod schema;

pub use dist::{group_by_server, Distributor, HashScheme, KetamaRing, ModuloRing, ServerId};
pub use schema::KeySchema;
