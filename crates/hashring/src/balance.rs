//! Placement-balance measurement.
//!
//! MemFS' central claim is that hashing stripes across all servers gives a
//! *balanced data distribution* — the property AMFS' local writes destroy
//! (paper Table 3, Figure 9). This module quantifies balance for a given
//! distributor and key population: per-server load, max/mean imbalance,
//! and a chi-square uniformity statistic used by tests and the hashing
//! ablation bench.

use crate::dist::Distributor;

/// Result of distributing a set of weighted keys over servers.
#[derive(Debug, Clone)]
pub struct BalanceReport {
    /// Bytes (or unit counts) assigned to each server.
    pub load: Vec<u64>,
}

impl BalanceReport {
    /// Distribute `keys` (each with a weight, e.g. stripe size) with `d`.
    pub fn measure<'a, D, I>(d: &D, keys: I) -> BalanceReport
    where
        D: Distributor + ?Sized,
        I: IntoIterator<Item = (&'a [u8], u64)>,
    {
        let mut load = vec![0u64; d.n_servers()];
        for (key, weight) in keys {
            load[d.server_for(key).0] += weight;
        }
        BalanceReport { load }
    }

    /// Total weight distributed.
    pub fn total(&self) -> u64 {
        self.load.iter().sum()
    }

    /// Mean load per server.
    pub fn mean(&self) -> f64 {
        if self.load.is_empty() {
            0.0
        } else {
            self.total() as f64 / self.load.len() as f64
        }
    }

    /// Max/mean load ratio; 1.0 is perfect balance.
    pub fn imbalance(&self) -> f64 {
        let mean = self.mean();
        if mean == 0.0 {
            return 1.0;
        }
        *self.load.iter().max().expect("non-empty") as f64 / mean
    }

    /// Coefficient of variation (stddev/mean) of the per-server load.
    pub fn cv(&self) -> f64 {
        let mean = self.mean();
        if mean == 0.0 || self.load.len() < 2 {
            return 0.0;
        }
        let var = self
            .load
            .iter()
            .map(|&l| {
                let d = l as f64 - mean;
                d * d
            })
            .sum::<f64>()
            / (self.load.len() - 1) as f64;
        var.sqrt() / mean
    }

    /// Pearson chi-square statistic against the uniform expectation. For
    /// `k` servers this is asymptotically chi-square with `k - 1` degrees
    /// of freedom when keys are unit-weight and placement is uniform.
    pub fn chi_square(&self) -> f64 {
        let mean = self.mean();
        if mean == 0.0 {
            return 0.0;
        }
        self.load
            .iter()
            .map(|&l| {
                let d = l as f64 - mean;
                d * d / mean
            })
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dist::{HashScheme, KetamaRing, ModuloRing};
    use crate::schema::KeySchema;

    fn stripe_keys(files: usize, stripes_per_file: u64) -> Vec<Vec<u8>> {
        let mut out = Vec::new();
        for f in 0..files {
            for s in 0..stripes_per_file {
                out.push(KeySchema::stripe_key(&format!("/wf/file{f:05}.dat"), s));
            }
        }
        out
    }

    #[test]
    fn modulo_balances_stripe_keys_well() {
        // The paper's workload shape: many files, each striped.
        let keys = stripe_keys(500, 16);
        let d = ModuloRing::new(64, HashScheme::Fnv1a);
        let report = BalanceReport::measure(&d, keys.iter().map(|k| (k.as_slice(), 512 * 1024u64)));
        assert_eq!(report.total(), 500 * 16 * 512 * 1024);
        assert!(
            report.imbalance() < 1.25,
            "modulo imbalance {} too high",
            report.imbalance()
        );
        assert!(report.cv() < 0.15, "cv {} too high", report.cv());
    }

    #[test]
    fn ketama_balances_reasonably() {
        let keys = stripe_keys(500, 16);
        let d = KetamaRing::with_n_servers(16, 160);
        let report = BalanceReport::measure(&d, keys.iter().map(|k| (k.as_slice(), 1u64)));
        // Ketama with 160 points is noticeably noisier than modulo but must
        // stay within ~2x of mean.
        assert!(
            report.imbalance() < 2.0,
            "ketama imbalance {} too high",
            report.imbalance()
        );
    }

    #[test]
    fn local_writes_are_maximally_imbalanced() {
        // The AMFS contrast: everything written by one node lands on it.
        let report = BalanceReport {
            load: vec![1000, 0, 0, 0],
        };
        assert!((report.imbalance() - 4.0).abs() < 1e-12);
        assert!(report.chi_square() > 100.0);
    }

    #[test]
    fn empty_report_is_neutral() {
        let report = BalanceReport { load: vec![0; 8] };
        assert_eq!(report.total(), 0);
        assert_eq!(report.imbalance(), 1.0);
        assert_eq!(report.cv(), 0.0);
        assert_eq!(report.chi_square(), 0.0);
    }

    #[test]
    fn chi_square_zero_for_perfect_balance() {
        let report = BalanceReport {
            load: vec![10, 10, 10, 10],
        };
        assert_eq!(report.chi_square(), 0.0);
        assert_eq!(report.imbalance(), 1.0);
    }
}
