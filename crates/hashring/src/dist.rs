//! Key-to-server distributors: the modulo scheme MemFS uses, and a
//! ketama-style consistent-hash ring for elastic membership.

use crate::hash::{fnv1a_32, jenkins_oaat, md5};

/// Index of a storage server within the pool.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ServerId(pub usize);

/// Which base hash the modulo distributor uses (mirrors libmemcached's
/// selectable hash algorithms).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum HashScheme {
    /// FNV-1a, libmemcached's default.
    #[default]
    Fnv1a,
    /// Jenkins one-at-a-time.
    Jenkins,
}

impl HashScheme {
    /// Hash `key` to 32 bits with this scheme.
    pub fn hash(self, key: &[u8]) -> u32 {
        match self {
            HashScheme::Fnv1a => fnv1a_32(key),
            HashScheme::Jenkins => jenkins_oaat(key),
        }
    }
}

/// Maps keys to servers. Implementations must be pure functions of the key
/// and the configured membership so every client agrees on placement.
pub trait Distributor: Send + Sync {
    /// The server that owns `key`.
    fn server_for(&self, key: &[u8]) -> ServerId;
    /// Number of servers in the pool.
    fn n_servers(&self) -> usize;
}

/// Group `keys` by owning server: `groups[s]` lists the *indices* (into
/// `keys`) of every key whose primary server is `s`, preserving input
/// order within each group.
///
/// This is the placement half of batched transport: the caller turns each
/// group into one multi-key request to that server instead of one request
/// per key. Index lists (rather than cloned keys) keep grouping
/// allocation-free apart from the group vectors themselves.
pub fn group_by_server<K: AsRef<[u8]>>(dist: &dyn Distributor, keys: &[K]) -> Vec<Vec<usize>> {
    let mut groups = vec![Vec::new(); dist.n_servers()];
    for (i, key) in keys.iter().enumerate() {
        groups[dist.server_for(key.as_ref()).0].push(i);
    }
    groups
}

/// The paper's scheme: `hash(key) mod N` (§3.1.2). Perfectly balanced for
/// uniformly hashed keys; remaps almost everything when `N` changes.
#[derive(Debug, Clone)]
pub struct ModuloRing {
    n: usize,
    scheme: HashScheme,
}

impl ModuloRing {
    /// A modulo distributor over `n` servers.
    ///
    /// # Panics
    /// Panics if `n == 0`.
    pub fn new(n: usize, scheme: HashScheme) -> Self {
        assert!(n > 0, "need at least one server");
        ModuloRing { n, scheme }
    }
}

impl Distributor for ModuloRing {
    fn server_for(&self, key: &[u8]) -> ServerId {
        ServerId((self.scheme.hash(key) as usize) % self.n)
    }

    fn n_servers(&self) -> usize {
        self.n
    }
}

/// Ketama-style consistent hashing: each server contributes `points`
/// virtual positions on a 32-bit ring (derived from MD5, four points per
/// digest as in libmemcached); a key maps to the first point at or after
/// its own hash position.
///
/// The paper leaves elastic membership to future work but names consistent
/// hashing as the mechanism; the remapping bound (only ~1/N of keys move
/// when a server joins) is asserted by this crate's property tests.
#[derive(Debug, Clone)]
pub struct KetamaRing {
    /// Sorted (point, server) pairs.
    ring: Vec<(u32, ServerId)>,
    n: usize,
}

/// Default virtual points per server, matching libmemcached's
/// `MEMCACHED_POINTS_PER_SERVER_KETAMA` (40 digests x 4 points).
pub const DEFAULT_POINTS_PER_SERVER: usize = 160;

impl KetamaRing {
    /// Build a ring for servers named `names` with `points` virtual points
    /// each (`points` is rounded up to a multiple of 4).
    ///
    /// # Panics
    /// Panics on an empty server list or zero points.
    pub fn new(names: &[String], points: usize) -> Self {
        assert!(!names.is_empty(), "need at least one server");
        assert!(points > 0, "need at least one point per server");
        let digests_per_server = points.div_ceil(4);
        let mut ring = Vec::with_capacity(names.len() * digests_per_server * 4);
        for (idx, name) in names.iter().enumerate() {
            for d in 0..digests_per_server {
                let digest = md5(format!("{name}-{d}").as_bytes());
                for p in 0..4 {
                    let o = p * 4;
                    let point = u32::from_le_bytes([
                        digest[o],
                        digest[o + 1],
                        digest[o + 2],
                        digest[o + 3],
                    ]);
                    ring.push((point, ServerId(idx)));
                }
            }
        }
        ring.sort_unstable();
        ring.dedup_by_key(|e| e.0);
        KetamaRing {
            ring,
            n: names.len(),
        }
    }

    /// Build a ring for `n` anonymous servers (named `server-<i>`).
    pub fn with_n_servers(n: usize, points: usize) -> Self {
        let names: Vec<String> = (0..n).map(|i| format!("server-{i}")).collect();
        KetamaRing::new(&names, points)
    }

    /// Number of live virtual points (diagnostic).
    pub fn n_points(&self) -> usize {
        self.ring.len()
    }
}

impl Distributor for KetamaRing {
    fn server_for(&self, key: &[u8]) -> ServerId {
        let digest = md5(key);
        let h = u32::from_le_bytes([digest[0], digest[1], digest[2], digest[3]]);
        // First point at or after h, wrapping to the start.
        match self.ring.binary_search_by(|(p, _)| p.cmp(&h)) {
            Ok(i) => self.ring[i].1,
            Err(i) if i == self.ring.len() => self.ring[0].1,
            Err(i) => self.ring[i].1,
        }
    }

    fn n_servers(&self) -> usize {
        self.n
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn keys(n: usize) -> Vec<String> {
        (0..n)
            .map(|i| format!("/data/file{i}.fits#{}", i % 8))
            .collect()
    }

    #[test]
    fn modulo_covers_all_servers() {
        let d = ModuloRing::new(8, HashScheme::Fnv1a);
        let mut seen = [false; 8];
        for k in keys(1000) {
            let s = d.server_for(k.as_bytes());
            assert!(s.0 < 8);
            seen[s.0] = true;
        }
        assert!(seen.iter().all(|&s| s), "every server should receive keys");
    }

    #[test]
    fn group_by_server_partitions_all_keys_in_order() {
        let d = ModuloRing::new(4, HashScheme::Fnv1a);
        let ks = keys(100);
        let groups = group_by_server(&d, &ks);
        assert_eq!(groups.len(), 4);
        let total: usize = groups.iter().map(|g| g.len()).sum();
        assert_eq!(total, 100, "every key lands in exactly one group");
        for (s, group) in groups.iter().enumerate() {
            // Correct ownership, and input order preserved within a group.
            for w in group.windows(2) {
                assert!(w[0] < w[1]);
            }
            for &i in group {
                assert_eq!(d.server_for(ks[i].as_bytes()).0, s);
            }
        }
    }

    #[test]
    fn group_by_server_handles_empty_input() {
        let d = ModuloRing::new(3, HashScheme::Fnv1a);
        let groups = group_by_server(&d, &Vec::<Vec<u8>>::new());
        assert_eq!(groups.len(), 3);
        assert!(groups.iter().all(|g| g.is_empty()));
    }

    #[test]
    fn modulo_is_deterministic_across_instances() {
        let a = ModuloRing::new(16, HashScheme::Fnv1a);
        let b = ModuloRing::new(16, HashScheme::Fnv1a);
        for k in keys(200) {
            assert_eq!(a.server_for(k.as_bytes()), b.server_for(k.as_bytes()));
        }
    }

    #[test]
    fn modulo_schemes_differ() {
        let f = ModuloRing::new(64, HashScheme::Fnv1a);
        let j = ModuloRing::new(64, HashScheme::Jenkins);
        let diff = keys(500)
            .iter()
            .filter(|k| f.server_for(k.as_bytes()) != j.server_for(k.as_bytes()))
            .count();
        assert!(diff > 300, "schemes should place most keys differently");
    }

    #[test]
    fn ketama_covers_all_servers() {
        let d = KetamaRing::with_n_servers(8, DEFAULT_POINTS_PER_SERVER);
        let mut counts = [0usize; 8];
        for k in keys(4000) {
            counts[d.server_for(k.as_bytes()).0] += 1;
        }
        for (i, &c) in counts.iter().enumerate() {
            assert!(c > 0, "server {i} received no keys");
        }
    }

    #[test]
    fn ketama_ring_size() {
        let d = KetamaRing::with_n_servers(4, 160);
        // 4 servers x 160 points, minus rare dedup collisions.
        assert!(d.n_points() > 600 && d.n_points() <= 640);
        assert_eq!(d.n_servers(), 4);
    }

    #[test]
    fn ketama_remaps_few_keys_on_grow() {
        let before = KetamaRing::with_n_servers(8, 160);
        let after = KetamaRing::with_n_servers(9, 160);
        let ks = keys(5000);
        let moved = ks
            .iter()
            .filter(|k| before.server_for(k.as_bytes()) != after.server_for(k.as_bytes()))
            .count();
        // Ideal is 1/9 ≈ 11%; allow generous slack for virtual-point noise.
        let frac = moved as f64 / ks.len() as f64;
        assert!(
            frac < 0.25,
            "consistent hashing moved {:.0}% of keys",
            frac * 100.0
        );
        assert!(frac > 0.02, "growing the ring must move some keys");
    }

    #[test]
    fn modulo_remaps_most_keys_on_grow() {
        // The contrast motivating ketama for elasticity.
        let before = ModuloRing::new(8, HashScheme::Fnv1a);
        let after = ModuloRing::new(9, HashScheme::Fnv1a);
        let ks = keys(5000);
        let moved = ks
            .iter()
            .filter(|k| before.server_for(k.as_bytes()) != after.server_for(k.as_bytes()))
            .count();
        assert!(moved as f64 / ks.len() as f64 > 0.7);
    }

    #[test]
    fn single_server_takes_everything() {
        let m = ModuloRing::new(1, HashScheme::Fnv1a);
        let k = KetamaRing::with_n_servers(1, 16);
        for key in keys(50) {
            assert_eq!(m.server_for(key.as_bytes()), ServerId(0));
            assert_eq!(k.server_for(key.as_bytes()), ServerId(0));
        }
    }

    #[test]
    #[should_panic(expected = "at least one server")]
    fn zero_servers_panics() {
        ModuloRing::new(0, HashScheme::Fnv1a);
    }
}
