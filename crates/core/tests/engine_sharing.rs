//! The tentpole property of the shared I/O engine: a mount's thread
//! count is set by its config, not by how many files are open. Before
//! the shared engine, every `ServerPool` fan-out spun its own dispatcher
//! workers and every mount its own writer/prefetcher pools, so I/O
//! thread count grew with mounts; per-file engines would have been worse
//! still. This binary holds exactly one test on purpose — it counts
//! process-wide threads by name, which would race with parallel tests.

#![cfg(target_os = "linux")]

use std::sync::Arc;

use memfs_core::{MemFs, MemFsConfig};
use memfs_memkv::{KvClient, LocalClient, Store, StoreConfig};

/// Live threads of this process whose name starts with `memfs-io`
/// (engine workers; `comm` truncates at 15 chars, the prefix fits).
fn io_threads() -> usize {
    std::fs::read_dir("/proc/self/task")
        .unwrap()
        .filter_map(|e| std::fs::read_to_string(e.unwrap().path().join("comm")).ok())
        .filter(|name| name.trim_end().starts_with("memfs-io"))
        .count()
}

/// A spawned worker names itself when it starts running, so poll briefly
/// instead of racing freshly-created threads.
fn expect_io_threads(expected: usize, what: &str) {
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
    loop {
        let n = io_threads();
        if n == expected {
            return;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "{what}: expected {expected} engine threads, found {n}"
        );
        std::thread::sleep(std::time::Duration::from_millis(10));
    }
}

#[test]
fn thirty_two_open_files_share_one_bounded_dispatcher() {
    let servers: Vec<Arc<dyn KvClient>> = (0..4)
        .map(|_| {
            Arc::new(LocalClient::new(Arc::new(Store::new(
                StoreConfig::default(),
            )))) as Arc<dyn KvClient>
        })
        .collect();
    let config = MemFsConfig {
        stripe_size: 4096,
        write_buffer_size: 64 << 10,
        read_cache_size: 64 << 10,
        ..MemFsConfig::default()
    };
    assert_eq!(io_threads(), 0, "no engine threads before the mount");

    let fs = MemFs::new(servers, config.clone()).unwrap();
    // Local clients are submit-capable, so the fan-out rides the caller
    // thread and the engine is sized for background jobs only.
    let expected = config.engine_threads(1);
    assert_eq!(fs.engine().size(), expected);
    expect_io_threads(expected, "mounting starts the one engine");

    // 32 files open for reading and 32 more mid-write, all doing I/O
    // that previously would have demanded per-file worker threads.
    for i in 0..32 {
        fs.write_file(&format!("/f{i}"), &vec![i as u8; 40_000])
            .unwrap();
    }
    let readers: Vec<_> = (0..32)
        .map(|i| fs.open(&format!("/f{i}")).unwrap())
        .collect();
    let mut buf = vec![0u8; 40_000];
    for r in &readers {
        assert_eq!(r.read_at(0, &mut buf).unwrap(), 40_000);
    }
    let mut writers: Vec<_> = (0..32)
        .map(|i| {
            let mut w = fs.create(&format!("/w{i}")).unwrap();
            w.write_all(&vec![i as u8; 20_000]).unwrap();
            w
        })
        .collect();
    expect_io_threads(expected, "thread count must not scale with open files");

    for w in &mut writers {
        w.close().unwrap();
    }
    drop(writers);
    drop(readers);
    drop(fs);
    expect_io_threads(0, "dropping the mount joins every worker");
}
