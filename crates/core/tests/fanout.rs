//! Integration tests for the concurrent per-server fan-out dispatcher
//! (paper §3.2.2: symmetrical striping should drive all N servers at
//! once, so a batched window costs `max` of the per-server times).
//!
//! These exercise the `ServerPool` batch paths from the outside — order
//! preservation under concurrency, failure isolation per server, a
//! rendezvous proof that per-server batches really overlap, and
//! drop/shutdown draining through a full `MemFs` mount.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

use bytes::Bytes;
use memfs_core::{DistributorKind, MemFs, MemFsConfig, MemFsError, ServerPool};
use memfs_memkv::client::Shaping;
use memfs_memkv::error::{KvError, KvResult};
use memfs_memkv::{FailableClient, KvClient, LocalClient, Store, StoreConfig, ThrottledClient};

fn local_clients(n: usize) -> (Vec<Arc<dyn KvClient>>, Vec<Arc<Store>>) {
    let stores: Vec<Arc<Store>> = (0..n)
        .map(|_| Arc::new(Store::new(StoreConfig::default())))
        .collect();
    let clients = stores
        .iter()
        .map(|s| Arc::new(LocalClient::new(Arc::clone(s))) as Arc<dyn KvClient>)
        .collect();
    (clients, stores)
}

/// Keys shaped like stripe keys so they spread across servers.
fn stripe_like_keys(n: usize) -> Vec<Bytes> {
    (0..n)
        .map(|i| Bytes::from(format!("s:/fanout/file{}#{}", i % 7, i)))
        .collect()
}

#[test]
fn get_many_preserves_input_order_under_concurrency() {
    let (clients, _stores) = local_clients(4);
    let pool = ServerPool::new(clients, DistributorKind::default());
    assert_eq!(pool.io_parallelism(), 4, "auto fan-out: one worker/server");

    let keys = stripe_like_keys(128);
    let items: Vec<(Bytes, Bytes)> = keys
        .iter()
        .enumerate()
        .map(|(i, k)| (k.clone(), Bytes::from(format!("value-{i}"))))
        .collect();
    pool.set_many(&items).unwrap();

    // Many rounds: scheduling of the per-server jobs varies, the output
    // order must not.
    for _ in 0..50 {
        let out = pool.get_many(&keys);
        assert_eq!(out.len(), keys.len());
        for (i, r) in out.into_iter().enumerate() {
            assert_eq!(
                r.unwrap(),
                Bytes::from(format!("value-{i}")),
                "result {i} out of order"
            );
        }
    }
}

#[test]
fn get_many_handles_duplicate_and_missing_keys_in_order() {
    let (clients, _stores) = local_clients(3);
    let pool = ServerPool::new(clients, DistributorKind::default());
    pool.set(b"dup", Bytes::from_static(b"d")).unwrap();
    pool.set(b"one", Bytes::from_static(b"1")).unwrap();

    let keys = vec![
        Bytes::from_static(b"dup"),
        Bytes::from_static(b"missing"),
        Bytes::from_static(b"one"),
        Bytes::from_static(b"dup"),
    ];
    let out = pool.get_many(&keys);
    assert_eq!(out[0].as_ref().unwrap().as_ref(), b"d");
    assert!(matches!(
        out[1],
        Err(MemFsError::Storage(KvError::NotFound))
    ));
    assert_eq!(out[2].as_ref().unwrap().as_ref(), b"1");
    assert_eq!(out[3].as_ref().unwrap().as_ref(), b"d");
}

#[test]
fn dead_server_degrades_only_its_own_keys() {
    let failables: Vec<Arc<FailableClient<LocalClient>>> = (0..4)
        .map(|_| {
            Arc::new(FailableClient::new(LocalClient::new(Arc::new(Store::new(
                StoreConfig::default(),
            )))))
        })
        .collect();
    let clients: Vec<Arc<dyn KvClient>> = failables
        .iter()
        .map(|f| Arc::clone(f) as Arc<dyn KvClient>)
        .collect();
    let pool = ServerPool::new(clients, DistributorKind::default());

    let keys = stripe_like_keys(64);
    let items: Vec<(Bytes, Bytes)> = keys
        .iter()
        .map(|k| (k.clone(), Bytes::from_static(b"v")))
        .collect();
    pool.set_many(&items).unwrap();

    let dead = 2usize;
    failables[dead].set_down(true);
    let out = pool.get_many(&keys);
    let mut dead_keys = 0;
    for (k, r) in keys.iter().zip(out) {
        if pool.server_for(k).0 == dead {
            dead_keys += 1;
            assert!(r.is_err(), "key on dead server must fail (no replicas)");
        } else {
            assert_eq!(
                r.unwrap().as_ref(),
                b"v",
                "healthy servers' keys must be untouched by the dead one"
            );
        }
    }
    assert!(
        dead_keys > 0,
        "test needs at least one key on the dead server"
    );

    // Fallbacks were charged to the dead server only.
    let snap = pool.stats().snapshot();
    assert!(snap[dead].fallbacks >= dead_keys as u64);
    for (i, s) in snap.iter().enumerate() {
        if i != dead {
            assert_eq!(s.fallbacks, 0, "server {i} should not have fallen back");
        }
    }
}

#[test]
fn dead_server_is_masked_entirely_with_replication() {
    let failables: Vec<Arc<FailableClient<LocalClient>>> = (0..4)
        .map(|_| {
            Arc::new(FailableClient::new(LocalClient::new(Arc::new(Store::new(
                StoreConfig::default(),
            )))))
        })
        .collect();
    let clients: Vec<Arc<dyn KvClient>> = failables
        .iter()
        .map(|f| Arc::clone(f) as Arc<dyn KvClient>)
        .collect();
    let pool = ServerPool::with_replication(clients, DistributorKind::default(), 2);

    let keys = stripe_like_keys(48);
    let items: Vec<(Bytes, Bytes)> = keys
        .iter()
        .map(|k| (k.clone(), Bytes::from_static(b"replicated")))
        .collect();
    pool.set_many(&items).unwrap();

    failables[1].set_down(true);
    for r in pool.get_many(&keys) {
        assert_eq!(r.unwrap().as_ref(), b"replicated");
    }
}

#[test]
fn set_many_reports_dead_server_but_stores_the_rest() {
    let failables: Vec<Arc<FailableClient<LocalClient>>> = (0..4)
        .map(|_| {
            Arc::new(FailableClient::new(LocalClient::new(Arc::new(Store::new(
                StoreConfig::default(),
            )))))
        })
        .collect();
    let clients: Vec<Arc<dyn KvClient>> = failables
        .iter()
        .map(|f| Arc::clone(f) as Arc<dyn KvClient>)
        .collect();
    let pool = ServerPool::new(clients, DistributorKind::default());

    let keys = stripe_like_keys(64);
    let items: Vec<(Bytes, Bytes)> = keys
        .iter()
        .map(|k| (k.clone(), Bytes::from_static(b"w")))
        .collect();

    let dead = 0usize;
    failables[dead].set_down(true);
    // Deterministic: every batch is attempted, the reported error is the
    // dead server's (first in server order), and it is the same each run.
    for _ in 0..10 {
        assert!(pool.set_many(&items).is_err());
    }
    failables[dead].set_down(false);
    for (k, r) in keys.iter().zip(pool.get_many(&keys)) {
        if pool.server_for(k).0 == dead {
            assert!(r.is_err(), "dead server's keys were never stored");
        } else {
            assert_eq!(r.unwrap().as_ref(), b"w", "healthy batches must land");
        }
    }
}

/// A client that waits inside `get_many` until every participant has
/// entered, proving the per-server batches are on the wire simultaneously.
/// A sequential dispatcher would never reach the rendezvous and each call
/// would time out, tripping the assertion.
struct RendezvousClient {
    inner: LocalClient,
    arrived: Arc<(Mutex<usize>, Condvar)>,
    expected: usize,
    full_house: AtomicBool,
}

impl RendezvousClient {
    fn new(store: Arc<Store>, arrived: Arc<(Mutex<usize>, Condvar)>, expected: usize) -> Self {
        RendezvousClient {
            inner: LocalClient::new(store),
            arrived,
            expected,
            full_house: AtomicBool::new(false),
        }
    }

    fn rendezvous(&self) {
        let (lock, cv) = &*self.arrived;
        let mut n = lock.lock().unwrap();
        *n += 1;
        cv.notify_all();
        let deadline = Duration::from_secs(5);
        while *n < self.expected {
            let (guard, timeout) = cv.wait_timeout(n, deadline).unwrap();
            n = guard;
            if timeout.timed_out() {
                return; // full_house stays false => assertion fires
            }
        }
        self.full_house.store(true, Ordering::SeqCst);
    }
}

impl KvClient for RendezvousClient {
    fn scan_keys(&self) -> KvResult<Vec<Vec<u8>>> {
        self.inner.scan_keys()
    }
    fn get(&self, key: &[u8]) -> KvResult<Bytes> {
        self.inner.get(key)
    }
    fn set(&self, key: &[u8], value: Bytes) -> KvResult<()> {
        self.inner.set(key, value)
    }
    fn add(&self, key: &[u8], value: Bytes) -> KvResult<()> {
        self.inner.add(key, value)
    }
    fn append(&self, key: &[u8], suffix: &[u8]) -> KvResult<()> {
        self.inner.append(key, suffix)
    }
    fn delete(&self, key: &[u8]) -> KvResult<()> {
        self.inner.delete(key)
    }
    fn contains(&self, key: &[u8]) -> bool {
        self.inner.contains(key)
    }
    fn get_many(&self, keys: &[Bytes]) -> KvResult<Vec<KvResult<Bytes>>> {
        self.rendezvous();
        self.inner.get_many(keys)
    }
    fn set_many(&self, items: &[(Bytes, Bytes)]) -> KvResult<Vec<KvResult<()>>> {
        self.rendezvous();
        self.inner.set_many(items)
    }
    fn delete_many(&self, keys: &[Bytes]) -> KvResult<Vec<KvResult<()>>> {
        self.rendezvous();
        self.inner.delete_many(keys)
    }
}

#[test]
fn per_server_batches_really_run_in_parallel() {
    const N: usize = 4;
    let arrived = Arc::new((Mutex::new(0usize), Condvar::new()));
    let rendezvous: Vec<Arc<RendezvousClient>> = (0..N)
        .map(|_| {
            Arc::new(RendezvousClient::new(
                Arc::new(Store::new(StoreConfig::default())),
                Arc::clone(&arrived),
                N,
            ))
        })
        .collect();
    let clients: Vec<Arc<dyn KvClient>> = rendezvous
        .iter()
        .map(|c| Arc::clone(c) as Arc<dyn KvClient>)
        .collect();
    let pool = ServerPool::new(clients, DistributorKind::default());

    // Enough keys that every server owns a share of the batch.
    let keys = stripe_like_keys(64);
    for k in &keys {
        assert!(pool.server_for(k).0 < N);
    }
    let occupied: std::collections::HashSet<usize> =
        keys.iter().map(|k| pool.server_for(k).0).collect();
    assert_eq!(occupied.len(), N, "keys must cover all servers");

    // set_many: all four per-server batches must meet inside the clients.
    let items: Vec<(Bytes, Bytes)> = keys
        .iter()
        .map(|k| (k.clone(), Bytes::from_static(b"x")))
        .collect();
    pool.set_many(&items).unwrap();
    for (i, c) in rendezvous.iter().enumerate() {
        assert!(
            c.full_house.load(Ordering::SeqCst),
            "server {i}'s set batch never saw all {N} batches in flight"
        );
    }

    // Reset and prove the same for get_many.
    *arrived.0.lock().unwrap() = 0;
    for c in &rendezvous {
        c.full_house.store(false, Ordering::SeqCst);
    }
    for r in pool.get_many(&keys) {
        r.unwrap();
    }
    for (i, c) in rendezvous.iter().enumerate() {
        assert!(
            c.full_house.load(Ordering::SeqCst),
            "server {i}'s get batch never saw all {N} batches in flight"
        );
    }
}

#[test]
fn per_server_delete_batches_run_in_parallel() {
    // The unlink path frees stripes via `delete_many`; its per-server
    // batches must overlap just like reads and writes do.
    const N: usize = 4;
    let arrived = Arc::new((Mutex::new(0usize), Condvar::new()));
    let rendezvous: Vec<Arc<RendezvousClient>> = (0..N)
        .map(|_| {
            Arc::new(RendezvousClient::new(
                Arc::new(Store::new(StoreConfig::default())),
                Arc::clone(&arrived),
                N,
            ))
        })
        .collect();
    let clients: Vec<Arc<dyn KvClient>> = rendezvous
        .iter()
        .map(|c| Arc::clone(c) as Arc<dyn KvClient>)
        .collect();
    let pool = ServerPool::new(clients, DistributorKind::default());

    let keys = stripe_like_keys(64);
    for k in &keys {
        pool.set(k, Bytes::from_static(b"doomed")).unwrap();
    }
    for r in pool.delete_many(&keys) {
        assert!(r.unwrap(), "every key existed and must report deleted");
    }
    for (i, c) in rendezvous.iter().enumerate() {
        assert!(
            c.full_house.load(Ordering::SeqCst),
            "server {i}'s delete batch never saw all {N} batches in flight"
        );
    }
}

#[test]
fn sequential_pool_stays_sequential() {
    // io_parallelism = 1 must never overlap batches: max_in_flight == 1
    // on every server even for a wide multi-server get_many.
    let (clients, _stores) = local_clients(4);
    let pool = ServerPool::with_options(clients, DistributorKind::default(), 1, 1);
    assert_eq!(pool.io_parallelism(), 1);
    let keys = stripe_like_keys(64);
    let items: Vec<(Bytes, Bytes)> = keys
        .iter()
        .map(|k| (k.clone(), Bytes::from_static(b"s")))
        .collect();
    pool.set_many(&items).unwrap();
    for r in pool.get_many(&keys) {
        r.unwrap();
    }
    for s in pool.stats().snapshot() {
        assert!(s.max_in_flight <= 1, "sequential dispatch must not overlap");
        assert_eq!(s.in_flight, 0);
    }
}

#[test]
fn in_flight_settles_to_zero_under_concurrent_callers() {
    let (clients, _stores) = local_clients(4);
    let slow: Vec<Arc<dyn KvClient>> = clients
        .into_iter()
        .map(|c| {
            Arc::new(ThrottledClient::new(
                c,
                Shaping {
                    latency: Duration::from_micros(200),
                    bandwidth: f64::INFINITY,
                },
            )) as Arc<dyn KvClient>
        })
        .collect();
    let pool = Arc::new(ServerPool::new(slow, DistributorKind::default()));
    let keys = Arc::new(stripe_like_keys(64));
    let items: Vec<(Bytes, Bytes)> = keys
        .iter()
        .map(|k| (k.clone(), Bytes::from_static(b"z")))
        .collect();
    pool.set_many(&items).unwrap();

    let threads: Vec<_> = (0..4)
        .map(|_| {
            let pool = Arc::clone(&pool);
            let keys = Arc::clone(&keys);
            std::thread::spawn(move || {
                for _ in 0..8 {
                    for r in pool.get_many(&keys) {
                        r.unwrap();
                    }
                }
            })
        })
        .collect();
    for t in threads {
        t.join().unwrap();
    }
    let snap = pool.stats().snapshot();
    let total_batches: u64 = snap.iter().map(|s| s.batches).sum();
    for s in &snap {
        assert_eq!(s.in_flight, 0, "gauge must settle once all callers join");
        assert!(s.max_in_flight <= total_batches as usize);
    }
    // 1 set_many + 4 threads x 8 get_many rounds, each touching all four
    // servers. (Whether batches *stack* on one server is up to the
    // scheduler — the deterministic overlap proof is the rendezvous test.)
    assert_eq!(total_batches, 33 * 4, "every per-server batch accounted");
}

#[test]
fn drop_joins_dispatch_workers_without_losing_stripes() {
    // Write through a full MemFs mount over shaped (slow) servers, drop
    // the mount immediately after close, and verify every stripe is on
    // the stores by re-mounting and reading the file back.
    let stores: Vec<Arc<Store>> = (0..4)
        .map(|_| Arc::new(Store::new(StoreConfig::default())))
        .collect();
    let shaped = |stores: &[Arc<Store>]| -> Vec<Arc<dyn KvClient>> {
        stores
            .iter()
            .map(|s| {
                Arc::new(ThrottledClient::new(
                    LocalClient::new(Arc::clone(s)),
                    Shaping {
                        latency: Duration::from_micros(100),
                        bandwidth: f64::INFINITY,
                    },
                )) as Arc<dyn KvClient>
            })
            .collect()
    };
    let config = MemFsConfig {
        stripe_size: 64 << 10,
        write_buffer_size: 1 << 20,
        read_cache_size: 1 << 20,
        ..MemFsConfig::default()
    };

    let data: Vec<u8> = (0..(1usize << 20) + 12345)
        .map(|i| (i * 31) as u8)
        .collect();
    {
        let fs = MemFs::new(shaped(&stores), config.clone()).unwrap();
        fs.mkdir("/fanout").unwrap();
        let mut w = fs.create("/fanout/drop.dat").unwrap();
        w.write_all(&data).unwrap();
        w.close().unwrap();
        drop(fs); // joins writer, prefetcher and dispatcher threads
    }

    let fs = MemFs::new(shaped(&stores), config).unwrap();
    let got = fs.read_to_vec("/fanout/drop.dat").unwrap();
    assert_eq!(got.len(), data.len());
    assert_eq!(got, data, "no stripe may be lost or reordered on shutdown");
}
