//! Elastic storage membership — the paper's stated future work
//! ("we investigate schemes to dynamically scale out storage nodes for
//! handling growing storage requirements at application runtime", §5) and
//! the reason it names consistent hashing: "for scenarios when nodes join
//! and leave the system, a consistent hashing scheme of Libmemcached can
//! be used" (§3.1.2).
//!
//! [`rebalance`] migrates the keys whose placement changed between an old
//! and a new server pool. With the ketama distributor only ~`1/(N+1)` of
//! the keys move when a server joins (asserted by this crate's property
//! tests); with the modulo distributor nearly everything moves — the
//! trade-off the paper alludes to.
//!
//! Key enumeration uses the `keys` protocol extension
//! ([`memfs_memkv::KvClient::scan_keys`]), supported by the in-process and
//! TCP clients alike.

use std::collections::BTreeSet;

use memfs_hashring::ServerId;

use crate::error::{MemFsError, MemFsResult};
use crate::pool::ServerPool;

/// Outcome of a rebalance pass.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RebalanceReport {
    /// Distinct keys found across the old pool.
    pub scanned_keys: usize,
    /// Keys copied to at least one new location.
    pub moved_keys: usize,
    /// Bytes copied.
    pub moved_bytes: u64,
    /// Stale copies removed from servers that no longer own their key.
    pub removed_copies: usize,
}

/// Migrate data so that every key is stored exactly where `to` places it.
///
/// Requirements:
/// * `to` must contain the servers of `from` **at the same indices**, with
///   any new servers appended (the usual grow-the-cluster shape);
/// * no writers may be active during the pass (MemFS files are immutable
///   once closed, so quiescing writers is sufficient — readers may
///   continue, since copies are added before stale ones are removed).
///
/// The pass is idempotent: re-running it after a crash converges.
///
/// # Panics
/// Panics if `to` has fewer servers than `from`.
pub fn rebalance(from: &ServerPool, to: &ServerPool) -> MemFsResult<RebalanceReport> {
    assert!(
        to.n_servers() >= from.n_servers(),
        "rebalance target must contain every source server"
    );
    let mut report = RebalanceReport::default();

    // Gather the distinct key population from every old server (replicas
    // make keys appear on several servers).
    let mut keys: BTreeSet<Vec<u8>> = BTreeSet::new();
    for s in 0..from.n_servers() {
        let server_keys = from
            .client(ServerId(s))
            .scan_keys()
            .map_err(MemFsError::Storage)?;
        keys.extend(server_keys);
    }
    report.scanned_keys = keys.len();

    for key in &keys {
        let old: BTreeSet<usize> = from.servers_for(key).map(|s| s.0).collect();
        let new: BTreeSet<usize> = to.servers_for(key).map(|s| s.0).collect();
        if old == new {
            continue;
        }
        // Copy-before-delete keeps the key readable throughout.
        let value = from.get(key)?;
        let mut copied = false;
        for &dst in new.difference(&old) {
            to.client(ServerId(dst)).set(key, value.clone())?;
            report.moved_bytes += value.len() as u64;
            copied = true;
        }
        if copied {
            report.moved_keys += 1;
        }
        for &src in old.difference(&new) {
            match to.client(ServerId(src)).delete(key) {
                Ok(()) => report.removed_copies += 1,
                Err(memfs_memkv::KvError::NotFound) => {}
                Err(e) => return Err(e.into()),
            }
        }
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{DistributorKind, MemFsConfig};
    use crate::fs::MemFs;
    use std::sync::Arc;

    use memfs_memkv::{KvClient, LocalClient, Store, StoreConfig};

    fn stores(n: usize) -> Vec<Arc<Store>> {
        (0..n)
            .map(|_| Arc::new(Store::new(StoreConfig::default())))
            .collect()
    }

    fn clients(stores: &[Arc<Store>]) -> Vec<Arc<dyn KvClient>> {
        stores
            .iter()
            .map(|s| Arc::new(LocalClient::new(Arc::clone(s))) as Arc<dyn KvClient>)
            .collect()
    }

    fn ketama() -> DistributorKind {
        DistributorKind::Ketama {
            points_per_server: 64,
        }
    }

    #[test]
    fn grow_cluster_and_read_everything_back() {
        // Write through a 3-server ketama mount.
        let all_stores = stores(4);
        let old_pool = Arc::new(ServerPool::new(clients(&all_stores[..3]), ketama()));
        let config = MemFsConfig {
            stripe_size: 2048,
            write_buffer_size: 8192,
            read_cache_size: 8192,
            writer_threads: 2,
            prefetch_threads: 2,
            prefetch_window: 2,
            distributor: ketama(),
            ..MemFsConfig::default()
        };
        let fs_old = MemFs::with_pool(Arc::clone(&old_pool), config.clone()).unwrap();
        let mut originals = Vec::new();
        for i in 0..20 {
            let data: Vec<u8> = (0..9_000u32).map(|b| ((b + i) % 251) as u8).collect();
            fs_old.write_file(&format!("/f{i}"), &data).unwrap();
            originals.push(data);
        }

        // Grow to 4 servers and rebalance.
        let new_pool = Arc::new(ServerPool::new(clients(&all_stores), ketama()));
        let report = rebalance(&old_pool, &new_pool).unwrap();
        assert!(report.scanned_keys > 0);
        assert!(report.moved_keys > 0, "a new server must receive keys");
        assert_eq!(report.moved_keys, report.removed_copies);

        // A mount over the grown pool reads everything.
        let fs_new = MemFs::with_pool(Arc::clone(&new_pool), config).unwrap();
        for (i, data) in originals.iter().enumerate() {
            assert_eq!(&fs_new.read_to_vec(&format!("/f{i}")).unwrap(), data);
        }
        // The new server actually holds data.
        assert!(all_stores[3].item_count() > 0);
        // No key remains misplaced: re-running is a no-op.
        let again = rebalance(&new_pool, &new_pool).unwrap();
        assert_eq!(again.moved_keys, 0);
        assert_eq!(again.removed_copies, 0);
    }

    #[test]
    fn ketama_moves_a_bounded_fraction() {
        let all_stores = stores(9);
        let old_pool = ServerPool::new(clients(&all_stores[..8]), ketama());
        // Populate directly with many keys.
        for i in 0..400 {
            old_pool
                .set(
                    format!("s:/data/file{i}#0").as_bytes(),
                    bytes::Bytes::from(vec![0u8; 64]),
                )
                .unwrap();
        }
        let new_pool = ServerPool::new(clients(&all_stores), ketama());
        let report = rebalance(&old_pool, &new_pool).unwrap();
        assert_eq!(report.scanned_keys, 400);
        let frac = report.moved_keys as f64 / 400.0;
        assert!(
            frac < 0.3,
            "ketama growth moved {frac:.0}% of keys — should be near 1/9"
        );
    }

    #[test]
    fn modulo_moves_almost_everything() {
        // The contrast that motivates ketama for elasticity.
        let all_stores = stores(9);
        let old_pool = ServerPool::new(clients(&all_stores[..8]), DistributorKind::default());
        for i in 0..400 {
            old_pool
                .set(
                    format!("s:/data/file{i}#0").as_bytes(),
                    bytes::Bytes::from(vec![0u8; 64]),
                )
                .unwrap();
        }
        let new_pool = ServerPool::new(clients(&all_stores), DistributorKind::default());
        let report = rebalance(&old_pool, &new_pool).unwrap();
        let frac = report.moved_keys as f64 / 400.0;
        assert!(
            frac > 0.7,
            "modulo growth should move most keys, moved {frac:.0}%"
        );
        // Everything still readable through the new pool.
        for i in 0..400 {
            assert!(new_pool
                .get(format!("s:/data/file{i}#0").as_bytes())
                .is_ok());
        }
    }

    #[test]
    fn rebalance_preserves_replication() {
        let all_stores = stores(5);
        let old_pool = ServerPool::with_replication(clients(&all_stores[..4]), ketama(), 2);
        for i in 0..100 {
            old_pool
                .set(
                    format!("k{i}").as_bytes(),
                    bytes::Bytes::from(vec![1u8; 32]),
                )
                .unwrap();
        }
        let new_pool = ServerPool::with_replication(clients(&all_stores), ketama(), 2);
        rebalance(&old_pool, &new_pool).unwrap();
        // Every key is on exactly its two new homes.
        for i in 0..100 {
            let key = format!("k{i}");
            let homes: BTreeSet<usize> =
                new_pool.servers_for(key.as_bytes()).map(|s| s.0).collect();
            for (s, store) in all_stores.iter().enumerate() {
                assert_eq!(
                    store.contains(key.as_bytes()),
                    homes.contains(&s),
                    "key {key} misplaced on server {s}"
                );
            }
        }
    }
}
