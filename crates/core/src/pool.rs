//! The server pool: the Libmemcached role (paper §3.1.2).
//!
//! Holds one [`KvClient`] per storage server plus a [`Distributor`]; every
//! operation hashes its key to pick the server. All MemFS mounts with the
//! same server list and distributor agree on placement — that is what lets
//! any compute node read any file without coordination.

use std::sync::Arc;

use bytes::Bytes;
use memfs_hashring::{group_by_server, Distributor, KetamaRing, ModuloRing, ServerId};
use memfs_memkv::{KvClient, KvError};

use crate::config::DistributorKind;
use crate::error::{MemFsError, MemFsResult};

/// A hash-routed pool of storage servers with optional n-way replication.
///
/// Replication is the fault-tolerance mechanism the paper sketches but
/// defers ("assuming the replication factor is n, then the total storage
/// capacity of MemFS would be decreased n times and n times more data will
/// flow through the network", §3.2.5). With `replication = r`, each key is
/// written to `r` consecutive servers on the ring (primary + followers);
/// reads try the primary first and fall back to the followers, so the
/// system tolerates `r - 1` server failures. The capacity/traffic cost the
/// paper predicts is measured by the `replication` bench.
///
/// Caveat (documented, matching the paper's decision not to productize
/// this): replicated `append` applies to each copy in turn, so two
/// *concurrent* appends to one key may order differently across replicas.
/// MemFS' directory logs are order-insensitive sets, so folding still
/// converges; applications needing ordered replicated appends should keep
/// `replication = 1`.
pub struct ServerPool {
    clients: Vec<Arc<dyn KvClient>>,
    dist: Arc<dyn Distributor>,
    replication: usize,
}

impl ServerPool {
    /// Build a pool over `clients` with the configured distributor and no
    /// replication.
    ///
    /// # Panics
    /// Panics on an empty client list.
    pub fn new(clients: Vec<Arc<dyn KvClient>>, kind: DistributorKind) -> Self {
        Self::with_replication(clients, kind, 1)
    }

    /// Build a pool that writes each key to `replication` consecutive
    /// servers.
    ///
    /// # Panics
    /// Panics on an empty client list, `replication == 0`, or a
    /// replication factor exceeding the server count.
    pub fn with_replication(
        clients: Vec<Arc<dyn KvClient>>,
        kind: DistributorKind,
        replication: usize,
    ) -> Self {
        assert!(!clients.is_empty(), "server pool needs at least one server");
        assert!(
            replication >= 1 && replication <= clients.len(),
            "replication factor {replication} invalid for {} servers",
            clients.len()
        );
        let dist: Arc<dyn Distributor> = match kind {
            DistributorKind::Modulo(scheme) => Arc::new(ModuloRing::new(clients.len(), scheme)),
            DistributorKind::Ketama { points_per_server } => {
                Arc::new(KetamaRing::with_n_servers(clients.len(), points_per_server))
            }
        };
        ServerPool {
            clients,
            dist,
            replication,
        }
    }

    /// The configured replication factor.
    pub fn replication(&self) -> usize {
        self.replication
    }

    /// The servers holding `key`, primary first.
    pub fn servers_for(&self, key: &[u8]) -> impl Iterator<Item = ServerId> + '_ {
        let primary = self.dist.server_for(key).0;
        let n = self.clients.len();
        (0..self.replication).map(move |i| ServerId((primary + i) % n))
    }

    /// Number of servers.
    pub fn n_servers(&self) -> usize {
        self.clients.len()
    }

    /// The server a key routes to (exposed for balance diagnostics and the
    /// simulation models, which share this placement logic).
    pub fn server_for(&self, key: &[u8]) -> ServerId {
        self.dist.server_for(key)
    }

    /// The client for a given server id.
    pub fn client(&self, id: ServerId) -> &Arc<dyn KvClient> {
        &self.clients[id.0]
    }

    /// Routed `set`: written to every replica; all must accept.
    pub fn set(&self, key: &[u8], value: Bytes) -> MemFsResult<()> {
        for id in self.servers_for(key) {
            self.client(id).set(key, value.clone())?;
        }
        Ok(())
    }

    /// Routed `add`: the primary arbitrates existence (its atomic `add` is
    /// the write-once gate); followers receive plain `set`s.
    pub fn add(&self, key: &[u8], value: Bytes) -> MemFsResult<()> {
        let mut servers = self.servers_for(key);
        let primary = servers.next().expect("replication >= 1");
        self.client(primary).add(key, value.clone())?;
        for id in servers {
            self.client(id).set(key, value.clone())?;
        }
        Ok(())
    }

    /// Routed `get`: primary first, surviving replicas on failure. Only
    /// transport/server errors trigger fallback — `NotFound` is
    /// authoritative from any live replica.
    pub fn get(&self, key: &[u8]) -> MemFsResult<Bytes> {
        let mut last_err: Option<KvError> = None;
        for id in self.servers_for(key) {
            match self.client(id).get(key) {
                Ok(v) => return Ok(v),
                Err(e @ KvError::NotFound) => return Err(e.into()),
                Err(e) => last_err = Some(e),
            }
        }
        Err(last_err.expect("replication >= 1").into())
    }

    /// Routed `get` that maps a missing key to `None`.
    pub fn try_get(&self, key: &[u8]) -> MemFsResult<Option<Bytes>> {
        match self.get(key) {
            Ok(v) => Ok(Some(v)),
            Err(MemFsError::Storage(KvError::NotFound)) => Ok(None),
            Err(e) => Err(e),
        }
    }

    /// Batched routed `get`: keys are grouped by primary server and each
    /// group travels as **one** [`KvClient::get_many`] call, so a prefetch
    /// window of `w` stripes over `n` servers costs at most `n` round
    /// trips instead of `w`. Results come back in input order.
    ///
    /// Fallback mirrors [`ServerPool::get`]: a transport failure (of the
    /// whole batch or a single key) retries that key through the replica
    /// chain; `NotFound` from a live server is authoritative.
    pub fn get_many(&self, keys: &[Vec<u8>]) -> Vec<MemFsResult<Bytes>> {
        let mut out: Vec<Option<MemFsResult<Bytes>>> = (0..keys.len()).map(|_| None).collect();
        for (server, group) in group_by_server(self.dist.as_ref(), keys)
            .into_iter()
            .enumerate()
        {
            if group.is_empty() {
                continue;
            }
            let batch: Vec<Vec<u8>> = group.iter().map(|&i| keys[i].clone()).collect();
            match self.client(ServerId(server)).get_many(&batch) {
                Ok(results) => {
                    for (&i, r) in group.iter().zip(results) {
                        out[i] = Some(match r {
                            Ok(v) => Ok(v),
                            Err(KvError::NotFound) => Err(KvError::NotFound.into()),
                            // Per-key transport/server error: replica chain.
                            Err(_) => self.get(&keys[i]),
                        });
                    }
                }
                // Whole-batch transport failure: fall back key by key so
                // replicas (if any) still serve the window.
                Err(_) => {
                    for &i in &group {
                        out[i] = Some(self.get(&keys[i]));
                    }
                }
            }
        }
        out.into_iter()
            .map(|r| r.expect("every key grouped exactly once"))
            .collect()
    }

    /// Batched routed `set`: items are grouped per replica-holding server
    /// and each group travels as one pipelined [`KvClient::set_many`]
    /// call. Fails on the first per-item error after attempting every
    /// batch (matching `set`'s all-replicas-must-accept contract).
    pub fn set_many(&self, items: &[(Vec<u8>, Bytes)]) -> MemFsResult<()> {
        // With replication, each item lands on `r` consecutive servers —
        // build one batch per *target* server across all replicas.
        let mut batches: Vec<Vec<(Vec<u8>, Bytes)>> = vec![Vec::new(); self.clients.len()];
        for (key, value) in items {
            for id in self.servers_for(key) {
                batches[id.0].push((key.clone(), value.clone()));
            }
        }
        let mut first_err: Option<MemFsError> = None;
        for (server, batch) in batches.into_iter().enumerate() {
            if batch.is_empty() {
                continue;
            }
            match self.client(ServerId(server)).set_many(&batch) {
                Ok(results) => {
                    if first_err.is_none() {
                        if let Some(e) = results.into_iter().find_map(|r| r.err()) {
                            first_err = Some(e.into());
                        }
                    }
                }
                Err(e) => {
                    if first_err.is_none() {
                        first_err = Some(e.into());
                    }
                }
            }
        }
        match first_err {
            None => Ok(()),
            Some(e) => Err(e),
        }
    }

    /// Routed atomic `append`, applied to every replica (see the ordering
    /// caveat in the type docs).
    pub fn append(&self, key: &[u8], suffix: &[u8]) -> MemFsResult<()> {
        for id in self.servers_for(key) {
            self.client(id).append(key, suffix)?;
        }
        Ok(())
    }

    /// Routed `delete`; missing keys and dead replicas are ignored
    /// (idempotent cleanup).
    pub fn delete_quiet(&self, key: &[u8]) -> MemFsResult<()> {
        let mut last_err: Option<KvError> = None;
        let mut any_ok = false;
        for id in self.servers_for(key) {
            match self.client(id).delete(key) {
                Ok(()) | Err(KvError::NotFound) => any_ok = true,
                Err(e) => last_err = Some(e),
            }
        }
        if any_ok {
            Ok(())
        } else {
            Err(last_err.expect("replication >= 1").into())
        }
    }

    /// Whether a key exists on any live replica.
    pub fn contains(&self, key: &[u8]) -> bool {
        self.servers_for(key)
            .any(|id| self.client(id).contains(key))
    }
}

impl std::fmt::Debug for ServerPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServerPool")
            .field("n_servers", &self.clients.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use memfs_memkv::{LocalClient, Store, StoreConfig};

    fn pool(n: usize) -> (ServerPool, Vec<Arc<Store>>) {
        let stores: Vec<Arc<Store>> = (0..n)
            .map(|_| Arc::new(Store::new(StoreConfig::default())))
            .collect();
        let clients: Vec<Arc<dyn KvClient>> = stores
            .iter()
            .map(|s| Arc::new(LocalClient::new(Arc::clone(s))) as Arc<dyn KvClient>)
            .collect();
        (ServerPool::new(clients, DistributorKind::default()), stores)
    }

    #[test]
    fn routed_round_trip() {
        let (p, _) = pool(4);
        p.set(b"k1", Bytes::from_static(b"v1")).unwrap();
        assert_eq!(p.get(b"k1").unwrap().as_ref(), b"v1");
        assert!(p.contains(b"k1"));
        assert_eq!(p.try_get(b"missing").unwrap(), None);
    }

    #[test]
    fn keys_spread_across_servers() {
        let (p, stores) = pool(4);
        for i in 0..200 {
            let key = format!("s:/file{i}#0");
            p.set(key.as_bytes(), Bytes::from_static(b"x")).unwrap();
        }
        for (i, s) in stores.iter().enumerate() {
            assert!(
                s.item_count() > 20,
                "server {i} got {} items",
                s.item_count()
            );
        }
    }

    #[test]
    fn get_many_issues_one_batch_per_server() {
        let (p, stores) = pool(4);
        let keys: Vec<Vec<u8>> = (0..64).map(|i| format!("s:/f{i}#0").into_bytes()).collect();
        let items: Vec<(Vec<u8>, Bytes)> = keys
            .iter()
            .map(|k| {
                (
                    k.clone(),
                    Bytes::from(format!("v{}", String::from_utf8_lossy(k))),
                )
            })
            .collect();
        p.set_many(&items).unwrap();
        let out = p.get_many(&keys);
        for (k, r) in keys.iter().zip(out) {
            assert_eq!(
                r.unwrap(),
                Bytes::from(format!("v{}", String::from_utf8_lossy(k)))
            );
        }
        // Each server that owns any of the keys saw exactly ONE batched
        // multi-get — the acceptance criterion for windowed prefetching.
        for s in &stores {
            if s.item_count() > 0 {
                assert_eq!(s.stats().snapshot().mget_ops, 1);
            }
        }
    }

    #[test]
    fn get_many_misses_are_per_key() {
        let (p, _) = pool(3);
        p.set(b"present", Bytes::from_static(b"yes")).unwrap();
        let out = p.get_many(&[b"present".to_vec(), b"absent".to_vec()]);
        assert_eq!(out[0].as_ref().unwrap().as_ref(), b"yes");
        assert!(matches!(
            out[1],
            Err(MemFsError::Storage(KvError::NotFound))
        ));
    }

    #[test]
    fn get_many_falls_back_to_replicas_when_primary_dies() {
        use memfs_memkv::{FailableClient, LocalClient, Store, StoreConfig};
        let failables: Vec<Arc<FailableClient<LocalClient>>> = (0..3)
            .map(|_| {
                Arc::new(FailableClient::new(LocalClient::new(Arc::new(Store::new(
                    StoreConfig::default(),
                )))))
            })
            .collect();
        let clients: Vec<Arc<dyn KvClient>> = failables
            .iter()
            .map(|f| Arc::clone(f) as Arc<dyn KvClient>)
            .collect();
        let p = ServerPool::with_replication(clients, DistributorKind::default(), 2);
        let keys: Vec<Vec<u8>> = (0..24).map(|i| format!("k{i}").into_bytes()).collect();
        for k in &keys {
            p.set(k, Bytes::from_static(b"replicated")).unwrap();
        }
        // Kill one server: every key it owned as primary must still be
        // served by its follower through the batched path.
        failables[0].set_down(true);
        for r in p.get_many(&keys) {
            assert_eq!(r.unwrap().as_ref(), b"replicated");
        }
    }

    #[test]
    fn set_many_respects_replication() {
        use memfs_memkv::{LocalClient, Store, StoreConfig};
        let stores: Vec<Arc<Store>> = (0..4)
            .map(|_| Arc::new(Store::new(StoreConfig::default())))
            .collect();
        let clients: Vec<Arc<dyn KvClient>> = stores
            .iter()
            .map(|s| Arc::new(LocalClient::new(Arc::clone(s))) as Arc<dyn KvClient>)
            .collect();
        let p = ServerPool::with_replication(clients, DistributorKind::default(), 2);
        let items: Vec<(Vec<u8>, Bytes)> = (0..16)
            .map(|i| (format!("k{i}").into_bytes(), Bytes::from_static(b"x")))
            .collect();
        p.set_many(&items).unwrap();
        let copies: u64 = stores.iter().map(|s| s.item_count()).sum();
        assert_eq!(copies, 32, "16 items x 2 replicas");
        for (k, _) in &items {
            assert_eq!(p.get(k).unwrap().as_ref(), b"x");
        }
    }

    #[test]
    fn placement_is_stable_across_pool_instances() {
        let (p1, _) = pool(8);
        let (p2, _) = pool(8);
        for i in 0..100 {
            let key = format!("s:/f{i}#3");
            assert_eq!(p1.server_for(key.as_bytes()), p2.server_for(key.as_bytes()));
        }
    }

    #[test]
    fn delete_quiet_is_idempotent() {
        let (p, _) = pool(2);
        p.set(b"k", Bytes::from_static(b"v")).unwrap();
        p.delete_quiet(b"k").unwrap();
        p.delete_quiet(b"k").unwrap();
        assert!(!p.contains(b"k"));
    }

    #[test]
    fn ketama_pool_works() {
        let stores: Vec<Arc<dyn KvClient>> = (0..4)
            .map(|_| {
                Arc::new(LocalClient::new(Arc::new(Store::new(
                    StoreConfig::default(),
                )))) as Arc<dyn KvClient>
            })
            .collect();
        let p = ServerPool::new(
            stores,
            DistributorKind::Ketama {
                points_per_server: 64,
            },
        );
        p.set(b"k", Bytes::from_static(b"v")).unwrap();
        assert_eq!(p.get(b"k").unwrap().as_ref(), b"v");
    }

    #[test]
    #[should_panic(expected = "at least one server")]
    fn empty_pool_panics() {
        ServerPool::new(Vec::new(), DistributorKind::default());
    }

    #[test]
    #[should_panic(expected = "replication factor")]
    fn oversized_replication_panics() {
        let (p, _) = pool(2);
        drop(p);
        let stores: Vec<Arc<dyn KvClient>> = (0..2)
            .map(|_| {
                Arc::new(LocalClient::new(Arc::new(Store::new(
                    StoreConfig::default(),
                )))) as Arc<dyn KvClient>
            })
            .collect();
        ServerPool::with_replication(stores, DistributorKind::default(), 3);
    }

    #[test]
    fn replicated_writes_land_on_consecutive_servers() {
        let stores: Vec<Arc<Store>> = (0..4)
            .map(|_| Arc::new(Store::new(StoreConfig::default())))
            .collect();
        let clients: Vec<Arc<dyn KvClient>> = stores
            .iter()
            .map(|s| Arc::new(LocalClient::new(Arc::clone(s))) as Arc<dyn KvClient>)
            .collect();
        let p = ServerPool::with_replication(clients, DistributorKind::default(), 2);
        p.set(b"k", Bytes::from_static(b"v")).unwrap();
        let holders = stores.iter().filter(|s| s.contains(b"k")).count();
        assert_eq!(holders, 2);
        let expected: Vec<usize> = p.servers_for(b"k").map(|s| s.0).collect();
        for &i in &expected {
            assert!(stores[i].contains(b"k"));
        }
    }

    #[test]
    fn replicated_reads_survive_a_dead_primary() {
        use memfs_memkv::FailableClient;
        let failables: Vec<Arc<FailableClient<LocalClient>>> = (0..3)
            .map(|_| {
                Arc::new(FailableClient::new(LocalClient::new(Arc::new(Store::new(
                    StoreConfig::default(),
                )))))
            })
            .collect();
        let clients: Vec<Arc<dyn KvClient>> = failables
            .iter()
            .map(|f| Arc::clone(f) as Arc<dyn KvClient>)
            .collect();
        let p = ServerPool::with_replication(clients, DistributorKind::default(), 2);
        p.set(b"k", Bytes::from_static(b"survives")).unwrap();
        // Take the primary down: reads fall back to the follower.
        let primary = p.servers_for(b"k").next().unwrap();
        failables[primary.0].set_down(true);
        assert_eq!(p.get(b"k").unwrap().as_ref(), b"survives");
        assert!(p.contains(b"k"));
        // With the follower down too, the read fails loudly.
        let follower = p.servers_for(b"k").nth(1).unwrap();
        failables[follower.0].set_down(true);
        assert!(p.get(b"k").is_err());
    }

    #[test]
    fn replication_costs_capacity_as_the_paper_predicts() {
        // "the total storage capacity of MemFS would be decreased n times"
        let total_bytes = |r: usize| -> u64 {
            let stores: Vec<Arc<Store>> = (0..4)
                .map(|_| Arc::new(Store::new(StoreConfig::default())))
                .collect();
            let clients: Vec<Arc<dyn KvClient>> = stores
                .iter()
                .map(|s| Arc::new(LocalClient::new(Arc::clone(s))) as Arc<dyn KvClient>)
                .collect();
            let p = ServerPool::with_replication(clients, DistributorKind::default(), r);
            for i in 0..32 {
                p.set(format!("k{i}").as_bytes(), Bytes::from(vec![0u8; 1000]))
                    .unwrap();
            }
            stores.iter().map(|s| s.bytes_used()).sum()
        };
        let single = total_bytes(1);
        let double = total_bytes(2);
        assert!(
            (double as f64 / single as f64 - 2.0).abs() < 0.05,
            "2x replication should store ~2x: {single} -> {double}"
        );
    }
}
