//! The server pool: the Libmemcached role (paper §3.1.2).
//!
//! Holds one [`KvClient`] per storage server plus a [`Distributor`]; every
//! operation hashes its key to pick the server. All MemFS mounts with the
//! same server list and distributor agree on placement — that is what lets
//! any compute node read any file without coordination.
//!
//! Batched operations fan their per-server batches out **concurrently**
//! through a dispatcher thread pool (paper §3.2.2: symmetrical striping
//! means every file operation should drive all N servers at once, using
//! the full bisection bandwidth). A `get_many` window therefore costs
//! `max(server RTT)`, not `sum(server RTTs)`.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

use bytes::Bytes;
use memfs_hashring::{group_by_server, Distributor, KetamaRing, ModuloRing, ServerId};
use memfs_memkv::error::KvResult;
use memfs_memkv::{Deferred, KvClient, KvError, ReactorStatsSnapshot};

use crate::config::DistributorKind;
use crate::error::{MemFsError, MemFsResult};
use crate::threadpool::IoEngine;

/// One server's share of a keyed batch: the original key indices paired
/// with the keys themselves, kept together through the submit window so
/// completions can write results back in input order.
type KeyedBatch = (Vec<usize>, Vec<Bytes>);

/// Per-server I/O counters, updated by every batched dispatch.
///
/// `in_flight` is a live gauge (batches currently on the wire to that
/// server); `max_in_flight` is its high-water mark. With symmetrical
/// striping working as the paper claims, a fan-out over N servers should
/// drive `max_in_flight` to 1 on *every* server at once rather than
/// serially — that is what makes the symmetry observable.
#[derive(Debug, Default)]
struct ServerIo {
    in_flight: AtomicUsize,
    max_in_flight: AtomicUsize,
    batches: AtomicU64,
    keys: AtomicU64,
    fallbacks: AtomicU64,
}

impl ServerIo {
    /// Count a batch of `nkeys` as in flight until the guard drops.
    fn track(&self, nkeys: usize) -> InFlightGuard<'_> {
        let now = self.in_flight.fetch_add(1, Ordering::SeqCst) + 1;
        self.max_in_flight.fetch_max(now, Ordering::SeqCst);
        self.batches.fetch_add(1, Ordering::SeqCst);
        self.keys.fetch_add(nkeys as u64, Ordering::SeqCst);
        InFlightGuard(self)
    }

    fn bump_fallback(&self) {
        self.fallbacks.fetch_add(1, Ordering::SeqCst);
    }
}

struct InFlightGuard<'a>(&'a ServerIo);

impl Drop for InFlightGuard<'_> {
    fn drop(&mut self) {
        self.0.in_flight.fetch_sub(1, Ordering::SeqCst);
    }
}

/// Point-in-time copy of one server's I/O counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServerIoSnapshot {
    /// Batches on the wire to this server right now.
    pub in_flight: usize,
    /// High-water mark of `in_flight`.
    pub max_in_flight: usize,
    /// Total batched calls dispatched to this server.
    pub batches: u64,
    /// Total keys carried by those batches.
    pub keys: u64,
    /// Keys that needed the replica-chain fallback.
    pub fallbacks: u64,
}

/// Per-server dispatch accounting for the whole pool. Transport-level
/// reactor counters (epoll wakeups, completion batching, timeouts,
/// reconnects) live one layer down — [`ServerPool::reactor_stats`]
/// aggregates them per distinct reactor.
#[derive(Debug, Default)]
pub struct PoolStats {
    servers: Vec<ServerIo>,
}

impl PoolStats {
    fn new(n: usize) -> Self {
        PoolStats {
            servers: (0..n).map(|_| ServerIo::default()).collect(),
        }
    }

    /// Snapshot every server's counters, indexed by [`ServerId`].
    pub fn snapshot(&self) -> Vec<ServerIoSnapshot> {
        self.servers
            .iter()
            .map(|s| ServerIoSnapshot {
                in_flight: s.in_flight.load(Ordering::SeqCst),
                max_in_flight: s.max_in_flight.load(Ordering::SeqCst),
                batches: s.batches.load(Ordering::SeqCst),
                keys: s.keys.load(Ordering::SeqCst),
                fallbacks: s.fallbacks.load(Ordering::SeqCst),
            })
            .collect()
    }
}

/// The shareable routing state: everything a dispatcher job needs, behind
/// one `Arc` so per-server closures are `'static` without cloning clients
/// or the ring.
struct PoolCore {
    clients: Vec<Arc<dyn KvClient>>,
    dist: Arc<dyn Distributor>,
    replication: usize,
    stats: PoolStats,
}

impl PoolCore {
    fn servers_for<'a>(&'a self, key: &[u8]) -> impl Iterator<Item = ServerId> + 'a {
        let primary = self.dist.server_for(key).0;
        let n = self.clients.len();
        (0..self.replication).map(move |i| ServerId((primary + i) % n))
    }

    fn client(&self, id: ServerId) -> &Arc<dyn KvClient> {
        &self.clients[id.0]
    }

    fn get(&self, key: &[u8]) -> MemFsResult<Bytes> {
        let mut last_err: Option<KvError> = None;
        for id in self.servers_for(key) {
            match self.client(id).get(key) {
                Ok(v) => return Ok(v),
                Err(e @ KvError::NotFound) => return Err(e.into()),
                Err(e) => last_err = Some(e),
            }
        }
        Err(last_err.expect("replication >= 1").into())
    }

    /// Replica-chain fallback for one key after server `failed` erred with
    /// `err`. The failed server is **skipped** — retrying it per key would
    /// multiply its failure latency by the batch size (fatal when the
    /// failure is a response timeout). Without surviving replicas the
    /// original error is surfaced.
    fn get_fallback(&self, key: &[u8], failed: usize, err: &KvError) -> MemFsResult<Bytes> {
        let mut last_err: Option<KvError> = None;
        for id in self.servers_for(key) {
            if id.0 == failed {
                continue;
            }
            match self.client(id).get(key) {
                Ok(v) => return Ok(v),
                Err(e @ KvError::NotFound) => return Err(e.into()),
                Err(e) => last_err = Some(e),
            }
        }
        Err(last_err.unwrap_or_else(|| err.duplicate()).into())
    }

    /// One server's share of a `get_many`: a single batched multi-get,
    /// with per-key replica-chain fallback on transport failure. Runs on
    /// dispatcher workers; must never re-enter a pool-level batch op.
    fn fetch_group(&self, server: usize, batch: &[Bytes]) -> Vec<MemFsResult<Bytes>> {
        let io = &self.stats.servers[server];
        let _in_flight = io.track(batch.len());
        let result = self.clients[server].get_many(batch);
        self.finish_fetch(server, batch, result)
    }

    /// Resolve one server's multi-get replies against the replica chain —
    /// the completion half shared by the engine path ([`fetch_group`]
    /// above) and the evented submit-window path.
    fn finish_fetch(
        &self,
        server: usize,
        batch: &[Bytes],
        result: KvResult<Vec<KvResult<Bytes>>>,
    ) -> Vec<MemFsResult<Bytes>> {
        let io = &self.stats.servers[server];
        match result {
            Ok(results) => batch
                .iter()
                .zip(results)
                .map(|(key, r)| match r {
                    Ok(v) => Ok(v),
                    Err(KvError::NotFound) => Err(KvError::NotFound.into()),
                    // Per-key transport/server error: replica chain.
                    Err(e) => {
                        io.bump_fallback();
                        self.get_fallback(key, server, &e)
                    }
                })
                .collect(),
            // Whole-batch transport failure: fall back key by key so
            // replicas (if any) still serve this server's share while the
            // other servers' batches proceed untouched.
            Err(e) => batch
                .iter()
                .map(|key| {
                    io.bump_fallback();
                    self.get_fallback(key, server, &e)
                })
                .collect(),
        }
    }

    /// One server's share of a `set_many`: a single pipelined batch,
    /// reduced to the first per-item error (if any).
    fn store_group(&self, server: usize, batch: &[(Bytes, Bytes)]) -> Option<MemFsError> {
        let io = &self.stats.servers[server];
        let _in_flight = io.track(batch.len());
        let result = self.clients[server].set_many(batch);
        finish_store(result)
    }

    /// One server's share of a `delete_many`: a single pipelined batch of
    /// deletes. (The transport already replays idempotent batches once on
    /// a dropped connection; a batch that still fails maps its error onto
    /// every key so the cross-replica aggregate can absorb it.)
    fn erase_group(&self, server: usize, batch: &[Bytes]) -> Vec<Erase> {
        let io = &self.stats.servers[server];
        let _in_flight = io.track(batch.len());
        let result = self.clients[server].delete_many(batch);
        finish_erase(batch.len(), result)
    }
}

/// Reduce one server's `set_many` replies to the first error, if any.
fn finish_store(result: KvResult<Vec<KvResult<()>>>) -> Option<MemFsError> {
    match result {
        Ok(results) => results.into_iter().find_map(|r| r.err()).map(Into::into),
        Err(e) => Some(e.into()),
    }
}

/// Map one server's `delete_many` replies to per-key [`Erase`] outcomes.
fn finish_erase(batch_len: usize, result: KvResult<Vec<KvResult<()>>>) -> Vec<Erase> {
    let map = |r: Result<(), KvError>| match r {
        Ok(()) => Erase::Deleted,
        Err(KvError::NotFound) => Erase::Missing,
        Err(e) => Erase::Failed(e.into()),
    };
    match result {
        Ok(results) => results.into_iter().map(map).collect(),
        Err(e) => (0..batch_len)
            .map(|_| Erase::Failed(e.duplicate().into()))
            .collect(),
    }
}

/// Per-replica outcome of deleting one key on one server.
enum Erase {
    Deleted,
    Missing,
    Failed(MemFsError),
}

/// Cross-replica aggregate for one `delete_many` input key.
#[derive(Default)]
struct EraseAgg {
    deleted: bool,
    missing: bool,
    err: Option<MemFsError>,
}

impl EraseAgg {
    fn merge(&mut self, outcome: Erase) {
        match outcome {
            Erase::Deleted => self.deleted = true,
            Erase::Missing => self.missing = true,
            Erase::Failed(e) => self.err = Some(e),
        }
    }

    /// Same semantics as [`ServerPool::delete_quiet`], per key: any replica
    /// deleting wins, a clean miss everywhere is `Ok(false)`, and only a
    /// key whose every replica erred is an error.
    fn resolve(self) -> MemFsResult<bool> {
        if self.deleted {
            Ok(true)
        } else if self.missing {
            Ok(false)
        } else {
            Err(self.err.expect("replication >= 1"))
        }
    }
}

/// A hash-routed pool of storage servers with optional n-way replication
/// and a concurrent per-server dispatcher for batched operations.
///
/// Replication is the fault-tolerance mechanism the paper sketches but
/// defers ("assuming the replication factor is n, then the total storage
/// capacity of MemFS would be decreased n times and n times more data will
/// flow through the network", §3.2.5). With `replication = r`, each key is
/// written to `r` consecutive servers on the ring (primary + followers);
/// reads try the primary first and fall back to the followers, so the
/// system tolerates `r - 1` server failures. The capacity/traffic cost the
/// paper predicts is measured by the `replication` bench.
///
/// Caveat (documented, matching the paper's decision not to productize
/// this): replicated `append` applies to each copy in turn, so two
/// *concurrent* appends to one key may order differently across replicas.
/// MemFS' directory logs are order-insensitive sets, so folding still
/// converges; applications needing ordered replicated appends should keep
/// `replication = 1`.
pub struct ServerPool {
    core: Arc<PoolCore>,
    /// Per-server fan-out engine; `None` means sequential dispatch
    /// (`io_parallelism` resolved to 1, or a single server). Usually the
    /// mount's shared [`IoEngine`] (see [`ServerPool::with_engine`]), so
    /// fan-out, prefetch, and drains all ride one bounded worker set.
    /// Unused for batched fan-out when every client has an evented submit
    /// path (see `submit_capable`).
    engine: Option<Arc<IoEngine>>,
    /// Every client has a true split submit/completion path
    /// ([`KvClient::supports_submit`]). When true, batched operations fan
    /// out through a submit window on the caller's thread — requests stay
    /// in flight on every server concurrently while occupying **one**
    /// thread — instead of parking one engine worker per server.
    submit_capable: bool,
    /// In-flight batch budget for the submit-window path, resolved from
    /// `io_parallelism` (`0` → unlimited). Fan-out width is governed by
    /// this budget, not by worker count.
    budget: usize,
}

impl ServerPool {
    /// Build a pool over `clients` with the configured distributor, no
    /// replication, and the default fan-out (one worker per server).
    ///
    /// # Panics
    /// Panics on an empty client list.
    pub fn new(clients: Vec<Arc<dyn KvClient>>, kind: DistributorKind) -> Self {
        Self::with_options(clients, kind, 1, 0)
    }

    /// Build a pool that writes each key to `replication` consecutive
    /// servers, with the default fan-out.
    ///
    /// # Panics
    /// Panics on an empty client list, `replication == 0`, or a
    /// replication factor exceeding the server count.
    pub fn with_replication(
        clients: Vec<Arc<dyn KvClient>>,
        kind: DistributorKind,
        replication: usize,
    ) -> Self {
        Self::with_options(clients, kind, replication, 0)
    }

    /// Build a pool with every knob explicit. `io_parallelism` caps how
    /// many per-server batches a fan-out keeps on the wire at once: `0`
    /// means unlimited (the paper's full-fan-out shape), `1` forces
    /// sequential per-server dispatch (the PR 1 behaviour, useful as a
    /// bench baseline).
    ///
    /// For evented clients the cap is an in-flight submit budget on the
    /// caller's thread; for blocking clients it is a dispatcher worker
    /// count (resolved to one worker per server when `0`).
    ///
    /// # Panics
    /// Panics on an empty client list or an invalid replication factor.
    pub fn with_options(
        clients: Vec<Arc<dyn KvClient>>,
        kind: DistributorKind,
        replication: usize,
        io_parallelism: usize,
    ) -> Self {
        let workers = if io_parallelism == 0 {
            clients.len()
        } else {
            io_parallelism
        };
        // One server (or parallelism forced to 1) has nothing to overlap,
        // and evented clients overlap without workers: in both cases skip
        // the worker threads entirely.
        let submit_capable = clients.iter().all(|c| c.supports_submit());
        let engine = (!submit_capable && workers > 1 && clients.len() > 1)
            .then(|| Arc::new(IoEngine::new(workers, "pool-io")));
        Self::with_engine(clients, kind, replication, engine, io_parallelism)
    }

    /// Build a pool that dispatches its per-server batches on an existing
    /// shared [`IoEngine`] instead of spawning its own workers — the
    /// per-mount shape: one engine serves the pool fan-out *and* every
    /// open file's prefetch and drain jobs. `None` means sequential
    /// inline dispatch. `io_parallelism` is the in-flight batch budget
    /// used instead of the engine when every client is evented (`0` =
    /// unlimited).
    ///
    /// # Panics
    /// Panics on an empty client list or an invalid replication factor.
    pub fn with_engine(
        clients: Vec<Arc<dyn KvClient>>,
        kind: DistributorKind,
        replication: usize,
        engine: Option<Arc<IoEngine>>,
        io_parallelism: usize,
    ) -> Self {
        assert!(!clients.is_empty(), "server pool needs at least one server");
        assert!(
            replication >= 1 && replication <= clients.len(),
            "replication factor {replication} invalid for {} servers",
            clients.len()
        );
        let dist: Arc<dyn Distributor> = match kind {
            DistributorKind::Modulo(scheme) => Arc::new(ModuloRing::new(clients.len(), scheme)),
            DistributorKind::Ketama { points_per_server } => {
                Arc::new(KetamaRing::with_n_servers(clients.len(), points_per_server))
            }
        };
        let stats = PoolStats::new(clients.len());
        let submit_capable = clients.len() > 1 && clients.iter().all(|c| c.supports_submit());
        let budget = if io_parallelism == 0 {
            usize::MAX
        } else {
            io_parallelism
        };
        let core = Arc::new(PoolCore {
            clients,
            dist,
            replication,
            stats,
        });
        ServerPool {
            core,
            engine,
            submit_capable,
            budget,
        }
    }

    /// The engine this pool dispatches on, if fan-out is enabled.
    pub fn engine(&self) -> Option<&Arc<IoEngine>> {
        self.engine.as_ref()
    }

    /// The configured replication factor.
    pub fn replication(&self) -> usize {
        self.core.replication
    }

    /// Effective dispatcher width: how many per-server batches can be on
    /// the wire simultaneously. Evented pools report the in-flight submit
    /// budget (capped at the server count — there is at most one batch
    /// per server in a fan-out); engine pools report the worker count.
    pub fn io_parallelism(&self) -> usize {
        if self.submit_capable && self.budget > 1 {
            self.budget.min(self.n_servers())
        } else {
            self.engine.as_ref().map_or(1, |e| e.size())
        }
    }

    /// Per-server dispatch counters.
    pub fn stats(&self) -> &PoolStats {
        &self.core.stats
    }

    /// Transport reactor counters, one snapshot per distinct reactor
    /// (clients sharing one reactor — the per-mount deployment shape —
    /// are deduped by [`ReactorStatsSnapshot::reactor_id`], so a shared
    /// reactor reports once). Empty for in-process transports. Exposes
    /// epoll wakeups, completions and the cross-server batching factor,
    /// registered connections, timeouts fired, and reconnect attempts.
    pub fn reactor_stats(&self) -> Vec<ReactorStatsSnapshot> {
        let mut seen = std::collections::HashSet::new();
        self.core
            .clients
            .iter()
            .filter_map(|c| c.reactor_stats())
            .filter(|s| seen.insert(s.reactor_id))
            .collect()
    }

    /// The servers holding `key`, primary first.
    pub fn servers_for(&self, key: &[u8]) -> impl Iterator<Item = ServerId> + '_ {
        self.core.servers_for(key)
    }

    /// Number of servers.
    pub fn n_servers(&self) -> usize {
        self.core.clients.len()
    }

    /// The server a key routes to (exposed for balance diagnostics and the
    /// simulation models, which share this placement logic).
    pub fn server_for(&self, key: &[u8]) -> ServerId {
        self.core.dist.server_for(key)
    }

    /// The client for a given server id.
    pub fn client(&self, id: ServerId) -> &Arc<dyn KvClient> {
        self.core.client(id)
    }

    /// Routed `set`: written to every replica; all must accept.
    pub fn set(&self, key: &[u8], value: Bytes) -> MemFsResult<()> {
        for id in self.core.servers_for(key) {
            self.core.client(id).set(key, value.clone())?;
        }
        Ok(())
    }

    /// Routed `add`: the primary arbitrates existence (its atomic `add` is
    /// the write-once gate); followers receive plain `set`s.
    pub fn add(&self, key: &[u8], value: Bytes) -> MemFsResult<()> {
        let mut servers = self.core.servers_for(key);
        let primary = servers.next().expect("replication >= 1");
        self.core.client(primary).add(key, value.clone())?;
        for id in servers {
            self.core.client(id).set(key, value.clone())?;
        }
        Ok(())
    }

    /// Routed `get`: primary first, surviving replicas on failure. Only
    /// transport/server errors trigger fallback — `NotFound` is
    /// authoritative from any live replica.
    pub fn get(&self, key: &[u8]) -> MemFsResult<Bytes> {
        self.core.get(key)
    }

    /// Routed `get` that maps a missing key to `None`.
    pub fn try_get(&self, key: &[u8]) -> MemFsResult<Option<Bytes>> {
        match self.core.get(key) {
            Ok(v) => Ok(Some(v)),
            Err(MemFsError::Storage(KvError::NotFound)) => Ok(None),
            Err(e) => Err(e),
        }
    }

    /// Batched routed `get`: keys are grouped by primary server, each
    /// group travels as **one** [`KvClient::get_many`] call, and the
    /// groups go out **concurrently** through the dispatcher — a prefetch
    /// window of `w` stripes over `n` servers costs one parallel round
    /// trip (`max` of the per-server times), not `n` sequential ones.
    /// Results come back in input order.
    ///
    /// Fallback mirrors [`ServerPool::get`]: a transport failure (of the
    /// whole batch or a single key) retries that key through the replica
    /// chain *inside that server's job*, so a dead server degrades only
    /// its own keys while the healthy servers' batches proceed.
    pub fn get_many(&self, keys: &[Bytes]) -> Vec<MemFsResult<Bytes>> {
        let mut work: Vec<(usize, Vec<usize>)> = group_by_server(self.core.dist.as_ref(), keys)
            .into_iter()
            .enumerate()
            .filter(|(_, group)| !group.is_empty())
            .collect();
        let mut out: Vec<Option<MemFsResult<Bytes>>> = (0..keys.len()).map(|_| None).collect();
        if self.submit_capable && self.budget > 1 && work.len() > 1 {
            // Evented path: every client supports split submit/completion,
            // so the window keeps up to `budget` servers busy with zero
            // engine workers.
            let work: Vec<(usize, KeyedBatch)> = work
                .into_iter()
                .map(|(server, group)| {
                    let batch: Vec<Bytes> = group.iter().map(|&i| keys[i].clone()).collect();
                    (server, (group, batch))
                })
                .collect();
            self.drive(
                work,
                |(_, batch)| batch.len(),
                |server, (_, batch)| self.core.clients[server].start_get_many(batch),
                |server, (group, batch), result| {
                    for (&i, r) in group
                        .iter()
                        .zip(self.core.finish_fetch(server, &batch, result))
                    {
                        out[i] = Some(r);
                    }
                },
            );
            return out
                .into_iter()
                .map(|r| r.expect("every key grouped exactly once"))
                .collect();
        }
        match &self.engine {
            Some(engine) if work.len() > 1 => {
                let shared = Arc::new(Mutex::new(out));
                // The caller's thread is a worker too: it runs the last
                // group itself instead of idling on the TaskGroup.
                let (last_server, last_group) = work.pop().expect("len > 1");
                let tg = engine.group(work.len());
                for (server, group) in work {
                    let batch: Vec<Bytes> = group.iter().map(|&i| keys[i].clone()).collect();
                    let core = Arc::clone(&self.core);
                    let shared = Arc::clone(&shared);
                    let tg = Arc::clone(&tg);
                    engine.execute(move || {
                        let results = core.fetch_group(server, &batch);
                        let mut out = shared.lock().expect("fan-out results lock");
                        for (&i, r) in group.iter().zip(results) {
                            out[i] = Some(r);
                        }
                        drop(out);
                        tg.done();
                    });
                }
                let batch: Vec<Bytes> = last_group.iter().map(|&i| keys[i].clone()).collect();
                let results = self.core.fetch_group(last_server, &batch);
                {
                    let mut out = shared.lock().expect("fan-out results lock");
                    for (&i, r) in last_group.iter().zip(results) {
                        out[i] = Some(r);
                    }
                }
                tg.wait();
                out = std::mem::take(&mut *shared.lock().expect("fan-out results lock"));
            }
            _ => {
                for (server, group) in work {
                    let batch: Vec<Bytes> = group.iter().map(|&i| keys[i].clone()).collect();
                    for (&i, r) in group.iter().zip(self.core.fetch_group(server, &batch)) {
                        out[i] = Some(r);
                    }
                }
            }
        }
        out.into_iter()
            .map(|r| r.expect("every key grouped exactly once"))
            .collect()
    }

    /// Batched routed `set`: items are grouped per replica-holding server
    /// and each group travels as one pipelined [`KvClient::set_many`]
    /// call, all groups dispatched **concurrently** (replica batches to
    /// different servers overlap too). Every batch is always attempted;
    /// the error returned is the first per-item failure in server order,
    /// independent of completion order, matching `set`'s
    /// all-replicas-must-accept contract deterministically.
    pub fn set_many(&self, items: &[(Bytes, Bytes)]) -> MemFsResult<()> {
        // With replication, each item lands on `r` consecutive servers —
        // build one batch per *target* server across all replicas.
        let mut batches: Vec<Vec<(Bytes, Bytes)>> = vec![Vec::new(); self.core.clients.len()];
        for (key, value) in items {
            for id in self.core.servers_for(key) {
                batches[id.0].push((key.clone(), value.clone()));
            }
        }
        let mut work: Vec<(usize, Vec<(Bytes, Bytes)>)> = batches
            .into_iter()
            .enumerate()
            .filter(|(_, batch)| !batch.is_empty())
            .collect();
        let mut errs: Vec<Option<MemFsError>> =
            (0..self.core.clients.len()).map(|_| None).collect();
        if self.submit_capable && self.budget > 1 && work.len() > 1 {
            self.drive(
                work,
                |batch: &Vec<(Bytes, Bytes)>| batch.len(),
                |server, batch| self.core.clients[server].start_set_many(batch),
                |server, _, result| errs[server] = finish_store(result),
            );
            return match errs.into_iter().flatten().next() {
                None => Ok(()),
                Some(e) => Err(e),
            };
        }
        match &self.engine {
            Some(engine) if work.len() > 1 => {
                let shared = Arc::new(Mutex::new(errs));
                let (last_server, last_batch) = work.pop().expect("len > 1");
                let tg = engine.group(work.len());
                for (server, batch) in work {
                    let core = Arc::clone(&self.core);
                    let shared = Arc::clone(&shared);
                    let tg = Arc::clone(&tg);
                    engine.execute(move || {
                        let err = core.store_group(server, &batch);
                        shared.lock().expect("fan-out errs lock")[server] = err;
                        tg.done();
                    });
                }
                let err = self.core.store_group(last_server, &last_batch);
                shared.lock().expect("fan-out errs lock")[last_server] = err;
                tg.wait();
                errs = std::mem::take(&mut *shared.lock().expect("fan-out errs lock"));
            }
            _ => {
                for (server, batch) in work {
                    errs[server] = self.core.store_group(server, &batch);
                }
            }
        }
        match errs.into_iter().flatten().next() {
            None => Ok(()),
            Some(e) => Err(e),
        }
    }

    /// Routed atomic `append`, applied to every replica (see the ordering
    /// caveat in the type docs).
    pub fn append(&self, key: &[u8], suffix: &[u8]) -> MemFsResult<()> {
        for id in self.core.servers_for(key) {
            self.core.client(id).append(key, suffix)?;
        }
        Ok(())
    }

    /// Routed `delete`; missing keys and dead replicas are ignored
    /// (idempotent cleanup).
    pub fn delete_quiet(&self, key: &[u8]) -> MemFsResult<()> {
        let mut last_err: Option<KvError> = None;
        let mut any_ok = false;
        for id in self.core.servers_for(key) {
            match self.core.client(id).delete(key) {
                Ok(()) | Err(KvError::NotFound) => any_ok = true,
                Err(e) => last_err = Some(e),
            }
        }
        if any_ok {
            Ok(())
        } else {
            Err(last_err.expect("replication >= 1").into())
        }
    }

    /// Batched routed `delete`: keys are grouped per replica-holding
    /// server, each group travels as one pipelined
    /// [`KvClient::delete_many`] call, and the groups go out concurrently
    /// through the engine — freeing a striped file costs one parallel
    /// round trip per chunk instead of one round trip per stripe.
    ///
    /// Per-key semantics match [`ServerPool::delete_quiet`]: `Ok(true)` if
    /// any replica deleted the key, `Ok(false)` if every live replica
    /// reported it missing, `Err` only if all replicas failed.
    pub fn delete_many(&self, keys: &[Bytes]) -> Vec<MemFsResult<bool>> {
        // One batch per *target* server across all replicas; each entry
        // remembers which input key it resolves (parallel index/key vecs).
        let mut batches: Vec<(Vec<usize>, Vec<Bytes>)> =
            vec![(Vec::new(), Vec::new()); self.core.clients.len()];
        for (i, key) in keys.iter().enumerate() {
            for id in self.core.servers_for(key) {
                batches[id.0].0.push(i);
                batches[id.0].1.push(key.clone());
            }
        }
        let mut work: Vec<(usize, Vec<usize>, Vec<Bytes>)> = batches
            .into_iter()
            .enumerate()
            .filter(|(_, (idx, _))| !idx.is_empty())
            .map(|(server, (idx, batch))| (server, idx, batch))
            .collect();
        let mut agg: Vec<EraseAgg> = (0..keys.len()).map(|_| EraseAgg::default()).collect();
        if self.submit_capable && self.budget > 1 && work.len() > 1 {
            let work: Vec<(usize, KeyedBatch)> = work
                .into_iter()
                .map(|(server, idx, batch)| (server, (idx, batch)))
                .collect();
            self.drive(
                work,
                |(_, batch)| batch.len(),
                |server, (_, batch)| self.core.clients[server].start_delete_many(batch),
                |_, (idx, batch), result| {
                    for (&i, o) in idx.iter().zip(finish_erase(batch.len(), result)) {
                        agg[i].merge(o);
                    }
                },
            );
            return agg.into_iter().map(EraseAgg::resolve).collect();
        }
        match &self.engine {
            Some(engine) if work.len() > 1 => {
                let shared = Arc::new(Mutex::new(agg));
                let (last_server, last_idx, last_batch) = work.pop().expect("len > 1");
                let tg = engine.group(work.len());
                for (server, idx, batch) in work {
                    let core = Arc::clone(&self.core);
                    let shared = Arc::clone(&shared);
                    let tg = Arc::clone(&tg);
                    engine.execute(move || {
                        let outcomes = core.erase_group(server, &batch);
                        let mut agg = shared.lock().expect("fan-out erase lock");
                        for (&i, o) in idx.iter().zip(outcomes) {
                            agg[i].merge(o);
                        }
                        drop(agg);
                        tg.done();
                    });
                }
                let outcomes = self.core.erase_group(last_server, &last_batch);
                {
                    let mut agg = shared.lock().expect("fan-out erase lock");
                    for (&i, o) in last_idx.iter().zip(outcomes) {
                        agg[i].merge(o);
                    }
                }
                tg.wait();
                agg = std::mem::take(&mut *shared.lock().expect("fan-out erase lock"));
            }
            _ => {
                for (server, idx, batch) in work {
                    for (&i, o) in idx.iter().zip(self.core.erase_group(server, &batch)) {
                        agg[i].merge(o);
                    }
                }
            }
        }
        agg.into_iter().map(EraseAgg::resolve).collect()
    }

    /// Whether a key exists on any live replica.
    pub fn contains(&self, key: &[u8]) -> bool {
        self.core
            .servers_for(key)
            .any(|id| self.core.client(id).contains(key))
    }

    /// Evented fan-out: submit per-server batches until `budget` are in
    /// flight, then settle completed ones as slots are needed, refilling
    /// the window as each frees. Submission is non-blocking (the shared
    /// reactor owns the sockets), so the whole window is on the wire
    /// concurrently while this — the only caller-side thread the fan-out
    /// occupies — waits on one completion at a time. Completions are
    /// settled in *arrival* order ([`Deferred::is_ready`]): the shared
    /// reactor delivers them in cross-server batches as they land
    /// anywhere in the cluster, so a slow server never blocks the window
    /// behind its submission position — only the slot it actually holds.
    fn drive<B, T>(
        &self,
        work: Vec<(usize, B)>,
        nkeys: impl Fn(&B) -> usize,
        start: impl Fn(usize, &B) -> Deferred<T>,
        mut finish: impl FnMut(usize, B, KvResult<Vec<KvResult<T>>>),
    ) {
        let mut window: VecDeque<(usize, B, Deferred<T>, InFlightGuard<'_>)> = VecDeque::new();
        let mut settle_one = |window: &mut VecDeque<(usize, B, Deferred<T>, InFlightGuard<'_>)>| {
            // Prefer a batch whose completion already landed; block on
            // the oldest only when none is ready yet.
            let pos = window
                .iter()
                .position(|(_, _, deferred, _)| deferred.is_ready())
                .unwrap_or(0);
            let (server, batch, deferred, guard) = window.remove(pos).expect("window filled");
            let result = deferred.wait();
            drop(guard);
            finish(server, batch, result);
        };
        for (server, batch) in work {
            while window.len() >= self.budget {
                settle_one(&mut window);
            }
            let guard = self.core.stats.servers[server].track(nkeys(&batch));
            let deferred = start(server, &batch);
            window.push_back((server, batch, deferred, guard));
        }
        while !window.is_empty() {
            settle_one(&mut window);
        }
    }
}

impl std::fmt::Debug for ServerPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServerPool")
            .field("n_servers", &self.core.clients.len())
            .field("io_parallelism", &self.io_parallelism())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use memfs_memkv::{LocalClient, Store, StoreConfig};

    fn pool(n: usize) -> (ServerPool, Vec<Arc<Store>>) {
        let stores: Vec<Arc<Store>> = (0..n)
            .map(|_| Arc::new(Store::new(StoreConfig::default())))
            .collect();
        let clients: Vec<Arc<dyn KvClient>> = stores
            .iter()
            .map(|s| Arc::new(LocalClient::new(Arc::clone(s))) as Arc<dyn KvClient>)
            .collect();
        (ServerPool::new(clients, DistributorKind::default()), stores)
    }

    #[test]
    fn routed_round_trip() {
        let (p, _) = pool(4);
        p.set(b"k1", Bytes::from_static(b"v1")).unwrap();
        assert_eq!(p.get(b"k1").unwrap().as_ref(), b"v1");
        assert!(p.contains(b"k1"));
        assert_eq!(p.try_get(b"missing").unwrap(), None);
    }

    #[test]
    fn keys_spread_across_servers() {
        let (p, stores) = pool(4);
        for i in 0..200 {
            let key = format!("s:/file{i}#0");
            p.set(key.as_bytes(), Bytes::from_static(b"x")).unwrap();
        }
        for (i, s) in stores.iter().enumerate() {
            assert!(
                s.item_count() > 20,
                "server {i} got {} items",
                s.item_count()
            );
        }
    }

    #[test]
    fn get_many_issues_one_batch_per_server() {
        let (p, stores) = pool(4);
        let keys: Vec<Bytes> = (0..64).map(|i| Bytes::from(format!("s:/f{i}#0"))).collect();
        let items: Vec<(Bytes, Bytes)> = keys
            .iter()
            .map(|k| {
                (
                    k.clone(),
                    Bytes::from(format!("v{}", String::from_utf8_lossy(k))),
                )
            })
            .collect();
        p.set_many(&items).unwrap();
        let out = p.get_many(&keys);
        for (k, r) in keys.iter().zip(out) {
            assert_eq!(
                r.unwrap(),
                Bytes::from(format!("v{}", String::from_utf8_lossy(k)))
            );
        }
        // Each server that owns any of the keys saw exactly ONE batched
        // multi-get — the acceptance criterion for windowed prefetching.
        for s in &stores {
            if s.item_count() > 0 {
                assert_eq!(s.stats().snapshot().mget_ops, 1);
            }
        }
    }

    #[test]
    fn get_many_misses_are_per_key() {
        let (p, _) = pool(3);
        p.set(b"present", Bytes::from_static(b"yes")).unwrap();
        let out = p.get_many(&[
            Bytes::from_static(b"present"),
            Bytes::from_static(b"absent"),
        ]);
        assert_eq!(out[0].as_ref().unwrap().as_ref(), b"yes");
        assert!(matches!(
            out[1],
            Err(MemFsError::Storage(KvError::NotFound))
        ));
    }

    #[test]
    fn get_many_falls_back_to_replicas_when_primary_dies() {
        use memfs_memkv::{FailableClient, LocalClient, Store, StoreConfig};
        let failables: Vec<Arc<FailableClient<LocalClient>>> = (0..3)
            .map(|_| {
                Arc::new(FailableClient::new(LocalClient::new(Arc::new(Store::new(
                    StoreConfig::default(),
                )))))
            })
            .collect();
        let clients: Vec<Arc<dyn KvClient>> = failables
            .iter()
            .map(|f| Arc::clone(f) as Arc<dyn KvClient>)
            .collect();
        let p = ServerPool::with_replication(clients, DistributorKind::default(), 2);
        let keys: Vec<Bytes> = (0..24).map(|i| Bytes::from(format!("k{i}"))).collect();
        for k in &keys {
            p.set(k, Bytes::from_static(b"replicated")).unwrap();
        }
        // Kill one server: every key it owned as primary must still be
        // served by its follower through the batched path.
        failables[0].set_down(true);
        for r in p.get_many(&keys) {
            assert_eq!(r.unwrap().as_ref(), b"replicated");
        }
    }

    #[test]
    fn set_many_respects_replication() {
        use memfs_memkv::{LocalClient, Store, StoreConfig};
        let stores: Vec<Arc<Store>> = (0..4)
            .map(|_| Arc::new(Store::new(StoreConfig::default())))
            .collect();
        let clients: Vec<Arc<dyn KvClient>> = stores
            .iter()
            .map(|s| Arc::new(LocalClient::new(Arc::clone(s))) as Arc<dyn KvClient>)
            .collect();
        let p = ServerPool::with_replication(clients, DistributorKind::default(), 2);
        let items: Vec<(Bytes, Bytes)> = (0..16)
            .map(|i| (Bytes::from(format!("k{i}")), Bytes::from_static(b"x")))
            .collect();
        p.set_many(&items).unwrap();
        let copies: u64 = stores.iter().map(|s| s.item_count()).sum();
        assert_eq!(copies, 32, "16 items x 2 replicas");
        for (k, _) in &items {
            assert_eq!(p.get(k).unwrap().as_ref(), b"x");
        }
    }

    #[test]
    fn placement_is_stable_across_pool_instances() {
        let (p1, _) = pool(8);
        let (p2, _) = pool(8);
        for i in 0..100 {
            let key = format!("s:/f{i}#3");
            assert_eq!(p1.server_for(key.as_bytes()), p2.server_for(key.as_bytes()));
        }
    }

    #[test]
    fn delete_many_reports_per_key_outcomes() {
        let (p, stores) = pool(4);
        let keys: Vec<Bytes> = (0..32).map(|i| Bytes::from(format!("s:/f{i}#0"))).collect();
        for k in &keys {
            p.set(k, Bytes::from_static(b"v")).unwrap();
        }
        // First pass deletes everything; second pass finds nothing.
        for r in p.delete_many(&keys) {
            assert!(r.unwrap());
        }
        for r in p.delete_many(&keys) {
            assert!(!r.unwrap());
        }
        assert!(stores.iter().all(|s| s.item_count() == 0));
    }

    #[test]
    fn delete_many_mixed_hits_and_misses() {
        let (p, _) = pool(3);
        p.set(b"present", Bytes::from_static(b"v")).unwrap();
        let out = p.delete_many(&[
            Bytes::from_static(b"present"),
            Bytes::from_static(b"absent"),
        ]);
        assert!(out[0].as_ref().unwrap());
        assert!(!out[1].as_ref().unwrap());
    }

    #[test]
    fn delete_many_survives_a_dead_replica() {
        use memfs_memkv::FailableClient;
        let failables: Vec<Arc<FailableClient<LocalClient>>> = (0..3)
            .map(|_| {
                Arc::new(FailableClient::new(LocalClient::new(Arc::new(Store::new(
                    StoreConfig::default(),
                )))))
            })
            .collect();
        let clients: Vec<Arc<dyn KvClient>> = failables
            .iter()
            .map(|f| Arc::clone(f) as Arc<dyn KvClient>)
            .collect();
        let p = ServerPool::with_replication(clients, DistributorKind::default(), 2);
        let keys: Vec<Bytes> = (0..24).map(|i| Bytes::from(format!("k{i}"))).collect();
        for k in &keys {
            p.set(k, Bytes::from_static(b"v")).unwrap();
        }
        failables[0].set_down(true);
        // Every key still has a live replica: the delete succeeds.
        for r in p.delete_many(&keys) {
            assert!(r.unwrap());
        }
    }

    #[test]
    fn delete_quiet_is_idempotent() {
        let (p, _) = pool(2);
        p.set(b"k", Bytes::from_static(b"v")).unwrap();
        p.delete_quiet(b"k").unwrap();
        p.delete_quiet(b"k").unwrap();
        assert!(!p.contains(b"k"));
    }

    #[test]
    fn ketama_pool_works() {
        let stores: Vec<Arc<dyn KvClient>> = (0..4)
            .map(|_| {
                Arc::new(LocalClient::new(Arc::new(Store::new(
                    StoreConfig::default(),
                )))) as Arc<dyn KvClient>
            })
            .collect();
        let p = ServerPool::new(
            stores,
            DistributorKind::Ketama {
                points_per_server: 64,
            },
        );
        p.set(b"k", Bytes::from_static(b"v")).unwrap();
        assert_eq!(p.get(b"k").unwrap().as_ref(), b"v");
    }

    #[test]
    #[should_panic(expected = "at least one server")]
    fn empty_pool_panics() {
        ServerPool::new(Vec::new(), DistributorKind::default());
    }

    #[test]
    #[should_panic(expected = "replication factor")]
    fn oversized_replication_panics() {
        let (p, _) = pool(2);
        drop(p);
        let stores: Vec<Arc<dyn KvClient>> = (0..2)
            .map(|_| {
                Arc::new(LocalClient::new(Arc::new(Store::new(
                    StoreConfig::default(),
                )))) as Arc<dyn KvClient>
            })
            .collect();
        ServerPool::with_replication(stores, DistributorKind::default(), 3);
    }

    #[test]
    fn replicated_writes_land_on_consecutive_servers() {
        let stores: Vec<Arc<Store>> = (0..4)
            .map(|_| Arc::new(Store::new(StoreConfig::default())))
            .collect();
        let clients: Vec<Arc<dyn KvClient>> = stores
            .iter()
            .map(|s| Arc::new(LocalClient::new(Arc::clone(s))) as Arc<dyn KvClient>)
            .collect();
        let p = ServerPool::with_replication(clients, DistributorKind::default(), 2);
        p.set(b"k", Bytes::from_static(b"v")).unwrap();
        let holders = stores.iter().filter(|s| s.contains(b"k")).count();
        assert_eq!(holders, 2);
        let expected: Vec<usize> = p.servers_for(b"k").map(|s| s.0).collect();
        for &i in &expected {
            assert!(stores[i].contains(b"k"));
        }
    }

    #[test]
    fn replicated_reads_survive_a_dead_primary() {
        use memfs_memkv::FailableClient;
        let failables: Vec<Arc<FailableClient<LocalClient>>> = (0..3)
            .map(|_| {
                Arc::new(FailableClient::new(LocalClient::new(Arc::new(Store::new(
                    StoreConfig::default(),
                )))))
            })
            .collect();
        let clients: Vec<Arc<dyn KvClient>> = failables
            .iter()
            .map(|f| Arc::clone(f) as Arc<dyn KvClient>)
            .collect();
        let p = ServerPool::with_replication(clients, DistributorKind::default(), 2);
        p.set(b"k", Bytes::from_static(b"survives")).unwrap();
        // Take the primary down: reads fall back to the follower.
        let primary = p.servers_for(b"k").next().unwrap();
        failables[primary.0].set_down(true);
        assert_eq!(p.get(b"k").unwrap().as_ref(), b"survives");
        assert!(p.contains(b"k"));
        // With the follower down too, the read fails loudly.
        let follower = p.servers_for(b"k").nth(1).unwrap();
        failables[follower.0].set_down(true);
        assert!(p.get(b"k").is_err());
    }

    #[test]
    fn replication_costs_capacity_as_the_paper_predicts() {
        // "the total storage capacity of MemFS would be decreased n times"
        let total_bytes = |r: usize| -> u64 {
            let stores: Vec<Arc<Store>> = (0..4)
                .map(|_| Arc::new(Store::new(StoreConfig::default())))
                .collect();
            let clients: Vec<Arc<dyn KvClient>> = stores
                .iter()
                .map(|s| Arc::new(LocalClient::new(Arc::clone(s))) as Arc<dyn KvClient>)
                .collect();
            let p = ServerPool::with_replication(clients, DistributorKind::default(), r);
            for i in 0..32 {
                p.set(format!("k{i}").as_bytes(), Bytes::from(vec![0u8; 1000]))
                    .unwrap();
            }
            stores.iter().map(|s| s.bytes_used()).sum()
        };
        let single = total_bytes(1);
        let double = total_bytes(2);
        assert!(
            (double as f64 / single as f64 - 2.0).abs() < 0.05,
            "2x replication should store ~2x: {single} -> {double}"
        );
    }

    #[test]
    fn io_parallelism_knob_controls_dispatcher_width() {
        let clients = |n: usize| -> Vec<Arc<dyn KvClient>> {
            (0..n)
                .map(|_| {
                    Arc::new(LocalClient::new(Arc::new(Store::new(
                        StoreConfig::default(),
                    )))) as Arc<dyn KvClient>
                })
                .collect()
        };
        // Auto: one worker per server.
        let p = ServerPool::with_options(clients(4), DistributorKind::default(), 1, 0);
        assert_eq!(p.io_parallelism(), 4);
        // Explicit width.
        let p = ServerPool::with_options(clients(4), DistributorKind::default(), 1, 2);
        assert_eq!(p.io_parallelism(), 2);
        // Forced sequential: no dispatcher.
        let p = ServerPool::with_options(clients(4), DistributorKind::default(), 1, 1);
        assert_eq!(p.io_parallelism(), 1);
        // Single server: nothing to overlap.
        let p = ServerPool::with_options(clients(1), DistributorKind::default(), 1, 0);
        assert_eq!(p.io_parallelism(), 1);
    }

    /// Submit-capable wrapper around a [`LocalClient`] that counts how
    /// many deferred batches are outstanding between `start_*` and
    /// `wait`, i.e. the submit window the pool actually keeps open.
    struct SubmitProbe {
        inner: LocalClient,
        in_flight: Arc<std::sync::atomic::AtomicUsize>,
        max: Arc<std::sync::atomic::AtomicUsize>,
    }

    impl SubmitProbe {
        fn begin<T: Send + 'static>(&self, result: KvResult<Vec<KvResult<T>>>) -> Deferred<T> {
            use std::sync::atomic::Ordering;
            let now = self.in_flight.fetch_add(1, Ordering::SeqCst) + 1;
            self.max.fetch_max(now, Ordering::SeqCst);
            let in_flight = Arc::clone(&self.in_flight);
            Deferred::Pending(Box::new(move || {
                in_flight.fetch_sub(1, Ordering::SeqCst);
                result
            }))
        }
    }

    impl KvClient for SubmitProbe {
        fn set(&self, key: &[u8], value: Bytes) -> memfs_memkv::error::KvResult<()> {
            self.inner.set(key, value)
        }
        fn add(&self, key: &[u8], value: Bytes) -> memfs_memkv::error::KvResult<()> {
            self.inner.add(key, value)
        }
        fn get(&self, key: &[u8]) -> memfs_memkv::error::KvResult<Bytes> {
            self.inner.get(key)
        }
        fn append(&self, key: &[u8], suffix: &[u8]) -> memfs_memkv::error::KvResult<()> {
            self.inner.append(key, suffix)
        }
        fn delete(&self, key: &[u8]) -> memfs_memkv::error::KvResult<()> {
            self.inner.delete(key)
        }
        fn supports_submit(&self) -> bool {
            true
        }
        fn start_get_many(&self, keys: &[Bytes]) -> Deferred<Bytes> {
            self.begin(self.inner.get_many(keys))
        }
        fn start_set_many(&self, items: &[(Bytes, Bytes)]) -> Deferred<()> {
            self.begin(self.inner.set_many(items))
        }
        fn start_delete_many(&self, keys: &[Bytes]) -> Deferred<()> {
            self.begin(self.inner.delete_many(keys))
        }
    }

    fn probe_pool(
        n: usize,
        io_parallelism: usize,
    ) -> (
        ServerPool,
        Arc<std::sync::atomic::AtomicUsize>,
        Arc<std::sync::atomic::AtomicUsize>,
    ) {
        let in_flight = Arc::new(std::sync::atomic::AtomicUsize::new(0));
        let max = Arc::new(std::sync::atomic::AtomicUsize::new(0));
        let clients: Vec<Arc<dyn KvClient>> = (0..n)
            .map(|_| {
                Arc::new(SubmitProbe {
                    inner: LocalClient::new(Arc::new(Store::new(StoreConfig::default()))),
                    in_flight: Arc::clone(&in_flight),
                    max: Arc::clone(&max),
                }) as Arc<dyn KvClient>
            })
            .collect();
        let pool = ServerPool::with_options(clients, DistributorKind::default(), 1, io_parallelism);
        (pool, in_flight, max)
    }

    #[test]
    fn submit_budget_caps_in_flight_batches() {
        use std::sync::atomic::Ordering;
        // Enough keys that all 6 servers get a batch.
        let keys: Vec<Bytes> = (0..96).map(|i| Bytes::from(format!("s:/f{i}#0"))).collect();
        let items: Vec<(Bytes, Bytes)> = keys
            .iter()
            .map(|k| (k.clone(), Bytes::from_static(b"v")))
            .collect();

        // Budget 2: never more than two batches in flight, for every op.
        let (p, in_flight, max) = probe_pool(6, 2);
        assert!(
            p.engine().is_none(),
            "submit-capable pool must not spawn dispatcher workers"
        );
        assert_eq!(p.io_parallelism(), 2);
        p.set_many(&items).unwrap();
        for r in p.get_many(&keys) {
            r.unwrap();
        }
        for r in p.delete_many(&keys) {
            assert!(r.unwrap());
        }
        assert_eq!(max.load(Ordering::SeqCst), 2, "window must fill to budget");
        assert_eq!(in_flight.load(Ordering::SeqCst), 0, "window must drain");

        // Budget 0 (auto): full fan-out, all six servers in flight at once.
        let (p, in_flight, max) = probe_pool(6, 0);
        assert_eq!(p.io_parallelism(), 6);
        p.set_many(&items).unwrap();
        assert_eq!(max.load(Ordering::SeqCst), 6);
        assert_eq!(in_flight.load(Ordering::SeqCst), 0);
    }

    #[test]
    fn pool_stats_count_batches_and_settle_to_zero_in_flight() {
        let (p, _) = pool(4);
        let keys: Vec<Bytes> = (0..64).map(|i| Bytes::from(format!("s:/f{i}#0"))).collect();
        let items: Vec<(Bytes, Bytes)> = keys
            .iter()
            .map(|k| (k.clone(), Bytes::from_static(b"v")))
            .collect();
        p.set_many(&items).unwrap();
        for r in p.get_many(&keys) {
            r.unwrap();
        }
        let snap = p.stats().snapshot();
        let total_keys: u64 = snap.iter().map(|s| s.keys).sum();
        assert_eq!(total_keys, 128, "64 set + 64 get keys accounted");
        for s in &snap {
            assert_eq!(s.in_flight, 0, "gauge must settle after the calls");
            if s.batches > 0 {
                assert!(s.max_in_flight >= 1);
            }
            assert_eq!(s.fallbacks, 0);
        }
    }
}
