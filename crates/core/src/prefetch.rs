//! The prefetching protocol (paper §3.2.2).
//!
//! "Our prefetching scheme is simple and effective only for sequential
//! reads: when an application requests data from a specific stripe, MemFS
//! prefetches the consecutive stripes in a local cache."
//!
//! [`StripeReader`] keeps a bounded per-file cache (8 MiB by default).
//! Every stripe access triggers prefetch of the next `window` stripes
//! through the shared prefetch thread pool; sequential readers therefore
//! always find the next stripe already local, hiding the network latency
//! (which is why Figure 3a shows read bandwidth independent of stripe
//! size).
//!
//! The reader goes slightly beyond the paper's strictly-consecutive
//! scheme: a small per-handle stream table detects forward strides
//! (including several interleaved sequential regions on one handle), so a
//! stride-`k` scan prefetches `stripe + k, stripe + 2k, ...` instead of
//! degrading every access to a synchronous miss. Pure sequential access
//! resolves to stride 1 and behaves exactly as before.

use std::collections::{HashMap, VecDeque};
use std::sync::Arc;

use bytes::Bytes;
use memfs_hashring::schema::KeySchema;
use parking_lot::{Condvar, Mutex};

use crate::error::{MemFsError, MemFsResult};
use crate::layout::StripeLayout;
use crate::pool::ServerPool;
use crate::threadpool::IoEngine;

/// State of one cache slot.
enum Slot {
    /// A prefetch job is fetching this stripe.
    InFlight,
    /// Stripe bytes are local.
    Ready(Bytes),
    /// The background fetch failed; readers retry synchronously.
    Failed,
}

struct CacheState {
    slots: HashMap<u64, Slot>,
    /// Ready-slot insertion order, for FIFO eviction.
    order: VecDeque<u64>,
}

struct Cache {
    state: Mutex<CacheState>,
    cv: Condvar,
    capacity: usize,
}

impl Cache {
    /// Insert a fetched stripe as `Ready`, evicting FIFO down to capacity.
    /// Shared by the synchronous miss path and the background prefetch
    /// jobs so the `order` queue is the single capacity authority.
    fn insert_ready_locked(&self, state: &mut CacheState, stripe: u64, data: Bytes) {
        while state.order.len() >= self.capacity {
            if let Some(victim) = state.order.pop_front() {
                // Never evict the stripe we are inserting.
                if victim != stripe {
                    state.slots.remove(&victim);
                }
            } else {
                break;
            }
        }
        state.slots.insert(stripe, Slot::Ready(data));
        state.order.push_back(stripe);
        self.check_invariants(state);
    }

    /// The `order`/`slots` invariant: `order` holds each Ready stripe at
    /// most once and never grows past capacity. Duplicated entries are how
    /// the old unclaimed-miss double-fetch corrupted capacity accounting.
    fn check_invariants(&self, state: &CacheState) {
        if cfg!(debug_assertions) {
            assert!(
                state.order.len() <= self.capacity,
                "order {} exceeds capacity {}",
                state.order.len(),
                self.capacity
            );
            let unique: std::collections::HashSet<&u64> = state.order.iter().collect();
            assert_eq!(unique.len(), state.order.len(), "duplicate order entries");
            for s in &state.order {
                assert!(
                    matches!(state.slots.get(s), Some(Slot::Ready(_))),
                    "order entry {s} not Ready"
                );
            }
        }
    }
}

/// Concurrent access streams tracked per reader handle. Covers a few
/// interleaved sequential/strided regions (e.g. head+tail readers);
/// beyond this the least recently touched stream is recycled.
const MAX_STREAMS: usize = 4;

/// Largest forward jump (in stripes) still treated as a stride of an
/// existing stream rather than a brand-new stream. Bounds how far a
/// strided window extrapolates ahead of the read position.
const MAX_STRIDE: u64 = 32;

/// One detected access stream: where it last read and how far it
/// appears to advance per access.
struct StreamState {
    last: u64,
    stride: u64,
    /// Logical clock of the last touch, for LRU recycling.
    touched: u64,
}

struct StreamTable {
    streams: Vec<StreamState>,
    clock: u64,
}

/// A striped, prefetching reader over one finalized file.
pub struct StripeReader {
    path: String,
    layout: StripeLayout,
    file_size: u64,
    pool: Arc<ServerPool>,
    engine: Option<Arc<IoEngine>>,
    window: usize,
    cache: Arc<Cache>,
    streams: Mutex<StreamTable>,
}

impl StripeReader {
    /// Create a reader for `path` with final size `file_size`.
    ///
    /// `engine`/`window` control prefetching; pass `None`/`0` to disable
    /// (the "no prefetching" ablation of Figure 3b). The engine is the
    /// mount's shared [`IoEngine`] — every open file's prefetch jobs ride
    /// the same bounded worker set. `cache_stripes` caps the local cache
    /// (8 MiB / stripe size by default).
    pub fn new(
        path: String,
        layout: StripeLayout,
        file_size: u64,
        pool: Arc<ServerPool>,
        engine: Option<Arc<IoEngine>>,
        window: usize,
        cache_stripes: usize,
    ) -> Self {
        StripeReader {
            path,
            layout,
            file_size,
            pool,
            engine,
            window,
            cache: Arc::new(Cache {
                state: Mutex::new(CacheState {
                    slots: HashMap::new(),
                    order: VecDeque::new(),
                }),
                cv: Condvar::new(),
                capacity: cache_stripes.max(1),
            }),
            streams: Mutex::new(StreamTable {
                streams: Vec::new(),
                clock: 0,
            }),
        }
    }

    /// The file size this reader was opened with.
    pub fn file_size(&self) -> u64 {
        self.file_size
    }

    /// Fetch stripe `stripe`, from cache if possible, then kick prefetch
    /// of the detected-stride window.
    pub fn stripe(&self, stripe: u64) -> MemFsResult<Bytes> {
        debug_assert!(stripe < self.layout.stripe_count(self.file_size));
        let stride = self.note_access(stripe);
        let data = self.fetch(stripe)?;
        self.prefetch_ahead(stripe, stride);
        Ok(data)
    }

    /// Record an access at `stripe` in the stream table and return the
    /// stride the prefetcher should extrapolate with. Matching order:
    /// exact continuation of a known stream, re-read of a stream's
    /// position, nearest forward jump from a stream (which *sets* that
    /// stream's stride), else a fresh stream assumed sequential.
    fn note_access(&self, stripe: u64) -> u64 {
        let mut table = self.streams.lock();
        table.clock += 1;
        let clock = table.clock;
        if let Some(st) = table
            .streams
            .iter_mut()
            .find(|st| st.stride > 0 && st.last + st.stride == stripe)
        {
            st.last = stripe;
            st.touched = clock;
            return st.stride;
        }
        if let Some(st) = table.streams.iter_mut().find(|st| st.last == stripe) {
            st.touched = clock;
            return st.stride.max(1);
        }
        if let Some(st) = table
            .streams
            .iter_mut()
            .filter(|st| st.last < stripe && stripe - st.last <= MAX_STRIDE)
            .max_by_key(|st| st.last)
        {
            st.stride = stripe - st.last;
            st.last = stripe;
            st.touched = clock;
            return st.stride;
        }
        if table.streams.len() >= MAX_STREAMS {
            if let Some(pos) = table
                .streams
                .iter()
                .enumerate()
                .min_by_key(|(_, st)| st.touched)
                .map(|(i, _)| i)
            {
                table.streams.swap_remove(pos);
            }
        }
        table.streams.push(StreamState {
            last: stripe,
            stride: 1,
            touched: clock,
        });
        1
    }

    /// Cache-or-network fetch of one stripe, waiting on in-flight
    /// prefetches rather than fetching twice.
    fn fetch(&self, stripe: u64) -> MemFsResult<Bytes> {
        if self.window > 0 {
            let mut state = self.cache.state.lock();
            loop {
                match state.slots.get(&stripe) {
                    Some(Slot::Ready(data)) => return Ok(data.clone()),
                    Some(Slot::InFlight) => {
                        self.cache.cv.wait(&mut state);
                    }
                    Some(Slot::Failed) | None => {
                        // Claim the slot *before* going to the network so
                        // concurrent misses on this stripe wait here
                        // instead of each fetching it (and pushing
                        // duplicate eviction-order entries). Overwriting a
                        // stale Failed marker is the synchronous retry
                        // clearing it.
                        state.slots.insert(stripe, Slot::InFlight);
                        break;
                    }
                }
            }
        }
        // Synchronous path (claimed miss, or prefetch disabled).
        let key = KeySchema::stripe_key(&self.path, stripe);
        match self.pool.get(&key) {
            Ok(data) => {
                if self.window > 0 {
                    self.insert_ready(stripe, data.clone());
                }
                Ok(data)
            }
            Err(e) => {
                if self.window > 0 {
                    // Release the claim so waiters retry instead of
                    // hanging on an InFlight that will never resolve.
                    let mut state = self.cache.state.lock();
                    state.slots.remove(&stripe);
                    drop(state);
                    self.cache.cv.notify_all();
                }
                Err(self.stripe_err(stripe, e))
            }
        }
    }

    /// A missing stripe under a finalized size record means the key space
    /// was tampered with.
    fn stripe_err(&self, stripe: u64, e: MemFsError) -> MemFsError {
        match e {
            MemFsError::Storage(memfs_memkv::KvError::NotFound) => MemFsError::CorruptMetadata(
                format!("stripe {stripe} of {} missing from store", self.path),
            ),
            other => other,
        }
    }

    /// Fetch several stripes as one batched, fanned-out operation,
    /// returned in input order.
    ///
    /// Cache-aware: already-resident stripes are served locally, stripes
    /// another thread is prefetching are waited on, and only the true
    /// misses travel — as a single [`ServerPool::get_many`] whose
    /// per-server batches go out in parallel. This is what makes a large
    /// `read_at` span cost one parallel round trip instead of one
    /// sequential round trip per stripe.
    pub fn read_stripes(&self, stripes: &[u64]) -> MemFsResult<Vec<Bytes>> {
        if self.window == 0 {
            // Cache disabled: straight batched fetch.
            let keys: Vec<Bytes> = stripes
                .iter()
                .map(|&s| Bytes::from(KeySchema::stripe_key(&self.path, s)))
                .collect();
            return self
                .pool
                .get_many(&keys)
                .into_iter()
                .zip(stripes)
                .map(|(r, &s)| r.map_err(|e| self.stripe_err(s, e)))
                .collect();
        }
        let mut out: Vec<Option<Bytes>> = vec![None; stripes.len()];
        let mut misses: Vec<(usize, u64)> = Vec::new();
        let mut waiting: Vec<(usize, u64)> = Vec::new();
        {
            let mut state = self.cache.state.lock();
            for (i, &s) in stripes.iter().enumerate() {
                match state.slots.get(&s) {
                    Some(Slot::Ready(data)) => out[i] = Some(data.clone()),
                    Some(Slot::InFlight) => waiting.push((i, s)),
                    Some(Slot::Failed) | None => {
                        // Claim the slot so concurrent readers/prefetchers
                        // wait on our batch instead of fetching twice.
                        state.slots.insert(s, Slot::InFlight);
                        misses.push((i, s));
                    }
                }
            }
        }
        // Re-issue the full remaining prefetch window immediately, keyed
        // off the furthest requested stripe. The readahead job overlaps
        // the synchronous miss fetch below, so small sequential `read_at`
        // spans (1-2 stripes) still keep every server engaged instead of
        // capping the fan-out at the span width. Noting every stripe of
        // the span (not just the max) keeps the stream table seeing the
        // contiguous walk, so the next span continues at stride 1 instead
        // of being mistaken for a span-sized jump.
        if let Some(&last) = stripes.iter().max() {
            let mut stride = 1;
            for &s in stripes {
                stride = self.note_access(s);
            }
            self.prefetch_ahead(last, stride);
        }
        if !misses.is_empty() {
            let keys: Vec<Bytes> = misses
                .iter()
                .map(|&(_, s)| Bytes::from(KeySchema::stripe_key(&self.path, s)))
                .collect();
            let results = self.pool.get_many(&keys);
            let mut first_err: Option<MemFsError> = None;
            let mut state = self.cache.state.lock();
            // Every claimed slot must be resolved to Ready or Failed even
            // on error, or waiters would hang on InFlight forever.
            for (&(i, s), r) in misses.iter().zip(results) {
                match r {
                    Ok(data) => {
                        self.cache.insert_ready_locked(&mut state, s, data.clone());
                        out[i] = Some(data);
                    }
                    Err(e) => {
                        state.slots.insert(s, Slot::Failed);
                        if first_err.is_none() {
                            first_err = Some(self.stripe_err(s, e));
                        }
                    }
                }
            }
            drop(state);
            self.cache.cv.notify_all();
            if let Some(e) = first_err {
                return Err(e);
            }
        }
        // `fetch` waits out the in-flight slots (and retries synchronously
        // if the owning fetch failed or the slot got evicted meanwhile).
        for (i, s) in waiting {
            out[i] = Some(self.fetch(s)?);
        }
        Ok(out
            .into_iter()
            .map(|d| d.expect("every stripe classified exactly once"))
            .collect())
    }

    /// Queue background fetches for stripes `stripe + k*stride` for
    /// `k` in `1..=window`.
    ///
    /// The whole window travels as **one** worker job issuing a single
    /// batched [`ServerPool::get_many`]; the pool groups the keys by
    /// owning server and fans the per-server multi-gets out in parallel,
    /// so a window of `w` stripes over `n` servers costs one round trip
    /// per server — issued concurrently, `max(server RTT)` total.
    fn prefetch_ahead(&self, stripe: u64, stride: u64) {
        let Some(engine) = &self.engine else {
            return;
        };
        if self.window == 0 {
            return;
        }
        let stride = stride.max(1);
        let total = self.layout.stripe_count(self.file_size);
        // Reserve the whole window's slots under one lock pass.
        let mut pending: Vec<u64> = Vec::new();
        {
            let mut state = self.cache.state.lock();
            // Sweep stale Failed markers first. They never enter the
            // eviction `order` queue, so before this sweep they
            // accumulated in `slots` until the capacity guard below
            // permanently wedged prefetching after transient errors. The
            // cost: a persistently failing stripe may be re-tried once
            // per issued window — bounded, and the synchronous path
            // surfaces its error either way.
            state.slots.retain(|_, s| !matches!(s, Slot::Failed));
            // Don't let prefetch evict data the reader hasn't seen: bound
            // the stripes that are still *unread* — ahead of the read
            // position or in flight. Ready stripes behind `stripe` were
            // already consumed by this sequential pass and are fair
            // eviction game, so they must not count against the budget:
            // charging them wedged steady-state prefetch entirely once a
            // file longer than the cache had filled it.
            let mut busy = state
                .slots
                .iter()
                .filter(|&(&s, slot)| s > stripe || matches!(slot, Slot::InFlight))
                .count();
            for k in 1..=(self.window as u64) {
                let next = stripe + k * stride;
                if next >= total {
                    break;
                }
                if state.slots.contains_key(&next) {
                    continue; // ready or in flight
                }
                if busy >= self.cache.capacity {
                    break;
                }
                state.slots.insert(next, Slot::InFlight);
                busy += 1;
                pending.push(next);
            }
        }
        if pending.is_empty() {
            return;
        }
        let keys: Vec<Bytes> = pending
            .iter()
            .map(|&s| Bytes::from(KeySchema::stripe_key(&self.path, s)))
            .collect();
        let pool = Arc::clone(&self.pool);
        let cache = Arc::clone(&self.cache);
        engine.execute(move || {
            let results = pool.get_many(&keys);
            let mut state = cache.state.lock();
            for (&s, result) in pending.iter().zip(results) {
                match result {
                    Ok(data) => cache.insert_ready_locked(&mut state, s, data),
                    Err(_) => {
                        state.slots.insert(s, Slot::Failed);
                    }
                }
            }
            drop(state);
            cache.cv.notify_all();
        });
    }

    /// Insert a synchronously fetched stripe, evicting FIFO if needed.
    fn insert_ready(&self, stripe: u64, data: Bytes) {
        let mut state = self.cache.state.lock();
        self.cache.insert_ready_locked(&mut state, stripe, data);
        drop(state);
        self.cache.cv.notify_all();
    }

    /// Number of stripes currently cached or in flight (diagnostic).
    pub fn cached_stripes(&self) -> usize {
        self.cache.state.lock().slots.len()
    }

    /// Verify the cache invariants and report `(slots, order)` sizes.
    #[cfg(test)]
    fn cache_counts(&self) -> (usize, usize) {
        let state = self.cache.state.lock();
        self.cache.check_invariants(&state);
        (state.slots.len(), state.order.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::DistributorKind;
    use memfs_memkv::{KvClient, LocalClient, Store, StoreConfig};

    fn setup(file_size: u64, stripe: usize) -> (Arc<ServerPool>, Bytes) {
        let clients: Vec<Arc<dyn KvClient>> = (0..4)
            .map(|_| {
                Arc::new(LocalClient::new(Arc::new(Store::new(
                    StoreConfig::default(),
                )))) as Arc<dyn KvClient>
            })
            .collect();
        let pool = Arc::new(ServerPool::new(clients, DistributorKind::default()));
        let data = Bytes::from((0..file_size).map(|i| (i % 241) as u8).collect::<Vec<u8>>());
        let layout = StripeLayout::new(stripe);
        for s in 0..layout.stripe_count(file_size) {
            let start = (s as usize) * stripe;
            let end = (start + stripe).min(file_size as usize);
            // Zero-copy fill: every stripe shares the one backing buffer.
            pool.set(&KeySchema::stripe_key("/f", s), data.slice(start..end))
                .unwrap();
        }
        (pool, data)
    }

    fn reader(
        pool: &Arc<ServerPool>,
        file_size: u64,
        stripe: usize,
        window: usize,
    ) -> StripeReader {
        let engine = (window > 0).then(|| Arc::new(IoEngine::new(2, "pf")));
        StripeReader::new(
            "/f".into(),
            StripeLayout::new(stripe),
            file_size,
            Arc::clone(pool),
            engine,
            window,
            16,
        )
    }

    #[test]
    fn sequential_read_with_prefetch_returns_correct_bytes() {
        let (pool, data) = setup(1000, 100);
        let r = reader(&pool, 1000, 100, 4);
        let mut out = Vec::new();
        for s in 0..10 {
            out.extend_from_slice(&r.stripe(s).unwrap());
        }
        assert_eq!(out, data.as_ref());
    }

    #[test]
    fn random_order_reads_are_correct() {
        let (pool, data) = setup(1000, 100);
        let r = reader(&pool, 1000, 100, 4);
        for &s in &[7u64, 0, 9, 3, 3, 1, 8, 0] {
            let got = r.stripe(s).unwrap();
            let start = (s as usize) * 100;
            assert_eq!(got.as_ref(), &data[start..start + 100]);
        }
    }

    #[test]
    fn no_prefetch_mode_works() {
        let (pool, data) = setup(500, 100);
        let r = reader(&pool, 500, 100, 0);
        for s in 0..5 {
            let got = r.stripe(s).unwrap();
            assert_eq!(
                got.as_ref(),
                &data[(s as usize) * 100..(s as usize + 1) * 100]
            );
        }
        assert_eq!(r.cached_stripes(), 0);
    }

    #[test]
    fn prefetch_populates_cache() {
        let (pool, _) = setup(2000, 100);
        let r = reader(&pool, 2000, 100, 8);
        r.stripe(0).unwrap();
        // Wait for prefetchers to land (bounded spin).
        for _ in 0..1000 {
            if r.cached_stripes() >= 8 {
                break;
            }
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        assert!(r.cached_stripes() >= 8, "prefetch did not fill cache");
    }

    #[test]
    fn prefetch_window_issues_one_batch_per_server() {
        let stores: Vec<Arc<Store>> = (0..4)
            .map(|_| Arc::new(Store::new(StoreConfig::default())))
            .collect();
        let clients: Vec<Arc<dyn KvClient>> = stores
            .iter()
            .map(|s| Arc::new(LocalClient::new(Arc::clone(s))) as Arc<dyn KvClient>)
            .collect();
        let pool = Arc::new(ServerPool::new(clients, DistributorKind::default()));
        let layout = StripeLayout::new(100);
        for s in 0..layout.stripe_count(2000) {
            pool.set(
                &KeySchema::stripe_key("/f", s),
                Bytes::from(vec![s as u8; 100]),
            )
            .unwrap();
        }
        let engine = Some(Arc::new(IoEngine::new(4, "pf")));
        let r = StripeReader::new("/f".into(), layout, 2000, Arc::clone(&pool), engine, 8, 16);
        // One read triggers exactly one prefetch window (stripes 1..=8).
        let owners: std::collections::HashSet<usize> = (1..=8u64)
            .map(|s| pool.server_for(&KeySchema::stripe_key("/f", s)).0)
            .collect();
        r.stripe(0).unwrap();
        // Wait until every per-server batch job has landed (InFlight slots
        // are reserved synchronously, so cache size can't tell us).
        for _ in 0..1000 {
            let batches: u64 = stores.iter().map(|s| s.stats().snapshot().mget_ops).sum();
            if batches >= owners.len() as u64 {
                break;
            }
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        // Acceptance criterion: every server owning part of the window saw
        // exactly ONE batched multi-get, never one request per stripe.
        for (i, store) in stores.iter().enumerate() {
            let expected = usize::from(owners.contains(&i)) as u64;
            assert_eq!(
                store.stats().snapshot().mget_ops,
                expected,
                "server {i} batch count"
            );
        }
    }

    /// A client wrapper separating synchronous single-key `get`s (the
    /// reader's miss path) from batched `get_many`s (the prefetch path).
    /// `Store`'s own counters can't tell them apart: its `get_many` bumps
    /// `get_ops` once per key too.
    struct CountingClient {
        inner: LocalClient,
        gets: std::sync::atomic::AtomicU64,
        mgets: std::sync::atomic::AtomicU64,
    }

    impl KvClient for CountingClient {
        fn set(&self, key: &[u8], value: Bytes) -> memfs_memkv::error::KvResult<()> {
            self.inner.set(key, value)
        }
        fn add(&self, key: &[u8], value: Bytes) -> memfs_memkv::error::KvResult<()> {
            self.inner.add(key, value)
        }
        fn get(&self, key: &[u8]) -> memfs_memkv::error::KvResult<Bytes> {
            self.gets.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
            self.inner.get(key)
        }
        fn get_many(
            &self,
            keys: &[Bytes],
        ) -> memfs_memkv::error::KvResult<Vec<memfs_memkv::error::KvResult<Bytes>>> {
            self.mgets
                .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
            self.inner.get_many(keys)
        }
        fn append(&self, key: &[u8], suffix: &[u8]) -> memfs_memkv::error::KvResult<()> {
            self.inner.append(key, suffix)
        }
        fn delete(&self, key: &[u8]) -> memfs_memkv::error::KvResult<()> {
            self.inner.delete(key)
        }
        fn supports_submit(&self) -> bool {
            true
        }
    }

    /// Four counted local servers plus a pool over them, pre-seeded with
    /// every stripe of a `file_size`-byte file at `/f`.
    fn instrumented_pool(
        file_size: u64,
        stripe: usize,
    ) -> (Vec<Arc<CountingClient>>, Arc<ServerPool>) {
        let counted: Vec<Arc<CountingClient>> = (0..4)
            .map(|_| {
                Arc::new(CountingClient {
                    inner: LocalClient::new(Arc::new(Store::new(StoreConfig::default()))),
                    gets: Default::default(),
                    mgets: Default::default(),
                })
            })
            .collect();
        let clients: Vec<Arc<dyn KvClient>> = counted
            .iter()
            .map(|c| Arc::clone(c) as Arc<dyn KvClient>)
            .collect();
        let pool = Arc::new(ServerPool::new(clients, DistributorKind::default()));
        let layout = StripeLayout::new(stripe);
        for s in 0..layout.stripe_count(file_size) {
            pool.set(
                &KeySchema::stripe_key("/f", s),
                Bytes::from(vec![s as u8; stripe]),
            )
            .unwrap();
        }
        (counted, pool)
    }

    fn sync_gets(clients: &[Arc<CountingClient>]) -> u64 {
        clients
            .iter()
            .map(|c| c.gets.load(std::sync::atomic::Ordering::Relaxed))
            .sum()
    }

    fn batched_gets(clients: &[Arc<CountingClient>]) -> u64 {
        clients
            .iter()
            .map(|c| c.mgets.load(std::sync::atomic::Ordering::Relaxed))
            .sum()
    }

    #[test]
    fn strided_reads_keep_prefetch_engaged() {
        // 300 stripes, read every third one. Before stride detection the
        // consecutive-only window never contained the next access, so a
        // strided scan degraded to one synchronous get per stripe.
        let (counted, pool) = instrumented_pool(30_000, 100);
        let engine = Some(Arc::new(IoEngine::new(2, "pf")));
        let r = StripeReader::new(
            "/f".into(),
            StripeLayout::new(100),
            30_000,
            Arc::clone(&pool),
            engine,
            8,
            16,
        );
        let mut accesses = 0u64;
        let mut s = 0u64;
        while s < 300 {
            assert_eq!(r.stripe(s).unwrap().as_ref(), &vec![s as u8; 100][..]);
            accesses += 1;
            s += 3;
        }
        // Slot reservation is synchronous under the cache lock, so once
        // the stride locks in every access finds its stripe Ready or
        // InFlight: almost all of the 100 accesses must be prefetch hits.
        let gets = sync_gets(&counted);
        assert!(accesses >= 100);
        assert!(
            gets <= 10,
            "strided scan fell back to {gets} synchronous gets out of {accesses} accesses"
        );
        assert!(
            batched_gets(&counted) > 0,
            "stride window never issued a batched prefetch"
        );
    }

    #[test]
    fn interleaved_sequential_streams_each_prefetch() {
        // Two sequential readers sharing one handle, far apart in the
        // file. The stream table tracks both, so neither degrades the
        // other to synchronous misses.
        let (counted, pool) = instrumented_pool(30_000, 100);
        let engine = Some(Arc::new(IoEngine::new(2, "pf")));
        let r = StripeReader::new(
            "/f".into(),
            StripeLayout::new(100),
            30_000,
            Arc::clone(&pool),
            engine,
            8,
            32, // room for both streams' windows
        );
        for s in 0..50u64 {
            assert_eq!(r.stripe(s).unwrap().as_ref(), &vec![s as u8; 100][..]);
            let t = 150 + s;
            assert_eq!(r.stripe(t).unwrap().as_ref(), &vec![t as u8; 100][..]);
        }
        let gets = sync_gets(&counted);
        assert!(
            gets <= 10,
            "interleaved streams fell back to {gets} synchronous gets"
        );
    }

    #[test]
    fn read_stripes_returns_input_order_and_uses_cache() {
        let (pool, data) = setup(2000, 100);
        let r = reader(&pool, 2000, 100, 4);
        // Mixed cold/warm: stripe 0 warms the cache first.
        r.stripe(0).unwrap();
        let got = r.read_stripes(&[3, 0, 17, 9]).unwrap();
        for (&s, d) in [3u64, 0, 17, 9].iter().zip(&got) {
            let start = (s as usize) * 100;
            assert_eq!(d.as_ref(), &data[start..start + 100], "stripe {s}");
        }
        // A second batched read of the same stripes is fully cache-served.
        let again = r.read_stripes(&[3, 0, 17, 9]).unwrap();
        assert_eq!(got, again);
    }

    #[test]
    fn read_stripes_without_cache_is_one_parallel_fetch() {
        let (pool, data) = setup(1000, 100);
        let r = reader(&pool, 1000, 100, 0);
        let stripes: Vec<u64> = (0..10).collect();
        let got = r.read_stripes(&stripes).unwrap();
        let mut flat = Vec::new();
        for d in got {
            flat.extend_from_slice(&d);
        }
        assert_eq!(flat, data.as_ref());
        assert_eq!(r.cached_stripes(), 0);
    }

    #[test]
    fn read_stripes_missing_stripe_is_corrupt_metadata() {
        let (pool, _) = setup(1000, 100);
        pool.delete_quiet(&KeySchema::stripe_key("/f", 5)).unwrap();
        let r = reader(&pool, 1000, 100, 4);
        assert!(matches!(
            r.read_stripes(&[2, 5, 7]),
            Err(MemFsError::CorruptMetadata(_))
        ));
        // The failed slot must not wedge later readers: a retry of the
        // healthy stripes succeeds.
        assert_eq!(r.read_stripes(&[2, 7]).unwrap().len(), 2);
    }

    #[test]
    fn cache_respects_capacity() {
        let (pool, _) = setup(10_000, 100);
        let engine = Some(Arc::new(IoEngine::new(2, "pf")));
        let r = StripeReader::new(
            "/f".into(),
            StripeLayout::new(100),
            10_000,
            Arc::clone(&pool),
            engine,
            4,
            6, // tiny cache
        );
        for s in 0..100 {
            r.stripe(s).unwrap();
        }
        assert!(
            r.cached_stripes() <= 7,
            "cache grew to {}",
            r.cached_stripes()
        );
    }

    #[test]
    fn missing_stripe_is_corrupt_metadata() {
        let (pool, _) = setup(1000, 100);
        pool.delete_quiet(&KeySchema::stripe_key("/f", 5)).unwrap();
        let r = reader(&pool, 1000, 100, 0);
        assert!(matches!(r.stripe(5), Err(MemFsError::CorruptMetadata(_))));
    }

    #[test]
    fn prefetch_recovers_after_transient_errors() {
        use memfs_memkv::FailableClient;
        let store = Arc::new(Store::new(StoreConfig::default()));
        let failable = Arc::new(FailableClient::new(LocalClient::new(Arc::clone(&store))));
        let clients: Vec<Arc<dyn KvClient>> = vec![Arc::clone(&failable) as Arc<dyn KvClient>];
        let pool = Arc::new(ServerPool::new(clients, DistributorKind::default()));
        let layout = StripeLayout::new(100);
        for s in 0..layout.stripe_count(5000) {
            pool.set(
                &KeySchema::stripe_key("/f", s),
                Bytes::from(vec![s as u8; 100]),
            )
            .unwrap();
        }
        let engine = Some(Arc::new(IoEngine::new(2, "pf")));
        let r = StripeReader::new(
            "/f".into(),
            layout,
            5000,
            Arc::clone(&pool),
            engine,
            4,
            4, // capacity == window: a few stale Failed slots fill it
        );
        // Transient outage: every batched read fails, leaving Failed
        // markers behind (as many distinct stripes as the capacity).
        failable.set_down(true);
        for s in [0u64, 10, 20, 30] {
            assert!(r.read_stripes(&[s]).is_err());
        }
        failable.set_down(false);
        // Recovery: a successful read must re-arm prefetching. Before the
        // Failed-slot sweep, the stale markers counted against capacity
        // and the `slots.len() >= capacity` guard wedged prefetch
        // permanently — no batched multi-get was ever issued again.
        let baseline = store.stats().snapshot().mget_ops;
        assert_eq!(r.stripe(40).unwrap().as_ref(), &[40u8; 100][..]);
        let mut landed = false;
        for _ in 0..2000 {
            if store.stats().snapshot().mget_ops > baseline {
                landed = true;
                break;
            }
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        assert!(
            landed,
            "prefetch window never issued after recovery: wedged"
        );
    }

    #[test]
    fn concurrent_misses_coalesce_into_one_fetch() {
        let store = Arc::new(Store::new(StoreConfig::default()));
        let clients: Vec<Arc<dyn KvClient>> =
            vec![Arc::new(LocalClient::new(Arc::clone(&store))) as Arc<dyn KvClient>];
        let pool = Arc::new(ServerPool::new(clients, DistributorKind::default()));
        // A one-stripe file: nothing to prefetch, so the only traffic is
        // the miss fetch itself.
        pool.set(&KeySchema::stripe_key("/f", 0), Bytes::from(vec![7u8; 100]))
            .unwrap();
        let engine = Some(Arc::new(IoEngine::new(2, "pf")));
        let r = Arc::new(StripeReader::new(
            "/f".into(),
            StripeLayout::new(100),
            100,
            Arc::clone(&pool),
            engine,
            4,
            16,
        ));
        let barrier = Arc::new(std::sync::Barrier::new(8));
        let threads: Vec<_> = (0..8)
            .map(|_| {
                let r = Arc::clone(&r);
                let barrier = Arc::clone(&barrier);
                std::thread::spawn(move || {
                    barrier.wait();
                    r.stripe(0).unwrap()
                })
            })
            .collect();
        for t in threads {
            assert_eq!(t.join().unwrap().as_ref(), &[7u8; 100][..]);
        }
        // The first miss claims the slot; the other seven wait on it.
        // Before claim-then-fetch, racing misses each went to the network
        // and each pushed an eviction-order entry for the same stripe.
        assert_eq!(
            store.stats().snapshot().get_ops,
            1,
            "concurrent misses must coalesce into one network fetch"
        );
        let (slots, order) = r.cache_counts();
        assert_eq!((slots, order), (1, 1));
    }

    #[test]
    fn cache_never_exceeds_capacity_under_random_ops() {
        let (pool, data) = setup(10_000, 100); // 100 stripes
        for cap in [1usize, 2, 5, 8] {
            let engine = Some(Arc::new(IoEngine::new(2, "pf")));
            let r = StripeReader::new(
                "/f".into(),
                StripeLayout::new(100),
                10_000,
                Arc::clone(&pool),
                engine,
                4,
                cap,
            );
            // Deterministic xorshift so failures reproduce.
            let mut x = 0x9E37_79B9_7F4A_7C15u64 ^ cap as u64;
            for _ in 0..300 {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                if x.is_multiple_of(3) {
                    let s = x % 100;
                    let got = r.stripe(s).unwrap();
                    assert_eq!(got.as_ref(), &data[(s as usize) * 100..][..100]);
                } else {
                    let start = x % 97;
                    let span: Vec<u64> = (start..(start + 1 + (x >> 8) % 4).min(100)).collect();
                    r.read_stripes(&span).unwrap();
                }
                // `cache_counts` checks the order/slots invariant (order
                // unique, Ready-only, bounded by capacity) on every step;
                // total slots may transiently exceed capacity only by the
                // claims in flight: prefetch reserves at most `cap` unread
                // stripes and a `read_stripes` span claims <= 4 more.
                let (slots, order) = r.cache_counts();
                assert!(order <= cap, "order {order} > capacity {cap}");
                assert!(
                    slots <= 2 * cap + 4,
                    "slots {slots} > capacity {cap} + in-flight budget"
                );
            }
            // Quiescent: every claim resolves and eviction brings the
            // cache back within capacity.
            let mut settled = false;
            for _ in 0..2000 {
                let (slots, _) = r.cache_counts();
                if slots <= cap {
                    settled = true;
                    break;
                }
                std::thread::sleep(std::time::Duration::from_millis(1));
            }
            assert!(settled, "cache never settled to capacity {cap}");
        }
    }

    #[test]
    fn concurrent_readers_share_reader() {
        let (pool, data) = setup(5000, 100);
        let r = Arc::new(reader(&pool, 5000, 100, 4));
        let data = Arc::new(data);
        let threads: Vec<_> = (0..4)
            .map(|t| {
                let r = Arc::clone(&r);
                let data = Arc::clone(&data);
                std::thread::spawn(move || {
                    for i in 0..50u64 {
                        let s = (t * 13 + i * 7) % 50;
                        let got = r.stripe(s).unwrap();
                        let start = (s as usize) * 100;
                        assert_eq!(got.as_ref(), &data[start..start + 100]);
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
    }
}
