//! # memfs-core
//!
//! **MemFS**: an in-memory runtime file system with symmetrical data
//! distribution — the primary contribution of the reproduced paper.
//!
//! MemFS stores the intermediate files of many-task computing (MTC)
//! applications in the aggregated DRAM of all compute nodes. Unlike
//! locality-based designs (AMFS, HyCache+, FusionFS), it deliberately
//! ignores locality: every file is cut into fixed-size stripes and the
//! stripes are spread over *all* storage servers by a distributed hash
//! function. On networks with full bisection bandwidth this converts every
//! read and write into many parallel streams, balances memory consumption
//! across nodes, and makes task placement irrelevant to I/O performance.
//!
//! ## Architecture (paper §3)
//!
//! * [`pool::ServerPool`] — the Libmemcached role: routes each key to a
//!   storage server via [`memfs_hashring`];
//! * [`layout::StripeLayout`] — the striping mechanism (default 512 KiB
//!   stripes, the paper's measured optimum);
//! * [`threadpool::IoEngine`] — one dispatcher per mount shared by the
//!   per-server fan-out, every file's write drain, and every file's
//!   prefetcher, so thread count is bounded by the config rather than by
//!   the number of open files;
//! * [`bufwrite`] — the write-buffering protocol: an 8 MiB per-file buffer
//!   drained asynchronously through the shared engine; `close()`/`flush()`
//!   block until it is empty;
//! * [`prefetch`] — the sequential-read prefetcher filling an 8 MiB
//!   per-file read cache through the shared engine;
//! * [`meta`] — file-size records and append-only directory logs over
//!   atomic KV `append`;
//! * [`fs::MemFs`] — the mount: create/open/read/write/close/mkdir/
//!   readdir/unlink with **write-once, read-many** semantics (§3.2.3).
//!
//! ## Example
//!
//! ```
//! use std::sync::Arc;
//! use memfs_core::{MemFs, MemFsConfig};
//! use memfs_memkv::{KvClient, LocalClient, Store, StoreConfig};
//!
//! // Four in-process "storage nodes".
//! let servers: Vec<Arc<dyn KvClient>> = (0..4)
//!     .map(|_| {
//!         Arc::new(LocalClient::new(Arc::new(Store::new(StoreConfig::default()))))
//!             as Arc<dyn KvClient>
//!     })
//!     .collect();
//! let fs = MemFs::new(servers, MemFsConfig::default()).unwrap();
//!
//! // Write once...
//! let mut w = fs.create("/results.dat").unwrap();
//! w.write_all(b"many-task computing output").unwrap();
//! w.close().unwrap();
//!
//! // ...read many.
//! let data = fs.read_to_vec("/results.dat").unwrap();
//! assert_eq!(data, b"many-task computing output");
//! ```

pub mod bufwrite;
pub mod config;
pub mod elastic;
pub mod error;
pub mod fs;
pub mod layout;
pub mod meta;
pub mod path;
pub mod pool;
pub mod prefetch;
pub mod threadpool;

pub use config::{DistributorKind, MemFsConfig};
pub use elastic::{rebalance, RebalanceReport};
pub use error::{MemFsError, MemFsResult};
pub use fs::{DirEntry, EntryKind, FileStat, MemFs, ReadHandle, WriteHandle};
pub use pool::{PoolStats, ServerIoSnapshot, ServerPool};
pub use threadpool::{IoEngine, TaskGroup};
