//! Metadata protocol (paper §3.2.4).
//!
//! * **File size records** — creating a file stores an *empty* value under
//!   the file key; closing it replaces the empty value with the file size.
//!   An empty record therefore means "still being written".
//! * **Directory logs** — a directory's value is an append-only log of
//!   child records. Adding a file/directory appends one record via the
//!   store's atomic `append`; deletions append a tombstone. `readdir`
//!   folds the log. This gives constant-time metadata mutations with no
//!   read-modify-write races.
//!
//! Record format (one per line, names cannot contain whitespace):
//!
//! ```text
//! F<name>\n    child file created
//! D<name>\n    child directory created
//! -<name>\n    child removed (tombstone)
//! ```

use std::collections::BTreeMap;

use crate::error::{MemFsError, MemFsResult};

/// Child entry kind recorded in a directory log.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChildKind {
    /// A regular file.
    File,
    /// A directory.
    Dir,
}

/// The decoded state of a file-size record.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SizeRecord {
    /// Created but not yet closed — size unknown.
    Open,
    /// Closed with the given final size.
    Finalized(u64),
}

/// Encode a finalized size record.
pub fn encode_size(size: u64) -> Vec<u8> {
    size.to_string().into_bytes()
}

/// Decode a file-size record (`path` is only for error messages).
pub fn decode_size(raw: &[u8], path: &str) -> MemFsResult<SizeRecord> {
    if raw.is_empty() {
        return Ok(SizeRecord::Open);
    }
    std::str::from_utf8(raw)
        .ok()
        .and_then(|s| s.parse::<u64>().ok())
        .map(SizeRecord::Finalized)
        .ok_or_else(|| {
            MemFsError::CorruptMetadata(format!(
                "file record of {path} is not a size: {:?}",
                String::from_utf8_lossy(raw)
            ))
        })
}

/// Encode one directory-log record for an added child.
pub fn encode_add(name: &str, kind: ChildKind) -> Vec<u8> {
    let tag = match kind {
        ChildKind::File => 'F',
        ChildKind::Dir => 'D',
    };
    format!("{tag}{name}\n").into_bytes()
}

/// Encode one tombstone record for a removed child.
pub fn encode_remove(name: &str) -> Vec<u8> {
    format!("-{name}\n").into_bytes()
}

/// Fold a directory log into the live children, sorted by name.
///
/// Later records win: add → remove → add leaves the child present (name
/// reuse after deletion is allowed even under write-once semantics — the
/// *file* key is a fresh object).
pub fn fold_dir_log(raw: &[u8], path: &str) -> MemFsResult<Vec<(String, ChildKind)>> {
    let text = std::str::from_utf8(raw).map_err(|_| {
        MemFsError::CorruptMetadata(format!("directory log of {path} is not UTF-8"))
    })?;
    let mut live: BTreeMap<&str, ChildKind> = BTreeMap::new();
    for line in text.split('\n').filter(|l| !l.is_empty()) {
        let (tag, name) = line.split_at(1);
        if name.is_empty() {
            return Err(MemFsError::CorruptMetadata(format!(
                "empty child name in directory log of {path}"
            )));
        }
        match tag {
            "F" => {
                live.insert(name, ChildKind::File);
            }
            "D" => {
                live.insert(name, ChildKind::Dir);
            }
            "-" => {
                live.remove(name);
            }
            other => {
                return Err(MemFsError::CorruptMetadata(format!(
                    "unknown record tag {other:?} in directory log of {path}"
                )))
            }
        }
    }
    Ok(live
        .into_iter()
        .map(|(name, kind)| (name.to_string(), kind))
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn size_record_round_trip() {
        assert_eq!(decode_size(b"", "/f").unwrap(), SizeRecord::Open);
        assert_eq!(
            decode_size(&encode_size(12345), "/f").unwrap(),
            SizeRecord::Finalized(12345)
        );
        assert_eq!(
            decode_size(&encode_size(0), "/f").unwrap(),
            SizeRecord::Finalized(0)
        );
    }

    #[test]
    fn corrupt_size_record_detected() {
        assert!(decode_size(b"not-a-number", "/f").is_err());
        assert!(decode_size(&[0xFF], "/f").is_err());
        assert!(decode_size(b"-5", "/f").is_err());
    }

    #[test]
    fn dir_log_folds_adds() {
        let mut log = Vec::new();
        log.extend(encode_add("b.dat", ChildKind::File));
        log.extend(encode_add("a.dat", ChildKind::File));
        log.extend(encode_add("sub", ChildKind::Dir));
        let children = fold_dir_log(&log, "/d").unwrap();
        assert_eq!(
            children,
            vec![
                ("a.dat".to_string(), ChildKind::File),
                ("b.dat".to_string(), ChildKind::File),
                ("sub".to_string(), ChildKind::Dir),
            ]
        );
    }

    #[test]
    fn tombstones_hide_children() {
        let mut log = Vec::new();
        log.extend(encode_add("x", ChildKind::File));
        log.extend(encode_remove("x"));
        assert!(fold_dir_log(&log, "/d").unwrap().is_empty());
    }

    #[test]
    fn name_reuse_after_delete() {
        let mut log = Vec::new();
        log.extend(encode_add("x", ChildKind::File));
        log.extend(encode_remove("x"));
        log.extend(encode_add("x", ChildKind::Dir));
        let children = fold_dir_log(&log, "/d").unwrap();
        assert_eq!(children, vec![("x".to_string(), ChildKind::Dir)]);
    }

    #[test]
    fn empty_log_is_empty_dir() {
        assert!(fold_dir_log(b"", "/d").unwrap().is_empty());
    }

    #[test]
    fn corrupt_dir_log_detected() {
        assert!(fold_dir_log(b"Zbogus\n", "/d").is_err());
        assert!(fold_dir_log(b"F\n", "/d").is_err());
        assert!(fold_dir_log(&[0xC0, 0xAF], "/d").is_err());
    }

    #[test]
    fn interleaved_adds_and_removes_fold_correctly() {
        let mut log = Vec::new();
        for i in 0..10 {
            log.extend(encode_add(&format!("f{i}"), ChildKind::File));
        }
        for i in (0..10).step_by(2) {
            log.extend(encode_remove(&format!("f{i}")));
        }
        let children = fold_dir_log(&log, "/d").unwrap();
        assert_eq!(children.len(), 5);
        assert!(children.iter().all(|(n, _)| {
            let i: usize = n[1..].parse().unwrap();
            i % 2 == 1
        }));
    }
}
