//! MemFS error type.

use std::fmt;

use memfs_memkv::KvError;

/// Errors returned by MemFS operations.
#[derive(Debug)]
pub enum MemFsError {
    /// Path does not exist.
    NotFound(String),
    /// Path already exists (create/mkdir on an existing name).
    AlreadyExists(String),
    /// Write-once violation: writing to a file that was already written
    /// and closed, or re-creating it (paper §3.2.3).
    WriteOnce(String),
    /// Non-sequential write: MemFS only supports sequential writes
    /// (paper §3.2.3).
    NonSequentialWrite {
        /// The path being written.
        path: String,
        /// Offset the caller asked for.
        requested: u64,
        /// The current end of the file.
        expected: u64,
    },
    /// Opening a file for reading before its writer closed it — the size
    /// record is still empty.
    NotFinalized(String),
    /// Operation on the wrong entry kind (readdir on a file, open on a
    /// directory, …).
    NotADirectory(String),
    /// Like above, the other way.
    IsADirectory(String),
    /// Directory is not empty (rmdir).
    DirectoryNotEmpty(String),
    /// Parent directory missing.
    ParentNotFound(String),
    /// Path contains bytes the key-value layer cannot carry (whitespace or
    /// control characters) or is not absolute.
    InvalidPath(String),
    /// Handle already closed.
    Closed,
    /// The storage layer failed (out of memory, value limits, transport).
    Storage(KvError),
    /// Metadata record corrupt (should never happen; indicates a bug or a
    /// foreign writer in the key space).
    CorruptMetadata(String),
}

impl fmt::Display for MemFsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MemFsError::NotFound(p) => write!(f, "{p}: no such file or directory"),
            MemFsError::AlreadyExists(p) => write!(f, "{p}: already exists"),
            MemFsError::WriteOnce(p) => {
                write!(f, "{p}: write-once violation (file already written)")
            }
            MemFsError::NonSequentialWrite {
                path,
                requested,
                expected,
            } => write!(
                f,
                "{path}: non-sequential write at {requested}, expected {expected}"
            ),
            MemFsError::NotFinalized(p) => {
                write!(f, "{p}: file still open for writing (size not finalized)")
            }
            MemFsError::NotADirectory(p) => write!(f, "{p}: not a directory"),
            MemFsError::IsADirectory(p) => write!(f, "{p}: is a directory"),
            MemFsError::DirectoryNotEmpty(p) => write!(f, "{p}: directory not empty"),
            MemFsError::ParentNotFound(p) => write!(f, "{p}: parent directory missing"),
            MemFsError::InvalidPath(p) => write!(f, "{p}: invalid path"),
            MemFsError::Closed => write!(f, "handle already closed"),
            MemFsError::Storage(e) => write!(f, "storage error: {e}"),
            MemFsError::CorruptMetadata(msg) => write!(f, "corrupt metadata: {msg}"),
        }
    }
}

impl std::error::Error for MemFsError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            MemFsError::Storage(e) => Some(e),
            _ => None,
        }
    }
}

impl From<KvError> for MemFsError {
    fn from(e: KvError) -> Self {
        MemFsError::Storage(e)
    }
}

/// Convenience alias.
pub type MemFsResult<T> = Result<T, MemFsError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_name_the_path() {
        let e = MemFsError::NotFound("/a/b".into());
        assert!(e.to_string().contains("/a/b"));
        let e = MemFsError::NonSequentialWrite {
            path: "/f".into(),
            requested: 10,
            expected: 4,
        };
        let msg = e.to_string();
        assert!(msg.contains("10") && msg.contains('4'));
    }

    #[test]
    fn storage_errors_wrap_and_chain() {
        let e: MemFsError = KvError::NotFound.into();
        assert!(matches!(e, MemFsError::Storage(KvError::NotFound)));
        assert!(std::error::Error::source(&e).is_some());
    }
}
