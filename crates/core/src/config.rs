//! MemFS configuration.

use memfs_hashring::HashScheme;

/// Which key distributor the mount uses (paper §3.1.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DistributorKind {
    /// `hash(key) mod N` — the paper's choice for a fixed server set.
    Modulo(HashScheme),
    /// Ketama consistent hashing with the given virtual points per server
    /// — the paper's named option for elastic membership.
    Ketama {
        /// Virtual points per server (libmemcached default: 160).
        points_per_server: usize,
    },
}

impl Default for DistributorKind {
    fn default() -> Self {
        DistributorKind::Modulo(HashScheme::Fnv1a)
    }
}

/// Mount configuration. Defaults are the paper's measured design points.
#[derive(Debug, Clone)]
pub struct MemFsConfig {
    /// Stripe size in bytes. The paper picks 512 KiB after the Figure 3a
    /// sweep ("we have chosen a stripe size of 512KB ... since this
    /// achieves the best bandwidth when writing files").
    pub stripe_size: usize,
    /// Per-open-file write buffer in bytes ("MemFS uses caches of 8MB per
    /// open file for the prefetching and buffering protocols", §3.2.2).
    pub write_buffer_size: usize,
    /// Per-open-file read cache in bytes (same 8 MB figure).
    pub read_cache_size: usize,
    /// Write-drain jobs the mount's shared I/O engine runs concurrently.
    /// Drain jobs fan their batches out through the same engine, so a
    /// couple of slots suffice; Figure 3b shows bandwidth saturating well
    /// before thread counts grow large.
    pub writer_threads: usize,
    /// Prefetch jobs the shared engine runs concurrently for readers.
    pub prefetch_threads: usize,
    /// How many stripes ahead of the read position to prefetch. Bounded
    /// by the read cache; 0 disables prefetching (the "Read (no
    /// prefetching)" series of Figure 3b).
    pub prefetch_window: usize,
    /// Completed stripes accumulated per background drain job. Each job
    /// groups its stripes by owning server and issues one pipelined
    /// `set_many` per server, so larger batches amortize round trips; 1
    /// reproduces the unbatched per-stripe drain. Values above
    /// `write_buffer_stripes()` are clamped to the in-flight budget.
    pub write_batch_stripes: usize,
    /// TCP connections per storage server when mounting over the network
    /// transport (the [`memfs_memkv::PoolConfig::connections`] knob).
    /// In-process mounts ignore it.
    pub pool_connections: usize,
    /// Shared epoll reactor threads a TCP mount runs
    /// ([`crate::MemFs::connect`]). The default `1` multiplexes every
    /// server's connections on one thread — the replacement for the old
    /// implicit thread-per-server shape; clients are spread round-robin
    /// over the reactors when larger. Capped at the server count.
    /// In-process mounts ignore it.
    pub reactor_threads: usize,
    /// How many per-server batches a fan-out keeps on the wire at once
    /// (paper §3.2.2: symmetrical striping drives all N servers at once).
    /// Evented transports treat this as an in-flight submit budget on the
    /// calling thread; blocking transports as a dispatcher worker count.
    /// `0` means auto — full fan-out, every server busy concurrently;
    /// `1` forces sequential per-server dispatch (a bench baseline).
    pub io_parallelism: usize,
    /// Key distribution scheme.
    pub distributor: DistributorKind,
    /// Replication factor (1 = the paper's configuration). With `r > 1`
    /// every key is stored on `r` consecutive servers and the mount
    /// tolerates `r - 1` server failures, at the capacity and traffic
    /// cost the paper quantifies in §3.2.5.
    pub replication: usize,
}

impl Default for MemFsConfig {
    fn default() -> Self {
        MemFsConfig {
            stripe_size: 512 << 10,
            write_buffer_size: 8 << 20,
            read_cache_size: 8 << 20,
            writer_threads: 2,
            prefetch_threads: 4,
            prefetch_window: 8,
            write_batch_stripes: 8,
            pool_connections: 4,
            reactor_threads: 1,
            io_parallelism: 0,
            distributor: DistributorKind::default(),
            replication: 1,
        }
    }
}

impl MemFsConfig {
    /// Validate invariants; called by [`crate::MemFs::new`].
    pub fn validate(&self) -> Result<(), String> {
        if self.stripe_size == 0 {
            return Err("stripe_size must be positive".into());
        }
        if self.write_buffer_size < self.stripe_size {
            return Err(format!(
                "write_buffer_size ({}) must hold at least one stripe ({})",
                self.write_buffer_size, self.stripe_size
            ));
        }
        if self.prefetch_window > 0 && self.read_cache_size < self.stripe_size {
            return Err(format!(
                "read_cache_size ({}) must hold at least one stripe ({}) when prefetching",
                self.read_cache_size, self.stripe_size
            ));
        }
        if self.writer_threads == 0 {
            return Err("writer_threads must be at least 1".into());
        }
        if self.prefetch_window > 0 && self.prefetch_threads == 0 {
            return Err("prefetch_threads must be at least 1 when prefetching".into());
        }
        if let DistributorKind::Ketama { points_per_server } = self.distributor {
            if points_per_server == 0 {
                return Err("ketama needs at least one point per server".into());
            }
        }
        if self.replication == 0 {
            return Err("replication factor must be at least 1".into());
        }
        if self.write_batch_stripes == 0 {
            return Err("write_batch_stripes must be at least 1".into());
        }
        if self.pool_connections == 0 {
            return Err("pool_connections must be at least 1".into());
        }
        if self.reactor_threads == 0 {
            return Err("reactor_threads must be at least 1".into());
        }
        Ok(())
    }

    /// Max stripes the write buffer may hold in flight.
    pub fn write_buffer_stripes(&self) -> usize {
        (self.write_buffer_size / self.stripe_size).max(1)
    }

    /// Workers in the mount's shared I/O engine when it serves
    /// `n_servers` backends: enough for one full per-server fan-out plus
    /// the background drain/prefetch jobs that issue those fan-outs.
    /// Bounded by the config, not by how many files are open.
    pub fn engine_threads(&self, n_servers: usize) -> usize {
        let fanout_width = if self.io_parallelism == 1 || n_servers <= 1 {
            0
        } else if self.io_parallelism == 0 {
            n_servers
        } else {
            self.io_parallelism
        };
        let background_width = self
            .writer_threads
            .max(if self.prefetch_window > 0 {
                self.prefetch_threads
            } else {
                0
            })
            .max(1);
        fanout_width + background_width
    }

    /// Max stripes the read cache may hold.
    pub fn read_cache_stripes(&self) -> usize {
        (self.read_cache_size / self.stripe_size).max(1)
    }

    /// Builder-style setter for the stripe size.
    pub fn with_stripe_size(mut self, bytes: usize) -> Self {
        self.stripe_size = bytes;
        self
    }

    /// Builder-style setter for thread counts (writers and prefetchers).
    pub fn with_threads(mut self, writers: usize, prefetchers: usize) -> Self {
        self.writer_threads = writers;
        self.prefetch_threads = prefetchers;
        self
    }

    /// Disable prefetching (Figure 3b's "no prefetching" series).
    pub fn without_prefetch(mut self) -> Self {
        self.prefetch_window = 0;
        self
    }

    /// Builder-style setter for the replication factor.
    pub fn with_replication(mut self, r: usize) -> Self {
        self.replication = r;
        self
    }

    /// Builder-style setter for the write-drain batch size.
    pub fn with_write_batch_stripes(mut self, stripes: usize) -> Self {
        self.write_batch_stripes = stripes;
        self
    }

    /// Builder-style setter for per-server TCP connection count.
    pub fn with_pool_connections(mut self, connections: usize) -> Self {
        self.pool_connections = connections;
        self
    }

    /// Builder-style setter for the shared reactor thread count.
    pub fn with_reactor_threads(mut self, reactors: usize) -> Self {
        self.reactor_threads = reactors;
        self
    }

    /// Builder-style setter for the fan-out width (`0` = full fan-out,
    /// `1` = sequential dispatch).
    pub fn with_io_parallelism(mut self, width: usize) -> Self {
        self.io_parallelism = width;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper() {
        let c = MemFsConfig::default();
        assert_eq!(c.stripe_size, 512 * 1024);
        assert_eq!(c.write_buffer_size, 8 * 1024 * 1024);
        assert_eq!(c.read_cache_size, 8 * 1024 * 1024);
        assert!(c.validate().is_ok());
        assert_eq!(c.write_buffer_stripes(), 16);
        assert_eq!(c.read_cache_stripes(), 16);
        assert_eq!(c.write_batch_stripes, 8);
        assert_eq!(c.pool_connections, 4);
        assert_eq!(c.reactor_threads, 1, "one shared reactor per mount");
        assert_eq!(c.io_parallelism, 0, "auto: one dispatcher per server");
    }

    #[test]
    fn engine_threads_covers_fanout_plus_background() {
        let c = MemFsConfig::default(); // writers 2, prefetchers 4, auto fan-out
        assert_eq!(c.engine_threads(4), 4 + 4);
        assert_eq!(c.engine_threads(1), 4, "single server: no fan-out slots");
        let seq = MemFsConfig::default().with_io_parallelism(1);
        assert_eq!(
            seq.engine_threads(8),
            4,
            "sequential dispatch: background only"
        );
        let fixed = MemFsConfig::default().with_io_parallelism(3);
        assert_eq!(fixed.engine_threads(8), 3 + 4);
        let mut nopf = MemFsConfig::default().without_prefetch();
        nopf.prefetch_threads = 0;
        assert_eq!(nopf.engine_threads(2), 2 + 2, "writers only in background");
    }

    #[test]
    fn io_parallelism_builder_sets_width() {
        let c = MemFsConfig::default().with_io_parallelism(2);
        assert_eq!(c.io_parallelism, 2);
        assert!(c.validate().is_ok());
        // 1 (sequential) and 0 (auto) are both valid.
        assert!(MemFsConfig::default()
            .with_io_parallelism(1)
            .validate()
            .is_ok());
    }

    #[test]
    fn validation_catches_bad_configs() {
        assert!(MemFsConfig::default()
            .with_stripe_size(0)
            .validate()
            .is_err());
        let c = MemFsConfig {
            write_buffer_size: 1024,
            ..MemFsConfig::default()
        };
        assert!(c.validate().is_err());
        let c = MemFsConfig::default().with_threads(0, 4);
        assert!(c.validate().is_err());
        let c = MemFsConfig {
            distributor: DistributorKind::Ketama {
                points_per_server: 0,
            },
            ..MemFsConfig::default()
        };
        assert!(c.validate().is_err());
        let c = MemFsConfig::default().with_write_batch_stripes(0);
        assert!(c.validate().is_err());
        let c = MemFsConfig::default().with_pool_connections(0);
        assert!(c.validate().is_err());
        let c = MemFsConfig::default().with_reactor_threads(0);
        assert!(c.validate().is_err());
    }

    #[test]
    fn no_prefetch_mode_allows_zero_prefetch_threads() {
        let mut c = MemFsConfig::default().without_prefetch();
        c.prefetch_threads = 0;
        assert!(c.validate().is_ok());
    }
}
