//! Path handling: MemFS uses absolute, `/`-separated, normalized paths as
//! its canonical file identifiers (they are embedded verbatim in storage
//! keys, so normalization must be exact and stable).
//!
//! Because the memcached key space cannot carry whitespace or control
//! bytes, paths containing them are rejected up front. A production FUSE
//! deployment would escape such names; for the MTC workloads of the paper
//! (Montage/BLAST intermediate files) plain names are the reality.

use crate::error::{MemFsError, MemFsResult};

/// Normalize `raw` to a canonical absolute path:
/// collapse `//`, resolve `.` and `..` (never above the root), strip any
/// trailing slash (except for the root itself).
///
/// Errors on relative paths and on names the key layer cannot carry.
pub fn normalize(raw: &str) -> MemFsResult<String> {
    if !raw.starts_with('/') {
        return Err(MemFsError::InvalidPath(raw.to_string()));
    }
    if raw.bytes().any(|b| b <= b' ' || b == 0x7f) {
        return Err(MemFsError::InvalidPath(raw.to_string()));
    }
    let mut parts: Vec<&str> = Vec::new();
    for comp in raw.split('/') {
        match comp {
            "" | "." => {}
            ".." => {
                parts.pop();
            }
            name => parts.push(name),
        }
    }
    if parts.is_empty() {
        Ok("/".to_string())
    } else {
        Ok(format!("/{}", parts.join("/")))
    }
}

/// The parent directory of a normalized path (`/` is its own parent).
pub fn parent(path: &str) -> &str {
    debug_assert!(path.starts_with('/'));
    match path.rfind('/') {
        Some(0) | None => "/",
        Some(i) => &path[..i],
    }
}

/// The final component of a normalized path (empty for the root).
pub fn basename(path: &str) -> &str {
    debug_assert!(path.starts_with('/'));
    match path.rfind('/') {
        Some(i) => &path[i + 1..],
        None => path,
    }
}

/// Join a normalized directory path and a child name.
pub fn join(dir: &str, name: &str) -> String {
    if dir == "/" {
        format!("/{name}")
    } else {
        format!("{dir}/{name}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normalization_rules() {
        assert_eq!(normalize("/a/b").unwrap(), "/a/b");
        assert_eq!(normalize("/a//b/").unwrap(), "/a/b");
        assert_eq!(normalize("/a/./b").unwrap(), "/a/b");
        assert_eq!(normalize("/a/../b").unwrap(), "/b");
        assert_eq!(normalize("/../..").unwrap(), "/");
        assert_eq!(normalize("/").unwrap(), "/");
    }

    #[test]
    fn rejects_relative_and_unrepresentable() {
        assert!(normalize("relative/path").is_err());
        assert!(normalize("").is_err());
        assert!(normalize("/has space").is_err());
        assert!(normalize("/has\ttab").is_err());
        assert!(normalize("/has\nnl").is_err());
    }

    #[test]
    fn parent_and_basename() {
        assert_eq!(parent("/a/b/c"), "/a/b");
        assert_eq!(parent("/a"), "/");
        assert_eq!(parent("/"), "/");
        assert_eq!(basename("/a/b/c"), "c");
        assert_eq!(basename("/a"), "a");
        assert_eq!(basename("/"), "");
    }

    #[test]
    fn join_handles_root() {
        assert_eq!(join("/", "x"), "/x");
        assert_eq!(join("/a", "x"), "/a/x");
    }

    #[test]
    fn join_then_parent_round_trips() {
        for dir in ["/", "/a", "/a/b"] {
            let joined = join(dir, "leaf");
            assert_eq!(parent(&joined), dir);
            assert_eq!(basename(&joined), "leaf");
        }
    }
}
