//! The striping mechanism (paper §3.2.1): mapping byte ranges to fixed-size
//! stripes.
//!
//! Striping is what lifts MemFS above memcached's per-item limit, turns
//! single-file I/O into parallel streams against many servers, and lets
//! applications read small parts of large files without transferring the
//! whole file.

/// One contiguous piece of a byte range within a single stripe.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StripeSpan {
    /// Which stripe (zero-based).
    pub stripe: u64,
    /// Offset of the piece inside the stripe.
    pub offset_in_stripe: usize,
    /// Length of the piece.
    pub len: usize,
}

/// Stripe arithmetic for a fixed stripe size.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StripeLayout {
    stripe_size: usize,
}

impl StripeLayout {
    /// A layout with the given stripe size.
    ///
    /// # Panics
    /// Panics if `stripe_size == 0`.
    pub fn new(stripe_size: usize) -> Self {
        assert!(stripe_size > 0, "stripe size must be positive");
        StripeLayout { stripe_size }
    }

    /// The stripe size in bytes.
    pub fn stripe_size(&self) -> usize {
        self.stripe_size
    }

    /// Number of stripes a file of `file_size` bytes occupies (0 for an
    /// empty file).
    pub fn stripe_count(&self, file_size: u64) -> u64 {
        file_size.div_ceil(self.stripe_size as u64)
    }

    /// The stripe containing byte `offset`.
    pub fn stripe_of(&self, offset: u64) -> u64 {
        offset / self.stripe_size as u64
    }

    /// Size of stripe `stripe` in a file of `file_size` bytes (the last
    /// stripe may be partial; stripes past the end are zero-sized).
    pub fn stripe_len(&self, file_size: u64, stripe: u64) -> usize {
        let start = stripe * self.stripe_size as u64;
        if start >= file_size {
            return 0;
        }
        ((file_size - start) as usize).min(self.stripe_size)
    }

    /// Decompose the range `[offset, offset + len)` clamped to
    /// `[0, file_size)` into per-stripe spans, in stripe order.
    ///
    /// This is the read path's planner: each span becomes one KV `get`
    /// (or a cache hit). Small reads touch exactly one stripe — the
    /// "optimizes small reads" property of §3.2.1.
    pub fn spans(&self, file_size: u64, offset: u64, len: usize) -> Vec<StripeSpan> {
        let end = offset.saturating_add(len as u64).min(file_size);
        if offset >= end {
            return Vec::new();
        }
        let mut spans = Vec::new();
        let mut pos = offset;
        while pos < end {
            let stripe = self.stripe_of(pos);
            let stripe_start = stripe * self.stripe_size as u64;
            let offset_in_stripe = (pos - stripe_start) as usize;
            let span_len = ((end - pos) as usize).min(self.stripe_size - offset_in_stripe);
            spans.push(StripeSpan {
                stripe,
                offset_in_stripe,
                len: span_len,
            });
            pos += span_len as u64;
        }
        spans
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stripe_counts() {
        let l = StripeLayout::new(100);
        assert_eq!(l.stripe_count(0), 0);
        assert_eq!(l.stripe_count(1), 1);
        assert_eq!(l.stripe_count(100), 1);
        assert_eq!(l.stripe_count(101), 2);
        assert_eq!(l.stripe_count(1000), 10);
    }

    #[test]
    fn stripe_lengths_including_partial_tail() {
        let l = StripeLayout::new(100);
        assert_eq!(l.stripe_len(250, 0), 100);
        assert_eq!(l.stripe_len(250, 1), 100);
        assert_eq!(l.stripe_len(250, 2), 50);
        assert_eq!(l.stripe_len(250, 3), 0);
        assert_eq!(l.stripe_len(0, 0), 0);
    }

    #[test]
    fn single_stripe_read() {
        let l = StripeLayout::new(100);
        let spans = l.spans(1000, 250, 20);
        assert_eq!(
            spans,
            vec![StripeSpan {
                stripe: 2,
                offset_in_stripe: 50,
                len: 20
            }]
        );
    }

    #[test]
    fn multi_stripe_read_crosses_boundaries() {
        let l = StripeLayout::new(100);
        let spans = l.spans(1000, 95, 210);
        assert_eq!(
            spans,
            vec![
                StripeSpan {
                    stripe: 0,
                    offset_in_stripe: 95,
                    len: 5
                },
                StripeSpan {
                    stripe: 1,
                    offset_in_stripe: 0,
                    len: 100
                },
                StripeSpan {
                    stripe: 2,
                    offset_in_stripe: 0,
                    len: 100
                },
                StripeSpan {
                    stripe: 3,
                    offset_in_stripe: 0,
                    len: 5
                },
            ]
        );
    }

    #[test]
    fn reads_clamp_to_file_size() {
        let l = StripeLayout::new(100);
        let spans = l.spans(120, 100, 500);
        assert_eq!(
            spans,
            vec![StripeSpan {
                stripe: 1,
                offset_in_stripe: 0,
                len: 20
            }]
        );
        assert!(l.spans(120, 120, 10).is_empty());
        assert!(l.spans(120, 500, 10).is_empty());
        assert!(l.spans(120, 0, 0).is_empty());
    }

    #[test]
    fn spans_cover_range_exactly() {
        let l = StripeLayout::new(64);
        for (offset, len) in [(0u64, 1usize), (63, 2), (0, 64), (1, 127), (200, 500)] {
            let spans = l.spans(1000, offset, len);
            let total: usize = spans.iter().map(|s| s.len).sum();
            let expected = ((offset + len as u64).min(1000) - offset.min(1000)) as usize;
            assert_eq!(total, expected, "offset {offset} len {len}");
            // Spans are contiguous.
            let mut pos = offset;
            for s in &spans {
                assert_eq!(s.stripe * 64 + s.offset_in_stripe as u64, pos);
                pos += s.len as u64;
            }
        }
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_stripe_size_panics() {
        StripeLayout::new(0);
    }
}
