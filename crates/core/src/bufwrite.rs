//! The write-buffering protocol (paper §3.2.2).
//!
//! Writes land in a per-file buffer; whenever a full batch of stripes
//! accumulates it drains through the mount's shared I/O engine, which
//! `set`s it on the owning storage servers asynchronously. The buffer bounds in-flight data
//! (8 MiB by default — the paper's per-open-file cache), applying
//! backpressure to the writer when the network cannot keep up.
//! "Whenever an application calls close(), or flush(), our file system
//! waits until the write buffer has been emptied and then returns."

use std::sync::Arc;

use bytes::{Bytes, BytesMut};
use memfs_hashring::schema::KeySchema;
use parking_lot::{Condvar, Mutex};

use crate::error::{MemFsError, MemFsResult};
use crate::layout::StripeLayout;
use crate::pool::ServerPool;
use crate::threadpool::IoEngine;

/// Shared completion state between the buffer and its in-flight jobs.
struct Shared {
    state: Mutex<Pending>,
    cv: Condvar,
}

struct Pending {
    inflight: usize,
    /// First storage error observed by any background writer; surfaced at
    /// the next flush/close.
    error: Option<MemFsError>,
}

/// A buffered, striped writer for one file.
pub struct WriteBuffer {
    path: String,
    layout: StripeLayout,
    pool: Arc<ServerPool>,
    engine: Arc<IoEngine>,
    current: BytesMut,
    /// Completed stripes waiting to travel as one batched `set_many`.
    batch: Vec<(Bytes, Bytes)>,
    batch_stripes: usize,
    next_stripe: u64,
    written: u64,
    max_inflight: usize,
    shared: Arc<Shared>,
}

impl WriteBuffer {
    /// Create a writer for `path` striping with `layout`, draining through
    /// the mount's shared `engine` onto `pool`, with at most
    /// `max_inflight` stripes in the air (the 8 MiB buffer divided by the
    /// stripe size).
    ///
    /// Completed stripes accumulate into groups of `batch_stripes` before
    /// a drain job is submitted; each job issues per-server pipelined
    /// `set_many` batches instead of one round trip per stripe.
    /// `batch_stripes = 1` reproduces the unbatched per-stripe behaviour.
    pub fn new(
        path: String,
        layout: StripeLayout,
        pool: Arc<ServerPool>,
        engine: Arc<IoEngine>,
        max_inflight: usize,
        batch_stripes: usize,
    ) -> Self {
        WriteBuffer {
            path,
            current: BytesMut::with_capacity(layout.stripe_size()),
            layout,
            pool,
            engine,
            batch: Vec::new(),
            batch_stripes: batch_stripes.clamp(1, max_inflight.max(1)),
            next_stripe: 0,
            written: 0,
            max_inflight: max_inflight.max(1),
            shared: Arc::new(Shared {
                state: Mutex::new(Pending {
                    inflight: 0,
                    error: None,
                }),
                cv: Condvar::new(),
            }),
        }
    }

    /// Bytes accepted so far (the file offset of the next write).
    pub fn written(&self) -> u64 {
        self.written
    }

    /// Append `data` sequentially, submitting completed stripes to the
    /// background pool. Blocks only when `max_inflight` stripes are
    /// already in the air.
    ///
    /// Slice input pays exactly one staging copy (into the stripe
    /// buffer); from there the stripe travels to the socket by refcount.
    /// Callers that already own [`Bytes`] should use
    /// [`write_bytes`](Self::write_bytes) and skip that copy too.
    pub fn write(&mut self, mut data: &[u8]) -> MemFsResult<()> {
        self.check_error()?;
        while !data.is_empty() {
            let room = self.layout.stripe_size() - self.current.len();
            let take = room.min(data.len());
            memfs_memkv::audit::count_staged(take);
            self.current.extend_from_slice(&data[..take]);
            data = &data[take..];
            self.written += take as u64;
            if self.current.len() == self.layout.stripe_size() {
                self.submit_current()?;
            }
        }
        Ok(())
    }

    /// Append `data` sequentially without staging: stripe-aligned spans
    /// are sliced straight out of `data` (a refcount bump, no copy) and
    /// handed to the pool as-is — zero payload copies between the
    /// caller's buffer and the socket. Only spans that must merge with a
    /// partial stripe (an unaligned head or tail) are copied into the
    /// stripe buffer, and those are the write path's single copy.
    pub fn write_bytes(&mut self, mut data: Bytes) -> MemFsResult<()> {
        self.check_error()?;
        while !data.is_empty() {
            if self.current.is_empty() && data.len() >= self.layout.stripe_size() {
                let stripe = data.split_to(self.layout.stripe_size());
                self.written += stripe.len() as u64;
                self.push_stripe(stripe)?;
                continue;
            }
            let room = self.layout.stripe_size() - self.current.len();
            let take = room.min(data.len());
            memfs_memkv::audit::count_staged(take);
            self.current.extend_from_slice(&data[..take]);
            let _ = data.split_to(take);
            self.written += take as u64;
            if self.current.len() == self.layout.stripe_size() {
                self.submit_current()?;
            }
        }
        Ok(())
    }

    /// Wait for all in-flight stripes to be stored (the partial tail
    /// stripe stays buffered — it can still grow). Completed stripes
    /// still waiting in the current batch are submitted first, so every
    /// full stripe written before `flush` is durable when it returns.
    pub fn flush(&mut self) -> MemFsResult<()> {
        self.submit_batch()?;
        let mut state = self.shared.state.lock();
        while state.inflight > 0 {
            self.shared.cv.wait(&mut state);
        }
        if let Some(e) = state.error.take() {
            return Err(e);
        }
        Ok(())
    }

    /// Submit the partial tail stripe (if any) and drain completely.
    /// Returns the final file size. The buffer must not be written again.
    pub fn finish(&mut self) -> MemFsResult<u64> {
        if !self.current.is_empty() {
            self.submit_current()?;
        }
        self.flush()?;
        Ok(self.written)
    }

    fn check_error(&self) -> MemFsResult<()> {
        let mut state = self.shared.state.lock();
        if let Some(e) = state.error.take() {
            return Err(e);
        }
        Ok(())
    }

    /// Move the completed stripe into the pending batch, draining it to
    /// the workers once `batch_stripes` have accumulated.
    fn submit_current(&mut self) -> MemFsResult<()> {
        let payload = self.current.split().freeze();
        self.push_stripe(payload)
    }

    /// Queue one completed stripe payload under the next stripe key.
    fn push_stripe(&mut self, payload: Bytes) -> MemFsResult<()> {
        let key = Bytes::from(KeySchema::stripe_key(&self.path, self.next_stripe));
        self.next_stripe += 1;
        self.batch.push((key, payload));
        if self.batch.len() >= self.batch_stripes {
            self.submit_batch()?;
        }
        Ok(())
    }

    /// Hand the pending batch to the shared engine as one drain job. The
    /// job issues one pipelined `set_many` per owning server — the pool
    /// fans those per-server batches (including replica copies) out in
    /// parallel on the same engine (the nested fan-out the helping wait
    /// exists for), so a batch of `b` stripes costs one *concurrent*
    /// round trip per server rather than `b` sequential round trips.
    fn submit_batch(&mut self) -> MemFsResult<()> {
        if self.batch.is_empty() {
            return Ok(());
        }
        let items = std::mem::take(&mut self.batch);
        let n = items.len();

        // Backpressure: cap in-flight stripes at the buffer budget.
        {
            let mut state = self.shared.state.lock();
            while state.inflight >= self.max_inflight && state.error.is_none() {
                self.shared.cv.wait(&mut state);
            }
            if let Some(e) = state.error.take() {
                return Err(e);
            }
            state.inflight += n;
        }

        let pool = Arc::clone(&self.pool);
        let shared = Arc::clone(&self.shared);
        self.engine.execute(move || {
            let result = pool.set_many(&items);
            let mut state = shared.state.lock();
            state.inflight -= n;
            if let Err(e) = result {
                state.error.get_or_insert(e);
            }
            shared.cv.notify_all();
        });
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::DistributorKind;
    use memfs_memkv::{KvClient, LocalClient, Store, StoreConfig};

    fn make_pool(n: usize, budget: u64) -> Arc<ServerPool> {
        let clients: Vec<Arc<dyn KvClient>> = (0..n)
            .map(|_| {
                let cfg = StoreConfig {
                    memory_budget: budget,
                    ..StoreConfig::default()
                };
                Arc::new(LocalClient::new(Arc::new(Store::new(cfg)))) as Arc<dyn KvClient>
            })
            .collect();
        Arc::new(ServerPool::new(clients, DistributorKind::default()))
    }

    fn read_back(pool: &ServerPool, path: &str, size: u64, stripe: usize) -> Vec<u8> {
        let layout = StripeLayout::new(stripe);
        let mut out = Vec::new();
        for s in 0..layout.stripe_count(size) {
            let key = KeySchema::stripe_key(path, s);
            out.extend_from_slice(&pool.get(&key).unwrap());
        }
        out
    }

    #[test]
    fn writes_stripe_and_store_everything() {
        let pool = make_pool(4, 1 << 30);
        let workers = Arc::new(IoEngine::new(4, "w"));
        let layout = StripeLayout::new(100);
        let mut buf = WriteBuffer::new("/f".into(), layout, Arc::clone(&pool), workers, 4, 2);
        let data: Vec<u8> = (0..1050u32).map(|i| (i % 251) as u8).collect();
        buf.write(&data).unwrap();
        let size = buf.finish().unwrap();
        assert_eq!(size, 1050);
        assert_eq!(read_back(&pool, "/f", size, 100), data);
    }

    #[test]
    fn partial_tail_stripe_stored_on_finish() {
        let pool = make_pool(2, 1 << 30);
        let workers = Arc::new(IoEngine::new(2, "w"));
        let mut buf = WriteBuffer::new(
            "/f".into(),
            StripeLayout::new(100),
            Arc::clone(&pool),
            workers,
            2,
            2,
        );
        buf.write(b"short").unwrap();
        assert_eq!(buf.finish().unwrap(), 5);
        let key = KeySchema::stripe_key("/f", 0);
        assert_eq!(pool.get(&key).unwrap().as_ref(), b"short");
    }

    #[test]
    fn empty_file_has_no_stripes() {
        let pool = make_pool(2, 1 << 30);
        let workers = Arc::new(IoEngine::new(2, "w"));
        let mut buf = WriteBuffer::new(
            "/e".into(),
            StripeLayout::new(100),
            Arc::clone(&pool),
            workers,
            2,
            2,
        );
        assert_eq!(buf.finish().unwrap(), 0);
        assert!(!pool.contains(&KeySchema::stripe_key("/e", 0)));
    }

    #[test]
    fn many_small_writes_accumulate() {
        let pool = make_pool(4, 1 << 30);
        let workers = Arc::new(IoEngine::new(4, "w"));
        let mut buf = WriteBuffer::new(
            "/f".into(),
            StripeLayout::new(64),
            Arc::clone(&pool),
            workers,
            4,
            4,
        );
        let mut expected = Vec::new();
        for i in 0..500u32 {
            let chunk = i.to_le_bytes();
            buf.write(&chunk).unwrap();
            expected.extend_from_slice(&chunk);
        }
        let size = buf.finish().unwrap();
        assert_eq!(size, 2000);
        assert_eq!(read_back(&pool, "/f", size, 64), expected);
    }

    #[test]
    fn background_storage_error_surfaces_at_finish() {
        // Tiny budget: stripes stop fitting quickly.
        let pool = make_pool(1, 300);
        let workers = Arc::new(IoEngine::new(2, "w"));
        let mut buf = WriteBuffer::new(
            "/f".into(),
            StripeLayout::new(100),
            Arc::clone(&pool),
            workers,
            2,
            2,
        );
        let data = vec![0u8; 5_000];
        // The error may surface during write (backpressure path) or at
        // finish; it must surface somewhere.
        let result = buf.write(&data).and_then(|_| buf.finish().map(|_| ()));
        assert!(matches!(result, Err(MemFsError::Storage(_))));
    }

    #[test]
    fn flush_leaves_tail_writable() {
        let pool = make_pool(2, 1 << 30);
        let workers = Arc::new(IoEngine::new(2, "w"));
        let mut buf = WriteBuffer::new(
            "/f".into(),
            StripeLayout::new(100),
            Arc::clone(&pool),
            workers,
            2,
            2,
        );
        buf.write(&[1u8; 150]).unwrap();
        buf.flush().unwrap();
        // Stripe 0 is durable after flush; the 50-byte tail is not.
        assert_eq!(
            pool.get(&KeySchema::stripe_key("/f", 0)).unwrap().len(),
            100
        );
        buf.write(&[2u8; 50]).unwrap();
        let size = buf.finish().unwrap();
        assert_eq!(size, 200);
        let tail = pool.get(&KeySchema::stripe_key("/f", 1)).unwrap();
        assert_eq!(&tail[..50], &[1u8; 50][..]);
        assert_eq!(&tail[50..], &[2u8; 50][..]);
    }

    #[test]
    fn batched_drain_stores_every_stripe_in_order() {
        // batch_stripes 4 over 13 completed stripes: three full batches
        // plus a partial one carrying the tail at finish.
        let pool = make_pool(4, 1 << 30);
        let workers = Arc::new(IoEngine::new(4, "w"));
        let mut buf = WriteBuffer::new(
            "/b".into(),
            StripeLayout::new(100),
            Arc::clone(&pool),
            Arc::clone(&workers),
            8,
            4,
        );
        let data: Vec<u8> = (0..1350u32).map(|i| (i % 253) as u8).collect();
        for chunk in data.chunks(7) {
            buf.write(chunk).unwrap();
        }
        let size = buf.finish().unwrap();
        assert_eq!(size, 1350);
        assert_eq!(read_back(&pool, "/b", size, 100), data);
    }

    #[test]
    fn batch_larger_than_inflight_budget_is_clamped() {
        // batch_stripes > max_inflight would let one batch overshoot the
        // in-flight budget arbitrarily if not clamped; the writer must
        // still drain correctly with the clamped batch.
        let pool = make_pool(2, 1 << 30);
        let workers = Arc::new(IoEngine::new(2, "w"));
        let mut buf = WriteBuffer::new(
            "/c".into(),
            StripeLayout::new(100),
            Arc::clone(&pool),
            workers,
            2,
            64,
        );
        let data = vec![9u8; 1000];
        buf.write(&data).unwrap();
        let size = buf.finish().unwrap();
        assert_eq!(size, 1000);
        assert_eq!(read_back(&pool, "/c", size, 100), data);
    }

    #[test]
    fn write_bytes_round_trips_aligned_stripes() {
        let pool = make_pool(4, 1 << 30);
        let workers = Arc::new(IoEngine::new(4, "w"));
        let mut buf = WriteBuffer::new(
            "/zb".into(),
            StripeLayout::new(100),
            Arc::clone(&pool),
            workers,
            4,
            2,
        );
        let data: Vec<u8> = (0..700u32).map(|i| (i % 241) as u8).collect();
        buf.write_bytes(Bytes::from(data.clone())).unwrap();
        let size = buf.finish().unwrap();
        assert_eq!(size, 700);
        assert_eq!(read_back(&pool, "/zb", size, 100), data);
    }

    #[test]
    fn write_bytes_handles_unaligned_head_and_tail() {
        // A slice write leaves a partial stripe; the Bytes write must
        // merge into it, then go zero-copy once realigned, then buffer
        // its own partial tail.
        let pool = make_pool(4, 1 << 30);
        let workers = Arc::new(IoEngine::new(4, "w"));
        let mut buf = WriteBuffer::new(
            "/zu".into(),
            StripeLayout::new(100),
            Arc::clone(&pool),
            workers,
            4,
            2,
        );
        let mut expected = Vec::new();
        let head = vec![3u8; 37];
        buf.write(&head).unwrap();
        expected.extend_from_slice(&head);
        let bulk: Vec<u8> = (0..333u32).map(|i| (i % 239) as u8).collect();
        buf.write_bytes(Bytes::from(bulk.clone())).unwrap();
        expected.extend_from_slice(&bulk);
        buf.write_bytes(Bytes::from_static(b"tail")).unwrap();
        expected.extend_from_slice(b"tail");
        let size = buf.finish().unwrap();
        assert_eq!(size, expected.len() as u64);
        assert_eq!(read_back(&pool, "/zu", size, 100), expected);
    }

    #[test]
    fn stripes_distribute_across_servers() {
        let pool = make_pool(8, 1 << 30);
        let workers = Arc::new(IoEngine::new(4, "w"));
        let mut buf = WriteBuffer::new(
            "/big".into(),
            StripeLayout::new(1024),
            Arc::clone(&pool),
            workers,
            8,
            4,
        );
        buf.write(&vec![0u8; 64 * 1024]).unwrap();
        buf.finish().unwrap();
        // 64 stripes over 8 servers: every server should hold some.
        let mut counts = vec![0usize; 8];
        for s in 0..64u64 {
            let key = KeySchema::stripe_key("/big", s);
            counts[pool.server_for(&key).0] += 1;
        }
        assert!(counts.iter().all(|&c| c > 0), "imbalanced: {counts:?}");
    }
}
