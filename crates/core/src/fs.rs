//! The MemFS mount: the interface an MTC application sees (the FUSE-client
//! role of paper §3.1.3), with write-once / read-many semantics (§3.2.3).
//!
//! Each [`MemFs`] value corresponds to one mountpoint: it owns a single
//! shared [`IoEngine`] — one dispatcher whose workers serve the
//! per-server fan-out, the write drains, and the prefetchers of *every*
//! file opened through the mount, so the thread count is bounded by the
//! config rather than by how many files are open.
//! Creating several `MemFs` values over the same server list
//! reproduces the paper's multi-mountpoint deployment (the fix for the
//! FUSE NUMA-spinlock bottleneck of Figure 10) — placement is a pure
//! function of the key, so all mounts see the same namespace.

use std::io;
use std::sync::Arc;

use bytes::Bytes;
use memfs_hashring::schema::KeySchema;
use memfs_memkv::{KvClient, KvError};

use crate::bufwrite::WriteBuffer;
use crate::config::MemFsConfig;
use crate::error::{MemFsError, MemFsResult};
use crate::layout::StripeLayout;
use crate::meta::{self, ChildKind, SizeRecord};
use crate::path;
use crate::pool::ServerPool;
use crate::prefetch::StripeReader;
use crate::threadpool::IoEngine;

/// Kind of a namespace entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EntryKind {
    /// Regular file.
    File,
    /// Directory.
    Dir,
}

/// One `readdir` result.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DirEntry {
    /// Child name (not the full path).
    pub name: String,
    /// File or directory.
    pub kind: EntryKind,
}

/// Result of [`MemFs::stat`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FileStat {
    /// File or directory.
    pub kind: EntryKind,
    /// File size in bytes (0 for directories).
    pub size: u64,
    /// For files: whether the writer has closed it yet.
    pub finalized: bool,
}

struct Inner {
    pool: Arc<ServerPool>,
    config: MemFsConfig,
    engine: Arc<IoEngine>,
}

/// Stripe keys freed per `delete_many` round during unlink — bounds the
/// per-round allocation while still amortizing round trips.
const UNLINK_BATCH: usize = 1024;

/// Probe width when unlinking a never-finalized file: one batch of this
/// many stripe keys per round until a round deletes nothing.
const PROBE_BATCH: usize = 64;

/// Unlink rounds kept in flight at once: [`UNLINK_BATCH`]-keyed
/// `delete_many` rounds overlap on the engine so freeing a deep file
/// pays one round-trip latency per `UNLINK_PIPELINE` rounds, not per
/// round.
const UNLINK_PIPELINE: usize = 4;

fn stripe_key_bytes(path: &str, stripe: u64) -> Bytes {
    Bytes::from(KeySchema::stripe_key(path, stripe))
}

/// A MemFS mountpoint. Cheap to clone (all clones share the I/O engine).
#[derive(Clone)]
pub struct MemFs {
    inner: Arc<Inner>,
}

impl MemFs {
    /// Mount over `servers` with `config`.
    ///
    /// The first mount initializes the root directory; mounting an
    /// already-populated pool attaches to the existing namespace.
    pub fn new(servers: Vec<Arc<dyn KvClient>>, config: MemFsConfig) -> MemFsResult<MemFs> {
        if let Err(msg) = config.validate() {
            return Err(MemFsError::InvalidPath(format!("config: {msg}")));
        }
        // One engine for the whole mount: its workers run the drain and
        // prefetch jobs, plus the per-server fan-out batches when the
        // clients are blocking (nested submission is deadlock-free —
        // waiters help, see [`IoEngine`]). Evented clients fan out on the
        // caller's thread under the `io_parallelism` budget instead, so
        // the engine is sized for background jobs only.
        let n = servers.len();
        let evented = n > 1 && servers.iter().all(|c| c.supports_submit());
        let engine = Arc::new(IoEngine::new(
            config.engine_threads(if evented { 1 } else { n }),
            "memfs-io",
        ));
        let fanout = !evented && config.io_parallelism != 1 && n > 1;
        let pool = Arc::new(ServerPool::with_engine(
            servers,
            config.distributor,
            config.replication,
            fanout.then(|| Arc::clone(&engine)),
            config.io_parallelism,
        ));
        Self::mount(pool, config, engine)
    }

    /// Mount over TCP storage servers: connects one
    /// [`memfs_memkv::TcpClient`] per address, all registered on
    /// `config.reactor_threads` shared epoll reactors (default 1 — a
    /// single reactor thread drives the whole cluster and delivers
    /// completions in cross-server batches; clients round-robin over the
    /// reactors when more are configured). `config.pool_connections`
    /// sizes each server's connection pool.
    pub fn connect(
        addrs: &[impl std::net::ToSocketAddrs],
        config: MemFsConfig,
    ) -> MemFsResult<MemFs> {
        if let Err(msg) = config.validate() {
            return Err(MemFsError::InvalidPath(format!("config: {msg}")));
        }
        let n_reactors = config.reactor_threads.min(addrs.len().max(1));
        let reactors = memfs_memkv::ReactorSet::new(n_reactors).map_err(MemFsError::Storage)?;
        let pool_config = memfs_memkv::PoolConfig {
            connections: config.pool_connections,
            ..memfs_memkv::PoolConfig::default()
        };
        let mut servers: Vec<Arc<dyn KvClient>> = Vec::with_capacity(addrs.len());
        for (i, addr) in addrs.iter().enumerate() {
            let client = memfs_memkv::TcpClient::connect_shared(
                addr,
                pool_config.clone(),
                reactors.handle_for(i),
            )
            .map_err(MemFsError::Storage)?;
            servers.push(Arc::new(client));
        }
        Self::new(servers, config)
    }

    /// Mount over an existing [`ServerPool`] (lets several mounts share
    /// routing state, and lets tests inject custom pools). The mount's
    /// background jobs run on the pool's dispatcher when it has one, so
    /// pool-sharing mounts also share one engine.
    pub fn with_pool(pool: Arc<ServerPool>, config: MemFsConfig) -> MemFsResult<MemFs> {
        if let Err(msg) = config.validate() {
            return Err(MemFsError::InvalidPath(format!("config: {msg}")));
        }
        let engine = match pool.engine() {
            Some(e) => Arc::clone(e),
            // Sequential pool: background jobs still need somewhere to
            // run; size for them alone (no fan-out slots).
            None => Arc::new(IoEngine::new(config.engine_threads(1), "memfs-io")),
        };
        Self::mount(pool, config, engine)
    }

    fn mount(
        pool: Arc<ServerPool>,
        config: MemFsConfig,
        engine: Arc<IoEngine>,
    ) -> MemFsResult<MemFs> {
        let fs = MemFs {
            inner: Arc::new(Inner {
                pool,
                config,
                engine,
            }),
        };
        // Ensure the root directory exists; racing mounts both succeed.
        match fs.inner.pool.add(&KeySchema::dir_key("/"), Bytes::new()) {
            Ok(()) | Err(MemFsError::Storage(KvError::Exists)) => {}
            Err(e) => return Err(e),
        }
        Ok(fs)
    }

    /// The mount's configuration.
    pub fn config(&self) -> &MemFsConfig {
        &self.inner.config
    }

    /// The server pool behind this mount.
    pub fn pool(&self) -> &Arc<ServerPool> {
        &self.inner.pool
    }

    /// The mount's shared I/O engine — the one dispatcher every open
    /// file's drain, prefetch, and fan-out work runs on.
    pub fn engine(&self) -> &Arc<IoEngine> {
        &self.inner.engine
    }

    fn layout(&self) -> StripeLayout {
        StripeLayout::new(self.inner.config.stripe_size)
    }

    fn dir_exists(&self, dir: &str) -> MemFsResult<bool> {
        Ok(self.inner.pool.try_get(&KeySchema::dir_key(dir))?.is_some())
    }

    /// Create `path` for writing. Fails if the file or a directory of the
    /// same name exists (write-once: a file can be written exactly once),
    /// or if the parent directory is missing.
    pub fn create(&self, raw: &str) -> MemFsResult<WriteHandle> {
        let p = path::normalize(raw)?;
        if p == "/" {
            return Err(MemFsError::IsADirectory(p));
        }
        let parent = path::parent(&p).to_string();
        if !self.dir_exists(&parent)? {
            return Err(MemFsError::ParentNotFound(p));
        }
        if self.dir_exists(&p)? {
            return Err(MemFsError::AlreadyExists(p));
        }
        // The atomic `add` of the empty size record is the write-once
        // gate: the second creator loses, even from another mount.
        match self.inner.pool.add(&KeySchema::file_key(&p), Bytes::new()) {
            Ok(()) => {}
            Err(MemFsError::Storage(KvError::Exists)) => {
                return Err(MemFsError::WriteOnce(p));
            }
            Err(e) => return Err(e),
        }
        self.inner.pool.append(
            &KeySchema::dir_key(&parent),
            &meta::encode_add(path::basename(&p), ChildKind::File),
        )?;
        let buffer = WriteBuffer::new(
            p.clone(),
            self.layout(),
            Arc::clone(&self.inner.pool),
            Arc::clone(&self.inner.engine),
            self.inner.config.write_buffer_stripes(),
            self.inner.config.write_batch_stripes,
        );
        Ok(WriteHandle {
            fs: self.clone(),
            path: p,
            buffer: Some(buffer),
        })
    }

    /// Open `path` for reading. The file must have been closed by its
    /// writer (its size record finalized).
    pub fn open(&self, raw: &str) -> MemFsResult<ReadHandle> {
        let p = path::normalize(raw)?;
        let record = match self.inner.pool.try_get(&KeySchema::file_key(&p))? {
            Some(v) => v,
            None => {
                if self.dir_exists(&p)? {
                    return Err(MemFsError::IsADirectory(p));
                }
                return Err(MemFsError::NotFound(p));
            }
        };
        let size = match meta::decode_size(&record, &p)? {
            SizeRecord::Open => return Err(MemFsError::NotFinalized(p)),
            SizeRecord::Finalized(size) => size,
        };
        let reader = StripeReader::new(
            p.clone(),
            self.layout(),
            size,
            Arc::clone(&self.inner.pool),
            (self.inner.config.prefetch_window > 0).then(|| Arc::clone(&self.inner.engine)),
            self.inner.config.prefetch_window,
            self.inner.config.read_cache_stripes(),
        );
        Ok(ReadHandle {
            path: p,
            layout: self.layout(),
            reader: Arc::new(reader),
            pos: 0,
        })
    }

    /// Read a whole file into memory (convenience for small files).
    pub fn read_to_vec(&self, raw: &str) -> MemFsResult<Vec<u8>> {
        let handle = self.open(raw)?;
        let mut out = vec![0u8; handle.size() as usize];
        let n = handle.read_at(0, &mut out)?;
        out.truncate(n);
        Ok(out)
    }

    /// Write a whole file from a buffer (convenience).
    pub fn write_file(&self, raw: &str, data: &[u8]) -> MemFsResult<()> {
        let mut handle = self.create(raw)?;
        handle.write_all(data)?;
        handle.close()
    }

    /// Write a whole file from an owned [`Bytes`] buffer — the zero-copy
    /// convenience: stripe-aligned payload spans are sliced out of `data`
    /// by refcount and never staged again on the way to the sockets.
    pub fn write_file_bytes(&self, raw: &str, data: Bytes) -> MemFsResult<()> {
        let mut handle = self.create(raw)?;
        handle.write_bytes(data)?;
        handle.close()
    }

    /// Create directory `path`. The parent must exist.
    pub fn mkdir(&self, raw: &str) -> MemFsResult<()> {
        let p = path::normalize(raw)?;
        if p == "/" {
            return Err(MemFsError::AlreadyExists(p));
        }
        let parent = path::parent(&p).to_string();
        if !self.dir_exists(&parent)? {
            return Err(MemFsError::ParentNotFound(p));
        }
        if self.inner.pool.try_get(&KeySchema::file_key(&p))?.is_some() {
            return Err(MemFsError::AlreadyExists(p));
        }
        match self.inner.pool.add(&KeySchema::dir_key(&p), Bytes::new()) {
            Ok(()) => {}
            Err(MemFsError::Storage(KvError::Exists)) => {
                return Err(MemFsError::AlreadyExists(p));
            }
            Err(e) => return Err(e),
        }
        self.inner.pool.append(
            &KeySchema::dir_key(&parent),
            &meta::encode_add(path::basename(&p), ChildKind::Dir),
        )?;
        Ok(())
    }

    /// Create a directory and all missing ancestors.
    pub fn mkdir_all(&self, raw: &str) -> MemFsResult<()> {
        let p = path::normalize(raw)?;
        if p == "/" {
            return Ok(());
        }
        let mut prefix = String::new();
        for comp in p.split('/').filter(|c| !c.is_empty()) {
            prefix.push('/');
            prefix.push_str(comp);
            match self.mkdir(&prefix) {
                Ok(()) | Err(MemFsError::AlreadyExists(_)) => {}
                Err(e) => return Err(e),
            }
        }
        Ok(())
    }

    /// List the live children of directory `path`, sorted by name.
    pub fn readdir(&self, raw: &str) -> MemFsResult<Vec<DirEntry>> {
        let p = path::normalize(raw)?;
        let log = match self.inner.pool.try_get(&KeySchema::dir_key(&p))? {
            Some(v) => v,
            None => {
                if self.inner.pool.try_get(&KeySchema::file_key(&p))?.is_some() {
                    return Err(MemFsError::NotADirectory(p));
                }
                return Err(MemFsError::NotFound(p));
            }
        };
        Ok(meta::fold_dir_log(&log, &p)?
            .into_iter()
            .map(|(name, kind)| DirEntry {
                name,
                kind: match kind {
                    ChildKind::File => EntryKind::File,
                    ChildKind::Dir => EntryKind::Dir,
                },
            })
            .collect())
    }

    /// Entry metadata for `path`.
    pub fn stat(&self, raw: &str) -> MemFsResult<FileStat> {
        let p = path::normalize(raw)?;
        if let Some(record) = self.inner.pool.try_get(&KeySchema::file_key(&p))? {
            return Ok(match meta::decode_size(&record, &p)? {
                SizeRecord::Open => FileStat {
                    kind: EntryKind::File,
                    size: 0,
                    finalized: false,
                },
                SizeRecord::Finalized(size) => FileStat {
                    kind: EntryKind::File,
                    size,
                    finalized: true,
                },
            });
        }
        if self.dir_exists(&p)? {
            return Ok(FileStat {
                kind: EntryKind::Dir,
                size: 0,
                finalized: true,
            });
        }
        Err(MemFsError::NotFound(p))
    }

    /// Whether `path` exists (file or directory).
    pub fn exists(&self, raw: &str) -> MemFsResult<bool> {
        match self.stat(raw) {
            Ok(_) => Ok(true),
            Err(MemFsError::NotFound(_)) => Ok(false),
            Err(e) => Err(e),
        }
    }

    /// Delete file `path`: frees its stripes and size record, and appends
    /// a tombstone to the parent's log (paper §3.2.4 only tombstones; we
    /// additionally reclaim the stripes so runtime memory is reusable).
    ///
    /// Stripes are freed through batched [`ServerPool::delete_many`]
    /// rounds — one pipelined multi-delete per server, fanned out on the
    /// mount's shared engine — instead of one round trip per stripe.
    ///
    /// A file whose size record is still open (its writer crashed or the
    /// handle leaked before `close`) is unlinked too: the stripes it
    /// managed to store are probed and freed best-effort, then the name
    /// is released. Without this, such files are permanent zombies — no
    /// writer will ever finalize them, and they can neither be read nor
    /// removed.
    pub fn unlink(&self, raw: &str) -> MemFsResult<()> {
        let p = path::normalize(raw)?;
        let record = match self.inner.pool.try_get(&KeySchema::file_key(&p))? {
            Some(v) => v,
            None => {
                if self.dir_exists(&p)? {
                    return Err(MemFsError::IsADirectory(p));
                }
                return Err(MemFsError::NotFound(p));
            }
        };
        match meta::decode_size(&record, &p)? {
            SizeRecord::Finalized(size) => {
                let count = self.layout().stripe_count(size);
                let keys: Vec<Bytes> = (0..count).map(|s| stripe_key_bytes(&p, s)).collect();
                self.delete_stripe_batch(&keys)?;
            }
            SizeRecord::Open => self.probe_delete_stripes(&p)?,
        }
        self.inner.pool.delete_quiet(&KeySchema::file_key(&p))?;
        self.inner.pool.append(
            &KeySchema::dir_key(path::parent(&p)),
            &meta::encode_remove(path::basename(&p)),
        )?;
        Ok(())
    }

    /// Free `keys` in bounded [`ServerPool::delete_many`] rounds. Both
    /// outcomes per key are fine (`true` deleted, `false` already gone);
    /// a storage error aborts so the size record stays behind as the
    /// marker that stripes may remain.
    fn delete_stripe_batch(&self, keys: &[Bytes]) -> MemFsResult<()> {
        let first_err = |results: Vec<MemFsResult<bool>>| results.into_iter().find_map(|r| r.err());
        let chunks: Vec<&[Bytes]> = keys.chunks(UNLINK_BATCH).collect();
        // Rounds overlap in waves of UNLINK_PIPELINE: the engine runs all
        // but the last chunk of a wave while the caller's thread runs
        // that one, so a deep file's delete rounds pay overlapping
        // round-trip latencies instead of strictly sequential ones.
        for wave in chunks.chunks(UNLINK_PIPELINE) {
            let (&inline_chunk, spawned) = wave.split_last().expect("chunks are non-empty");
            let shared: Arc<std::sync::Mutex<Option<MemFsError>>> =
                Arc::new(std::sync::Mutex::new(None));
            let tg = self.inner.engine.group(spawned.len());
            for &chunk in spawned {
                let chunk: Vec<Bytes> = chunk.to_vec();
                let pool = Arc::clone(&self.inner.pool);
                let shared = Arc::clone(&shared);
                let tg = Arc::clone(&tg);
                self.inner.engine.execute(move || {
                    if let Some(e) = pool.delete_many(&chunk).into_iter().find_map(|r| r.err()) {
                        shared.lock().expect("unlink errs lock").get_or_insert(e);
                    }
                    tg.done();
                });
            }
            let inline_err = first_err(self.inner.pool.delete_many(inline_chunk));
            tg.wait();
            let err = shared
                .lock()
                .expect("unlink errs lock")
                .take()
                .or(inline_err);
            if let Some(e) = err {
                return Err(e);
            }
        }
        Ok(())
    }

    /// Free the stripes of a never-finalized file. Its true length is
    /// unknown (only the crashed writer knew), but stripes are written
    /// sequentially, so probe forward in batches until a whole batch
    /// reports nothing deleted.
    ///
    /// Rounds are speculatively pipelined at depth 2: while round `r` is
    /// being decided, round `r + 1` is already on the wire (on the
    /// engine). If `r` turns out to be the last round, the speculative
    /// deletes beyond the end are harmless no-ops — deleting an absent
    /// stripe is `Ok(false)` — so half the round-trip latencies vanish
    /// from the zombie-free path without changing its outcome.
    fn probe_delete_stripes(&self, p: &str) -> MemFsResult<()> {
        type RoundResult = Arc<std::sync::Mutex<Option<MemFsResult<bool>>>>;
        let spawn_round = |next: u64| -> (Arc<crate::threadpool::TaskGroup>, RoundResult) {
            let keys: Vec<Bytes> = (next..next + PROBE_BATCH as u64)
                .map(|s| stripe_key_bytes(p, s))
                .collect();
            let out: RoundResult = Arc::new(std::sync::Mutex::new(None));
            let tg = self.inner.engine.group(1);
            let pool = Arc::clone(&self.inner.pool);
            let job_out = Arc::clone(&out);
            let job_tg = Arc::clone(&tg);
            self.inner.engine.execute(move || {
                let mut result: MemFsResult<bool> = Ok(false);
                for res in pool.delete_many(&keys) {
                    match res {
                        Ok(deleted) => {
                            if let Ok(any) = result.as_mut() {
                                *any |= deleted;
                            }
                        }
                        Err(e) => {
                            result = Err(e);
                            break;
                        }
                    }
                }
                *job_out.lock().expect("probe round lock") = Some(result);
                job_tg.done();
            });
            (tg, out)
        };
        let mut current = spawn_round(0);
        let mut next = PROBE_BATCH as u64;
        loop {
            let speculative = spawn_round(next);
            current.0.wait();
            let any = current
                .1
                .lock()
                .expect("probe round lock")
                .take()
                .expect("round completed");
            // Always settle the speculative round too — even on error or
            // completion — so no job outlives the unlink call.
            let settle = |(tg, out): (Arc<crate::threadpool::TaskGroup>, RoundResult)| {
                tg.wait();
                out.lock().expect("probe round lock").take()
            };
            match any {
                Err(e) => {
                    let _ = settle(speculative);
                    return Err(e);
                }
                Ok(false) => {
                    let _ = settle(speculative);
                    return Ok(());
                }
                Ok(true) => {
                    current = speculative;
                    next += PROBE_BATCH as u64;
                }
            }
        }
    }

    /// Remove empty directory `path`.
    pub fn rmdir(&self, raw: &str) -> MemFsResult<()> {
        let p = path::normalize(raw)?;
        if p == "/" {
            return Err(MemFsError::InvalidPath(p));
        }
        let children = self.readdir(&p)?;
        if !children.is_empty() {
            return Err(MemFsError::DirectoryNotEmpty(p));
        }
        self.inner.pool.delete_quiet(&KeySchema::dir_key(&p))?;
        self.inner.pool.append(
            &KeySchema::dir_key(path::parent(&p)),
            &meta::encode_remove(path::basename(&p)),
        )?;
        Ok(())
    }
}

impl std::fmt::Debug for MemFs {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MemFs")
            .field("servers", &self.inner.pool.n_servers())
            .field("stripe_size", &self.inner.config.stripe_size)
            .finish()
    }
}

/// An exclusive, sequential, write-once handle (paper §3.2.3).
///
/// Dropping the handle closes the file best-effort; call [`Self::close`]
/// to observe errors.
pub struct WriteHandle {
    fs: MemFs,
    path: String,
    buffer: Option<WriteBuffer>,
}

impl WriteHandle {
    /// The file's normalized path.
    pub fn path(&self) -> &str {
        &self.path
    }

    /// Bytes written so far.
    pub fn written(&self) -> u64 {
        self.buffer.as_ref().map_or(0, |b| b.written())
    }

    /// Append `data` at the end of the file.
    pub fn write_all(&mut self, data: &[u8]) -> MemFsResult<()> {
        self.buffer.as_mut().ok_or(MemFsError::Closed)?.write(data)
    }

    /// Append owned bytes at the end of the file without staging:
    /// stripe-aligned spans travel to the storage servers as refcounted
    /// slices of `data` (see [`WriteBuffer::write_bytes`]).
    pub fn write_bytes(&mut self, data: Bytes) -> MemFsResult<()> {
        self.buffer
            .as_mut()
            .ok_or(MemFsError::Closed)?
            .write_bytes(data)
    }

    /// Write at an explicit offset — permitted only at the current end of
    /// file (MemFS restricts writes to "writing once, and only
    /// sequentially").
    pub fn write_at(&mut self, offset: u64, data: &[u8]) -> MemFsResult<()> {
        let expected = self.written();
        if offset != expected {
            return Err(MemFsError::NonSequentialWrite {
                path: self.path.clone(),
                requested: offset,
                expected,
            });
        }
        self.write_all(data)
    }

    /// Block until all buffered full stripes are stored.
    pub fn flush(&mut self) -> MemFsResult<()> {
        self.buffer.as_mut().ok_or(MemFsError::Closed)?.flush()
    }

    /// Finish the file: drain the buffer, then publish the final size in
    /// the metadata record, making the file readable everywhere.
    pub fn close(&mut self) -> MemFsResult<()> {
        let mut buffer = self.buffer.take().ok_or(MemFsError::Closed)?;
        let size = buffer.finish()?;
        self.fs.inner.pool.set(
            &KeySchema::file_key(&self.path),
            Bytes::from(meta::encode_size(size)),
        )?;
        Ok(())
    }
}

impl std::fmt::Debug for WriteHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WriteHandle")
            .field("path", &self.path)
            .field("written", &self.written())
            .field("closed", &self.buffer.is_none())
            .finish()
    }
}

impl Drop for WriteHandle {
    fn drop(&mut self) {
        if self.buffer.is_some() {
            let _ = self.close();
        }
    }
}

impl io::Write for WriteHandle {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        self.write_all(buf)
            .map(|_| buf.len())
            .map_err(io::Error::other)
    }

    fn flush(&mut self) -> io::Result<()> {
        WriteHandle::flush(self).map_err(io::Error::other)
    }
}

/// A POSIX-style read handle: any offset, any number of times, shareable
/// across threads via [`ReadHandle::read_at`]. The handle also carries a
/// cursor for `std::io::Read` convenience.
pub struct ReadHandle {
    path: String,
    layout: StripeLayout,
    reader: Arc<StripeReader>,
    pos: u64,
}

impl ReadHandle {
    /// The file's normalized path.
    pub fn path(&self) -> &str {
        &self.path
    }

    /// The file's final size.
    pub fn size(&self) -> u64 {
        self.reader.file_size()
    }

    /// Read up to `buf.len()` bytes at `offset`, returning the byte count
    /// (short only at end of file).
    ///
    /// A read spanning several stripes fetches them as **one** batched
    /// [`StripeReader::read_stripes`] call, whose per-server multi-gets
    /// the pool fans out in parallel — a large `read_at` (and therefore
    /// [`MemFs::read_to_vec`]) drives all servers at once instead of
    /// walking the stripes sequentially.
    pub fn read_at(&self, offset: u64, buf: &mut [u8]) -> MemFsResult<usize> {
        let spans = self.layout.spans(self.size(), offset, buf.len());
        let stripes: Vec<Bytes> = match spans.len() {
            0 => Vec::new(),
            // Single-stripe reads keep the prefetch-triggering path.
            1 => vec![self.reader.stripe(spans[0].stripe)?],
            _ => {
                let wanted: Vec<u64> = spans.iter().map(|s| s.stripe).collect();
                self.reader.read_stripes(&wanted)?
            }
        };
        let mut filled = 0usize;
        for (span, stripe) in spans.iter().zip(stripes) {
            if stripe.len() < span.offset_in_stripe + span.len {
                return Err(MemFsError::CorruptMetadata(format!(
                    "stripe {} of {} shorter than the size record implies",
                    span.stripe, self.path
                )));
            }
            buf[filled..filled + span.len]
                .copy_from_slice(&stripe[span.offset_in_stripe..span.offset_in_stripe + span.len]);
            filled += span.len;
        }
        Ok(filled)
    }

    /// A clone sharing the same prefetch cache but with an independent
    /// cursor (several threads of one task reading one file).
    pub fn duplicate(&self) -> ReadHandle {
        ReadHandle {
            path: self.path.clone(),
            layout: self.layout,
            reader: Arc::clone(&self.reader),
            pos: 0,
        }
    }
}

impl std::fmt::Debug for ReadHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ReadHandle")
            .field("path", &self.path)
            .field("size", &self.size())
            .field("pos", &self.pos)
            .finish()
    }
}

impl io::Read for ReadHandle {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        let n = self.read_at(self.pos, buf).map_err(io::Error::other)?;
        self.pos += n as u64;
        Ok(n)
    }
}

impl io::Seek for ReadHandle {
    fn seek(&mut self, pos: io::SeekFrom) -> io::Result<u64> {
        let new = match pos {
            io::SeekFrom::Start(o) => o as i128,
            io::SeekFrom::End(d) => self.size() as i128 + d as i128,
            io::SeekFrom::Current(d) => self.pos as i128 + d as i128,
        };
        if new < 0 {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "seek before start",
            ));
        }
        self.pos = new as u64;
        Ok(self.pos)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use memfs_memkv::{LocalClient, Store, StoreConfig};

    fn mount(n_servers: usize) -> MemFs {
        mount_with(
            n_servers,
            MemFsConfig {
                stripe_size: 128,
                write_buffer_size: 1024,
                read_cache_size: 1024,
                writer_threads: 2,
                prefetch_threads: 2,
                prefetch_window: 4,
                ..MemFsConfig::default()
            },
        )
    }

    fn mount_with(n_servers: usize, config: MemFsConfig) -> MemFs {
        let servers: Vec<Arc<dyn KvClient>> = (0..n_servers)
            .map(|_| {
                Arc::new(LocalClient::new(Arc::new(Store::new(
                    StoreConfig::default(),
                )))) as Arc<dyn KvClient>
            })
            .collect();
        MemFs::new(servers, config).unwrap()
    }

    #[test]
    fn write_then_read_round_trip() {
        let fs = mount(4);
        let data: Vec<u8> = (0..1000u32).map(|i| (i % 253) as u8).collect();
        fs.write_file("/data.bin", &data).unwrap();
        assert_eq!(fs.read_to_vec("/data.bin").unwrap(), data);
    }

    #[test]
    fn empty_file_round_trip() {
        let fs = mount(2);
        fs.write_file("/empty", b"").unwrap();
        assert_eq!(fs.read_to_vec("/empty").unwrap(), Vec::<u8>::new());
        assert_eq!(fs.stat("/empty").unwrap().size, 0);
    }

    #[test]
    fn write_once_enforced() {
        let fs = mount(2);
        fs.write_file("/once", b"first").unwrap();
        assert!(matches!(fs.create("/once"), Err(MemFsError::WriteOnce(_))));
        // Data unchanged.
        assert_eq!(fs.read_to_vec("/once").unwrap(), b"first");
    }

    #[test]
    fn write_once_enforced_across_mounts() {
        let servers: Vec<Arc<dyn KvClient>> = (0..2)
            .map(|_| {
                Arc::new(LocalClient::new(Arc::new(Store::new(
                    StoreConfig::default(),
                )))) as Arc<dyn KvClient>
            })
            .collect();
        let fs1 = MemFs::new(servers.clone(), MemFsConfig::default()).unwrap();
        let fs2 = MemFs::new(servers, MemFsConfig::default()).unwrap();
        fs1.write_file("/shared", b"from mount 1").unwrap();
        assert!(matches!(
            fs2.create("/shared"),
            Err(MemFsError::WriteOnce(_))
        ));
        assert_eq!(fs2.read_to_vec("/shared").unwrap(), b"from mount 1");
    }

    #[test]
    fn sequential_write_at_allowed_random_rejected() {
        let fs = mount(2);
        let mut w = fs.create("/f").unwrap();
        w.write_at(0, b"abc").unwrap();
        w.write_at(3, b"def").unwrap();
        assert!(matches!(
            w.write_at(2, b"x"),
            Err(MemFsError::NonSequentialWrite {
                requested: 2,
                expected: 6,
                ..
            })
        ));
        w.close().unwrap();
        assert_eq!(fs.read_to_vec("/f").unwrap(), b"abcdef");
    }

    #[test]
    fn open_before_close_is_not_finalized() {
        let fs = mount(2);
        let mut w = fs.create("/slow").unwrap();
        w.write_all(b"partial").unwrap();
        assert!(matches!(fs.open("/slow"), Err(MemFsError::NotFinalized(_))));
        w.close().unwrap();
        assert_eq!(fs.read_to_vec("/slow").unwrap(), b"partial");
    }

    #[test]
    fn drop_closes_the_file() {
        let fs = mount(2);
        {
            let mut w = fs.create("/dropped").unwrap();
            w.write_all(b"bytes").unwrap();
        }
        assert_eq!(fs.read_to_vec("/dropped").unwrap(), b"bytes");
    }

    #[test]
    fn double_close_reports_closed() {
        let fs = mount(2);
        let mut w = fs.create("/f").unwrap();
        w.close().unwrap();
        assert!(matches!(w.close(), Err(MemFsError::Closed)));
        assert!(matches!(w.write_all(b"x"), Err(MemFsError::Closed)));
    }

    #[test]
    fn directories_and_readdir() {
        let fs = mount(2);
        fs.mkdir("/proj").unwrap();
        fs.mkdir("/proj/run1").unwrap();
        fs.write_file("/proj/run1/a.dat", b"a").unwrap();
        fs.write_file("/proj/run1/b.dat", b"b").unwrap();
        let entries = fs.readdir("/proj/run1").unwrap();
        assert_eq!(
            entries,
            vec![
                DirEntry {
                    name: "a.dat".into(),
                    kind: EntryKind::File
                },
                DirEntry {
                    name: "b.dat".into(),
                    kind: EntryKind::File
                },
            ]
        );
        let top = fs.readdir("/").unwrap();
        assert_eq!(
            top,
            vec![DirEntry {
                name: "proj".into(),
                kind: EntryKind::Dir
            }]
        );
    }

    #[test]
    fn mkdir_requires_parent() {
        let fs = mount(2);
        assert!(matches!(
            fs.mkdir("/no/such/parent"),
            Err(MemFsError::ParentNotFound(_))
        ));
        fs.mkdir_all("/no/such/parent").unwrap();
        assert!(fs.exists("/no/such/parent").unwrap());
    }

    #[test]
    fn create_requires_parent() {
        let fs = mount(2);
        assert!(matches!(
            fs.create("/missing/file"),
            Err(MemFsError::ParentNotFound(_))
        ));
    }

    #[test]
    fn unlink_frees_and_hides() {
        let fs = mount(4);
        let data = vec![7u8; 1000];
        fs.write_file("/victim", &data).unwrap();
        fs.unlink("/victim").unwrap();
        assert!(matches!(fs.open("/victim"), Err(MemFsError::NotFound(_))));
        assert!(fs.readdir("/").unwrap().is_empty());
        // Name is reusable (fresh object).
        fs.write_file("/victim", b"new").unwrap();
        assert_eq!(fs.read_to_vec("/victim").unwrap(), b"new");
    }

    #[test]
    fn unlink_open_file_clears_zombie() {
        // Regression: a writer that crashes (or leaks its handle) before
        // `close` used to leave a permanent zombie — `open` says
        // NotFinalized forever and `unlink` refused with the same error,
        // so neither the name nor the flushed stripes were recoverable.
        let servers: Vec<Arc<Store>> = (0..4)
            .map(|_| Arc::new(Store::new(StoreConfig::default())))
            .collect();
        let clients: Vec<Arc<dyn KvClient>> = servers
            .iter()
            .map(|s| Arc::new(LocalClient::new(Arc::clone(s))) as Arc<dyn KvClient>)
            .collect();
        let fs = MemFs::new(
            clients,
            MemFsConfig {
                stripe_size: 128,
                write_buffer_size: 1024,
                ..MemFsConfig::default()
            },
        )
        .unwrap();
        let mut w = fs.create("/zombie").unwrap();
        w.write_all(&vec![9u8; 1000]).unwrap();
        w.flush().unwrap();
        std::mem::forget(w); // the writer "crashes": close never runs
        assert!(matches!(
            fs.open("/zombie"),
            Err(MemFsError::NotFinalized(_))
        ));
        fs.unlink("/zombie").unwrap();
        assert!(matches!(fs.open("/zombie"), Err(MemFsError::NotFound(_))));
        assert!(fs.readdir("/").unwrap().is_empty());
        // The flushed stripes were reclaimed — only the root's small
        // directory log remains on the servers.
        let leftover: u64 = servers.iter().map(|s| s.bytes_used()).sum();
        assert!(
            leftover < 128,
            "stripes not reclaimed: {leftover} bytes left"
        );
        // The name is immediately reusable.
        fs.write_file("/zombie", b"alive").unwrap();
        assert_eq!(fs.read_to_vec("/zombie").unwrap(), b"alive");
    }

    #[test]
    fn unlink_open_file_with_nothing_flushed() {
        let fs = mount(2);
        let mut w = fs.create("/empty-zombie").unwrap();
        w.write_all(b"tiny").unwrap(); // less than a stripe: nothing stored yet
        std::mem::forget(w);
        fs.unlink("/empty-zombie").unwrap();
        assert!(!fs.exists("/empty-zombie").unwrap());
    }

    #[test]
    fn mount_shares_one_engine_with_its_pool() {
        // Blocking (non-submit-capable) clients: the pool fans out on the
        // mount's engine, and both must share one dispatcher.
        struct Opaque(LocalClient);
        impl KvClient for Opaque {
            fn set(&self, key: &[u8], value: Bytes) -> memfs_memkv::error::KvResult<()> {
                self.0.set(key, value)
            }
            fn add(&self, key: &[u8], value: Bytes) -> memfs_memkv::error::KvResult<()> {
                self.0.add(key, value)
            }
            fn get(&self, key: &[u8]) -> memfs_memkv::error::KvResult<Bytes> {
                self.0.get(key)
            }
            fn append(&self, key: &[u8], suffix: &[u8]) -> memfs_memkv::error::KvResult<()> {
                self.0.append(key, suffix)
            }
            fn delete(&self, key: &[u8]) -> memfs_memkv::error::KvResult<()> {
                self.0.delete(key)
            }
            // supports_submit stays at the default `false`.
        }
        let servers: Vec<Arc<dyn KvClient>> = (0..4)
            .map(|_| {
                Arc::new(Opaque(LocalClient::new(Arc::new(Store::new(
                    StoreConfig::default(),
                ))))) as Arc<dyn KvClient>
            })
            .collect();
        let fs = MemFs::new(servers, MemFsConfig::default()).unwrap();
        let pool_engine = fs.pool().engine().expect("fan-out pool has an engine");
        assert!(
            Arc::ptr_eq(pool_engine, fs.engine()),
            "pool dispatch and mount background jobs must share one engine"
        );

        // Submit-capable clients fan out on the caller's thread under the
        // io_parallelism budget: the pool needs no engine at all and the
        // mount's engine is sized for background jobs only.
        let evented = mount(4);
        assert!(evented.pool().engine().is_none());
        assert_eq!(
            evented.engine().size(),
            evented.config().engine_threads(1),
            "evented mount engine sized for background jobs only"
        );

        // Sequential mounts skip pool fan-out but still run background
        // drains and prefetches on a mount-owned engine.
        let seq = mount_with(
            2,
            MemFsConfig {
                io_parallelism: 1,
                ..MemFsConfig::default()
            },
        );
        assert!(seq.pool().engine().is_none());
        assert!(seq.engine().size() >= 1);
    }

    #[test]
    fn rmdir_only_when_empty() {
        let fs = mount(2);
        fs.mkdir("/d").unwrap();
        fs.write_file("/d/f", b"x").unwrap();
        assert!(matches!(
            fs.rmdir("/d"),
            Err(MemFsError::DirectoryNotEmpty(_))
        ));
        fs.unlink("/d/f").unwrap();
        fs.rmdir("/d").unwrap();
        assert!(!fs.exists("/d").unwrap());
    }

    #[test]
    fn stat_reports_kind_and_size() {
        let fs = mount(2);
        fs.mkdir("/d").unwrap();
        fs.write_file("/d/f", &[0u8; 321]).unwrap();
        let st = fs.stat("/d/f").unwrap();
        assert_eq!(st.kind, EntryKind::File);
        assert_eq!(st.size, 321);
        assert!(st.finalized);
        let st = fs.stat("/d").unwrap();
        assert_eq!(st.kind, EntryKind::Dir);
        assert!(matches!(fs.stat("/nope"), Err(MemFsError::NotFound(_))));
    }

    #[test]
    fn read_at_arbitrary_offsets() {
        let fs = mount(4);
        let data: Vec<u8> = (0..10_000u32).map(|i| (i % 251) as u8).collect();
        fs.write_file("/big", &data).unwrap();
        let r = fs.open("/big").unwrap();
        let mut buf = [0u8; 100];
        // Straddles stripe boundary (stripe size 128).
        let n = r.read_at(100, &mut buf).unwrap();
        assert_eq!(n, 100);
        assert_eq!(&buf[..], &data[100..200]);
        // Tail read is short.
        let n = r.read_at(9_950, &mut buf).unwrap();
        assert_eq!(n, 50);
        assert_eq!(&buf[..50], &data[9_950..]);
        // Past EOF is empty.
        assert_eq!(r.read_at(20_000, &mut buf).unwrap(), 0);
    }

    #[test]
    fn io_read_seek_integration() {
        use std::io::{Read, Seek, SeekFrom};
        let fs = mount(2);
        let data: Vec<u8> = (0..500u32).map(|i| (i % 91) as u8).collect();
        fs.write_file("/f", &data).unwrap();
        let mut r = fs.open("/f").unwrap();
        let mut all = Vec::new();
        r.read_to_end(&mut all).unwrap();
        assert_eq!(all, data);
        r.seek(SeekFrom::Start(10)).unwrap();
        let mut b = [0u8; 5];
        r.read_exact(&mut b).unwrap();
        assert_eq!(&b, &data[10..15]);
        r.seek(SeekFrom::End(-5)).unwrap();
        let mut tail = Vec::new();
        r.read_to_end(&mut tail).unwrap();
        assert_eq!(tail, &data[495..]);
    }

    #[test]
    fn many_files_balance_across_servers() {
        let servers: Vec<Arc<Store>> = (0..8)
            .map(|_| Arc::new(Store::new(StoreConfig::default())))
            .collect();
        let clients: Vec<Arc<dyn KvClient>> = servers
            .iter()
            .map(|s| Arc::new(LocalClient::new(Arc::clone(s))) as Arc<dyn KvClient>)
            .collect();
        let fs = MemFs::new(
            clients,
            MemFsConfig {
                stripe_size: 256,
                write_buffer_size: 2048,
                ..MemFsConfig::default()
            },
        )
        .unwrap();
        for i in 0..50 {
            fs.write_file(&format!("/f{i}"), &vec![0u8; 4096]).unwrap();
        }
        // 50 files x 16 stripes = 800 stripes over 8 servers: symmetric
        // distribution must load every server within 2x of the mean.
        let loads: Vec<u64> = servers.iter().map(|s| s.bytes_used()).collect();
        let mean = loads.iter().sum::<u64>() as f64 / loads.len() as f64;
        for (i, &l) in loads.iter().enumerate() {
            assert!(
                (l as f64) > mean * 0.5 && (l as f64) < mean * 2.0,
                "server {i} load {l} vs mean {mean}"
            );
        }
    }

    #[test]
    fn invalid_paths_rejected() {
        let fs = mount(2);
        assert!(matches!(
            fs.create("relative"),
            Err(MemFsError::InvalidPath(_))
        ));
        assert!(matches!(
            fs.create("/has space"),
            Err(MemFsError::InvalidPath(_))
        ));
        assert!(matches!(fs.open("/"), Err(MemFsError::IsADirectory(_))));
        assert!(matches!(fs.create("/"), Err(MemFsError::IsADirectory(_))));
    }

    #[test]
    fn file_and_dir_names_cannot_collide() {
        let fs = mount(2);
        fs.write_file("/x", b"file").unwrap();
        assert!(matches!(fs.mkdir("/x"), Err(MemFsError::AlreadyExists(_))));
        fs.mkdir("/y").unwrap();
        assert!(matches!(fs.create("/y"), Err(MemFsError::AlreadyExists(_))));
        assert!(matches!(
            fs.readdir("/x"),
            Err(MemFsError::NotADirectory(_))
        ));
    }

    #[test]
    fn large_file_spanning_many_stripes() {
        let fs = mount(8);
        let data: Vec<u8> = (0..200_000u32).map(|i| (i * 31 % 255) as u8).collect();
        fs.write_file("/huge", &data).unwrap();
        assert_eq!(fs.read_to_vec("/huge").unwrap(), data);
        assert_eq!(fs.stat("/huge").unwrap().size, 200_000);
    }

    #[test]
    fn concurrent_writers_different_files() {
        let fs = mount(4);
        let threads: Vec<_> = (0..8)
            .map(|t| {
                let fs = fs.clone();
                std::thread::spawn(move || {
                    let data = vec![t as u8; 5_000];
                    fs.write_file(&format!("/par{t}"), &data).unwrap();
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        for t in 0..8 {
            assert_eq!(
                fs.read_to_vec(&format!("/par{t}")).unwrap(),
                vec![t as u8; 5_000]
            );
        }
        assert_eq!(fs.readdir("/").unwrap().len(), 8);
    }

    #[test]
    fn n_minus_one_read_pattern() {
        // All "nodes" read the same file concurrently — the paper's N-1
        // read. Each opens its own handle (own cache) as distinct compute
        // nodes would.
        let fs = mount(4);
        let data: Vec<u8> = (0..50_000u32).map(|i| (i % 247) as u8).collect();
        fs.write_file("/shared", &data).unwrap();
        let threads: Vec<_> = (0..8)
            .map(|_| {
                let fs = fs.clone();
                let expected = data.clone();
                std::thread::spawn(move || {
                    assert_eq!(fs.read_to_vec("/shared").unwrap(), expected);
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
    }

    #[test]
    fn duplicate_handle_shares_cache() {
        let fs = mount(2);
        fs.write_file("/f", &[1u8; 1000]).unwrap();
        let r = fs.open("/f").unwrap();
        let d = r.duplicate();
        let mut buf = [0u8; 10];
        assert_eq!(r.read_at(0, &mut buf).unwrap(), 10);
        assert_eq!(d.read_at(500, &mut buf).unwrap(), 10);
        assert_eq!(d.path(), "/f");
    }
}
