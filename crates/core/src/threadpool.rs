//! A small fixed-size thread pool over a crossbeam channel.
//!
//! Both the write-buffering and the prefetching protocols "work with thread
//! pools to implement concurrent communication to the remote nodes"
//! (paper §3.2.2); this is that pool. Jobs are plain closures; completion
//! signalling is the submitter's business (the write buffer uses a
//! counter + condvar, the prefetcher a shared cache slot).

use std::sync::{Condvar, Mutex};
use std::thread::JoinHandle;

use crossbeam::channel::{unbounded, Sender};

type Job = Box<dyn FnOnce() + Send + 'static>;

/// A fixed-size worker pool. Dropping the pool waits for queued jobs to
/// finish (important: a mount being dropped must not lose buffered
/// stripes).
pub struct ThreadPool {
    sender: Option<Sender<Job>>,
    workers: Vec<JoinHandle<()>>,
}

impl ThreadPool {
    /// Spawn `size` workers named `name-<i>`.
    ///
    /// # Panics
    /// Panics if `size == 0`.
    pub fn new(size: usize, name: &str) -> Self {
        assert!(size > 0, "thread pool needs at least one worker");
        let (sender, receiver) = unbounded::<Job>();
        let workers = (0..size)
            .map(|i| {
                let rx = receiver.clone();
                std::thread::Builder::new()
                    .name(format!("{name}-{i}"))
                    .spawn(move || {
                        // The channel closing is the shutdown signal.
                        while let Ok(job) = rx.recv() {
                            job();
                        }
                    })
                    .expect("spawn pool worker")
            })
            .collect();
        ThreadPool {
            sender: Some(sender),
            workers,
        }
    }

    /// Number of workers.
    pub fn size(&self) -> usize {
        self.workers.len()
    }

    /// Queue a job.
    ///
    /// # Panics
    /// Panics if the pool is shutting down (cannot happen through the
    /// public API: submission requires `&self` while drop takes ownership).
    pub fn execute<F: FnOnce() + Send + 'static>(&self, job: F) {
        self.sender
            .as_ref()
            .expect("pool alive while borrowed")
            .send(Box::new(job))
            .expect("pool workers alive while pool is alive");
    }
}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        // Close the channel; workers drain remaining jobs and exit.
        drop(self.sender.take());
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

/// Completion barrier for a known number of pooled jobs: the submitter
/// creates it with the job count, each job calls [`WaitGroup::done`] as it
/// finishes, and [`WaitGroup::wait`] blocks until the count reaches zero.
///
/// This is the fan-out dispatcher's rendezvous: per-server batches are
/// queued on the pool, the caller runs one batch itself, then waits here
/// for the rest — so a window costs `max(server RTT)`, not the sum.
pub struct WaitGroup {
    remaining: Mutex<usize>,
    cv: Condvar,
}

impl WaitGroup {
    /// A group expecting `n` completions.
    pub fn new(n: usize) -> Self {
        WaitGroup {
            remaining: Mutex::new(n),
            cv: Condvar::new(),
        }
    }

    /// Record one completion.
    pub fn done(&self) {
        let mut n = self.remaining.lock().expect("waitgroup lock");
        *n = n.checked_sub(1).expect("more done() calls than group size");
        if *n == 0 {
            self.cv.notify_all();
        }
    }

    /// Block until every expected completion has been recorded.
    pub fn wait(&self) {
        let mut n = self.remaining.lock().expect("waitgroup lock");
        while *n > 0 {
            n = self.cv.wait(n).expect("waitgroup wait");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;

    #[test]
    fn executes_all_jobs() {
        let pool = ThreadPool::new(4, "test");
        let counter = Arc::new(AtomicUsize::new(0));
        for _ in 0..100 {
            let c = Arc::clone(&counter);
            pool.execute(move || {
                c.fetch_add(1, Ordering::SeqCst);
            });
        }
        drop(pool); // waits for completion
        assert_eq!(counter.load(Ordering::SeqCst), 100);
    }

    #[test]
    fn jobs_run_concurrently() {
        use std::sync::{Condvar, Mutex};
        let pool = ThreadPool::new(2, "conc");
        let rendezvous = Arc::new((Mutex::new(0usize), Condvar::new()));
        // Two jobs that each wait for the other: only completes if the
        // pool really runs two jobs in parallel.
        for _ in 0..2 {
            let r = Arc::clone(&rendezvous);
            pool.execute(move || {
                let (lock, cv) = &*r;
                let mut n = lock.lock().unwrap();
                *n += 1;
                cv.notify_all();
                while *n < 2 {
                    n = cv.wait(n).unwrap();
                }
            });
        }
        drop(pool);
        assert_eq!(*rendezvous.0.lock().unwrap(), 2);
    }

    #[test]
    fn drop_drains_queue() {
        let pool = ThreadPool::new(1, "drain");
        let counter = Arc::new(AtomicUsize::new(0));
        for _ in 0..50 {
            let c = Arc::clone(&counter);
            pool.execute(move || {
                std::thread::yield_now();
                c.fetch_add(1, Ordering::SeqCst);
            });
        }
        drop(pool);
        assert_eq!(counter.load(Ordering::SeqCst), 50);
    }

    #[test]
    #[should_panic(expected = "at least one worker")]
    fn zero_workers_panics() {
        ThreadPool::new(0, "bad");
    }

    #[test]
    fn waitgroup_blocks_until_all_done() {
        let pool = ThreadPool::new(4, "wg");
        let wg = Arc::new(WaitGroup::new(8));
        let counter = Arc::new(AtomicUsize::new(0));
        for _ in 0..8 {
            let wg = Arc::clone(&wg);
            let c = Arc::clone(&counter);
            pool.execute(move || {
                c.fetch_add(1, Ordering::SeqCst);
                wg.done();
            });
        }
        wg.wait();
        // wait() returning proves every job ran, before the pool drops.
        assert_eq!(counter.load(Ordering::SeqCst), 8);
    }

    #[test]
    fn waitgroup_of_zero_never_blocks() {
        WaitGroup::new(0).wait();
    }
}
