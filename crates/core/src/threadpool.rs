//! The shared per-mount I/O engine.
//!
//! Both the write-buffering and the prefetching protocols "work with thread
//! pools to implement concurrent communication to the remote nodes"
//! (paper §3.2.2). Earlier revisions gave each protocol its own pool plus
//! a third for the fan-out dispatcher, so thread count grew with every
//! role; [`IoEngine`] is the single pool that replaces all three. One
//! engine per mount runs the per-server fan-out batches, the prefetch
//! window jobs, the write-buffer drains, and the batched unlink — the
//! thread count is fixed per mount, no matter how many files are open.
//!
//! Sharing one bounded pool between *nested* work (a drain job calls
//! `set_many`, which submits per-server jobs back to the same engine and
//! waits for them) would deadlock a conventional pool: every worker could
//! be stuck in an outer job waiting for inner jobs nobody is free to run.
//! The engine's [`TaskGroup`] therefore **helps while waiting**: a thread
//! blocked on a group pops queued engine jobs and runs them itself until
//! its group completes. Any waiter makes global progress, so a single
//! worker — or even zero free workers — cannot wedge the engine.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

use parking_lot::{Condvar, Mutex};

type Job = Box<dyn FnOnce() + Send + 'static>;

struct EngineState {
    queue: VecDeque<Job>,
    shutdown: bool,
}

/// Queue + signalling shared by workers, submitters, and helping waiters.
struct EngineShared {
    state: Mutex<EngineState>,
    /// Woken on new work, on shutdown, and on task-group completion (the
    /// helping wait blocks on the same condvar as the workers, so a
    /// group finishing must be able to wake it).
    cv: Condvar,
}

impl EngineShared {
    /// Pop-or-wait loop shared by workers and helping waiters. Returns
    /// `None` when `stop` says to give up (worker shutdown / group done).
    fn next_job(&self, stop: impl Fn(&EngineState) -> bool) -> Option<Job> {
        let mut state = self.state.lock();
        loop {
            if let Some(job) = state.queue.pop_front() {
                return Some(job);
            }
            if stop(&state) {
                return None;
            }
            self.cv.wait(&mut state);
        }
    }
}

/// A fixed-size shared worker pool with deadlock-free nested waiting.
///
/// Dropping the engine drains the remaining queue (a mount being dropped
/// must not lose buffered stripes) and joins the workers.
pub struct IoEngine {
    shared: Arc<EngineShared>,
    workers: Vec<JoinHandle<()>>,
}

impl IoEngine {
    /// Spawn `size` workers named `name-<i>`.
    ///
    /// # Panics
    /// Panics if `size == 0`.
    pub fn new(size: usize, name: &str) -> Self {
        assert!(size > 0, "io engine needs at least one worker");
        let shared = Arc::new(EngineShared {
            state: Mutex::new(EngineState {
                queue: VecDeque::new(),
                shutdown: false,
            }),
            cv: Condvar::new(),
        });
        let workers = (0..size)
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("{name}-{i}"))
                    .spawn(move || {
                        // Shutdown with an empty queue is the exit signal;
                        // a non-empty queue is always drained first.
                        while let Some(job) = shared.next_job(|state| state.shutdown) {
                            job();
                        }
                    })
                    .expect("spawn engine worker")
            })
            .collect();
        IoEngine { shared, workers }
    }

    /// Number of workers.
    pub fn size(&self) -> usize {
        self.workers.len()
    }

    /// Queue a job. Jobs submitted from inside other jobs (nested fan-out)
    /// are accepted even while the engine is shutting down; the drop-side
    /// drain runs them.
    pub fn execute<F: FnOnce() + Send + 'static>(&self, job: F) {
        let mut state = self.shared.state.lock();
        state.queue.push_back(Box::new(job));
        drop(state);
        self.shared.cv.notify_one();
    }

    /// A completion group for `n` jobs about to be submitted. Each job
    /// calls [`TaskGroup::done`]; the submitter calls [`TaskGroup::wait`],
    /// which runs queued engine jobs while it waits.
    pub fn group(&self, n: usize) -> Arc<TaskGroup> {
        Arc::new(TaskGroup {
            remaining: AtomicUsize::new(n),
            shared: Arc::clone(&self.shared),
        })
    }
}

impl Drop for IoEngine {
    fn drop(&mut self) {
        {
            let mut state = self.shared.state.lock();
            state.shutdown = true;
        }
        self.shared.cv.notify_all();
        // The last Arc to a pool riding this engine can be dropped *by a
        // queued job*, i.e. on one of our own workers: joining ourselves
        // would deadlock, so that one thread is detached instead (it still
        // drains and exits on its own; there is no caller left to wait).
        let me = std::thread::current().id();
        for w in self.workers.drain(..) {
            if w.thread().id() != me {
                let _ = w.join();
            }
        }
    }
}

/// Completion rendezvous for a batch of engine jobs.
///
/// This is the fan-out dispatcher's barrier: per-server batches are queued
/// on the engine, the caller runs one batch itself, then waits here for
/// the rest — so a window costs `max(server RTT)`, not the sum. Unlike a
/// plain waitgroup, [`TaskGroup::wait`] *helps*: while its jobs are still
/// queued it pops and runs engine jobs (its own or anyone's), which is
/// what lets nested batch operations share one bounded pool.
pub struct TaskGroup {
    remaining: AtomicUsize,
    shared: Arc<EngineShared>,
}

impl TaskGroup {
    /// Record one completion.
    pub fn done(&self) {
        let prev = self.remaining.fetch_sub(1, Ordering::AcqRel);
        assert!(prev > 0, "more done() calls than group size");
        if prev == 1 {
            // Lock-then-notify so a waiter that just checked the counter
            // under the lock cannot miss the wakeup.
            drop(self.shared.state.lock());
            self.shared.cv.notify_all();
        }
    }

    /// Whether every expected completion has been recorded.
    pub fn is_done(&self) -> bool {
        self.remaining.load(Ordering::Acquire) == 0
    }

    /// Block until the group completes, running queued engine jobs while
    /// waiting (the deadlock-freedom guarantee for nested submissions).
    pub fn wait(&self) {
        while !self.is_done() {
            match self.shared.next_job(|_| self.is_done()) {
                Some(job) => job(),
                None => return,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;

    #[test]
    fn executes_all_jobs() {
        let engine = IoEngine::new(4, "test");
        let counter = Arc::new(AtomicUsize::new(0));
        for _ in 0..100 {
            let c = Arc::clone(&counter);
            engine.execute(move || {
                c.fetch_add(1, Ordering::SeqCst);
            });
        }
        drop(engine); // waits for completion
        assert_eq!(counter.load(Ordering::SeqCst), 100);
    }

    #[test]
    fn jobs_run_concurrently() {
        use std::sync::{Condvar, Mutex};
        let engine = IoEngine::new(2, "conc");
        let rendezvous = Arc::new((Mutex::new(0usize), Condvar::new()));
        // Two jobs that each wait for the other: only completes if the
        // engine really runs two jobs in parallel.
        for _ in 0..2 {
            let r = Arc::clone(&rendezvous);
            engine.execute(move || {
                let (lock, cv) = &*r;
                let mut n = lock.lock().unwrap();
                *n += 1;
                cv.notify_all();
                while *n < 2 {
                    n = cv.wait(n).unwrap();
                }
            });
        }
        drop(engine);
        assert_eq!(*rendezvous.0.lock().unwrap(), 2);
    }

    #[test]
    fn drop_drains_queue() {
        let engine = IoEngine::new(1, "drain");
        let counter = Arc::new(AtomicUsize::new(0));
        for _ in 0..50 {
            let c = Arc::clone(&counter);
            engine.execute(move || {
                std::thread::yield_now();
                c.fetch_add(1, Ordering::SeqCst);
            });
        }
        drop(engine);
        assert_eq!(counter.load(Ordering::SeqCst), 50);
    }

    #[test]
    #[should_panic(expected = "at least one worker")]
    fn zero_workers_panics() {
        IoEngine::new(0, "bad");
    }

    #[test]
    fn task_group_blocks_until_all_done() {
        let engine = IoEngine::new(4, "wg");
        let tg = engine.group(8);
        let counter = Arc::new(AtomicUsize::new(0));
        for _ in 0..8 {
            let tg = Arc::clone(&tg);
            let c = Arc::clone(&counter);
            engine.execute(move || {
                c.fetch_add(1, Ordering::SeqCst);
                tg.done();
            });
        }
        tg.wait();
        // wait() returning proves every job ran, before the engine drops.
        assert_eq!(counter.load(Ordering::SeqCst), 8);
    }

    #[test]
    fn task_group_of_zero_never_blocks() {
        let engine = IoEngine::new(1, "zero");
        engine.group(0).wait();
    }

    #[test]
    fn nested_groups_on_one_worker_cannot_deadlock() {
        // A single-worker engine runs an outer job that submits two inner
        // jobs and waits for them. A non-helping pool would deadlock: the
        // only worker is inside the outer job. The helping wait runs the
        // inner jobs on the blocked thread itself.
        let engine = Arc::new(IoEngine::new(1, "nested"));
        let outer = engine.group(1);
        let hits = Arc::new(AtomicUsize::new(0));
        {
            let engine = Arc::clone(&engine);
            let outer = Arc::clone(&outer);
            let hits = Arc::clone(&hits);
            engine.clone().execute(move || {
                let inner = engine.group(2);
                for _ in 0..2 {
                    let inner = Arc::clone(&inner);
                    let hits = Arc::clone(&hits);
                    engine.execute(move || {
                        hits.fetch_add(1, Ordering::SeqCst);
                        inner.done();
                    });
                }
                inner.wait();
                outer.done();
            });
        }
        outer.wait();
        assert_eq!(hits.load(Ordering::SeqCst), 2);
    }

    #[test]
    fn waiters_help_even_with_all_workers_blocked() {
        // Two workers, both occupied by outer jobs that each wait on an
        // inner job; the inner jobs are queued behind them. Progress
        // requires the blocked outer jobs to help.
        let engine = Arc::new(IoEngine::new(2, "helpers"));
        let all = engine.group(2);
        for _ in 0..2 {
            let engine = Arc::clone(&engine);
            let all = Arc::clone(&all);
            engine.clone().execute(move || {
                let inner = engine.group(1);
                {
                    let inner = Arc::clone(&inner);
                    engine.execute(move || inner.done());
                }
                inner.wait();
                all.done();
            });
        }
        all.wait();
    }
}
