//! A small fixed-size thread pool over a crossbeam channel.
//!
//! Both the write-buffering and the prefetching protocols "work with thread
//! pools to implement concurrent communication to the remote nodes"
//! (paper §3.2.2); this is that pool. Jobs are plain closures; completion
//! signalling is the submitter's business (the write buffer uses a
//! counter + condvar, the prefetcher a shared cache slot).

use std::thread::JoinHandle;

use crossbeam::channel::{unbounded, Sender};

type Job = Box<dyn FnOnce() + Send + 'static>;

/// A fixed-size worker pool. Dropping the pool waits for queued jobs to
/// finish (important: a mount being dropped must not lose buffered
/// stripes).
pub struct ThreadPool {
    sender: Option<Sender<Job>>,
    workers: Vec<JoinHandle<()>>,
}

impl ThreadPool {
    /// Spawn `size` workers named `name-<i>`.
    ///
    /// # Panics
    /// Panics if `size == 0`.
    pub fn new(size: usize, name: &str) -> Self {
        assert!(size > 0, "thread pool needs at least one worker");
        let (sender, receiver) = unbounded::<Job>();
        let workers = (0..size)
            .map(|i| {
                let rx = receiver.clone();
                std::thread::Builder::new()
                    .name(format!("{name}-{i}"))
                    .spawn(move || {
                        // The channel closing is the shutdown signal.
                        while let Ok(job) = rx.recv() {
                            job();
                        }
                    })
                    .expect("spawn pool worker")
            })
            .collect();
        ThreadPool {
            sender: Some(sender),
            workers,
        }
    }

    /// Number of workers.
    pub fn size(&self) -> usize {
        self.workers.len()
    }

    /// Queue a job.
    ///
    /// # Panics
    /// Panics if the pool is shutting down (cannot happen through the
    /// public API: submission requires `&self` while drop takes ownership).
    pub fn execute<F: FnOnce() + Send + 'static>(&self, job: F) {
        self.sender
            .as_ref()
            .expect("pool alive while borrowed")
            .send(Box::new(job))
            .expect("pool workers alive while pool is alive");
    }
}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        // Close the channel; workers drain remaining jobs and exit.
        drop(self.sender.take());
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;

    #[test]
    fn executes_all_jobs() {
        let pool = ThreadPool::new(4, "test");
        let counter = Arc::new(AtomicUsize::new(0));
        for _ in 0..100 {
            let c = Arc::clone(&counter);
            pool.execute(move || {
                c.fetch_add(1, Ordering::SeqCst);
            });
        }
        drop(pool); // waits for completion
        assert_eq!(counter.load(Ordering::SeqCst), 100);
    }

    #[test]
    fn jobs_run_concurrently() {
        use std::sync::{Condvar, Mutex};
        let pool = ThreadPool::new(2, "conc");
        let rendezvous = Arc::new((Mutex::new(0usize), Condvar::new()));
        // Two jobs that each wait for the other: only completes if the
        // pool really runs two jobs in parallel.
        for _ in 0..2 {
            let r = Arc::clone(&rendezvous);
            pool.execute(move || {
                let (lock, cv) = &*r;
                let mut n = lock.lock().unwrap();
                *n += 1;
                cv.notify_all();
                while *n < 2 {
                    n = cv.wait(n).unwrap();
                }
            });
        }
        drop(pool);
        assert_eq!(*rendezvous.0.lock().unwrap(), 2);
    }

    #[test]
    fn drop_drains_queue() {
        let pool = ThreadPool::new(1, "drain");
        let counter = Arc::new(AtomicUsize::new(0));
        for _ in 0..50 {
            let c = Arc::clone(&counter);
            pool.execute(move || {
                std::thread::yield_now();
                c.fetch_add(1, Ordering::SeqCst);
            });
        }
        drop(pool);
        assert_eq!(counter.load(Ordering::SeqCst), 50);
    }

    #[test]
    #[should_panic(expected = "at least one worker")]
    fn zero_workers_panics() {
        ThreadPool::new(0, "bad");
    }
}
