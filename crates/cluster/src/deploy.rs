//! Deployment descriptions: cluster + memory split + mountpoint strategy.
//!
//! A [`Deployment`] bundles everything the experiment drivers in
//! `memfs-mtc` need to instantiate a simulated platform: the cluster spec,
//! the per-node storage budget ("we reserve 4GB for running the
//! applications ... the rest is used by either MemFS or AMFS", §4), the
//! per-FUSE-process overhead ("each FUSE process allocates around 200MB",
//! §4.2.1), and the mountpoint strategy of Figure 10.

use memfs_simcore::units::{GB, MB};
use serde::{Deserialize, Serialize};

use crate::memory::MemoryTracker;
use crate::mount::MountModel;
use crate::node::ClusterSpec;

pub use crate::mount::MountModel as MountStrategy;

/// Bytes reserved on each node for the application + OS (paper §4).
pub const APP_RESERVED_BYTES: u64 = 4 * GB;
/// Baseline overhead of one FUSE file-system process (paper §4.2.1).
pub const FUSE_PROCESS_OVERHEAD: u64 = 200 * MB;

/// A fully specified simulated platform.
#[derive(Debug, Clone)]
pub struct Deployment {
    /// Machines and interconnect.
    pub cluster: ClusterSpec,
    /// Mountpoint strategy (Figure 10's variable).
    pub mount: MountModel,
    /// Tasks scheduled concurrently per node ("cores used").
    pub cores_per_node: usize,
}

/// A compact, serializable record of a deployment for experiment output.
#[derive(Debug, Clone, Serialize, Deserialize, PartialEq, Eq)]
pub struct DeploymentLabel {
    /// Platform name ("DAS4-IPoIB", …).
    pub platform: String,
    /// Node count.
    pub nodes: usize,
    /// Concurrent tasks per node.
    pub cores_per_node: usize,
    /// Total concurrent tasks.
    pub total_cores: usize,
}

impl Deployment {
    /// A deployment using every core of every node with per-process
    /// mounts (MemFS' best configuration).
    pub fn full(cluster: ClusterSpec) -> Self {
        let cores_per_node = cluster.node.cores;
        Deployment {
            cluster,
            mount: MountModel::PerProcess,
            cores_per_node,
        }
    }

    /// Restrict to `cores_per_node` concurrent tasks per node (vertical
    /// scaling experiments).
    pub fn with_cores_per_node(mut self, cores: usize) -> Self {
        assert!(cores >= 1, "need at least one core per node");
        self.cores_per_node = cores;
        self
    }

    /// Use a single shared mountpoint per node (Figure 10a's deployment).
    pub fn with_single_mount(mut self) -> Self {
        self.mount = MountModel::Single;
        self
    }

    /// Per-node bytes available to the runtime file system: DRAM minus the
    /// application reservation minus the FS processes' own footprint.
    pub fn storage_budget_per_node(&self) -> u64 {
        let fs_processes = match self.mount {
            MountModel::Single => 1,
            MountModel::PerProcess => self.cores_per_node as u64,
        };
        self.cluster
            .node
            .dram_bytes
            .saturating_sub(APP_RESERVED_BYTES)
            .saturating_sub(fs_processes * FUSE_PROCESS_OVERHEAD)
    }

    /// A [`MemoryTracker`] sized for this deployment.
    pub fn memory_tracker(&self) -> MemoryTracker {
        MemoryTracker::new(self.cluster.n_nodes, self.storage_budget_per_node())
    }

    /// The total concurrent task slots across the cluster.
    pub fn total_cores(&self) -> usize {
        self.cluster.n_nodes * self.cores_per_node
    }

    /// Serializable label for experiment records.
    pub fn label(&self) -> DeploymentLabel {
        DeploymentLabel {
            platform: self.cluster.profile.name.to_string(),
            nodes: self.cluster.n_nodes,
            cores_per_node: self.cores_per_node,
            total_cores: self.total_cores(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn das4_budget_matches_paper_arithmetic() {
        // 24 GB - 4 GB reserved - 8 x 200 MB FUSE = ~18.4 GB for storage.
        let d = Deployment::full(ClusterSpec::das4_ipoib(64));
        assert_eq!(d.cores_per_node, 8);
        assert_eq!(d.total_cores(), 512);
        assert_eq!(d.storage_budget_per_node(), 24 * GB - 4 * GB - 8 * 200 * MB);
    }

    #[test]
    fn single_mount_has_one_fuse_process() {
        let d = Deployment::full(ClusterSpec::das4_ipoib(8)).with_single_mount();
        assert_eq!(d.storage_budget_per_node(), 24 * GB - 4 * GB - 200 * MB);
        assert_eq!(d.mount, MountModel::Single);
    }

    #[test]
    fn vertical_scaling_restricts_cores() {
        let d = Deployment::full(ClusterSpec::das4_ipoib(64)).with_cores_per_node(4);
        assert_eq!(d.total_cores(), 256);
    }

    #[test]
    fn tracker_is_sized_by_deployment() {
        let d = Deployment::full(ClusterSpec::ec2(32));
        let t = d.memory_tracker();
        assert_eq!(t.n_nodes(), 32);
        assert_eq!(t.capacity(), d.storage_budget_per_node());
    }

    #[test]
    fn label_summarizes_deployment() {
        let d = Deployment::full(ClusterSpec::ec2(8)).with_cores_per_node(16);
        let label = d.label();
        assert_eq!(label.total_cores, 128);
        assert_eq!(label.nodes, 8);
        assert_eq!(label.platform, "EC2-10GbE");
    }
}
