//! The FUSE mountpoint contention model (paper §4.2.2, Figure 10).
//!
//! "The FUSE kernel module uses for each mountpoint a spinlock which is not
//! able to scale when accessed from different NUMA nodes." With a single
//! mountpoint, MemFS on a 32-core EC2 instance stops scaling at ~8
//! application processes and *slows down* beyond that; deploying one
//! mountpoint per application process removes the bottleneck.
//!
//! We model a mountpoint as a processor-sharing efficiency curve applied to
//! a node's I/O service: ideal up to the knee (8 concurrent processes, the
//! paper's observed limit), with per-process degradation beyond it that is
//! steeper once the processes span NUMA domains (spinlock cacheline
//! ping-pong). The curve feeds [`memfs_simcore::PsResource`] /
//! the workflow engine's per-node I/O accounting.

use memfs_simcore::EfficiencyCurve;

use crate::node::NodeSpec;

/// Concurrency level at which the FUSE spinlock stops scaling.
pub const FUSE_KNEE: usize = 8;
/// Relative aggregate-throughput loss per process beyond the knee when all
/// processes sit in one NUMA domain.
pub const DEGRADATION_SAME_NUMA: f64 = 0.02;
/// The loss per process when the mountpoint is shared across NUMA domains
/// — spinlock transfer between sockets is what makes Figure 10a collapse.
pub const DEGRADATION_CROSS_NUMA: f64 = 0.045;

/// Mountpoint deployment model for one node.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MountModel {
    /// One FUSE mountpoint shared by every application process on the
    /// node (the paper's original deployment — Figure 10a).
    Single,
    /// One mountpoint per application process (the fix — Figure 10b).
    PerProcess,
}

impl MountModel {
    /// The efficiency curve a node with `spec` exhibits under this model.
    pub fn efficiency_curve(self, spec: &NodeSpec) -> EfficiencyCurve {
        match self {
            MountModel::PerProcess => EfficiencyCurve::Linear,
            MountModel::Single => {
                let cross_numa = spec.numa_domains > 1 && spec.cores > spec.cores_per_numa();
                EfficiencyCurve::Knee {
                    knee: FUSE_KNEE,
                    degradation: if cross_numa {
                        DEGRADATION_CROSS_NUMA
                    } else {
                        DEGRADATION_SAME_NUMA
                    },
                }
            }
        }
    }

    /// Aggregate relative I/O efficiency with `n` concurrent processes on
    /// a node with `spec`.
    pub fn efficiency(self, spec: &NodeSpec, n: usize) -> f64 {
        if n == 0 {
            return 1.0;
        }
        self.efficiency_curve(spec).efficiency(n)
    }

    /// Effective aggregate I/O *speedup* relative to one process: `n`
    /// concurrent processes complete `n * efficiency(n)` process-work per
    /// unit time.
    pub fn effective_parallelism(self, spec: &NodeSpec, n: usize) -> f64 {
        n as f64 * self.efficiency(spec, n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn per_process_is_linear() {
        let spec = NodeSpec::ec2_c3_8xlarge();
        let m = MountModel::PerProcess;
        for n in [1, 8, 16, 32] {
            assert_eq!(m.efficiency(&spec, n), 1.0);
        }
    }

    #[test]
    fn single_mount_scales_to_knee() {
        let spec = NodeSpec::ec2_c3_8xlarge();
        let m = MountModel::Single;
        for n in 1..=FUSE_KNEE {
            assert_eq!(m.efficiency(&spec, n), 1.0);
        }
        assert!(m.efficiency(&spec, 16) < 1.0);
        assert!(m.efficiency(&spec, 32) < m.efficiency(&spec, 16));
    }

    #[test]
    fn cross_numa_degrades_faster() {
        let ec2 = NodeSpec::ec2_c3_8xlarge(); // 32 cores, 2 NUMA
        let single_numa = NodeSpec {
            cores: 32,
            dram_bytes: ec2.dram_bytes,
            numa_domains: 1,
        };
        let m = MountModel::Single;
        assert!(m.efficiency(&ec2, 24) < m.efficiency(&single_numa, 24));
    }

    #[test]
    fn figure10_shape_aggregate_throughput_collapses() {
        // The paper's Figure 10a: with a single mountpoint, running 32
        // processes is *slower in wall time* than 8 — i.e. aggregate
        // throughput at 32 must be lower than perfect 8-way.
        let spec = NodeSpec::ec2_c3_8xlarge();
        let m = MountModel::Single;
        let agg8 = 8.0 * 1.0;
        let agg32 = 32.0 * m.efficiency(&spec, 32);
        assert!(
            agg32 < agg8 * 1.2,
            "single-mount 32-way aggregate {agg32} should not meaningfully beat 8-way {agg8}"
        );
    }

    #[test]
    fn zero_concurrency_is_neutral() {
        let spec = NodeSpec::das4();
        assert_eq!(MountModel::Single.efficiency(&spec, 0), 1.0);
    }
}
