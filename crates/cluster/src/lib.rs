//! # memfs-cluster
//!
//! The simulated cluster substrate for the MemFS reproduction: machine
//! specifications matching the paper's two platforms (DAS4 and Amazon EC2
//! c3.8xlarge), per-node memory accounting (the input to Figure 9 and
//! Table 3), and the FUSE mountpoint contention model behind Figure 10.
//!
//! The paper's platforms:
//!
//! * **DAS4** — dual-quad-core Intel E5620 (8 cores), 24 GB DRAM per node,
//!   QDR InfiniBand used via IPoIB at ~1 GB/s, plus commodity 1 GbE;
//!   up to 64 nodes / 512 cores.
//! * **EC2 c3.8xlarge** — 32 virtual cores over two NUMA nodes, 60 GB
//!   DRAM, 10 GbE at ~1 GB/s measured; up to 32 instances / 1024 cores.
//!
//! "Out of the total memory of a node, we reserve 4GB for running the
//! applications or benchmarks and the operating system. The rest of the
//! system memory is used by either MemFS or AMFS" (§4).

pub mod deploy;
pub mod memory;
pub mod mount;
pub mod node;

pub use deploy::{Deployment, MountStrategy};
pub use memory::{MemoryError, MemoryTracker};
pub use mount::MountModel;
pub use node::{ClusterSpec, NodeSpec};
