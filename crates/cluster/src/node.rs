//! Machine and cluster specifications.

use memfs_netsim::NetProfile;
use memfs_simcore::units::GB;

/// One machine's hardware.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NodeSpec {
    /// Compute cores available for application tasks.
    pub cores: usize,
    /// Total DRAM in bytes.
    pub dram_bytes: u64,
    /// NUMA domains (the EC2 c3.8xlarge's two sockets matter for the FUSE
    /// spinlock model of Figure 10).
    pub numa_domains: usize,
}

impl NodeSpec {
    /// A DAS4 compute node: dual quad-core E5620, 24 GB.
    pub fn das4() -> Self {
        NodeSpec {
            cores: 8,
            dram_bytes: 24 * GB,
            numa_domains: 2,
        }
    }

    /// An EC2 c3.8xlarge instance: 32 vCPUs over 2 NUMA nodes, 60 GB.
    pub fn ec2_c3_8xlarge() -> Self {
        NodeSpec {
            cores: 32,
            dram_bytes: 60 * GB,
            numa_domains: 2,
        }
    }

    /// Cores per NUMA domain.
    pub fn cores_per_numa(&self) -> usize {
        (self.cores / self.numa_domains.max(1)).max(1)
    }
}

/// A homogeneous cluster plus its interconnect profile.
#[derive(Debug, Clone)]
pub struct ClusterSpec {
    /// Number of nodes.
    pub n_nodes: usize,
    /// Per-node hardware.
    pub node: NodeSpec,
    /// Network/platform profile.
    pub profile: NetProfile,
}

impl ClusterSpec {
    /// DAS4 over IP-over-InfiniBand (the paper's primary configuration).
    pub fn das4_ipoib(n_nodes: usize) -> Self {
        ClusterSpec {
            n_nodes,
            node: NodeSpec::das4(),
            profile: NetProfile::das4_ipoib(),
        }
    }

    /// DAS4 over commodity gigabit Ethernet (Table 1's second column set).
    pub fn das4_gbe(n_nodes: usize) -> Self {
        ClusterSpec {
            n_nodes,
            node: NodeSpec::das4(),
            profile: NetProfile::das4_gbe(),
        }
    }

    /// EC2 c3.8xlarge instances over 10 GbE.
    pub fn ec2(n_nodes: usize) -> Self {
        ClusterSpec {
            n_nodes,
            node: NodeSpec::ec2_c3_8xlarge(),
            profile: NetProfile::ec2_c3_8xlarge(),
        }
    }

    /// Total cores across the cluster.
    pub fn total_cores(&self) -> usize {
        self.n_nodes * self.node.cores
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn das4_matches_paper() {
        let c = ClusterSpec::das4_ipoib(64);
        assert_eq!(c.total_cores(), 512); // the paper's 512-core ceiling
        assert_eq!(c.node.dram_bytes, 24 * GB);
        assert_eq!(c.node.cores_per_numa(), 4);
        assert_eq!(c.profile.name, "DAS4-IPoIB");
    }

    #[test]
    fn ec2_matches_paper() {
        let c = ClusterSpec::ec2(32);
        assert_eq!(c.total_cores(), 1024); // the paper's largest setup
        assert_eq!(c.node.dram_bytes, 60 * GB);
        assert_eq!(c.node.cores_per_numa(), 16);
    }

    #[test]
    fn gbe_profile_is_slow() {
        let fast = ClusterSpec::das4_ipoib(8);
        let slow = ClusterSpec::das4_gbe(8);
        assert!(slow.profile.nic_bw.bytes_per_s() < fast.profile.nic_bw.bytes_per_s() / 5.0);
    }
}
