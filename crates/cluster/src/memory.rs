//! Per-node memory accounting for the simulated cluster.
//!
//! This is the instrument behind the paper's storage-balance results:
//! Figure 9 (aggregate memory consumption, MemFS vs AMFS) and Table 3
//! (AMFS concentrating data on the "scheduler node"). The tracker records
//! current and peak usage per node and refuses allocations beyond a node's
//! budget — the failure mode that prevents AMFS from running the 12x12
//! Montage workflow in the paper (§4.2.1).

use std::fmt;

/// Error returned when a node's memory budget is exhausted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemoryError {
    /// The node that ran out.
    pub node: usize,
    /// Bytes requested.
    pub requested: u64,
    /// Bytes still free.
    pub available: u64,
}

impl fmt::Display for MemoryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "node {} out of memory: requested {} bytes, {} available",
            self.node, self.requested, self.available
        )
    }
}

impl std::error::Error for MemoryError {}

/// Tracks memory usage across the nodes of a simulated cluster.
#[derive(Debug, Clone)]
pub struct MemoryTracker {
    capacity: u64,
    used: Vec<u64>,
    peak: Vec<u64>,
}

impl MemoryTracker {
    /// A tracker for `n_nodes` nodes with `capacity` bytes each (the
    /// storage budget, i.e. DRAM minus the 4 GB application reservation).
    pub fn new(n_nodes: usize, capacity: u64) -> Self {
        MemoryTracker {
            capacity,
            used: vec![0; n_nodes],
            peak: vec![0; n_nodes],
        }
    }

    /// Number of nodes tracked.
    pub fn n_nodes(&self) -> usize {
        self.used.len()
    }

    /// Per-node capacity in bytes.
    pub fn capacity(&self) -> u64 {
        self.capacity
    }

    /// Reserve `bytes` on `node`; fails when the budget would be exceeded.
    pub fn alloc(&mut self, node: usize, bytes: u64) -> Result<(), MemoryError> {
        let used = &mut self.used[node];
        let available = self.capacity - *used;
        if bytes > available {
            return Err(MemoryError {
                node,
                requested: bytes,
                available,
            });
        }
        *used += bytes;
        if *used > self.peak[node] {
            self.peak[node] = *used;
        }
        Ok(())
    }

    /// Release `bytes` on `node`.
    ///
    /// # Panics
    /// Panics on releasing more than is allocated — an accounting bug.
    pub fn free(&mut self, node: usize, bytes: u64) {
        assert!(
            self.used[node] >= bytes,
            "node {node}: freeing {bytes} bytes but only {} allocated",
            self.used[node]
        );
        self.used[node] -= bytes;
    }

    /// Current usage of `node` in bytes.
    pub fn used(&self, node: usize) -> u64 {
        self.used[node]
    }

    /// Peak usage of `node` in bytes.
    pub fn peak(&self, node: usize) -> u64 {
        self.peak[node]
    }

    /// Sum of current usage over all nodes.
    pub fn total_used(&self) -> u64 {
        self.used.iter().sum()
    }

    /// Sum of peak usage over all nodes (the paper's "aggregate memory
    /// usage" metric of Figure 9).
    pub fn total_peak(&self) -> u64 {
        self.peak.iter().sum()
    }

    /// Highest single-node peak (the scheduler-node hotspot of Table 3).
    pub fn max_peak(&self) -> u64 {
        self.peak.iter().copied().max().unwrap_or(0)
    }

    /// Peak imbalance: max node peak over mean node peak (1.0 = balanced).
    pub fn peak_imbalance(&self) -> f64 {
        let total = self.total_peak();
        if total == 0 {
            return 1.0;
        }
        let mean = total as f64 / self.used.len() as f64;
        self.max_peak() as f64 / mean
    }

    /// Per-node peaks (for Table 3-style reporting).
    pub fn peaks(&self) -> &[u64] {
        &self.peak
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_free_and_peaks() {
        let mut m = MemoryTracker::new(2, 1000);
        m.alloc(0, 600).unwrap();
        m.alloc(0, 300).unwrap();
        m.free(0, 500);
        assert_eq!(m.used(0), 400);
        assert_eq!(m.peak(0), 900);
        assert_eq!(m.used(1), 0);
        assert_eq!(m.total_used(), 400);
        assert_eq!(m.total_peak(), 900);
    }

    #[test]
    fn oom_reports_request_and_available() {
        let mut m = MemoryTracker::new(1, 100);
        m.alloc(0, 70).unwrap();
        let err = m.alloc(0, 50).unwrap_err();
        assert_eq!(err.requested, 50);
        assert_eq!(err.available, 30);
        assert_eq!(err.node, 0);
        // Failed alloc leaves state unchanged.
        assert_eq!(m.used(0), 70);
    }

    #[test]
    fn imbalance_detects_hotspots() {
        let mut m = MemoryTracker::new(4, 1000);
        m.alloc(0, 800).unwrap(); // the "scheduler node"
        for n in 1..4 {
            m.alloc(n, 100).unwrap();
        }
        // mean peak = 275, max = 800 -> imbalance ≈ 2.9
        assert!((m.peak_imbalance() - 800.0 / 275.0).abs() < 1e-9);
        assert_eq!(m.max_peak(), 800);
    }

    #[test]
    fn balanced_usage_has_imbalance_one() {
        let mut m = MemoryTracker::new(4, 1000);
        for n in 0..4 {
            m.alloc(n, 250).unwrap();
        }
        assert_eq!(m.peak_imbalance(), 1.0);
        assert_eq!(MemoryTracker::new(4, 100).peak_imbalance(), 1.0);
    }

    #[test]
    #[should_panic(expected = "freeing")]
    fn over_free_panics() {
        let mut m = MemoryTracker::new(1, 100);
        m.alloc(0, 10).unwrap();
        m.free(0, 20);
    }
}
