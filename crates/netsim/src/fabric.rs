//! Cluster network topology: per-node NIC constraints over a full-bisection
//! core, plus a memory-bandwidth constraint for node-local transfers.

use crate::maxmin::ConstraintId;

/// Index of a node (compute/storage machine) in the fabric.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub usize);

/// A full-bisection fabric of `n` identical nodes.
///
/// Constraint layout (used by [`crate::FlowNet`]):
/// * `3i`     — node `i` egress NIC capacity,
/// * `3i + 1` — node `i` ingress NIC capacity,
/// * `3i + 2` — node `i` memory bandwidth (local copies; also charged by
///   remote transfers touching the node's DRAM),
/// * `3n`     — optional aggregate core capacity (absent when the core is
///   non-blocking, the DAS4/EC2 assumption).
#[derive(Debug, Clone)]
pub struct Fabric {
    n_nodes: usize,
    nic_bw: f64,
    mem_bw: f64,
    core_bw: Option<f64>,
}

impl Fabric {
    /// A fabric of `n_nodes` nodes with `nic_bw` bytes/s full-duplex NICs
    /// and `mem_bw` bytes/s local memory bandwidth.
    ///
    /// # Panics
    /// Panics on zero nodes or non-positive bandwidths.
    pub fn new(n_nodes: usize, nic_bw: f64, mem_bw: f64) -> Self {
        assert!(n_nodes > 0, "fabric needs at least one node");
        assert!(nic_bw > 0.0 && mem_bw > 0.0, "bandwidths must be positive");
        Fabric {
            n_nodes,
            nic_bw,
            mem_bw,
            core_bw: None,
        }
    }

    /// Limit the aggregate traffic crossing the core to `core_bw` bytes/s
    /// (models an oversubscribed spine; unused for the paper's platforms,
    /// available for ablations).
    pub fn with_core_capacity(mut self, core_bw: f64) -> Self {
        assert!(core_bw > 0.0, "core bandwidth must be positive");
        self.core_bw = Some(core_bw);
        self
    }

    /// Number of nodes.
    pub fn n_nodes(&self) -> usize {
        self.n_nodes
    }

    /// NIC bandwidth in bytes/s (each direction).
    pub fn nic_bw(&self) -> f64 {
        self.nic_bw
    }

    /// Node-local memory bandwidth in bytes/s.
    pub fn mem_bw(&self) -> f64 {
        self.mem_bw
    }

    /// The constraint-capacity vector for the max-min solver.
    pub fn capacities(&self) -> Vec<f64> {
        let mut caps = Vec::with_capacity(3 * self.n_nodes + 1);
        for _ in 0..self.n_nodes {
            caps.push(self.nic_bw); // egress
            caps.push(self.nic_bw); // ingress
            caps.push(self.mem_bw); // memory
        }
        if let Some(core) = self.core_bw {
            caps.push(core);
        }
        caps
    }

    /// The constraints a transfer from `src` to `dst` traverses.
    ///
    /// Local transfers (`src == dst`) touch only the node's memory system;
    /// remote transfers use the source egress NIC, the destination ingress
    /// NIC and (if configured) the shared core. Remote transfers also charge
    /// both endpoints' memory bandwidth; with the paper's platforms memory
    /// is 10x faster than the NIC, so this only matters when a node serves
    /// many concurrent streams — exactly the regime of Figure 16's
    /// system-vs-application bandwidth analysis.
    ///
    /// # Panics
    /// Panics if either node is out of range.
    pub fn route(&self, src: NodeId, dst: NodeId) -> Vec<ConstraintId> {
        assert!(src.0 < self.n_nodes, "src node {} out of range", src.0);
        assert!(dst.0 < self.n_nodes, "dst node {} out of range", dst.0);
        if src == dst {
            vec![3 * src.0 + 2]
        } else {
            let mut route = vec![3 * src.0, 3 * dst.0 + 1, 3 * src.0 + 2, 3 * dst.0 + 2];
            if self.core_bw.is_some() {
                route.push(3 * self.n_nodes);
            }
            route
        }
    }

    /// Constraint id of node `i`'s egress link (for utilization queries).
    pub fn egress_constraint(&self, node: NodeId) -> ConstraintId {
        3 * node.0
    }

    /// Constraint id of node `i`'s ingress link.
    pub fn ingress_constraint(&self, node: NodeId) -> ConstraintId {
        3 * node.0 + 1
    }

    /// Constraint id of node `i`'s memory system.
    pub fn memory_constraint(&self, node: NodeId) -> ConstraintId {
        3 * node.0 + 2
    }

    /// The route of a **striped read** landing on `dst`: a symmetric
    /// transfer whose sources are spread over all servers. Only the
    /// reader's ingress NIC and memory constrain it individually; the
    /// spread source side is accounted collectively by the aggregate
    /// constraint (see [`Self::aggregate_constraint`]).
    ///
    /// # Panics
    /// Panics unless the fabric was built
    /// [`Self::with_aggregate_capacity`]; without the collective
    /// constraint, half-routes would under-count the serving side.
    pub fn route_striped_read(&self, dst: NodeId) -> Vec<ConstraintId> {
        assert!(dst.0 < self.n_nodes, "dst node {} out of range", dst.0);
        let agg = self
            .aggregate_constraint()
            .expect("striped routes need with_aggregate_capacity");
        vec![3 * dst.0 + 1, 3 * dst.0 + 2, agg]
    }

    /// The route of a **striped write** leaving `src` toward all servers;
    /// mirror of [`Self::route_striped_read`].
    ///
    /// # Panics
    /// Panics unless the fabric has an aggregate constraint.
    pub fn route_striped_write(&self, src: NodeId) -> Vec<ConstraintId> {
        assert!(src.0 < self.n_nodes, "src node {} out of range", src.0);
        let agg = self
            .aggregate_constraint()
            .expect("striped routes need with_aggregate_capacity");
        vec![3 * src.0, 3 * src.0 + 2, agg]
    }

    /// Id of the aggregate (whole-fabric) constraint, if configured.
    pub fn aggregate_constraint(&self) -> Option<ConstraintId> {
        self.core_bw.map(|_| 3 * self.n_nodes)
    }

    /// Add the collective fabric constraint sized for symmetric traffic:
    /// every transferred byte consumes one NIC egress somewhere and one
    /// NIC ingress somewhere, so the fabric as a whole moves at most
    /// `n * nic_bw` bytes/s. Required when using the striped half-routes.
    pub fn with_aggregate_capacity(self) -> Self {
        let cap = self.n_nodes as f64 * self.nic_bw;
        self.with_core_capacity(cap)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn capacities_layout() {
        let f = Fabric::new(2, 100.0, 1000.0);
        assert_eq!(
            f.capacities(),
            vec![100.0, 100.0, 1000.0, 100.0, 100.0, 1000.0]
        );
        let f = f.with_core_capacity(150.0);
        assert_eq!(f.capacities().len(), 7);
        assert_eq!(f.capacities()[6], 150.0);
    }

    #[test]
    fn remote_route_uses_both_nics_and_memories() {
        let f = Fabric::new(4, 100.0, 1000.0);
        let r = f.route(NodeId(1), NodeId(3));
        assert_eq!(r, vec![3, 10, 5, 11]);
    }

    #[test]
    fn local_route_uses_memory_only() {
        let f = Fabric::new(4, 100.0, 1000.0);
        assert_eq!(f.route(NodeId(2), NodeId(2)), vec![8]);
    }

    #[test]
    fn core_constraint_appended_when_configured() {
        let f = Fabric::new(2, 100.0, 1000.0).with_core_capacity(50.0);
        let r = f.route(NodeId(0), NodeId(1));
        assert!(r.contains(&6));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_node_panics() {
        let f = Fabric::new(2, 100.0, 1000.0);
        f.route(NodeId(0), NodeId(2));
    }

    #[test]
    #[should_panic(expected = "at least one node")]
    fn zero_nodes_panics() {
        Fabric::new(0, 1.0, 1.0);
    }
}
