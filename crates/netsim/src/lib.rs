//! # memfs-netsim
//!
//! A flow-level network fabric simulator with **max-min fair bandwidth
//! sharing**, used to reproduce the MemFS paper's cluster (DAS4, IPoIB and
//! 1GbE) and cloud (EC2 c3.8xlarge, 10GbE) experiments.
//!
//! ## Why flow-level?
//!
//! Every scaling phenomenon the paper reports is a *bandwidth contention*
//! phenomenon:
//!
//! * MemFS reads/writes stripe across all N servers, so a single client can
//!   use the aggregate bandwidth of many NICs (paper §3.2.1);
//! * AMFS' N-1 read multicasts a file from one source whose egress link is
//!   shared by all receivers (paper §4.1);
//! * AMFS' replicate-on-read concentrates traffic on the "scheduler node",
//!   turning its NIC into a centralized bottleneck (paper Table 3);
//! * the I/O-bound Montage/BLAST stages saturate the ~1 GB/s node links at
//!   16-32 cores per node (paper Figures 12b-15b).
//!
//! A fluid model in which concurrent transfers share link capacity max-min
//! fairly captures all of these directly, runs in microseconds per event,
//! and stays deterministic.
//!
//! ## Model
//!
//! The fabric is a full-bisection two-level topology (as on DAS4's QDR
//! InfiniBand and EC2 placement groups): each node has an egress and an
//! ingress NIC constraint, local (same-node) transfers are bounded by memory
//! bandwidth instead, and an optional aggregate core capacity can be
//! configured for oversubscribed cores. Transfers are [`FlowNet`] flows that
//! activate after a configurable latency and then drain at the max-min fair
//! rate, recomputed at every arrival and departure.

pub mod fabric;
pub mod flownet;
pub mod maxmin;
pub mod profile;

pub use fabric::{Fabric, NodeId};
pub use flownet::{FlowEvent, FlowId, FlowNet};
pub use profile::NetProfile;
