//! The dynamic flow engine: active transfers draining at max-min fair
//! rates, recomputed at every arrival and departure.
//!
//! [`FlowNet`] is driven from an outer event loop (the workflow engine in
//! `memfs-mtc`): start flows, ask for the next interesting time, advance to
//! it, collect completions. Between membership changes all rates are
//! constant, so only arrival/activation/departure instants need events.

use std::collections::{BTreeMap, HashMap};

use memfs_simcore::{SimDuration, SimTime};

use crate::fabric::{Fabric, NodeId};
use crate::maxmin::maxmin_rates_grouped;

/// Identifier of a transfer managed by [`FlowNet`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FlowId(pub u64);

/// What happened when the engine advanced to an event time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FlowEvent {
    /// The transfer delivered its last byte and left the network.
    Completed(FlowId),
    /// The transfer finished its latency phase and started draining
    /// (surfaced for tracing; most callers only act on `Completed`).
    Activated(FlowId),
}

#[derive(Debug, Clone, Copy)]
enum Phase {
    /// Waiting out the network latency before bytes move.
    Pending { activate_at: SimTime },
    /// Draining at `rate` bytes/s.
    Active { rate: f64 },
}

#[derive(Debug)]
struct Flow {
    /// The capacity constraints this transfer traverses.
    route: Vec<usize>,
    remaining: f64,
    phase: Phase,
}

/// The flow engine over a [`Fabric`].
///
/// ```
/// use memfs_netsim::{Fabric, FlowNet, NodeId, FlowEvent};
/// use memfs_simcore::{SimDuration, SimTime};
///
/// let fabric = Fabric::new(2, 100.0, 10_000.0); // 100 B/s NICs
/// let mut net = FlowNet::new(fabric, SimDuration::ZERO);
/// let id = net.start_flow(SimTime::ZERO, NodeId(0), NodeId(1), 200);
/// let done_at = net.next_event().unwrap();
/// assert_eq!(done_at.as_secs_f64(), 2.0); // 200 B at 100 B/s
/// assert_eq!(net.advance_to(done_at), vec![FlowEvent::Completed(id)]);
/// ```
pub struct FlowNet {
    fabric: Fabric,
    latency: SimDuration,
    flows: BTreeMap<FlowId, Flow>,
    next_id: u64,
    last_update: SimTime,
    delivered: f64,
}

impl FlowNet {
    /// Create an engine over `fabric` where every transfer pays `latency`
    /// before its first byte moves (one round trip of the profile).
    pub fn new(fabric: Fabric, latency: SimDuration) -> Self {
        FlowNet {
            fabric,
            latency,
            flows: BTreeMap::new(),
            next_id: 0,
            last_update: SimTime::ZERO,
            delivered: 0.0,
        }
    }

    /// The fabric this engine runs over.
    pub fn fabric(&self) -> &Fabric {
        &self.fabric
    }

    /// Number of flows currently pending or active.
    pub fn in_flight(&self) -> usize {
        self.flows.len()
    }

    /// Total bytes delivered so far across all transfers.
    pub fn delivered_bytes(&self) -> f64 {
        self.delivered
    }

    /// Current virtual time of the engine's internal accounting.
    pub fn now(&self) -> SimTime {
        self.last_update
    }

    /// Start a transfer of `bytes` from `src` to `dst` at time `now`.
    ///
    /// Zero-byte transfers are legal and complete right after the latency
    /// phase; they model pure control messages (e.g. metadata lookups).
    pub fn start_flow(&mut self, now: SimTime, src: NodeId, dst: NodeId, bytes: u64) -> FlowId {
        let route = self.fabric.route(src, dst);
        self.start_flow_route(now, route, bytes)
    }

    /// Start a striped read of `bytes` landing on `dst` (sources spread
    /// symmetrically over all servers — the MemFS read pattern).
    pub fn start_striped_read(&mut self, now: SimTime, dst: NodeId, bytes: u64) -> FlowId {
        let route = self.fabric.route_striped_read(dst);
        self.start_flow_route(now, route, bytes)
    }

    /// Start a striped write of `bytes` leaving `src` toward all servers.
    pub fn start_striped_write(&mut self, now: SimTime, src: NodeId, bytes: u64) -> FlowId {
        let route = self.fabric.route_striped_write(src);
        self.start_flow_route(now, route, bytes)
    }

    /// Start a transfer over an explicit constraint route (advanced; the
    /// workflow engine uses this for aggregated transfers).
    ///
    /// # Panics
    /// Panics on an empty route or unknown constraint ids.
    pub fn start_flow_route(&mut self, now: SimTime, route: Vec<usize>, bytes: u64) -> FlowId {
        assert!(!route.is_empty(), "flow needs at least one constraint");
        let n_constraints = self.fabric.capacities().len();
        assert!(
            route.iter().all(|&c| c < n_constraints),
            "route references unknown constraint"
        );
        self.serve_until(now);
        let id = FlowId(self.next_id);
        self.next_id += 1;
        let phase = if self.latency == SimDuration::ZERO {
            Phase::Active { rate: 0.0 }
        } else {
            Phase::Pending {
                activate_at: now + self.latency,
            }
        };
        self.flows.insert(
            id,
            Flow {
                route,
                remaining: bytes as f64,
                phase,
            },
        );
        self.recompute_rates();
        id
    }

    /// Cancel a transfer, returning its undelivered bytes, or `None` if it
    /// already completed or never existed.
    pub fn cancel(&mut self, now: SimTime, id: FlowId) -> Option<f64> {
        self.serve_until(now);
        let flow = self.flows.remove(&id)?;
        self.recompute_rates();
        Some(flow.remaining)
    }

    /// The next instant at which something happens (an activation or a
    /// completion), or `None` when nothing is in flight.
    pub fn next_event(&self) -> Option<SimTime> {
        let mut next = SimTime::MAX;
        for flow in self.flows.values() {
            let t = match flow.phase {
                Phase::Pending { activate_at } => activate_at,
                Phase::Active { rate } => {
                    if flow.remaining <= 0.0 {
                        self.last_update
                    } else if rate > 0.0 {
                        self.last_update
                            .saturating_add(SimDuration::from_secs_f64(flow.remaining / rate))
                    } else {
                        continue; // transiently rate-less; cannot finish
                    }
                }
            };
            next = next.min(t);
        }
        (next != SimTime::MAX).then_some(next)
    }

    /// Advance the engine to `now`: serve bytes, activate flows whose
    /// latency elapsed, and return completions/activations in deterministic
    /// [`FlowId`] order (completions of a given id before activations of a
    /// later one, matching id order overall).
    ///
    /// # Panics
    /// Panics if `now` precedes the engine's current time.
    pub fn advance_to(&mut self, now: SimTime) -> Vec<FlowEvent> {
        self.serve_until(now);
        let mut events = Vec::new();

        // Completions: active flows fully served.
        let done: Vec<FlowId> = self
            .flows
            .iter()
            .filter(|(_, f)| matches!(f.phase, Phase::Active { .. }) && f.remaining <= 1e-6)
            .map(|(&id, _)| id)
            .collect();

        // Activations: pending flows whose latency elapsed.
        let due: Vec<FlowId> = self
            .flows
            .iter()
            .filter(
                |(_, f)| matches!(f.phase, Phase::Pending { activate_at } if activate_at <= now),
            )
            .map(|(&id, _)| id)
            .collect();

        let membership_changed = !done.is_empty() || !due.is_empty();
        for id in done {
            self.flows.remove(&id);
            events.push(FlowEvent::Completed(id));
        }
        for id in due {
            let flow = self.flows.get_mut(&id).expect("pending flow exists");
            flow.phase = Phase::Active { rate: 0.0 };
            events.push(FlowEvent::Activated(id));
            // A zero-byte control message is complete the moment it
            // activates.
            if flow.remaining <= 1e-6 {
                self.flows.remove(&id);
                events.push(FlowEvent::Completed(id));
            }
        }
        if membership_changed {
            self.recompute_rates();
        }
        events.sort_unstable_by_key(|e| match e {
            FlowEvent::Completed(id) | FlowEvent::Activated(id) => *id,
        });
        events
    }

    /// Drive the engine until nothing is in flight, returning completions
    /// in order with their completion times. Convenience for benchmarks
    /// that only need total transfer times.
    pub fn run_to_idle(&mut self) -> Vec<(SimTime, FlowId)> {
        let mut out = Vec::new();
        while let Some(t) = self.next_event() {
            for ev in self.advance_to(t) {
                if let FlowEvent::Completed(id) = ev {
                    out.push((t, id));
                }
            }
        }
        out
    }

    /// Instantaneous rate of a flow in bytes/s (0 while pending), or `None`
    /// if unknown/completed.
    pub fn flow_rate(&self, id: FlowId) -> Option<f64> {
        self.flows.get(&id).map(|f| match f.phase {
            Phase::Pending { .. } => 0.0,
            Phase::Active { rate } => rate,
        })
    }

    /// Serve bytes between `last_update` and `now` at current rates.
    fn serve_until(&mut self, now: SimTime) {
        assert!(
            now >= self.last_update,
            "FlowNet: time went backwards ({now} < {})",
            self.last_update
        );
        if now == self.last_update {
            return;
        }
        let dt = now.duration_since(self.last_update).as_secs_f64();
        self.last_update = now;
        for flow in self.flows.values_mut() {
            if let Phase::Active { rate } = flow.phase {
                let served = (rate * dt).min(flow.remaining);
                flow.remaining -= served;
                self.delivered += served;
            }
        }
    }

    /// Re-run the max-min solver over the currently *active* flows.
    ///
    /// Flows sharing a route receive identical max-min rates, so the
    /// solve is performed per route *group* — O(groups²) instead of
    /// O(flows²), which is what makes 1000-task workflow simulations
    /// tractable (a 64-node striped workload has ≤ ~3 routes per node).
    fn recompute_rates(&mut self) {
        let caps = self.fabric.capacities();
        let mut group_index: HashMap<&[usize], usize> = HashMap::new();
        let mut groups: Vec<(Vec<usize>, u64)> = Vec::new();
        let mut members: Vec<Vec<FlowId>> = Vec::new();
        for (&id, flow) in &self.flows {
            if matches!(flow.phase, Phase::Active { .. }) && flow.remaining > 1e-6 {
                match group_index.get(flow.route.as_slice()) {
                    Some(&g) => {
                        groups[g].1 += 1;
                        members[g].push(id);
                    }
                    None => {
                        group_index.insert(flow.route.as_slice(), groups.len());
                        groups.push((flow.route.clone(), 1));
                        members.push(vec![id]);
                    }
                }
            }
        }
        drop(group_index);
        let rates = maxmin_rates_grouped(&caps, &groups);
        for (g, rate) in rates.into_iter().enumerate() {
            for &id in &members[g] {
                if let Some(flow) = self.flows.get_mut(&id) {
                    flow.phase = Phase::Active { rate };
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn net(nodes: usize, nic: f64) -> FlowNet {
        FlowNet::new(Fabric::new(nodes, nic, nic * 10.0), SimDuration::ZERO)
    }

    fn secs(t: SimTime) -> f64 {
        t.as_secs_f64()
    }

    #[test]
    fn single_flow_runs_at_nic_speed() {
        let mut n = net(2, 100.0);
        n.start_flow(SimTime::ZERO, NodeId(0), NodeId(1), 500);
        assert!((secs(n.next_event().unwrap()) - 5.0).abs() < 1e-9);
    }

    #[test]
    fn two_flows_from_same_source_share_egress() {
        let mut n = net(3, 100.0);
        n.start_flow(SimTime::ZERO, NodeId(0), NodeId(1), 100);
        n.start_flow(SimTime::ZERO, NodeId(0), NodeId(2), 100);
        // Each gets 50 B/s; both done at 2 s.
        let t = n.next_event().unwrap();
        assert!((secs(t) - 2.0).abs() < 1e-9);
        assert_eq!(n.advance_to(t).len(), 2);
        assert_eq!(n.in_flight(), 0);
    }

    #[test]
    fn disjoint_pairs_use_full_bisection() {
        // 4 nodes, 2 disjoint transfers: both at full NIC speed — the
        // "premium network" property MemFS exploits.
        let mut n = net(4, 100.0);
        n.start_flow(SimTime::ZERO, NodeId(0), NodeId(1), 100);
        n.start_flow(SimTime::ZERO, NodeId(2), NodeId(3), 100);
        assert!((secs(n.next_event().unwrap()) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn incast_bottlenecks_on_ingress() {
        // 4 senders to node 0: the paper's global-aggregation pattern.
        let mut n = net(5, 100.0);
        for s in 1..5 {
            n.start_flow(SimTime::ZERO, NodeId(s), NodeId(0), 100);
        }
        // Ingress 100 B/s shared 4 ways -> 25 B/s each -> 4 s.
        assert!((secs(n.next_event().unwrap()) - 4.0).abs() < 1e-9);
    }

    #[test]
    fn local_flow_uses_memory_bandwidth() {
        let mut n = net(2, 100.0); // mem bw = 1000
        n.start_flow(SimTime::ZERO, NodeId(0), NodeId(0), 1000);
        assert!((secs(n.next_event().unwrap()) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn completion_releases_bandwidth_to_survivors() {
        let mut n = net(3, 100.0);
        let short = n.start_flow(SimTime::ZERO, NodeId(0), NodeId(1), 50);
        let long = n.start_flow(SimTime::ZERO, NodeId(0), NodeId(2), 150);
        // Shared egress 50/50: short done at t=1 with long having 100 left.
        let t1 = n.next_event().unwrap();
        assert!((secs(t1) - 1.0).abs() < 1e-9);
        assert_eq!(n.advance_to(t1), vec![FlowEvent::Completed(short)]);
        // Long now alone at 100 B/s: finishes at t=2.
        let t2 = n.next_event().unwrap();
        assert!((secs(t2) - 2.0).abs() < 1e-9);
        assert_eq!(n.advance_to(t2), vec![FlowEvent::Completed(long)]);
    }

    #[test]
    fn latency_delays_first_byte() {
        let fabric = Fabric::new(2, 100.0, 1000.0);
        let mut n = FlowNet::new(fabric, SimDuration::from_millis(10));
        let id = n.start_flow(SimTime::ZERO, NodeId(0), NodeId(1), 100);
        // Activation at 10 ms.
        let t = n.next_event().unwrap();
        assert_eq!(t, SimTime::from_nanos(10_000_000));
        assert_eq!(n.advance_to(t), vec![FlowEvent::Activated(id)]);
        // Then 1 s of transfer.
        let t = n.next_event().unwrap();
        assert!((secs(t) - 1.010).abs() < 1e-9);
    }

    #[test]
    fn zero_byte_flow_is_latency_only() {
        let fabric = Fabric::new(2, 100.0, 1000.0);
        let mut n = FlowNet::new(fabric, SimDuration::from_micros(50));
        let id = n.start_flow(SimTime::ZERO, NodeId(0), NodeId(1), 0);
        let t = n.next_event().unwrap();
        assert_eq!(t, SimTime::from_nanos(50_000));
        let evs = n.advance_to(t);
        assert!(evs.contains(&FlowEvent::Completed(id)));
        assert_eq!(n.in_flight(), 0);
    }

    #[test]
    fn cancel_returns_remaining_bytes() {
        let mut n = net(2, 100.0);
        let id = n.start_flow(SimTime::ZERO, NodeId(0), NodeId(1), 1000);
        let left = n.cancel(SimTime::from_nanos(2_000_000_000), id).unwrap();
        assert!((left - 800.0).abs() < 1e-6);
        assert!(n.cancel(SimTime::from_nanos(2_000_000_000), id).is_none());
    }

    #[test]
    fn run_to_idle_reports_all_completions_in_order() {
        let mut n = net(4, 100.0);
        n.start_flow(SimTime::ZERO, NodeId(0), NodeId(1), 100);
        n.start_flow(SimTime::ZERO, NodeId(2), NodeId(3), 300);
        let done = n.run_to_idle();
        assert_eq!(done.len(), 2);
        assert!(done[0].0 <= done[1].0);
        assert!((n.delivered_bytes() - 400.0).abs() < 1e-6);
    }

    #[test]
    fn late_arrival_rebalances_rates() {
        let mut n = net(3, 100.0);
        let a = n.start_flow(SimTime::ZERO, NodeId(0), NodeId(1), 200);
        assert!((n.flow_rate(a).unwrap() - 100.0).abs() < 1e-6);
        let b = n.start_flow(SimTime::from_nanos(1_000_000_000), NodeId(0), NodeId(2), 50);
        assert!((n.flow_rate(a).unwrap() - 50.0).abs() < 1e-6);
        assert!((n.flow_rate(b).unwrap() - 50.0).abs() < 1e-6);
        // A had 100 left at t=1; b finishes at t=2; a at t=2.5.
        let done = n.run_to_idle();
        assert_eq!(done[0].1, b);
        assert!((secs(done[1].0) - 2.5).abs() < 1e-9);
    }

    #[test]
    fn striped_read_beats_single_source() {
        // MemFS vs AMFS in miniature: reading 400 B striped over 4 servers
        // uses 4 egress links in parallel; from one server it is limited to
        // one link. Ingress (100 B/s) becomes MemFS' bound: 4 x 100-byte
        // flows share the reader's ingress at 25 each -> 4 s? No: aggregate
        // ingress is 100 B/s for 400 B -> 4 s; single source: same 4 s for
        // one reader! The win appears with multiple readers:
        let mut n = net(6, 100.0);
        // Two readers (nodes 4, 5) each read 200 B striped over servers 0-3.
        for reader in [4usize, 5] {
            for server in 0..4 {
                n.start_flow(SimTime::ZERO, NodeId(server), NodeId(reader), 50);
            }
        }
        // Each reader ingress: 100 B/s over 200 B -> 2 s total.
        let done = n.run_to_idle();
        assert!((secs(done.last().unwrap().0) - 2.0).abs() < 1e-9);

        // Same aggregate from a single source: its egress serializes both
        // readers -> 4 s.
        let mut n = net(6, 100.0);
        for reader in [4usize, 5] {
            n.start_flow(SimTime::ZERO, NodeId(0), NodeId(reader), 200);
        }
        let done = n.run_to_idle();
        assert!((secs(done.last().unwrap().0) - 4.0).abs() < 1e-9);
    }

    #[test]
    fn striped_reads_use_only_reader_ingress_until_aggregate_binds() {
        // 4 nodes, NIC 100: aggregate capacity 400. Two striped readers
        // run at full ingress speed each (200 total < 400).
        let fabric = Fabric::new(4, 100.0, 1000.0).with_aggregate_capacity();
        let mut n = FlowNet::new(fabric, SimDuration::ZERO);
        n.start_striped_read(SimTime::ZERO, NodeId(0), 100);
        n.start_striped_read(SimTime::ZERO, NodeId(1), 100);
        assert!((secs(n.next_event().unwrap()) - 1.0).abs() < 1e-9);

        // With all 4 nodes reading AND writing striped, demand is 800 on
        // an aggregate of 400: everyone halves.
        let fabric = Fabric::new(4, 100.0, 1000.0).with_aggregate_capacity();
        let mut n = FlowNet::new(fabric, SimDuration::ZERO);
        for i in 0..4 {
            n.start_striped_read(SimTime::ZERO, NodeId(i), 100);
            n.start_striped_write(SimTime::ZERO, NodeId(i), 100);
        }
        assert!((secs(n.next_event().unwrap()) - 2.0).abs() < 1e-9);
    }

    #[test]
    fn explicit_route_flow_works() {
        let fabric = Fabric::new(2, 100.0, 1000.0);
        let route = fabric.route(NodeId(0), NodeId(1));
        let mut n = FlowNet::new(fabric, SimDuration::ZERO);
        n.start_flow_route(SimTime::ZERO, route, 300);
        assert!((secs(n.next_event().unwrap()) - 3.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "with_aggregate_capacity")]
    fn striped_route_requires_aggregate() {
        let fabric = Fabric::new(2, 100.0, 1000.0);
        fabric.route_striped_read(NodeId(0));
    }

    #[test]
    #[should_panic(expected = "unknown constraint")]
    fn bogus_route_panics() {
        let fabric = Fabric::new(2, 100.0, 1000.0);
        let mut n = FlowNet::new(fabric, SimDuration::ZERO);
        n.start_flow_route(SimTime::ZERO, vec![99], 10);
    }

    #[test]
    #[should_panic(expected = "time went backwards")]
    fn backwards_time_panics() {
        let mut n = net(2, 100.0);
        n.start_flow(SimTime::from_nanos(100), NodeId(0), NodeId(1), 10);
        n.advance_to(SimTime::from_nanos(50));
    }
}
