//! Calibrated network profiles for the platforms of the paper's evaluation.
//!
//! The paper gives the effective numbers directly:
//!
//! * DAS4 QDR InfiniBand via IPoIB — "approximately 1GB/s" (§4);
//! * DAS4 commodity 1Gb/s Ethernet — we use the classic ~117 MB/s TCP
//!   goodput of GbE;
//! * EC2 c3.8xlarge 10GbE — "iperf ... approximately 1GB/s" (§4);
//! * node memory bandwidth — "the Stream benchmark reports ... 10GB/s" (§2).
//!
//! Latencies are not reported in the paper; we use representative values
//! for the technologies (IPoIB RTT ≈ 60 µs, GbE ≈ 200 µs, virtualized
//! 10GbE ≈ 250 µs) plus a per-request software overhead for the
//! memcached/FUSE stack, calibrated so the small-file (1 KB) envelope
//! throughput lands in the paper's reported range (Figures 4a/5a).

use memfs_simcore::units::{Bandwidth, GB, MB};
use memfs_simcore::SimDuration;

use crate::fabric::Fabric;

/// A named network/platform profile.
#[derive(Debug, Clone)]
pub struct NetProfile {
    /// Human-readable platform name ("DAS4-IPoIB", …).
    pub name: &'static str,
    /// Per-NIC bandwidth, each direction.
    pub nic_bw: Bandwidth,
    /// Node-local memory bandwidth (Stream-like).
    pub mem_bw: Bandwidth,
    /// One-way message latency (network propagation + kernel).
    pub latency: SimDuration,
    /// Software overhead per storage request on the client+server path
    /// (FUSE crossing, memcached dispatch). Dominates small operations.
    pub request_overhead: SimDuration,
}

impl NetProfile {
    /// DAS4 compute nodes over IP-over-InfiniBand (~1 GB/s).
    pub fn das4_ipoib() -> Self {
        NetProfile {
            name: "DAS4-IPoIB",
            nic_bw: Bandwidth(1.0 * GB as f64),
            mem_bw: Bandwidth(10.0 * GB as f64),
            latency: SimDuration::from_micros(30),
            request_overhead: SimDuration::from_micros(25),
        }
    }

    /// DAS4 compute nodes over commodity gigabit Ethernet (~117 MB/s).
    pub fn das4_gbe() -> Self {
        NetProfile {
            name: "DAS4-1GbE",
            nic_bw: Bandwidth(117.0 * MB as f64),
            mem_bw: Bandwidth(10.0 * GB as f64),
            latency: SimDuration::from_micros(100),
            request_overhead: SimDuration::from_micros(25),
        }
    }

    /// EC2 c3.8xlarge instances over virtualized 10GbE (~1 GB/s measured).
    pub fn ec2_c3_8xlarge() -> Self {
        NetProfile {
            name: "EC2-10GbE",
            nic_bw: Bandwidth(1.0 * GB as f64),
            mem_bw: Bandwidth(10.0 * GB as f64),
            latency: SimDuration::from_micros(125),
            request_overhead: SimDuration::from_micros(30),
        }
    }

    /// Build the [`Fabric`] for `n_nodes` nodes of this profile.
    pub fn fabric(&self, n_nodes: usize) -> Fabric {
        Fabric::new(
            n_nodes,
            self.nic_bw.bytes_per_s(),
            self.mem_bw.bytes_per_s(),
        )
    }

    /// Total fixed cost of one remote storage request (latency plus
    /// software overhead), before any bytes move.
    pub fn request_cost(&self) -> SimDuration {
        self.latency + self.request_overhead
    }

    /// Fixed cost of a node-local storage request (no network latency, but
    /// the FUSE/memcached software path is still paid).
    pub fn local_request_cost(&self) -> SimDuration {
        self.request_overhead
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profiles_match_paper_figures() {
        let ipoib = NetProfile::das4_ipoib();
        assert!((ipoib.nic_bw.mb_per_s() - 1000.0).abs() < 1.0);
        assert!((ipoib.mem_bw.mb_per_s() - 10_000.0).abs() < 1.0);

        let gbe = NetProfile::das4_gbe();
        assert!((gbe.nic_bw.mb_per_s() - 117.0).abs() < 0.1);

        let ec2 = NetProfile::ec2_c3_8xlarge();
        assert!((ec2.nic_bw.mb_per_s() - 1000.0).abs() < 1.0);
    }

    #[test]
    fn fabric_inherits_profile_bandwidths() {
        let p = NetProfile::das4_ipoib();
        let f = p.fabric(64);
        assert_eq!(f.n_nodes(), 64);
        assert!((f.nic_bw() - 1e9).abs() < 1.0);
        assert!((f.mem_bw() - 1e10).abs() < 1.0);
    }

    #[test]
    fn request_costs_compose() {
        let p = NetProfile::das4_gbe();
        assert_eq!(p.request_cost(), SimDuration::from_micros(125));
        assert_eq!(p.local_request_cost(), SimDuration::from_micros(25));
        assert!(p.local_request_cost() < p.request_cost());
    }
}
