//! Max-min fair rate allocation by progressive filling (water-filling).
//!
//! Given a set of flows, each subject to a set of capacity constraints
//! (links), the max-min fair allocation raises all flow rates uniformly
//! until some constraint saturates, freezes the flows crossing it, and
//! repeats. The result is the unique allocation in which no flow's rate can
//! be increased without decreasing that of a flow with an equal-or-lower
//! rate — the standard fluid model for TCP-fair sharing on a non-blocking
//! fabric.

/// Index of a capacity constraint (a link).
pub type ConstraintId = usize;

/// Compute max-min fair rates.
///
/// * `caps[c]` — capacity of constraint `c` (bytes/s); must be positive.
/// * `flow_constraints[f]` — the constraints flow `f` traverses; must be
///   non-empty for every flow.
///
/// Returns the rate of each flow. Runs in `O(F * (F + C))` where each
/// iteration freezes at least one flow.
///
/// # Panics
/// Panics if a flow has no constraints or a capacity is not positive.
pub fn maxmin_rates(caps: &[f64], flow_constraints: &[Vec<ConstraintId>]) -> Vec<f64> {
    for (c, &cap) in caps.iter().enumerate() {
        assert!(
            cap > 0.0 && cap.is_finite(),
            "constraint {c} has invalid capacity {cap}"
        );
    }
    let nf = flow_constraints.len();
    let nc = caps.len();
    let mut rates = vec![0.0f64; nf];
    if nf == 0 {
        return rates;
    }
    let mut frozen = vec![false; nf];
    let mut remaining = caps.to_vec();
    //

    // Flows crossing each constraint, for the freeze step.
    let mut flows_on: Vec<Vec<usize>> = vec![Vec::new(); nc];
    for (f, cs) in flow_constraints.iter().enumerate() {
        assert!(!cs.is_empty(), "flow {f} traverses no constraints");
        for &c in cs {
            assert!(c < nc, "flow {f} references unknown constraint {c}");
            flows_on[c].push(f);
        }
    }

    let mut unfrozen_left = nf;
    while unfrozen_left > 0 {
        // Count unfrozen flows per constraint and find the tightest one.
        let mut best_inc = f64::INFINITY;
        let mut bottleneck = usize::MAX;
        for c in 0..nc {
            let count = flows_on[c].iter().filter(|&&f| !frozen[f]).count();
            if count > 0 {
                let inc = remaining[c] / count as f64;
                if inc < best_inc {
                    best_inc = inc;
                    bottleneck = c;
                }
            }
        }
        debug_assert!(
            best_inc.is_finite(),
            "unfrozen flow with no live constraint"
        );
        let inc = best_inc.max(0.0);

        // Raise every unfrozen flow by `inc` and charge its constraints.
        for f in 0..nf {
            if !frozen[f] {
                rates[f] += inc;
                for &c in &flow_constraints[f] {
                    remaining[c] -= inc;
                }
            }
        }

        // Freeze the flows on the bottleneck (saturated by construction —
        // marking it explicitly sidesteps floating-point residue) and on
        // any other constraint within relative epsilon of saturation.
        remaining[bottleneck] = 0.0;
        let mut froze_any = false;
        for c in 0..nc {
            let eps = 1e-9 * caps[c];
            if remaining[c] <= eps {
                for &f in &flows_on[c] {
                    if !frozen[f] {
                        frozen[f] = true;
                        unfrozen_left -= 1;
                        froze_any = true;
                    }
                }
            }
        }
        // The bottleneck always freezes at least one flow.
        assert!(
            froze_any,
            "max-min progressive filling failed to converge (inc = {inc})"
        );
    }
    rates
}

/// Weighted variant for flow *groups*: `groups[g] = (route, weight)`
/// represents `weight` identical flows sharing the same constraint set.
/// Returns the **per-flow** rate of each group.
///
/// Max-min allocations are symmetric: identical flows receive identical
/// rates, so grouping is exact, and it turns an `O(F²)` solve into an
/// `O(G²)` one — the difference between simulating 64 nodes and not,
/// since a striped workload has at most a few routes per node but
/// hundreds of concurrent flows.
///
/// # Panics
/// As [`maxmin_rates`]; additionally panics on zero weights.
pub fn maxmin_rates_grouped(caps: &[f64], groups: &[(Vec<ConstraintId>, u64)]) -> Vec<f64> {
    for (c, &cap) in caps.iter().enumerate() {
        assert!(
            cap > 0.0 && cap.is_finite(),
            "constraint {c} has invalid capacity {cap}"
        );
    }
    let ng = groups.len();
    let nc = caps.len();
    let mut rates = vec![0.0f64; ng];
    if ng == 0 {
        return rates;
    }
    let mut frozen = vec![false; ng];
    let mut remaining = caps.to_vec();
    let mut groups_on: Vec<Vec<usize>> = vec![Vec::new(); nc];
    for (g, (route, weight)) in groups.iter().enumerate() {
        assert!(!route.is_empty(), "group {g} traverses no constraints");
        assert!(*weight > 0, "group {g} has zero weight");
        for &c in route {
            assert!(c < nc, "group {g} references unknown constraint {c}");
            groups_on[c].push(g);
        }
    }

    let mut unfrozen_left = ng;
    while unfrozen_left > 0 {
        let mut best_inc = f64::INFINITY;
        let mut bottleneck = usize::MAX;
        for c in 0..nc {
            let weight: u64 = groups_on[c]
                .iter()
                .filter(|&&g| !frozen[g])
                .map(|&g| groups[g].1)
                .sum();
            if weight > 0 {
                let inc = remaining[c] / weight as f64;
                if inc < best_inc {
                    best_inc = inc;
                    bottleneck = c;
                }
            }
        }
        debug_assert!(best_inc.is_finite());
        let inc = best_inc.max(0.0);
        for g in 0..ng {
            if !frozen[g] {
                rates[g] += inc;
                for &c in &groups[g].0 {
                    remaining[c] -= inc * groups[g].1 as f64;
                }
            }
        }
        // As in `maxmin_rates`: the bottleneck is saturated by
        // construction; freeze it explicitly plus anything within
        // relative epsilon.
        remaining[bottleneck] = 0.0;
        let mut froze_any = false;
        for c in 0..nc {
            let eps = 1e-9 * caps[c];
            if remaining[c] <= eps {
                for &g in &groups_on[c] {
                    if !frozen[g] {
                        frozen[g] = true;
                        unfrozen_left -= 1;
                        froze_any = true;
                    }
                }
            }
        }
        assert!(froze_any, "grouped progressive filling failed to converge");
    }
    rates
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64) -> bool {
        (a - b).abs() <= 1e-6 * b.abs().max(1.0)
    }

    #[test]
    fn single_flow_gets_full_link() {
        let rates = maxmin_rates(&[100.0], &[vec![0]]);
        assert!(close(rates[0], 100.0));
    }

    #[test]
    fn two_flows_share_one_link_equally() {
        let rates = maxmin_rates(&[100.0], &[vec![0], vec![0]]);
        assert!(close(rates[0], 50.0));
        assert!(close(rates[1], 50.0));
    }

    #[test]
    fn bottleneck_frees_capacity_for_others() {
        // Flow 0 crosses links A and B; flow 1 crosses only A.
        // B (cap 10) bottlenecks flow 0 at 10, so flow 1 gets A's rest: 90.
        let rates = maxmin_rates(&[100.0, 10.0], &[vec![0, 1], vec![0]]);
        assert!(close(rates[0], 10.0));
        assert!(close(rates[1], 90.0));
    }

    #[test]
    fn classic_three_flow_line_network() {
        // Links L0, L1 each cap 1. Flow A uses both; B uses L0; C uses L1.
        // Max-min: A = B = C = 0.5.
        let rates = maxmin_rates(&[1.0, 1.0], &[vec![0, 1], vec![0], vec![1]]);
        for r in rates {
            assert!(close(r, 0.5));
        }
    }

    #[test]
    fn incast_shares_ingress() {
        // 4 senders to one receiver: egress caps 100 each, shared ingress 100.
        // Constraint 0..3 = egress, 4 = ingress.
        let caps = [100.0, 100.0, 100.0, 100.0, 100.0];
        let flows: Vec<Vec<usize>> = (0..4).map(|s| vec![s, 4]).collect();
        let rates = maxmin_rates(&caps, &flows);
        for r in rates {
            assert!(close(r, 25.0));
        }
    }

    #[test]
    fn asymmetric_multilevel_allocation() {
        // Link 0 cap 12 carries flows {0,1,2}; link 1 cap 3 carries {2}.
        // Flow 2 frozen at 3 by link 1 => wait: progressive filling raises
        // all to 3 (link1 saturates), flows 0,1 continue to (12-3)/2 = 4.5.
        let rates = maxmin_rates(&[12.0, 3.0], &[vec![0], vec![0], vec![0, 1]]);
        assert!(close(rates[2], 3.0));
        assert!(close(rates[0], 4.5));
        assert!(close(rates[1], 4.5));
    }

    #[test]
    fn no_flows_is_empty() {
        assert!(maxmin_rates(&[5.0], &[]).is_empty());
    }

    #[test]
    #[should_panic(expected = "no constraints")]
    fn flow_without_constraints_panics() {
        maxmin_rates(&[1.0], &[vec![]]);
    }

    #[test]
    #[should_panic(expected = "invalid capacity")]
    fn zero_capacity_panics() {
        maxmin_rates(&[0.0], &[vec![0]]);
    }

    #[test]
    fn grouped_solver_matches_flat_solver() {
        // 3 flows on link 0, 2 of which share a route with link 1.
        let caps = [12.0, 4.0];
        let flat = maxmin_rates(&caps, &[vec![0], vec![0, 1], vec![0, 1]]);
        let grouped = maxmin_rates_grouped(&caps, &[(vec![0], 1), (vec![0, 1], 2)]);
        assert!(close(grouped[1], flat[1]));
        assert!(close(grouped[1], flat[2]));
        assert!(close(grouped[0], flat[0]));
    }

    #[test]
    fn grouped_weights_split_capacity() {
        // One group of 4 identical flows on a 100-unit link: 25 each.
        let rates = maxmin_rates_grouped(&[100.0], &[(vec![0], 4)]);
        assert!(close(rates[0], 25.0));
    }

    #[test]
    fn grouped_random_instances_match_flat() {
        let mut state = 0x9E3779B9u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for _ in 0..30 {
            let nc = 2 + (next() % 5) as usize;
            let caps: Vec<f64> = (0..nc).map(|_| 10.0 + (next() % 500) as f64).collect();
            // Build grouped instance and its flat expansion.
            let ngroups = 1 + (next() % 6) as usize;
            let mut groups = Vec::new();
            let mut flat = Vec::new();
            for _ in 0..ngroups {
                let k = 1 + (next() % 3) as usize;
                let mut route: Vec<usize> = (0..k).map(|_| (next() % nc as u64) as usize).collect();
                route.sort_unstable();
                route.dedup();
                let weight = 1 + next() % 4;
                for _ in 0..weight {
                    flat.push(route.clone());
                }
                groups.push((route, weight));
            }
            let flat_rates = maxmin_rates(&caps, &flat);
            let grouped_rates = maxmin_rates_grouped(&caps, &groups);
            let mut fi = 0;
            for (g, (_, w)) in groups.iter().enumerate() {
                for _ in 0..*w {
                    assert!(
                        close(flat_rates[fi], grouped_rates[g]),
                        "flat {} vs grouped {}",
                        flat_rates[fi],
                        grouped_rates[g]
                    );
                    fi += 1;
                }
            }
        }
    }

    #[test]
    fn conservation_and_capacity_respected_on_random_instances() {
        // Deterministic pseudo-random instances; verify no constraint is
        // oversubscribed and the allocation is maximal (every flow crosses
        // at least one saturated constraint).
        let mut state = 0x12345678u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for _ in 0..50 {
            let nc = 2 + (next() % 6) as usize;
            let nf = 1 + (next() % 12) as usize;
            let caps: Vec<f64> = (0..nc).map(|_| 1.0 + (next() % 1000) as f64).collect();
            let flows: Vec<Vec<usize>> = (0..nf)
                .map(|_| {
                    let k = 1 + (next() % 3) as usize;
                    let mut cs: Vec<usize> =
                        (0..k).map(|_| (next() % nc as u64) as usize).collect();
                    cs.sort_unstable();
                    cs.dedup();
                    cs
                })
                .collect();
            let rates = maxmin_rates(&caps, &flows);
            // Capacity feasibility.
            let mut used = vec![0.0; nc];
            for (f, cs) in flows.iter().enumerate() {
                for &c in cs {
                    used[c] += rates[f];
                }
            }
            for c in 0..nc {
                assert!(used[c] <= caps[c] + 1e-5, "constraint {c} oversubscribed");
            }
            // Maximality: each flow has a saturated constraint.
            for (f, cs) in flows.iter().enumerate() {
                let saturated = cs.iter().any(|&c| used[c] >= caps[c] - 1e-5);
                assert!(saturated, "flow {f} could still grow");
            }
        }
    }
}
