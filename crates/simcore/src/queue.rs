//! A deterministic event calendar.
//!
//! [`EventQueue`] is a min-heap keyed on `(time, sequence)`: events scheduled
//! for the same instant pop in the order they were pushed. This makes every
//! simulation in the workspace bit-reproducible — a property the integration
//! tests assert directly (same seed ⇒ same figure data).

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::time::SimTime;

/// An event together with its due time, as returned by [`EventQueue::pop`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EventEntry<E> {
    /// When the event fires.
    pub time: SimTime,
    /// The payload.
    pub event: E,
}

/// Internal heap node; ordered so the `BinaryHeap` (a max-heap) pops the
/// *earliest* `(time, seq)` pair first.
struct Node<E> {
    time: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Node<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<E> Eq for Node<E> {}

impl<E> PartialOrd for Node<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Node<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: smallest (time, seq) is the "greatest" heap element.
        (other.time, other.seq).cmp(&(self.time, self.seq))
    }
}

/// A deterministic discrete-event calendar queue.
///
/// ```
/// use memfs_simcore::{EventQueue, SimTime};
///
/// let mut q = EventQueue::new();
/// q.push(SimTime::from_nanos(20), "late");
/// q.push(SimTime::from_nanos(10), "early");
/// q.push(SimTime::from_nanos(10), "early-second");
///
/// assert_eq!(q.pop().unwrap().event, "early");
/// assert_eq!(q.pop().unwrap().event, "early-second");
/// assert_eq!(q.pop().unwrap().event, "late");
/// assert!(q.pop().is_none());
/// ```
pub struct EventQueue<E> {
    heap: BinaryHeap<Node<E>>,
    next_seq: u64,
    now: SimTime,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Create an empty queue with the clock at [`SimTime::ZERO`].
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
            now: SimTime::ZERO,
        }
    }

    /// The current virtual time: the due time of the most recently popped
    /// event (or zero before the first pop).
    #[inline]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of pending events.
    #[inline]
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events are pending.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Schedule `event` to fire at absolute time `time`.
    ///
    /// # Panics
    /// Panics if `time` is in the past (earlier than [`Self::now`]); a DES
    /// must never schedule behind its clock.
    pub fn push(&mut self, time: SimTime, event: E) {
        assert!(
            time >= self.now,
            "EventQueue::push: scheduling at {time} which is before now = {}",
            self.now
        );
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Node { time, seq, event });
    }

    /// The due time of the next event, if any.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|n| n.time)
    }

    /// Pop the earliest event and advance the clock to its due time.
    pub fn pop(&mut self) -> Option<EventEntry<E>> {
        let node = self.heap.pop()?;
        debug_assert!(node.time >= self.now);
        self.now = node.time;
        Some(EventEntry {
            time: node.time,
            event: node.event,
        })
    }

    /// Drop all pending events without changing the clock.
    pub fn clear(&mut self) {
        self.heap.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        for &t in &[30u64, 10, 20, 40, 5] {
            q.push(SimTime::from_nanos(t), t);
        }
        let order: Vec<u64> = std::iter::from_fn(|| q.pop().map(|e| e.event)).collect();
        assert_eq!(order, vec![5, 10, 20, 30, 40]);
    }

    #[test]
    fn simultaneous_events_pop_fifo() {
        let mut q = EventQueue::new();
        let t = SimTime::from_nanos(7);
        for i in 0..100 {
            q.push(t, i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|e| e.event)).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn clock_advances_with_pops() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_nanos(100), ());
        assert_eq!(q.now(), SimTime::ZERO);
        q.pop();
        assert_eq!(q.now(), SimTime::from_nanos(100));
    }

    #[test]
    #[should_panic(expected = "before now")]
    fn pushing_into_the_past_panics() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_nanos(100), ());
        q.pop();
        q.push(SimTime::from_nanos(50), ());
    }

    #[test]
    fn peek_does_not_advance_clock() {
        let mut q = EventQueue::new();
        q.push(SimTime::ZERO + SimDuration::from_secs(1), ());
        assert_eq!(q.peek_time(), Some(SimTime::from_nanos(1_000_000_000)));
        assert_eq!(q.now(), SimTime::ZERO);
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn clear_keeps_clock() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_nanos(10), 1);
        q.pop();
        q.push(SimTime::from_nanos(20), 2);
        q.clear();
        assert!(q.is_empty());
        assert_eq!(q.now(), SimTime::from_nanos(10));
    }
}
