//! A processor-sharing resource with a pluggable concurrency-efficiency
//! curve.
//!
//! [`PsResource`] models a contended service point: `n` concurrent jobs each
//! progress at rate `capacity * efficiency(n) / n`. With
//! [`EfficiencyCurve::Linear`] this is ideal processor sharing (an `n`-way
//! fair split); other curves model resources that *degrade* under
//! concurrency. The MemFS paper's Figure 10 shows exactly such a resource:
//! the FUSE kernel module takes a per-mountpoint spinlock, so a single
//! mountpoint stops scaling past ~8 concurrent application processes and
//! collapses when accessed from two NUMA domains. `memfs-cluster` builds
//! that model on top of this type.
//!
//! The implementation is the classic "virtual work" technique: between
//! membership changes all jobs progress at a common per-job rate, so the
//! resource only needs to re-linearize at arrivals and departures.

use std::collections::HashMap;

use crate::time::{SimDuration, SimTime};

/// Identifier of a job admitted to a [`PsResource`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct JobId(pub u64);

/// How aggregate throughput scales with the number of concurrent jobs.
#[derive(Debug, Clone)]
pub enum EfficiencyCurve {
    /// Ideal processor sharing: aggregate rate is always `capacity`.
    Linear,
    /// Aggregate rate saturates at `capacity * plateau_factor` once more
    /// than `knee` jobs are active, and beyond the knee each extra job
    /// *reduces* aggregate throughput by `degradation` (relative, per job),
    /// modelling lock convoying. Values are clamped so throughput never
    /// drops below 5% of capacity.
    Knee {
        /// Concurrency level up to which the resource scales ideally.
        knee: usize,
        /// Relative throughput loss per job beyond the knee (e.g. `0.15`).
        degradation: f64,
    },
    /// Arbitrary table: entry `i` is the relative aggregate efficiency at
    /// concurrency `i + 1`; concurrency beyond the table uses the last
    /// entry.
    Table(Vec<f64>),
}

impl EfficiencyCurve {
    /// Relative aggregate efficiency (0, 1] at concurrency `n >= 1`.
    pub fn efficiency(&self, n: usize) -> f64 {
        debug_assert!(n >= 1);
        match self {
            EfficiencyCurve::Linear => 1.0,
            EfficiencyCurve::Knee { knee, degradation } => {
                if n <= *knee {
                    1.0
                } else {
                    let extra = (n - knee) as f64;
                    (1.0 - degradation * extra).max(0.05)
                }
            }
            EfficiencyCurve::Table(t) => {
                if t.is_empty() {
                    1.0
                } else {
                    t[(n - 1).min(t.len() - 1)].clamp(0.0001, 1.0)
                }
            }
        }
    }
}

#[derive(Debug)]
struct Job {
    remaining_work: f64,
}

/// A processor-sharing resource serving jobs measured in abstract "work"
/// units at `capacity` work units per second.
///
/// The caller drives the resource from its event loop:
///
/// 1. [`PsResource::admit`] a job with some amount of work,
/// 2. ask for [`PsResource::next_completion`] and schedule an event there,
/// 3. on that event call [`PsResource::advance_to`] and collect completions.
///
/// Admissions and early removals also require an `advance_to` call first so
/// in-flight work is accounted up to the present.
#[derive(Debug)]
pub struct PsResource {
    capacity: f64,
    curve: EfficiencyCurve,
    jobs: HashMap<JobId, Job>,
    next_id: u64,
    last_update: SimTime,
    /// Total work completed since construction (for utilization reporting).
    completed_work: f64,
}

impl PsResource {
    /// Create a resource with `capacity` work units per second.
    ///
    /// # Panics
    /// Panics if `capacity` is not strictly positive and finite.
    pub fn new(capacity: f64, curve: EfficiencyCurve) -> Self {
        assert!(
            capacity.is_finite() && capacity > 0.0,
            "PsResource capacity must be positive, got {capacity}"
        );
        PsResource {
            capacity,
            curve,
            jobs: HashMap::new(),
            next_id: 0,
            last_update: SimTime::ZERO,
            completed_work: 0.0,
        }
    }

    /// Number of jobs currently in service.
    pub fn active_jobs(&self) -> usize {
        self.jobs.len()
    }

    /// Total work units completed so far.
    pub fn completed_work(&self) -> f64 {
        self.completed_work
    }

    /// Current per-job service rate (work units per second), or `None` when
    /// idle.
    pub fn per_job_rate(&self) -> Option<f64> {
        let n = self.jobs.len();
        if n == 0 {
            return None;
        }
        Some(self.capacity * self.curve.efficiency(n) / n as f64)
    }

    /// Admit a new job with `work` units at time `now`.
    ///
    /// # Panics
    /// Panics if `work` is negative/non-finite or `now` precedes the last
    /// update (call [`Self::advance_to`] first).
    pub fn admit(&mut self, now: SimTime, work: f64) -> JobId {
        assert!(work.is_finite() && work >= 0.0, "invalid work {work}");
        self.catch_up(now);
        let id = JobId(self.next_id);
        self.next_id += 1;
        self.jobs.insert(
            id,
            Job {
                remaining_work: work,
            },
        );
        id
    }

    /// Remove a job before completion (e.g. cancelled task), returning its
    /// remaining work, or `None` if it already completed or never existed.
    pub fn remove(&mut self, now: SimTime, id: JobId) -> Option<f64> {
        self.catch_up(now);
        self.jobs.remove(&id).map(|j| j.remaining_work)
    }

    /// The absolute time at which the next job will finish if no further
    /// arrivals occur, or `None` when idle.
    pub fn next_completion(&self) -> Option<SimTime> {
        let rate = self.per_job_rate()?;
        let min_remaining = self
            .jobs
            .values()
            .map(|j| j.remaining_work)
            .fold(f64::INFINITY, f64::min);
        let dt = SimDuration::from_secs_f64(min_remaining / rate);
        Some(self.last_update.saturating_add(dt))
    }

    /// Advance internal accounting to `now` and return the IDs of all jobs
    /// that completed at or before `now`, in deterministic (id) order.
    pub fn advance_to(&mut self, now: SimTime) -> Vec<JobId> {
        self.catch_up(now);
        let mut done: Vec<JobId> = self
            .jobs
            .iter()
            // Work is tracked in f64; treat sub-nanosecond residue as done.
            .filter(|(_, j)| j.remaining_work <= self.capacity * 1e-12)
            .map(|(&id, _)| id)
            .collect();
        done.sort_unstable();
        for id in &done {
            self.jobs.remove(id);
        }
        done
    }

    /// Account for service between `last_update` and `now`.
    fn catch_up(&mut self, now: SimTime) {
        assert!(
            now >= self.last_update,
            "PsResource: time went backwards ({now} < {})",
            self.last_update
        );
        if now == self.last_update {
            return;
        }
        let dt = now.duration_since(self.last_update).as_secs_f64();
        self.last_update = now;
        if let Some(rate) = self.per_job_rate() {
            let served = rate * dt;
            for job in self.jobs.values_mut() {
                let done = served.min(job.remaining_work);
                job.remaining_work -= done;
                self.completed_work += done;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ns: u64) -> SimTime {
        SimTime::from_nanos(ns)
    }

    #[test]
    fn single_job_takes_work_over_capacity() {
        let mut r = PsResource::new(100.0, EfficiencyCurve::Linear);
        let id = r.admit(SimTime::ZERO, 50.0); // 0.5 s at 100 units/s
        let done_at = r.next_completion().unwrap();
        assert_eq!(done_at.as_nanos(), 500_000_000);
        let done = r.advance_to(done_at);
        assert_eq!(done, vec![id]);
        assert!(r.next_completion().is_none());
    }

    #[test]
    fn two_jobs_share_capacity_fairly() {
        let mut r = PsResource::new(100.0, EfficiencyCurve::Linear);
        r.admit(SimTime::ZERO, 50.0);
        r.admit(SimTime::ZERO, 50.0);
        // Each gets 50 units/s, so both finish at t = 1 s.
        let done_at = r.next_completion().unwrap();
        assert_eq!(done_at.as_nanos(), 1_000_000_000);
        assert_eq!(r.advance_to(done_at).len(), 2);
    }

    #[test]
    fn late_arrival_slows_first_job() {
        let mut r = PsResource::new(100.0, EfficiencyCurve::Linear);
        let a = r.admit(SimTime::ZERO, 100.0); // alone: would finish at 1 s
                                               // At 0.5 s job A has 50 units left; B arrives with 10 units.
        let b = r.admit(t(500_000_000), 10.0);
        // Shared 50/50: B finishes 10/50 = 0.2 s later, at 0.7 s.
        let next = r.next_completion().unwrap();
        assert_eq!(next.as_nanos(), 700_000_000);
        assert_eq!(r.advance_to(next), vec![b]);
        // A has 40 left, alone again at 100 units/s: finishes at 1.1 s.
        let next = r.next_completion().unwrap();
        assert_eq!(next.as_nanos(), 1_100_000_000);
        assert_eq!(r.advance_to(next), vec![a]);
    }

    #[test]
    fn knee_curve_degrades_beyond_knee() {
        let c = EfficiencyCurve::Knee {
            knee: 8,
            degradation: 0.1,
        };
        assert_eq!(c.efficiency(1), 1.0);
        assert_eq!(c.efficiency(8), 1.0);
        assert!((c.efficiency(9) - 0.9).abs() < 1e-12);
        assert!((c.efficiency(12) - 0.6).abs() < 1e-12);
        // Floor at 5%.
        assert!((c.efficiency(100) - 0.05).abs() < 1e-12);
    }

    #[test]
    fn table_curve_clamps_and_extends() {
        let c = EfficiencyCurve::Table(vec![1.0, 0.8, 0.5]);
        assert_eq!(c.efficiency(1), 1.0);
        assert_eq!(c.efficiency(2), 0.8);
        assert_eq!(c.efficiency(3), 0.5);
        assert_eq!(c.efficiency(10), 0.5);
        let empty = EfficiencyCurve::Table(vec![]);
        assert_eq!(empty.efficiency(5), 1.0);
    }

    #[test]
    fn degraded_resource_serves_slower() {
        // Knee at 1 with 50% degradation per extra job: 2 jobs get an
        // aggregate of 50 units/s, i.e. 25 each.
        let mut r = PsResource::new(
            100.0,
            EfficiencyCurve::Knee {
                knee: 1,
                degradation: 0.5,
            },
        );
        r.admit(SimTime::ZERO, 25.0);
        r.admit(SimTime::ZERO, 25.0);
        assert_eq!(r.next_completion().unwrap().as_nanos(), 1_000_000_000);
    }

    #[test]
    fn remove_returns_remaining_work() {
        let mut r = PsResource::new(10.0, EfficiencyCurve::Linear);
        let id = r.admit(SimTime::ZERO, 100.0);
        let left = r.remove(t(1_000_000_000), id).unwrap();
        assert!((left - 90.0).abs() < 1e-9);
        assert!(r.remove(t(1_000_000_000), id).is_none());
    }

    #[test]
    fn zero_work_job_completes_immediately() {
        let mut r = PsResource::new(10.0, EfficiencyCurve::Linear);
        let id = r.admit(SimTime::ZERO, 0.0);
        assert_eq!(r.next_completion().unwrap(), SimTime::ZERO);
        assert_eq!(r.advance_to(SimTime::ZERO), vec![id]);
    }

    #[test]
    fn completed_work_accumulates() {
        let mut r = PsResource::new(100.0, EfficiencyCurve::Linear);
        r.admit(SimTime::ZERO, 30.0);
        r.admit(SimTime::ZERO, 70.0);
        let end = t(2_000_000_000);
        // Run to completion via repeated events.
        while let Some(next) = r.next_completion() {
            let at = next.min(end);
            r.advance_to(at);
            if at == end {
                break;
            }
        }
        assert!((r.completed_work() - 100.0).abs() < 1e-6);
    }
}
