//! Streaming statistics used by every experiment driver.
//!
//! * [`Summary`] — count/mean/min/max/stddev via Welford's online algorithm,
//!   plus exact percentiles (the sample sets in this reproduction are small
//!   enough to keep).
//! * [`TimeWeighted`] — time-weighted average of a step function, used for
//!   e.g. average memory consumption over a run.
//! * [`Histogram`] — fixed-bucket histogram for load-balance reporting.

use crate::time::SimTime;

/// Online summary statistics over a stream of `f64` samples.
///
/// Keeps all samples for exact percentile queries; the experiments here
/// record at most a few hundred thousand samples, so this is cheap and
/// avoids approximation error in the reproduced tables.
#[derive(Debug, Clone, Default)]
pub struct Summary {
    samples: Vec<f64>,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
    sorted: bool,
}

impl Summary {
    /// An empty summary.
    pub fn new() -> Self {
        Summary {
            samples: Vec::new(),
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
            sorted: true,
        }
    }

    /// Record one sample.
    pub fn record(&mut self, x: f64) {
        debug_assert!(x.is_finite(), "non-finite sample {x}");
        self.samples.push(x);
        self.sorted = false;
        let n = self.samples.len() as f64;
        let delta = x - self.mean;
        self.mean += delta / n;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of samples recorded.
    pub fn count(&self) -> usize {
        self.samples.len()
    }

    /// Arithmetic mean, or 0 when empty.
    pub fn mean(&self) -> f64 {
        if self.samples.is_empty() {
            0.0
        } else {
            self.mean
        }
    }

    /// Sum of all samples.
    pub fn sum(&self) -> f64 {
        self.mean() * self.samples.len() as f64
    }

    /// Smallest sample, or 0 when empty.
    pub fn min(&self) -> f64 {
        if self.samples.is_empty() {
            0.0
        } else {
            self.min
        }
    }

    /// Largest sample, or 0 when empty.
    pub fn max(&self) -> f64 {
        if self.samples.is_empty() {
            0.0
        } else {
            self.max
        }
    }

    /// Sample standard deviation (n-1 denominator), or 0 for < 2 samples.
    pub fn stddev(&self) -> f64 {
        if self.samples.len() < 2 {
            0.0
        } else {
            (self.m2 / (self.samples.len() - 1) as f64).sqrt()
        }
    }

    /// Exact percentile `p` in [0, 100] by nearest-rank, or 0 when empty.
    pub fn percentile(&mut self, p: f64) -> f64 {
        assert!((0.0..=100.0).contains(&p), "percentile out of range: {p}");
        if self.samples.is_empty() {
            return 0.0;
        }
        if !self.sorted {
            self.samples
                .sort_unstable_by(|a, b| a.partial_cmp(b).expect("NaN sample"));
            self.sorted = true;
        }
        let rank = ((p / 100.0) * self.samples.len() as f64).ceil() as usize;
        self.samples[rank.saturating_sub(1).min(self.samples.len() - 1)]
    }

    /// Ratio of max to mean — the load-imbalance measure used to compare
    /// MemFS' symmetric distribution with AMFS' local-write policy.
    pub fn imbalance(&self) -> f64 {
        let m = self.mean();
        if m == 0.0 {
            1.0
        } else {
            self.max() / m
        }
    }
}

/// Time-weighted average of a piecewise-constant signal (e.g. bytes of
/// memory in use on a node over the course of a workflow run).
#[derive(Debug, Clone)]
pub struct TimeWeighted {
    last_time: SimTime,
    last_value: f64,
    weighted_sum: f64,
    total_time: f64,
    peak: f64,
}

impl TimeWeighted {
    /// Start tracking at `start` with initial value `value`.
    pub fn new(start: SimTime, value: f64) -> Self {
        TimeWeighted {
            last_time: start,
            last_value: value,
            weighted_sum: 0.0,
            total_time: 0.0,
            peak: value,
        }
    }

    /// Record that the signal changed to `value` at time `now`.
    pub fn set(&mut self, now: SimTime, value: f64) {
        let dt = now.duration_since(self.last_time).as_secs_f64();
        self.weighted_sum += self.last_value * dt;
        self.total_time += dt;
        self.last_time = now;
        self.last_value = value;
        self.peak = self.peak.max(value);
    }

    /// Current value of the signal.
    pub fn current(&self) -> f64 {
        self.last_value
    }

    /// Highest value ever observed.
    pub fn peak(&self) -> f64 {
        self.peak
    }

    /// Time-weighted mean up to the last `set` call (0 before any interval
    /// has elapsed).
    pub fn mean(&self) -> f64 {
        if self.total_time == 0.0 {
            self.last_value
        } else {
            self.weighted_sum / self.total_time
        }
    }
}

/// A simple fixed-width-bucket histogram over `[lo, hi)`.
#[derive(Debug, Clone)]
pub struct Histogram {
    lo: f64,
    width: f64,
    buckets: Vec<u64>,
    underflow: u64,
    overflow: u64,
}

impl Histogram {
    /// Create a histogram of `n` equal buckets spanning `[lo, hi)`.
    ///
    /// # Panics
    /// Panics if `hi <= lo` or `n == 0`.
    pub fn new(lo: f64, hi: f64, n: usize) -> Self {
        assert!(hi > lo && n > 0, "invalid histogram bounds");
        Histogram {
            lo,
            width: (hi - lo) / n as f64,
            buckets: vec![0; n],
            underflow: 0,
            overflow: 0,
        }
    }

    /// Record a sample.
    pub fn record(&mut self, x: f64) {
        if x < self.lo {
            self.underflow += 1;
            return;
        }
        let idx = ((x - self.lo) / self.width) as usize;
        if idx >= self.buckets.len() {
            self.overflow += 1;
        } else {
            self.buckets[idx] += 1;
        }
    }

    /// Per-bucket counts.
    pub fn buckets(&self) -> &[u64] {
        &self.buckets
    }

    /// Samples below the range.
    pub fn underflow(&self) -> u64 {
        self.underflow
    }

    /// Samples at or above the range end.
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// Total samples recorded, including out-of-range ones.
    pub fn total(&self) -> u64 {
        self.buckets.iter().sum::<u64>() + self.underflow + self.overflow
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_basic_moments() {
        let mut s = Summary::new();
        for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            s.record(x);
        }
        assert_eq!(s.count(), 8);
        assert!((s.mean() - 5.0).abs() < 1e-12);
        assert_eq!(s.min(), 2.0);
        assert_eq!(s.max(), 9.0);
        // Sample stddev of this classic dataset is sqrt(32/7).
        assert!((s.stddev() - (32.0f64 / 7.0).sqrt()).abs() < 1e-12);
        assert!((s.sum() - 40.0).abs() < 1e-12);
    }

    #[test]
    fn summary_percentiles_nearest_rank() {
        let mut s = Summary::new();
        for x in 1..=100 {
            s.record(x as f64);
        }
        assert_eq!(s.percentile(50.0), 50.0);
        assert_eq!(s.percentile(99.0), 99.0);
        assert_eq!(s.percentile(100.0), 100.0);
        assert_eq!(s.percentile(0.0), 1.0);
    }

    #[test]
    fn empty_summary_is_zeroed() {
        let mut s = Summary::new();
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.min(), 0.0);
        assert_eq!(s.max(), 0.0);
        assert_eq!(s.stddev(), 0.0);
        assert_eq!(s.percentile(50.0), 0.0);
        assert_eq!(s.imbalance(), 1.0);
    }

    #[test]
    fn imbalance_is_max_over_mean() {
        let mut s = Summary::new();
        for x in [1.0, 1.0, 1.0, 5.0] {
            s.record(x);
        }
        assert!((s.imbalance() - 2.5).abs() < 1e-12);
    }

    #[test]
    fn time_weighted_average() {
        let mut tw = TimeWeighted::new(SimTime::ZERO, 10.0);
        tw.set(SimTime::from_nanos(1_000_000_000), 20.0); // 10 for 1 s
        tw.set(SimTime::from_nanos(3_000_000_000), 0.0); // 20 for 2 s
        assert!((tw.mean() - (10.0 + 40.0) / 3.0).abs() < 1e-9);
        assert_eq!(tw.peak(), 20.0);
        assert_eq!(tw.current(), 0.0);
    }

    #[test]
    fn histogram_buckets_and_edges() {
        let mut h = Histogram::new(0.0, 10.0, 10);
        h.record(-1.0);
        h.record(0.0);
        h.record(9.999);
        h.record(10.0);
        h.record(5.5);
        assert_eq!(h.underflow(), 1);
        assert_eq!(h.overflow(), 1);
        assert_eq!(h.buckets()[0], 1);
        assert_eq!(h.buckets()[9], 1);
        assert_eq!(h.buckets()[5], 1);
        assert_eq!(h.total(), 5);
    }
}
