//! Deterministic, splittable random number streams.
//!
//! Every experiment in the reproduction takes a single `u64` seed. Components
//! that need independent randomness (workload generator, scheduler
//! tie-breaks, task service-time jitter, …) derive their own stream with
//! [`SimRng::derive`], so adding a random draw in one component never
//! perturbs another — runs stay comparable across code changes.
//!
//! The generator is xoshiro256++ implemented locally (public domain
//! algorithm by Blackman & Vigna) so the output is stable regardless of
//! `rand`-crate version bumps. The `rand` traits are implemented on top, so
//! the full `rand` API (ranges, shuffles, distributions) is available.

use rand::RngCore;

/// A deterministic xoshiro256++ stream implementing [`rand::RngCore`].
#[derive(Debug, Clone)]
pub struct SimRng {
    s: [u64; 4],
}

/// SplitMix64 step, used for seeding (per the xoshiro reference code).
#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl SimRng {
    /// Create a stream from a 64-bit seed. Different seeds give
    /// statistically independent streams.
    pub fn seed_from(seed: u64) -> Self {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        SimRng { s }
    }

    /// Derive an independent child stream for the component identified by
    /// `label`. The same `(seed, label)` pair always yields the same stream.
    pub fn derive(&self, label: &str) -> SimRng {
        // Mix the label into a fresh seed via FNV-1a over the label bytes,
        // then fold in this stream's state so sibling derivations differ.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for &b in label.as_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        SimRng::seed_from(h ^ self.s[0].rotate_left(17) ^ self.s[2])
    }

    #[inline]
    fn next(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

impl RngCore for SimRng {
    #[inline]
    fn next_u32(&mut self) -> u32 {
        (self.next() >> 32) as u32
    }

    #[inline]
    fn next_u64(&mut self) -> u64 {
        self.next()
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }

    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), rand::Error> {
        self.fill_bytes(dest);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SimRng::seed_from(42);
        let mut b = SimRng::seed_from(42);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SimRng::seed_from(1);
        let mut b = SimRng::seed_from(2);
        let same = (0..100).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn derive_is_stable_and_label_sensitive() {
        let root = SimRng::seed_from(7);
        let mut w1 = root.derive("workload");
        let mut w2 = root.derive("workload");
        let mut s = root.derive("scheduler");
        let a = w1.next_u64();
        assert_eq!(a, w2.next_u64());
        assert_ne!(a, s.next_u64());
    }

    #[test]
    fn fill_bytes_covers_non_multiple_lengths() {
        let mut rng = SimRng::seed_from(3);
        for len in [0usize, 1, 7, 8, 9, 31] {
            let mut buf = vec![0u8; len];
            rng.fill_bytes(&mut buf);
            // With 31 random bytes the probability of all zeros is ~0.
            if len >= 8 {
                assert!(buf.iter().any(|&b| b != 0), "len {len} produced all zeros");
            }
        }
    }

    #[test]
    fn works_with_rand_range_api() {
        let mut rng = SimRng::seed_from(99);
        for _ in 0..1000 {
            let v: u32 = rng.gen_range(0..10);
            assert!(v < 10);
        }
    }

    #[test]
    fn xoshiro_reference_vector() {
        // First outputs of xoshiro256++ with state {1, 2, 3, 4}, from the
        // reference implementation.
        let mut rng = SimRng { s: [1, 2, 3, 4] };
        let expected: [u64; 5] = [
            0x0000_0000_0280_0001,
            0x0000_0000_0380_0067,
            0x000C_C000_0380_0067,
            0x000C_C201_9944_00B2,
            0x8012_A201_9AC4_33CD,
        ];
        for &e in &expected {
            assert_eq!(rng.next_u64(), e);
        }
    }
}
