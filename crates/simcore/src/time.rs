//! Virtual time for the simulation: absolute instants ([`SimTime`]) and
//! spans ([`SimDuration`]) with nanosecond resolution.
//!
//! Using integer nanoseconds instead of `f64` seconds keeps event ordering
//! exact and runs bit-reproducible across platforms. Conversions to and from
//! floating-point seconds are provided for the analytic rate computations in
//! `memfs-netsim` (bytes / bandwidth), which round *up* to the next
//! nanosecond so a transfer never completes before its work is done.

use std::fmt;
use std::ops::{Add, AddAssign, Sub, SubAssign};

const NANOS_PER_SEC: u64 = 1_000_000_000;

/// An absolute instant of virtual time, in nanoseconds since simulation
/// start.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

/// A span of virtual time, in nanoseconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

impl SimTime {
    /// The simulation epoch (t = 0).
    pub const ZERO: SimTime = SimTime(0);
    /// A time later than any event; used as a sentinel for "never".
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Construct from raw nanoseconds.
    #[inline]
    pub const fn from_nanos(ns: u64) -> Self {
        SimTime(ns)
    }

    /// Raw nanoseconds since simulation start.
    #[inline]
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Seconds since simulation start, as `f64` (for reporting).
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / NANOS_PER_SEC as f64
    }

    /// The duration elapsed since `earlier`.
    ///
    /// # Panics
    /// Panics if `earlier` is later than `self`; the simulation clock never
    /// runs backwards, so this indicates a logic error in the caller.
    #[inline]
    pub fn duration_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(
            self.0
                .checked_sub(earlier.0)
                .expect("SimTime::duration_since: time went backwards"),
        )
    }

    /// Saturating addition; `MAX` is sticky so "never" stays "never".
    #[inline]
    pub fn saturating_add(self, d: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(d.0))
    }
}

impl SimDuration {
    /// The zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);
    /// Sentinel for an unbounded duration.
    pub const MAX: SimDuration = SimDuration(u64::MAX);

    /// Construct from raw nanoseconds.
    #[inline]
    pub const fn from_nanos(ns: u64) -> Self {
        SimDuration(ns)
    }

    /// Construct from integer microseconds.
    #[inline]
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us * 1_000)
    }

    /// Construct from integer milliseconds.
    #[inline]
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000_000)
    }

    /// Construct from integer seconds.
    #[inline]
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * NANOS_PER_SEC)
    }

    /// Construct from floating-point seconds, rounding *up* to the next
    /// nanosecond (so modelled work never finishes early).
    ///
    /// # Panics
    /// Panics on negative or non-finite input.
    pub fn from_secs_f64(s: f64) -> Self {
        assert!(
            s.is_finite() && s >= 0.0,
            "SimDuration::from_secs_f64: invalid seconds value {s}"
        );
        let ns = (s * NANOS_PER_SEC as f64).ceil();
        if ns >= u64::MAX as f64 {
            SimDuration::MAX
        } else {
            SimDuration(ns as u64)
        }
    }

    /// Raw nanoseconds.
    #[inline]
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Seconds as `f64` (for reporting and rate math).
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / NANOS_PER_SEC as f64
    }

    /// Saturating addition.
    #[inline]
    pub fn saturating_add(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_add(other.0))
    }

    /// Multiply by an integer factor, saturating.
    #[inline]
    pub fn saturating_mul(self, k: u64) -> SimDuration {
        SimDuration(self.0.saturating_mul(k))
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    #[inline]
    fn add(self, d: SimDuration) -> SimTime {
        SimTime(
            self.0
                .checked_add(d.0)
                .expect("SimTime overflow: simulation ran past u64 nanoseconds"),
        )
    }
}

impl AddAssign<SimDuration> for SimTime {
    #[inline]
    fn add_assign(&mut self, d: SimDuration) {
        *self = *self + d;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    #[inline]
    fn sub(self, other: SimTime) -> SimDuration {
        self.duration_since(other)
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn add(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.checked_add(other.0).expect("SimDuration overflow"))
    }
}

impl AddAssign for SimDuration {
    #[inline]
    fn add_assign(&mut self, other: SimDuration) {
        *self = *self + other;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn sub(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.checked_sub(other.0).expect("SimDuration underflow"))
    }
}

impl SubAssign for SimDuration {
    #[inline]
    fn sub_assign(&mut self, other: SimDuration) {
        *self = *self - other;
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 == u64::MAX {
            return write!(f, "inf");
        }
        if self.0 < 1_000 {
            write!(f, "{}ns", self.0)
        } else if self.0 < 1_000_000 {
            write!(f, "{:.2}us", self.0 as f64 / 1e3)
        } else if self.0 < NANOS_PER_SEC {
            write!(f, "{:.2}ms", self.0 as f64 / 1e6)
        } else {
            write!(f, "{:.3}s", self.as_secs_f64())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_arithmetic_round_trips() {
        let t = SimTime::from_nanos(5_000);
        let d = SimDuration::from_micros(3);
        assert_eq!((t + d).as_nanos(), 8_000);
        assert_eq!((t + d) - t, d);
    }

    #[test]
    fn from_secs_f64_rounds_up() {
        // 1.5 ns of work must take 2 whole nanoseconds.
        let d = SimDuration::from_secs_f64(1.5e-9);
        assert_eq!(d.as_nanos(), 2);
        assert_eq!(SimDuration::from_secs_f64(0.0), SimDuration::ZERO);
    }

    #[test]
    fn from_secs_f64_saturates_to_max() {
        assert_eq!(SimDuration::from_secs_f64(1e30), SimDuration::MAX);
    }

    #[test]
    #[should_panic(expected = "time went backwards")]
    fn duration_since_panics_on_backwards_time() {
        let early = SimTime::from_nanos(10);
        let late = SimTime::from_nanos(20);
        let _ = early.duration_since(late);
    }

    #[test]
    #[should_panic(expected = "invalid seconds")]
    fn from_secs_f64_rejects_nan() {
        let _ = SimDuration::from_secs_f64(f64::NAN);
    }

    #[test]
    fn display_formats_scale_with_magnitude() {
        assert_eq!(SimDuration::from_nanos(12).to_string(), "12ns");
        assert_eq!(SimDuration::from_micros(12).to_string(), "12.00us");
        assert_eq!(SimDuration::from_millis(12).to_string(), "12.00ms");
        assert_eq!(SimDuration::from_secs(12).to_string(), "12.000s");
        assert_eq!(SimDuration::MAX.to_string(), "inf");
    }

    #[test]
    fn max_time_is_sticky_under_saturating_add() {
        let never = SimTime::MAX;
        assert_eq!(
            never.saturating_add(SimDuration::from_secs(1)),
            SimTime::MAX
        );
    }
}
