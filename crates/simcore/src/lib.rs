//! # memfs-simcore
//!
//! A small, deterministic discrete-event simulation (DES) engine used as the
//! substrate for the MemFS reproduction.
//!
//! The MemFS paper evaluates the file system on a 64-node cluster (DAS4) and
//! on 32 Amazon EC2 virtual machines. This crate provides the building blocks
//! with which those platforms are simulated:
//!
//! * [`SimTime`] / [`SimDuration`] — a nanosecond-resolution virtual clock,
//! * [`EventQueue`] — a deterministic calendar queue (ties broken by
//!   insertion order, so identical runs replay identically),
//! * [`PsResource`] — a processor-sharing resource with an arbitrary
//!   concurrency-efficiency curve (used e.g. for the FUSE mount-point
//!   spinlock model of Figure 10),
//! * [`SimRng`] — seedable, splittable random streams so every experiment is
//!   reproducible,
//! * [`stats`] — streaming statistics helpers shared by all experiment
//!   drivers.
//!
//! The engine is intentionally event-driven rather than process-driven: the
//! higher layers (`memfs-netsim`, `memfs-mtc`) model network transfers and
//! task execution analytically as *flows* with remaining work, which is both
//! orders of magnitude faster than packet-level simulation and sufficient to
//! capture every contention phenomenon the paper reports.

pub mod queue;
pub mod resource;
pub mod rng;
pub mod stats;
pub mod time;
pub mod units;

pub use queue::{EventEntry, EventQueue};
pub use resource::{EfficiencyCurve, JobId, PsResource};
pub use rng::SimRng;
pub use time::{SimDuration, SimTime};
