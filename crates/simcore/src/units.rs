//! Byte-size and bandwidth units shared across the workspace.
//!
//! The paper reports bandwidth in MB/s (decimal) and file sizes in KB/MB/GB;
//! we keep the same convention: `KB = 1000` for reporting, but the file
//! system's stripe size uses binary KiB (512 KiB) as memcached-style stores
//! traditionally do. Both families of constants are provided and explicitly
//! named to avoid ambiguity.

/// 1 decimal kilobyte (10^3 bytes) — used for paper-facing reporting.
pub const KB: u64 = 1_000;
/// 1 decimal megabyte (10^6 bytes).
pub const MB: u64 = 1_000_000;
/// 1 decimal gigabyte (10^9 bytes).
pub const GB: u64 = 1_000_000_000;

/// 1 binary kibibyte (2^10 bytes) — used for stripe/buffer sizes.
pub const KIB: u64 = 1 << 10;
/// 1 binary mebibyte (2^20 bytes).
pub const MIB: u64 = 1 << 20;
/// 1 binary gibibyte (2^30 bytes).
pub const GIB: u64 = 1 << 30;

/// Bandwidth in bytes per second.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd)]
pub struct Bandwidth(pub f64);

impl Bandwidth {
    /// Construct from megabytes (decimal) per second.
    pub fn from_mb_per_s(mb: f64) -> Self {
        Bandwidth(mb * MB as f64)
    }

    /// Construct from gigabits per second (as network links are quoted).
    pub fn from_gbit_per_s(gbit: f64) -> Self {
        Bandwidth(gbit * 1e9 / 8.0)
    }

    /// Bytes per second.
    #[inline]
    pub fn bytes_per_s(self) -> f64 {
        self.0
    }

    /// Megabytes (decimal) per second, for paper-style reporting.
    #[inline]
    pub fn mb_per_s(self) -> f64 {
        self.0 / MB as f64
    }

    /// Seconds needed to move `bytes` at this bandwidth.
    #[inline]
    pub fn transfer_secs(self, bytes: u64) -> f64 {
        assert!(self.0 > 0.0, "transfer over zero bandwidth");
        bytes as f64 / self.0
    }
}

/// Render a byte count with a human-friendly decimal suffix ("4.9 GB").
pub fn fmt_bytes(bytes: u64) -> String {
    let b = bytes as f64;
    if bytes >= GB {
        format!("{:.1} GB", b / GB as f64)
    } else if bytes >= MB {
        format!("{:.1} MB", b / MB as f64)
    } else if bytes >= KB {
        format!("{:.1} KB", b / KB as f64)
    } else {
        format!("{bytes} B")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bandwidth_conversions() {
        let b = Bandwidth::from_gbit_per_s(10.0);
        assert!((b.bytes_per_s() - 1.25e9).abs() < 1.0);
        assert!((b.mb_per_s() - 1250.0).abs() < 1e-9);
        let m = Bandwidth::from_mb_per_s(117.0);
        assert!((m.bytes_per_s() - 117e6).abs() < 1.0);
    }

    #[test]
    fn transfer_time_is_bytes_over_rate() {
        let b = Bandwidth::from_mb_per_s(1000.0);
        assert!((b.transfer_secs(GB) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn byte_formatting() {
        assert_eq!(fmt_bytes(512), "512 B");
        assert_eq!(fmt_bytes(4_900_000_000), "4.9 GB");
        assert_eq!(fmt_bytes(1_500_000), "1.5 MB");
        assert_eq!(fmt_bytes(2_000), "2.0 KB");
    }

    #[test]
    fn binary_and_decimal_units_differ() {
        assert_eq!(KIB, 1024);
        assert_eq!(KB, 1000);
        assert_eq!(512 * KIB, 524_288);
    }

    #[test]
    #[should_panic(expected = "zero bandwidth")]
    fn zero_bandwidth_transfer_panics() {
        Bandwidth(0.0).transfer_secs(1);
    }
}
