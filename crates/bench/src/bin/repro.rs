//! `repro` — regenerate every table and figure of the MemFS paper.
//!
//! ```text
//! cargo run -p memfs-bench --release --bin repro -- all
//! cargo run -p memfs-bench --release --bin repro -- fig4 tab1
//! ```

use memfs_bench::{help_text, is_artifact, ARTIFACTS};
use memfs_memkv::client::Shaping;
use memfs_mtc::experiments::{envelope_figs, fig3, memory, scaling, table2};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() || args.iter().any(|a| a == "--help" || a == "-h") {
        print!("{}", help_text());
        std::process::exit(if args.is_empty() { 2 } else { 0 });
    }
    let mut wanted: Vec<&str> = Vec::new();
    for arg in &args {
        if arg == "all" {
            wanted = ARTIFACTS.iter().map(|(n, _)| *n).collect();
            break;
        }
        if !is_artifact(arg) {
            eprintln!("unknown artifact {arg:?}\n");
            eprint!("{}", help_text());
            std::process::exit(2);
        }
        wanted.push(arg);
    }

    for name in wanted {
        println!("==================================================================");
        println!("== {name}");
        println!("==================================================================");
        run(name);
        println!();
    }
}

fn run(name: &str) {
    match name {
        "fig3a" => {
            let rows = fig3::run_fig3a(64 << 20, Shaping::ipoib_like());
            print!("{}", fig3::render_fig3a(&rows));
        }
        "fig3b" => {
            let rows = fig3::run_fig3b(64 << 20, Shaping::ipoib_like());
            print!("{}", fig3::render_fig3b(&rows));
        }
        "fig4" | "fig5" => {
            let rows = envelope_figs::run_envelope_sweep();
            let bandwidth = name == "fig4";
            for &file in &envelope_figs::FILE_SIZES {
                print!("{}", envelope_figs::render_envelope(&rows, file, bandwidth));
                println!();
            }
        }
        "fig6" => {
            let rows = envelope_figs::run_metadata_sweep();
            print!("{}", envelope_figs::render_metadata(&rows));
        }
        "tab1" => {
            let t = envelope_figs::run_table1();
            print!("{}", envelope_figs::render_table1(&t));
        }
        "tab2" => {
            let rows = table2::run_table2();
            print!("{}", table2::render_table2(&rows));
        }
        "fig7" => {
            let rows = scaling::run_fig7();
            print!("{}", scaling::render_scaling(&rows));
        }
        "fig8" => {
            let rows = scaling::run_fig8();
            print!("{}", scaling::render_scaling(&rows));
        }
        "fig9" | "tab3" => {
            let rows = memory::run_fig9_table3();
            if name == "fig9" {
                print!("{}", memory::render_fig9(&rows));
            } else {
                print!("{}", memory::render_table3(&rows));
            }
        }
        "fig10" => {
            let rows = scaling::run_fig10();
            print!("{}", scaling::render_scaling(&rows));
        }
        "fig11" => {
            let rows = scaling::run_fig11();
            print!("{}", scaling::render_scaling(&rows));
        }
        "fig12" | "fig13" => {
            let rows = scaling::run_fig12_13();
            let keep = if name == "fig12" { "fig12" } else { "fig13" };
            let rows: Vec<_> = rows.into_iter().filter(|r| r.figure == keep).collect();
            print!("{}", scaling::render_scaling(&rows));
        }
        "fig14" | "fig15" => {
            let rows = scaling::run_fig14_15();
            let keep = if name == "fig14" { "fig14" } else { "fig15" };
            let rows: Vec<_> = rows.into_iter().filter(|r| r.figure == keep).collect();
            print!("{}", scaling::render_scaling(&rows));
        }
        "fig16" => {
            let rows = envelope_figs::run_fig16();
            print!("{}", envelope_figs::render_fig16(&rows));
        }
        "montage12" => {
            let (memfs, amfs) = memory::run_montage12_crash(64);
            println!("Montage 12x12 on 64 DAS4 nodes:");
            println!(
                "  MemFS: {}",
                memfs
                    .failed
                    .as_deref()
                    .map(|e| format!("FAILED ({e})"))
                    .unwrap_or_else(|| format!(
                        "completed; aggregate peak {:.1} GB",
                        memfs.aggregate_peak as f64 / 1e9
                    ))
            );
            println!(
                "  AMFS : {}",
                amfs.failed
                    .as_deref()
                    .map(|e| format!("FAILED ({e})"))
                    .unwrap_or_else(|| "completed (paper expects a crash!)".to_string())
            );
        }
        other => unreachable!("unvalidated artifact {other}"),
    }
}
