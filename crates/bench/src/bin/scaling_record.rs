//! Record evented-transport scaling to JSON (`BENCH_pr4.json`).
//!
//! Real-TCP clusters of 1/2/4/8 storage servers, each behind a
//! bandwidth-capped shaped proxy (6 MiB/s per server — the server link,
//! not loopback, is the bottleneck). Pool-level batched `set_many` /
//! `get_many` aggregate throughput is measured with `io_parallelism = 1`
//! (sequential per-server dispatch) and `io_parallelism = 0` (evented
//! full fan-out: every server's batch in flight from one caller thread).
//!
//! Acceptance bars: with fan-out, the 8-server aggregate read and write
//! throughput must each be ≥ 1.5x the 4-server figure — the plateau the
//! blocking transport hit when a fan-out cost one engine worker per
//! server.
//!
//! Usage: `cargo run --release -p memfs-bench --bin scaling_record`
//! (JSON to stdout; `scripts/bench_record.sh` writes `BENCH_pr4.json`
//! and enforces the bars).

use std::time::Instant;

use bytes::Bytes;
use memfs_core::{DistributorKind, ServerPool};
use memfs_memkv::net::PoolConfig;
use memfs_memkv::testutil::{seed_from_env, Rng, Shape, ShapedCluster};

const SERVER_BPS: u64 = 6 << 20;
const VALUE_BYTES: usize = 64 * 1024;
const VALUES_PER_SERVER: usize = 16;
const ROUNDS: usize = 3;

fn balanced_items(pool: &ServerPool, rng: &mut Rng) -> Vec<(Bytes, Bytes)> {
    let n = pool.n_servers();
    let mut remaining: Vec<usize> = vec![VALUES_PER_SERVER; n];
    let mut left = n * VALUES_PER_SERVER;
    let mut items = Vec::with_capacity(left);
    let value = Bytes::from(vec![0xB7u8; VALUE_BYTES]);
    while left > 0 {
        let key = Bytes::from(format!("s:/f{:016x}#0", rng.next_u64()));
        let server = pool.server_for(&key).0;
        if remaining[server] > 0 {
            remaining[server] -= 1;
            left -= 1;
            items.push((key, value.clone()));
        }
    }
    items
}

/// Best-of-rounds aggregate (write_bps, read_bps).
fn measure(n: usize, io_parallelism: usize, rng: &mut Rng) -> (f64, f64) {
    let mut best_write = 0f64;
    let mut best_read = 0f64;
    for _ in 0..ROUNDS {
        let cluster = ShapedCluster::spawn(n, Shape::throttled(SERVER_BPS));
        let pool = ServerPool::with_options(
            cluster.clients(PoolConfig::default()),
            DistributorKind::default(),
            1,
            io_parallelism,
        );
        let items = balanced_items(&pool, rng);
        let keys: Vec<Bytes> = items.iter().map(|(k, _)| k.clone()).collect();
        let total = (items.len() * VALUE_BYTES) as f64;

        let start = Instant::now();
        pool.set_many(&items).expect("shaped set_many");
        best_write = best_write.max(total / start.elapsed().as_secs_f64());

        let start = Instant::now();
        for r in pool.get_many(&keys) {
            assert_eq!(r.expect("shaped get_many").len(), VALUE_BYTES);
        }
        best_read = best_read.max(total / start.elapsed().as_secs_f64());
    }
    (best_write, best_read)
}

fn main() {
    let seed = seed_from_env();
    eprintln!("scaling_record seed: {seed} (set MEMFS_SHAPE_SEED to reproduce)");
    let mut rng = Rng::new(seed);
    let mut rows = String::new();
    let mut fan_read = [0f64; 2]; // [at 4, at 8]
    let mut fan_write = [0f64; 2];
    for (i, n) in [1usize, 2, 4, 8].into_iter().enumerate() {
        let (seq_write, seq_read) = measure(n, 1, &mut rng);
        let (par_write, par_read) = measure(n, 0, &mut rng);
        if n == 4 {
            fan_write[0] = par_write;
            fan_read[0] = par_read;
        } else if n == 8 {
            fan_write[1] = par_write;
            fan_read[1] = par_read;
        }
        eprintln!(
            "servers={n}: write {:.1} -> {:.1} MB/s, read {:.1} -> {:.1} MB/s (seq -> fanout)",
            seq_write / 1e6,
            par_write / 1e6,
            seq_read / 1e6,
            par_read / 1e6,
        );
        if i > 0 {
            rows.push_str(",\n");
        }
        rows.push_str(&format!(
            "    {{\"servers\": {n}, \
             \"write_seq_bps\": {seq_write:.0}, \"write_fanout_bps\": {par_write:.0}, \
             \"read_seq_bps\": {seq_read:.0}, \"read_fanout_bps\": {par_read:.0}}}"
        ));
    }
    let write_scale = fan_write[1] / fan_write[0];
    let read_scale = fan_read[1] / fan_read[0];
    let write_pass = write_scale >= 1.5;
    let read_pass = read_scale >= 1.5;
    let pass = write_pass && read_pass;
    eprintln!("8v4 scaling: write {write_scale:.2}x, read {read_scale:.2}x (bar 1.5x)");
    println!(
        "{{\n  \"bench\": \"evented_scaling\",\n  \
         \"shaping\": {{\"server_bandwidth_bps\": {SERVER_BPS}, \"transport\": \"tcp+shaped-proxy\"}},\n  \
         \"payload\": {{\"value_bytes\": {VALUE_BYTES}, \"values_per_server\": {VALUES_PER_SERVER}}},\n  \
         \"seed\": {seed},\n  \
         \"rows\": [\n{rows}\n  ],\n  \
         \"acceptance\": {{\"metric\": \"8-server vs 4-server aggregate fan-out throughput\", \
         \"bar\": 1.5, \"write_scale\": {write_scale:.3}, \"read_scale\": {read_scale:.3}, \
         \"pass\": {pass}}}\n}}"
    );
    if !write_pass {
        eprintln!("FAIL: 8v4 write scaling {write_scale:.2}x < 1.5x");
    }
    if !read_pass {
        eprintln!("FAIL: 8v4 read scaling {read_scale:.2}x < 1.5x");
    }
    if !pass {
        std::process::exit(1);
    }
}
