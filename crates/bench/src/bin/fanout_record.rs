//! Record the concurrent fan-out speedup to JSON (`BENCH_pr3.json`).
//!
//! Same experiment as `benches/fanout.rs`, self-timed so CI can run it in
//! seconds and check the acceptance bars: over shaped in-process servers
//! (gigabit-Ethernet-like: 200 µs RTT, 117 MB/s per server), an 8 MiB
//! striped file is written and read with `io_parallelism = 1` (sequential
//! per-server dispatch) and `io_parallelism = 0` (auto fan-out through the
//! mount's shared engine). On a transfer-dominated link the fan-out
//! aggregates the per-server bandwidths, which is exactly the paper's
//! symmetry claim. Bars: at 4 servers, parallel read bandwidth ≥ 2.5x
//! and parallel write bandwidth ≥ 2x sequential.
//!
//! A third experiment reads the file back in single-stripe `read_at`
//! calls: small sequential reads must still engage every server, because
//! each batched read re-issues the full remaining prefetch window. The
//! bar is per-server read-batch balance (max/min ≤ 2) at 4 servers.
//!
//! Usage: `cargo run --release -p memfs-bench --bin fanout_record`
//! (writes the JSON document to stdout; `scripts/bench_record.sh`
//! redirects it to `BENCH_pr3.json` and enforces the bars).

use std::sync::Arc;
use std::time::Instant;

use memfs_core::{MemFs, MemFsConfig};
use memfs_memkv::client::Shaping;
use memfs_memkv::{KvClient, LocalClient, Store, StoreConfig, ThrottledClient};

const FILE_BYTES: usize = 8 << 20;
const SMALL_READ_BYTES: usize = 512 << 10; // one stripe per read_at
const SMALL_FILE_BYTES: usize = 32 << 20; // longer run: stable batch counts
const ROUNDS: usize = 3;

fn shaped_servers(n: usize) -> Vec<Arc<dyn KvClient>> {
    let shaping = Shaping::gbe_like();
    (0..n)
        .map(|_| {
            let store = Arc::new(Store::new(StoreConfig::default()));
            Arc::new(ThrottledClient::new(LocalClient::new(store), shaping)) as Arc<dyn KvClient>
        })
        .collect()
}

/// Best-of-`ROUNDS` write and read bandwidth (bytes/s) for one config.
fn measure(n_servers: usize, io_parallelism: usize) -> (f64, f64) {
    let payload = vec![0xA5u8; 1 << 20];
    let mut best_write = 0f64;
    let mut best_read = 0f64;
    for round in 0..ROUNDS {
        let config = MemFsConfig::default().with_io_parallelism(io_parallelism);
        let fs = MemFs::new(shaped_servers(n_servers), config).expect("valid config");
        let path = format!("/bench{round}.dat");

        let start = Instant::now();
        let mut w = fs.create(&path).expect("create");
        let mut left = FILE_BYTES;
        while left > 0 {
            let n = left.min(payload.len());
            w.write_all(&payload[..n]).expect("write");
            left -= n;
        }
        w.close().expect("close");
        best_write = best_write.max(FILE_BYTES as f64 / start.elapsed().as_secs_f64());

        // Fresh handle => cold prefetch cache; all stripes re-fetched.
        // Window-sized reads (8 stripes) keep every batch wide enough to
        // span all servers — smaller reads cap the fan-out at the number
        // of stripes the sliding prefetch window advances per call.
        let r = fs.open(&path).expect("open");
        let mut buf = vec![0u8; 4 << 20];
        let start = Instant::now();
        let mut off = 0u64;
        while off < FILE_BYTES as u64 {
            let n = r.read_at(off, &mut buf).expect("read");
            assert!(n > 0);
            off += n as u64;
        }
        best_read = best_read.max(FILE_BYTES as f64 / start.elapsed().as_secs_f64());
    }
    (best_write, best_read)
}

/// Sequential single-stripe reads through a cold handle: best-of-rounds
/// bandwidth plus the per-server read-batch counts of the best round.
fn measure_small_read(n_servers: usize) -> (f64, Vec<u64>) {
    let payload = vec![0x5Au8; 1 << 20];
    let mut best = 0f64;
    let mut best_batches: Vec<u64> = Vec::new();
    for round in 0..ROUNDS {
        let fs =
            MemFs::new(shaped_servers(n_servers), MemFsConfig::default()).expect("valid config");
        let path = format!("/small{round}.dat");
        let mut w = fs.create(&path).expect("create");
        let mut left = SMALL_FILE_BYTES;
        while left > 0 {
            let n = left.min(payload.len());
            w.write_all(&payload[..n]).expect("write");
            left -= n;
        }
        w.close().expect("close");

        let r = fs.open(&path).expect("open");
        let mut buf = vec![0u8; SMALL_READ_BYTES];
        let before: Vec<u64> = fs
            .pool()
            .stats()
            .snapshot()
            .iter()
            .map(|s| s.batches)
            .collect();
        let start = Instant::now();
        let mut off = 0u64;
        while off < SMALL_FILE_BYTES as u64 {
            let n = r.read_at(off, &mut buf).expect("read");
            assert!(n > 0);
            off += n as u64;
        }
        let bps = SMALL_FILE_BYTES as f64 / start.elapsed().as_secs_f64();
        let after: Vec<u64> = fs
            .pool()
            .stats()
            .snapshot()
            .iter()
            .map(|s| s.batches)
            .collect();
        if bps > best {
            best = bps;
            best_batches = after.iter().zip(&before).map(|(a, b)| a - b).collect();
        }
    }
    (best, best_batches)
}

fn main() {
    let mut rows = String::new();
    let mut speedup_read_at_4 = 0f64;
    let mut speedup_write_at_4 = 0f64;
    for (i, n) in [1usize, 2, 4, 8].into_iter().enumerate() {
        let (seq_write, seq_read) = measure(n, 1);
        let (par_write, par_read) = measure(n, 0);
        let write_speedup = par_write / seq_write;
        let read_speedup = par_read / seq_read;
        if n == 4 {
            speedup_read_at_4 = read_speedup;
            speedup_write_at_4 = write_speedup;
        }
        eprintln!(
            "servers={n}: write {:.0} -> {:.0} MB/s ({write_speedup:.2}x), \
             read {:.0} -> {:.0} MB/s ({read_speedup:.2}x)",
            seq_write / 1e6,
            par_write / 1e6,
            seq_read / 1e6,
            par_read / 1e6,
        );
        if i > 0 {
            rows.push_str(",\n");
        }
        rows.push_str(&format!(
            "    {{\"servers\": {n}, \
             \"write_seq_bps\": {seq_write:.0}, \"write_par_bps\": {par_write:.0}, \
             \"write_speedup\": {write_speedup:.3}, \
             \"read_seq_bps\": {seq_read:.0}, \"read_par_bps\": {par_read:.0}, \
             \"read_speedup\": {read_speedup:.3}}}"
        ));
    }
    let (small_bps, small_batches) = measure_small_read(4);
    let min_b = small_batches.iter().copied().min().unwrap_or(0);
    let max_b = small_batches.iter().copied().max().unwrap_or(0);
    let balance = if min_b > 0 {
        max_b as f64 / min_b as f64
    } else {
        f64::INFINITY
    };
    eprintln!(
        "small reads at 4 servers: {:.0} MB/s, per-server read batches {:?} (balance {balance:.2})",
        small_bps / 1e6,
        small_batches,
    );

    let read_pass = speedup_read_at_4 >= 2.5;
    let write_pass = speedup_write_at_4 >= 2.0;
    let small_pass = min_b > 0 && balance <= 2.0;
    let pass = read_pass && write_pass && small_pass;
    let batches_json = small_batches
        .iter()
        .map(u64::to_string)
        .collect::<Vec<_>>()
        .join(", ");
    println!(
        "{{\n  \"bench\": \"fanout\",\n  \"file_bytes\": {FILE_BYTES},\n  \
         \"shaping\": {{\"latency_us\": 200, \"bandwidth_bps\": 117e6}},\n  \
         \"rows\": [\n{rows}\n  ],\n  \
         \"small_read\": {{\"servers\": 4, \"file_bytes\": {SMALL_FILE_BYTES}, \
         \"bytes_per_call\": {SMALL_READ_BYTES}, \
         \"bps\": {small_bps:.0}, \"mget_batches\": [{batches_json}], \
         \"balance\": {balance:.3}, \"bar\": 2.0, \"pass\": {small_pass}}},\n  \
         \"acceptance\": {{\"metric\": \"read/write speedup and small-read balance at 4 servers\", \
         \"read_bar\": 2.5, \"read_speedup\": {speedup_read_at_4:.3}, \
         \"write_bar\": 2.0, \"write_speedup\": {speedup_write_at_4:.3}, \
         \"pass\": {pass}}}\n}}"
    );
    if !read_pass {
        eprintln!("FAIL: read speedup at 4 servers {speedup_read_at_4:.2}x < 2.5x");
    }
    if !write_pass {
        eprintln!("FAIL: write speedup at 4 servers {speedup_write_at_4:.2}x < 2.0x");
    }
    if !small_pass {
        eprintln!(
            "FAIL: small-read batches {small_batches:?} unbalanced (balance {balance:.2} > 2.0)"
        );
    }
    if !pass {
        std::process::exit(1);
    }
}
