//! Record shared-reactor consolidation to JSON (`BENCH_pr5.json`).
//!
//! Three measurements:
//!
//! 1. **Thread count at 16 servers** — standalone clients (one private
//!    epoll reactor each, the pre-consolidation shape) vs sixteen clients
//!    registered with one shared [`memfs_memkv::ReactorHandle`]. The bar:
//!    16 reactor threads before, exactly 1 after.
//! 2. **Completion batching factor** — concurrent fan-outs over the
//!    16-server shared-reactor pool; the loop's counters report
//!    completions delivered per completion-bearing epoll wake. The bar:
//!    factor > 1 (one wake drains completions from several servers).
//! 3. **8v4 shaped scaling** — the PR 4 regression bar re-run on the
//!    shared reactor: bandwidth-capped proxies, aggregate batched
//!    throughput at 8 servers must stay ≥ 1.5x the 4-server figure for
//!    both reads and writes.
//!
//! Usage: `cargo run --release -p memfs-bench --bin reactor_record`
//! (JSON to stdout; `scripts/bench_record.sh` writes `BENCH_pr5.json`
//! and enforces the bars).

use std::sync::Arc;
use std::time::Instant;

use bytes::Bytes;
use memfs_core::{DistributorKind, ServerPool};
use memfs_memkv::net::{KvServer, PoolConfig, TcpClient};
use memfs_memkv::testutil::{seed_from_env, Rng, Shape, ShapedCluster};
use memfs_memkv::{KvClient, ReactorHandle, Store, StoreConfig};

const N_SERVERS: usize = 16;
const SERVER_BPS: u64 = 6 << 20;
const VALUE_BYTES: usize = 64 * 1024;
const VALUES_PER_SERVER: usize = 16;
const ROUNDS: usize = 3;

/// Live threads named `memkv-reactor*`, polled until stable at
/// `expected` or the deadline passes (threads name themselves on start).
fn reactor_threads(expected: usize) -> usize {
    let count = || {
        std::fs::read_dir("/proc/self/task")
            .unwrap()
            .filter_map(|e| std::fs::read_to_string(e.unwrap().path().join("comm")).ok())
            .filter(|name| name.trim_end().starts_with("memkv-reactor"))
            .count()
    };
    let deadline = Instant::now() + std::time::Duration::from_secs(5);
    loop {
        let n = count();
        if n == expected || Instant::now() >= deadline {
            return n;
        }
        std::thread::sleep(std::time::Duration::from_millis(10));
    }
}

fn spawn_servers(n: usize) -> Vec<KvServer> {
    (0..n)
        .map(|_| {
            KvServer::spawn(Arc::new(Store::new(StoreConfig::default())), "127.0.0.1:0")
                .expect("bind storage server")
        })
        .collect()
}

/// Thread census: (standalone clients, shared-reactor clients).
fn measure_threads(servers: &[KvServer]) -> (usize, usize) {
    let standalone: Vec<TcpClient> = servers
        .iter()
        .map(|s| TcpClient::connect_with(s.addr(), PoolConfig::default()).expect("connect"))
        .collect();
    let before = reactor_threads(servers.len());
    drop(standalone);
    reactor_threads(0);

    let reactor = ReactorHandle::new().expect("spawn shared reactor");
    let shared: Vec<TcpClient> = servers
        .iter()
        .map(|s| {
            TcpClient::connect_shared(s.addr(), PoolConfig::default(), &reactor).expect("connect")
        })
        .collect();
    let after = reactor_threads(1);
    drop(shared);
    drop(reactor);
    reactor_threads(0);
    (before, after)
}

/// Completions per completion-bearing epoll wake under concurrent
/// fan-outs on one shared reactor.
fn measure_batching(servers: &[KvServer]) -> f64 {
    let reactor = ReactorHandle::new().expect("spawn shared reactor");
    let clients: Vec<Arc<dyn KvClient>> = servers
        .iter()
        .map(|s| {
            Arc::new(
                TcpClient::connect_shared(s.addr(), PoolConfig::default(), &reactor)
                    .expect("connect"),
            ) as Arc<dyn KvClient>
        })
        .collect();
    let pool = Arc::new(ServerPool::with_options(
        clients,
        DistributorKind::default(),
        1,
        0,
    ));
    let keys: Vec<Bytes> = (0..256).map(|i| Bytes::from(format!("b{i:04}"))).collect();
    let items: Vec<(Bytes, Bytes)> = keys
        .iter()
        .map(|k| (k.clone(), Bytes::from(vec![0xC4u8; 32 << 10])))
        .collect();
    pool.set_many(&items).expect("seed batching keys");

    let s0 = pool.reactor_stats()[0];
    let threads: Vec<_> = (0..4)
        .map(|_| {
            let pool = Arc::clone(&pool);
            let keys = keys.clone();
            std::thread::spawn(move || {
                for _ in 0..16 {
                    for r in pool.get_many(&keys) {
                        r.expect("batching get_many");
                    }
                }
            })
        })
        .collect();
    for t in threads {
        t.join().unwrap();
    }
    let s1 = pool.reactor_stats()[0];
    let completions = (s1.completions - s0.completions) as f64;
    let batches = (s1.completion_batches - s0.completion_batches).max(1) as f64;
    completions / batches
}

fn balanced_items(pool: &ServerPool, rng: &mut Rng) -> Vec<(Bytes, Bytes)> {
    let n = pool.n_servers();
    let mut remaining: Vec<usize> = vec![VALUES_PER_SERVER; n];
    let mut left = n * VALUES_PER_SERVER;
    let mut items = Vec::with_capacity(left);
    let value = Bytes::from(vec![0xB7u8; VALUE_BYTES]);
    while left > 0 {
        let key = Bytes::from(format!("s:/f{:016x}#0", rng.next_u64()));
        let server = pool.server_for(&key).0;
        if remaining[server] > 0 {
            remaining[server] -= 1;
            left -= 1;
            items.push((key, value.clone()));
        }
    }
    items
}

/// Best-of-rounds aggregate (write_bps, read_bps) with full fan-out over
/// a bandwidth-capped shaped cluster — every client on one shared
/// reactor (the harness default).
fn measure_scaling(n: usize, rng: &mut Rng) -> (f64, f64) {
    let mut best_write = 0f64;
    let mut best_read = 0f64;
    for _ in 0..ROUNDS {
        let cluster = ShapedCluster::spawn(n, Shape::throttled(SERVER_BPS));
        let pool = ServerPool::with_options(
            cluster.clients(PoolConfig::default()),
            DistributorKind::default(),
            1,
            0,
        );
        let items = balanced_items(&pool, rng);
        let keys: Vec<Bytes> = items.iter().map(|(k, _)| k.clone()).collect();
        let total = (items.len() * VALUE_BYTES) as f64;

        let start = Instant::now();
        pool.set_many(&items).expect("shaped set_many");
        best_write = best_write.max(total / start.elapsed().as_secs_f64());

        let start = Instant::now();
        for r in pool.get_many(&keys) {
            assert_eq!(r.expect("shaped get_many").len(), VALUE_BYTES);
        }
        best_read = best_read.max(total / start.elapsed().as_secs_f64());
    }
    (best_write, best_read)
}

fn main() {
    let seed = seed_from_env();
    eprintln!("reactor_record seed: {seed} (set MEMFS_SHAPE_SEED to reproduce)");
    let mut rng = Rng::new(seed);

    let servers = spawn_servers(N_SERVERS);
    let (threads_before, threads_after) = measure_threads(&servers);
    eprintln!("reactor threads at {N_SERVERS} servers: {threads_before} standalone -> {threads_after} shared");
    let batching = measure_batching(&servers);
    eprintln!("completion batching factor: {batching:.2} completions per wake");
    let mut servers = servers;
    for s in &mut servers {
        s.shutdown();
    }

    let (write4, read4) = measure_scaling(4, &mut rng);
    let (write8, read8) = measure_scaling(8, &mut rng);
    let write_scale = write8 / write4;
    let read_scale = read8 / read4;
    eprintln!(
        "shaped scaling: write {:.1} -> {:.1} MB/s ({write_scale:.2}x), read {:.1} -> {:.1} MB/s ({read_scale:.2}x)",
        write4 / 1e6,
        write8 / 1e6,
        read4 / 1e6,
        read8 / 1e6,
    );

    let threads_pass = threads_before == N_SERVERS && threads_after == 1;
    let batching_pass = batching > 1.0;
    let scaling_pass = write_scale >= 1.5 && read_scale >= 1.5;
    let pass = threads_pass && batching_pass && scaling_pass;
    println!(
        "{{\n  \"bench\": \"shared_reactor\",\n  \
         \"cluster\": {{\"servers\": {N_SERVERS}, \"transport\": \"tcp\"}},\n  \
         \"seed\": {seed},\n  \
         \"threads\": {{\"standalone\": {threads_before}, \"shared\": {threads_after}}},\n  \
         \"batching\": {{\"completions_per_wake\": {batching:.3}}},\n  \
         \"scaling\": {{\"server_bandwidth_bps\": {SERVER_BPS}, \
         \"write_4_bps\": {write4:.0}, \"write_8_bps\": {write8:.0}, \
         \"read_4_bps\": {read4:.0}, \"read_8_bps\": {read8:.0}, \
         \"write_scale\": {write_scale:.3}, \"read_scale\": {read_scale:.3}}},\n  \
         \"acceptance\": {{\"metric\": \"one reactor thread per mount, batched completions, 8v4 >= 1.5x\", \
         \"threads_pass\": {threads_pass}, \"batching_pass\": {batching_pass}, \
         \"scaling_pass\": {scaling_pass}, \"pass\": {pass}}}\n}}"
    );
    if !threads_pass {
        eprintln!(
            "FAIL: thread census {threads_before} -> {threads_after} (want {N_SERVERS} -> 1)"
        );
    }
    if !batching_pass {
        eprintln!("FAIL: completion batching factor {batching:.2} <= 1");
    }
    if !scaling_pass {
        eprintln!("FAIL: 8v4 scaling write {write_scale:.2}x / read {read_scale:.2}x < 1.5x");
    }
    if !pass {
        std::process::exit(1);
    }
}
