//! Record line-rate efficiency of the finished reactor to JSON
//! (`BENCH_pr6.json`).
//!
//! A single 16-server mount over bandwidth-capped proxies (6 MiB/s per
//! server, 96 MiB/s aggregate) is driven with balanced full-fan-out
//! batches of 64 KiB values, once with one reactor loop and once with
//! the servers sharded across two loops ([`memfs_memkv::ReactorSet`]).
//! For each config the best-of-rounds aggregate write and read
//! throughput is expressed as a fraction of the shaped cap.
//!
//! Bars:
//!
//! 1. **Line rate** — the better config moves ≥ 90% of the aggregate
//!    shaped bandwidth in both directions. The loop (timer wheel,
//!    in-loop connects, one-copy writes) is not the bottleneck; the
//!    shaped pipes are.
//! 2. **Thread census** — the 1-loop config runs exactly one
//!    `memkv-reactor` thread, the 2-loop config exactly two.
//!
//! Usage: `cargo run --release -p memfs-bench --bin linerate_record`
//! (JSON to stdout; `scripts/bench_record.sh` writes `BENCH_pr6.json`
//! and enforces the bars).

use std::time::Instant;

use bytes::Bytes;
use memfs_core::{DistributorKind, ServerPool};
use memfs_memkv::net::PoolConfig;
use memfs_memkv::testutil::{seed_from_env, Rng, Shape, ShapedCluster};

const N_SERVERS: usize = 16;
const SERVER_BPS: u64 = 6 << 20;
const VALUE_BYTES: usize = 64 * 1024;
const VALUES_PER_SERVER: usize = 48;
const ROUNDS: usize = 3;

/// Live threads named `memkv-reactor*`, polled until stable at
/// `expected` or the deadline passes (threads name themselves on start).
fn reactor_threads(expected: usize) -> usize {
    let count = || {
        std::fs::read_dir("/proc/self/task")
            .unwrap()
            .filter_map(|e| std::fs::read_to_string(e.unwrap().path().join("comm")).ok())
            .filter(|name| name.trim_end().starts_with("memkv-reactor"))
            .count()
    };
    let deadline = Instant::now() + std::time::Duration::from_secs(5);
    loop {
        let n = count();
        if n == expected || Instant::now() >= deadline {
            return n;
        }
        std::thread::sleep(std::time::Duration::from_millis(10));
    }
}

/// Exactly `VALUES_PER_SERVER` keys per server so a batch saturates the
/// whole cluster at once.
fn balanced_items(pool: &ServerPool, rng: &mut Rng) -> Vec<(Bytes, Bytes)> {
    let n = pool.n_servers();
    let mut remaining: Vec<usize> = vec![VALUES_PER_SERVER; n];
    let mut left = n * VALUES_PER_SERVER;
    let mut items = Vec::with_capacity(left);
    let value = Bytes::from(vec![0xB7u8; VALUE_BYTES]);
    while left > 0 {
        let key = Bytes::from(format!("s:/f{:016x}#0", rng.next_u64()));
        let server = pool.server_for(&key).0;
        if remaining[server] > 0 {
            remaining[server] -= 1;
            left -= 1;
            items.push((key, value.clone()));
        }
    }
    items
}

/// Best-of-rounds aggregate (write_bps, read_bps, reactor thread count)
/// for a mount whose servers are sharded across `n_reactors` loops.
fn measure(n_reactors: usize, rng: &mut Rng) -> (f64, f64, usize) {
    let mut best_write = 0f64;
    let mut best_read = 0f64;
    let mut threads = 0;
    for _ in 0..ROUNDS {
        let cluster = ShapedCluster::spawn(N_SERVERS, Shape::throttled(SERVER_BPS));
        let pool = ServerPool::with_options(
            cluster.clients_sharded(PoolConfig::default(), n_reactors),
            DistributorKind::default(),
            1,
            0,
        );
        threads = reactor_threads(n_reactors);
        let items = balanced_items(&pool, rng);
        let keys: Vec<Bytes> = items.iter().map(|(k, _)| k.clone()).collect();
        let total = (items.len() * VALUE_BYTES) as f64;

        let start = Instant::now();
        pool.set_many(&items).expect("shaped set_many");
        best_write = best_write.max(total / start.elapsed().as_secs_f64());

        let start = Instant::now();
        for r in pool.get_many(&keys) {
            assert_eq!(r.expect("shaped get_many").len(), VALUE_BYTES);
        }
        best_read = best_read.max(total / start.elapsed().as_secs_f64());
    }
    (best_write, best_read, threads)
}

fn main() {
    let seed = seed_from_env();
    eprintln!("linerate_record seed: {seed} (set MEMFS_SHAPE_SEED to reproduce)");
    let mut rng = Rng::new(seed);

    let cap = (N_SERVERS as u64 * SERVER_BPS) as f64;
    let (write1, read1, threads1) = measure(1, &mut rng);
    eprintln!(
        "1 loop : write {:.1} MB/s ({:.1}% of cap), read {:.1} MB/s ({:.1}%), {threads1} reactor thread(s)",
        write1 / 1e6,
        100.0 * write1 / cap,
        read1 / 1e6,
        100.0 * read1 / cap,
    );
    let (write2, read2, threads2) = measure(2, &mut rng);
    eprintln!(
        "2 loops: write {:.1} MB/s ({:.1}% of cap), read {:.1} MB/s ({:.1}%), {threads2} reactor thread(s)",
        write2 / 1e6,
        100.0 * write2 / cap,
        read2 / 1e6,
        100.0 * read2 / cap,
    );

    // Per-config efficiency is the weaker of its two directions; the
    // mount passes on its better config.
    let eff1 = (write1 / cap).min(read1 / cap);
    let eff2 = (write2 / cap).min(read2 / cap);
    let best_eff = eff1.max(eff2);
    let census_pass = threads1 == 1 && threads2 == 2;
    let linerate_pass = best_eff >= 0.90;
    let pass = census_pass && linerate_pass;
    println!(
        "{{\n  \"bench\": \"linerate_reactor\",\n  \
         \"cluster\": {{\"servers\": {N_SERVERS}, \"transport\": \"tcp\", \
         \"server_bandwidth_bps\": {SERVER_BPS}, \"aggregate_cap_bps\": {cap:.0}}},\n  \
         \"seed\": {seed},\n  \
         \"value_bytes\": {VALUE_BYTES},\n  \
         \"one_loop\": {{\"threads\": {threads1}, \"write_bps\": {write1:.0}, \
         \"read_bps\": {read1:.0}, \"efficiency\": {eff1:.3}}},\n  \
         \"two_loops\": {{\"threads\": {threads2}, \"write_bps\": {write2:.0}, \
         \"read_bps\": {read2:.0}, \"efficiency\": {eff2:.3}}},\n  \
         \"acceptance\": {{\"metric\": \"best config moves >= 90% of the shaped cap both ways; census 1 and 2 loops\", \
         \"best_efficiency\": {best_eff:.3}, \"census_pass\": {census_pass}, \
         \"linerate_pass\": {linerate_pass}, \"pass\": {pass}}}\n}}"
    );
    if !census_pass {
        eprintln!("FAIL: thread census {threads1}/{threads2} (want 1/2)");
    }
    if !linerate_pass {
        eprintln!("FAIL: best efficiency {best_eff:.3} < 0.90 of the shaped cap");
    }
    if !pass {
        std::process::exit(1);
    }
}
