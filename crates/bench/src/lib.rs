//! # memfs-bench
//!
//! The benchmark harness of the MemFS reproduction:
//!
//! * the **`repro` binary** (`cargo run -p memfs-bench --release --bin
//!   repro -- <artifact>`) regenerates every table and figure of the
//!   paper's evaluation as text series (see `repro --help` or DESIGN.md's
//!   experiment index);
//! * the **Criterion benches** (`cargo bench -p memfs-bench`) measure the
//!   performance-critical kernels and the design-choice ablations called
//!   out in DESIGN.md: hash distributors, the memkv store engine, stripe
//!   layout planning, the max-min solver, and the real-engine
//!   striping/buffering paths.

use std::fmt::Write as _;

/// The artifacts `repro` knows how to regenerate, with a short
/// description each (kept in one place so `--help` and the docs agree).
pub const ARTIFACTS: &[(&str, &str)] = &[
    ("fig3a", "stripe size vs MemFS I/O bandwidth (real engine)"),
    (
        "fig3b",
        "buffering/prefetching threads vs bandwidth (real engine)",
    ),
    (
        "fig4",
        "MTC Envelope bandwidth vs nodes, 3 file sizes (sim)",
    ),
    (
        "fig5",
        "MTC Envelope throughput vs nodes, 3 file sizes (sim)",
    ),
    ("fig6", "metadata create/open throughput vs nodes (sim)"),
    (
        "tab1",
        "MTC Envelope at 64 nodes / 1MB, IPoIB vs 1GbE (sim)",
    ),
    (
        "tab2",
        "application descriptions from the workflow generators",
    ),
    ("fig7", "vertical scalability on 64 DAS4 nodes (sim)"),
    ("fig8", "horizontal scalability on 8-64 DAS4 nodes (sim)"),
    ("fig9", "Montage 6 aggregate memory consumption (sim)"),
    (
        "tab3",
        "AMFS memory distribution: scheduler node hotspot (sim)",
    ),
    ("fig10", "FUSE mountpoint bottleneck on EC2 (sim)"),
    ("fig11", "MemFS vs AMFS vertical scalability on EC2 (sim)"),
    ("fig12", "Montage 16 vertical scalability, 32 EC2 VMs (sim)"),
    ("fig13", "BLAST vertical scalability, 32 EC2 VMs (sim)"),
    ("fig14", "Montage 12 horizontal scalability on EC2 (sim)"),
    ("fig15", "BLAST horizontal scalability on EC2 (sim)"),
    (
        "fig16",
        "application vs system bandwidth microbenchmark (model)",
    ),
    (
        "montage12",
        "the Montage 12x12 AMFS crash vs MemFS completion (sim)",
    ),
];

/// Render the help text for the repro binary.
pub fn help_text() -> String {
    let mut out = String::from(
        "repro — regenerate the MemFS paper's tables and figures\n\n\
         usage: repro <artifact>... | all\n\nartifacts:\n",
    );
    for (name, desc) in ARTIFACTS {
        let _ = writeln!(out, "  {name:<10} {desc}");
    }
    out.push_str("\nRun with --release: the cluster simulations are CPU-heavy.\n");
    out
}

/// Whether `name` is a known artifact.
pub fn is_artifact(name: &str) -> bool {
    ARTIFACTS.iter().any(|(n, _)| *n == name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_artifacts_listed_in_help() {
        let help = help_text();
        for (name, _) in ARTIFACTS {
            assert!(help.contains(name), "{name} missing from help");
        }
    }

    #[test]
    fn artifact_lookup() {
        assert!(is_artifact("fig7"));
        assert!(is_artifact("tab1"));
        assert!(!is_artifact("fig99"));
    }

    #[test]
    fn every_paper_artifact_is_covered() {
        // Figures 3-16 and Tables 1-3 of the paper.
        for fig in [3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16] {
            let covered = ARTIFACTS
                .iter()
                .any(|(n, _)| n.contains(&format!("fig{fig}")));
            assert!(covered, "figure {fig} not covered");
        }
        for tab in 1..=3 {
            assert!(is_artifact(&format!("tab{tab}")), "table {tab} not covered");
        }
    }
}
