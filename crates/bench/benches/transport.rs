//! Transport microbenchmarks: what connection pooling and request
//! pipelining buy over the naive one-request-per-round-trip client.
//!
//! Four in-process `KvServer`s speak the memcached text protocol over
//! real localhost sockets; a `ServerPool` routes keys across them exactly
//! as a MemFS mount does. Three shapes are compared:
//!
//! * `single_conn_sequential` — one TCP connection per server, one `get`
//!   round trip per key (the pre-pipelining baseline);
//! * `pooled_threads` — four connections per server, keys fetched by four
//!   concurrent threads issuing single `get`s;
//! * `pipelined_multi_get` — one batched `get_many` per owning server
//!   (the prefetch-window shape).
//!
//! The acceptance bar for the batched transport is `pipelined_multi_get`
//! sustaining at least 2x the ops/s of `single_conn_sequential`.

use std::sync::Arc;

use bytes::Bytes;
use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use memfs_core::{DistributorKind, ServerPool};
use memfs_memkv::net::{KvServer, PoolConfig, TcpClient};
use memfs_memkv::{KvClient, Store, StoreConfig};

const N_SERVERS: usize = 4;
const N_KEYS: usize = 64;

/// Spawn `N_SERVERS` TCP servers and mount a `ServerPool` over them with
/// `connections` sockets per server.
fn cluster(connections: usize) -> (Vec<KvServer>, Arc<ServerPool>) {
    let servers: Vec<KvServer> = (0..N_SERVERS)
        .map(|_| {
            KvServer::spawn(Arc::new(Store::new(StoreConfig::default())), "127.0.0.1:0")
                .expect("bind server")
        })
        .collect();
    let clients: Vec<Arc<dyn KvClient>> = servers
        .iter()
        .map(|s| {
            let pool = PoolConfig {
                connections,
                ..PoolConfig::default()
            };
            Arc::new(TcpClient::connect_with(s.addr(), pool).expect("connect")) as Arc<dyn KvClient>
        })
        .collect();
    let pool = Arc::new(ServerPool::new(clients, DistributorKind::default()));
    (servers, pool)
}

fn keyset(value_size: usize, pool: &ServerPool) -> Vec<Bytes> {
    let keys: Vec<Bytes> = (0..N_KEYS)
        .map(|i| Bytes::from(format!("s:/bench/file{i}#0")))
        .collect();
    for k in &keys {
        pool.set(k, Bytes::from(vec![0xC3u8; value_size])).unwrap();
    }
    keys
}

fn bench_multi_get(c: &mut Criterion) {
    let mut group = c.benchmark_group("transport_multi_get");
    for value_size in [1usize << 10, 16 << 10] {
        group.throughput(Throughput::Elements(N_KEYS as u64));

        group.bench_with_input(
            BenchmarkId::new("single_conn_sequential", value_size),
            &value_size,
            |b, &size| {
                let (_servers, pool) = cluster(1);
                let keys = keyset(size, &pool);
                b.iter(|| {
                    for k in &keys {
                        black_box(pool.get(k).unwrap());
                    }
                })
            },
        );

        group.bench_with_input(
            BenchmarkId::new("pooled_threads", value_size),
            &value_size,
            |b, &size| {
                let (_servers, pool) = cluster(4);
                let keys = Arc::new(keyset(size, &pool));
                b.iter(|| {
                    let threads: Vec<_> = (0..4)
                        .map(|t| {
                            let pool = Arc::clone(&pool);
                            let keys = Arc::clone(&keys);
                            std::thread::spawn(move || {
                                for k in keys.iter().skip(t).step_by(4) {
                                    black_box(pool.get(k).unwrap());
                                }
                            })
                        })
                        .collect();
                    for t in threads {
                        t.join().unwrap();
                    }
                })
            },
        );

        group.bench_with_input(
            BenchmarkId::new("pipelined_multi_get", value_size),
            &value_size,
            |b, &size| {
                let (_servers, pool) = cluster(4);
                let keys = keyset(size, &pool);
                b.iter(|| {
                    for r in pool.get_many(&keys) {
                        black_box(r.unwrap());
                    }
                })
            },
        );
    }
    group.finish();
}

/// Stripe-read bandwidth: an 8 MiB file in 128 KiB stripes, read either
/// one round trip per stripe or as per-server batched windows.
///
/// Loopback caveat: localhost has negligible latency, so the round trips
/// that batching eliminates cost almost nothing here, while batching's
/// inherent memory cost remains — a window's worth of stripes is held
/// alive at once instead of one stripe at a time, so the allocator cannot
/// recycle cache-warm pages between responses. Measurements show the gap
/// is exactly reproduced by retaining single-get results for a window
/// before dropping them. On a real network the saved round trips dominate
/// this locality tax; `transport_multi_get` (small values, round-trip
/// bound even on loopback) shows the winning side of the trade.
fn bench_stripe_read(c: &mut Criterion) {
    const STRIPE: usize = 128 << 10;
    const N_STRIPES: usize = 64;

    let mut group = c.benchmark_group("transport_stripe_read");
    group.sample_size(20);
    group.throughput(Throughput::Bytes((STRIPE * N_STRIPES) as u64));

    let stripe_keys = || -> Vec<Bytes> {
        (0..N_STRIPES)
            .map(|i| Bytes::from(format!("s:/bench/big.dat#{i}")))
            .collect()
    };

    group.bench_function("per_stripe_round_trips", |b| {
        let (_servers, pool) = cluster(1);
        let keys = stripe_keys();
        for k in &keys {
            pool.set(k, Bytes::from(vec![0x5Au8; STRIPE])).unwrap();
        }
        b.iter(|| {
            for k in &keys {
                black_box(pool.get(k).unwrap());
            }
        })
    });

    group.bench_function("batched_windows", |b| {
        let (_servers, pool) = cluster(4);
        let keys = stripe_keys();
        for k in &keys {
            pool.set(k, Bytes::from(vec![0x5Au8; STRIPE])).unwrap();
        }
        b.iter(|| {
            // The prefetcher's shape: one get_many per 8-stripe window.
            for window in keys.chunks(8) {
                for r in pool.get_many(window) {
                    black_box(r.unwrap());
                }
            }
        })
    });

    group.finish();
}

criterion_group!(benches, bench_multi_get, bench_stripe_read);
criterion_main!(benches);
