//! Store-engine microbenchmarks: the set/get asymmetry the paper leans on
//! ("Memcached is reported to perform better for get rather than set",
//! §4.1), atomic append (the directory-metadata primitive), and the cost
//! of LRU eviction.

use std::sync::Arc;

use bytes::Bytes;
use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use memfs_memkv::{EvictionPolicy, Store, StoreConfig};

fn bench_set_get(c: &mut Criterion) {
    let mut group = c.benchmark_group("store_ops");
    for size in [1usize << 10, 512 << 10] {
        let payload = Bytes::from(vec![0xABu8; size]);
        group.throughput(Throughput::Bytes(size as u64));
        group.bench_with_input(BenchmarkId::new("set", size), &payload, |b, payload| {
            let store = Store::with_defaults();
            let mut i = 0u64;
            b.iter(|| {
                // Overwrite a rotating window of keys so memory stays flat.
                let key = format!("bench/{}", i % 64);
                i += 1;
                store.set(key.as_bytes(), payload.clone()).unwrap();
            })
        });
        group.bench_with_input(BenchmarkId::new("get", size), &payload, |b, payload| {
            let store = Store::with_defaults();
            store.set(b"bench/key", payload.clone()).unwrap();
            b.iter(|| black_box(store.get(b"bench/key").unwrap()))
        });
    }
    group.finish();
}

fn bench_append(c: &mut Criterion) {
    c.bench_function("store_append_dir_record", |b| {
        let store = Store::with_defaults();
        store.set(b"d:/dir", Bytes::new()).unwrap();
        let mut i = 0u64;
        b.iter(|| {
            let rec = format!("Ffile{i}\n");
            i += 1;
            store.append(b"d:/dir", rec.as_bytes()).unwrap();
            // Reset occasionally so the value doesn't grow unboundedly.
            if i.is_multiple_of(4096) {
                store.set(b"d:/dir", Bytes::new()).unwrap();
            }
        })
    });
}

fn bench_eviction(c: &mut Criterion) {
    c.bench_function("store_set_with_lru_eviction", |b| {
        let store = Arc::new(Store::new(StoreConfig {
            memory_budget: 1 << 20, // 1 MiB: every set evicts
            eviction: EvictionPolicy::Lru,
            ..StoreConfig::default()
        }));
        let payload = Bytes::from(vec![0u8; 64 << 10]);
        let mut i = 0u64;
        b.iter(|| {
            let key = format!("evict/{i}");
            i += 1;
            store.set(key.as_bytes(), payload.clone()).unwrap();
        })
    });
}

fn bench_concurrent_get(c: &mut Criterion) {
    c.bench_function("store_get_8_threads", |b| {
        let store = Arc::new(Store::with_defaults());
        for i in 0..64 {
            store
                .set(format!("k{i}").as_bytes(), Bytes::from(vec![0u8; 4096]))
                .unwrap();
        }
        b.iter(|| {
            let threads: Vec<_> = (0..8)
                .map(|t| {
                    let store = Arc::clone(&store);
                    std::thread::spawn(move || {
                        for i in 0..64 {
                            let key = format!("k{}", (t * 13 + i) % 64);
                            black_box(store.get(key.as_bytes()).unwrap());
                        }
                    })
                })
                .collect();
            for t in threads {
                t.join().unwrap();
            }
        })
    });
}

criterion_group!(
    benches,
    bench_set_get,
    bench_append,
    bench_eviction,
    bench_concurrent_get
);
criterion_main!(benches);
