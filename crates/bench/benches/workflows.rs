//! Workflow-simulation ablations: MemFS vs AMFS on Montage 6 (the
//! replication cost of locality), and the simulator's own throughput at
//! paper scale.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use memfs_cluster::{ClusterSpec, Deployment};
use memfs_mtc::fsmodel::FsModelKind;
use memfs_mtc::montage::montage;
use memfs_mtc::sched::SchedulerKind;
use memfs_mtc::WorkflowSim;

fn bench_montage_sim(c: &mut Criterion) {
    let wf = montage(6, 512);
    let mut group = c.benchmark_group("montage6_sim_16_nodes");
    group.sample_size(10);
    group.bench_function("memfs_uniform", |b| {
        b.iter(|| {
            let sim = WorkflowSim {
                deployment: Deployment::full(ClusterSpec::das4_ipoib(16)),
                fs: FsModelKind::MemFs,
                scheduler: SchedulerKind::Uniform,
            };
            black_box(sim.run(&wf).makespan_secs)
        })
    });
    group.bench_function("amfs_locality", |b| {
        b.iter(|| {
            let sim = WorkflowSim {
                deployment: Deployment::full(ClusterSpec::das4_ipoib(16)).with_single_mount(),
                fs: FsModelKind::Amfs,
                scheduler: SchedulerKind::LocalityAware,
            };
            black_box(sim.run(&wf).makespan_secs)
        })
    });
    group.finish();
}

fn bench_paper_scale(c: &mut Criterion) {
    // The full 64-node, 512-core Montage 6 — the cost of regenerating one
    // point of Figure 7a.
    let wf = montage(6, 2048);
    let mut group = c.benchmark_group("paper_scale");
    group.sample_size(10);
    group.bench_function("montage6_64_nodes_512_cores", |b| {
        b.iter(|| {
            let sim = WorkflowSim {
                deployment: Deployment::full(ClusterSpec::das4_ipoib(64)),
                fs: FsModelKind::MemFs,
                scheduler: SchedulerKind::Uniform,
            };
            black_box(sim.run(&wf).makespan_secs)
        })
    });
    group.finish();
}

criterion_group!(benches, bench_montage_sim, bench_paper_scale);
criterion_main!(benches);
