//! End-to-end striped throughput with and without concurrent per-server
//! fan-out (paper §3.2.2: symmetrical striping should use the bisection
//! bandwidth of *all* N servers at once).
//!
//! A MemFS mount writes and reads an 8 MiB file over 1/2/4/8 in-process
//! servers whose clients are latency/bandwidth-shaped like gigabit
//! Ethernet (200 µs RTT, 117 MB/s per server — unshaped RAM copies are
//! too fast for the network overlap to matter). Each server count is
//! measured twice:
//!
//! * `sequential` — `io_parallelism = 1`, the pre-fan-out dispatcher that
//!   visits per-server batches one at a time;
//! * `parallel` — `io_parallelism = 0` (auto: one dispatcher worker per
//!   server), every per-server batch on the wire simultaneously.
//!
//! The acceptance bar for this PR is parallel read ≥ 2.5x sequential at
//! 4 servers; `scripts/bench_record.sh` records the same comparison to
//! `BENCH_pr2.json` via the `fanout_record` binary.

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use memfs_core::{MemFs, MemFsConfig};
use memfs_memkv::client::Shaping;
use memfs_memkv::{KvClient, LocalClient, Store, StoreConfig, ThrottledClient};

const FILE_BYTES: usize = 8 << 20;

fn shaped_servers(n: usize) -> Vec<Arc<dyn KvClient>> {
    (0..n)
        .map(|_| {
            let store = Arc::new(Store::new(StoreConfig::default()));
            Arc::new(ThrottledClient::new(
                LocalClient::new(store),
                Shaping::gbe_like(),
            )) as Arc<dyn KvClient>
        })
        .collect()
}

fn config(io_parallelism: usize) -> MemFsConfig {
    MemFsConfig::default().with_io_parallelism(io_parallelism)
}

fn write_file(fs: &MemFs, path: &str) {
    let payload = vec![0xA5u8; 1 << 20];
    let mut w = fs.create(path).expect("create");
    let mut left = FILE_BYTES;
    while left > 0 {
        let n = left.min(payload.len());
        w.write_all(&payload[..n]).expect("write");
        left -= n;
    }
    w.close().expect("close");
}

fn read_file(fs: &MemFs, path: &str) {
    // Window-sized reads (8 stripes) keep every batch wide enough to span
    // all servers; see `fanout_record` for the same rationale.
    let r = fs.open(path).expect("open");
    let mut buf = vec![0u8; 4 << 20];
    let mut off = 0u64;
    while off < FILE_BYTES as u64 {
        let n = r.read_at(off, &mut buf).expect("read");
        assert!(n > 0);
        off += n as u64;
    }
}

fn bench_fanout(c: &mut Criterion) {
    for (mode, io_parallelism) in [("sequential", 1usize), ("parallel", 0usize)] {
        let mut group = c.benchmark_group(format!("fanout_write_{mode}"));
        group.sample_size(10);
        group.throughput(Throughput::Bytes(FILE_BYTES as u64));
        for n_servers in [1usize, 2, 4, 8] {
            group.bench_with_input(
                BenchmarkId::from_parameter(n_servers),
                &n_servers,
                |b, &n| {
                    let mut file = 0usize;
                    b.iter(|| {
                        // Write-once files: fresh path per iteration, fresh
                        // mount so the measurement includes the drain.
                        let fs = MemFs::new(shaped_servers(n), config(io_parallelism))
                            .expect("valid config");
                        file += 1;
                        write_file(&fs, &format!("/w{file}.dat"));
                    })
                },
            );
        }
        group.finish();

        let mut group = c.benchmark_group(format!("fanout_read_{mode}"));
        group.sample_size(10);
        group.throughput(Throughput::Bytes(FILE_BYTES as u64));
        for n_servers in [1usize, 2, 4, 8] {
            group.bench_with_input(
                BenchmarkId::from_parameter(n_servers),
                &n_servers,
                |b, &n| {
                    let fs = MemFs::new(shaped_servers(n), config(io_parallelism))
                        .expect("valid config");
                    write_file(&fs, "/r.dat");
                    b.iter(|| {
                        // Each open gets a cold prefetch cache, so every
                        // iteration re-fetches all stripes from the servers.
                        read_file(&fs, "/r.dat");
                    })
                },
            );
        }
        group.finish();
    }
}

criterion_group!(benches, bench_fanout);
criterion_main!(benches);
