//! Simulator-kernel benchmarks: the max-min solver (flat vs grouped — the
//! optimization that makes 1024-core workflow simulation tractable) and
//! the flow-engine event loop.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use memfs_netsim::maxmin::{maxmin_rates, maxmin_rates_grouped};
use memfs_netsim::{Fabric, FlowNet, NodeId};
use memfs_simcore::{SimDuration, SimTime};

/// Constraint capacities, per-flow routes, and grouped routes.
type Instance = (Vec<f64>, Vec<Vec<usize>>, Vec<(Vec<usize>, u64)>);

/// A symmetric striped workload: every node has one read and one write
/// flow group; the flat instance expands each group to `per_node` flows.
fn instance(nodes: usize, per_node: u64) -> Instance {
    let fabric = Fabric::new(nodes, 1e9, 1e10).with_aggregate_capacity();
    let caps = fabric.capacities();
    let mut flat = Vec::new();
    let mut grouped = Vec::new();
    for n in 0..nodes {
        let read = fabric.route_striped_read(NodeId(n));
        let write = fabric.route_striped_write(NodeId(n));
        for _ in 0..per_node {
            flat.push(read.clone());
            flat.push(write.clone());
        }
        grouped.push((read, per_node));
        grouped.push((write, per_node));
    }
    (caps, flat, grouped)
}

fn bench_maxmin(c: &mut Criterion) {
    let mut group = c.benchmark_group("maxmin_solver");
    for (nodes, per_node) in [(16usize, 8u64), (64, 8), (64, 16)] {
        let (caps, flat, grouped) = instance(nodes, per_node);
        group.bench_with_input(
            BenchmarkId::new("flat", format!("{nodes}x{per_node}")),
            &(),
            |b, _| b.iter(|| black_box(maxmin_rates(&caps, &flat))),
        );
        group.bench_with_input(
            BenchmarkId::new("grouped", format!("{nodes}x{per_node}")),
            &(),
            |b, _| b.iter(|| black_box(maxmin_rates_grouped(&caps, &grouped))),
        );
    }
    group.finish();
}

fn bench_flownet(c: &mut Criterion) {
    c.bench_function("flownet_512_flow_churn", |b| {
        b.iter(|| {
            let fabric = Fabric::new(64, 1e9, 1e10).with_aggregate_capacity();
            let mut net = FlowNet::new(fabric, SimDuration::from_micros(30));
            for i in 0..512usize {
                net.start_striped_read(SimTime::ZERO, NodeId(i % 64), 4 << 20);
            }
            black_box(net.run_to_idle().len())
        })
    });
}

criterion_group!(benches, bench_maxmin, bench_flownet);
criterion_main!(benches);
