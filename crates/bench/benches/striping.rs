//! Striping ablation (DESIGN.md §6 / paper Figure 3a): stripe-layout
//! planning cost and end-to-end write/read bandwidth of the real engine
//! as a function of stripe size.

use std::sync::Arc;

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use memfs_core::layout::StripeLayout;
use memfs_core::{MemFs, MemFsConfig};
use memfs_memkv::{KvClient, LocalClient, Store, StoreConfig};

fn bench_layout_planning(c: &mut Criterion) {
    let layout = StripeLayout::new(512 << 10);
    c.bench_function("layout_spans_small_read", |b| {
        b.iter(|| black_box(layout.spans(1 << 30, 123_456_789, 4096)))
    });
    c.bench_function("layout_spans_large_read", |b| {
        b.iter(|| black_box(layout.spans(1 << 30, 0, 64 << 20)))
    });
}

fn servers(n: usize) -> Vec<Arc<dyn KvClient>> {
    (0..n)
        .map(|_| {
            Arc::new(LocalClient::new(Arc::new(Store::new(
                StoreConfig::default(),
            )))) as Arc<dyn KvClient>
        })
        .collect()
}

fn bench_write_read(c: &mut Criterion) {
    let file_bytes = 16 << 20;
    let mut group = c.benchmark_group("real_engine_stripe_size");
    group.sample_size(10);
    group.throughput(Throughput::Bytes(file_bytes as u64));
    for stripe_kib in [128usize, 512, 1024] {
        group.bench_with_input(
            BenchmarkId::new("write", stripe_kib),
            &stripe_kib,
            |b, &kib| {
                let payload = vec![0x5Au8; 1 << 20];
                let mut run = 0u32;
                b.iter(|| {
                    let config = MemFsConfig {
                        stripe_size: kib << 10,
                        ..MemFsConfig::default()
                    };
                    let fs = MemFs::new(servers(4), config).unwrap();
                    let path = format!("/bench{run}");
                    run += 1;
                    let mut w = fs.create(&path).unwrap();
                    for _ in 0..(file_bytes >> 20) {
                        w.write_all(&payload).unwrap();
                    }
                    w.close().unwrap();
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("read", stripe_kib),
            &stripe_kib,
            |b, &kib| {
                let config = MemFsConfig {
                    stripe_size: kib << 10,
                    ..MemFsConfig::default()
                };
                let fs = MemFs::new(servers(4), config).unwrap();
                let payload = vec![0x5Au8; file_bytes];
                fs.write_file("/bench", &payload).unwrap();
                let mut buf = vec![0u8; 1 << 20];
                b.iter(|| {
                    let r = fs.open("/bench").unwrap();
                    let mut off = 0u64;
                    while off < file_bytes as u64 {
                        off += r.read_at(off, &mut buf).unwrap() as u64;
                    }
                    black_box(off)
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_layout_planning, bench_write_read);
criterion_main!(benches);
