//! Ablation: modulo vs ketama key distribution (DESIGN.md §6).
//!
//! The paper chooses the modulo scheme for its balance and simplicity and
//! names consistent hashing for elastic membership; this bench quantifies
//! the lookup-cost and balance trade-off between the two.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use memfs_hashring::balance::BalanceReport;
use memfs_hashring::schema::KeySchema;
use memfs_hashring::{Distributor, HashScheme, KetamaRing, ModuloRing};

fn keys(n: usize) -> Vec<Vec<u8>> {
    (0..n)
        .map(|i| KeySchema::stripe_key(&format!("/wf/file{:05}.dat", i / 16), (i % 16) as u64))
        .collect()
}

fn bench_lookup(c: &mut Criterion) {
    let keys = keys(1024);
    let mut group = c.benchmark_group("distributor_lookup");
    for n_servers in [8usize, 64] {
        let modulo = ModuloRing::new(n_servers, HashScheme::Fnv1a);
        group.bench_function(format!("modulo_{n_servers}"), |b| {
            b.iter(|| {
                let mut acc = 0usize;
                for k in &keys {
                    acc += modulo.server_for(black_box(k)).0;
                }
                acc
            })
        });
        let jenkins = ModuloRing::new(n_servers, HashScheme::Jenkins);
        group.bench_function(format!("jenkins_{n_servers}"), |b| {
            b.iter(|| {
                let mut acc = 0usize;
                for k in &keys {
                    acc += jenkins.server_for(black_box(k)).0;
                }
                acc
            })
        });
        let ketama = KetamaRing::with_n_servers(n_servers, 160);
        group.bench_function(format!("ketama_{n_servers}"), |b| {
            b.iter(|| {
                let mut acc = 0usize;
                for k in &keys {
                    acc += ketama.server_for(black_box(k)).0;
                }
                acc
            })
        });
    }
    group.finish();
}

fn bench_balance(c: &mut Criterion) {
    let keys = keys(16_384);
    c.bench_function("balance_measure_64_servers", |b| {
        let d = ModuloRing::new(64, HashScheme::Fnv1a);
        b.iter(|| {
            let report =
                BalanceReport::measure(&d, keys.iter().map(|k| (k.as_slice(), 512 * 1024u64)));
            black_box(report.imbalance())
        })
    });
}

fn bench_ring_build(c: &mut Criterion) {
    c.bench_function("ketama_ring_build_64x160", |b| {
        b.iter(|| black_box(KetamaRing::with_n_servers(64, 160)))
    });
}

criterion_group!(benches, bench_lookup, bench_balance, bench_ring_build);
criterion_main!(benches);
