//! Replication-cost ablation (paper §3.2.5): "assuming the replication
//! factor is n, then the total storage capacity of MemFS would be
//! decreased n times and n times more data will flow through the network
//! when writing files." This bench measures the write-path cost of
//! r = 1..3 through the real engine.

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use memfs_core::{MemFs, MemFsConfig};
use memfs_memkv::{KvClient, LocalClient, Store, StoreConfig};

fn servers(n: usize) -> Vec<Arc<dyn KvClient>> {
    (0..n)
        .map(|_| {
            Arc::new(LocalClient::new(Arc::new(Store::new(
                StoreConfig::default(),
            )))) as Arc<dyn KvClient>
        })
        .collect()
}

fn bench_replicated_write(c: &mut Criterion) {
    let file_bytes = 8 << 20;
    let payload = vec![0x3Cu8; 1 << 20];
    let mut group = c.benchmark_group("replicated_write");
    group.sample_size(10);
    group.throughput(Throughput::Bytes(file_bytes as u64));
    for r in [1usize, 2, 3] {
        group.bench_with_input(BenchmarkId::from_parameter(r), &r, |b, &r| {
            let mut run = 0u32;
            b.iter(|| {
                let fs =
                    MemFs::new(servers(4), MemFsConfig::default().with_replication(r)).unwrap();
                let path = format!("/rep{run}");
                run += 1;
                let mut w = fs.create(&path).unwrap();
                for _ in 0..(file_bytes >> 20) {
                    w.write_all(&payload).unwrap();
                }
                w.close().unwrap();
            })
        });
    }
    group.finish();
}

fn bench_replicated_read(c: &mut Criterion) {
    let file_bytes: usize = 8 << 20;
    let mut group = c.benchmark_group("replicated_read");
    group.sample_size(10);
    group.throughput(Throughput::Bytes(file_bytes as u64));
    for r in [1usize, 2] {
        group.bench_with_input(BenchmarkId::from_parameter(r), &r, |b, &r| {
            let fs = MemFs::new(servers(4), MemFsConfig::default().with_replication(r)).unwrap();
            fs.write_file("/f", &vec![0u8; file_bytes]).unwrap();
            let mut buf = vec![0u8; 1 << 20];
            b.iter(|| {
                let reader = fs.open("/f").unwrap();
                let mut off = 0u64;
                while off < file_bytes as u64 {
                    off += reader.read_at(off, &mut buf).unwrap() as u64;
                }
                off
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_replicated_write, bench_replicated_read);
criterion_main!(benches);
