//! TCP transport failure paths, driven through the deterministic
//! shaped-cluster harness ([`memfs_memkv::testutil`]): server shutdown
//! mid-stream, oversized value rejection, error recovery inside pipelined
//! batches, reconnection after dropped connections, silent stalls that
//! must surface as timeouts, and mid-frame cuts that may only replay
//! idempotent traffic.

use std::sync::Arc;
use std::time::{Duration, Instant};

use bytes::Bytes;
use memfs_memkv::net::{KvServer, PoolConfig, TcpClient};
use memfs_memkv::testutil::{Shape, ShapedCluster};
use memfs_memkv::{EvictionPolicy, KvClient, KvError, Store, StoreConfig};

fn config(connections: usize) -> PoolConfig {
    PoolConfig {
        connections,
        max_batch_keys: 64,
        ..PoolConfig::default()
    }
}

/// A config with a short timeout for tests that drive requests into a
/// black hole on purpose.
fn quick_timeout_config(connections: usize) -> PoolConfig {
    PoolConfig {
        connections,
        max_batch_keys: 64,
        timeout: Duration::from_millis(250),
    }
}

fn spawn_tiny_server(max_value_size: usize) -> KvServer {
    KvServer::spawn(
        Arc::new(Store::new(StoreConfig {
            memory_budget: 64 << 20,
            max_value_size,
            eviction: EvictionPolicy::Error,
            shards: 4,
        })),
        "127.0.0.1:0",
    )
    .unwrap()
}

#[test]
fn requests_after_server_shutdown_fail_cleanly() {
    let mut server = KvServer::spawn(Arc::new(Store::with_defaults()), "127.0.0.1:0").unwrap();
    let client = TcpClient::connect_with(server.addr(), config(2)).unwrap();
    client.set(b"k", Bytes::from_static(b"v")).unwrap();
    server.shutdown();
    drop(server);
    // Both the in-flight connection death and the failed reconnect must
    // surface as I/O errors, never hangs or panics.
    for _ in 0..3 {
        assert!(matches!(client.get(b"k"), Err(KvError::Io(_))));
    }
    assert!(matches!(
        client.get_many(&[Bytes::from_static(b"k"), Bytes::from_static(b"x")]),
        Err(KvError::Io(_))
    ));
}

#[test]
fn killed_server_behind_live_endpoint_fails_cleanly() {
    let cluster = ShapedCluster::spawn(1, Shape::clean());
    let client = cluster.client(0, quick_timeout_config(1));
    client.set(b"k", Bytes::from_static(b"v")).unwrap();
    cluster.proxy(0).kill();
    // The endpoint still accepts-and-closes (dead process behind a VIP):
    // requests fail with transport errors, and once the server "restarts"
    // the same client recovers without intervention.
    let err = client.get(b"k").unwrap_err();
    assert!(err.is_transport(), "got {err:?}");
    cluster.proxy(0).revive();
    assert_eq!(client.get(b"k").unwrap().as_ref(), b"v");
}

#[test]
fn oversized_value_rejected_connection_survives() {
    let server = spawn_tiny_server(1024);
    let client = TcpClient::connect(server.addr()).unwrap();
    let err = client
        .set(b"big", Bytes::from(vec![0u8; 4096]))
        .unwrap_err();
    assert!(matches!(err, KvError::Protocol(_)), "got {err:?}");
    // The server replied SERVER_ERROR without dropping the connection:
    // follow-up traffic on the same client must work.
    client.set(b"small", Bytes::from_static(b"ok")).unwrap();
    assert_eq!(client.get(b"small").unwrap().as_ref(), b"ok");
    assert_eq!(server.store().item_count(), 1);
}

#[test]
fn pipelined_batch_recovers_past_a_failed_item() {
    let server = spawn_tiny_server(1024);
    let client = TcpClient::connect_with(server.addr(), config(1)).unwrap();
    let items = vec![
        (Bytes::from_static(b"a"), Bytes::from(vec![1u8; 100])),
        (Bytes::from_static(b"big"), Bytes::from(vec![2u8; 4096])), // over the limit
        (Bytes::from_static(b"c"), Bytes::from(vec![3u8; 100])),
    ];
    let results = client.set_many(&items).unwrap();
    assert!(results[0].is_ok());
    assert!(matches!(results[1], Err(KvError::Protocol(_))));
    assert!(
        results[2].is_ok(),
        "items after the failure must still land"
    );
    assert_eq!(client.get(b"a").unwrap().len(), 100);
    assert!(matches!(client.get(b"big"), Err(KvError::NotFound)));
    assert_eq!(client.get(b"c").unwrap().len(), 100);
}

#[test]
fn client_reconnects_after_connection_drop() {
    let cluster = ShapedCluster::spawn(1, Shape::clean());
    let client = cluster.client(0, config(1));
    client.set(b"k", Bytes::from_static(b"v1")).unwrap();

    cluster.proxy(0).drop_connections();
    // get is idempotent: the client must notice the dead socket, reopen
    // through the still-listening endpoint and replay transparently.
    assert_eq!(client.get(b"k").unwrap().as_ref(), b"v1");

    cluster.proxy(0).drop_connections();
    // Batches replay too, as long as every frame is idempotent.
    let out = client
        .get_many(&[Bytes::from_static(b"k"), Bytes::from_static(b"nope")])
        .unwrap();
    assert_eq!(out[0].as_ref().unwrap().as_ref(), b"v1");
    assert!(matches!(out[1], Err(KvError::NotFound)));

    cluster.proxy(0).drop_connections();
    client.set(b"k", Bytes::from_static(b"v2")).unwrap();
    assert_eq!(client.get(b"k").unwrap().as_ref(), b"v2");
}

#[test]
fn non_idempotent_requests_are_not_replayed() {
    let cluster = ShapedCluster::spawn(1, Shape::clean());
    let client = Arc::new(cluster.client(0, config(1)));
    client.set(b"log", Bytes::from_static(b"seed")).unwrap();

    // Stall the proxy so the append is provably in flight (written by the
    // client, absorbed by the proxy, never delivered), then sever the
    // connection under it. A blind replay would double-apply; the client
    // must surface the I/O error instead.
    cluster.proxy(0).stall();
    let pending = std::thread::spawn({
        let client = Arc::clone(&client);
        move || client.append(b"log", b"+x")
    });
    std::thread::sleep(Duration::from_millis(50));
    cluster.proxy(0).drop_connections();
    let err = pending.join().unwrap().unwrap_err();
    assert!(matches!(err, KvError::Io(_)), "got {err:?}");
    cluster.proxy(0).unstall();

    // The proxy dropped the frame, so the append never applied — and the
    // client reconnects without external intervention.
    assert_eq!(client.get(b"log").unwrap().as_ref(), b"seed");
    client.append(b"log", b"+y").unwrap();
    assert_eq!(client.get(b"log").unwrap().as_ref(), b"seed+y");
}

#[test]
fn stalled_server_surfaces_timeout_not_a_hang() {
    let cluster = ShapedCluster::spawn(1, Shape::clean());
    let client = cluster.client(0, quick_timeout_config(2));
    client.set(b"k", Bytes::from_static(b"v")).unwrap();

    cluster.proxy(0).stall();
    let start = Instant::now();
    let err = client.get(b"k").unwrap_err();
    let elapsed = start.elapsed();
    assert!(
        matches!(err, KvError::Timeout { .. }),
        "stalled request must time out, got {err:?}"
    );
    assert!(
        elapsed >= Duration::from_millis(200) && elapsed < Duration::from_secs(5),
        "timeout must fire near the deadline, took {elapsed:?}"
    );
    // Everything queued behind the stalled frame fails fast (the
    // connection is abandoned), rather than serializing timeouts.
    let start = Instant::now();
    for _ in 0..3 {
        assert!(client.get(b"k").unwrap_err().is_transport());
    }
    assert!(
        start.elapsed() < Duration::from_secs(3),
        "follow-up failures must not each wait a fresh full timeout"
    );

    // Once the stall clears, the client reconnects and recovers.
    cluster.proxy(0).unstall();
    let recovered = (0..50).any(|_| {
        std::thread::sleep(Duration::from_millis(20));
        matches!(client.get(b"k"), Ok(v) if v.as_ref() == b"v")
    });
    assert!(recovered, "client must recover after the stall clears");
}

#[test]
fn mid_frame_cut_replays_idempotent_batches_only() {
    let cluster = ShapedCluster::spawn(1, Shape::clean());
    let client = cluster.client(0, config(1));
    client.set(b"seed", Bytes::from_static(b"s")).unwrap();

    // Cut the client→server stream in the middle of the next batch: an
    // idempotent set_many must be replayed transparently on a fresh
    // connection and still land in full.
    cluster.proxy(0).cut_client_stream_after(64);
    let items: Vec<(Bytes, Bytes)> = (0..8)
        .map(|i| {
            (
                Bytes::from(format!("cut{i}")),
                Bytes::from(vec![b'x'; 2048]),
            )
        })
        .collect();
    let results = client.set_many(&items).unwrap();
    assert!(results.iter().all(|r| r.is_ok()), "{results:?}");
    for (k, _) in &items {
        assert_eq!(client.get(k).unwrap().len(), 2048);
    }

    // The same cut under a non-idempotent frame must surface the error —
    // an append that may or may not have applied cannot be replayed.
    cluster.proxy(0).cut_client_stream_after(16);
    let err = client.append(b"seed", &vec![b'y'; 4096][..]).unwrap_err();
    assert!(matches!(err, KvError::Io(_)), "got {err:?}");
    // And the pool reconnects: next calls work.
    assert_eq!(client.get(b"seed").unwrap().as_ref(), b"s");
}

#[test]
fn connection_churn_under_concurrent_load_is_survivable() {
    let cluster = ShapedCluster::spawn(1, Shape::clean());
    let client = Arc::new(cluster.client(
        0,
        PoolConfig {
            connections: 4,
            max_batch_keys: 32,
            ..PoolConfig::default()
        },
    ));
    client
        .set(b"stable", Bytes::from_static(b"present"))
        .unwrap();

    let workers: Vec<_> = (0..4)
        .map(|t| {
            let client = Arc::clone(&client);
            std::thread::spawn(move || {
                let mut io_errors = 0usize;
                for i in 0..100 {
                    let key = format!("w{t}k{i}");
                    // Sets are idempotent: either they land (possibly via
                    // replay) or the retried connection died too.
                    match client.set(key.as_bytes(), Bytes::from_static(b"x")) {
                        Ok(()) => {}
                        Err(e) if e.is_transport() => io_errors += 1,
                        Err(e) => panic!("unexpected error under churn: {e:?}"),
                    }
                }
                io_errors
            })
        })
        .collect();
    for _ in 0..10 {
        std::thread::sleep(std::time::Duration::from_millis(5));
        cluster.proxy(0).drop_connections();
    }
    for w in workers {
        let _ = w.join().unwrap();
    }
    // After the churn stops, the client must be fully functional again.
    assert_eq!(client.get(b"stable").unwrap().as_ref(), b"present");
    client.set(b"after", Bytes::from_static(b"done")).unwrap();
    assert_eq!(client.get(b"after").unwrap().as_ref(), b"done");
}
