//! TCP transport failure paths: server shutdown mid-stream, oversized
//! value rejection, error recovery inside pipelined batches, and client
//! reconnection after a dropped connection.

use std::io::{Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;

use bytes::Bytes;
use memfs_memkv::net::{KvServer, PoolConfig, TcpClient};
use memfs_memkv::{EvictionPolicy, KvClient, KvError, Store, StoreConfig};

fn spawn_server() -> KvServer {
    KvServer::spawn(Arc::new(Store::with_defaults()), "127.0.0.1:0").unwrap()
}

fn spawn_tiny_server(max_value_size: usize) -> KvServer {
    KvServer::spawn(
        Arc::new(Store::new(StoreConfig {
            memory_budget: 64 << 20,
            max_value_size,
            eviction: EvictionPolicy::Error,
            shards: 4,
        })),
        "127.0.0.1:0",
    )
    .unwrap()
}

/// A TCP forwarder whose live connections can be severed on demand while
/// its listener stays up — the shape of a storage server whose established
/// connections die (process restart behind a VIP, link flap) without the
/// endpoint disappearing.
struct FlakyProxy {
    addr: SocketAddr,
    live: Arc<Mutex<Vec<TcpStream>>>,
    stop: Arc<AtomicBool>,
    accept_thread: Option<JoinHandle<()>>,
}

impl FlakyProxy {
    fn spawn(upstream: SocketAddr) -> FlakyProxy {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let live: Arc<Mutex<Vec<TcpStream>>> = Arc::new(Mutex::new(Vec::new()));
        let stop = Arc::new(AtomicBool::new(false));
        let accept_live = Arc::clone(&live);
        let accept_stop = Arc::clone(&stop);
        let accept_thread = std::thread::spawn(move || {
            for inbound in listener.incoming() {
                if accept_stop.load(Ordering::SeqCst) {
                    return;
                }
                let Ok(inbound) = inbound else { continue };
                let Ok(outbound) = TcpStream::connect(upstream) else {
                    continue;
                };
                inbound.set_nodelay(true).unwrap();
                outbound.set_nodelay(true).unwrap();
                {
                    let mut conns = accept_live.lock().unwrap();
                    conns.push(inbound.try_clone().unwrap());
                    conns.push(outbound.try_clone().unwrap());
                }
                Self::pump(inbound.try_clone().unwrap(), outbound.try_clone().unwrap());
                Self::pump(outbound, inbound);
            }
        });
        FlakyProxy {
            addr,
            live,
            stop,
            accept_thread: Some(accept_thread),
        }
    }

    fn pump(mut from: TcpStream, mut to: TcpStream) {
        std::thread::spawn(move || {
            let mut buf = [0u8; 8192];
            loop {
                match from.read(&mut buf) {
                    Ok(0) | Err(_) => break,
                    Ok(n) => {
                        if to.write_all(&buf[..n]).is_err() {
                            break;
                        }
                    }
                }
            }
            let _ = to.shutdown(Shutdown::Both);
            let _ = from.shutdown(Shutdown::Both);
        });
    }

    /// Sever every live connection; the listener keeps accepting.
    fn drop_connections(&self) {
        let mut conns = self.live.lock().unwrap();
        for conn in conns.drain(..) {
            let _ = conn.shutdown(Shutdown::Both);
        }
    }
}

impl Drop for FlakyProxy {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        let _ = TcpStream::connect(self.addr); // unblock accept
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
    }
}

#[test]
fn requests_after_server_shutdown_fail_cleanly() {
    let mut server = spawn_server();
    let client = TcpClient::connect_with(
        server.addr(),
        PoolConfig {
            connections: 2,
            max_batch_keys: 64,
        },
    )
    .unwrap();
    client.set(b"k", Bytes::from_static(b"v")).unwrap();
    server.shutdown();
    drop(server);
    // Both the in-flight connection death and the failed reconnect must
    // surface as I/O errors, never hangs or panics.
    for _ in 0..3 {
        assert!(matches!(client.get(b"k"), Err(KvError::Io(_))));
    }
    assert!(matches!(
        client.get_many(&[Bytes::from_static(b"k"), Bytes::from_static(b"x")]),
        Err(KvError::Io(_))
    ));
}

#[test]
fn oversized_value_rejected_connection_survives() {
    let server = spawn_tiny_server(1024);
    let client = TcpClient::connect(server.addr()).unwrap();
    let err = client
        .set(b"big", Bytes::from(vec![0u8; 4096]))
        .unwrap_err();
    assert!(matches!(err, KvError::Protocol(_)), "got {err:?}");
    // The server replied SERVER_ERROR without dropping the connection:
    // follow-up traffic on the same client must work.
    client.set(b"small", Bytes::from_static(b"ok")).unwrap();
    assert_eq!(client.get(b"small").unwrap().as_ref(), b"ok");
    assert_eq!(server.store().item_count(), 1);
}

#[test]
fn pipelined_batch_recovers_past_a_failed_item() {
    let server = spawn_tiny_server(1024);
    let client = TcpClient::connect_with(
        server.addr(),
        PoolConfig {
            connections: 1,
            max_batch_keys: 64,
        },
    )
    .unwrap();
    let items = vec![
        (Bytes::from_static(b"a"), Bytes::from(vec![1u8; 100])),
        (Bytes::from_static(b"big"), Bytes::from(vec![2u8; 4096])), // over the limit
        (Bytes::from_static(b"c"), Bytes::from(vec![3u8; 100])),
    ];
    let results = client.set_many(&items).unwrap();
    assert!(results[0].is_ok());
    assert!(matches!(results[1], Err(KvError::Protocol(_))));
    assert!(
        results[2].is_ok(),
        "items after the failure must still land"
    );
    assert_eq!(client.get(b"a").unwrap().len(), 100);
    assert!(matches!(client.get(b"big"), Err(KvError::NotFound)));
    assert_eq!(client.get(b"c").unwrap().len(), 100);
}

#[test]
fn client_reconnects_after_connection_drop() {
    let server = spawn_server();
    let proxy = FlakyProxy::spawn(server.addr());
    let client = TcpClient::connect_with(
        proxy.addr,
        PoolConfig {
            connections: 1,
            max_batch_keys: 64,
        },
    )
    .unwrap();
    client.set(b"k", Bytes::from_static(b"v1")).unwrap();

    proxy.drop_connections();
    // get is idempotent: the client must notice the dead socket, reopen
    // through the still-listening endpoint and replay transparently.
    assert_eq!(client.get(b"k").unwrap().as_ref(), b"v1");

    proxy.drop_connections();
    // Batches replay too, as long as every frame is idempotent.
    let out = client
        .get_many(&[Bytes::from_static(b"k"), Bytes::from_static(b"nope")])
        .unwrap();
    assert_eq!(out[0].as_ref().unwrap().as_ref(), b"v1");
    assert!(matches!(out[1], Err(KvError::NotFound)));

    proxy.drop_connections();
    client.set(b"k", Bytes::from_static(b"v2")).unwrap();
    assert_eq!(client.get(b"k").unwrap().as_ref(), b"v2");
}

#[test]
fn non_idempotent_requests_are_not_replayed() {
    let server = spawn_server();
    let proxy = FlakyProxy::spawn(server.addr());
    let client = TcpClient::connect_with(
        proxy.addr,
        PoolConfig {
            connections: 1,
            max_batch_keys: 64,
        },
    )
    .unwrap();
    client.set(b"log", Bytes::from_static(b"seed")).unwrap();

    proxy.drop_connections();
    // append could double-apply if blindly replayed; the client must
    // surface the I/O error instead of retrying.
    let err = client.append(b"log", b"+x").unwrap_err();
    assert!(matches!(err, KvError::Io(_)), "got {err:?}");
    // The pool slot was reopened during error handling, so the very next
    // call succeeds without external intervention.
    assert_eq!(client.get(b"log").unwrap().as_ref(), b"seed");
    client.append(b"log", b"+y").unwrap();
    assert_eq!(client.get(b"log").unwrap().as_ref(), b"seed+y");
}

#[test]
fn connection_churn_under_concurrent_load_is_survivable() {
    let server = spawn_server();
    let proxy = FlakyProxy::spawn(server.addr());
    let addr = proxy.addr;
    let client = Arc::new(
        TcpClient::connect_with(
            addr,
            PoolConfig {
                connections: 4,
                max_batch_keys: 32,
            },
        )
        .unwrap(),
    );
    client
        .set(b"stable", Bytes::from_static(b"present"))
        .unwrap();

    let workers: Vec<_> = (0..4)
        .map(|t| {
            let client = Arc::clone(&client);
            std::thread::spawn(move || {
                let mut io_errors = 0usize;
                for i in 0..100 {
                    let key = format!("w{t}k{i}");
                    // Sets are idempotent: either they land (possibly via
                    // replay) or the retried connection died too.
                    match client.set(key.as_bytes(), Bytes::from_static(b"x")) {
                        Ok(()) => {}
                        Err(KvError::Io(_)) => io_errors += 1,
                        Err(e) => panic!("unexpected error under churn: {e:?}"),
                    }
                }
                io_errors
            })
        })
        .collect();
    for _ in 0..10 {
        std::thread::sleep(std::time::Duration::from_millis(5));
        proxy.drop_connections();
    }
    for w in workers {
        let _ = w.join().unwrap();
    }
    // After the churn stops, the client must be fully functional again.
    assert_eq!(client.get(b"stable").unwrap().as_ref(), b"present");
    client.set(b"after", Bytes::from_static(b"done")).unwrap();
    assert_eq!(client.get(b"after").unwrap().as_ref(), b"done");
}
