//! Property-based tests of the memcached text protocol codec: round trips
//! for arbitrary keys/values (including binary payloads with embedded
//! CRLF), incremental parsing of split buffers, and robustness against
//! arbitrary garbage.

use bytes::Bytes;
use memfs_memkv::proto::{
    encode_request, encode_response, parse_request, Parsed, Request, Response,
};
use proptest::prelude::*;

/// Keys legal at the store layer: 1-250 bytes, no space/control.
fn key_strategy() -> impl Strategy<Value = Vec<u8>> {
    proptest::collection::vec(0x21u8..0x7f, 1..64)
}

fn value_strategy() -> impl Strategy<Value = Vec<u8>> {
    proptest::collection::vec(any::<u8>(), 0..2048)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn storage_requests_round_trip(key in key_strategy(), value in value_strategy(), which in 0u8..4) {
        let key = Bytes::from(key);
        let value = Bytes::from(value);
        let req = match which {
            0 => Request::Set { key, value },
            1 => Request::Add { key, value },
            2 => Request::Append { key, value },
            _ => Request::Cas { key, value, token: 42 },
        };
        let wire = encode_request(&req);
        match parse_request(&wire).unwrap() {
            Parsed::Done(parsed, n) => {
                prop_assert_eq!(parsed, req);
                prop_assert_eq!(n, wire.len());
            }
            Parsed::NeedMore => prop_assert!(false, "complete request not parsed"),
        }
    }

    #[test]
    fn truncated_requests_never_panic_or_misparse(
        key in key_strategy(),
        value in value_strategy(),
        cut_frac in 0.0f64..1.0,
    ) {
        let req = Request::Set { key: Bytes::from(key), value: Bytes::from(value) };
        let wire = encode_request(&req);
        let cut = ((wire.len() as f64) * cut_frac) as usize;
        // A strict prefix must parse to NeedMore or a clean error — never
        // to a Done of the *wrong* request.
        match parse_request(&wire[..cut]) {
            Ok(Parsed::NeedMore) | Err(_) => {}
            Ok(Parsed::Done(parsed, _)) => prop_assert_eq!(parsed, req),
        }
    }

    #[test]
    fn pipelined_requests_parse_in_order(
        k1 in key_strategy(),
        k2 in key_strategy(),
        v in value_strategy(),
    ) {
        let r1 = Request::Set { key: Bytes::from(k1), value: Bytes::from(v) };
        let r2 = Request::Get { keys: vec![Bytes::from(k2)] };
        let mut wire = encode_request(&r1);
        wire.extend(encode_request(&r2));
        let Parsed::Done(p1, n1) = parse_request(&wire).unwrap() else {
            return Err(TestCaseError::fail("first request incomplete"));
        };
        prop_assert_eq!(p1, r1);
        let Parsed::Done(p2, n2) = parse_request(&wire[n1..]).unwrap() else {
            return Err(TestCaseError::fail("second request incomplete"));
        };
        prop_assert_eq!(p2, r2);
        prop_assert_eq!(n1 + n2, wire.len());
    }

    #[test]
    fn arbitrary_garbage_never_panics(garbage in proptest::collection::vec(any::<u8>(), 0..512)) {
        // Any outcome is fine; panicking or looping is not.
        let _ = parse_request(&garbage);
    }

    #[test]
    fn value_responses_encode_consistently(
        key in key_strategy(),
        value in value_strategy(),
        cas in proptest::option::of(any::<u64>()),
    ) {
        let resp = Response::Value { key: Bytes::from(key), value: Bytes::from(value.clone()), cas };
        let wire = encode_response(&resp);
        // Framing invariants: starts with VALUE, embeds the payload, ends
        // with END.
        prop_assert!(wire.starts_with(b"VALUE "));
        prop_assert!(wire.ends_with(b"\r\nEND\r\n"));
        let header_end = wire.windows(2).position(|w| w == b"\r\n").unwrap() + 2;
        prop_assert_eq!(&wire[header_end..header_end + value.len()], &value[..]);
    }

    #[test]
    fn key_list_responses_frame_every_key(keys in proptest::collection::vec(key_strategy(), 0..20)) {
        let wire = encode_response(&Response::KeyList(keys.clone()));
        prop_assert!(wire.ends_with(b"END\r\n"));
        let text = wire.clone();
        let mut count = 0;
        let mut pos = 0;
        while let Some(i) = text[pos..].windows(4).position(|w| w == b"KEY ") {
            count += 1;
            pos += i + 4;
        }
        prop_assert_eq!(count, keys.len());
    }
}
