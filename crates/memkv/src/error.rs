//! Error type shared by the store engine, the wire protocol and the
//! network clients.

use std::fmt;
use std::io;

/// Errors returned by key-value operations.
#[derive(Debug)]
pub enum KvError {
    /// `get`/`append`/`delete`/`cas` on a key that does not exist.
    NotFound,
    /// `add` on a key that already exists.
    Exists,
    /// Value would exceed the per-item size limit (memcached's classic
    /// item limit — the reason MemFS stripes files, paper §3.2.1).
    ValueTooLarge {
        /// Size the operation attempted to store.
        size: usize,
        /// The configured per-item limit.
        limit: usize,
    },
    /// Key exceeds the maximum key length (250 bytes, as in memcached).
    KeyTooLong(usize),
    /// Key contains bytes illegal in the text protocol (space/control).
    BadKey,
    /// The store is full and the eviction policy is
    /// [`crate::EvictionPolicy::Error`].
    OutOfMemory {
        /// Bytes the operation needed.
        needed: u64,
        /// The configured memory budget.
        budget: u64,
    },
    /// `cas` with a stale token.
    CasMismatch,
    /// Malformed wire-protocol input.
    Protocol(String),
    /// Transport failure (TCP client/server paths only).
    Io(io::Error),
    /// The server did not answer within the transport's response deadline
    /// (evented TCP client only). Distinct from [`KvError::Io`]: the
    /// connection was up but silent — a stalled or wedged server — and the
    /// client severed it rather than park a caller forever.
    Timeout {
        /// The deadline that expired.
        after: std::time::Duration,
    },
}

impl fmt::Display for KvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            KvError::NotFound => write!(f, "key not found"),
            KvError::Exists => write!(f, "key already exists"),
            KvError::ValueTooLarge { size, limit } => {
                write!(
                    f,
                    "value of {size} bytes exceeds item limit of {limit} bytes"
                )
            }
            KvError::KeyTooLong(n) => write!(f, "key of {n} bytes exceeds 250-byte limit"),
            KvError::BadKey => write!(f, "key contains space or control bytes"),
            KvError::OutOfMemory { needed, budget } => {
                write!(f, "store full: need {needed} bytes, budget {budget} bytes")
            }
            KvError::CasMismatch => write!(f, "compare-and-swap token mismatch"),
            KvError::Protocol(msg) => write!(f, "protocol error: {msg}"),
            KvError::Io(e) => write!(f, "I/O error: {e}"),
            KvError::Timeout { after } => write!(f, "request timed out after {after:?}"),
        }
    }
}

impl KvError {
    /// A fresh error equivalent to this one. `KvError` is not `Clone`
    /// (it owns an [`io::Error`]), but one transport failure routinely
    /// has to be reported for every key of a batch; this produces the
    /// per-key copies.
    pub fn duplicate(&self) -> KvError {
        match self {
            KvError::NotFound => KvError::NotFound,
            KvError::Exists => KvError::Exists,
            KvError::ValueTooLarge { size, limit } => KvError::ValueTooLarge {
                size: *size,
                limit: *limit,
            },
            KvError::KeyTooLong(n) => KvError::KeyTooLong(*n),
            KvError::BadKey => KvError::BadKey,
            KvError::OutOfMemory { needed, budget } => KvError::OutOfMemory {
                needed: *needed,
                budget: *budget,
            },
            KvError::CasMismatch => KvError::CasMismatch,
            KvError::Protocol(msg) => KvError::Protocol(msg.clone()),
            KvError::Io(e) => KvError::Io(io::Error::new(e.kind(), e.to_string())),
            KvError::Timeout { after } => KvError::Timeout { after: *after },
        }
    }

    /// Whether this error means the transport (not the data) failed — the
    /// errors worth retrying on another replica.
    pub fn is_transport(&self) -> bool {
        matches!(self, KvError::Io(_) | KvError::Timeout { .. })
    }
}

impl std::error::Error for KvError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            KvError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for KvError {
    fn from(e: io::Error) -> Self {
        KvError::Io(e)
    }
}

/// Convenience alias used throughout the crate.
pub type KvResult<T> = Result<T, KvError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        assert!(KvError::NotFound.to_string().contains("not found"));
        assert!(KvError::ValueTooLarge { size: 10, limit: 5 }
            .to_string()
            .contains("exceeds item limit"));
        assert!(KvError::OutOfMemory {
            needed: 1,
            budget: 0
        }
        .to_string()
        .contains("store full"));
    }

    #[test]
    fn io_errors_convert_and_chain() {
        let e: KvError = io::Error::new(io::ErrorKind::BrokenPipe, "pipe").into();
        assert!(matches!(e, KvError::Io(_)));
        assert!(std::error::Error::source(&e).is_some());
        assert!(std::error::Error::source(&KvError::NotFound).is_none());
    }
}
