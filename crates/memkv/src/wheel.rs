//! Hierarchical timer wheel for the shared reactor's deadlines.
//!
//! Four levels of 64 slots each at a 1 ms tick — the classic hashed
//! hierarchical wheel (Varghese & Lauck): O(1) arm and cancel, and on
//! advance only the slots that actually hold timers are visited, with
//! higher-level slots *cascading* their contents down one level when the
//! clock crosses their window boundary. Level 0 resolves single ticks,
//! level 1 resolves 64-tick windows, level 2 resolves 4096-tick windows,
//! level 3 resolves 262144-tick windows; deadlines past the addressable
//! horizon (~4.66 h) clamp to it.
//!
//! Correctness properties the reactor leans on:
//!
//! * **Never early.** Arming rounds the deadline *up* to a tick and
//!   clamps it at least one tick into the future; [`TimerWheel::advance`]
//!   rounds `now` *down*, so a timer only fires once wall time has
//!   passed its deadline.
//! * **Exact boundaries.** When `advance` lands on a tick that is both a
//!   cascade boundary and some timer's deadline, cascading runs first
//!   (top level down), then the level-0 slot of that same tick fires —
//!   so a deadline sitting exactly on a wheel-level edge is delivered at
//!   its tick, not a window late.
//! * **Deterministic order.** Fired timers are returned sorted by
//!   (deadline tick, arm order), matching what a sorted-vec oracle
//!   produces — the property test in `tests/timer_wheel.rs` relies on
//!   this.
//!
//! Cancels are O(1) and lazy: the slot keeps a stale reference that is
//! skipped (and reclaimed) when the slot is next drained. Stale
//! references are disambiguated from slab reuse by a per-arm epoch, and
//! externally by a generation in [`TimerId`], so a stale id can never
//! cancel a newer timer that happens to reuse the slab index.

use std::time::{Duration, Instant};

const LEVELS: usize = 4;
const SLOT_BITS: u32 = 6;
const SLOTS: usize = 1 << SLOT_BITS;
const SLOT_MASK: u64 = (SLOTS - 1) as u64;
const TICK_NANOS: u128 = 1_000_000;
/// Addressable ticks across all levels (2^24 ms ≈ 4.66 h); deadlines
/// further out clamp to the horizon and re-arm closer as time passes.
const MAX_TICKS: u64 = 1 << (SLOT_BITS * LEVELS as u32);

/// Handle to one armed timer. Stale after the timer fires or is
/// cancelled; a stale id passed to [`TimerWheel::cancel`] is a no-op.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TimerId {
    index: u32,
    generation: u32,
}

struct Armed<T> {
    tick: u64,
    epoch: u64,
    payload: T,
}

struct Entry<T> {
    generation: u32,
    armed: Option<Armed<T>>,
}

/// The wheel. `T` is the per-timer payload returned on expiry.
pub struct TimerWheel<T> {
    start: Instant,
    now_tick: u64,
    /// `slots[level][slot]` holds `(slab index, epoch)` pairs.
    slots: [[Vec<(u32, u64)>; SLOTS]; LEVELS],
    /// Per-level bitmask of slots that may hold timers (bit = slot).
    occupancy: [u64; LEVELS],
    entries: Vec<Entry<T>>,
    free: Vec<u32>,
    armed: usize,
    epoch: u64,
    cascades: u64,
}

impl<T> TimerWheel<T> {
    /// A wheel whose tick 0 is `start`.
    pub fn new(start: Instant) -> Self {
        TimerWheel {
            start,
            now_tick: 0,
            slots: std::array::from_fn(|_| std::array::from_fn(|_| Vec::new())),
            occupancy: [0; LEVELS],
            entries: Vec::new(),
            free: Vec::new(),
            armed: 0,
            epoch: 0,
            cascades: 0,
        }
    }

    /// Number of currently armed timers.
    pub fn len(&self) -> usize {
        self.armed
    }

    pub fn is_empty(&self) -> bool {
        self.armed == 0
    }

    /// Total entries moved down a level by cascading since construction.
    pub fn cascades(&self) -> u64 {
        self.cascades
    }

    fn tick_ceil(&self, at: Instant) -> u64 {
        let nanos = at.saturating_duration_since(self.start).as_nanos();
        nanos.div_ceil(TICK_NANOS) as u64
    }

    fn tick_floor(&self, at: Instant) -> u64 {
        (at.saturating_duration_since(self.start).as_nanos() / TICK_NANOS) as u64
    }

    fn level_for(delta: u64) -> usize {
        debug_assert!(delta > 0);
        if delta < 1 << SLOT_BITS {
            0
        } else if delta < 1 << (2 * SLOT_BITS) {
            1
        } else if delta < 1 << (3 * SLOT_BITS) {
            2
        } else {
            3
        }
    }

    fn place(&mut self, index: u32, epoch: u64, tick: u64) {
        let delta = tick - self.now_tick;
        // delta == 0 only happens while cascading the very tick being
        // processed; the entry drops into the level-0 slot that
        // `process_tick` fires right after the cascade.
        let level = if delta == 0 {
            0
        } else {
            Self::level_for(delta)
        };
        let slot = ((tick >> (SLOT_BITS * level as u32)) & SLOT_MASK) as usize;
        self.slots[level][slot].push((index, epoch));
        self.occupancy[level] |= 1 << slot;
    }

    /// Arm a timer for `deadline`, at least one tick in the future
    /// (rounded up, so it never fires early). Returns a handle for
    /// [`cancel`](Self::cancel).
    pub fn arm(&mut self, deadline: Instant, payload: T) -> TimerId {
        let tick = self
            .tick_ceil(deadline)
            .clamp(self.now_tick + 1, self.now_tick + MAX_TICKS - 1);
        let epoch = self.epoch;
        self.epoch += 1;
        let index = match self.free.pop() {
            Some(i) => i,
            None => {
                self.entries.push(Entry {
                    generation: 0,
                    armed: None,
                });
                (self.entries.len() - 1) as u32
            }
        };
        let generation = self.entries[index as usize].generation;
        self.entries[index as usize].armed = Some(Armed {
            tick,
            epoch,
            payload,
        });
        self.armed += 1;
        self.place(index, epoch, tick);
        TimerId { index, generation }
    }

    /// Cancel an armed timer, returning its payload. Stale ids (already
    /// fired, already cancelled, or from a reused slot) return `None`.
    pub fn cancel(&mut self, id: TimerId) -> Option<T> {
        let entry = self.entries.get_mut(id.index as usize)?;
        if entry.generation != id.generation {
            return None;
        }
        let armed = entry.armed.take()?;
        entry.generation = entry.generation.wrapping_add(1);
        self.free.push(id.index);
        self.armed -= 1;
        Some(armed.payload)
    }

    /// Earliest instant any armed timer could fire, for sizing a poll
    /// timeout. `None` when the wheel is empty. May be earlier than the
    /// true next expiry when a slot holds only cancelled stragglers —
    /// the resulting advance is a cheap no-op, never a missed deadline.
    pub fn next_wake(&self) -> Option<Instant> {
        self.next_event_tick()
            .map(|t| self.start + Duration::from_millis(t))
    }

    /// Next tick at which some occupied slot fires or cascades.
    fn next_event_tick(&self) -> Option<u64> {
        let mut best: Option<u64> = None;
        for level in 0..LEVELS {
            let occ = self.occupancy[level];
            if occ == 0 {
                continue;
            }
            let shift = SLOT_BITS * level as u32;
            let base = self.now_tick >> shift;
            let cursor = base & SLOT_MASK;
            let mut bits = occ;
            while bits != 0 {
                let slot = bits.trailing_zeros() as u64;
                bits &= bits - 1;
                // Slot at or behind the cursor belongs to the next wrap
                // of this level's window.
                let window = if slot > cursor {
                    (base & !SLOT_MASK) | slot
                } else {
                    ((base & !SLOT_MASK) + SLOTS as u64) | slot
                };
                let tick = window << shift;
                best = Some(best.map_or(tick, |b: u64| b.min(tick)));
            }
        }
        best
    }

    /// Advance the wheel to `now` (rounded down to a tick) and return
    /// every expired payload, sorted by (deadline, arm order).
    pub fn advance(&mut self, now: Instant) -> Vec<T> {
        let target = self.tick_floor(now);
        let mut fired: Vec<(u64, u64, T)> = Vec::new();
        while self.now_tick < target {
            match self.next_event_tick() {
                Some(tick) if tick <= target => {
                    self.now_tick = tick;
                    self.process_tick(&mut fired);
                }
                _ => {
                    self.now_tick = target;
                    break;
                }
            }
        }
        fired.sort_by_key(|&(tick, epoch, _)| (tick, epoch));
        fired.into_iter().map(|(_, _, payload)| payload).collect()
    }

    /// Cascade every level whose window boundary is the current tick
    /// (top down), then fire the current tick's level-0 slot.
    fn process_tick(&mut self, fired: &mut Vec<(u64, u64, T)>) {
        let tick = self.now_tick;
        for level in (1..LEVELS).rev() {
            let shift = SLOT_BITS * level as u32;
            if tick & ((1 << shift) - 1) != 0 {
                continue; // not a window boundary for this level
            }
            let slot = ((tick >> shift) & SLOT_MASK) as usize;
            if self.occupancy[level] & (1 << slot) == 0 {
                continue;
            }
            let moved = std::mem::take(&mut self.slots[level][slot]);
            self.occupancy[level] &= !(1 << slot);
            for (index, epoch) in moved {
                let entry = &self.entries[index as usize];
                let Some(armed) = entry.armed.as_ref() else {
                    continue; // cancelled; slab slot already freed
                };
                if armed.epoch != epoch {
                    continue; // cancelled and slab slot reused
                }
                let entry_tick = armed.tick;
                debug_assert!(entry_tick >= tick);
                self.cascades += 1;
                self.place(index, epoch, entry_tick);
            }
        }
        let slot = (tick & SLOT_MASK) as usize;
        if self.occupancy[0] & (1 << slot) == 0 {
            return;
        }
        let drained = std::mem::take(&mut self.slots[0][slot]);
        self.occupancy[0] &= !(1 << slot);
        for (index, epoch) in drained {
            let entry = &mut self.entries[index as usize];
            let live = entry.armed.as_ref().is_some_and(|a| a.epoch == epoch);
            if !live {
                continue;
            }
            let armed = entry.armed.take().unwrap();
            debug_assert_eq!(armed.tick, tick, "level-0 slot held a future timer");
            entry.generation = entry.generation.wrapping_add(1);
            self.free.push(index);
            self.armed -= 1;
            fired.push((armed.tick, armed.epoch, armed.payload));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(n: u64) -> Duration {
        Duration::from_millis(n)
    }

    #[test]
    fn fires_at_deadline_not_before() {
        let t0 = Instant::now();
        let mut w = TimerWheel::new(t0);
        w.arm(t0 + ms(10), "a");
        assert!(w.advance(t0 + ms(9)).is_empty());
        assert_eq!(w.advance(t0 + ms(10)), vec!["a"]);
        assert!(w.is_empty());
    }

    #[test]
    fn sub_tick_deadline_rounds_up_one_tick() {
        let t0 = Instant::now();
        let mut w = TimerWheel::new(t0);
        // A deadline in the past (or now) still waits out one full tick.
        w.arm(t0, "p");
        assert!(w.advance(t0).is_empty());
        assert_eq!(w.advance(t0 + ms(1)), vec!["p"]);
    }

    #[test]
    fn cancel_prevents_fire_and_is_idempotent() {
        let t0 = Instant::now();
        let mut w = TimerWheel::new(t0);
        let id = w.arm(t0 + ms(5), 1u32);
        assert_eq!(w.cancel(id), Some(1));
        assert_eq!(w.cancel(id), None, "double cancel is a no-op");
        assert!(w.advance(t0 + ms(100)).is_empty());
        assert_eq!(w.len(), 0);
    }

    #[test]
    fn stale_id_cannot_cancel_a_reused_slot() {
        let t0 = Instant::now();
        let mut w = TimerWheel::new(t0);
        let id = w.arm(t0 + ms(5), "old");
        assert_eq!(w.cancel(id), Some("old"));
        let _new = w.arm(t0 + ms(7), "new"); // reuses the slab slot
        assert_eq!(w.cancel(id), None, "stale id must not hit the new timer");
        assert_eq!(w.advance(t0 + ms(7)), vec!["new"]);
    }

    #[test]
    fn cascade_counter_counts_demotions() {
        let t0 = Instant::now();
        let mut w = TimerWheel::new(t0);
        // 100 ticks out: level 1 at arm, cascades to level 0 at the
        // 64-tick boundary, fires at 100.
        w.arm(t0 + ms(100), ());
        assert!(w.advance(t0 + ms(99)).is_empty());
        assert!(w.cascades() >= 1, "level-1 timer never cascaded");
        assert_eq!(w.advance(t0 + ms(100)).len(), 1);
    }

    #[test]
    fn far_future_deadline_clamps_to_horizon() {
        let t0 = Instant::now();
        let mut w = TimerWheel::new(t0);
        let id = w.arm(t0 + Duration::from_secs(3600 * 24 * 30), "far");
        assert_eq!(w.len(), 1);
        // It must not fire inside the addressable horizon...
        assert!(w.advance(t0 + ms(MAX_TICKS - 2)).is_empty());
        // ...and must still be cancellable after all that advancing.
        assert_eq!(w.cancel(id), Some("far"));
    }

    #[test]
    fn next_wake_tracks_earliest_timer() {
        let t0 = Instant::now();
        let mut w = TimerWheel::new(t0);
        assert_eq!(w.next_wake(), None);
        w.arm(t0 + ms(500), "late");
        let id = w.arm(t0 + ms(20), "early");
        let wake = w.next_wake().unwrap();
        assert!(wake <= t0 + ms(20), "wake after the earliest deadline");
        assert!(wake > t0, "wake not in the future");
        w.cancel(id);
        // Lazy cancel may leave the early slot occupied; the wake must
        // never be later than the earliest *live* timer.
        assert!(w.next_wake().unwrap() <= t0 + ms(500));
    }
}
