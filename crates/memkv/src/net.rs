//! TCP transport: a thread-per-connection server speaking the memcached
//! text protocol, and a matching client implementing [`KvClient`].
//!
//! This is what turns `memkv` into a real distributed deployment: one
//! [`KvServer`] per storage node, a [`TcpClient`] per server inside every
//! MemFS mount (the Libmemcached role). The `tcp_cluster` example runs a
//! whole striped file system over localhost sockets.
//!
//! The client is a **connection pool** ([`PoolConfig`] sizes it) and every
//! request batch is **pipelined**: all frames of a batch are queued on one
//! connection and the replies are read back in order. Connections are
//! driven by a shared epoll reactor ([`crate::reactor`]): submitting a
//! batch never blocks on the socket, and the caller parks on a completion
//! handle only when it actually needs the responses — so one thread can
//! keep batches in flight on every server of a pool concurrently
//! ([`KvClient::start_get_many`] and friends expose that split). A mount
//! registers all of its `TcpClient`s on one [`ReactorHandle`]
//! ([`TcpClient::connect_shared`]), so a single reactor thread drives the
//! whole cluster and drains completions for all servers per wake. Value
//! payloads travel as their own zero-copy iovec segments in both
//! directions, so stripe-sized values are never copied into an
//! intermediate wire buffer.

use std::collections::HashMap;
use std::io::{BufReader, BufWriter, IoSlice, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use bytes::Bytes;

use crate::client::{Deferred, KvClient};
use crate::error::{KvError, KvResult};
use crate::proto::{
    parse_request, stats_pairs, write_request_line, write_response, write_value_header, Parsed,
    Request, Response, ValueItem, MAX_LINE_LEN,
};
use crate::reactor::{PendingExchange, ReactorHandle, ReactorStatsSnapshot, Registration};
use crate::store::Store;

/// Version string reported to `version` commands.
pub const SERVER_VERSION: &str = "memkv/0.1 (memcached text protocol)";

/// A running TCP storage server.
pub struct KvServer {
    store: Arc<Store>,
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    accept_thread: Option<JoinHandle<()>>,
}

impl KvServer {
    /// Bind `addr` (e.g. `"127.0.0.1:0"` for an ephemeral port) and start
    /// serving `store` on a background accept loop.
    pub fn spawn(store: Arc<Store>, addr: impl ToSocketAddrs) -> KvResult<KvServer> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let accept_store = Arc::clone(&store);
        let accept_shutdown = Arc::clone(&shutdown);
        // A short accept timeout lets the loop observe the shutdown flag.
        listener.set_nonblocking(false)?;
        let accept_thread = std::thread::Builder::new()
            .name(format!("memkv-accept-{addr}"))
            .spawn(move || {
                accept_loop(listener, accept_store, accept_shutdown);
            })
            .expect("spawn accept thread");
        Ok(KvServer {
            store,
            addr,
            shutdown,
            accept_thread: Some(accept_thread),
        })
    }

    /// The address the server is listening on.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The store this server fronts.
    pub fn store(&self) -> &Arc<Store> {
        &self.store
    }

    /// Stop accepting connections and join the accept loop. In-flight
    /// connections finish their current request and then close.
    pub fn shutdown(&mut self) {
        if self.shutdown.swap(true, Ordering::SeqCst) {
            return;
        }
        // Unblock the accept call by connecting once.
        let _ = TcpStream::connect(self.addr);
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for KvServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn accept_loop(listener: TcpListener, store: Arc<Store>, shutdown: Arc<AtomicBool>) {
    loop {
        match listener.accept() {
            Ok((stream, _)) => {
                if shutdown.load(Ordering::SeqCst) {
                    return;
                }
                let store = Arc::clone(&store);
                let conn_shutdown = Arc::clone(&shutdown);
                let _ = std::thread::Builder::new()
                    .name("memkv-conn".into())
                    .spawn(move || {
                        let _ = serve_connection(stream, &store, &conn_shutdown);
                    });
            }
            Err(_) => {
                if shutdown.load(Ordering::SeqCst) {
                    return;
                }
            }
        }
    }
}

/// Write `parts` as one frame, preferring a single vectored syscall so
/// value payloads never get copied into the encode scratch buffer.
fn write_all_vectored<W: Write>(writer: &mut W, parts: &[&[u8]]) -> std::io::Result<()> {
    let mut part = 0usize;
    let mut off = 0usize;
    while part < parts.len() {
        if off == parts[part].len() {
            part += 1;
            off = 0;
            continue;
        }
        let slices: Vec<IoSlice<'_>> = std::iter::once(IoSlice::new(&parts[part][off..]))
            .chain(
                parts[part + 1..]
                    .iter()
                    .filter(|p| !p.is_empty())
                    .map(|p| IoSlice::new(p)),
            )
            .collect();
        let mut n = writer.write_vectored(&slices)?;
        if n == 0 {
            return Err(std::io::Error::new(
                std::io::ErrorKind::WriteZero,
                "failed to write frame",
            ));
        }
        while part < parts.len() {
            let avail = parts[part].len() - off;
            if n >= avail {
                n -= avail;
                part += 1;
                off = 0;
            } else {
                off += n;
                break;
            }
        }
    }
    Ok(())
}

/// Transmit one response, reusing `scratch` for the header bytes and
/// passing value payloads through as their own iovec entries.
fn write_response_frame<W: Write>(
    writer: &mut W,
    scratch: &mut Vec<u8>,
    resp: &Response,
) -> std::io::Result<()> {
    scratch.clear();
    match resp {
        Response::Value { key, value, cas } => {
            write_value_header(scratch, key, value.len(), *cas);
            write_all_vectored(writer, &[scratch, value, b"\r\nEND\r\n"])
        }
        Response::Values(items) => {
            let mut ranges = Vec::with_capacity(items.len());
            for item in items {
                let start = scratch.len();
                write_value_header(scratch, &item.key, item.value.len(), item.cas);
                ranges.push(start..scratch.len());
            }
            let mut parts: Vec<&[u8]> = Vec::with_capacity(items.len() * 3 + 1);
            for (item, range) in items.iter().zip(ranges) {
                parts.push(&scratch[range]);
                parts.push(&item.value);
                parts.push(b"\r\n");
            }
            parts.push(b"END\r\n");
            write_all_vectored(writer, &parts)
        }
        other => {
            write_response(other, scratch);
            writer.write_all(scratch)
        }
    }
}

/// Serve one connection until `quit`, EOF, or a fatal error.
fn serve_connection(stream: TcpStream, store: &Store, shutdown: &AtomicBool) -> KvResult<()> {
    stream.set_nodelay(true)?;
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut writer = BufWriter::new(stream);
    let mut buf: Vec<u8> = Vec::with_capacity(4096);
    let mut out: Vec<u8> = Vec::with_capacity(1024);
    let mut chunk = [0u8; 64 * 1024];

    loop {
        if shutdown.load(Ordering::SeqCst) {
            return Ok(());
        }
        // Parse as many pipelined requests as the buffer holds.
        loop {
            match parse_request(&buf) {
                Ok(Parsed::Done(req, consumed)) => {
                    buf.drain(..consumed);
                    if matches!(req, Request::Quit) {
                        writer.flush()?;
                        return Ok(());
                    }
                    let resp = execute(store, req);
                    write_response_frame(&mut writer, &mut out, &resp)?;
                }
                Ok(Parsed::NeedMore) => break,
                Err(e) => {
                    let resp = Response::ClientError(e.to_string());
                    write_response_frame(&mut writer, &mut out, &resp)?;
                    writer.flush()?;
                    return Err(e);
                }
            }
        }
        writer.flush()?;
        let n = reader.read(&mut chunk)?;
        if n == 0 {
            return Ok(()); // peer closed
        }
        buf.extend_from_slice(&chunk[..n]);
    }
}

/// Apply one request to the store, mapping engine errors to protocol
/// responses exactly as memcached does.
pub fn execute(store: &Store, req: Request) -> Response {
    match req {
        Request::Set { key, value } => match store.set(&key, value) {
            Ok(()) => Response::Stored,
            Err(e) => storage_error(e),
        },
        Request::Add { key, value } => match store.add(&key, value) {
            Ok(()) => Response::Stored,
            Err(KvError::Exists) => Response::NotStored,
            Err(e) => storage_error(e),
        },
        Request::Append { key, value } => match store.append(&key, &value) {
            Ok(()) => Response::Stored,
            Err(KvError::NotFound) => Response::NotStored,
            Err(e) => storage_error(e),
        },
        Request::Cas { key, value, token } => match store.cas(&key, value, token) {
            Ok(()) => Response::Stored,
            Err(KvError::CasMismatch) => Response::Exists,
            Err(KvError::NotFound) => Response::NotFound,
            Err(e) => storage_error(e),
        },
        Request::Get { keys } => {
            if keys.len() == 1 {
                // Single-key fast path; does not count as a batch.
                let key = keys.into_iter().next().expect("one key");
                return match store.get(&key) {
                    Ok(value) => Response::Value {
                        key,
                        value,
                        cas: None,
                    },
                    Err(_) => Response::End,
                };
            }
            let results = store.get_many(&keys);
            let items: Vec<ValueItem> = keys
                .into_iter()
                .zip(results)
                .filter_map(|(key, r)| {
                    r.ok().map(|value| ValueItem {
                        key,
                        value,
                        cas: None,
                    })
                })
                .collect();
            values_response(items)
        }
        Request::Gets { keys } => {
            if keys.len() == 1 {
                let key = keys.into_iter().next().expect("one key");
                return match store.gets(&key) {
                    Ok((value, cas)) => Response::Value {
                        key,
                        value,
                        cas: Some(cas),
                    },
                    Err(_) => Response::End,
                };
            }
            let items: Vec<ValueItem> = keys
                .into_iter()
                .filter_map(|key| {
                    store.gets(&key).ok().map(|(value, cas)| ValueItem {
                        key,
                        value,
                        cas: Some(cas),
                    })
                })
                .collect();
            values_response(items)
        }
        Request::Delete { key } => match store.delete(&key) {
            Ok(()) => Response::Deleted,
            Err(_) => Response::NotFound,
        },
        Request::FlushAll => {
            store.flush_all();
            Response::Ok
        }
        Request::Stats => Response::Stats(stats_pairs(&store.stats().snapshot())),
        Request::Keys => {
            Response::KeyList(store.keys().into_iter().map(|k| k.into_vec()).collect())
        }
        Request::Version => Response::Version(SERVER_VERSION.to_string()),
        Request::Quit => Response::Ok, // handled by the connection loop
    }
}

/// Collapse a multi-get's hits into the smallest correct response frame:
/// misses-only → bare `END`, one hit → a plain `VALUE` block, several →
/// consecutive blocks. All three produce memcached-compatible wire bytes.
fn values_response(mut items: Vec<ValueItem>) -> Response {
    match items.len() {
        0 => Response::End,
        1 => {
            let item = items.pop().expect("one item");
            Response::Value {
                key: item.key,
                value: item.value,
                cas: item.cas,
            }
        }
        _ => Response::Values(items),
    }
}

fn storage_error(e: KvError) -> Response {
    match e {
        KvError::ValueTooLarge { .. } | KvError::OutOfMemory { .. } => {
            Response::ServerError(e.to_string())
        }
        other => Response::ClientError(other.to_string()),
    }
}

/// Sizing knobs for a [`TcpClient`]'s connection pool.
#[derive(Debug, Clone)]
pub struct PoolConfig {
    /// Number of TCP connections to keep open to the server. Batches are
    /// spread round-robin; each connection pipelines independently, so
    /// concurrent batches do not serialize on one socket.
    pub connections: usize,
    /// Upper bound on keys packed into one multi-key `get` line; larger
    /// batches are split into pipelined frames on the same connection.
    pub max_batch_keys: usize,
    /// Response deadline per batch. A server that accepts a request and
    /// never answers fails the call with [`KvError::Timeout`] instead of
    /// parking the caller forever; the silent connection is severed.
    pub timeout: Duration,
}

impl Default for PoolConfig {
    fn default() -> Self {
        PoolConfig {
            connections: 4,
            max_batch_keys: 64,
            timeout: Duration::from_secs(10),
        }
    }
}

/// An evented TCP client for one server, implementing [`KvClient`].
///
/// Holds a pool of non-blocking connections ([`PoolConfig::connections`])
/// registered with an epoll reactor ([`crate::reactor`]) — the role
/// Libmemcached's connection pools play in the paper's deployment, minus
/// the thread-per-call cost: submitting a batch only encodes it and hands
/// it to the reactor, so any number of batches (across any number of
/// `TcpClient`s) stay in flight while a single caller thread waits.
/// [`TcpClient::connect_shared`] registers on a caller-owned
/// [`ReactorHandle`] so every client of a mount shares one reactor
/// thread; [`TcpClient::connect_with`] spins up a private one.
///
/// Batch operations ([`KvClient::get_many`], [`KvClient::set_many`]) are
/// *pipelined*: every frame is queued on one connection and the replies
/// are read back in order. The `start_*` variants expose the split
/// submit/completion path for callers that fan one logical operation out
/// across servers.
///
/// A connection that dies mid-call is reopened; the request is retried
/// once, transparently, when it is idempotent (`get`/`set`/`delete`…).
/// Non-idempotent verbs (`add`/`append`/`cas`) surface the I/O error
/// instead — retrying those could double-apply. Calls unanswered past
/// [`PoolConfig::timeout`] fail with [`KvError::Timeout`].
pub struct TcpClient {
    registration: Registration,
    next: AtomicUsize,
    addr: SocketAddr,
    config: PoolConfig,
}

/// Whether a request may be transparently resent after a connection drop.
fn is_idempotent(req: &Request) -> bool {
    !matches!(
        req,
        Request::Add { .. } | Request::Append { .. } | Request::Cas { .. }
    )
}

/// Value payloads at or above this size travel as their own zero-copy
/// wire segment; smaller ones are cheaper to copy into the header buffer
/// than to pay an extra iovec entry for.
const SEGMENT_THRESHOLD: usize = 4 * 1024;

/// Encode a pipelined batch into wire segments for the reactor: command
/// lines (and small payloads) coalesce into shared header buffers, large
/// payloads ride as refcount-bumped [`Bytes`] segments. No segment is
/// ever empty.
fn encode_batch(reqs: &[Request]) -> Vec<Bytes> {
    let mut segments: Vec<Bytes> = Vec::new();
    let mut head: Vec<u8> = Vec::new();
    for req in reqs {
        match write_request_line(req, &mut head) {
            Some(value) if value.len() >= SEGMENT_THRESHOLD => {
                segments.push(Bytes::from(std::mem::take(&mut head)));
                segments.push(value.clone());
                head.extend_from_slice(b"\r\n");
            }
            Some(value) => {
                crate::audit::count_staged(value.len());
                head.extend_from_slice(value);
                head.extend_from_slice(b"\r\n");
            }
            None => {}
        }
    }
    if !head.is_empty() {
        segments.push(Bytes::from(head));
    }
    segments
}

impl TcpClient {
    /// Connect to a server with the default pool size.
    pub fn connect(addr: impl ToSocketAddrs) -> KvResult<TcpClient> {
        Self::connect_with(addr, PoolConfig::default())
    }

    /// Connect to a server with explicit pool sizing on a private reactor
    /// (this client is the shared reactor's only registrant).
    ///
    /// # Panics
    /// Panics if `config.connections == 0`, `config.max_batch_keys == 0`
    /// or `config.timeout` is zero.
    pub fn connect_with(addr: impl ToSocketAddrs, config: PoolConfig) -> KvResult<TcpClient> {
        let reactor = ReactorHandle::new()?;
        Self::connect_shared(addr, config, &reactor)
    }

    /// Connect to a server and register the connections with an existing
    /// shared reactor — the per-mount deployment shape: every server's
    /// `TcpClient` rides one epoll thread, so completions land in
    /// cross-server batches and thread count stays constant in cluster
    /// size. The client keeps the reactor alive for as long as it lives.
    ///
    /// # Panics
    /// Panics if `config.connections == 0`, `config.max_batch_keys == 0`
    /// or `config.timeout` is zero.
    pub fn connect_shared(
        addr: impl ToSocketAddrs,
        config: PoolConfig,
        reactor: &ReactorHandle,
    ) -> KvResult<TcpClient> {
        assert!(config.connections > 0, "pool needs at least one connection");
        assert!(config.max_batch_keys > 0, "batches need at least one key");
        assert!(
            config.timeout > Duration::ZERO,
            "response deadline must be non-zero"
        );
        // Connect eagerly and synchronously so an unreachable server is
        // reported here, not on the first call.
        let first = TcpStream::connect(addr)?;
        first.set_nodelay(true)?;
        let addr = first.peer_addr()?;
        let mut streams = Vec::with_capacity(config.connections);
        streams.push(first);
        for _ in 1..config.connections {
            let stream = TcpStream::connect(addr)?;
            stream.set_nodelay(true)?;
            streams.push(stream);
        }
        let registration = reactor.register(addr, streams, config.timeout)?;
        Ok(TcpClient {
            registration,
            next: AtomicUsize::new(0),
            addr,
            config,
        })
    }

    /// Peer address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Number of pooled connections.
    pub fn pool_size(&self) -> usize {
        self.config.connections
    }

    /// Counters of the reactor driving this client's connections. Shared
    /// reactors report aggregate numbers across every registrant; dedup
    /// on [`ReactorStatsSnapshot::reactor_id`] when summing over clients.
    pub fn reactor_stats(&self) -> ReactorStatsSnapshot {
        self.registration.handle().stats()
    }

    /// Submit one pipelined batch to the reactor (round-robin over the
    /// connection pool) and return its completion handle. Never blocks on
    /// the network.
    fn submit_batch(&self, reqs: &[Request]) -> PendingExchange {
        let segments = encode_batch(reqs);
        let idempotent = reqs.iter().all(is_idempotent);
        let conn = self.next.fetch_add(1, Ordering::Relaxed) % self.registration.len();
        self.registration
            .submit(conn, segments, reqs.len(), idempotent)
    }

    /// Submit a batch and wait for the replies, in request order.
    fn exchange(&self, reqs: &[Request]) -> KvResult<Vec<Response>> {
        self.submit_batch(reqs).wait()
    }

    /// Pack keys into multi-key `get` lines (bounded by both key count and
    /// line length), one request per chunk. `Bytes` keys make every chunk
    /// push a refcount bump, not a copy.
    fn chunk_get_requests(&self, keys: &[Bytes]) -> Vec<Request> {
        let mut reqs: Vec<Request> = Vec::new();
        let mut chunk: Vec<Bytes> = Vec::new();
        let mut line_len = "get".len();
        for key in keys {
            let full = chunk.len() >= self.config.max_batch_keys
                || line_len + 1 + key.len() + 2 > MAX_LINE_LEN;
            if full && !chunk.is_empty() {
                reqs.push(Request::Get {
                    keys: std::mem::take(&mut chunk),
                });
                line_len = "get".len();
            }
            line_len += 1 + key.len();
            chunk.push(key.clone());
        }
        reqs.push(Request::Get { keys: chunk });
        reqs
    }

    /// Issue a request and wait for its response.
    pub fn call(&self, req: &Request) -> KvResult<Response> {
        let mut resps = self.exchange(std::slice::from_ref(req))?;
        Ok(resps.pop().expect("one response per request"))
    }

    /// Fetch server statistics.
    pub fn stats(&self) -> KvResult<Vec<(String, String)>> {
        match self.call(&Request::Stats)? {
            Response::Stats(pairs) => Ok(pairs),
            other => Err(KvError::Protocol(format!("unexpected reply {other:?}"))),
        }
    }

    /// List all keys on the server (the `keys` protocol extension).
    pub fn keys(&self) -> KvResult<Vec<Vec<u8>>> {
        match self.call(&Request::Keys)? {
            Response::KeyList(keys) => Ok(keys),
            // An empty key list is a bare `END`, indistinguishable on the
            // wire from a get miss.
            Response::End => Ok(Vec::new()),
            other => Err(KvError::Protocol(format!("unexpected reply {other:?}"))),
        }
    }

    /// Fetch a value together with its CAS token (`gets`).
    pub fn gets(&self, key: &[u8]) -> KvResult<(Bytes, u64)> {
        match self.call(&Request::Gets {
            keys: vec![Bytes::copy_from_slice(key)],
        })? {
            Response::Value {
                value,
                cas: Some(token),
                ..
            } => Ok((value, token)),
            Response::End => Err(KvError::NotFound),
            other => Err(KvError::Protocol(format!("unexpected reply {other:?}"))),
        }
    }

    /// Compare-and-swap: replace `key` only if `token` is still current.
    pub fn cas(&self, key: &[u8], value: Bytes, token: u64) -> KvResult<()> {
        match self.call(&Request::Cas {
            key: Bytes::copy_from_slice(key),
            value,
            token,
        })? {
            Response::Stored => Ok(()),
            Response::Exists => Err(KvError::CasMismatch),
            Response::NotFound => Err(KvError::NotFound),
            other => Err(KvError::Protocol(format!("unexpected reply {other:?}"))),
        }
    }
}

/// Outcome of one parse attempt over the accumulated response bytes.
pub(crate) enum ParseStep {
    /// A complete response was consumed from the buffer.
    Done(Response),
    /// The frame is incomplete; at least this many more bytes are needed.
    /// (A lower bound — `VALUE` framing knows the exact payload remainder,
    /// line-oriented frames just ask for "more".)
    More(usize),
}

/// Try to parse one response from the front of `buf`, consuming it.
/// Shared with the reactor ([`crate::reactor`]), which accumulates
/// inbound bytes per connection and parses them incrementally.
pub(crate) fn try_parse_response(buf: &mut Vec<u8>) -> KvResult<ParseStep> {
    let Some(line_end) = buf.windows(2).position(|w| w == b"\r\n") else {
        return Ok(ParseStep::More(2));
    };
    let line = buf[..line_end].to_vec();
    let consume_line = line_end + 2;

    let simple = |buf: &mut Vec<u8>, resp: Response| {
        buf.drain(..consume_line);
        Ok(ParseStep::Done(resp))
    };

    if line == b"STORED" {
        return simple(buf, Response::Stored);
    }
    if line == b"NOT_STORED" {
        return simple(buf, Response::NotStored);
    }
    if line == b"EXISTS" {
        return simple(buf, Response::Exists);
    }
    if line == b"NOT_FOUND" {
        return simple(buf, Response::NotFound);
    }
    if line == b"DELETED" {
        return simple(buf, Response::Deleted);
    }
    if line == b"OK" {
        return simple(buf, Response::Ok);
    }
    if line == b"END" {
        return simple(buf, Response::End);
    }
    if let Some(v) = line.strip_prefix(b"VERSION ") {
        let resp = Response::Version(String::from_utf8_lossy(v).into_owned());
        return simple(buf, resp);
    }
    if let Some(msg) = line.strip_prefix(b"SERVER_ERROR ") {
        let resp = Response::ServerError(String::from_utf8_lossy(msg).into_owned());
        return simple(buf, resp);
    }
    if let Some(msg) = line.strip_prefix(b"CLIENT_ERROR ") {
        let resp = Response::ClientError(String::from_utf8_lossy(msg).into_owned());
        return simple(buf, resp);
    }
    if line.starts_with(b"KEY ") {
        // Collect KEY lines until END.
        let mut keys = Vec::new();
        let mut pos = 0usize;
        loop {
            let rest = &buf[pos..];
            let Some(le) = rest.windows(2).position(|w| w == b"\r\n") else {
                return Ok(ParseStep::More(2));
            };
            let l = &rest[..le];
            pos += le + 2;
            if l == b"END" {
                buf.drain(..pos);
                return Ok(ParseStep::Done(Response::KeyList(keys)));
            }
            let Some(k) = l.strip_prefix(b"KEY ") else {
                return Err(KvError::Protocol("malformed key list".into()));
            };
            keys.push(k.to_vec());
        }
    }
    if line.starts_with(b"STAT ") {
        // Collect STAT lines until END.
        let mut pairs = Vec::new();
        let mut pos = 0usize;
        loop {
            let rest = &buf[pos..];
            let Some(le) = rest.windows(2).position(|w| w == b"\r\n") else {
                return Ok(ParseStep::More(2));
            };
            let l = &rest[..le];
            pos += le + 2;
            if l == b"END" {
                buf.drain(..pos);
                return Ok(ParseStep::Done(Response::Stats(pairs)));
            }
            let Some(kv) = l.strip_prefix(b"STAT ") else {
                return Err(KvError::Protocol("malformed stats block".into()));
            };
            let text = String::from_utf8_lossy(kv);
            let mut it = text.splitn(2, ' ');
            let k = it.next().unwrap_or_default().to_string();
            let v = it.next().unwrap_or_default().to_string();
            pairs.push((k, v));
        }
    }
    if line.starts_with(b"VALUE ") {
        // One or more `VALUE <key> <flags> <bytes> [cas]\r\n<data>\r\n`
        // blocks terminated by `END\r\n` — a (multi-)get reply.
        //
        // Scan in two passes: the first only records item boundaries, so
        // the retries read_response makes while a large pipelined frame
        // trickles in stay cheap (no per-attempt data copies — copying
        // each value on every attempt would make a `w`-stripe window
        // quadratic in its payload size). Values are materialized once,
        // after `END` proves the frame is complete.
        struct RawItem {
            key: (usize, usize),
            data: (usize, usize),
            cas: Option<u64>,
        }
        let mut raw: Vec<RawItem> = Vec::new();
        let mut pos = 0usize;
        let frame_end = loop {
            let rest = &buf[pos..];
            let Some(le) = rest.windows(2).position(|w| w == b"\r\n") else {
                return Ok(ParseStep::More(2));
            };
            let l = &rest[..le];
            let data_start = pos + le + 2;
            if l == b"END" {
                break data_start;
            }
            let Some(header) = l.strip_prefix(b"VALUE ") else {
                return Err(KvError::Protocol("malformed VALUE framing".into()));
            };
            let text = String::from_utf8_lossy(header).into_owned();
            let toks: Vec<&str> = text.split(' ').collect();
            if toks.len() < 3 {
                return Err(KvError::Protocol("malformed VALUE line".into()));
            }
            let key_start = pos + b"VALUE ".len();
            let nbytes: usize = toks[2]
                .parse()
                .map_err(|_| KvError::Protocol("bad VALUE byte count".into()))?;
            let cas = if toks.len() >= 4 {
                Some(
                    toks[3]
                        .parse()
                        .map_err(|_| KvError::Protocol("bad VALUE cas".into()))?,
                )
            } else {
                None
            };
            let need = data_start + nbytes + 2; // data + CRLF
            if buf.len() < need {
                return Ok(ParseStep::More(need - buf.len()));
            }
            if &buf[data_start + nbytes..need] != b"\r\n" {
                return Err(KvError::Protocol("malformed VALUE framing".into()));
            }
            raw.push(RawItem {
                key: (key_start, key_start + toks[0].len()),
                data: (data_start, data_start + nbytes),
                cas,
            });
            pos = need;
        };
        // Materialize the values. Small frames are copied out so the
        // scratch buffer keeps its capacity; big (stripe-sized) frames
        // hand the whole buffer over to a shared `Bytes` and every value
        // becomes a zero-copy slice of it — halving the memory traffic
        // that dominates multi-megabyte pipelined windows.
        const ZERO_COPY_THRESHOLD: usize = 64 * 1024;
        let payload: usize = raw.iter().map(|r| r.data.1 - r.data.0).sum();
        let mut items: Vec<ValueItem> = if payload >= ZERO_COPY_THRESHOLD {
            let mut frame_vec = std::mem::take(buf);
            // Preserve any pipelined bytes beyond this frame.
            buf.extend_from_slice(&frame_vec[frame_end..]);
            frame_vec.truncate(frame_end);
            let frame = Bytes::from(frame_vec);
            raw.into_iter()
                .map(|r| ValueItem {
                    // Keys ride the same shared frame as the values: a
                    // refcount bump each, no per-key allocation.
                    key: frame.slice(r.key.0..r.key.1),
                    value: frame.slice(r.data.0..r.data.1),
                    cas: r.cas,
                })
                .collect()
        } else {
            let items = raw
                .into_iter()
                .map(|r| ValueItem {
                    key: Bytes::copy_from_slice(&buf[r.key.0..r.key.1]),
                    value: Bytes::copy_from_slice(&buf[r.data.0..r.data.1]),
                    cas: r.cas,
                })
                .collect();
            buf.drain(..frame_end);
            items
        };
        let resp = if items.len() == 1 {
            let item = items.pop().expect("one item");
            Response::Value {
                key: item.key,
                value: item.value,
                cas: item.cas,
            }
        } else {
            Response::Values(items)
        };
        return Ok(ParseStep::Done(resp));
    }
    Err(KvError::Protocol(format!(
        "unrecognized response line {:?}",
        String::from_utf8_lossy(&line)
    )))
}

impl KvClient for TcpClient {
    fn scan_keys(&self) -> KvResult<Vec<Vec<u8>>> {
        self.keys()
    }

    fn set(&self, key: &[u8], value: Bytes) -> KvResult<()> {
        match self.call(&Request::Set {
            key: Bytes::copy_from_slice(key),
            value,
        })? {
            Response::Stored => Ok(()),
            other => Err(response_error(other)),
        }
    }

    fn add(&self, key: &[u8], value: Bytes) -> KvResult<()> {
        match self.call(&Request::Add {
            key: Bytes::copy_from_slice(key),
            value,
        })? {
            Response::Stored => Ok(()),
            Response::NotStored => Err(KvError::Exists),
            other => Err(response_error(other)),
        }
    }

    fn get(&self, key: &[u8]) -> KvResult<Bytes> {
        match self.call(&Request::Get {
            keys: vec![Bytes::copy_from_slice(key)],
        })? {
            Response::Value { value, .. } => Ok(value),
            Response::End => Err(KvError::NotFound),
            other => Err(response_error(other)),
        }
    }

    fn get_many(&self, keys: &[Bytes]) -> KvResult<Vec<KvResult<Bytes>>> {
        self.start_get_many(keys).wait()
    }

    fn start_get_many(&self, keys: &[Bytes]) -> Deferred<Bytes> {
        if keys.is_empty() {
            return Deferred::Ready(Ok(Vec::new()));
        }
        let reqs = self.chunk_get_requests(keys);
        let pending = self.submit_batch(&reqs);
        let keys = keys.to_vec();
        Deferred::Polled {
            ready: pending.probe(),
            finish: Box::new(move || decode_get_responses(&keys, pending.wait()?)),
        }
    }

    fn set_many(&self, items: &[(Bytes, Bytes)]) -> KvResult<Vec<KvResult<()>>> {
        self.start_set_many(items).wait()
    }

    fn start_set_many(&self, items: &[(Bytes, Bytes)]) -> Deferred<()> {
        if items.is_empty() {
            return Deferred::Ready(Ok(Vec::new()));
        }
        let reqs: Vec<Request> = items
            .iter()
            .map(|(key, value)| Request::Set {
                key: key.clone(),
                value: value.clone(),
            })
            .collect();
        let pending = self.submit_batch(&reqs);
        Deferred::Polled {
            ready: pending.probe(),
            finish: Box::new(move || {
                Ok(pending
                    .wait()?
                    .into_iter()
                    .map(|resp| match resp {
                        Response::Stored => Ok(()),
                        other => Err(response_error(other)),
                    })
                    .collect())
            }),
        }
    }

    fn append(&self, key: &[u8], suffix: &[u8]) -> KvResult<()> {
        match self.call(&Request::Append {
            key: Bytes::copy_from_slice(key),
            value: Bytes::copy_from_slice(suffix),
        })? {
            Response::Stored => Ok(()),
            Response::NotStored => Err(KvError::NotFound),
            other => Err(response_error(other)),
        }
    }

    fn delete(&self, key: &[u8]) -> KvResult<()> {
        match self.call(&Request::Delete {
            key: Bytes::copy_from_slice(key),
        })? {
            Response::Deleted => Ok(()),
            Response::NotFound => Err(KvError::NotFound),
            other => Err(response_error(other)),
        }
    }

    fn delete_many(&self, keys: &[Bytes]) -> KvResult<Vec<KvResult<()>>> {
        self.start_delete_many(keys).wait()
    }

    fn start_delete_many(&self, keys: &[Bytes]) -> Deferred<()> {
        if keys.is_empty() {
            return Deferred::Ready(Ok(Vec::new()));
        }
        // One pipelined frame per key on one connection — delete is
        // idempotent, so a dropped connection replays safely.
        let reqs: Vec<Request> = keys
            .iter()
            .map(|key| Request::Delete { key: key.clone() })
            .collect();
        let pending = self.submit_batch(&reqs);
        Deferred::Polled {
            ready: pending.probe(),
            finish: Box::new(move || {
                Ok(pending
                    .wait()?
                    .into_iter()
                    .map(|resp| match resp {
                        Response::Deleted => Ok(()),
                        Response::NotFound => Err(KvError::NotFound),
                        other => Err(response_error(other)),
                    })
                    .collect())
            }),
        }
    }

    fn supports_submit(&self) -> bool {
        true
    }

    fn reactor_stats(&self) -> Option<ReactorStatsSnapshot> {
        Some(TcpClient::reactor_stats(self))
    }
}

/// Align multi-get replies back onto the requested keys, in order.
fn decode_get_responses(keys: &[Bytes], resps: Vec<Response>) -> KvResult<Vec<KvResult<Bytes>>> {
    let mut hits: HashMap<Bytes, Bytes> = HashMap::with_capacity(keys.len());
    for resp in resps {
        match resp {
            Response::End => {}
            Response::Value { key, value, .. } => {
                hits.insert(key, value);
            }
            Response::Values(items) => {
                for item in items {
                    hits.insert(item.key, item.value);
                }
            }
            other => return Err(response_error(other)),
        }
    }
    Ok(keys
        .iter()
        .map(|k| hits.get(k).cloned().ok_or(KvError::NotFound))
        .collect())
}

fn response_error(resp: Response) -> KvError {
    match resp {
        Response::ServerError(msg) | Response::ClientError(msg) => KvError::Protocol(msg),
        other => KvError::Protocol(format!("unexpected reply {other:?}")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::StoreConfig;

    fn spawn_server() -> KvServer {
        KvServer::spawn(Arc::new(Store::new(StoreConfig::default())), "127.0.0.1:0").unwrap()
    }

    #[test]
    fn tcp_round_trip() {
        let server = spawn_server();
        let client = TcpClient::connect(server.addr()).unwrap();
        client.set(b"k", Bytes::from_static(b"hello")).unwrap();
        assert_eq!(client.get(b"k").unwrap().as_ref(), b"hello");
        client.append(b"k", b" world").unwrap();
        assert_eq!(client.get(b"k").unwrap().as_ref(), b"hello world");
        client.delete(b"k").unwrap();
        assert!(matches!(client.get(b"k"), Err(KvError::NotFound)));
    }

    #[test]
    fn tcp_add_semantics() {
        let server = spawn_server();
        let client = TcpClient::connect(server.addr()).unwrap();
        client.add(b"k", Bytes::from_static(b"1")).unwrap();
        assert!(matches!(
            client.add(b"k", Bytes::from_static(b"2")),
            Err(KvError::Exists)
        ));
    }

    #[test]
    fn tcp_binary_values_with_crlf() {
        let server = spawn_server();
        let client = TcpClient::connect(server.addr()).unwrap();
        let payload = Bytes::from_static(b"line1\r\nline2\0bin");
        client.set(b"bin", payload.clone()).unwrap();
        assert_eq!(client.get(b"bin").unwrap(), payload);
    }

    #[test]
    fn tcp_large_value() {
        let server = spawn_server();
        let client = TcpClient::connect(server.addr()).unwrap();
        let payload = Bytes::from(vec![0xAB; 2 << 20]); // 2 MiB stripe-ish
        client.set(b"stripe", payload.clone()).unwrap();
        assert_eq!(client.get(b"stripe").unwrap(), payload);
    }

    #[test]
    fn tcp_stats_reflect_traffic() {
        let server = spawn_server();
        let client = TcpClient::connect(server.addr()).unwrap();
        client.set(b"k", Bytes::from_static(b"v")).unwrap();
        client.get(b"k").unwrap();
        let stats = client.stats().unwrap();
        let get = |name: &str| {
            stats
                .iter()
                .find(|(k, _)| k == name)
                .map(|(_, v)| v.clone())
                .unwrap_or_default()
        };
        assert_eq!(get("cmd_set"), "1");
        assert_eq!(get("cmd_get"), "1");
        assert_eq!(get("curr_items"), "1");
    }

    #[test]
    fn multiple_clients_share_server() {
        let server = spawn_server();
        let addr = server.addr();
        let threads: Vec<_> = (0..4)
            .map(|t| {
                std::thread::spawn(move || {
                    let client = TcpClient::connect(addr).unwrap();
                    for i in 0..50 {
                        let key = format!("t{t}k{i}");
                        client
                            .set(key.as_bytes(), Bytes::from(format!("v{i}")))
                            .unwrap();
                        assert_eq!(
                            client.get(key.as_bytes()).unwrap(),
                            Bytes::from(format!("v{i}"))
                        );
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(server.store().item_count(), 200);
    }

    #[test]
    fn tcp_gets_and_cas() {
        let server = spawn_server();
        let client = TcpClient::connect(server.addr()).unwrap();
        client.set(b"k", Bytes::from_static(b"v1")).unwrap();
        let (value, token) = client.gets(b"k").unwrap();
        assert_eq!(value.as_ref(), b"v1");
        client.cas(b"k", Bytes::from_static(b"v2"), token).unwrap();
        assert!(matches!(
            client.cas(b"k", Bytes::from_static(b"v3"), token),
            Err(KvError::CasMismatch)
        ));
        assert_eq!(client.get(b"k").unwrap().as_ref(), b"v2");
        assert!(matches!(client.gets(b"missing"), Err(KvError::NotFound)));
    }

    #[test]
    fn tcp_keys_extension_lists_everything() {
        let server = spawn_server();
        let client = TcpClient::connect(server.addr()).unwrap();
        for i in 0..10 {
            client
                .set(format!("key{i}").as_bytes(), Bytes::from_static(b"x"))
                .unwrap();
        }
        let mut keys = client.keys().unwrap();
        keys.sort();
        assert_eq!(keys.len(), 10);
        assert_eq!(keys[0], b"key0".to_vec());
        // Empty server lists nothing.
        client.call(&Request::FlushAll).unwrap();
        assert!(client.keys().unwrap().is_empty());
    }

    #[test]
    fn server_shutdown_is_idempotent() {
        let mut server = spawn_server();
        server.shutdown();
        server.shutdown();
    }

    #[test]
    fn tcp_multi_get_mixes_hits_and_misses() {
        let server = spawn_server();
        let client = TcpClient::connect(server.addr()).unwrap();
        client.set(b"a", Bytes::from_static(b"1")).unwrap();
        client.set(b"c", Bytes::from_static(b"3")).unwrap();
        let out = client
            .get_many(&[
                Bytes::from_static(b"a"),
                Bytes::from_static(b"b"),
                Bytes::from_static(b"c"),
            ])
            .unwrap();
        assert_eq!(out[0].as_ref().unwrap().as_ref(), b"1");
        assert!(matches!(out[1], Err(KvError::NotFound)));
        assert_eq!(out[2].as_ref().unwrap().as_ref(), b"3");
        // The whole batch travelled as ONE multi-key get frame.
        assert_eq!(server.store().stats().snapshot().mget_ops, 1);
    }

    #[test]
    fn tcp_multi_get_all_misses_and_empty() {
        let server = spawn_server();
        let client = TcpClient::connect(server.addr()).unwrap();
        assert!(client.get_many(&[]).unwrap().is_empty());
        let out = client
            .get_many(&[Bytes::from_static(b"x"), Bytes::from_static(b"y")])
            .unwrap();
        assert!(out.iter().all(|r| matches!(r, Err(KvError::NotFound))));
    }

    #[test]
    fn tcp_multi_get_large_batch_chunks_frames() {
        let server = spawn_server();
        let client = TcpClient::connect_with(
            server.addr(),
            PoolConfig {
                connections: 1,
                max_batch_keys: 16,
                ..PoolConfig::default()
            },
        )
        .unwrap();
        let keys: Vec<Bytes> = (0..100).map(|i| Bytes::from(format!("k{i}"))).collect();
        let items: Vec<(Bytes, Bytes)> = keys
            .iter()
            .map(|k| {
                (
                    k.clone(),
                    Bytes::from(format!("v-{}", String::from_utf8_lossy(k))),
                )
            })
            .collect();
        for r in client.set_many(&items).unwrap() {
            r.unwrap();
        }
        let out = client.get_many(&keys).unwrap();
        for (k, r) in keys.iter().zip(out) {
            assert_eq!(
                r.unwrap(),
                Bytes::from(format!("v-{}", String::from_utf8_lossy(k)))
            );
        }
        // 100 keys at 16 per frame = 7 pipelined multi-get batches.
        assert_eq!(server.store().stats().snapshot().mget_ops, 7);
    }

    #[test]
    fn tcp_delete_many_pipelines_and_reports_misses() {
        let server = spawn_server();
        let client = TcpClient::connect_with(
            server.addr(),
            PoolConfig {
                connections: 1,
                max_batch_keys: 64,
                ..PoolConfig::default()
            },
        )
        .unwrap();
        client.set(b"a", Bytes::from_static(b"1")).unwrap();
        client.set(b"b", Bytes::from_static(b"2")).unwrap();
        let out = client
            .delete_many(&[
                Bytes::from_static(b"a"),
                Bytes::from_static(b"missing"),
                Bytes::from_static(b"b"),
            ])
            .unwrap();
        assert!(out[0].is_ok());
        assert!(matches!(out[1], Err(KvError::NotFound)));
        assert!(out[2].is_ok());
        assert_eq!(server.store().item_count(), 0);
        // All three deletes travelled as pipelined frames on one socket.
        assert_eq!(server.store().stats().snapshot().delete_ops, 3);
    }

    #[test]
    fn tcp_set_many_pipelines_on_one_connection() {
        let server = spawn_server();
        let client = TcpClient::connect_with(
            server.addr(),
            PoolConfig {
                connections: 1,
                max_batch_keys: 64,
                ..PoolConfig::default()
            },
        )
        .unwrap();
        let items: Vec<(Bytes, Bytes)> = (0..50)
            .map(|i| {
                (
                    Bytes::from(format!("s{i}")),
                    Bytes::from(vec![i as u8; 100]),
                )
            })
            .collect();
        let results = client.set_many(&items).unwrap();
        assert_eq!(results.len(), 50);
        assert!(results.iter().all(|r| r.is_ok()));
        assert_eq!(server.store().item_count(), 50);
    }

    #[test]
    fn tcp_pool_shares_one_client_across_threads() {
        let server = spawn_server();
        let client = Arc::new(
            TcpClient::connect_with(
                server.addr(),
                PoolConfig {
                    connections: 4,
                    max_batch_keys: 64,
                    ..PoolConfig::default()
                },
            )
            .unwrap(),
        );
        assert_eq!(client.pool_size(), 4);
        let threads: Vec<_> = (0..8)
            .map(|t| {
                let client = Arc::clone(&client);
                std::thread::spawn(move || {
                    for i in 0..50 {
                        let key = format!("t{t}k{i}");
                        client
                            .set(key.as_bytes(), Bytes::from(format!("v{i}")))
                            .unwrap();
                        assert_eq!(
                            client.get(key.as_bytes()).unwrap(),
                            Bytes::from(format!("v{i}"))
                        );
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(server.store().item_count(), 400);
    }

    #[test]
    fn two_clients_share_one_reactor_and_deregister_independently() {
        let server_a = spawn_server();
        let server_b = spawn_server();
        let reactor = crate::reactor::ReactorHandle::new().unwrap();
        let a =
            TcpClient::connect_shared(server_a.addr(), PoolConfig::default(), &reactor).unwrap();
        let b =
            TcpClient::connect_shared(server_b.addr(), PoolConfig::default(), &reactor).unwrap();
        // Same loop: both clients' snapshots carry the same reactor id,
        // and the census covers both registrations.
        assert_eq!(a.reactor_stats().reactor_id, b.reactor_stats().reactor_id);
        let per_client = PoolConfig::default().connections;
        assert_eq!(a.reactor_stats().registered_connections, 2 * per_client);

        a.set(b"ka", Bytes::from_static(b"va")).unwrap();
        b.set(b"kb", Bytes::from_static(b"vb")).unwrap();
        assert_eq!(a.get(b"ka").unwrap(), Bytes::from_static(b"va"));
        assert_eq!(b.get(b"kb").unwrap(), Bytes::from_static(b"vb"));

        // Dropping one client releases only its own slots; the survivor
        // keeps working on the still-running shared loop.
        drop(a);
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while b.reactor_stats().registered_connections != per_client {
            assert!(
                std::time::Instant::now() < deadline,
                "deregistration never drained: {:?}",
                b.reactor_stats()
            );
            std::thread::sleep(Duration::from_millis(5));
        }
        assert_eq!(b.get(b"kb").unwrap(), Bytes::from_static(b"vb"));
    }

    #[test]
    fn tcp_gets_multi_returns_cas_per_value() {
        let server = spawn_server();
        let client = TcpClient::connect(server.addr()).unwrap();
        client.set(b"a", Bytes::from_static(b"1")).unwrap();
        client.set(b"b", Bytes::from_static(b"2")).unwrap();
        let resp = client
            .call(&Request::Gets {
                keys: vec![Bytes::from_static(b"a"), Bytes::from_static(b"b")],
            })
            .unwrap();
        let Response::Values(items) = resp else {
            panic!("expected Values, got {resp:?}");
        };
        assert_eq!(items.len(), 2);
        assert!(items.iter().all(|i| i.cas.is_some()));
    }
}
