//! TCP transport: a thread-per-connection server speaking the memcached
//! text protocol, and a matching client implementing [`KvClient`].
//!
//! This is what turns `memkv` into a real distributed deployment: one
//! [`KvServer`] per storage node, a [`TcpClient`] per server inside every
//! MemFS mount (the Libmemcached role). The `tcp_cluster` example runs a
//! whole striped file system over localhost sockets.

use std::io::{BufReader, BufWriter, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

use bytes::Bytes;
use parking_lot::Mutex;

use crate::client::KvClient;
use crate::error::{KvError, KvResult};
use crate::proto::{
    encode_request, encode_response, parse_request, stats_pairs, Parsed, Request, Response,
};
use crate::store::Store;

/// Version string reported to `version` commands.
pub const SERVER_VERSION: &str = "memkv/0.1 (memcached text protocol)";

/// A running TCP storage server.
pub struct KvServer {
    store: Arc<Store>,
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    accept_thread: Option<JoinHandle<()>>,
}

impl KvServer {
    /// Bind `addr` (e.g. `"127.0.0.1:0"` for an ephemeral port) and start
    /// serving `store` on a background accept loop.
    pub fn spawn(store: Arc<Store>, addr: impl ToSocketAddrs) -> KvResult<KvServer> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let accept_store = Arc::clone(&store);
        let accept_shutdown = Arc::clone(&shutdown);
        // A short accept timeout lets the loop observe the shutdown flag.
        listener.set_nonblocking(false)?;
        let accept_thread = std::thread::Builder::new()
            .name(format!("memkv-accept-{addr}"))
            .spawn(move || {
                accept_loop(listener, accept_store, accept_shutdown);
            })
            .expect("spawn accept thread");
        Ok(KvServer {
            store,
            addr,
            shutdown,
            accept_thread: Some(accept_thread),
        })
    }

    /// The address the server is listening on.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The store this server fronts.
    pub fn store(&self) -> &Arc<Store> {
        &self.store
    }

    /// Stop accepting connections and join the accept loop. In-flight
    /// connections finish their current request and then close.
    pub fn shutdown(&mut self) {
        if self.shutdown.swap(true, Ordering::SeqCst) {
            return;
        }
        // Unblock the accept call by connecting once.
        let _ = TcpStream::connect(self.addr);
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for KvServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn accept_loop(listener: TcpListener, store: Arc<Store>, shutdown: Arc<AtomicBool>) {
    loop {
        match listener.accept() {
            Ok((stream, _)) => {
                if shutdown.load(Ordering::SeqCst) {
                    return;
                }
                let store = Arc::clone(&store);
                let conn_shutdown = Arc::clone(&shutdown);
                let _ = std::thread::Builder::new()
                    .name("memkv-conn".into())
                    .spawn(move || {
                        let _ = serve_connection(stream, &store, &conn_shutdown);
                    });
            }
            Err(_) => {
                if shutdown.load(Ordering::SeqCst) {
                    return;
                }
            }
        }
    }
}

/// Serve one connection until `quit`, EOF, or a fatal error.
fn serve_connection(stream: TcpStream, store: &Store, shutdown: &AtomicBool) -> KvResult<()> {
    stream.set_nodelay(true)?;
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut writer = BufWriter::new(stream);
    let mut buf: Vec<u8> = Vec::with_capacity(4096);
    let mut chunk = [0u8; 64 * 1024];

    loop {
        if shutdown.load(Ordering::SeqCst) {
            return Ok(());
        }
        // Parse as many pipelined requests as the buffer holds.
        loop {
            match parse_request(&buf) {
                Ok(Parsed::Done(req, consumed)) => {
                    buf.drain(..consumed);
                    if matches!(req, Request::Quit) {
                        writer.flush()?;
                        return Ok(());
                    }
                    let resp = execute(store, req);
                    writer.write_all(&encode_response(&resp))?;
                }
                Ok(Parsed::NeedMore) => break,
                Err(e) => {
                    let resp = Response::ClientError(e.to_string());
                    writer.write_all(&encode_response(&resp))?;
                    writer.flush()?;
                    return Err(e);
                }
            }
        }
        writer.flush()?;
        let n = reader.read(&mut chunk)?;
        if n == 0 {
            return Ok(()); // peer closed
        }
        buf.extend_from_slice(&chunk[..n]);
    }
}

/// Apply one request to the store, mapping engine errors to protocol
/// responses exactly as memcached does.
pub fn execute(store: &Store, req: Request) -> Response {
    match req {
        Request::Set { key, value } => match store.set(&key, value) {
            Ok(()) => Response::Stored,
            Err(e) => storage_error(e),
        },
        Request::Add { key, value } => match store.add(&key, value) {
            Ok(()) => Response::Stored,
            Err(KvError::Exists) => Response::NotStored,
            Err(e) => storage_error(e),
        },
        Request::Append { key, value } => match store.append(&key, &value) {
            Ok(()) => Response::Stored,
            Err(KvError::NotFound) => Response::NotStored,
            Err(e) => storage_error(e),
        },
        Request::Cas { key, value, token } => match store.cas(&key, value, token) {
            Ok(()) => Response::Stored,
            Err(KvError::CasMismatch) => Response::Exists,
            Err(KvError::NotFound) => Response::NotFound,
            Err(e) => storage_error(e),
        },
        Request::Get { key } => match store.get(&key) {
            Ok(value) => Response::Value {
                key,
                value,
                cas: None,
            },
            Err(_) => Response::End,
        },
        Request::Gets { key } => match store.gets(&key) {
            Ok((value, cas)) => Response::Value {
                key,
                value,
                cas: Some(cas),
            },
            Err(_) => Response::End,
        },
        Request::Delete { key } => match store.delete(&key) {
            Ok(()) => Response::Deleted,
            Err(_) => Response::NotFound,
        },
        Request::FlushAll => {
            store.flush_all();
            Response::Ok
        }
        Request::Stats => Response::Stats(stats_pairs(&store.stats().snapshot())),
        Request::Keys => Response::KeyList(
            store.keys().into_iter().map(|k| k.into_vec()).collect(),
        ),
        Request::Version => Response::Version(SERVER_VERSION.to_string()),
        Request::Quit => Response::Ok, // handled by the connection loop
    }
}

fn storage_error(e: KvError) -> Response {
    match e {
        KvError::ValueTooLarge { .. } | KvError::OutOfMemory { .. } => {
            Response::ServerError(e.to_string())
        }
        other => Response::ClientError(other.to_string()),
    }
}

/// A blocking TCP client for one server, implementing [`KvClient`].
///
/// The connection is mutex-guarded so a single `TcpClient` can be shared by
/// the MemFS thread pools; for higher parallelism create several clients to
/// the same server (as Libmemcached does with its connection pools).
pub struct TcpClient {
    conn: Mutex<Conn>,
    addr: SocketAddr,
}

struct Conn {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
    buf: Vec<u8>,
}

impl TcpClient {
    /// Connect to a server.
    pub fn connect(addr: impl ToSocketAddrs) -> KvResult<TcpClient> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        let addr = stream.peer_addr()?;
        Ok(TcpClient {
            conn: Mutex::new(Conn {
                reader: BufReader::new(stream.try_clone()?),
                writer: BufWriter::new(stream),
                buf: Vec::with_capacity(4096),
            }),
            addr,
        })
    }

    /// Peer address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Issue a request and wait for its response.
    pub fn call(&self, req: &Request) -> KvResult<Response> {
        let mut conn = self.conn.lock();
        let wire = encode_request(req);
        conn.writer.write_all(&wire)?;
        conn.writer.flush()?;
        read_response(&mut conn)
    }

    /// Fetch server statistics.
    pub fn stats(&self) -> KvResult<Vec<(String, String)>> {
        match self.call(&Request::Stats)? {
            Response::Stats(pairs) => Ok(pairs),
            other => Err(KvError::Protocol(format!("unexpected reply {other:?}"))),
        }
    }

    /// List all keys on the server (the `keys` protocol extension).
    pub fn keys(&self) -> KvResult<Vec<Vec<u8>>> {
        match self.call(&Request::Keys)? {
            Response::KeyList(keys) => Ok(keys),
            // An empty key list is a bare `END`, indistinguishable on the
            // wire from a get miss.
            Response::End => Ok(Vec::new()),
            other => Err(KvError::Protocol(format!("unexpected reply {other:?}"))),
        }
    }

    /// Fetch a value together with its CAS token (`gets`).
    pub fn gets(&self, key: &[u8]) -> KvResult<(Bytes, u64)> {
        match self.call(&Request::Gets { key: key.to_vec() })? {
            Response::Value {
                value,
                cas: Some(token),
                ..
            } => Ok((value, token)),
            Response::End => Err(KvError::NotFound),
            other => Err(KvError::Protocol(format!("unexpected reply {other:?}"))),
        }
    }

    /// Compare-and-swap: replace `key` only if `token` is still current.
    pub fn cas(&self, key: &[u8], value: Bytes, token: u64) -> KvResult<()> {
        match self.call(&Request::Cas {
            key: key.to_vec(),
            value,
            token,
        })? {
            Response::Stored => Ok(()),
            Response::Exists => Err(KvError::CasMismatch),
            Response::NotFound => Err(KvError::NotFound),
            other => Err(KvError::Protocol(format!("unexpected reply {other:?}"))),
        }
    }
}

/// Parse one server response from the connection.
fn read_response(conn: &mut Conn) -> KvResult<Response> {
    let mut chunk = [0u8; 64 * 1024];
    loop {
        if let Some(resp) = try_parse_response(&mut conn.buf)? {
            return Ok(resp);
        }
        let n = conn.reader.read(&mut chunk)?;
        if n == 0 {
            return Err(KvError::Protocol("server closed connection".into()));
        }
        conn.buf.extend_from_slice(&chunk[..n]);
    }
}

/// Try to parse one response from the front of `buf`, consuming it.
fn try_parse_response(buf: &mut Vec<u8>) -> KvResult<Option<Response>> {
    let Some(line_end) = buf.windows(2).position(|w| w == b"\r\n") else {
        return Ok(None);
    };
    let line = buf[..line_end].to_vec();
    let consume_line = line_end + 2;

    let simple = |buf: &mut Vec<u8>, resp: Response| {
        buf.drain(..consume_line);
        Ok(Some(resp))
    };

    if line == b"STORED" {
        return simple(buf, Response::Stored);
    }
    if line == b"NOT_STORED" {
        return simple(buf, Response::NotStored);
    }
    if line == b"EXISTS" {
        return simple(buf, Response::Exists);
    }
    if line == b"NOT_FOUND" {
        return simple(buf, Response::NotFound);
    }
    if line == b"DELETED" {
        return simple(buf, Response::Deleted);
    }
    if line == b"OK" {
        return simple(buf, Response::Ok);
    }
    if line == b"END" {
        return simple(buf, Response::End);
    }
    if let Some(v) = line.strip_prefix(b"VERSION ") {
        let resp = Response::Version(String::from_utf8_lossy(v).into_owned());
        return simple(buf, resp);
    }
    if let Some(msg) = line.strip_prefix(b"SERVER_ERROR ") {
        let resp = Response::ServerError(String::from_utf8_lossy(msg).into_owned());
        return simple(buf, resp);
    }
    if let Some(msg) = line.strip_prefix(b"CLIENT_ERROR ") {
        let resp = Response::ClientError(String::from_utf8_lossy(msg).into_owned());
        return simple(buf, resp);
    }
    if line.starts_with(b"KEY ") {
        // Collect KEY lines until END.
        let mut keys = Vec::new();
        let mut pos = 0usize;
        loop {
            let rest = &buf[pos..];
            let Some(le) = rest.windows(2).position(|w| w == b"\r\n") else {
                return Ok(None);
            };
            let l = &rest[..le];
            pos += le + 2;
            if l == b"END" {
                buf.drain(..pos);
                return Ok(Some(Response::KeyList(keys)));
            }
            let Some(k) = l.strip_prefix(b"KEY ") else {
                return Err(KvError::Protocol("malformed key list".into()));
            };
            keys.push(k.to_vec());
        }
    }
    if line.starts_with(b"STAT ") {
        // Collect STAT lines until END.
        let mut pairs = Vec::new();
        let mut pos = 0usize;
        loop {
            let rest = &buf[pos..];
            let Some(le) = rest.windows(2).position(|w| w == b"\r\n") else {
                return Ok(None);
            };
            let l = &rest[..le];
            pos += le + 2;
            if l == b"END" {
                buf.drain(..pos);
                return Ok(Some(Response::Stats(pairs)));
            }
            let Some(kv) = l.strip_prefix(b"STAT ") else {
                return Err(KvError::Protocol("malformed stats block".into()));
            };
            let text = String::from_utf8_lossy(kv);
            let mut it = text.splitn(2, ' ');
            let k = it.next().unwrap_or_default().to_string();
            let v = it.next().unwrap_or_default().to_string();
            pairs.push((k, v));
        }
    }
    if let Some(rest) = line.strip_prefix(b"VALUE ") {
        // VALUE <key> <flags> <bytes> [cas]\r\n<data>\r\nEND\r\n
        let text = String::from_utf8_lossy(rest).into_owned();
        let toks: Vec<&str> = text.split(' ').collect();
        if toks.len() < 3 {
            return Err(KvError::Protocol("malformed VALUE line".into()));
        }
        let key = toks[0].as_bytes().to_vec();
        let nbytes: usize = toks[2]
            .parse()
            .map_err(|_| KvError::Protocol("bad VALUE byte count".into()))?;
        let cas = if toks.len() >= 4 {
            Some(
                toks[3]
                    .parse()
                    .map_err(|_| KvError::Protocol("bad VALUE cas".into()))?,
            )
        } else {
            None
        };
        let need = consume_line + nbytes + 2 + 5; // data + CRLF + "END\r\n"
        if buf.len() < need {
            return Ok(None);
        }
        let value = Bytes::copy_from_slice(&buf[consume_line..consume_line + nbytes]);
        if &buf[consume_line + nbytes..consume_line + nbytes + 2] != b"\r\n"
            || &buf[consume_line + nbytes + 2..need] != b"END\r\n"
        {
            return Err(KvError::Protocol("malformed VALUE framing".into()));
        }
        buf.drain(..need);
        return Ok(Some(Response::Value { key, value, cas }));
    }
    Err(KvError::Protocol(format!(
        "unrecognized response line {:?}",
        String::from_utf8_lossy(&line)
    )))
}

impl KvClient for TcpClient {
    fn scan_keys(&self) -> KvResult<Vec<Vec<u8>>> {
        self.keys()
    }

    fn set(&self, key: &[u8], value: Bytes) -> KvResult<()> {
        match self.call(&Request::Set {
            key: key.to_vec(),
            value,
        })? {
            Response::Stored => Ok(()),
            other => Err(response_error(other)),
        }
    }

    fn add(&self, key: &[u8], value: Bytes) -> KvResult<()> {
        match self.call(&Request::Add {
            key: key.to_vec(),
            value,
        })? {
            Response::Stored => Ok(()),
            Response::NotStored => Err(KvError::Exists),
            other => Err(response_error(other)),
        }
    }

    fn get(&self, key: &[u8]) -> KvResult<Bytes> {
        match self.call(&Request::Get { key: key.to_vec() })? {
            Response::Value { value, .. } => Ok(value),
            Response::End => Err(KvError::NotFound),
            other => Err(response_error(other)),
        }
    }

    fn append(&self, key: &[u8], suffix: &[u8]) -> KvResult<()> {
        match self.call(&Request::Append {
            key: key.to_vec(),
            value: Bytes::copy_from_slice(suffix),
        })? {
            Response::Stored => Ok(()),
            Response::NotStored => Err(KvError::NotFound),
            other => Err(response_error(other)),
        }
    }

    fn delete(&self, key: &[u8]) -> KvResult<()> {
        match self.call(&Request::Delete { key: key.to_vec() })? {
            Response::Deleted => Ok(()),
            Response::NotFound => Err(KvError::NotFound),
            other => Err(response_error(other)),
        }
    }
}

fn response_error(resp: Response) -> KvError {
    match resp {
        Response::ServerError(msg) | Response::ClientError(msg) => KvError::Protocol(msg),
        other => KvError::Protocol(format!("unexpected reply {other:?}")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::StoreConfig;

    fn spawn_server() -> KvServer {
        KvServer::spawn(
            Arc::new(Store::new(StoreConfig::default())),
            "127.0.0.1:0",
        )
        .unwrap()
    }

    #[test]
    fn tcp_round_trip() {
        let server = spawn_server();
        let client = TcpClient::connect(server.addr()).unwrap();
        client.set(b"k", Bytes::from_static(b"hello")).unwrap();
        assert_eq!(client.get(b"k").unwrap().as_ref(), b"hello");
        client.append(b"k", b" world").unwrap();
        assert_eq!(client.get(b"k").unwrap().as_ref(), b"hello world");
        client.delete(b"k").unwrap();
        assert!(matches!(client.get(b"k"), Err(KvError::NotFound)));
    }

    #[test]
    fn tcp_add_semantics() {
        let server = spawn_server();
        let client = TcpClient::connect(server.addr()).unwrap();
        client.add(b"k", Bytes::from_static(b"1")).unwrap();
        assert!(matches!(
            client.add(b"k", Bytes::from_static(b"2")),
            Err(KvError::Exists)
        ));
    }

    #[test]
    fn tcp_binary_values_with_crlf() {
        let server = spawn_server();
        let client = TcpClient::connect(server.addr()).unwrap();
        let payload = Bytes::from_static(b"line1\r\nline2\0bin");
        client.set(b"bin", payload.clone()).unwrap();
        assert_eq!(client.get(b"bin").unwrap(), payload);
    }

    #[test]
    fn tcp_large_value() {
        let server = spawn_server();
        let client = TcpClient::connect(server.addr()).unwrap();
        let payload = Bytes::from(vec![0xAB; 2 << 20]); // 2 MiB stripe-ish
        client.set(b"stripe", payload.clone()).unwrap();
        assert_eq!(client.get(b"stripe").unwrap(), payload);
    }

    #[test]
    fn tcp_stats_reflect_traffic() {
        let server = spawn_server();
        let client = TcpClient::connect(server.addr()).unwrap();
        client.set(b"k", Bytes::from_static(b"v")).unwrap();
        client.get(b"k").unwrap();
        let stats = client.stats().unwrap();
        let get = |name: &str| {
            stats
                .iter()
                .find(|(k, _)| k == name)
                .map(|(_, v)| v.clone())
                .unwrap_or_default()
        };
        assert_eq!(get("cmd_set"), "1");
        assert_eq!(get("cmd_get"), "1");
        assert_eq!(get("curr_items"), "1");
    }

    #[test]
    fn multiple_clients_share_server() {
        let server = spawn_server();
        let addr = server.addr();
        let threads: Vec<_> = (0..4)
            .map(|t| {
                std::thread::spawn(move || {
                    let client = TcpClient::connect(addr).unwrap();
                    for i in 0..50 {
                        let key = format!("t{t}k{i}");
                        client
                            .set(key.as_bytes(), Bytes::from(format!("v{i}")))
                            .unwrap();
                        assert_eq!(
                            client.get(key.as_bytes()).unwrap(),
                            Bytes::from(format!("v{i}"))
                        );
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(server.store().item_count(), 200);
    }

    #[test]
    fn tcp_gets_and_cas() {
        let server = spawn_server();
        let client = TcpClient::connect(server.addr()).unwrap();
        client.set(b"k", Bytes::from_static(b"v1")).unwrap();
        let (value, token) = client.gets(b"k").unwrap();
        assert_eq!(value.as_ref(), b"v1");
        client.cas(b"k", Bytes::from_static(b"v2"), token).unwrap();
        assert!(matches!(
            client.cas(b"k", Bytes::from_static(b"v3"), token),
            Err(KvError::CasMismatch)
        ));
        assert_eq!(client.get(b"k").unwrap().as_ref(), b"v2");
        assert!(matches!(client.gets(b"missing"), Err(KvError::NotFound)));
    }

    #[test]
    fn tcp_keys_extension_lists_everything() {
        let server = spawn_server();
        let client = TcpClient::connect(server.addr()).unwrap();
        for i in 0..10 {
            client
                .set(format!("key{i}").as_bytes(), Bytes::from_static(b"x"))
                .unwrap();
        }
        let mut keys = client.keys().unwrap();
        keys.sort();
        assert_eq!(keys.len(), 10);
        assert_eq!(keys[0], b"key0".to_vec());
        // Empty server lists nothing.
        client.call(&Request::FlushAll).unwrap();
        assert!(client.keys().unwrap().is_empty());
    }

    #[test]
    fn server_shutdown_is_idempotent() {
        let mut server = spawn_server();
        server.shutdown();
        server.shutdown();
    }
}
