//! Evented transport core: one epoll reactor thread per [`TcpClient`]
//! drives every connection to that server without blocking callers on
//! socket I/O.
//!
//! The blocking client parked one OS thread per in-flight call — a mount
//! fanning out to `n` servers needed `n` engine workers just to keep the
//! sockets busy, so aggregate bandwidth plateaued at the worker count
//! instead of the server count (the paper's full-bisection claim, §3.2,
//! needs *every* server streaming concurrently). Here the submit path only
//! encodes the request and hands it to the reactor; the caller parks on a
//! condvar that the reactor signals once the pipelined responses are in.
//! One caller thread can therefore keep any number of servers saturated.
//!
//! Semantics carried over from the blocking client:
//!
//! * **Pipelining** — all frames of a batch are queued on one connection
//!   and answered in order; concurrent batches interleave at frame
//!   granularity on the same socket without head-of-line blocking between
//!   connections.
//! * **Idempotent-only retry** — a batch that dies with the connection is
//!   replayed once after a reconnect, but only if every request in it is
//!   idempotent (`add`/`append`/`cas` batches surface the I/O error).
//! * **Reconnect** — a dead connection is reopened in the background; the
//!   pool slot recovers even when the failing batch cannot be retried.
//!
//! New here: a **deadline** per call ([`crate::net::PoolConfig::timeout`]).
//! A server that accepts and then never answers used to wedge the calling
//! worker forever; now the reactor times the call out, severs the
//! connection (the FIFO response alignment is unrecoverable once a reply
//! is abandoned), and the caller gets [`KvError::Timeout`].

use std::collections::VecDeque;
use std::io::{self, IoSlice, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::os::unix::io::AsRawFd;
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use bytes::Bytes;
use parking_lot::{Condvar, Mutex};

use crate::error::{KvError, KvResult};
use crate::net::{try_parse_response, ParseStep};
use crate::proto::Response;

/// epoll token reserved for the wake eventfd.
const WAKE_TOKEN: u64 = u64::MAX;
/// Max iovec entries per `writev` — matches the kernel's UIO_FASTIOV.
const MAX_IOV: usize = 8;
/// Read granularity for response bytes.
const READ_CHUNK: usize = 64 * 1024;

/// Thin RAII wrapper over an epoll instance plus an eventfd used to wake
/// the reactor from other threads (submitters, reconnect helpers).
struct Poller {
    epfd: libc::c_int,
    wakefd: libc::c_int,
}

impl Poller {
    fn new() -> io::Result<Poller> {
        let epfd = unsafe { libc::epoll_create1(libc::EPOLL_CLOEXEC) };
        if epfd < 0 {
            return Err(io::Error::last_os_error());
        }
        let wakefd = unsafe { libc::eventfd(0, libc::EFD_CLOEXEC | libc::EFD_NONBLOCK) };
        if wakefd < 0 {
            let err = io::Error::last_os_error();
            unsafe { libc::close(epfd) };
            return Err(err);
        }
        let poller = Poller { epfd, wakefd };
        poller.ctl(libc::EPOLL_CTL_ADD, wakefd, WAKE_TOKEN, libc::EPOLLIN)?;
        Ok(poller)
    }

    fn ctl(&self, op: libc::c_int, fd: libc::c_int, token: u64, interest: u32) -> io::Result<()> {
        let mut ev = libc::epoll_event {
            events: interest,
            u64: token,
        };
        let rc = unsafe { libc::epoll_ctl(self.epfd, op, fd, &mut ev) };
        if rc < 0 {
            Err(io::Error::last_os_error())
        } else {
            Ok(())
        }
    }

    fn add(&self, fd: libc::c_int, token: u64, interest: u32) -> io::Result<()> {
        self.ctl(libc::EPOLL_CTL_ADD, fd, token, interest)
    }

    fn modify(&self, fd: libc::c_int, token: u64, interest: u32) -> io::Result<()> {
        self.ctl(libc::EPOLL_CTL_MOD, fd, token, interest)
    }

    fn delete(&self, fd: libc::c_int) -> io::Result<()> {
        self.ctl(libc::EPOLL_CTL_DEL, fd, 0, 0)
    }

    /// Block until readiness or `timeout` (`None` = forever), appending
    /// `(token, events)` pairs to `out`.
    fn wait(&self, out: &mut Vec<(u64, u32)>, timeout: Option<Duration>) -> io::Result<()> {
        out.clear();
        let ms: libc::c_int = match timeout {
            None => -1,
            Some(d) => {
                // Round up so a deadline 0.4 ms away does not spin.
                let ms = d.as_millis();
                let ms = if Duration::from_millis(ms as u64) < d {
                    ms + 1
                } else {
                    ms
                };
                ms.min(i32::MAX as u128) as libc::c_int
            }
        };
        let mut events = [libc::epoll_event { events: 0, u64: 0 }; 64];
        loop {
            let n = unsafe { libc::epoll_wait(self.epfd, events.as_mut_ptr(), 64, ms) };
            if n < 0 {
                let err = io::Error::last_os_error();
                if err.kind() == io::ErrorKind::Interrupted {
                    continue;
                }
                return Err(err);
            }
            for ev in &events[..n as usize] {
                out.push(({ ev.u64 }, { ev.events }));
            }
            return Ok(());
        }
    }

    /// Wake a blocked [`Poller::wait`] from another thread.
    fn notify(&self) {
        let one: u64 = 1;
        let _ = unsafe { libc::write(self.wakefd, (&one as *const u64).cast(), 8) };
    }

    /// Reset the wake counter so level-triggered polling goes quiet.
    fn drain_wake(&self) {
        let mut count: u64 = 0;
        let _ = unsafe { libc::read(self.wakefd, (&mut count as *mut u64).cast(), 8) };
    }
}

impl Drop for Poller {
    fn drop(&mut self) {
        unsafe {
            libc::close(self.wakefd);
            libc::close(self.epfd);
        }
    }
}

/// Completion slot shared between a submitter and the reactor.
struct CallShared {
    state: Mutex<Option<KvResult<Vec<Response>>>>,
    cv: Condvar,
}

/// Handle to one in-flight pipelined batch. [`PendingExchange::wait`]
/// parks the caller until the reactor delivers the responses (or the
/// failure) — this is the completion half of the split submit/completion
/// path.
pub(crate) struct PendingExchange {
    done: Arc<CallShared>,
}

impl PendingExchange {
    pub(crate) fn wait(self) -> KvResult<Vec<Response>> {
        let mut state = self.done.state.lock();
        loop {
            if let Some(result) = state.take() {
                return result;
            }
            self.done.cv.wait(&mut state);
        }
    }
}

/// One pipelined batch owned by the reactor: pre-encoded wire segments, a
/// write cursor, and the responses collected so far.
struct Exchange {
    /// Encoded frames. Headers are coalesced; stripe-sized payloads ride
    /// as their own zero-copy segments. Never contains an empty segment.
    segments: Vec<Bytes>,
    /// Write cursor: next segment index / offset within it.
    seg: usize,
    off: usize,
    /// Responses expected (one per request in the batch).
    expect: usize,
    got: Vec<Response>,
    /// Whether the whole batch may be replayed after a connection drop.
    idempotent: bool,
    /// A batch is replayed at most once.
    retried: bool,
    deadline: Instant,
    done: Arc<CallShared>,
}

impl Exchange {
    fn deliver(done: &CallShared, result: KvResult<Vec<Response>>) {
        *done.state.lock() = Some(result);
        done.cv.notify_all();
    }

    fn finish_ok(self) {
        let Exchange { got, done, .. } = self;
        Self::deliver(&done, Ok(got));
    }

    fn finish_err(self, err: KvError) {
        Self::deliver(&self.done, Err(err));
    }

    /// Bytes of this batch still unwritten?
    fn unwritten(&self) -> bool {
        self.seg < self.segments.len()
    }
}

enum Command {
    Submit {
        conn: usize,
        call: Exchange,
    },
    /// A background connect finished. `generation` pins the attempt to the
    /// connection incarnation that requested it; stale results are dropped.
    Reconnected {
        conn: usize,
        generation: u64,
        result: io::Result<TcpStream>,
    },
}

struct Inbox {
    commands: Vec<Command>,
    shutdown: bool,
}

struct Shared {
    poller: Poller,
    inbox: Mutex<Inbox>,
}

/// Per-connection state, owned exclusively by the reactor thread.
struct ConnState {
    /// `None` while disconnected (dead or reconnecting).
    stream: Option<TcpStream>,
    /// Bumped every time the stream is torn down; fences stale reconnects.
    generation: u64,
    /// In-flight batches in submission order. The wire answers in the same
    /// order, so the front batch owns the next parsed response.
    queue: VecDeque<Exchange>,
    /// Accumulated unparsed response bytes.
    inbuf: Vec<u8>,
    /// Whether EPOLLOUT is currently registered.
    want_write: bool,
    /// A background connect attempt is outstanding.
    reconnecting: bool,
}

impl ConnState {
    fn new() -> ConnState {
        ConnState {
            stream: None,
            generation: 0,
            queue: VecDeque::new(),
            inbuf: Vec::with_capacity(4096),
            want_write: false,
            reconnecting: false,
        }
    }
}

/// The per-client reactor: owns the poller thread driving every
/// connection to one server.
pub(crate) struct Reactor {
    shared: Arc<Shared>,
    timeout: Duration,
    thread: Option<JoinHandle<()>>,
}

impl Reactor {
    /// Take ownership of pre-connected `streams` (they are switched to
    /// non-blocking mode here) and start the event loop.
    pub(crate) fn spawn(
        addr: SocketAddr,
        streams: Vec<TcpStream>,
        timeout: Duration,
    ) -> KvResult<Reactor> {
        let poller = Poller::new()?;
        let mut conns = Vec::with_capacity(streams.len());
        for (idx, stream) in streams.into_iter().enumerate() {
            stream.set_nonblocking(true)?;
            poller.add(
                stream.as_raw_fd(),
                idx as u64,
                libc::EPOLLIN | libc::EPOLLRDHUP,
            )?;
            let mut conn = ConnState::new();
            conn.stream = Some(stream);
            conns.push(conn);
        }
        let shared = Arc::new(Shared {
            poller,
            inbox: Mutex::new(Inbox {
                commands: Vec::new(),
                shutdown: false,
            }),
        });
        let event_loop = EventLoop {
            shared: Arc::clone(&shared),
            conns,
            addr,
            timeout,
        };
        let thread = std::thread::Builder::new()
            .name(format!("memkv-reactor-{addr}"))
            .spawn(move || event_loop.run())
            .map_err(KvError::Io)?;
        Ok(Reactor {
            shared,
            timeout,
            thread: Some(thread),
        })
    }

    /// Queue one pre-encoded batch on connection `conn` and return the
    /// completion handle. Never blocks on the network.
    pub(crate) fn submit(
        &self,
        conn: usize,
        segments: Vec<Bytes>,
        expect: usize,
        idempotent: bool,
    ) -> PendingExchange {
        let done = Arc::new(CallShared {
            state: Mutex::new(None),
            cv: Condvar::new(),
        });
        if expect == 0 {
            Exchange::deliver(&done, Ok(Vec::new()));
            return PendingExchange { done };
        }
        debug_assert!(segments.iter().all(|s| !s.is_empty()));
        let call = Exchange {
            segments,
            seg: 0,
            off: 0,
            expect,
            got: Vec::with_capacity(expect),
            idempotent,
            retried: false,
            deadline: Instant::now() + self.timeout,
            done: Arc::clone(&done),
        };
        self.shared
            .inbox
            .lock()
            .commands
            .push(Command::Submit { conn, call });
        self.shared.poller.notify();
        PendingExchange { done }
    }
}

impl Drop for Reactor {
    fn drop(&mut self) {
        self.shared.inbox.lock().shutdown = true;
        self.shared.poller.notify();
        if let Some(thread) = self.thread.take() {
            let _ = thread.join();
        }
    }
}

/// Duplicate an `io::Error` (needed to fan one failure out to a whole
/// queue of batches).
fn dup_io(err: &io::Error) -> io::Error {
    io::Error::new(err.kind(), err.to_string())
}

struct EventLoop {
    shared: Arc<Shared>,
    conns: Vec<ConnState>,
    addr: SocketAddr,
    timeout: Duration,
}

impl EventLoop {
    fn run(mut self) {
        let mut events: Vec<(u64, u32)> = Vec::new();
        loop {
            let (commands, shutdown) = {
                let mut inbox = self.shared.inbox.lock();
                (std::mem::take(&mut inbox.commands), inbox.shutdown)
            };
            for cmd in commands {
                self.handle_command(cmd);
            }
            if shutdown {
                self.abort_all();
                return;
            }
            self.expire_deadlines();
            let poll_timeout = self
                .next_deadline()
                .map(|d| d.saturating_duration_since(Instant::now()));
            if self.shared.poller.wait(&mut events, poll_timeout).is_err() {
                // Transient poll failure: retry; deadlines still advance.
                continue;
            }
            for &(token, ev) in events.iter() {
                if token == WAKE_TOKEN {
                    self.shared.poller.drain_wake();
                    continue;
                }
                let idx = token as usize;
                if idx >= self.conns.len() {
                    continue;
                }
                if ev & (libc::EPOLLERR | libc::EPOLLHUP) != 0 {
                    self.kill_conn(
                        idx,
                        io::Error::new(io::ErrorKind::ConnectionReset, "connection error"),
                    );
                    continue;
                }
                if ev & (libc::EPOLLIN | libc::EPOLLRDHUP) != 0 {
                    self.handle_readable(idx);
                }
                if ev & libc::EPOLLOUT != 0 {
                    self.flush_conn(idx);
                }
            }
        }
    }

    fn handle_command(&mut self, cmd: Command) {
        match cmd {
            Command::Submit { conn, call } => {
                self.conns[conn].queue.push_back(call);
                if self.conns[conn].stream.is_none() {
                    // Lazy reconnect: a connection that died idle (server
                    // restart between calls) comes back on first use.
                    self.start_reconnect(conn);
                } else {
                    self.flush_conn(conn);
                }
            }
            Command::Reconnected {
                conn,
                generation,
                result,
            } => {
                self.conns[conn].reconnecting = false;
                if generation != self.conns[conn].generation {
                    // The connection was torn down again after this attempt
                    // started; its queue (if any) already owns a fresh one.
                    if self.conns[conn].stream.is_none() && !self.conns[conn].queue.is_empty() {
                        self.start_reconnect(conn);
                    }
                    return;
                }
                match result {
                    Ok(stream) => match self.adopt_stream(conn, stream) {
                        Ok(()) => self.flush_conn(conn),
                        Err(err) => self.fail_queue(conn, err),
                    },
                    // Reconnect failed: the retry budget is spent, surface
                    // the transport error to every queued batch.
                    Err(err) => self.fail_queue(conn, err),
                }
            }
        }
    }

    fn adopt_stream(&mut self, idx: usize, stream: TcpStream) -> io::Result<()> {
        stream.set_nodelay(true)?;
        stream.set_nonblocking(true)?;
        self.shared.poller.add(
            stream.as_raw_fd(),
            idx as u64,
            libc::EPOLLIN | libc::EPOLLRDHUP,
        )?;
        let conn = &mut self.conns[idx];
        conn.stream = Some(stream);
        conn.want_write = false;
        conn.inbuf.clear();
        Ok(())
    }

    fn start_reconnect(&mut self, idx: usize) {
        let conn = &mut self.conns[idx];
        if conn.reconnecting {
            return;
        }
        conn.reconnecting = true;
        let generation = conn.generation;
        let shared = Arc::clone(&self.shared);
        let addr = self.addr;
        let connect_timeout = self.timeout.max(Duration::from_millis(50));
        let spawned = std::thread::Builder::new()
            .name("memkv-reconnect".into())
            .spawn(move || {
                let result = TcpStream::connect_timeout(&addr, connect_timeout);
                shared.inbox.lock().commands.push(Command::Reconnected {
                    conn: idx,
                    generation,
                    result,
                });
                shared.poller.notify();
            });
        if spawned.is_err() {
            self.conns[idx].reconnecting = false;
            self.fail_queue(idx, io::Error::other("failed to spawn reconnect thread"));
        }
    }

    /// Tear the stream down without touching the queue.
    fn close_stream(&mut self, idx: usize) {
        let conn = &mut self.conns[idx];
        if let Some(stream) = conn.stream.take() {
            let _ = self.shared.poller.delete(stream.as_raw_fd());
            drop(stream);
        }
        conn.generation += 1;
        conn.inbuf.clear();
        conn.want_write = false;
    }

    /// The connection failed: idempotent batches that have not burned
    /// their replay yet stay queued (with reset cursors) for the
    /// reconnect; everything else completes with the I/O error.
    fn kill_conn(&mut self, idx: usize, err: io::Error) {
        self.close_stream(idx);
        let conn = &mut self.conns[idx];
        let mut keep = VecDeque::new();
        while let Some(mut ex) = conn.queue.pop_front() {
            if ex.idempotent && !ex.retried {
                ex.retried = true;
                ex.seg = 0;
                ex.off = 0;
                ex.got.clear();
                keep.push_back(ex);
            } else {
                ex.finish_err(KvError::Io(dup_io(&err)));
            }
        }
        conn.queue = keep;
        if !self.conns[idx].queue.is_empty() {
            self.start_reconnect(idx);
        }
    }

    /// Complete every queued batch with `err` (terminal — no retry).
    fn fail_queue(&mut self, idx: usize, err: io::Error) {
        self.close_stream(idx);
        while let Some(ex) = self.conns[idx].queue.pop_front() {
            ex.finish_err(KvError::Io(dup_io(&err)));
        }
    }

    fn handle_readable(&mut self, idx: usize) {
        let mut chunk = [0u8; READ_CHUNK];
        loop {
            let conn = &mut self.conns[idx];
            let Some(stream) = conn.stream.as_ref() else {
                return;
            };
            let mut reader = stream;
            match reader.read(&mut chunk) {
                Ok(0) => {
                    if conn.queue.is_empty() {
                        // Idle EOF: the server went away between calls.
                        // Close quietly; the next submit reconnects.
                        self.close_stream(idx);
                    } else {
                        self.kill_conn(
                            idx,
                            io::Error::new(
                                io::ErrorKind::UnexpectedEof,
                                "server closed connection",
                            ),
                        );
                    }
                    return;
                }
                Ok(n) => {
                    conn.inbuf.extend_from_slice(&chunk[..n]);
                    if let Err(err) = self.drain_inbuf(idx) {
                        self.poison_conn(idx, err);
                        return;
                    }
                }
                Err(err) if err.kind() == io::ErrorKind::WouldBlock => return,
                Err(err) if err.kind() == io::ErrorKind::Interrupted => continue,
                Err(err) => {
                    self.kill_conn(idx, err);
                    return;
                }
            }
        }
    }

    /// Parse as many complete responses as the buffer holds, completing
    /// front-of-queue batches as their counts fill.
    fn drain_inbuf(&mut self, idx: usize) -> KvResult<()> {
        loop {
            let conn = &mut self.conns[idx];
            if conn.inbuf.is_empty() {
                return Ok(());
            }
            if conn.queue.is_empty() {
                return Err(KvError::Protocol(
                    "unsolicited response bytes from server".into(),
                ));
            }
            match try_parse_response(&mut conn.inbuf)? {
                ParseStep::More(hint) => {
                    // A `VALUE` header announces its payload length; grow
                    // the buffer once instead of per 64 KiB read.
                    conn.inbuf.reserve(hint);
                    return Ok(());
                }
                ParseStep::Done(resp) => {
                    let front = conn.queue.front_mut().expect("queue checked non-empty");
                    front.got.push(resp);
                    if front.got.len() == front.expect {
                        let ex = conn.queue.pop_front().expect("front exists");
                        ex.finish_ok();
                    }
                }
            }
        }
    }

    /// A protocol-level breach: the front batch gets the parse error, the
    /// connection is unusable (framing lost) so the rest rides the normal
    /// kill path.
    fn poison_conn(&mut self, idx: usize, err: KvError) {
        if let Some(front) = self.conns[idx].queue.pop_front() {
            front.finish_err(err);
        }
        self.kill_conn(
            idx,
            io::Error::new(
                io::ErrorKind::InvalidData,
                "connection closed after protocol error",
            ),
        );
    }

    fn flush_conn(&mut self, idx: usize) {
        match write_queued(&mut self.conns[idx]) {
            Ok(()) => self.update_write_interest(idx),
            Err(err) => self.kill_conn(idx, err),
        }
    }

    /// Keep EPOLLOUT registered exactly while unwritten bytes exist
    /// (level-triggered — leaving it on would spin the reactor).
    fn update_write_interest(&mut self, idx: usize) {
        let conn = &mut self.conns[idx];
        let Some(stream) = conn.stream.as_ref() else {
            return;
        };
        let want = conn.queue.iter().any(Exchange::unwritten);
        if want != conn.want_write {
            let mut interest = libc::EPOLLIN | libc::EPOLLRDHUP;
            if want {
                interest |= libc::EPOLLOUT;
            }
            if self
                .shared
                .poller
                .modify(stream.as_raw_fd(), idx as u64, interest)
                .is_ok()
            {
                conn.want_write = want;
            }
        }
    }

    /// Time out the front batch of any connection whose deadline passed.
    /// The front has the earliest deadline (FIFO submission, uniform
    /// timeout); abandoning its responses desynchronizes the FIFO, so the
    /// connection dies with it and later batches retry or fail.
    fn expire_deadlines(&mut self) {
        let now = Instant::now();
        for idx in 0..self.conns.len() {
            let expired = self.conns[idx]
                .queue
                .front()
                .is_some_and(|ex| ex.deadline <= now);
            if expired {
                let front = self.conns[idx].queue.pop_front().expect("front expired");
                front.finish_err(KvError::Timeout {
                    after: self.timeout,
                });
                self.kill_conn(
                    idx,
                    io::Error::new(
                        io::ErrorKind::TimedOut,
                        "connection abandoned after request timeout",
                    ),
                );
            }
        }
    }

    fn next_deadline(&self) -> Option<Instant> {
        self.conns
            .iter()
            .filter_map(|c| c.queue.front().map(|ex| ex.deadline))
            .min()
    }

    fn abort_all(&mut self) {
        for idx in 0..self.conns.len() {
            self.close_stream(idx);
            while let Some(ex) = self.conns[idx].queue.pop_front() {
                ex.finish_err(KvError::Io(io::Error::new(
                    io::ErrorKind::NotConnected,
                    "client shut down",
                )));
            }
        }
    }
}

/// Write queued batches in FIFO order with vectored non-blocking writes,
/// stopping at `WouldBlock`. Zero-copy: iovecs point straight into the
/// pre-encoded segments (stripe payloads included).
fn write_queued(conn: &mut ConnState) -> io::Result<()> {
    loop {
        let Some(mut writer) = conn.stream.as_ref() else {
            return Ok(());
        };
        let mut slices: Vec<IoSlice<'_>> = Vec::with_capacity(MAX_IOV);
        for ex in conn.queue.iter() {
            let mut off = ex.off;
            for seg in ex.segments.iter().skip(ex.seg) {
                if slices.len() == MAX_IOV {
                    break;
                }
                if off < seg.len() {
                    slices.push(IoSlice::new(&seg[off..]));
                }
                off = 0;
            }
            if slices.len() == MAX_IOV {
                break;
            }
        }
        if slices.is_empty() {
            return Ok(());
        }
        let mut n = match writer.write_vectored(&slices) {
            Ok(0) => {
                return Err(io::Error::new(
                    io::ErrorKind::WriteZero,
                    "failed to write frame",
                ))
            }
            Ok(n) => n,
            Err(err) if err.kind() == io::ErrorKind::WouldBlock => return Ok(()),
            Err(err) if err.kind() == io::ErrorKind::Interrupted => continue,
            Err(err) => return Err(err),
        };
        drop(slices);
        for ex in conn.queue.iter_mut() {
            while n > 0 && ex.seg < ex.segments.len() {
                let avail = ex.segments[ex.seg].len() - ex.off;
                if n >= avail {
                    n -= avail;
                    ex.seg += 1;
                    ex.off = 0;
                } else {
                    ex.off += n;
                    n = 0;
                }
            }
            if n == 0 {
                break;
            }
        }
    }
}
