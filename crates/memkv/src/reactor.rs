//! Evented transport core: one shared epoll reactor drives every
//! registered connection — to any number of servers — without blocking
//! callers on socket I/O.
//!
//! The blocking client parked one OS thread per in-flight call — a mount
//! fanning out to `n` servers needed `n` engine workers just to keep the
//! sockets busy, so aggregate bandwidth plateaued at the worker count
//! instead of the server count (the paper's full-bisection claim, §3.2,
//! needs *every* server streaming concurrently). The first evented cut
//! fixed that but spent one reactor thread per [`crate::net::TcpClient`]:
//! a 64-server mount burned 64 epoll threads, each draining completions
//! for its own server in isolation.
//!
//! Now the reactor is a process-wide resource shared through a
//! [`ReactorHandle`]. Each `TcpClient` *registers* its pre-connected
//! sockets with a handle and gets back a [`Registration`] — a set of
//! tokens naming its connections inside the shared loop. One reactor
//! thread multiplexes every server's sockets, so:
//!
//! * a 16-server mount runs **one** reactor thread instead of 16;
//! * one epoll wake drains completions for *all* servers, delivering them
//!   to waiting callers in cross-server batches (the pool's sliding
//!   window observes completions as they land anywhere in the cluster);
//! * the deadline wheel is shared: one timer scan covers every
//!   connection regardless of which server it belongs to.
//!
//! Semantics carried over from the per-client reactor:
//!
//! * **Pipelining** — all frames of a batch are queued on one connection
//!   and answered in order; concurrent batches interleave at frame
//!   granularity on the same socket without head-of-line blocking between
//!   connections.
//! * **Idempotent-only retry** — a batch that dies with the connection is
//!   replayed once after a reconnect, but only if every request in it is
//!   idempotent (`add`/`append`/`cas` batches surface the I/O error).
//! * **Reconnect** — a dead connection is reopened in the background; the
//!   pool slot recovers even when the failing batch cannot be retried.
//!   Attempts are fenced by a per-connection generation that is bumped on
//!   every teardown *and* on deregistration, so a stale connect can never
//!   resurrect a closed client or a reused token slot.
//! * **Deadlines** — a per-call timeout
//!   ([`crate::net::PoolConfig::timeout`], stored per registration). A
//!   server that accepts and then never answers is timed out, the
//!   connection severed (the FIFO response alignment is unrecoverable
//!   once a reply is abandoned), and the caller gets
//!   [`KvError::Timeout`]. A stalled server only stalls its own
//!   connections: the shared loop keeps every other server streaming.
//!
//! Lifecycle: the reactor thread starts with the first handle and exits
//! when the last handle drops ([`ReactorHandle`] is an `Arc` in a
//! trenchcoat). Dropping a `Registration` deregisters its connections —
//! queued batches fail with `NotConnected` and the token slots return to
//! a free list for the next registration.

use std::collections::VecDeque;
use std::io::{self, IoSlice, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::os::unix::io::AsRawFd;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use bytes::Bytes;
use parking_lot::{Condvar, Mutex};

use crate::error::{KvError, KvResult};
use crate::net::{try_parse_response, ParseStep};
use crate::proto::Response;

/// epoll token reserved for the wake eventfd.
const WAKE_TOKEN: u64 = u64::MAX;
/// Max iovec entries per `writev` — matches the kernel's UIO_FASTIOV.
const MAX_IOV: usize = 8;
/// Read granularity for response bytes.
const READ_CHUNK: usize = 64 * 1024;

/// Thin RAII wrapper over an epoll instance plus an eventfd used to wake
/// the reactor from other threads (submitters, reconnect helpers).
struct Poller {
    epfd: libc::c_int,
    wakefd: libc::c_int,
}

impl Poller {
    fn new() -> io::Result<Poller> {
        let epfd = unsafe { libc::epoll_create1(libc::EPOLL_CLOEXEC) };
        if epfd < 0 {
            return Err(io::Error::last_os_error());
        }
        let wakefd = unsafe { libc::eventfd(0, libc::EFD_CLOEXEC | libc::EFD_NONBLOCK) };
        if wakefd < 0 {
            let err = io::Error::last_os_error();
            unsafe { libc::close(epfd) };
            return Err(err);
        }
        let poller = Poller { epfd, wakefd };
        poller.ctl(libc::EPOLL_CTL_ADD, wakefd, WAKE_TOKEN, libc::EPOLLIN)?;
        Ok(poller)
    }

    fn ctl(&self, op: libc::c_int, fd: libc::c_int, token: u64, interest: u32) -> io::Result<()> {
        let mut ev = libc::epoll_event {
            events: interest,
            u64: token,
        };
        let rc = unsafe { libc::epoll_ctl(self.epfd, op, fd, &mut ev) };
        if rc < 0 {
            Err(io::Error::last_os_error())
        } else {
            Ok(())
        }
    }

    fn add(&self, fd: libc::c_int, token: u64, interest: u32) -> io::Result<()> {
        self.ctl(libc::EPOLL_CTL_ADD, fd, token, interest)
    }

    fn modify(&self, fd: libc::c_int, token: u64, interest: u32) -> io::Result<()> {
        self.ctl(libc::EPOLL_CTL_MOD, fd, token, interest)
    }

    fn delete(&self, fd: libc::c_int) -> io::Result<()> {
        self.ctl(libc::EPOLL_CTL_DEL, fd, 0, 0)
    }

    /// Block until readiness or `timeout` (`None` = forever), appending
    /// `(token, events)` pairs to `out`.
    fn wait(&self, out: &mut Vec<(u64, u32)>, timeout: Option<Duration>) -> io::Result<()> {
        out.clear();
        let ms: libc::c_int = match timeout {
            None => -1,
            Some(d) => {
                // Round up so a deadline 0.4 ms away does not spin.
                let ms = d.as_millis();
                let ms = if Duration::from_millis(ms as u64) < d {
                    ms + 1
                } else {
                    ms
                };
                ms.min(i32::MAX as u128) as libc::c_int
            }
        };
        let mut events = [libc::epoll_event { events: 0, u64: 0 }; 64];
        loop {
            let n = unsafe { libc::epoll_wait(self.epfd, events.as_mut_ptr(), 64, ms) };
            if n < 0 {
                let err = io::Error::last_os_error();
                if err.kind() == io::ErrorKind::Interrupted {
                    continue;
                }
                return Err(err);
            }
            for ev in &events[..n as usize] {
                out.push(({ ev.u64 }, { ev.events }));
            }
            return Ok(());
        }
    }

    /// Wake a blocked [`Poller::wait`] from another thread.
    fn notify(&self) {
        let one: u64 = 1;
        let _ = unsafe { libc::write(self.wakefd, (&one as *const u64).cast(), 8) };
    }

    /// Reset the wake counter so level-triggered polling goes quiet.
    fn drain_wake(&self) {
        let mut count: u64 = 0;
        let _ = unsafe { libc::read(self.wakefd, (&mut count as *mut u64).cast(), 8) };
    }
}

impl Drop for Poller {
    fn drop(&mut self) {
        unsafe {
            libc::close(self.wakefd);
            libc::close(self.epfd);
        }
    }
}

/// Reactor observability counters, updated by the loop thread and read
/// by [`ReactorHandle::stats`] without synchronization beyond atomics.
#[derive(Default)]
struct ReactorStats {
    /// `epoll_wait` returns (including pure command wakes).
    wakeups: AtomicU64,
    /// Batches completed (delivered to a waiting caller), ok or err.
    completions: AtomicU64,
    /// Loop iterations that delivered at least one completion. The ratio
    /// `completions / completion_batches` is the cross-server batching
    /// factor: how many callers one wake unblocks on average.
    completion_batches: AtomicU64,
    /// Connections currently registered (across all clients).
    registered_connections: AtomicUsize,
    /// Request deadlines fired (each severs its connection).
    timeouts: AtomicU64,
    /// Background reconnect attempts launched. Generations are bumped on
    /// every teardown, so this also counts connection incarnations.
    reconnects: AtomicU64,
}

/// Point-in-time copy of a reactor's counters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ReactorStatsSnapshot {
    /// Identity of the reactor these counters belong to. Clients sharing
    /// one reactor report the same id — dedup on it when aggregating.
    pub reactor_id: usize,
    /// `epoll_wait` returns.
    pub wakeups: u64,
    /// Batches completed (ok or err).
    pub completions: u64,
    /// Loop iterations that delivered ≥ 1 completion.
    pub completion_batches: u64,
    /// Connections currently registered.
    pub registered_connections: usize,
    /// Request deadlines fired.
    pub timeouts: u64,
    /// Background reconnect attempts launched.
    pub reconnects: u64,
}

impl ReactorStatsSnapshot {
    /// Average completions delivered per completion-bearing wake (> 1
    /// means one epoll wake routinely unblocks callers waiting on
    /// different servers).
    pub fn batching_factor(&self) -> f64 {
        if self.completion_batches == 0 {
            0.0
        } else {
            self.completions as f64 / self.completion_batches as f64
        }
    }
}

impl ReactorStats {
    fn snapshot(&self, reactor_id: usize) -> ReactorStatsSnapshot {
        ReactorStatsSnapshot {
            reactor_id,
            wakeups: self.wakeups.load(Ordering::Relaxed),
            completions: self.completions.load(Ordering::Relaxed),
            completion_batches: self.completion_batches.load(Ordering::Relaxed),
            registered_connections: self.registered_connections.load(Ordering::Relaxed),
            timeouts: self.timeouts.load(Ordering::Relaxed),
            reconnects: self.reconnects.load(Ordering::Relaxed),
        }
    }
}

/// Completion slot shared between a submitter and the reactor.
struct CallShared {
    state: Mutex<Option<KvResult<Vec<Response>>>>,
    cv: Condvar,
}

/// Handle to one in-flight pipelined batch. [`PendingExchange::wait`]
/// parks the caller until the reactor delivers the responses (or the
/// failure) — this is the completion half of the split submit/completion
/// path.
pub(crate) struct PendingExchange {
    done: Arc<CallShared>,
}

impl PendingExchange {
    pub(crate) fn wait(self) -> KvResult<Vec<Response>> {
        let mut state = self.done.state.lock();
        loop {
            if let Some(result) = state.take() {
                return result;
            }
            self.done.cv.wait(&mut state);
        }
    }

    /// A non-consuming readiness probe: `true` once the reactor has
    /// delivered this batch's result, so a sliding-window driver can
    /// settle completions in arrival order instead of submission order.
    pub(crate) fn probe(&self) -> Box<dyn Fn() -> bool + Send> {
        let done = Arc::clone(&self.done);
        Box::new(move || done.state.lock().is_some())
    }
}

/// One pipelined batch owned by the reactor: pre-encoded wire segments, a
/// write cursor, and the responses collected so far.
struct Exchange {
    /// Encoded frames. Headers are coalesced; stripe-sized payloads ride
    /// as their own zero-copy segments. Never contains an empty segment.
    segments: Vec<Bytes>,
    /// Write cursor: next segment index / offset within it.
    seg: usize,
    off: usize,
    /// Responses expected (one per request in the batch).
    expect: usize,
    got: Vec<Response>,
    /// Whether the whole batch may be replayed after a connection drop.
    idempotent: bool,
    /// A batch is replayed at most once.
    retried: bool,
    deadline: Instant,
    done: Arc<CallShared>,
}

impl Exchange {
    fn deliver(done: &CallShared, result: KvResult<Vec<Response>>) {
        *done.state.lock() = Some(result);
        done.cv.notify_all();
    }

    fn finish_ok(self, stats: &ReactorStats) {
        stats.completions.fetch_add(1, Ordering::Relaxed);
        let Exchange { got, done, .. } = self;
        Self::deliver(&done, Ok(got));
    }

    fn finish_err(self, err: KvError, stats: &ReactorStats) {
        stats.completions.fetch_add(1, Ordering::Relaxed);
        Self::deliver(&self.done, Err(err));
    }

    /// Bytes of this batch still unwritten?
    fn unwritten(&self) -> bool {
        self.seg < self.segments.len()
    }
}

/// Reply slot for the synchronous [`Command::Register`] round trip.
struct RegisterReply {
    state: Mutex<Option<io::Result<Vec<usize>>>>,
    cv: Condvar,
}

impl RegisterReply {
    fn new() -> RegisterReply {
        RegisterReply {
            state: Mutex::new(None),
            cv: Condvar::new(),
        }
    }

    fn wait(&self) -> io::Result<Vec<usize>> {
        let mut state = self.state.lock();
        loop {
            if let Some(result) = state.take() {
                return result;
            }
            self.cv.wait(&mut state);
        }
    }

    fn set(&self, result: io::Result<Vec<usize>>) {
        *self.state.lock() = Some(result);
        self.cv.notify_all();
    }
}

enum Command {
    /// Adopt pre-connected streams into the loop, allocating one token
    /// slot per stream. Answered through `reply` (registration is the
    /// only synchronous round trip — it happens once per client).
    Register {
        addr: SocketAddr,
        streams: Vec<TcpStream>,
        timeout: Duration,
        reply: Arc<RegisterReply>,
    },
    /// Release token slots: queued batches fail with `NotConnected`, the
    /// generation is bumped (fencing stale reconnects), and the slots
    /// return to the free list. Fire-and-forget — a dropping client does
    /// not wait on the loop.
    Deregister {
        tokens: Vec<usize>,
    },
    Submit {
        conn: usize,
        call: Exchange,
    },
    /// A background connect finished. `generation` pins the attempt to the
    /// connection incarnation that requested it; stale results are dropped.
    Reconnected {
        conn: usize,
        generation: u64,
        result: io::Result<TcpStream>,
    },
}

struct Inbox {
    commands: Vec<Command>,
    shutdown: bool,
}

struct Shared {
    poller: Poller,
    inbox: Mutex<Inbox>,
    stats: ReactorStats,
}

/// Per-connection state, owned exclusively by the reactor thread. Slots
/// are reused across registrations; `generation` is monotonic over the
/// slot's whole lifetime so a reconnect fenced to one incarnation can
/// never land in a later one.
struct ConnState {
    /// `None` while disconnected (dead or reconnecting).
    stream: Option<TcpStream>,
    /// Bumped every time the stream is torn down *or* the slot is
    /// deregistered; fences stale reconnects.
    generation: u64,
    /// In-flight batches in submission order. The wire answers in the same
    /// order, so the front batch owns the next parsed response.
    queue: VecDeque<Exchange>,
    /// Accumulated unparsed response bytes.
    inbuf: Vec<u8>,
    /// Whether EPOLLOUT is currently registered.
    want_write: bool,
    /// A background connect attempt is outstanding. Deliberately *not*
    /// reset on deregister/re-register: it pairs 1:1 with an outstanding
    /// attempt thread, whose completion clears it (and restarts a fresh
    /// attempt if the current incarnation still needs one).
    reconnecting: bool,
    /// Server this slot reconnects to (meaningless while unregistered).
    addr: SocketAddr,
    /// Per-request deadline for this slot's registration.
    timeout: Duration,
    /// Slot is owned by a live [`Registration`].
    registered: bool,
}

impl ConnState {
    fn new() -> ConnState {
        ConnState {
            stream: None,
            generation: 0,
            queue: VecDeque::new(),
            inbuf: Vec::with_capacity(4096),
            want_write: false,
            reconnecting: false,
            addr: SocketAddr::from(([0, 0, 0, 0], 0)),
            timeout: Duration::from_secs(10),
            registered: false,
        }
    }
}

struct HandleInner {
    shared: Arc<Shared>,
    thread: Mutex<Option<JoinHandle<()>>>,
}

impl Drop for HandleInner {
    fn drop(&mut self) {
        self.shared.inbox.lock().shutdown = true;
        self.shared.poller.notify();
        if let Some(thread) = self.thread.lock().take() {
            let _ = thread.join();
        }
    }
}

/// Cloneable owner of one shared reactor thread. Clients register their
/// connections with [`TcpClient::connect_shared`]
/// (`crate::net::TcpClient`); every clone refers to the same loop, and
/// the thread exits when the last clone (including those held by live
/// registrations) drops.
#[derive(Clone)]
pub struct ReactorHandle {
    inner: Arc<HandleInner>,
}

impl ReactorHandle {
    /// Spawn the reactor thread (named `memkv-reactor`) with no
    /// registered connections.
    pub fn new() -> KvResult<ReactorHandle> {
        let poller = Poller::new()?;
        let shared = Arc::new(Shared {
            poller,
            inbox: Mutex::new(Inbox {
                commands: Vec::new(),
                shutdown: false,
            }),
            stats: ReactorStats::default(),
        });
        let event_loop = EventLoop {
            shared: Arc::clone(&shared),
            conns: Vec::new(),
            free: Vec::new(),
        };
        let thread = std::thread::Builder::new()
            .name("memkv-reactor".into())
            .spawn(move || event_loop.run())
            .map_err(KvError::Io)?;
        Ok(ReactorHandle {
            inner: Arc::new(HandleInner {
                shared,
                thread: Mutex::new(Some(thread)),
            }),
        })
    }

    /// Current counters for this reactor.
    pub fn stats(&self) -> ReactorStatsSnapshot {
        let shared = &self.inner.shared;
        shared.stats.snapshot(Arc::as_ptr(shared) as usize)
    }

    fn command(&self, cmd: Command) {
        self.inner.shared.inbox.lock().commands.push(cmd);
        self.inner.shared.poller.notify();
    }

    /// Adopt pre-connected `streams` (switched to non-blocking inside the
    /// loop) as one client's connections to the server at `addr`.
    pub(crate) fn register(
        &self,
        addr: SocketAddr,
        streams: Vec<TcpStream>,
        timeout: Duration,
    ) -> KvResult<Registration> {
        let reply = Arc::new(RegisterReply::new());
        self.command(Command::Register {
            addr,
            streams,
            timeout,
            reply: Arc::clone(&reply),
        });
        // The loop cannot shut down while this handle is alive, so the
        // reply always arrives.
        let tokens = reply.wait().map_err(KvError::Io)?;
        Ok(Registration {
            handle: self.clone(),
            tokens,
            timeout,
        })
    }

    /// Queue one pre-encoded batch on connection `token` and return the
    /// completion handle. Never blocks on the network.
    fn submit(
        &self,
        token: usize,
        segments: Vec<Bytes>,
        expect: usize,
        idempotent: bool,
        timeout: Duration,
    ) -> PendingExchange {
        let done = Arc::new(CallShared {
            state: Mutex::new(None),
            cv: Condvar::new(),
        });
        if expect == 0 {
            Exchange::deliver(&done, Ok(Vec::new()));
            return PendingExchange { done };
        }
        debug_assert!(segments.iter().all(|s| !s.is_empty()));
        let call = Exchange {
            segments,
            seg: 0,
            off: 0,
            expect,
            got: Vec::with_capacity(expect),
            idempotent,
            retried: false,
            deadline: Instant::now() + timeout,
            done: Arc::clone(&done),
        };
        self.command(Command::Submit { conn: token, call });
        PendingExchange { done }
    }
}

/// One client's set of connections inside a shared reactor. Dropping it
/// deregisters the connections (queued batches fail with `NotConnected`)
/// and keeps the reactor alive for other registrants.
pub(crate) struct Registration {
    handle: ReactorHandle,
    tokens: Vec<usize>,
    timeout: Duration,
}

impl Registration {
    pub(crate) fn len(&self) -> usize {
        self.tokens.len()
    }

    pub(crate) fn handle(&self) -> &ReactorHandle {
        &self.handle
    }

    /// Submit on the `slot`-th registered connection.
    pub(crate) fn submit(
        &self,
        slot: usize,
        segments: Vec<Bytes>,
        expect: usize,
        idempotent: bool,
    ) -> PendingExchange {
        self.handle.submit(
            self.tokens[slot],
            segments,
            expect,
            idempotent,
            self.timeout,
        )
    }
}

impl Drop for Registration {
    fn drop(&mut self) {
        self.handle.command(Command::Deregister {
            tokens: std::mem::take(&mut self.tokens),
        });
    }
}

/// Duplicate an `io::Error` (needed to fan one failure out to a whole
/// queue of batches).
fn dup_io(err: &io::Error) -> io::Error {
    io::Error::new(err.kind(), err.to_string())
}

struct EventLoop {
    shared: Arc<Shared>,
    /// Token-indexed connection slab.
    conns: Vec<ConnState>,
    /// Deregistered slots available for reuse.
    free: Vec<usize>,
}

impl EventLoop {
    fn run(mut self) {
        let mut events: Vec<(u64, u32)> = Vec::new();
        loop {
            // Completions delivered by this iteration — commands, expired
            // deadlines and socket events alike — count as one wake batch.
            let before = self.shared.stats.completions.load(Ordering::Relaxed);
            let (commands, shutdown) = {
                let mut inbox = self.shared.inbox.lock();
                (std::mem::take(&mut inbox.commands), inbox.shutdown)
            };
            for cmd in commands {
                self.handle_command(cmd);
            }
            if shutdown {
                self.abort_all();
                return;
            }
            self.expire_deadlines();
            let poll_timeout = self
                .next_deadline()
                .map(|d| d.saturating_duration_since(Instant::now()));
            if self.shared.poller.wait(&mut events, poll_timeout).is_err() {
                // Transient poll failure: retry; deadlines still advance.
                continue;
            }
            self.shared.stats.wakeups.fetch_add(1, Ordering::Relaxed);
            for &(token, ev) in events.iter() {
                if token == WAKE_TOKEN {
                    self.shared.poller.drain_wake();
                    continue;
                }
                let idx = token as usize;
                if idx >= self.conns.len() {
                    continue;
                }
                if ev & (libc::EPOLLERR | libc::EPOLLHUP) != 0 {
                    self.kill_conn(
                        idx,
                        io::Error::new(io::ErrorKind::ConnectionReset, "connection error"),
                    );
                    continue;
                }
                if ev & (libc::EPOLLIN | libc::EPOLLRDHUP) != 0 {
                    self.handle_readable(idx);
                }
                if ev & libc::EPOLLOUT != 0 {
                    self.flush_conn(idx);
                }
            }
            let delivered = self.shared.stats.completions.load(Ordering::Relaxed) - before;
            if delivered > 0 {
                self.shared
                    .stats
                    .completion_batches
                    .fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    fn handle_command(&mut self, cmd: Command) {
        match cmd {
            Command::Register {
                addr,
                streams,
                timeout,
                reply,
            } => self.handle_register(addr, streams, timeout, &reply),
            Command::Deregister { tokens } => {
                for token in tokens {
                    self.release_slot(token);
                }
            }
            Command::Submit { conn, call } => {
                self.conns[conn].queue.push_back(call);
                if self.conns[conn].stream.is_none() {
                    // Lazy reconnect: a connection that died idle (server
                    // restart between calls) comes back on first use.
                    self.start_reconnect(conn);
                } else {
                    self.flush_conn(conn);
                }
            }
            Command::Reconnected {
                conn,
                generation,
                result,
            } => {
                self.conns[conn].reconnecting = false;
                if generation != self.conns[conn].generation {
                    // The connection was torn down again (or the slot
                    // deregistered) after this attempt started; if the
                    // current incarnation still needs a stream, start a
                    // correctly-fenced fresh attempt.
                    if self.conns[conn].registered
                        && self.conns[conn].stream.is_none()
                        && !self.conns[conn].queue.is_empty()
                    {
                        self.start_reconnect(conn);
                    }
                    return;
                }
                match result {
                    Ok(stream) => match self.adopt_stream(conn, stream) {
                        Ok(()) => self.flush_conn(conn),
                        Err(err) => self.fail_queue(conn, err),
                    },
                    // Reconnect failed: the retry budget is spent, surface
                    // the transport error to every queued batch.
                    Err(err) => self.fail_queue(conn, err),
                }
            }
        }
    }

    /// Allocate one slot per stream, wire the fds into epoll, and answer
    /// the registering client with the tokens. Partial failure rolls the
    /// already-adopted streams back.
    fn handle_register(
        &mut self,
        addr: SocketAddr,
        streams: Vec<TcpStream>,
        timeout: Duration,
        reply: &RegisterReply,
    ) {
        let mut tokens = Vec::with_capacity(streams.len());
        let mut failure: Option<io::Error> = None;
        for stream in streams {
            let token = self.alloc_slot();
            {
                let conn = &mut self.conns[token];
                conn.addr = addr;
                conn.timeout = timeout;
                conn.registered = true;
            }
            self.shared
                .stats
                .registered_connections
                .fetch_add(1, Ordering::Relaxed);
            match self.adopt_stream(token, stream) {
                Ok(()) => tokens.push(token),
                Err(err) => {
                    self.release_slot(token);
                    failure = Some(err);
                    break;
                }
            }
        }
        match failure {
            None => reply.set(Ok(tokens)),
            Some(err) => {
                for token in tokens {
                    self.release_slot(token);
                }
                reply.set(Err(err));
            }
        }
    }

    fn alloc_slot(&mut self) -> usize {
        match self.free.pop() {
            Some(token) => token,
            None => {
                self.conns.push(ConnState::new());
                self.conns.len() - 1
            }
        }
    }

    /// Deregister one slot: fail its queue, fence outstanding reconnects
    /// via the generation bump in `close_stream`, and free the token.
    fn release_slot(&mut self, token: usize) {
        if !self.conns[token].registered {
            return;
        }
        self.close_stream(token);
        let queue = std::mem::take(&mut self.conns[token].queue);
        for ex in queue {
            ex.finish_err(
                KvError::Io(io::Error::new(io::ErrorKind::NotConnected, "client closed")),
                &self.shared.stats,
            );
        }
        self.conns[token].registered = false;
        self.shared
            .stats
            .registered_connections
            .fetch_sub(1, Ordering::Relaxed);
        self.free.push(token);
    }

    fn adopt_stream(&mut self, idx: usize, stream: TcpStream) -> io::Result<()> {
        stream.set_nodelay(true)?;
        stream.set_nonblocking(true)?;
        self.shared.poller.add(
            stream.as_raw_fd(),
            idx as u64,
            libc::EPOLLIN | libc::EPOLLRDHUP,
        )?;
        let conn = &mut self.conns[idx];
        conn.stream = Some(stream);
        conn.want_write = false;
        conn.inbuf.clear();
        Ok(())
    }

    fn start_reconnect(&mut self, idx: usize) {
        let conn = &mut self.conns[idx];
        if conn.reconnecting || !conn.registered {
            return;
        }
        conn.reconnecting = true;
        let generation = conn.generation;
        let addr = conn.addr;
        let connect_timeout = conn.timeout.max(Duration::from_millis(50));
        let shared = Arc::clone(&self.shared);
        shared.stats.reconnects.fetch_add(1, Ordering::Relaxed);
        let spawned = std::thread::Builder::new()
            .name("memkv-reconnect".into())
            .spawn(move || {
                let result = TcpStream::connect_timeout(&addr, connect_timeout);
                shared.inbox.lock().commands.push(Command::Reconnected {
                    conn: idx,
                    generation,
                    result,
                });
                shared.poller.notify();
            });
        if spawned.is_err() {
            self.conns[idx].reconnecting = false;
            self.fail_queue(idx, io::Error::other("failed to spawn reconnect thread"));
        }
    }

    /// Tear the stream down without touching the queue.
    fn close_stream(&mut self, idx: usize) {
        let conn = &mut self.conns[idx];
        if let Some(stream) = conn.stream.take() {
            let _ = self.shared.poller.delete(stream.as_raw_fd());
            drop(stream);
        }
        conn.generation += 1;
        conn.inbuf.clear();
        conn.want_write = false;
    }

    /// The connection failed: idempotent batches that have not burned
    /// their replay yet stay queued (with reset cursors) for the
    /// reconnect; everything else completes with the I/O error.
    fn kill_conn(&mut self, idx: usize, err: io::Error) {
        self.close_stream(idx);
        let queue = std::mem::take(&mut self.conns[idx].queue);
        let mut keep = VecDeque::new();
        for mut ex in queue {
            if ex.idempotent && !ex.retried {
                ex.retried = true;
                ex.seg = 0;
                ex.off = 0;
                ex.got.clear();
                keep.push_back(ex);
            } else {
                ex.finish_err(KvError::Io(dup_io(&err)), &self.shared.stats);
            }
        }
        self.conns[idx].queue = keep;
        if !self.conns[idx].queue.is_empty() {
            self.start_reconnect(idx);
        }
    }

    /// Complete every queued batch with `err` (terminal — no retry).
    fn fail_queue(&mut self, idx: usize, err: io::Error) {
        self.close_stream(idx);
        let queue = std::mem::take(&mut self.conns[idx].queue);
        for ex in queue {
            ex.finish_err(KvError::Io(dup_io(&err)), &self.shared.stats);
        }
    }

    fn handle_readable(&mut self, idx: usize) {
        let mut chunk = [0u8; READ_CHUNK];
        loop {
            let conn = &mut self.conns[idx];
            let Some(stream) = conn.stream.as_ref() else {
                return;
            };
            let mut reader = stream;
            match reader.read(&mut chunk) {
                Ok(0) => {
                    if conn.queue.is_empty() {
                        // Idle EOF: the server went away between calls.
                        // Close quietly; the next submit reconnects.
                        self.close_stream(idx);
                    } else {
                        self.kill_conn(
                            idx,
                            io::Error::new(
                                io::ErrorKind::UnexpectedEof,
                                "server closed connection",
                            ),
                        );
                    }
                    return;
                }
                Ok(n) => {
                    conn.inbuf.extend_from_slice(&chunk[..n]);
                    if let Err(err) = self.drain_inbuf(idx) {
                        self.poison_conn(idx, err);
                        return;
                    }
                }
                Err(err) if err.kind() == io::ErrorKind::WouldBlock => return,
                Err(err) if err.kind() == io::ErrorKind::Interrupted => continue,
                Err(err) => {
                    self.kill_conn(idx, err);
                    return;
                }
            }
        }
    }

    /// Parse as many complete responses as the buffer holds, completing
    /// front-of-queue batches as their counts fill.
    fn drain_inbuf(&mut self, idx: usize) -> KvResult<()> {
        loop {
            let conn = &mut self.conns[idx];
            if conn.inbuf.is_empty() {
                return Ok(());
            }
            if conn.queue.is_empty() {
                return Err(KvError::Protocol(
                    "unsolicited response bytes from server".into(),
                ));
            }
            match try_parse_response(&mut conn.inbuf)? {
                ParseStep::More(hint) => {
                    // A `VALUE` header announces its payload length; grow
                    // the buffer once instead of per 64 KiB read.
                    conn.inbuf.reserve(hint);
                    return Ok(());
                }
                ParseStep::Done(resp) => {
                    let front = conn.queue.front_mut().expect("queue checked non-empty");
                    front.got.push(resp);
                    if front.got.len() == front.expect {
                        let ex = conn.queue.pop_front().expect("front exists");
                        ex.finish_ok(&self.shared.stats);
                    }
                }
            }
        }
    }

    /// A protocol-level breach: the front batch gets the parse error, the
    /// connection is unusable (framing lost) so the rest rides the normal
    /// kill path.
    fn poison_conn(&mut self, idx: usize, err: KvError) {
        if let Some(front) = self.conns[idx].queue.pop_front() {
            front.finish_err(err, &self.shared.stats);
        }
        self.kill_conn(
            idx,
            io::Error::new(
                io::ErrorKind::InvalidData,
                "connection closed after protocol error",
            ),
        );
    }

    fn flush_conn(&mut self, idx: usize) {
        match write_queued(&mut self.conns[idx]) {
            Ok(()) => self.update_write_interest(idx),
            Err(err) => self.kill_conn(idx, err),
        }
    }

    /// Keep EPOLLOUT registered exactly while unwritten bytes exist
    /// (level-triggered — leaving it on would spin the reactor).
    fn update_write_interest(&mut self, idx: usize) {
        let conn = &mut self.conns[idx];
        let Some(stream) = conn.stream.as_ref() else {
            return;
        };
        let want = conn.queue.iter().any(Exchange::unwritten);
        if want != conn.want_write {
            let mut interest = libc::EPOLLIN | libc::EPOLLRDHUP;
            if want {
                interest |= libc::EPOLLOUT;
            }
            if self
                .shared
                .poller
                .modify(stream.as_raw_fd(), idx as u64, interest)
                .is_ok()
            {
                conn.want_write = want;
            }
        }
    }

    /// Time out the front batch of any connection whose deadline passed.
    /// The front has the earliest deadline (FIFO submission, uniform
    /// per-registration timeout); abandoning its responses desynchronizes
    /// the FIFO, so the connection dies with it and later batches retry
    /// or fail. One scan covers every server's connections — the shared
    /// deadline wheel.
    fn expire_deadlines(&mut self) {
        let now = Instant::now();
        for idx in 0..self.conns.len() {
            let expired = self.conns[idx]
                .queue
                .front()
                .is_some_and(|ex| ex.deadline <= now);
            if expired {
                let front = self.conns[idx].queue.pop_front().expect("front expired");
                let after = self.conns[idx].timeout;
                // Count before delivering: a caller that observed the
                // Timeout error must also observe the counter.
                self.shared.stats.timeouts.fetch_add(1, Ordering::Relaxed);
                front.finish_err(KvError::Timeout { after }, &self.shared.stats);
                self.kill_conn(
                    idx,
                    io::Error::new(
                        io::ErrorKind::TimedOut,
                        "connection abandoned after request timeout",
                    ),
                );
            }
        }
    }

    fn next_deadline(&self) -> Option<Instant> {
        self.conns
            .iter()
            .filter_map(|c| c.queue.front().map(|ex| ex.deadline))
            .min()
    }

    fn abort_all(&mut self) {
        for idx in 0..self.conns.len() {
            self.close_stream(idx);
            let queue = std::mem::take(&mut self.conns[idx].queue);
            for ex in queue {
                ex.finish_err(
                    KvError::Io(io::Error::new(
                        io::ErrorKind::NotConnected,
                        "client shut down",
                    )),
                    &self.shared.stats,
                );
            }
        }
    }
}

/// Write queued batches in FIFO order with vectored non-blocking writes,
/// stopping at `WouldBlock`. Zero-copy: iovecs point straight into the
/// pre-encoded segments (stripe payloads included).
fn write_queued(conn: &mut ConnState) -> io::Result<()> {
    loop {
        let Some(mut writer) = conn.stream.as_ref() else {
            return Ok(());
        };
        let mut slices: Vec<IoSlice<'_>> = Vec::with_capacity(MAX_IOV);
        for ex in conn.queue.iter() {
            let mut off = ex.off;
            for seg in ex.segments.iter().skip(ex.seg) {
                if slices.len() == MAX_IOV {
                    break;
                }
                if off < seg.len() {
                    slices.push(IoSlice::new(&seg[off..]));
                }
                off = 0;
            }
            if slices.len() == MAX_IOV {
                break;
            }
        }
        if slices.is_empty() {
            return Ok(());
        }
        let mut n = match writer.write_vectored(&slices) {
            Ok(0) => {
                return Err(io::Error::new(
                    io::ErrorKind::WriteZero,
                    "failed to write frame",
                ))
            }
            Ok(n) => n,
            Err(err) if err.kind() == io::ErrorKind::WouldBlock => return Ok(()),
            Err(err) if err.kind() == io::ErrorKind::Interrupted => continue,
            Err(err) => return Err(err),
        };
        drop(slices);
        for ex in conn.queue.iter_mut() {
            while n > 0 && ex.seg < ex.segments.len() {
                let avail = ex.segments[ex.seg].len() - ex.off;
                if n >= avail {
                    n -= avail;
                    ex.seg += 1;
                    ex.off = 0;
                } else {
                    ex.off += n;
                    n = 0;
                }
            }
            if n == 0 {
                break;
            }
        }
    }
}
