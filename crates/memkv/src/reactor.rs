//! Evented transport core: one shared epoll reactor drives every
//! registered connection — to any number of servers — without blocking
//! callers on socket I/O.
//!
//! The blocking client parked one OS thread per in-flight call — a mount
//! fanning out to `n` servers needed `n` engine workers just to keep the
//! sockets busy, so aggregate bandwidth plateaued at the worker count
//! instead of the server count (the paper's full-bisection claim, §3.2,
//! needs *every* server streaming concurrently). The first evented cut
//! fixed that but spent one reactor thread per [`crate::net::TcpClient`]:
//! a 64-server mount burned 64 epoll threads, each draining completions
//! for its own server in isolation.
//!
//! Now the reactor is a process-wide resource shared through a
//! [`ReactorHandle`]. Each `TcpClient` *registers* its pre-connected
//! sockets with a handle and gets back a [`Registration`] — a set of
//! tokens naming its connections inside the shared loop. One reactor
//! thread multiplexes every server's sockets, so:
//!
//! * a 16-server mount runs **one** reactor thread instead of 16 (or N
//!   threads when the mount shards its servers over a [`ReactorSet`]);
//! * one epoll wake drains completions for *all* servers, delivering them
//!   to waiting callers in cross-server batches (the pool's sliding
//!   window observes completions as they land anywhere in the cluster);
//! * deadlines live in one hierarchical [`TimerWheel`] per loop: O(1)
//!   arm/cancel, and an idle loop sleeps precisely until the next armed
//!   timer instead of scanning every connection's queue front.
//!
//! Semantics carried over from the per-client reactor:
//!
//! * **Pipelining** — all frames of a batch are queued on one connection
//!   and answered in order; concurrent batches interleave at frame
//!   granularity on the same socket without head-of-line blocking between
//!   connections.
//! * **Idempotent-only retry** — a batch that dies with the connection is
//!   replayed once after a reconnect, but only if every request in it is
//!   idempotent (`add`/`append`/`cas` batches surface the I/O error).
//! * **Reconnect** — a dead connection is reopened *inside the loop*: a
//!   non-blocking `connect()` parks as [`Link::Connecting`] until epoll
//!   reports writability and `SO_ERROR` renders the verdict. No helper
//!   thread is ever spawned. Failed attempts back off exponentially
//!   (10 ms doubling to 500 ms), so a refused storm costs a bounded
//!   trickle of syscalls instead of a hot spin.
//! * **Deadlines** — a per-call timeout
//!   ([`crate::net::PoolConfig::timeout`], stored per registration). A
//!   server that accepts and then never answers is timed out, the
//!   connection severed (the FIFO response alignment is unrecoverable
//!   once a reply is abandoned), and the caller gets
//!   [`KvError::Timeout`]. A stalled server only stalls its own
//!   connections: the shared loop keeps every other server streaming.
//!
//! Lifecycle: the reactor thread starts with the first handle and exits
//! when the last handle drops ([`ReactorHandle`] is an `Arc` in a
//! trenchcoat). Dropping a `Registration` deregisters its connections —
//! queued batches fail with `NotConnected` and the token slots return to
//! a free list for the next registration.

use std::collections::VecDeque;
use std::io::{self, IoSlice, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::os::fd::{AsRawFd, FromRawFd, OwnedFd, RawFd};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use bytes::Bytes;
use parking_lot::{Condvar, Mutex};

use crate::error::{KvError, KvResult};
use crate::net::{try_parse_response, ParseStep};
use crate::proto::Response;
use crate::wheel::{TimerId, TimerWheel};

/// epoll token reserved for the wake eventfd.
const WAKE_TOKEN: u64 = u64::MAX;
/// Max iovec entries per `writev` — matches the kernel's UIO_FASTIOV.
const MAX_IOV: usize = 8;
/// Read granularity for response bytes.
const READ_CHUNK: usize = 64 * 1024;
/// First reconnect backoff after a failed connect attempt.
const MIN_BACKOFF: Duration = Duration::from_millis(10);
/// Backoff ceiling — an unreachable server is probed at most ~2/s.
const MAX_BACKOFF: Duration = Duration::from_millis(500);
/// Floor for the connect deadline, mirroring the old helper-thread
/// `connect_timeout` floor.
const MIN_CONNECT_TIMEOUT: Duration = Duration::from_millis(50);

/// Thin RAII wrapper over an epoll instance plus an eventfd used to wake
/// the reactor from other threads (submitters, handle drops).
struct Poller {
    epfd: libc::c_int,
    wakefd: libc::c_int,
}

impl Poller {
    fn new() -> io::Result<Poller> {
        let epfd = unsafe { libc::epoll_create1(libc::EPOLL_CLOEXEC) };
        if epfd < 0 {
            return Err(io::Error::last_os_error());
        }
        let wakefd = unsafe { libc::eventfd(0, libc::EFD_CLOEXEC | libc::EFD_NONBLOCK) };
        if wakefd < 0 {
            let err = io::Error::last_os_error();
            unsafe { libc::close(epfd) };
            return Err(err);
        }
        let poller = Poller { epfd, wakefd };
        poller.ctl(libc::EPOLL_CTL_ADD, wakefd, WAKE_TOKEN, libc::EPOLLIN)?;
        Ok(poller)
    }

    fn ctl(&self, op: libc::c_int, fd: libc::c_int, token: u64, interest: u32) -> io::Result<()> {
        let mut ev = libc::epoll_event {
            events: interest,
            u64: token,
        };
        let rc = unsafe { libc::epoll_ctl(self.epfd, op, fd, &mut ev) };
        if rc < 0 {
            Err(io::Error::last_os_error())
        } else {
            Ok(())
        }
    }

    fn add(&self, fd: libc::c_int, token: u64, interest: u32) -> io::Result<()> {
        self.ctl(libc::EPOLL_CTL_ADD, fd, token, interest)
    }

    fn modify(&self, fd: libc::c_int, token: u64, interest: u32) -> io::Result<()> {
        self.ctl(libc::EPOLL_CTL_MOD, fd, token, interest)
    }

    fn delete(&self, fd: libc::c_int) -> io::Result<()> {
        self.ctl(libc::EPOLL_CTL_DEL, fd, 0, 0)
    }

    /// Block until readiness or `timeout` (`None` = forever), appending
    /// `(token, events)` pairs to `out`.
    fn wait(&self, out: &mut Vec<(u64, u32)>, timeout: Option<Duration>) -> io::Result<()> {
        out.clear();
        let ms: libc::c_int = match timeout {
            None => -1,
            Some(d) => {
                // Round up so a deadline 0.4 ms away does not spin.
                let ms = d.as_millis();
                let ms = if Duration::from_millis(ms as u64) < d {
                    ms + 1
                } else {
                    ms
                };
                ms.min(i32::MAX as u128) as libc::c_int
            }
        };
        let mut events = [libc::epoll_event { events: 0, u64: 0 }; 64];
        loop {
            let n = unsafe { libc::epoll_wait(self.epfd, events.as_mut_ptr(), 64, ms) };
            if n < 0 {
                let err = io::Error::last_os_error();
                if err.kind() == io::ErrorKind::Interrupted {
                    continue;
                }
                return Err(err);
            }
            for ev in &events[..n as usize] {
                out.push(({ ev.u64 }, { ev.events }));
            }
            return Ok(());
        }
    }

    /// Wake a blocked [`Poller::wait`] from another thread.
    fn notify(&self) {
        let one: u64 = 1;
        let _ = unsafe { libc::write(self.wakefd, (&one as *const u64).cast(), 8) };
    }

    /// Reset the wake counter so level-triggered polling goes quiet.
    fn drain_wake(&self) {
        let mut count: u64 = 0;
        let _ = unsafe { libc::read(self.wakefd, (&mut count as *mut u64).cast(), 8) };
    }
}

impl Drop for Poller {
    fn drop(&mut self) {
        unsafe {
            libc::close(self.wakefd);
            libc::close(self.epfd);
        }
    }
}

/// Reactor observability counters, updated by the loop thread and read
/// by [`ReactorHandle::stats`] without synchronization beyond atomics.
#[derive(Default)]
struct ReactorStats {
    /// `epoll_wait` returns (including pure command wakes).
    wakeups: AtomicU64,
    /// Batches completed (delivered to a waiting caller), ok or err.
    completions: AtomicU64,
    /// Loop iterations that delivered at least one completion. The ratio
    /// `completions / completion_batches` is the cross-server batching
    /// factor: how many callers one wake unblocks on average.
    completion_batches: AtomicU64,
    /// Connections currently registered (across all clients).
    registered_connections: AtomicUsize,
    /// Request deadlines fired (each severs its connection).
    timeouts: AtomicU64,
    /// Connect attempts started by the loop (lazy reconnects and
    /// post-failure retries; initial registrations arrive pre-connected).
    reconnects: AtomicU64,
    /// Non-blocking connects currently parked on EPOLLOUT (gauge).
    connects_in_flight: AtomicUsize,
    /// Timer-wheel entries demoted a level by cascading.
    timer_cascades: AtomicU64,
    /// Payload + frame bytes written to sockets.
    bytes_tx: AtomicU64,
    /// Bytes read from sockets.
    bytes_rx: AtomicU64,
}

/// Point-in-time copy of a reactor's counters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ReactorStatsSnapshot {
    /// Identity of the reactor these counters belong to. Clients sharing
    /// one reactor report the same id — dedup on it when aggregating.
    pub reactor_id: usize,
    /// `epoll_wait` returns.
    pub wakeups: u64,
    /// Batches completed (ok or err).
    pub completions: u64,
    /// Loop iterations that delivered ≥ 1 completion.
    pub completion_batches: u64,
    /// Connections currently registered.
    pub registered_connections: usize,
    /// Request deadlines fired.
    pub timeouts: u64,
    /// Connect attempts started by the loop.
    pub reconnects: u64,
    /// Non-blocking connects currently awaiting EPOLLOUT.
    pub connects_in_flight: usize,
    /// Timer-wheel cascade moves so far.
    pub timer_cascades: u64,
    /// Bytes written to sockets.
    pub bytes_tx: u64,
    /// Bytes read from sockets.
    pub bytes_rx: u64,
}

impl ReactorStatsSnapshot {
    /// Average completions delivered per completion-bearing wake (> 1
    /// means one epoll wake routinely unblocks callers waiting on
    /// different servers).
    pub fn batching_factor(&self) -> f64 {
        if self.completion_batches == 0 {
            0.0
        } else {
            self.completions as f64 / self.completion_batches as f64
        }
    }
}

impl ReactorStats {
    fn snapshot(&self, reactor_id: usize) -> ReactorStatsSnapshot {
        ReactorStatsSnapshot {
            reactor_id,
            wakeups: self.wakeups.load(Ordering::Relaxed),
            completions: self.completions.load(Ordering::Relaxed),
            completion_batches: self.completion_batches.load(Ordering::Relaxed),
            registered_connections: self.registered_connections.load(Ordering::Relaxed),
            timeouts: self.timeouts.load(Ordering::Relaxed),
            reconnects: self.reconnects.load(Ordering::Relaxed),
            connects_in_flight: self.connects_in_flight.load(Ordering::Relaxed),
            timer_cascades: self.timer_cascades.load(Ordering::Relaxed),
            bytes_tx: self.bytes_tx.load(Ordering::Relaxed),
            bytes_rx: self.bytes_rx.load(Ordering::Relaxed),
        }
    }
}

/// Completion slot shared between a submitter and the reactor.
struct CallShared {
    state: Mutex<Option<KvResult<Vec<Response>>>>,
    cv: Condvar,
}

/// Handle to one in-flight pipelined batch. [`PendingExchange::wait`]
/// parks the caller until the reactor delivers the responses (or the
/// failure) — this is the completion half of the split submit/completion
/// path.
pub(crate) struct PendingExchange {
    done: Arc<CallShared>,
}

impl PendingExchange {
    pub(crate) fn wait(self) -> KvResult<Vec<Response>> {
        let mut state = self.done.state.lock();
        loop {
            if let Some(result) = state.take() {
                return result;
            }
            self.done.cv.wait(&mut state);
        }
    }

    /// A non-consuming readiness probe: `true` once the reactor has
    /// delivered this batch's result, so a sliding-window driver can
    /// settle completions in arrival order instead of submission order.
    pub(crate) fn probe(&self) -> Box<dyn Fn() -> bool + Send> {
        let done = Arc::clone(&self.done);
        Box::new(move || done.state.lock().is_some())
    }
}

/// One pipelined batch owned by the reactor: pre-encoded wire segments, a
/// write cursor, and the responses collected so far.
struct Exchange {
    /// Encoded frames. Headers are coalesced; stripe-sized payloads ride
    /// as their own zero-copy segments. Never contains an empty segment.
    segments: Vec<Bytes>,
    /// Write cursor: next segment index / offset within it.
    seg: usize,
    off: usize,
    /// Responses expected (one per request in the batch).
    expect: usize,
    got: Vec<Response>,
    /// Whether the whole batch may be replayed after a connection drop.
    idempotent: bool,
    /// A batch is replayed at most once.
    retried: bool,
    deadline: Instant,
    done: Arc<CallShared>,
}

impl Exchange {
    fn deliver(done: &CallShared, result: KvResult<Vec<Response>>) {
        *done.state.lock() = Some(result);
        done.cv.notify_all();
    }

    fn finish_ok(self, stats: &ReactorStats) {
        stats.completions.fetch_add(1, Ordering::Relaxed);
        let Exchange { got, done, .. } = self;
        Self::deliver(&done, Ok(got));
    }

    fn finish_err(self, err: KvError, stats: &ReactorStats) {
        stats.completions.fetch_add(1, Ordering::Relaxed);
        Self::deliver(&self.done, Err(err));
    }

    /// Bytes of this batch still unwritten?
    fn unwritten(&self) -> bool {
        self.seg < self.segments.len()
    }
}

/// Reply slot for the synchronous [`Command::Register`] round trip.
struct RegisterReply {
    state: Mutex<Option<io::Result<Vec<usize>>>>,
    cv: Condvar,
}

impl RegisterReply {
    fn new() -> RegisterReply {
        RegisterReply {
            state: Mutex::new(None),
            cv: Condvar::new(),
        }
    }

    fn wait(&self) -> io::Result<Vec<usize>> {
        let mut state = self.state.lock();
        loop {
            if let Some(result) = state.take() {
                return result;
            }
            self.cv.wait(&mut state);
        }
    }

    fn set(&self, result: io::Result<Vec<usize>>) {
        *self.state.lock() = Some(result);
        self.cv.notify_all();
    }
}

enum Command {
    /// Adopt pre-connected streams into the loop, allocating one token
    /// slot per stream. Answered through `reply` (registration is the
    /// only synchronous round trip — it happens once per client).
    Register {
        addr: SocketAddr,
        streams: Vec<TcpStream>,
        timeout: Duration,
        reply: Arc<RegisterReply>,
    },
    /// Release token slots: queued batches fail with `NotConnected`, any
    /// in-flight connect is abandoned, and the slots return to the free
    /// list. Fire-and-forget — a dropping client does not wait on the
    /// loop.
    Deregister {
        tokens: Vec<usize>,
    },
    Submit {
        conn: usize,
        call: Exchange,
    },
}

struct Inbox {
    commands: Vec<Command>,
    shutdown: bool,
}

struct Shared {
    poller: Poller,
    inbox: Mutex<Inbox>,
    stats: ReactorStats,
}

/// What a timer firing means for its connection.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum TimerKind {
    /// The front exchange's deadline passed.
    Deadline,
    /// A non-blocking connect never became writable.
    ConnectTimeout,
    /// Backoff elapsed; a parked queue may try connecting again.
    ConnectRetry,
}

/// Transport state of one connection slot.
enum Link {
    /// No socket. Submits park on the queue and (re)connect lazily.
    Down,
    /// Non-blocking connect in flight, fd registered for EPOLLOUT.
    Connecting(OwnedFd),
    /// Established stream registered for EPOLLIN.
    Up(TcpStream),
}

/// Per-connection state, owned exclusively by the reactor thread. Slots
/// are reused across registrations. Stale timers cannot cross
/// incarnations: every teardown cancels the slot's armed timers, and
/// [`TimerId`]s are generation-checked besides.
struct ConnState {
    link: Link,
    /// In-flight batches in submission order. The wire answers in the same
    /// order, so the front batch owns the next parsed response.
    queue: VecDeque<Exchange>,
    /// Accumulated unparsed response bytes.
    inbuf: Vec<u8>,
    /// Whether EPOLLOUT is currently registered (established links).
    want_write: bool,
    /// Server this slot connects to (meaningless while unregistered).
    addr: SocketAddr,
    /// Per-request deadline for this slot's registration.
    timeout: Duration,
    /// Slot is owned by a live [`Registration`].
    registered: bool,
    /// Armed wheel timer for the front exchange's deadline. The front has
    /// the earliest deadline (FIFO submission, uniform timeout), so one
    /// timer per connection suffices; re-armed on every front change.
    deadline_timer: Option<TimerId>,
    /// Armed `ConnectTimeout` (while `Connecting`) or `ConnectRetry`
    /// (while `Down` in backoff) — exclusive by link state.
    connect_timer: Option<TimerId>,
    /// Current reconnect backoff; zero after a successful connect.
    backoff: Duration,
    /// Earliest instant the next connect attempt may start.
    retry_at: Option<Instant>,
}

impl ConnState {
    fn new() -> ConnState {
        ConnState {
            link: Link::Down,
            queue: VecDeque::new(),
            inbuf: Vec::with_capacity(4096),
            want_write: false,
            addr: SocketAddr::from(([0, 0, 0, 0], 0)),
            timeout: Duration::from_secs(10),
            registered: false,
            deadline_timer: None,
            connect_timer: None,
            backoff: Duration::ZERO,
            retry_at: None,
        }
    }

    fn stream(&self) -> Option<&TcpStream> {
        match &self.link {
            Link::Up(stream) => Some(stream),
            _ => None,
        }
    }
}

struct HandleInner {
    shared: Arc<Shared>,
    thread: Mutex<Option<JoinHandle<()>>>,
}

impl Drop for HandleInner {
    fn drop(&mut self) {
        self.shared.inbox.lock().shutdown = true;
        self.shared.poller.notify();
        if let Some(thread) = self.thread.lock().take() {
            let _ = thread.join();
        }
    }
}

/// Cloneable owner of one shared reactor thread. Clients register their
/// connections with [`TcpClient::connect_shared`]
/// (`crate::net::TcpClient`); every clone refers to the same loop, and
/// the thread exits when the last clone (including those held by live
/// registrations) drops.
#[derive(Clone)]
pub struct ReactorHandle {
    inner: Arc<HandleInner>,
}

impl ReactorHandle {
    /// Spawn the reactor thread (named `memkv-reactor`) with no
    /// registered connections.
    pub fn new() -> KvResult<ReactorHandle> {
        Self::named("memkv-reactor".into())
    }

    fn named(name: String) -> KvResult<ReactorHandle> {
        let poller = Poller::new()?;
        let shared = Arc::new(Shared {
            poller,
            inbox: Mutex::new(Inbox {
                commands: Vec::new(),
                shutdown: false,
            }),
            stats: ReactorStats::default(),
        });
        let event_loop = EventLoop {
            shared: Arc::clone(&shared),
            conns: Vec::new(),
            free: Vec::new(),
            wheel: TimerWheel::new(Instant::now()),
        };
        let thread = std::thread::Builder::new()
            .name(name)
            .spawn(move || event_loop.run())
            .map_err(KvError::Io)?;
        Ok(ReactorHandle {
            inner: Arc::new(HandleInner {
                shared,
                thread: Mutex::new(Some(thread)),
            }),
        })
    }

    /// Current counters for this reactor.
    pub fn stats(&self) -> ReactorStatsSnapshot {
        let shared = &self.inner.shared;
        shared.stats.snapshot(Arc::as_ptr(shared) as usize)
    }

    fn command(&self, cmd: Command) {
        self.inner.shared.inbox.lock().commands.push(cmd);
        self.inner.shared.poller.notify();
    }

    /// Adopt pre-connected `streams` (switched to non-blocking inside the
    /// loop) as one client's connections to the server at `addr`.
    pub(crate) fn register(
        &self,
        addr: SocketAddr,
        streams: Vec<TcpStream>,
        timeout: Duration,
    ) -> KvResult<Registration> {
        let reply = Arc::new(RegisterReply::new());
        self.command(Command::Register {
            addr,
            streams,
            timeout,
            reply: Arc::clone(&reply),
        });
        // The loop cannot shut down while this handle is alive, so the
        // reply always arrives.
        let tokens = reply.wait().map_err(KvError::Io)?;
        Ok(Registration {
            handle: self.clone(),
            tokens,
            timeout,
        })
    }

    /// Queue one pre-encoded batch on connection `token` and return the
    /// completion handle. Never blocks on the network.
    fn submit(
        &self,
        token: usize,
        segments: Vec<Bytes>,
        expect: usize,
        idempotent: bool,
        timeout: Duration,
    ) -> PendingExchange {
        let done = Arc::new(CallShared {
            state: Mutex::new(None),
            cv: Condvar::new(),
        });
        if expect == 0 {
            Exchange::deliver(&done, Ok(Vec::new()));
            return PendingExchange { done };
        }
        debug_assert!(segments.iter().all(|s| !s.is_empty()));
        let call = Exchange {
            segments,
            seg: 0,
            off: 0,
            expect,
            got: Vec::with_capacity(expect),
            idempotent,
            retried: false,
            deadline: Instant::now() + timeout,
            done: Arc::clone(&done),
        };
        self.command(Command::Submit { conn: token, call });
        PendingExchange { done }
    }
}

/// A fixed fleet of reactors for one mount, sharding servers across
/// loops by index. One loop saturates most mounts; wide mounts on fast
/// networks can spread their servers over several
/// (`MemFsConfig::reactor_threads`). Threads are named
/// `memkv-reactor/<i>` — the census prefix `memkv-reactor` still counts
/// them.
#[derive(Clone)]
pub struct ReactorSet {
    reactors: Vec<ReactorHandle>,
}

impl ReactorSet {
    /// Spawn `n` reactor loops (at least one).
    pub fn new(n: usize) -> KvResult<ReactorSet> {
        let reactors = (0..n.max(1))
            .map(|i| {
                let mut name = format!("memkv-reactor/{i}");
                // Linux thread names cap at 15 bytes; keep the census
                // prefix intact for any fleet size.
                name.truncate(15);
                ReactorHandle::named(name)
            })
            .collect::<KvResult<Vec<_>>>()?;
        Ok(ReactorSet { reactors })
    }

    pub fn len(&self) -> usize {
        self.reactors.len()
    }

    pub fn is_empty(&self) -> bool {
        self.reactors.is_empty()
    }

    /// The loop that owns server `server_index`'s connections.
    pub fn handle_for(&self, server_index: usize) -> &ReactorHandle {
        &self.reactors[server_index % self.reactors.len()]
    }

    pub fn handles(&self) -> &[ReactorHandle] {
        &self.reactors
    }
}

/// One client's set of connections inside a shared reactor. Dropping it
/// deregisters the connections (queued batches fail with `NotConnected`)
/// and keeps the reactor alive for other registrants.
pub(crate) struct Registration {
    handle: ReactorHandle,
    tokens: Vec<usize>,
    timeout: Duration,
}

impl Registration {
    pub(crate) fn len(&self) -> usize {
        self.tokens.len()
    }

    pub(crate) fn handle(&self) -> &ReactorHandle {
        &self.handle
    }

    /// Submit on the `slot`-th registered connection.
    pub(crate) fn submit(
        &self,
        slot: usize,
        segments: Vec<Bytes>,
        expect: usize,
        idempotent: bool,
    ) -> PendingExchange {
        self.handle.submit(
            self.tokens[slot],
            segments,
            expect,
            idempotent,
            self.timeout,
        )
    }
}

impl Drop for Registration {
    fn drop(&mut self) {
        self.handle.command(Command::Deregister {
            tokens: std::mem::take(&mut self.tokens),
        });
    }
}

/// Duplicate an `io::Error` (needed to fan one failure out to a whole
/// queue of batches).
fn dup_io(err: &io::Error) -> io::Error {
    io::Error::new(err.kind(), err.to_string())
}

/// Outcome of starting a non-blocking `connect()`.
enum ConnectStart {
    /// Completed synchronously (possible on loopback).
    Connected(OwnedFd),
    /// `EINPROGRESS`: park on EPOLLOUT for the verdict.
    InProgress(OwnedFd),
}

/// `socket(SOCK_NONBLOCK) + connect()`, never blocking the loop.
fn start_nonblocking_connect(addr: &SocketAddr) -> io::Result<ConnectStart> {
    let domain = match addr {
        SocketAddr::V4(_) => libc::AF_INET,
        SocketAddr::V6(_) => libc::AF_INET6,
    };
    let raw = unsafe {
        libc::socket(
            domain,
            libc::SOCK_STREAM | libc::SOCK_NONBLOCK | libc::SOCK_CLOEXEC,
            0,
        )
    };
    if raw < 0 {
        return Err(io::Error::last_os_error());
    }
    let fd = unsafe { OwnedFd::from_raw_fd(raw) };
    let rc = match addr {
        SocketAddr::V4(a) => {
            let sin = libc::sockaddr_in {
                sin_family: libc::AF_INET as libc::sa_family_t,
                sin_port: a.port().to_be(),
                sin_addr: libc::in_addr {
                    s_addr: u32::from_ne_bytes(a.ip().octets()),
                },
                sin_zero: [0; 8],
            };
            unsafe {
                libc::connect(
                    fd.as_raw_fd(),
                    (&sin as *const libc::sockaddr_in).cast(),
                    std::mem::size_of::<libc::sockaddr_in>() as libc::socklen_t,
                )
            }
        }
        SocketAddr::V6(a) => {
            let sin6 = libc::sockaddr_in6 {
                sin6_family: libc::AF_INET6 as libc::sa_family_t,
                sin6_port: a.port().to_be(),
                sin6_flowinfo: a.flowinfo(),
                sin6_addr: libc::in6_addr {
                    s6_addr: a.ip().octets(),
                },
                sin6_scope_id: a.scope_id(),
            };
            unsafe {
                libc::connect(
                    fd.as_raw_fd(),
                    (&sin6 as *const libc::sockaddr_in6).cast(),
                    std::mem::size_of::<libc::sockaddr_in6>() as libc::socklen_t,
                )
            }
        }
    };
    if rc == 0 {
        return Ok(ConnectStart::Connected(fd));
    }
    let err = io::Error::last_os_error();
    match err.raw_os_error() {
        Some(code) if code == libc::EINPROGRESS || code == libc::EINTR => {
            Ok(ConnectStart::InProgress(fd))
        }
        _ => Err(err),
    }
}

/// Pending error on a connecting socket (`SO_ERROR`), 0 when connected.
fn connect_so_error(fd: RawFd) -> io::Result<i32> {
    let mut err: libc::c_int = 0;
    let mut len = std::mem::size_of::<libc::c_int>() as libc::socklen_t;
    let rc = unsafe {
        libc::getsockopt(
            fd,
            libc::SOL_SOCKET,
            libc::SO_ERROR,
            (&mut err as *mut libc::c_int).cast(),
            &mut len,
        )
    };
    if rc < 0 {
        Err(io::Error::last_os_error())
    } else {
        Ok(err)
    }
}

struct EventLoop {
    shared: Arc<Shared>,
    /// Token-indexed connection slab.
    conns: Vec<ConnState>,
    /// Deregistered slots available for reuse.
    free: Vec<usize>,
    /// All armed timers of this loop: request deadlines, connect
    /// timeouts, reconnect backoffs.
    wheel: TimerWheel<(usize, TimerKind)>,
}

impl EventLoop {
    fn run(mut self) {
        let mut events: Vec<(u64, u32)> = Vec::new();
        loop {
            // Completions delivered by this iteration — commands, expired
            // timers and socket events alike — count as one wake batch.
            let before = self.shared.stats.completions.load(Ordering::Relaxed);
            let (commands, shutdown) = {
                let mut inbox = self.shared.inbox.lock();
                (std::mem::take(&mut inbox.commands), inbox.shutdown)
            };
            for cmd in commands {
                self.handle_command(cmd);
            }
            if shutdown {
                self.abort_all();
                return;
            }
            for (idx, kind) in self.wheel.advance(Instant::now()) {
                self.handle_timer(idx, kind);
            }
            self.shared
                .stats
                .timer_cascades
                .store(self.wheel.cascades(), Ordering::Relaxed);
            let poll_timeout = self
                .wheel
                .next_wake()
                .map(|d| d.saturating_duration_since(Instant::now()));
            if self.shared.poller.wait(&mut events, poll_timeout).is_err() {
                // Transient poll failure: retry; timers still advance.
                continue;
            }
            self.shared.stats.wakeups.fetch_add(1, Ordering::Relaxed);
            for &(token, ev) in events.iter() {
                if token == WAKE_TOKEN {
                    self.shared.poller.drain_wake();
                    continue;
                }
                let idx = token as usize;
                if idx >= self.conns.len() {
                    continue;
                }
                if matches!(self.conns[idx].link, Link::Connecting(_)) {
                    // Writable or error: either way SO_ERROR renders the
                    // verdict on the in-flight connect.
                    if ev & (libc::EPOLLOUT | libc::EPOLLERR | libc::EPOLLHUP) != 0 {
                        self.finish_connect(idx);
                    }
                    continue;
                }
                if ev & (libc::EPOLLERR | libc::EPOLLHUP) != 0 {
                    self.kill_conn(
                        idx,
                        io::Error::new(io::ErrorKind::ConnectionReset, "connection error"),
                    );
                    continue;
                }
                if ev & (libc::EPOLLIN | libc::EPOLLRDHUP) != 0 {
                    self.handle_readable(idx);
                }
                if ev & libc::EPOLLOUT != 0 {
                    self.flush_conn(idx);
                }
            }
            let delivered = self.shared.stats.completions.load(Ordering::Relaxed) - before;
            if delivered > 0 {
                self.shared
                    .stats
                    .completion_batches
                    .fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    fn handle_command(&mut self, cmd: Command) {
        match cmd {
            Command::Register {
                addr,
                streams,
                timeout,
                reply,
            } => self.handle_register(addr, streams, timeout, &reply),
            Command::Deregister { tokens } => {
                for token in tokens {
                    self.release_slot(token);
                }
            }
            Command::Submit { conn, call } => {
                self.conns[conn].queue.push_back(call);
                if self.conns[conn].queue.len() == 1 {
                    self.arm_front_deadline(conn);
                }
                if matches!(self.conns[conn].link, Link::Up(_)) {
                    self.flush_conn(conn);
                } else if matches!(self.conns[conn].link, Link::Down) {
                    // Lazy reconnect: a connection that died idle (server
                    // restart between calls) comes back on first use. A
                    // pending connect needs nothing — its completion
                    // flushes the queue.
                    self.maybe_connect(conn);
                }
            }
        }
    }

    fn handle_timer(&mut self, idx: usize, kind: TimerKind) {
        match kind {
            TimerKind::Deadline => {
                self.conns[idx].deadline_timer = None;
                let now = Instant::now();
                let expired = self.conns[idx]
                    .queue
                    .front()
                    .is_some_and(|ex| ex.deadline <= now);
                if !expired {
                    // Wheel ticks round up, so this is unreachable in
                    // practice; re-arm defensively rather than drop a
                    // deadline.
                    self.arm_front_deadline(idx);
                    return;
                }
                let front = self.conns[idx].queue.pop_front().expect("front expired");
                let after = self.conns[idx].timeout;
                // Count before delivering: a caller that observed the
                // Timeout error must also observe the counter.
                self.shared.stats.timeouts.fetch_add(1, Ordering::Relaxed);
                front.finish_err(KvError::Timeout { after }, &self.shared.stats);
                self.kill_conn(
                    idx,
                    io::Error::new(
                        io::ErrorKind::TimedOut,
                        "connection abandoned after request timeout",
                    ),
                );
            }
            TimerKind::ConnectTimeout => {
                self.conns[idx].connect_timer = None;
                if matches!(self.conns[idx].link, Link::Connecting(_)) {
                    self.connect_failed(
                        idx,
                        io::Error::new(io::ErrorKind::TimedOut, "connect timed out"),
                    );
                }
            }
            TimerKind::ConnectRetry => {
                self.conns[idx].connect_timer = None;
                let wants_connect = self.conns[idx].registered
                    && matches!(self.conns[idx].link, Link::Down)
                    && !self.conns[idx].queue.is_empty();
                if wants_connect {
                    self.begin_connect(idx);
                }
            }
        }
    }

    /// (Re)arm `idx`'s deadline timer for its current queue front.
    fn arm_front_deadline(&mut self, idx: usize) {
        if let Some(id) = self.conns[idx].deadline_timer.take() {
            self.wheel.cancel(id);
        }
        if let Some(deadline) = self.conns[idx].queue.front().map(|ex| ex.deadline) {
            let id = self.wheel.arm(deadline, (idx, TimerKind::Deadline));
            self.conns[idx].deadline_timer = Some(id);
        }
    }

    /// Allocate one slot per stream, wire the fds into epoll, and answer
    /// the registering client with the tokens. Partial failure rolls the
    /// already-adopted streams back.
    fn handle_register(
        &mut self,
        addr: SocketAddr,
        streams: Vec<TcpStream>,
        timeout: Duration,
        reply: &RegisterReply,
    ) {
        let mut tokens = Vec::with_capacity(streams.len());
        let mut failure: Option<io::Error> = None;
        for stream in streams {
            let token = self.alloc_slot();
            {
                let conn = &mut self.conns[token];
                conn.addr = addr;
                conn.timeout = timeout;
                conn.registered = true;
            }
            self.shared
                .stats
                .registered_connections
                .fetch_add(1, Ordering::Relaxed);
            match self.adopt_stream(token, stream) {
                Ok(()) => tokens.push(token),
                Err(err) => {
                    self.release_slot(token);
                    failure = Some(err);
                    break;
                }
            }
        }
        match failure {
            None => reply.set(Ok(tokens)),
            Some(err) => {
                for token in tokens {
                    self.release_slot(token);
                }
                reply.set(Err(err));
            }
        }
    }

    fn alloc_slot(&mut self) -> usize {
        match self.free.pop() {
            Some(token) => token,
            None => {
                self.conns.push(ConnState::new());
                self.conns.len() - 1
            }
        }
    }

    /// Deregister one slot: fail its queue, abandon any in-flight
    /// connect, cancel its timers, and free the token.
    fn release_slot(&mut self, token: usize) {
        if !self.conns[token].registered {
            return;
        }
        self.close_stream(token);
        let queue = std::mem::take(&mut self.conns[token].queue);
        for ex in queue {
            ex.finish_err(
                KvError::Io(io::Error::new(io::ErrorKind::NotConnected, "client closed")),
                &self.shared.stats,
            );
        }
        self.arm_front_deadline(token); // queue empty: cancels the timer
        let conn = &mut self.conns[token];
        conn.registered = false;
        conn.backoff = Duration::ZERO;
        conn.retry_at = None;
        self.shared
            .stats
            .registered_connections
            .fetch_sub(1, Ordering::Relaxed);
        self.free.push(token);
    }

    fn adopt_stream(&mut self, idx: usize, stream: TcpStream) -> io::Result<()> {
        stream.set_nodelay(true)?;
        stream.set_nonblocking(true)?;
        self.shared.poller.add(
            stream.as_raw_fd(),
            idx as u64,
            libc::EPOLLIN | libc::EPOLLRDHUP,
        )?;
        let conn = &mut self.conns[idx];
        conn.link = Link::Up(stream);
        conn.want_write = false;
        conn.inbuf.clear();
        Ok(())
    }

    /// Start connecting `idx` now if allowed, or park behind a
    /// `ConnectRetry` timer while backoff from the last failure runs.
    fn maybe_connect(&mut self, idx: usize) {
        let conn = &self.conns[idx];
        if !conn.registered || !matches!(conn.link, Link::Down) {
            return;
        }
        if conn.connect_timer.is_some() {
            return; // a retry is already scheduled
        }
        let now = Instant::now();
        match conn.retry_at {
            Some(at) if at > now => {
                let id = self.wheel.arm(at, (idx, TimerKind::ConnectRetry));
                self.conns[idx].connect_timer = Some(id);
            }
            _ => self.begin_connect(idx),
        }
    }

    /// Issue the non-blocking connect and park it on EPOLLOUT.
    fn begin_connect(&mut self, idx: usize) {
        debug_assert!(matches!(self.conns[idx].link, Link::Down));
        let addr = self.conns[idx].addr;
        self.shared.stats.reconnects.fetch_add(1, Ordering::Relaxed);
        match start_nonblocking_connect(&addr) {
            Ok(ConnectStart::Connected(fd)) => match self.adopt_stream(idx, TcpStream::from(fd)) {
                Ok(()) => {
                    self.connect_succeeded(idx);
                }
                Err(err) => self.fail_queue(idx, err),
            },
            Ok(ConnectStart::InProgress(fd)) => {
                if let Err(err) = self
                    .shared
                    .poller
                    .add(fd.as_raw_fd(), idx as u64, libc::EPOLLOUT)
                {
                    self.record_connect_failure(idx, err);
                    return;
                }
                self.shared
                    .stats
                    .connects_in_flight
                    .fetch_add(1, Ordering::Relaxed);
                let deadline = Instant::now() + self.conns[idx].timeout.max(MIN_CONNECT_TIMEOUT);
                let id = self.wheel.arm(deadline, (idx, TimerKind::ConnectTimeout));
                let conn = &mut self.conns[idx];
                conn.link = Link::Connecting(fd);
                conn.connect_timer = Some(id);
            }
            Err(err) => self.record_connect_failure(idx, err),
        }
    }

    /// EPOLLOUT (or an error event) on a `Connecting` fd: read the
    /// verdict from `SO_ERROR` and either adopt the stream or fail.
    fn finish_connect(&mut self, idx: usize) {
        let raw = match &self.conns[idx].link {
            Link::Connecting(fd) => fd.as_raw_fd(),
            _ => return,
        };
        match connect_so_error(raw) {
            Ok(0) => {
                let fd = self
                    .teardown_connecting(idx)
                    .expect("link checked Connecting");
                match self.adopt_stream(idx, TcpStream::from(fd)) {
                    Ok(()) => {
                        self.connect_succeeded(idx);
                        self.flush_conn(idx);
                    }
                    Err(err) => self.fail_queue(idx, err),
                }
            }
            Ok(code) => self.connect_failed(idx, io::Error::from_raw_os_error(code)),
            Err(err) => self.connect_failed(idx, err),
        }
    }

    fn connect_succeeded(&mut self, idx: usize) {
        let conn = &mut self.conns[idx];
        conn.backoff = Duration::ZERO;
        conn.retry_at = None;
    }

    /// Abandon the in-flight connect (if any), note the backoff, and
    /// surface `err` to every queued batch — the replay budget of
    /// anything that made it here is already spent.
    fn connect_failed(&mut self, idx: usize, err: io::Error) {
        self.teardown_connecting(idx);
        self.record_connect_failure(idx, err);
    }

    fn record_connect_failure(&mut self, idx: usize, err: io::Error) {
        let conn = &mut self.conns[idx];
        conn.backoff = if conn.backoff.is_zero() {
            MIN_BACKOFF
        } else {
            (conn.backoff * 2).min(MAX_BACKOFF)
        };
        conn.retry_at = Some(Instant::now() + conn.backoff);
        self.fail_queue(idx, err);
    }

    /// Drop a `Connecting` fd: deregister from epoll, cancel the connect
    /// (or retry) timer, and settle the in-flight gauge. Returns the fd
    /// when the link really was connecting.
    fn teardown_connecting(&mut self, idx: usize) -> Option<OwnedFd> {
        if let Some(id) = self.conns[idx].connect_timer.take() {
            self.wheel.cancel(id);
        }
        if !matches!(self.conns[idx].link, Link::Connecting(_)) {
            return None;
        }
        let Link::Connecting(fd) = std::mem::replace(&mut self.conns[idx].link, Link::Down) else {
            unreachable!("link checked above");
        };
        let _ = self.shared.poller.delete(fd.as_raw_fd());
        self.shared
            .stats
            .connects_in_flight
            .fetch_sub(1, Ordering::Relaxed);
        Some(fd)
    }

    /// Tear the link down without touching the queue.
    fn close_stream(&mut self, idx: usize) {
        drop(self.teardown_connecting(idx));
        if let Link::Up(stream) = std::mem::replace(&mut self.conns[idx].link, Link::Down) {
            let _ = self.shared.poller.delete(stream.as_raw_fd());
            drop(stream);
        }
        let conn = &mut self.conns[idx];
        conn.inbuf.clear();
        conn.want_write = false;
    }

    /// The connection failed: idempotent batches that have not burned
    /// their replay yet stay queued (with reset cursors) for the
    /// reconnect; everything else completes with the I/O error.
    fn kill_conn(&mut self, idx: usize, err: io::Error) {
        self.close_stream(idx);
        let queue = std::mem::take(&mut self.conns[idx].queue);
        let mut keep = VecDeque::new();
        for mut ex in queue {
            if ex.idempotent && !ex.retried {
                ex.retried = true;
                ex.seg = 0;
                ex.off = 0;
                ex.got.clear();
                keep.push_back(ex);
            } else {
                ex.finish_err(KvError::Io(dup_io(&err)), &self.shared.stats);
            }
        }
        self.conns[idx].queue = keep;
        self.arm_front_deadline(idx);
        if !self.conns[idx].queue.is_empty() {
            self.maybe_connect(idx);
        }
    }

    /// Complete every queued batch with `err` (terminal — no retry).
    fn fail_queue(&mut self, idx: usize, err: io::Error) {
        self.close_stream(idx);
        let queue = std::mem::take(&mut self.conns[idx].queue);
        for ex in queue {
            ex.finish_err(KvError::Io(dup_io(&err)), &self.shared.stats);
        }
        self.arm_front_deadline(idx); // queue empty: cancels the timer
    }

    fn handle_readable(&mut self, idx: usize) {
        let mut chunk = [0u8; READ_CHUNK];
        loop {
            let conn = &mut self.conns[idx];
            let Some(stream) = conn.stream() else {
                return;
            };
            let mut reader = stream;
            match reader.read(&mut chunk) {
                Ok(0) => {
                    if conn.queue.is_empty() {
                        // Idle EOF: the server went away between calls.
                        // Close quietly; the next submit reconnects.
                        self.close_stream(idx);
                    } else {
                        self.kill_conn(
                            idx,
                            io::Error::new(
                                io::ErrorKind::UnexpectedEof,
                                "server closed connection",
                            ),
                        );
                    }
                    return;
                }
                Ok(n) => {
                    conn.inbuf.extend_from_slice(&chunk[..n]);
                    self.shared
                        .stats
                        .bytes_rx
                        .fetch_add(n as u64, Ordering::Relaxed);
                    if let Err(err) = self.drain_inbuf(idx) {
                        self.poison_conn(idx, err);
                        return;
                    }
                }
                Err(err) if err.kind() == io::ErrorKind::WouldBlock => return,
                Err(err) if err.kind() == io::ErrorKind::Interrupted => continue,
                Err(err) => {
                    self.kill_conn(idx, err);
                    return;
                }
            }
        }
    }

    /// Parse as many complete responses as the buffer holds, completing
    /// front-of-queue batches as their counts fill.
    fn drain_inbuf(&mut self, idx: usize) -> KvResult<()> {
        let mut front_changed = false;
        let result = loop {
            let conn = &mut self.conns[idx];
            if conn.inbuf.is_empty() {
                break Ok(());
            }
            if conn.queue.is_empty() {
                break Err(KvError::Protocol(
                    "unsolicited response bytes from server".into(),
                ));
            }
            match try_parse_response(&mut conn.inbuf) {
                Err(err) => break Err(err),
                Ok(ParseStep::More(hint)) => {
                    // A `VALUE` header announces its payload length; grow
                    // the buffer once instead of per 64 KiB read.
                    conn.inbuf.reserve(hint);
                    break Ok(());
                }
                Ok(ParseStep::Done(resp)) => {
                    let front = conn.queue.front_mut().expect("queue checked non-empty");
                    front.got.push(resp);
                    if front.got.len() == front.expect {
                        let ex = conn.queue.pop_front().expect("front exists");
                        ex.finish_ok(&self.shared.stats);
                        front_changed = true;
                    }
                }
            }
        };
        if front_changed {
            self.arm_front_deadline(idx);
        }
        result
    }

    /// A protocol-level breach: the front batch gets the parse error, the
    /// connection is unusable (framing lost) so the rest rides the normal
    /// kill path.
    fn poison_conn(&mut self, idx: usize, err: KvError) {
        if let Some(front) = self.conns[idx].queue.pop_front() {
            front.finish_err(err, &self.shared.stats);
        }
        self.kill_conn(
            idx,
            io::Error::new(
                io::ErrorKind::InvalidData,
                "connection closed after protocol error",
            ),
        );
    }

    fn flush_conn(&mut self, idx: usize) {
        match write_queued(&mut self.conns[idx]) {
            Ok(written) => {
                if written > 0 {
                    self.shared
                        .stats
                        .bytes_tx
                        .fetch_add(written, Ordering::Relaxed);
                }
                self.update_write_interest(idx);
            }
            Err(err) => self.kill_conn(idx, err),
        }
    }

    /// Keep EPOLLOUT registered exactly while unwritten bytes exist
    /// (level-triggered — leaving it on would spin the reactor).
    fn update_write_interest(&mut self, idx: usize) {
        let conn = &mut self.conns[idx];
        let want = conn.queue.iter().any(Exchange::unwritten);
        let Some(stream) = conn.stream() else {
            return;
        };
        if want != conn.want_write {
            let mut interest = libc::EPOLLIN | libc::EPOLLRDHUP;
            if want {
                interest |= libc::EPOLLOUT;
            }
            let fd = stream.as_raw_fd();
            if self.shared.poller.modify(fd, idx as u64, interest).is_ok() {
                self.conns[idx].want_write = want;
            }
        }
    }

    fn abort_all(&mut self) {
        for idx in 0..self.conns.len() {
            self.close_stream(idx);
            let queue = std::mem::take(&mut self.conns[idx].queue);
            for ex in queue {
                ex.finish_err(
                    KvError::Io(io::Error::new(
                        io::ErrorKind::NotConnected,
                        "client shut down",
                    )),
                    &self.shared.stats,
                );
            }
        }
    }
}

/// Write queued batches in FIFO order with vectored non-blocking writes,
/// stopping at `WouldBlock`; returns the bytes written. Zero-copy: iovecs
/// point straight into the pre-encoded segments (stripe payloads
/// included) — this is the single-copy write path's last hop.
fn write_queued(conn: &mut ConnState) -> io::Result<u64> {
    let mut total: u64 = 0;
    loop {
        let Some(mut writer) = conn.stream() else {
            return Ok(total);
        };
        let mut slices: Vec<IoSlice<'_>> = Vec::with_capacity(MAX_IOV);
        for ex in conn.queue.iter() {
            let mut off = ex.off;
            for seg in ex.segments.iter().skip(ex.seg) {
                if slices.len() == MAX_IOV {
                    break;
                }
                if off < seg.len() {
                    slices.push(IoSlice::new(&seg[off..]));
                }
                off = 0;
            }
            if slices.len() == MAX_IOV {
                break;
            }
        }
        if slices.is_empty() {
            return Ok(total);
        }
        let mut n = match writer.write_vectored(&slices) {
            Ok(0) => {
                return Err(io::Error::new(
                    io::ErrorKind::WriteZero,
                    "failed to write frame",
                ))
            }
            Ok(n) => n,
            Err(err) if err.kind() == io::ErrorKind::WouldBlock => return Ok(total),
            Err(err) if err.kind() == io::ErrorKind::Interrupted => continue,
            Err(err) => return Err(err),
        };
        total += n as u64;
        drop(slices);
        for ex in conn.queue.iter_mut() {
            while n > 0 && ex.seg < ex.segments.len() {
                let avail = ex.segments[ex.seg].len() - ex.off;
                if n >= avail {
                    n -= avail;
                    ex.seg += 1;
                    ex.off = 0;
                } else {
                    ex.off += n;
                    n = 0;
                }
            }
            if n == 0 {
                break;
            }
        }
    }
}
