//! Deterministic shaped-cluster test harness.
//!
//! Real-TCP fault and traffic shaping for transport tests: every storage
//! server sits behind a [`ShapedProxy`] that can inject latency, cap
//! bandwidth, stall silently, sever or refuse connections, and cut a
//! stream mid-frame — the failure shapes a distributed mount actually
//! meets, reproduced on loopback with no external tooling.
//!
//! The module is ordinary (non-`cfg(test)`) code so integration tests in
//! other crates can drive it; nothing in the production transport depends
//! on it.
//!
//! Determinism: tests derive their randomness from [`Rng`], seeded either
//! explicitly or from the `MEMFS_SHAPE_SEED` environment variable via
//! [`seed_from_env`], so a soak-loop failure reproduces by exporting the
//! seed it printed.

use std::io::{Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crate::client::KvClient;
use crate::net::{KvServer, PoolConfig, TcpClient};
use crate::reactor::ReactorSet;
use crate::store::Store;

/// Traffic shape applied to each direction of a proxied connection.
#[derive(Debug, Clone, Copy, Default)]
pub struct Shape {
    /// Extra delay injected per forwarded burst (a proxy-side read). Small
    /// pipelined frames travel as one burst, so this models per-message
    /// network latency.
    pub latency: Duration,
    /// Aggregate bytes/second through the proxy (both directions share one
    /// token bucket, like a NIC). `0` means unlimited.
    pub bandwidth: u64,
}

impl Shape {
    /// An unshaped pass-through proxy (useful for pure fault injection).
    pub fn clean() -> Shape {
        Shape::default()
    }

    /// Latency-only shape.
    pub fn lagged(latency: Duration) -> Shape {
        Shape {
            latency,
            bandwidth: 0,
        }
    }

    /// Bandwidth-only shape.
    pub fn throttled(bytes_per_sec: u64) -> Shape {
        Shape {
            latency: Duration::ZERO,
            bandwidth: bytes_per_sec,
        }
    }
}

/// Shared token bucket pacing both directions of a proxy.
struct TokenBucket {
    rate: u64,
    tokens: f64,
    last: Instant,
}

impl TokenBucket {
    fn new(rate: u64) -> TokenBucket {
        TokenBucket {
            rate,
            // A modest burst allowance keeps small frames from paying a
            // full pacing round trip while still bounding throughput.
            tokens: rate as f64 / 50.0,
            last: Instant::now(),
        }
    }

    /// How long to sleep before `n` bytes may pass.
    fn reserve(&mut self, n: usize) -> Duration {
        let now = Instant::now();
        let cap = (self.rate as f64 / 50.0).max(1.0);
        self.tokens = (self.tokens
            + now.duration_since(self.last).as_secs_f64() * self.rate as f64)
            .min(cap.max(n as f64));
        self.last = now;
        self.tokens -= n as f64;
        if self.tokens >= 0.0 {
            Duration::ZERO
        } else {
            Duration::from_secs_f64(-self.tokens / self.rate as f64)
        }
    }
}

struct ProxyInner {
    shape: Shape,
    stop: AtomicBool,
    /// Refuse service: accepted connections are closed immediately and
    /// live ones severed — the shape of a dead server process behind a
    /// still-routable address.
    dead: AtomicBool,
    /// Silently stop forwarding while keeping connections open — the
    /// wedge shape (GC pause, livelocked server, black-holing middlebox).
    stalled: AtomicBool,
    /// Client→server bytes still allowed before the stream is cut
    /// mid-frame. Negative means disabled.
    cut_after: AtomicI64,
    live: Mutex<Vec<TcpStream>>,
    bucket: Mutex<TokenBucket>,
    forwarded: AtomicU64,
}

/// A real-TCP forwarder in front of one storage server, with deterministic
/// fault and traffic-shape injection. See the module docs.
pub struct ShapedProxy {
    addr: SocketAddr,
    inner: Arc<ProxyInner>,
    accept_thread: Option<JoinHandle<()>>,
}

/// Pump-side read chunk. Small enough that bandwidth pacing is smooth at
/// test rates, large enough that a pipelined batch is few bursts.
const PUMP_CHUNK: usize = 16 * 1024;

/// Poll interval for stop/stall/shape checks inside the pump loops.
const PUMP_TICK: Duration = Duration::from_millis(2);

impl ShapedProxy {
    /// Start a proxy on an ephemeral loopback port forwarding to
    /// `upstream` with the given shape.
    pub fn spawn(upstream: SocketAddr, shape: Shape) -> ShapedProxy {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind proxy listener");
        let addr = listener.local_addr().expect("proxy listener addr");
        let inner = Arc::new(ProxyInner {
            shape,
            stop: AtomicBool::new(false),
            dead: AtomicBool::new(false),
            stalled: AtomicBool::new(false),
            cut_after: AtomicI64::new(-1),
            live: Mutex::new(Vec::new()),
            bucket: Mutex::new(TokenBucket::new(shape.bandwidth)),
            forwarded: AtomicU64::new(0),
        });
        let accept_inner = Arc::clone(&inner);
        let accept_thread = std::thread::Builder::new()
            .name(format!("shaped-proxy-{}", addr.port()))
            .spawn(move || {
                for inbound in listener.incoming() {
                    if accept_inner.stop.load(Ordering::SeqCst) {
                        return;
                    }
                    let Ok(inbound) = inbound else { continue };
                    if accept_inner.dead.load(Ordering::SeqCst) {
                        let _ = inbound.shutdown(Shutdown::Both);
                        continue;
                    }
                    let Ok(outbound) = TcpStream::connect(upstream) else {
                        let _ = inbound.shutdown(Shutdown::Both);
                        continue;
                    };
                    inbound.set_nodelay(true).expect("nodelay");
                    outbound.set_nodelay(true).expect("nodelay");
                    {
                        let mut live = accept_inner.live.lock().expect("proxy live lock");
                        live.retain(|c| c.peer_addr().is_ok());
                        live.push(inbound.try_clone().expect("clone inbound"));
                        live.push(outbound.try_clone().expect("clone outbound"));
                    }
                    Self::pump(
                        Arc::clone(&accept_inner),
                        inbound.try_clone().expect("clone inbound"),
                        outbound.try_clone().expect("clone outbound"),
                        true,
                    );
                    Self::pump(Arc::clone(&accept_inner), outbound, inbound, false);
                }
            })
            .expect("spawn proxy accept thread");
        ShapedProxy {
            addr,
            inner,
            accept_thread: Some(accept_thread),
        }
    }

    /// The loopback address clients should connect to.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Total bytes forwarded (both directions) since spawn.
    pub fn bytes_forwarded(&self) -> u64 {
        self.inner.forwarded.load(Ordering::SeqCst)
    }

    /// Sever every live connection; the listener keeps accepting, so
    /// clients can reconnect (link flap / server restart).
    pub fn drop_connections(&self) {
        let mut live = self.inner.live.lock().expect("proxy live lock");
        for conn in live.drain(..) {
            let _ = conn.shutdown(Shutdown::Both);
        }
    }

    /// Kill the server: sever live connections AND refuse new ones until
    /// [`ShapedProxy::revive`].
    pub fn kill(&self) {
        self.inner.dead.store(true, Ordering::SeqCst);
        self.drop_connections();
    }

    /// Accept connections again after [`ShapedProxy::kill`].
    pub fn revive(&self) {
        self.inner.dead.store(false, Ordering::SeqCst);
    }

    /// Stop forwarding without closing anything — requests sent to this
    /// server just never answer until [`ShapedProxy::unstall`].
    pub fn stall(&self) {
        self.inner.stalled.store(true, Ordering::SeqCst);
    }

    /// Resume forwarding after [`ShapedProxy::stall`].
    pub fn unstall(&self) {
        self.inner.stalled.store(false, Ordering::SeqCst);
    }

    /// Cut the client→server stream mid-frame after `bytes` more bytes
    /// have been forwarded, severing both directions — a connection dying
    /// with a request partially written.
    pub fn cut_client_stream_after(&self, bytes: u64) {
        self.inner.cut_after.store(
            i64::try_from(bytes).expect("cut budget fits i64"),
            Ordering::SeqCst,
        );
    }

    fn pump(
        inner: Arc<ProxyInner>,
        mut from: TcpStream,
        mut to: TcpStream,
        client_to_server: bool,
    ) {
        std::thread::spawn(move || {
            // Short read timeouts keep the loop responsive to stop/stall
            // flags even on an idle connection.
            from.set_read_timeout(Some(PUMP_TICK.max(Duration::from_millis(1))))
                .expect("proxy read timeout");
            let mut buf = [0u8; PUMP_CHUNK];
            'outer: loop {
                if inner.stop.load(Ordering::SeqCst) {
                    break;
                }
                let n = match from.read(&mut buf) {
                    Ok(0) => break,
                    Ok(n) => n,
                    Err(e)
                        if e.kind() == std::io::ErrorKind::WouldBlock
                            || e.kind() == std::io::ErrorKind::TimedOut =>
                    {
                        continue;
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                    Err(_) => break,
                };
                // Stall: hold the data (and everything behind it) until
                // released. Connections stay open the whole time.
                while inner.stalled.load(Ordering::SeqCst) {
                    if inner.stop.load(Ordering::SeqCst) {
                        break 'outer;
                    }
                    std::thread::sleep(PUMP_TICK);
                }
                if inner.shape.latency > Duration::ZERO {
                    std::thread::sleep(inner.shape.latency);
                }
                if inner.shape.bandwidth > 0 {
                    let wait = inner.bucket.lock().expect("proxy bucket lock").reserve(n);
                    if wait > Duration::ZERO {
                        std::thread::sleep(wait);
                    }
                }
                let mut send = n;
                let mut cut = false;
                if client_to_server {
                    let budget = inner.cut_after.load(Ordering::SeqCst);
                    if budget >= 0 {
                        if (n as i64) >= budget {
                            send = budget as usize;
                            cut = true;
                            inner.cut_after.store(-1, Ordering::SeqCst);
                        } else {
                            inner.cut_after.store(budget - n as i64, Ordering::SeqCst);
                        }
                    }
                }
                if send > 0 && to.write_all(&buf[..send]).is_err() {
                    break;
                }
                inner.forwarded.fetch_add(send as u64, Ordering::SeqCst);
                if cut {
                    break;
                }
            }
            let _ = to.shutdown(Shutdown::Both);
            let _ = from.shutdown(Shutdown::Both);
        });
    }
}

impl Drop for ShapedProxy {
    fn drop(&mut self) {
        self.inner.stop.store(true, Ordering::SeqCst);
        self.inner.stalled.store(false, Ordering::SeqCst);
        self.drop_connections();
        let _ = TcpStream::connect(self.addr); // unblock accept
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
    }
}

/// `n` real [`KvServer`]s, each behind its own [`ShapedProxy`] — the full
/// shaped deployment a transport test mounts over.
pub struct ShapedCluster {
    servers: Vec<KvServer>,
    proxies: Vec<ShapedProxy>,
}

impl ShapedCluster {
    /// Spawn `n` servers with default stores, every proxy shaped alike.
    pub fn spawn(n: usize, shape: Shape) -> ShapedCluster {
        Self::spawn_with(n, |_| shape, |_| Arc::new(Store::with_defaults()))
    }

    /// Spawn with per-server shapes and stores.
    pub fn spawn_with(
        n: usize,
        shape: impl Fn(usize) -> Shape,
        store: impl Fn(usize) -> Arc<Store>,
    ) -> ShapedCluster {
        let servers: Vec<KvServer> = (0..n)
            .map(|i| KvServer::spawn(store(i), "127.0.0.1:0").expect("spawn kv server"))
            .collect();
        let proxies = servers
            .iter()
            .enumerate()
            .map(|(i, s)| ShapedProxy::spawn(s.addr(), shape(i)))
            .collect();
        ShapedCluster { servers, proxies }
    }

    /// Number of servers.
    pub fn len(&self) -> usize {
        self.servers.len()
    }

    /// Whether the cluster is empty (it never is; for clippy's benefit).
    pub fn is_empty(&self) -> bool {
        self.servers.is_empty()
    }

    /// The shaped proxy in front of server `i`.
    pub fn proxy(&self, i: usize) -> &ShapedProxy {
        &self.proxies[i]
    }

    /// The real server behind proxy `i` (its store is reachable for
    /// assertions).
    pub fn server(&self, i: usize) -> &KvServer {
        &self.servers[i]
    }

    /// Connect one [`TcpClient`] through each proxy, all registered on a
    /// single shared reactor — the per-mount deployment shape. The
    /// reactor handle lives inside the clients; it shuts down when the
    /// last client drops.
    pub fn clients(&self, config: PoolConfig) -> Vec<Arc<dyn KvClient>> {
        self.clients_sharded(config, 1)
    }

    /// Like [`clients`](Self::clients), but sharding the servers across
    /// `n_reactors` loops by index (a [`ReactorSet`]) — the
    /// `reactor_threads > 1` deployment shape for wide mounts.
    pub fn clients_sharded(&self, config: PoolConfig, n_reactors: usize) -> Vec<Arc<dyn KvClient>> {
        let set = ReactorSet::new(n_reactors).expect("spawn reactor set");
        self.proxies
            .iter()
            .enumerate()
            .map(|(i, p)| {
                Arc::new(
                    TcpClient::connect_shared(p.addr(), config.clone(), set.handle_for(i))
                        .expect("connect client"),
                ) as Arc<dyn KvClient>
            })
            .collect()
    }

    /// Connect a single raw [`TcpClient`] through proxy `i`.
    pub fn client(&self, i: usize, config: PoolConfig) -> TcpClient {
        TcpClient::connect_with(self.proxies[i].addr(), config).expect("connect client")
    }
}

/// Tiny deterministic PRNG (xorshift64*) for shaped tests — no external
/// crates, reproducible from a printed seed.
#[derive(Debug, Clone)]
pub struct Rng(u64);

impl Rng {
    /// Seeded constructor; `seed` 0 is mapped to a fixed non-zero value.
    pub fn new(seed: u64) -> Rng {
        Rng(if seed == 0 {
            0x9E37_79B9_7F4A_7C15
        } else {
            seed
        })
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Uniform value in `[lo, hi)`.
    pub fn gen_range(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "empty range");
        lo + self.next_u64() % (hi - lo)
    }
}

/// The seed shaped tests should use: `MEMFS_SHAPE_SEED` when set (so a
/// soak failure reproduces), else a fixed default. Tests print the seed on
/// entry so every failure is replayable.
pub fn seed_from_env() -> u64 {
    std::env::var("MEMFS_SHAPE_SEED")
        .ok()
        .and_then(|s| s.trim().parse().ok())
        .unwrap_or(0xC0FF_EE00_DEAD_BEEF)
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;

    #[test]
    fn shaped_proxy_forwards_and_throttles() {
        let cluster = ShapedCluster::spawn(1, Shape::throttled(1 << 20));
        let client = cluster.client(0, PoolConfig::default());
        let value = Bytes::from(vec![7u8; 256 * 1024]);
        let start = Instant::now();
        client.set(b"k", value.clone()).unwrap();
        assert_eq!(client.get(b"k").unwrap(), value);
        // ~512 KiB moved through a 1 MiB/s pipe: must take visible time.
        assert!(
            start.elapsed() > Duration::from_millis(200),
            "bandwidth cap had no effect ({:?})",
            start.elapsed()
        );
        assert!(cluster.proxy(0).bytes_forwarded() >= 512 * 1024);
    }

    #[test]
    fn stall_and_unstall_round_trip() {
        let cluster = ShapedCluster::spawn(1, Shape::clean());
        let client = cluster.client(0, PoolConfig::default());
        client.set(b"k", Bytes::from_static(b"v")).unwrap();
        cluster.proxy(0).stall();
        let probe = std::thread::spawn({
            let addr = cluster.proxy(0).addr();
            move || {
                let c = TcpClient::connect(addr).unwrap();
                c.get(b"k")
            }
        });
        std::thread::sleep(Duration::from_millis(50));
        assert!(!probe.is_finished(), "stalled proxy must not answer");
        cluster.proxy(0).unstall();
        assert_eq!(probe.join().unwrap().unwrap().as_ref(), b"v");
    }

    #[test]
    fn rng_is_deterministic() {
        let mut a = Rng::new(42);
        let mut b = Rng::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let v = Rng::new(7).gen_range(10, 20);
        assert!((10..20).contains(&v));
    }
}
