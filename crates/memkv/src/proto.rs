//! The memcached **text protocol** — the wire format spoken by
//! [`crate::net::KvServer`] and [`crate::net::TcpClient`].
//!
//! Supported commands (the subset MemFS uses, plus diagnostics):
//!
//! ```text
//! set/add/append <key> <flags> <exptime> <bytes>\r\n<data>\r\n
//! cas <key> <flags> <exptime> <bytes> <cas>\r\n<data>\r\n
//! get <key> [key ...]\r\n  gets <key> [key ...]\r\n
//! delete <key>\r\n         flush_all\r\n
//! stats\r\n                version\r\n       quit\r\n
//! ```
//!
//! Multi-key `get` follows memcached semantics: the server answers with one
//! `VALUE <key> <flags> <bytes>\r\n<data>\r\n` block per *hit*, in request
//! order, then a single `END\r\n`. Misses are silently omitted — the client
//! matches replies to keys by the echoed key, so a batch with misses still
//! frames correctly. This is the transport primitive behind MemFS' batched
//! prefetching: one request fetches a whole prefetch window from a server.
//!
//! Divergence from memcached: `flags` and `exptime` are parsed and accepted
//! but not stored — MemFS always sends zeros, and a runtime file system has
//! no use for expiry. Responses echo `flags = 0`.

use std::fmt::Write as _;

use bytes::Bytes;

use crate::error::{KvError, KvResult};
use crate::stats::StatsSnapshot;

/// A parsed client request.
///
/// Keys are [`Bytes`] so a client batching thousands of stripe keys can
/// build request frames by reference-count bumps instead of deep copies —
/// the hot path of the fan-out dispatcher's per-server batches.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Request {
    Set {
        key: Bytes,
        value: Bytes,
    },
    Add {
        key: Bytes,
        value: Bytes,
    },
    Append {
        key: Bytes,
        value: Bytes,
    },
    Cas {
        key: Bytes,
        value: Bytes,
        token: u64,
    },
    /// One or more keys; replies carry one `VALUE` block per hit.
    Get {
        keys: Vec<Bytes>,
    },
    /// Like `Get` but replies include each value's CAS token.
    Gets {
        keys: Vec<Bytes>,
    },
    Delete {
        key: Bytes,
    },
    FlushAll,
    Stats,
    Version,
    Quit,
    /// Non-standard extension: list all keys (`keys\r\n`). memcached has
    /// no portable enumeration command; MemFS' elastic rebalancer needs
    /// one, so our server adds it.
    Keys,
}

/// A server response.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Response {
    Stored,
    NotStored,
    Exists,
    NotFound,
    Deleted,
    Ok,
    /// `VALUE` + `END` for a single-key `get`; `cas` is included for
    /// `gets`.
    Value {
        key: Bytes,
        value: Bytes,
        cas: Option<u64>,
    },
    /// Two or more `VALUE` blocks before the `END` — a multi-key `get`
    /// with several hits. (Zero hits is a bare [`Response::End`]; exactly
    /// one hit parses as [`Response::Value`] — the wire format cannot
    /// distinguish them, and callers that issued the batch reassemble
    /// per-key results by the echoed keys.)
    Values(Vec<ValueItem>),
    /// Bare `END` — `get` miss.
    End,
    Version(String),
    Stats(Vec<(String, String)>),
    /// Reply to [`Request::Keys`]: `KEY <key>` lines terminated by `END`.
    KeyList(Vec<Vec<u8>>),
    ServerError(String),
    ClientError(String),
}

/// One `VALUE` block of a (multi-)get reply. The key is [`Bytes`] so the
/// client's zero-copy frame parser can hand out slices of the receive
/// buffer for keys as well as values.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ValueItem {
    pub key: Bytes,
    pub value: Bytes,
    pub cas: Option<u64>,
}

/// Outcome of trying to parse one request from a buffer.
#[derive(Debug, PartialEq, Eq)]
pub enum Parsed {
    /// A complete request consuming `n` bytes of the buffer.
    Done(Request, usize),
    /// The buffer does not yet hold a complete request.
    NeedMore,
}

/// Longest accepted command line (bytes before the first CRLF).
pub const MAX_LINE_LEN: usize = 16 * 1024;

fn find_crlf(buf: &[u8]) -> Option<usize> {
    buf.windows(2).position(|w| w == b"\r\n")
}

fn parse_u64(tok: &[u8]) -> KvResult<u64> {
    std::str::from_utf8(tok)
        .ok()
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| KvError::Protocol(format!("bad integer {:?}", String::from_utf8_lossy(tok))))
}

/// Try to parse one request from the front of `buf`.
///
/// Returns [`Parsed::NeedMore`] if the command line or its data block is
/// still incomplete; protocol violations yield [`KvError::Protocol`].
pub fn parse_request(buf: &[u8]) -> KvResult<Parsed> {
    let Some(line_end) = find_crlf(buf) else {
        // Guard against unbounded garbage before the first CRLF. The limit
        // leaves ample headroom for multi-key gets (a full prefetch window
        // of stripe keys is well under 2 KiB).
        if buf.len() > MAX_LINE_LEN {
            return Err(KvError::Protocol("command line too long".into()));
        }
        return Ok(Parsed::NeedMore);
    };
    let line = &buf[..line_end];
    let after_line = line_end + 2;
    let toks: Vec<&[u8]> = line
        .split(|&b| b == b' ')
        .filter(|t| !t.is_empty())
        .collect();
    let verb = *toks
        .first()
        .ok_or_else(|| KvError::Protocol("empty command".into()))?;
    let args = &toks[1..];

    // Storage commands share the `<key> <flags> <exptime> <bytes> [cas]`
    // shape followed by a data block.
    fn parse_storage(args: &[&[u8]], with_cas: bool) -> KvResult<(Bytes, usize, u64)> {
        let expected = if with_cas { 5 } else { 4 };
        if args.len() != expected {
            return Err(KvError::Protocol(format!(
                "storage command expects {expected} arguments, got {}",
                args.len()
            )));
        }
        let key = Bytes::copy_from_slice(args[0]);
        let _flags = parse_u64(args[1])?;
        let _exptime = parse_u64(args[2])?;
        let bytes = parse_u64(args[3])? as usize;
        let token = if with_cas { parse_u64(args[4])? } else { 0 };
        Ok((key, bytes, token))
    }

    match verb {
        b"set" | b"add" | b"append" | b"cas" => {
            let with_cas = verb == b"cas";
            let (key, nbytes, token) = parse_storage(args, with_cas)?;
            let need = after_line + nbytes + 2;
            if buf.len() < need {
                return Ok(Parsed::NeedMore);
            }
            if &buf[after_line + nbytes..need] != b"\r\n" {
                return Err(KvError::Protocol("data block not CRLF-terminated".into()));
            }
            let value = Bytes::copy_from_slice(&buf[after_line..after_line + nbytes]);
            let req = match verb {
                b"set" => Request::Set { key, value },
                b"add" => Request::Add { key, value },
                b"append" => Request::Append { key, value },
                b"cas" => Request::Cas { key, value, token },
                _ => unreachable!(),
            };
            Ok(Parsed::Done(req, need))
        }
        b"get" | b"gets" => {
            if args.is_empty() {
                return Err(KvError::Protocol("get takes at least one key".into()));
            }
            let keys: Vec<Bytes> = args.iter().map(|k| Bytes::copy_from_slice(k)).collect();
            let req = if verb == b"get" {
                Request::Get { keys }
            } else {
                Request::Gets { keys }
            };
            Ok(Parsed::Done(req, after_line))
        }
        b"delete" => {
            if args.len() != 1 {
                return Err(KvError::Protocol("delete takes exactly one key".into()));
            }
            Ok(Parsed::Done(
                Request::Delete {
                    key: Bytes::copy_from_slice(args[0]),
                },
                after_line,
            ))
        }
        b"flush_all" => Ok(Parsed::Done(Request::FlushAll, after_line)),
        b"keys" => Ok(Parsed::Done(Request::Keys, after_line)),
        b"stats" => Ok(Parsed::Done(Request::Stats, after_line)),
        b"version" => Ok(Parsed::Done(Request::Version, after_line)),
        b"quit" => Ok(Parsed::Done(Request::Quit, after_line)),
        other => Err(KvError::Protocol(format!(
            "unknown command {:?}",
            String::from_utf8_lossy(other)
        ))),
    }
}

// ---------------------------------------------------------------------------
// Encoding. Every encoder *appends* to a caller-supplied buffer so that
// connections can reuse one scratch allocation across calls; the old
// `encode_*` entry points remain as allocating wrappers.
// ---------------------------------------------------------------------------

fn write_decimal(out: &mut Vec<u8>, n: u64) {
    let mut s = String::new();
    let _ = write!(s, "{n}");
    out.extend_from_slice(s.as_bytes());
}

/// Append a request's command *line* (including its CRLF) to `out`.
///
/// For storage verbs the data block is **not** appended; the payload is
/// returned instead so transports can transmit it with a vectored write
/// (header + value + CRLF) and skip copying stripe-sized values through
/// the scratch buffer. `None` means the line is the whole frame.
pub fn write_request_line<'r>(req: &'r Request, out: &mut Vec<u8>) -> Option<&'r Bytes> {
    fn storage<'r>(
        out: &mut Vec<u8>,
        verb: &str,
        key: &[u8],
        value: &'r Bytes,
        cas: Option<u64>,
    ) -> Option<&'r Bytes> {
        out.extend_from_slice(verb.as_bytes());
        out.push(b' ');
        out.extend_from_slice(key);
        out.extend_from_slice(b" 0 0 ");
        write_decimal(out, value.len() as u64);
        if let Some(t) = cas {
            out.push(b' ');
            write_decimal(out, t);
        }
        out.extend_from_slice(b"\r\n");
        Some(value)
    }
    fn multi_key(out: &mut Vec<u8>, verb: &[u8], keys: &[Bytes]) {
        out.extend_from_slice(verb);
        for key in keys {
            out.push(b' ');
            out.extend_from_slice(key);
        }
        out.extend_from_slice(b"\r\n");
    }
    match req {
        Request::Set { key, value } => storage(out, "set", key, value, None),
        Request::Add { key, value } => storage(out, "add", key, value, None),
        Request::Append { key, value } => storage(out, "append", key, value, None),
        Request::Cas { key, value, token } => storage(out, "cas", key, value, Some(*token)),
        Request::Get { keys } => {
            multi_key(out, b"get", keys);
            None
        }
        Request::Gets { keys } => {
            multi_key(out, b"gets", keys);
            None
        }
        Request::Delete { key } => {
            out.extend_from_slice(b"delete ");
            out.extend_from_slice(key);
            out.extend_from_slice(b"\r\n");
            None
        }
        Request::FlushAll => {
            out.extend_from_slice(b"flush_all\r\n");
            None
        }
        Request::Keys => {
            out.extend_from_slice(b"keys\r\n");
            None
        }
        Request::Stats => {
            out.extend_from_slice(b"stats\r\n");
            None
        }
        Request::Version => {
            out.extend_from_slice(b"version\r\n");
            None
        }
        Request::Quit => {
            out.extend_from_slice(b"quit\r\n");
            None
        }
    }
}

/// Append a full request frame (line plus any data block) to `out`.
pub fn write_request(req: &Request, out: &mut Vec<u8>) {
    if let Some(value) = write_request_line(req, out) {
        out.extend_from_slice(value);
        out.extend_from_slice(b"\r\n");
    }
}

/// Encode a request into a fresh buffer (client side).
pub fn encode_request(req: &Request) -> Vec<u8> {
    let mut out = Vec::new();
    write_request(req, &mut out);
    out
}

/// Append a `VALUE <key> 0 <bytes> [cas]\r\n` header to `out`. The caller
/// follows it with the value bytes, a CRLF, and eventually `END\r\n`.
pub fn write_value_header(out: &mut Vec<u8>, key: &[u8], len: usize, cas: Option<u64>) {
    out.extend_from_slice(b"VALUE ");
    out.extend_from_slice(key);
    out.extend_from_slice(b" 0 ");
    write_decimal(out, len as u64);
    if let Some(t) = cas {
        out.push(b' ');
        write_decimal(out, t);
    }
    out.extend_from_slice(b"\r\n");
}

/// Append a full response frame to `out`.
pub fn write_response(resp: &Response, out: &mut Vec<u8>) {
    match resp {
        Response::Stored => out.extend_from_slice(b"STORED\r\n"),
        Response::NotStored => out.extend_from_slice(b"NOT_STORED\r\n"),
        Response::Exists => out.extend_from_slice(b"EXISTS\r\n"),
        Response::NotFound => out.extend_from_slice(b"NOT_FOUND\r\n"),
        Response::Deleted => out.extend_from_slice(b"DELETED\r\n"),
        Response::Ok => out.extend_from_slice(b"OK\r\n"),
        Response::End => out.extend_from_slice(b"END\r\n"),
        Response::Value { key, value, cas } => {
            write_value_header(out, key, value.len(), *cas);
            out.extend_from_slice(value);
            out.extend_from_slice(b"\r\nEND\r\n");
        }
        Response::Values(items) => {
            for item in items {
                write_value_header(out, &item.key, item.value.len(), item.cas);
                out.extend_from_slice(&item.value);
                out.extend_from_slice(b"\r\n");
            }
            out.extend_from_slice(b"END\r\n");
        }
        Response::Version(v) => {
            out.extend_from_slice(b"VERSION ");
            out.extend_from_slice(v.as_bytes());
            out.extend_from_slice(b"\r\n");
        }
        Response::Stats(pairs) => {
            for (k, v) in pairs {
                out.extend_from_slice(b"STAT ");
                out.extend_from_slice(k.as_bytes());
                out.push(b' ');
                out.extend_from_slice(v.as_bytes());
                out.extend_from_slice(b"\r\n");
            }
            out.extend_from_slice(b"END\r\n");
        }
        Response::KeyList(keys) => {
            for k in keys {
                out.extend_from_slice(b"KEY ");
                out.extend_from_slice(k);
                out.extend_from_slice(b"\r\n");
            }
            out.extend_from_slice(b"END\r\n");
        }
        Response::ServerError(msg) => {
            out.extend_from_slice(b"SERVER_ERROR ");
            out.extend_from_slice(msg.as_bytes());
            out.extend_from_slice(b"\r\n");
        }
        Response::ClientError(msg) => {
            out.extend_from_slice(b"CLIENT_ERROR ");
            out.extend_from_slice(msg.as_bytes());
            out.extend_from_slice(b"\r\n");
        }
    }
}

/// Encode a response into a fresh buffer (server side).
pub fn encode_response(resp: &Response) -> Vec<u8> {
    let mut out = Vec::new();
    write_response(resp, &mut out);
    out
}

/// Render a stats snapshot as memcached-style `STAT` pairs.
pub fn stats_pairs(snap: &StatsSnapshot) -> Vec<(String, String)> {
    vec![
        ("cmd_get".into(), snap.get_ops.to_string()),
        ("get_hits".into(), snap.get_hits.to_string()),
        (
            "get_misses".into(),
            (snap.get_ops - snap.get_hits).to_string(),
        ),
        ("cmd_mget".into(), snap.mget_ops.to_string()),
        ("cmd_set".into(), snap.set_ops.to_string()),
        ("cmd_add".into(), snap.add_ops.to_string()),
        ("cmd_append".into(), snap.append_ops.to_string()),
        ("cmd_delete".into(), snap.delete_ops.to_string()),
        (
            "cas_hits".into(),
            (snap.cas_ops - snap.cas_misses).to_string(),
        ),
        ("cas_misses".into(), snap.cas_misses.to_string()),
        ("evictions".into(), snap.evictions.to_string()),
        ("bytes".into(), snap.bytes_used.to_string()),
        ("curr_items".into(), snap.item_count.to_string()),
        ("bytes_written".into(), snap.bytes_written.to_string()),
        ("bytes_read".into(), snap.bytes_read.to_string()),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn done(buf: &[u8]) -> (Request, usize) {
        match parse_request(buf).unwrap() {
            Parsed::Done(r, n) => (r, n),
            Parsed::NeedMore => panic!("unexpected NeedMore"),
        }
    }

    #[test]
    fn parse_set_round_trips_through_encode() {
        let req = Request::Set {
            key: Bytes::from_static(b"file#0"),
            value: Bytes::from_static(b"hello world"),
        };
        let wire = encode_request(&req);
        let (parsed, n) = done(&wire);
        assert_eq!(parsed, req);
        assert_eq!(n, wire.len());
    }

    #[test]
    fn parse_all_verbs_round_trip() {
        let reqs = vec![
            Request::Add {
                key: Bytes::from_static(b"k"),
                value: Bytes::from_static(b"v"),
            },
            Request::Append {
                key: Bytes::from_static(b"dir"),
                value: Bytes::from_static(b"+x"),
            },
            Request::Cas {
                key: Bytes::from_static(b"k"),
                value: Bytes::from_static(b"v2"),
                token: 42,
            },
            Request::Get {
                keys: vec![Bytes::from_static(b"k")],
            },
            Request::Get {
                keys: vec![
                    Bytes::from_static(b"k1"),
                    Bytes::from_static(b"k2"),
                    Bytes::from_static(b"k3"),
                ],
            },
            Request::Gets {
                keys: vec![Bytes::from_static(b"k")],
            },
            Request::Gets {
                keys: vec![Bytes::from_static(b"a"), Bytes::from_static(b"b")],
            },
            Request::Delete {
                key: Bytes::from_static(b"k"),
            },
            Request::FlushAll,
            Request::Keys,
            Request::Stats,
            Request::Version,
            Request::Quit,
        ];
        for req in reqs {
            let wire = encode_request(&req);
            let (parsed, n) = done(&wire);
            assert_eq!(parsed, req);
            assert_eq!(n, wire.len());
        }
    }

    #[test]
    fn incomplete_command_needs_more() {
        assert_eq!(parse_request(b"set k 0 0 5").unwrap(), Parsed::NeedMore);
        assert_eq!(
            parse_request(b"set k 0 0 5\r\nhel").unwrap(),
            Parsed::NeedMore
        );
        // Data present but missing trailing CRLF.
        assert_eq!(
            parse_request(b"set k 0 0 5\r\nhello").unwrap(),
            Parsed::NeedMore
        );
    }

    #[test]
    fn pipelined_requests_parse_sequentially() {
        let mut wire = encode_request(&Request::Set {
            key: Bytes::from_static(b"a"),
            value: Bytes::from_static(b"1"),
        });
        wire.extend(encode_request(&Request::Get {
            keys: vec![Bytes::from_static(b"a")],
        }));
        let (r1, n1) = done(&wire);
        assert!(matches!(r1, Request::Set { .. }));
        let (r2, _) = done(&wire[n1..]);
        assert_eq!(
            r2,
            Request::Get {
                keys: vec![Bytes::from_static(b"a")]
            }
        );
    }

    #[test]
    fn binary_safe_values() {
        // Values may contain CRLF; the byte count disambiguates.
        let req = Request::Set {
            key: Bytes::from_static(b"bin"),
            value: Bytes::from_static(b"a\r\nb\0c"),
        };
        let wire = encode_request(&req);
        let (parsed, n) = done(&wire);
        assert_eq!(parsed, req);
        assert_eq!(n, wire.len());
    }

    #[test]
    fn protocol_errors() {
        assert!(parse_request(b"bogus cmd\r\n").is_err());
        assert!(parse_request(b"set k x 0 5\r\nhello\r\n").is_err());
        assert!(parse_request(b"set k 0 0 5 junk extra\r\nhello\r\n").is_err());
        assert!(parse_request(b"get\r\n").is_err());
        // Data block with wrong terminator.
        assert!(parse_request(b"set k 0 0 5\r\nhelloXX").is_err());
    }

    #[test]
    fn oversized_garbage_line_rejected() {
        let garbage = vec![b'x'; MAX_LINE_LEN + 1];
        assert!(parse_request(&garbage).is_err());
    }

    #[test]
    fn multi_key_get_parses_and_encodes() {
        let (req, n) = done(b"get s:/f#0 s:/f#1 s:/f#2\r\n");
        assert_eq!(
            req,
            Request::Get {
                keys: vec![
                    Bytes::from_static(b"s:/f#0"),
                    Bytes::from_static(b"s:/f#1"),
                    Bytes::from_static(b"s:/f#2")
                ],
            }
        );
        assert_eq!(n, 26);
        assert_eq!(
            encode_request(&req),
            b"get s:/f#0 s:/f#1 s:/f#2\r\n".to_vec()
        );
    }

    #[test]
    fn values_response_encodes_value_blocks_then_end() {
        let resp = Response::Values(vec![
            ValueItem {
                key: Bytes::from_static(b"a"),
                value: Bytes::from_static(b"xx"),
                cas: None,
            },
            ValueItem {
                key: Bytes::from_static(b"b"),
                value: Bytes::from_static(b"yyy"),
                cas: Some(9),
            },
        ]);
        assert_eq!(
            encode_response(&resp),
            b"VALUE a 0 2\r\nxx\r\nVALUE b 0 3 9\r\nyyy\r\nEND\r\n".to_vec()
        );
        // Zero hits collapse onto the same wire bytes as a plain miss.
        assert_eq!(
            encode_response(&Response::Values(vec![])),
            b"END\r\n".to_vec()
        );
    }

    #[test]
    fn write_request_reuses_caller_buffer() {
        let mut scratch = Vec::with_capacity(64);
        scratch.extend_from_slice(b"junk-from-last-call");
        scratch.clear();
        let req = Request::Set {
            key: Bytes::from_static(b"k"),
            value: Bytes::from_static(b"hello"),
        };
        let payload = write_request_line(&req, &mut scratch);
        assert_eq!(scratch, b"set k 0 0 5\r\n".to_vec());
        assert_eq!(payload.map(|b| &b[..]), Some(&b"hello"[..]));
        assert_eq!(encode_request(&req), b"set k 0 0 5\r\nhello\r\n".to_vec());
    }

    #[test]
    fn encode_value_response_includes_cas_for_gets() {
        let with = encode_response(&Response::Value {
            key: Bytes::from_static(b"k"),
            value: Bytes::from_static(b"vv"),
            cas: Some(7),
        });
        assert_eq!(with, b"VALUE k 0 2 7\r\nvv\r\nEND\r\n".to_vec());
        let without = encode_response(&Response::Value {
            key: Bytes::from_static(b"k"),
            value: Bytes::from_static(b"vv"),
            cas: None,
        });
        assert_eq!(without, b"VALUE k 0 2\r\nvv\r\nEND\r\n".to_vec());
    }

    #[test]
    fn stats_pairs_render() {
        let snap = StatsSnapshot {
            get_ops: 10,
            get_hits: 8,
            ..Default::default()
        };
        let pairs = stats_pairs(&snap);
        assert!(pairs.contains(&("cmd_get".to_string(), "10".to_string())));
        assert!(pairs.contains(&("get_misses".to_string(), "2".to_string())));
    }
}
