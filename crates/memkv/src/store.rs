//! The in-memory store engine: a sharded hash table with memcached
//! semantics, atomic append, CAS, per-item size limits and a memory budget
//! with either hard errors or LRU eviction.

use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};

use bytes::{Bytes, BytesMut};
use parking_lot::RwLock;

use crate::error::{KvError, KvResult};
use crate::stats::StoreStats;

/// Maximum key length, matching memcached's classic limit.
pub const MAX_KEY_LEN: usize = 250;

/// Fixed bookkeeping overhead charged per item against the memory budget
/// (hash-table slot, CAS token, LRU entry — memcached charges a similar
/// item-header cost).
pub const ITEM_OVERHEAD: u64 = 64;

/// What to do when an insert would exceed the memory budget.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EvictionPolicy {
    /// Fail the insert with [`KvError::OutOfMemory`]. This is the mode a
    /// runtime file system needs: silently dropping an intermediate file
    /// would corrupt the workflow, so MemFS prefers a loud error (the
    /// paper runs memcached with eviction effectively never triggering by
    /// sizing the deployment; AMFS *crashes* in the same situation, §4.2.1).
    Error,
    /// Evict least-recently-used items until the new value fits, like a
    /// plain memcached cache deployment.
    Lru,
}

/// Store construction parameters.
#[derive(Debug, Clone)]
pub struct StoreConfig {
    /// Total memory budget in bytes (values + keys + per-item overhead).
    pub memory_budget: u64,
    /// Per-item size limit. Memcached historically caps items (the paper
    /// mentions a 128 MB object limit, §3.2.1); MemFS stripes files so it
    /// never hits this.
    pub max_value_size: usize,
    /// Behaviour when the budget is exhausted.
    pub eviction: EvictionPolicy,
    /// Number of independent shards (power of two recommended).
    pub shards: usize,
}

impl Default for StoreConfig {
    fn default() -> Self {
        StoreConfig {
            memory_budget: 4 << 30,    // 4 GiB
            max_value_size: 128 << 20, // 128 MiB, the paper's figure
            eviction: EvictionPolicy::Error,
            shards: 16,
        }
    }
}

#[derive(Debug)]
struct Entry {
    value: Bytes,
    cas: u64,
    /// Generation stamp for the lazy LRU queue.
    lru_gen: u64,
}

#[derive(Debug, Default)]
struct Shard {
    map: HashMap<Box<[u8]>, Entry>,
    /// Lazy LRU queue of (key, generation). Stale generations are skipped
    /// at eviction time; the queue is compacted when it grows past 2x the
    /// live item count.
    lru: VecDeque<(Box<[u8]>, u64)>,
}

/// A single memcached-style storage server's engine.
///
/// Thread-safe; all operations take `&self`. `append` is atomic with
/// respect to concurrent appends to the same key — the property MemFS'
/// directory protocol builds on.
pub struct Store {
    config: StoreConfig,
    shards: Vec<RwLock<Shard>>,
    stats: StoreStats,
    cas_counter: AtomicU64,
    lru_clock: AtomicU64,
}

impl Store {
    /// Create a store with the given configuration.
    ///
    /// # Panics
    /// Panics if `shards == 0`.
    pub fn new(config: StoreConfig) -> Self {
        assert!(config.shards > 0, "store needs at least one shard");
        let shards = (0..config.shards)
            .map(|_| RwLock::new(Shard::default()))
            .collect();
        Store {
            config,
            shards,
            stats: StoreStats::default(),
            cas_counter: AtomicU64::new(1),
            lru_clock: AtomicU64::new(1),
        }
    }

    /// Create a store with [`StoreConfig::default`].
    pub fn with_defaults() -> Self {
        Store::new(StoreConfig::default())
    }

    /// The store's configuration.
    pub fn config(&self) -> &StoreConfig {
        &self.config
    }

    /// Operation counters and occupancy gauges.
    pub fn stats(&self) -> &StoreStats {
        &self.stats
    }

    /// Current bytes charged against the budget.
    pub fn bytes_used(&self) -> u64 {
        self.stats.snapshot().bytes_used
    }

    /// Number of live items.
    pub fn item_count(&self) -> u64 {
        self.stats.snapshot().item_count
    }

    fn shard_for(&self, key: &[u8]) -> &RwLock<Shard> {
        // FNV-1a; shard count is small so low bits suffice.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for &b in key {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        &self.shards[(h % self.shards.len() as u64) as usize]
    }

    fn validate_key(key: &[u8]) -> KvResult<()> {
        if key.len() > MAX_KEY_LEN {
            return Err(KvError::KeyTooLong(key.len()));
        }
        if key.is_empty() || key.iter().any(|&b| b <= b' ' || b == 0x7f) {
            return Err(KvError::BadKey);
        }
        Ok(())
    }

    fn charge(key: &[u8], value_len: usize) -> u64 {
        key.len() as u64 + value_len as u64 + ITEM_OVERHEAD
    }

    /// Reserve `needed` bytes against the budget, evicting if permitted.
    /// Must be called *before* inserting. Returns Err without side effects
    /// when the policy is `Error` and the budget is insufficient.
    fn reserve(&self, needed: u64) -> KvResult<()> {
        loop {
            let used = self.stats.bytes_used.load(Ordering::Relaxed);
            if used + needed <= self.config.memory_budget {
                // Optimistically claim; competing writers may overshoot by
                // one item transiently, which mirrors memcached's own
                // slack accounting.
                StoreStats::add(&self.stats.bytes_used, needed);
                return Ok(());
            }
            match self.config.eviction {
                EvictionPolicy::Error => {
                    return Err(KvError::OutOfMemory {
                        needed,
                        budget: self.config.memory_budget,
                    })
                }
                EvictionPolicy::Lru => {
                    if !self.evict_one() {
                        return Err(KvError::OutOfMemory {
                            needed,
                            budget: self.config.memory_budget,
                        });
                    }
                }
            }
        }
    }

    /// Evict the globally least-recently-used item. Returns false when no
    /// shard holds anything evictable.
    fn evict_one(&self) -> bool {
        // Pass 1: discard stale queue entries and find the shard whose
        // oldest *live* entry has the smallest generation (global LRU).
        let mut victim_shard: Option<usize> = None;
        let mut victim_gen = u64::MAX;
        for i in 0..self.shards.len() {
            let mut shard = self.shards[i].write();
            while let Some((key, gen)) = shard.lru.front() {
                let live = shard
                    .map
                    .get(key.as_ref())
                    .is_some_and(|e| e.lru_gen == *gen);
                if live {
                    if *gen < victim_gen {
                        victim_gen = *gen;
                        victim_shard = Some(i);
                    }
                    break;
                }
                shard.lru.pop_front();
            }
        }
        let Some(i) = victim_shard else {
            return false;
        };
        // Pass 2: evict that shard's front live entry. A concurrent access
        // may have refreshed it in between; re-walk the queue if so.
        let mut shard = self.shards[i].write();
        while let Some((key, gen)) = shard.lru.pop_front() {
            let live = shard
                .map
                .get(key.as_ref())
                .is_some_and(|e| e.lru_gen == gen);
            if live {
                let entry = shard.map.remove(key.as_ref()).expect("checked live");
                let freed = Self::charge(&key, entry.value.len());
                StoreStats::sub(&self.stats.bytes_used, freed);
                StoreStats::sub(&self.stats.item_count, 1);
                StoreStats::bump(&self.stats.evictions);
                return true;
            }
        }
        false
    }

    fn next_cas(&self) -> u64 {
        self.cas_counter.fetch_add(1, Ordering::Relaxed)
    }

    fn touch_lru(&self, shard: &mut Shard, key: &[u8]) {
        let gen = self.lru_clock.fetch_add(1, Ordering::Relaxed);
        if let Some(e) = shard.map.get_mut(key) {
            e.lru_gen = gen;
        }
        shard.lru.push_back((key.into(), gen));
        // Compact the lazy queue when it is mostly stale.
        if shard.lru.len() > 64 && shard.lru.len() > 2 * shard.map.len() {
            let map = &shard.map;
            shard
                .lru
                .retain(|(k, g)| map.get(k.as_ref()).is_some_and(|e| e.lru_gen == *g));
        }
    }

    /// Store `value` under `key`, replacing any previous value.
    pub fn set(&self, key: &[u8], value: Bytes) -> KvResult<()> {
        Self::validate_key(key)?;
        if value.len() > self.config.max_value_size {
            return Err(KvError::ValueTooLarge {
                size: value.len(),
                limit: self.config.max_value_size,
            });
        }
        StoreStats::bump(&self.stats.set_ops);
        StoreStats::add(&self.stats.bytes_written, value.len() as u64);
        let charge = Self::charge(key, value.len());
        self.reserve(charge)?;
        let cas = self.next_cas();
        let mut shard = self.shard_for(key).write();
        let old = shard.map.insert(
            key.into(),
            Entry {
                value,
                cas,
                lru_gen: 0,
            },
        );
        match old {
            Some(e) => {
                // We charged for a fresh item; release the replaced one.
                StoreStats::sub(&self.stats.bytes_used, Self::charge(key, e.value.len()));
            }
            None => StoreStats::add(&self.stats.item_count, 1),
        }
        self.touch_lru(&mut shard, key);
        Ok(())
    }

    /// Store `value` under `key` only if the key does not exist.
    pub fn add(&self, key: &[u8], value: Bytes) -> KvResult<()> {
        Self::validate_key(key)?;
        if value.len() > self.config.max_value_size {
            return Err(KvError::ValueTooLarge {
                size: value.len(),
                limit: self.config.max_value_size,
            });
        }
        StoreStats::bump(&self.stats.add_ops);
        let charge = Self::charge(key, value.len());
        self.reserve(charge)?;
        let cas = self.next_cas();
        let mut shard = self.shard_for(key).write();
        if shard.map.contains_key(key) {
            drop(shard);
            StoreStats::sub(&self.stats.bytes_used, charge);
            return Err(KvError::Exists);
        }
        StoreStats::add(&self.stats.bytes_written, value.len() as u64);
        shard.map.insert(
            key.into(),
            Entry {
                value,
                cas,
                lru_gen: 0,
            },
        );
        StoreStats::add(&self.stats.item_count, 1);
        self.touch_lru(&mut shard, key);
        Ok(())
    }

    /// Fetch the value stored under `key`. Zero-copy: the returned
    /// [`Bytes`] shares the stored buffer.
    pub fn get(&self, key: &[u8]) -> KvResult<Bytes> {
        Self::validate_key(key)?;
        StoreStats::bump(&self.stats.get_ops);
        let mut shard = self.shard_for(key).write();
        match shard.map.get(key) {
            Some(e) => {
                let value = e.value.clone();
                StoreStats::bump(&self.stats.get_hits);
                StoreStats::add(&self.stats.bytes_read, value.len() as u64);
                self.touch_lru(&mut shard, key);
                Ok(value)
            }
            None => Err(KvError::NotFound),
        }
    }

    /// Fetch several keys in one call (the engine behind multi-key `get`).
    ///
    /// Per-key counters are maintained exactly as if each key had been
    /// fetched individually — `get_ops` and `get_hits` advance per key —
    /// while `mget_ops` counts the batch itself, which is what makes
    /// "one batched request per server per prefetch window" observable
    /// from server stats.
    pub fn get_many<K: AsRef<[u8]>>(&self, keys: &[K]) -> Vec<KvResult<Bytes>> {
        StoreStats::bump(&self.stats.mget_ops);
        keys.iter().map(|k| self.get(k.as_ref())).collect()
    }

    /// Fetch value and CAS token together (`gets` in the wire protocol).
    pub fn gets(&self, key: &[u8]) -> KvResult<(Bytes, u64)> {
        Self::validate_key(key)?;
        StoreStats::bump(&self.stats.get_ops);
        let mut shard = self.shard_for(key).write();
        match shard.map.get(key) {
            Some(e) => {
                let out = (e.value.clone(), e.cas);
                StoreStats::bump(&self.stats.get_hits);
                StoreStats::add(&self.stats.bytes_read, out.0.len() as u64);
                self.touch_lru(&mut shard, key);
                Ok(out)
            }
            None => Err(KvError::NotFound),
        }
    }

    /// Atomically append `suffix` to the value under `key`.
    ///
    /// This is the operation the MemFS directory protocol relies on
    /// (paper §3.2.4: "the Memcached append function that is internally
    /// atomic and synchronized"). Fails with [`KvError::NotFound`] if the
    /// key does not exist, as memcached's `append` does (`NOT_STORED`).
    pub fn append(&self, key: &[u8], suffix: &[u8]) -> KvResult<()> {
        Self::validate_key(key)?;
        StoreStats::bump(&self.stats.append_ops);
        let extra = suffix.len() as u64;
        self.reserve(extra)?;
        let cas = self.next_cas();
        let mut shard = self.shard_for(key).write();
        let Some(entry) = shard.map.get_mut(key) else {
            drop(shard);
            StoreStats::sub(&self.stats.bytes_used, extra);
            return Err(KvError::NotFound);
        };
        let new_len = entry.value.len() + suffix.len();
        if new_len > self.config.max_value_size {
            let size = new_len;
            drop(shard);
            StoreStats::sub(&self.stats.bytes_used, extra);
            return Err(KvError::ValueTooLarge {
                size,
                limit: self.config.max_value_size,
            });
        }
        let mut buf = BytesMut::with_capacity(new_len);
        buf.extend_from_slice(&entry.value);
        buf.extend_from_slice(suffix);
        entry.value = buf.freeze();
        entry.cas = cas;
        StoreStats::add(&self.stats.bytes_written, extra);
        self.touch_lru(&mut shard, key);
        Ok(())
    }

    /// Replace the value only if `token` matches the current CAS token.
    pub fn cas(&self, key: &[u8], value: Bytes, token: u64) -> KvResult<()> {
        Self::validate_key(key)?;
        if value.len() > self.config.max_value_size {
            return Err(KvError::ValueTooLarge {
                size: value.len(),
                limit: self.config.max_value_size,
            });
        }
        StoreStats::bump(&self.stats.cas_ops);
        let charge = Self::charge(key, value.len());
        self.reserve(charge)?;
        let new_cas = self.next_cas();
        let mut shard = self.shard_for(key).write();
        let Some(entry) = shard.map.get_mut(key) else {
            drop(shard);
            StoreStats::sub(&self.stats.bytes_used, charge);
            return Err(KvError::NotFound);
        };
        if entry.cas != token {
            drop(shard);
            StoreStats::sub(&self.stats.bytes_used, charge);
            StoreStats::bump(&self.stats.cas_misses);
            return Err(KvError::CasMismatch);
        }
        let old_charge = Self::charge(key, entry.value.len());
        StoreStats::add(&self.stats.bytes_written, value.len() as u64);
        entry.value = value;
        entry.cas = new_cas;
        StoreStats::sub(&self.stats.bytes_used, old_charge);
        self.touch_lru(&mut shard, key);
        Ok(())
    }

    /// Remove `key`, freeing its budget charge.
    pub fn delete(&self, key: &[u8]) -> KvResult<()> {
        Self::validate_key(key)?;
        StoreStats::bump(&self.stats.delete_ops);
        let mut shard = self.shard_for(key).write();
        match shard.map.remove(key) {
            Some(e) => {
                StoreStats::sub(&self.stats.bytes_used, Self::charge(key, e.value.len()));
                StoreStats::sub(&self.stats.item_count, 1);
                Ok(())
            }
            None => Err(KvError::NotFound),
        }
    }

    /// Whether `key` currently exists (does not count as a `get`).
    pub fn contains(&self, key: &[u8]) -> bool {
        Store::validate_key(key).is_ok() && self.shard_for(key).read().map.contains_key(key)
    }

    /// Remove every item (memcached `flush_all`).
    pub fn flush_all(&self) {
        for shard in &self.shards {
            let mut s = shard.write();
            for (k, e) in s.map.drain() {
                StoreStats::sub(&self.stats.bytes_used, Self::charge(&k, e.value.len()));
                StoreStats::sub(&self.stats.item_count, 1);
            }
            s.lru.clear();
        }
    }

    /// List all keys (diagnostic; used by balance tests). Order is
    /// unspecified.
    pub fn keys(&self) -> Vec<Box<[u8]>> {
        let mut out = Vec::new();
        for shard in &self.shards {
            out.extend(shard.read().map.keys().cloned());
        }
        out
    }
}

impl std::fmt::Debug for Store {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Store")
            .field("items", &self.item_count())
            .field("bytes_used", &self.bytes_used())
            .field("budget", &self.config.memory_budget)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_store(budget: u64, eviction: EvictionPolicy) -> Store {
        Store::new(StoreConfig {
            memory_budget: budget,
            max_value_size: 1024,
            eviction,
            shards: 4,
        })
    }

    #[test]
    fn set_get_round_trip() {
        let s = Store::with_defaults();
        s.set(b"alpha", Bytes::from_static(b"hello")).unwrap();
        assert_eq!(s.get(b"alpha").unwrap().as_ref(), b"hello");
        assert_eq!(s.item_count(), 1);
    }

    #[test]
    fn get_missing_is_not_found() {
        let s = Store::with_defaults();
        assert!(matches!(s.get(b"nope"), Err(KvError::NotFound)));
        let snap = s.stats().snapshot();
        assert_eq!(snap.get_ops, 1);
        assert_eq!(snap.get_hits, 0);
    }

    #[test]
    fn get_many_mixes_hits_and_misses() {
        let s = Store::with_defaults();
        s.set(b"a", Bytes::from_static(b"1")).unwrap();
        s.set(b"c", Bytes::from_static(b"3")).unwrap();
        let keys = vec![b"a".to_vec(), b"b".to_vec(), b"c".to_vec()];
        let out = s.get_many(&keys);
        assert_eq!(out.len(), 3);
        assert_eq!(out[0].as_ref().unwrap().as_ref(), b"1");
        assert!(matches!(out[1], Err(KvError::NotFound)));
        assert_eq!(out[2].as_ref().unwrap().as_ref(), b"3");
        let snap = s.stats().snapshot();
        assert_eq!(snap.mget_ops, 1);
        assert_eq!(snap.get_ops, 3, "batch still counts per-key get_ops");
        assert_eq!(snap.get_hits, 2);
    }

    #[test]
    fn set_replaces_and_accounts_memory() {
        let s = Store::with_defaults();
        s.set(b"k", Bytes::from(vec![0u8; 100])).unwrap();
        let used_before = s.bytes_used();
        s.set(b"k", Bytes::from(vec![0u8; 10])).unwrap();
        assert_eq!(s.item_count(), 1);
        assert_eq!(s.bytes_used(), used_before - 90);
    }

    #[test]
    fn add_fails_on_existing_key() {
        let s = Store::with_defaults();
        s.add(b"k", Bytes::from_static(b"v1")).unwrap();
        assert!(matches!(
            s.add(b"k", Bytes::from_static(b"v2")),
            Err(KvError::Exists)
        ));
        assert_eq!(s.get(b"k").unwrap().as_ref(), b"v1");
    }

    #[test]
    fn append_extends_existing_value() {
        let s = Store::with_defaults();
        s.set(b"dir", Bytes::from_static(b"+a\n")).unwrap();
        s.append(b"dir", b"+b\n").unwrap();
        s.append(b"dir", b"-a\n").unwrap();
        assert_eq!(s.get(b"dir").unwrap().as_ref(), b"+a\n+b\n-a\n");
    }

    #[test]
    fn append_to_missing_key_fails() {
        let s = Store::with_defaults();
        assert!(matches!(s.append(b"dir", b"x"), Err(KvError::NotFound)));
        // Budget must not leak.
        assert_eq!(s.bytes_used(), 0);
    }

    #[test]
    fn delete_frees_budget() {
        let s = Store::with_defaults();
        s.set(b"k", Bytes::from(vec![1u8; 500])).unwrap();
        assert!(s.bytes_used() > 0);
        s.delete(b"k").unwrap();
        assert_eq!(s.bytes_used(), 0);
        assert_eq!(s.item_count(), 0);
        assert!(matches!(s.delete(b"k"), Err(KvError::NotFound)));
    }

    #[test]
    fn cas_succeeds_with_token_and_fails_without() {
        let s = Store::with_defaults();
        s.set(b"k", Bytes::from_static(b"v1")).unwrap();
        let (_, token) = s.gets(b"k").unwrap();
        s.cas(b"k", Bytes::from_static(b"v2"), token).unwrap();
        assert!(matches!(
            s.cas(b"k", Bytes::from_static(b"v3"), token),
            Err(KvError::CasMismatch)
        ));
        assert_eq!(s.get(b"k").unwrap().as_ref(), b"v2");
        assert_eq!(s.stats().snapshot().cas_misses, 1);
    }

    #[test]
    fn value_size_limit_enforced() {
        let s = small_store(1 << 20, EvictionPolicy::Error);
        let big = Bytes::from(vec![0u8; 2000]);
        assert!(matches!(
            s.set(b"k", big),
            Err(KvError::ValueTooLarge { .. })
        ));
    }

    #[test]
    fn append_respects_value_size_limit() {
        let s = small_store(1 << 20, EvictionPolicy::Error);
        s.set(b"k", Bytes::from(vec![0u8; 1000])).unwrap();
        let used = s.bytes_used();
        assert!(matches!(
            s.append(b"k", &[0u8; 100]),
            Err(KvError::ValueTooLarge { .. })
        ));
        assert_eq!(s.bytes_used(), used, "failed append must not leak budget");
    }

    #[test]
    fn key_validation() {
        let s = Store::with_defaults();
        let long = vec![b'a'; 251];
        assert!(matches!(
            s.set(&long, Bytes::new()),
            Err(KvError::KeyTooLong(251))
        ));
        assert!(matches!(
            s.set(b"has space", Bytes::new()),
            Err(KvError::BadKey)
        ));
        assert!(matches!(s.set(b"", Bytes::new()), Err(KvError::BadKey)));
        assert!(matches!(
            s.set(b"ctl\x01", Bytes::new()),
            Err(KvError::BadKey)
        ));
    }

    #[test]
    fn error_policy_rejects_when_full() {
        let s = small_store(400, EvictionPolicy::Error);
        s.set(b"a", Bytes::from(vec![0u8; 200])).unwrap();
        let r = s.set(b"b", Bytes::from(vec![0u8; 200]));
        assert!(matches!(r, Err(KvError::OutOfMemory { .. })));
        // First item untouched.
        assert_eq!(s.get(b"a").unwrap().len(), 200);
    }

    #[test]
    fn lru_policy_evicts_oldest() {
        // Each item charges 1 (key) + 200 (value) + 64 (overhead) = 265
        // bytes; a 700-byte budget holds two items but not three.
        let s = small_store(700, EvictionPolicy::Lru);
        s.set(b"a", Bytes::from(vec![0u8; 200])).unwrap();
        s.set(b"b", Bytes::from(vec![0u8; 200])).unwrap();
        // Touch "a" so "b" is the LRU victim.
        s.get(b"a").unwrap();
        s.set(b"c", Bytes::from(vec![0u8; 200])).unwrap();
        assert!(s.contains(b"a"));
        assert!(s.contains(b"c"));
        assert!(!s.contains(b"b"), "LRU victim should be evicted");
        assert_eq!(s.stats().snapshot().evictions, 1);
    }

    #[test]
    fn lru_eviction_gives_up_when_item_cannot_fit() {
        let s = small_store(300, EvictionPolicy::Lru);
        s.set(b"a", Bytes::from(vec![0u8; 100])).unwrap();
        // 1000-byte value can never fit in a 300-byte budget.
        let r = s.set(b"big", Bytes::from(vec![0u8; 1000]));
        assert!(matches!(r, Err(KvError::OutOfMemory { .. })));
    }

    #[test]
    fn flush_all_clears_everything() {
        let s = Store::with_defaults();
        for i in 0..100u32 {
            s.set(format!("key{i}").as_bytes(), Bytes::from(vec![0u8; 10]))
                .unwrap();
        }
        assert_eq!(s.item_count(), 100);
        s.flush_all();
        assert_eq!(s.item_count(), 0);
        assert_eq!(s.bytes_used(), 0);
        assert!(s.keys().is_empty());
    }

    #[test]
    fn get_is_zero_copy() {
        let s = Store::with_defaults();
        let payload = Bytes::from(vec![7u8; 1 << 16]);
        s.set(b"k", payload).unwrap();
        let a = s.get(b"k").unwrap();
        let b = s.get(b"k").unwrap();
        // Same backing buffer.
        assert_eq!(a.as_ptr(), b.as_ptr());
    }

    #[test]
    fn concurrent_appends_are_atomic() {
        use std::sync::Arc;
        let s = Arc::new(Store::with_defaults());
        s.set(b"log", Bytes::new()).unwrap();
        let threads: Vec<_> = (0..8)
            .map(|t| {
                let s = Arc::clone(&s);
                std::thread::spawn(move || {
                    for i in 0..100 {
                        let rec = format!("[{t}:{i}]");
                        s.append(b"log", rec.as_bytes()).unwrap();
                    }
                })
            })
            .collect();
        for th in threads {
            th.join().unwrap();
        }
        let log = s.get(b"log").unwrap();
        let text = std::str::from_utf8(&log).unwrap();
        // Every record must appear exactly once, untorn.
        for t in 0..8 {
            for i in 0..100 {
                let rec = format!("[{t}:{i}]");
                assert_eq!(text.matches(&rec).count(), 1, "record {rec} torn or lost");
            }
        }
    }

    #[test]
    fn concurrent_set_get_different_keys() {
        use std::sync::Arc;
        let s = Arc::new(Store::with_defaults());
        let threads: Vec<_> = (0..8)
            .map(|t| {
                let s = Arc::clone(&s);
                std::thread::spawn(move || {
                    for i in 0..200 {
                        let key = format!("t{t}-k{i}");
                        let val = Bytes::from(format!("v{t}-{i}"));
                        s.set(key.as_bytes(), val.clone()).unwrap();
                        assert_eq!(s.get(key.as_bytes()).unwrap(), val);
                    }
                })
            })
            .collect();
        for th in threads {
            th.join().unwrap();
        }
        assert_eq!(s.item_count(), 8 * 200);
    }
}
