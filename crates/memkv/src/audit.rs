//! Byte-accounting for the one-copy write-path invariant.
//!
//! Every place on the client write path that *stages* payload bytes —
//! copies them into an intermediate buffer between the caller's memory
//! and the socket — reports the copy here. The zero-copy test asserts
//! that a write stages each payload byte at most once: `Bytes`-backed
//! stripes travel from [`WriteBuffer`](../../memfs_core) through
//! `set_many` into the reactor's vectored frame writer by reference
//! count alone, while slice-fed writes pay exactly one staging copy at
//! the stripe buffer.
//!
//! The counters are process-global relaxed atomics: negligible cost on
//! the hot path (one uncontended `fetch_add` per *copy*, which is the
//! very thing the write path avoids), always compiled in so release
//! benches can report them too.

use std::sync::atomic::{AtomicU64, Ordering};

static STAGED: AtomicU64 = AtomicU64::new(0);

/// Record `n` payload bytes copied into an intermediate buffer.
#[inline]
pub fn count_staged(n: usize) {
    STAGED.fetch_add(n as u64, Ordering::Relaxed);
}

/// Total payload bytes staged since process start, monotonic.
pub fn staged_bytes() -> u64 {
    STAGED.load(Ordering::Relaxed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn staged_counter_is_monotonic() {
        let before = staged_bytes();
        count_staged(17);
        count_staged(0);
        assert!(staged_bytes() >= before + 17);
    }
}
