//! Client-side access abstraction.
//!
//! MemFS programs against [`KvClient`], mirroring the role Libmemcached
//! plays in the paper: the client owns data placement, the servers are
//! passive. Implementations:
//!
//! * [`LocalClient`] — direct in-process calls into a [`Store`] (a MemFS
//!   node talking to the server in its own DRAM);
//! * [`ThrottledClient`] — wraps any client with a real-time latency and
//!   bandwidth shaper, so single-machine benchmarks reproduce the *shape*
//!   of remote-server behaviour (used for the Figure 3 experiments);
//! * [`crate::net::TcpClient`] — the memcached text protocol over TCP, for
//!   genuinely distributed deployments.

use std::sync::Arc;
use std::time::{Duration, Instant};

use bytes::Bytes;

use crate::error::KvResult;
use crate::store::Store;

/// A batched operation that may still be in flight.
///
/// Returned by the `start_*` methods on [`KvClient`]: the submission half
/// has already run (for an evented transport the requests are on the
/// wire), and [`Deferred::wait`] blocks only for the completion half.
/// This is what lets one caller thread keep batches in flight on every
/// server of a pool simultaneously — submit to all, then wait.
///
/// Transports without a split submit path run eagerly and return
/// [`Deferred::Ready`]; callers cannot tell the difference, they just get
/// no overlap.
pub enum Deferred<T> {
    /// The operation already completed (eager transports).
    Ready(KvResult<Vec<KvResult<T>>>),
    /// The operation is in flight; the closure blocks until completion.
    Pending(Box<dyn FnOnce() -> KvResult<Vec<KvResult<T>>> + Send>),
    /// In flight with a readiness probe: `ready` answers "has this
    /// completed?" without blocking or consuming, `finish` blocks for the
    /// result. Lets a sliding-window driver settle completions in
    /// *arrival* order across servers instead of submission order.
    Polled {
        /// Non-blocking completion probe.
        ready: Box<dyn Fn() -> bool + Send>,
        /// Blocking completion, same contract as [`Deferred::Pending`].
        finish: Box<dyn FnOnce() -> KvResult<Vec<KvResult<T>>> + Send>,
    },
}

impl<T> Deferred<T> {
    /// Block until the batch completes and return its per-key results.
    pub fn wait(self) -> KvResult<Vec<KvResult<T>>> {
        match self {
            Deferred::Ready(result) => result,
            Deferred::Pending(finish) => finish(),
            Deferred::Polled { finish, .. } => finish(),
        }
    }

    /// Whether [`Deferred::wait`] would return without blocking.
    /// [`Deferred::Pending`] has no probe and conservatively answers
    /// `false`.
    pub fn is_ready(&self) -> bool {
        match self {
            Deferred::Ready(_) => true,
            Deferred::Pending(_) => false,
            Deferred::Polled { ready, .. } => ready(),
        }
    }
}

/// The operations MemFS needs from a storage server. All methods are
/// `&self` and implementations must be thread-safe: the write-buffer and
/// prefetch pools issue concurrent requests.
pub trait KvClient: Send + Sync {
    /// Store a value, replacing any existing one.
    fn set(&self, key: &[u8], value: Bytes) -> KvResult<()>;
    /// Store a value only if absent.
    fn add(&self, key: &[u8], value: Bytes) -> KvResult<()>;
    /// Fetch a value.
    fn get(&self, key: &[u8]) -> KvResult<Bytes>;
    /// Atomically append to an existing value.
    fn append(&self, key: &[u8], suffix: &[u8]) -> KvResult<()>;
    /// Remove a key.
    fn delete(&self, key: &[u8]) -> KvResult<()>;
    /// Fetch several keys in one round trip, returning one result per key
    /// in request order. The outer `Err` is a transport-level failure (no
    /// per-key information); per-key misses surface as inner
    /// [`KvError::NotFound`](crate::error::KvError::NotFound).
    ///
    /// Keys travel as [`Bytes`] so the fan-out dispatcher's per-server
    /// batches are assembled by reference-count bumps, never key copies.
    ///
    /// The default loops over [`KvClient::get`]; batching transports
    /// override it ([`LocalClient`] dispatches one engine batch,
    /// [`crate::net::TcpClient`] sends pipelined multi-key `get` frames).
    fn get_many(&self, keys: &[Bytes]) -> KvResult<Vec<KvResult<Bytes>>> {
        Ok(keys.iter().map(|k| self.get(k)).collect())
    }
    /// Store several key/value pairs, returning one result per pair in
    /// request order. Same error split as [`KvClient::get_many`].
    ///
    /// The default loops over [`KvClient::set`]; pipelining transports
    /// override it to write every frame before reading any reply.
    fn set_many(&self, items: &[(Bytes, Bytes)]) -> KvResult<Vec<KvResult<()>>> {
        Ok(items.iter().map(|(k, v)| self.set(k, v.clone())).collect())
    }
    /// Remove several keys in one round trip, returning one result per key
    /// in request order. Same error split as [`KvClient::get_many`];
    /// per-key misses surface as inner
    /// [`KvError::NotFound`](crate::error::KvError::NotFound).
    ///
    /// The default loops over [`KvClient::delete`]; pipelining transports
    /// override it — freeing a striped file's stripes should not cost one
    /// round trip each.
    fn delete_many(&self, keys: &[Bytes]) -> KvResult<Vec<KvResult<()>>> {
        Ok(keys.iter().map(|k| self.delete(k)).collect())
    }
    /// Whether a key exists (no read traffic accounted).
    fn contains(&self, key: &[u8]) -> bool {
        self.get(key).is_ok()
    }
    /// Whether this client has a true split submit/completion path — i.e.
    /// whether the `start_*` methods return before the network round trip
    /// finishes. Dispatchers use this to pick between submit-window
    /// fan-out (one thread, many servers in flight) and thread-pool
    /// fan-out (one worker per server).
    fn supports_submit(&self) -> bool {
        false
    }
    /// Begin a [`KvClient::get_many`]; the default runs it eagerly.
    /// Evented transports override this to put the batch on the wire and
    /// return without blocking.
    fn start_get_many(&self, keys: &[Bytes]) -> Deferred<Bytes> {
        Deferred::Ready(self.get_many(keys))
    }
    /// Begin a [`KvClient::set_many`]; same contract as
    /// [`KvClient::start_get_many`].
    fn start_set_many(&self, items: &[(Bytes, Bytes)]) -> Deferred<()> {
        Deferred::Ready(self.set_many(items))
    }
    /// Begin a [`KvClient::delete_many`]; same contract as
    /// [`KvClient::start_get_many`].
    fn start_delete_many(&self, keys: &[Bytes]) -> Deferred<()> {
        Deferred::Ready(self.delete_many(keys))
    }
    /// Enumerate every key on the server — needed by the elastic
    /// rebalancer. Default: unsupported (transports without the `keys`
    /// protocol extension).
    fn scan_keys(&self) -> KvResult<Vec<Vec<u8>>> {
        Err(crate::error::KvError::Protocol(
            "key enumeration not supported by this client".into(),
        ))
    }
    /// Counters of the reactor driving this client's connections, if it
    /// has one. Clients sharing a reactor return snapshots with the same
    /// [`ReactorStatsSnapshot::reactor_id`]
    /// ([`crate::reactor::ReactorStatsSnapshot`]); aggregators dedup on
    /// it. Default: `None` (in-process transports have no reactor).
    fn reactor_stats(&self) -> Option<crate::reactor::ReactorStatsSnapshot> {
        None
    }
}

/// Direct in-process access to a [`Store`].
#[derive(Clone)]
pub struct LocalClient {
    store: Arc<Store>,
}

impl LocalClient {
    /// Wrap a shared store.
    pub fn new(store: Arc<Store>) -> Self {
        LocalClient { store }
    }

    /// The underlying store (for stats inspection in tests/benches).
    pub fn store(&self) -> &Arc<Store> {
        &self.store
    }
}

impl KvClient for LocalClient {
    fn scan_keys(&self) -> KvResult<Vec<Vec<u8>>> {
        Ok(self
            .store
            .keys()
            .into_iter()
            .map(|k| k.into_vec())
            .collect())
    }

    fn set(&self, key: &[u8], value: Bytes) -> KvResult<()> {
        self.store.set(key, value)
    }
    fn add(&self, key: &[u8], value: Bytes) -> KvResult<()> {
        self.store.add(key, value)
    }
    fn get(&self, key: &[u8]) -> KvResult<Bytes> {
        self.store.get(key)
    }
    fn get_many(&self, keys: &[Bytes]) -> KvResult<Vec<KvResult<Bytes>>> {
        Ok(self.store.get_many(keys))
    }
    fn append(&self, key: &[u8], suffix: &[u8]) -> KvResult<()> {
        self.store.append(key, suffix)
    }
    fn delete(&self, key: &[u8]) -> KvResult<()> {
        self.store.delete(key)
    }
    fn contains(&self, key: &[u8]) -> bool {
        self.store.contains(key)
    }
    /// In-process calls complete at memory speed, so the eager `start_*`
    /// defaults already satisfy the split-submit contract: the pool's
    /// budgeted caller-thread fan-out needs no engine workers for local
    /// servers.
    fn supports_submit(&self) -> bool {
        true
    }
}

/// Wall-clock traffic shaping parameters for [`ThrottledClient`].
#[derive(Debug, Clone, Copy)]
pub struct Shaping {
    /// Fixed cost added to every request (round-trip latency).
    pub latency: Duration,
    /// Payload bandwidth in bytes per second (`f64::INFINITY` disables).
    pub bandwidth: f64,
}

impl Shaping {
    /// A profile resembling IP-over-InfiniBand: 60 µs RTT, 1 GB/s.
    pub fn ipoib_like() -> Self {
        Shaping {
            latency: Duration::from_micros(60),
            bandwidth: 1e9,
        }
    }

    /// A profile resembling gigabit Ethernet: 200 µs RTT, 117 MB/s.
    pub fn gbe_like() -> Self {
        Shaping {
            latency: Duration::from_micros(200),
            bandwidth: 117e6,
        }
    }
}

/// Adds real-time latency/bandwidth costs to an inner client by sleeping.
///
/// The delay model is per-request: `latency + payload / bandwidth`. This
/// yields the right *per-stream* behaviour for the single-machine design
/// experiments (stripe-size sweeps, buffering/prefetching thread scaling)
/// where the point is overlapping many shaped streams.
pub struct ThrottledClient<C> {
    inner: C,
    shaping: Shaping,
}

impl<C: KvClient> ThrottledClient<C> {
    /// Shape `inner` with `shaping`.
    pub fn new(inner: C, shaping: Shaping) -> Self {
        ThrottledClient { inner, shaping }
    }

    /// The wrapped client.
    pub fn inner(&self) -> &C {
        &self.inner
    }

    /// Shaped wall-clock cost of one round trip carrying `payload_bytes`.
    fn cost(&self, payload_bytes: usize) -> Duration {
        let mut d = self.shaping.latency;
        if self.shaping.bandwidth.is_finite() && self.shaping.bandwidth > 0.0 {
            d += Duration::from_secs_f64(payload_bytes as f64 / self.shaping.bandwidth);
        }
        d
    }

    fn delay(&self, payload_bytes: usize) {
        let d = self.cost(payload_bytes);
        if d > Duration::ZERO {
            precise_sleep(d);
        }
    }

    /// Build the deferred half of a shaped batch: the inner operation has
    /// already run (memory-speed for the intended [`LocalClient`] inner),
    /// the shaped cost is a wall-clock deadline. `ready` polls the clock;
    /// `finish` sleeps out the remainder. Because the deadline starts at
    /// submission, N servers' costs elapse concurrently — the fan-out
    /// pays `max(cost)`, not `sum(cost)`, exactly like real shaped links.
    fn shaped_deferred<T: Send + 'static>(
        &self,
        payload_bytes: usize,
        result: KvResult<Vec<KvResult<T>>>,
    ) -> Deferred<T> {
        let deadline = Instant::now() + self.cost(payload_bytes);
        Deferred::Polled {
            ready: Box::new(move || Instant::now() >= deadline),
            finish: Box::new(move || {
                let remaining = deadline.saturating_duration_since(Instant::now());
                if remaining > Duration::ZERO {
                    precise_sleep(remaining);
                }
                result
            }),
        }
    }
}

/// Sleep with sub-millisecond fidelity: OS sleep for the bulk, then spin
/// for the tail. OS timers routinely overshoot by ~50 µs, which would
/// swamp the microsecond-scale latencies being modelled.
fn precise_sleep(d: Duration) {
    let start = Instant::now();
    if d > Duration::from_micros(200) {
        std::thread::sleep(d - Duration::from_micros(150));
    }
    while start.elapsed() < d {
        std::hint::spin_loop();
    }
}

impl<C: KvClient> KvClient for ThrottledClient<C> {
    fn scan_keys(&self) -> KvResult<Vec<Vec<u8>>> {
        self.inner.scan_keys()
    }

    fn set(&self, key: &[u8], value: Bytes) -> KvResult<()> {
        self.delay(value.len());
        self.inner.set(key, value)
    }
    fn add(&self, key: &[u8], value: Bytes) -> KvResult<()> {
        self.delay(value.len());
        self.inner.add(key, value)
    }
    fn get(&self, key: &[u8]) -> KvResult<Bytes> {
        let out = self.inner.get(key);
        self.delay(out.as_ref().map(|v| v.len()).unwrap_or(0));
        out
    }
    fn get_many(&self, keys: &[Bytes]) -> KvResult<Vec<KvResult<Bytes>>> {
        // One round trip for the whole batch: a single latency charge plus
        // bandwidth on the combined payload — the cost model that makes
        // batching worth doing over a shaped link.
        let out = self.inner.get_many(keys)?;
        let total: usize = out
            .iter()
            .map(|r| r.as_ref().map(|v| v.len()).unwrap_or(0))
            .sum();
        self.delay(total);
        Ok(out)
    }
    fn set_many(&self, items: &[(Bytes, Bytes)]) -> KvResult<Vec<KvResult<()>>> {
        let total: usize = items.iter().map(|(_, v)| v.len()).sum();
        self.delay(total);
        self.inner.set_many(items)
    }
    fn append(&self, key: &[u8], suffix: &[u8]) -> KvResult<()> {
        self.delay(suffix.len());
        self.inner.append(key, suffix)
    }
    fn delete(&self, key: &[u8]) -> KvResult<()> {
        self.delay(0);
        self.inner.delete(key)
    }
    fn delete_many(&self, keys: &[Bytes]) -> KvResult<Vec<KvResult<()>>> {
        // One round trip for the whole batch (deletes carry no payload).
        self.delay(0);
        self.inner.delete_many(keys)
    }
    fn contains(&self, key: &[u8]) -> bool {
        self.inner.contains(key)
    }
    /// The shaped batch cost is charged as a submission-time deadline
    /// (see [`ThrottledClient::shaped_deferred`]), so shaped fan-outs
    /// ride the pool's budgeted caller-thread path: submit to every
    /// server, then settle deadlines as they elapse — the Figure-3
    /// overlap without engine workers.
    fn supports_submit(&self) -> bool {
        true
    }
    fn start_get_many(&self, keys: &[Bytes]) -> Deferred<Bytes> {
        let out = self.inner.get_many(keys);
        let total: usize = out
            .iter()
            .flatten()
            .map(|r| r.as_ref().map(|v| v.len()).unwrap_or(0))
            .sum();
        self.shaped_deferred(total, out)
    }
    fn start_set_many(&self, items: &[(Bytes, Bytes)]) -> Deferred<()> {
        let total: usize = items.iter().map(|(_, v)| v.len()).sum();
        let out = self.inner.set_many(items);
        self.shaped_deferred(total, out)
    }
    fn start_delete_many(&self, keys: &[Bytes]) -> Deferred<()> {
        let out = self.inner.delete_many(keys);
        self.shaped_deferred(0, out)
    }
    fn reactor_stats(&self) -> Option<crate::reactor::ReactorStatsSnapshot> {
        self.inner.reactor_stats()
    }
}

/// A failure-injection wrapper: while marked down, every operation fails
/// with an I/O error, emulating a crashed or partitioned storage server.
/// Used by the fault-tolerance tests to exercise MemFS' replication path
/// (the paper defers fault tolerance to future work, §3.2.5; this crate
/// implements the replication option it sketches).
pub struct FailableClient<C> {
    inner: C,
    down: std::sync::atomic::AtomicBool,
}

impl<C: KvClient> FailableClient<C> {
    /// Wrap `inner`, initially up.
    pub fn new(inner: C) -> Self {
        FailableClient {
            inner,
            down: std::sync::atomic::AtomicBool::new(false),
        }
    }

    /// Mark the server down (true) or back up (false).
    pub fn set_down(&self, down: bool) {
        self.down.store(down, std::sync::atomic::Ordering::SeqCst);
    }

    /// Whether the server is currently down.
    pub fn is_down(&self) -> bool {
        self.down.load(std::sync::atomic::Ordering::SeqCst)
    }

    fn check(&self) -> KvResult<()> {
        if self.is_down() {
            Err(crate::error::KvError::Io(std::io::Error::new(
                std::io::ErrorKind::ConnectionRefused,
                "server down (injected failure)",
            )))
        } else {
            Ok(())
        }
    }
}

impl<C: KvClient> KvClient for FailableClient<C> {
    fn scan_keys(&self) -> KvResult<Vec<Vec<u8>>> {
        self.check()?;
        self.inner.scan_keys()
    }

    fn set(&self, key: &[u8], value: Bytes) -> KvResult<()> {
        self.check()?;
        self.inner.set(key, value)
    }
    fn add(&self, key: &[u8], value: Bytes) -> KvResult<()> {
        self.check()?;
        self.inner.add(key, value)
    }
    fn get(&self, key: &[u8]) -> KvResult<Bytes> {
        self.check()?;
        self.inner.get(key)
    }
    fn get_many(&self, keys: &[Bytes]) -> KvResult<Vec<KvResult<Bytes>>> {
        self.check()?;
        self.inner.get_many(keys)
    }
    fn set_many(&self, items: &[(Bytes, Bytes)]) -> KvResult<Vec<KvResult<()>>> {
        self.check()?;
        self.inner.set_many(items)
    }
    fn append(&self, key: &[u8], suffix: &[u8]) -> KvResult<()> {
        self.check()?;
        self.inner.append(key, suffix)
    }
    fn delete(&self, key: &[u8]) -> KvResult<()> {
        self.check()?;
        self.inner.delete(key)
    }
    fn delete_many(&self, keys: &[Bytes]) -> KvResult<Vec<KvResult<()>>> {
        self.check()?;
        self.inner.delete_many(keys)
    }
    fn contains(&self, key: &[u8]) -> bool {
        !self.is_down() && self.inner.contains(key)
    }
    fn supports_submit(&self) -> bool {
        self.inner.supports_submit()
    }
    fn start_get_many(&self, keys: &[Bytes]) -> Deferred<Bytes> {
        match self.check() {
            Ok(()) => self.inner.start_get_many(keys),
            Err(e) => Deferred::Ready(Err(e)),
        }
    }
    fn start_set_many(&self, items: &[(Bytes, Bytes)]) -> Deferred<()> {
        match self.check() {
            Ok(()) => self.inner.start_set_many(items),
            Err(e) => Deferred::Ready(Err(e)),
        }
    }
    fn start_delete_many(&self, keys: &[Bytes]) -> Deferred<()> {
        match self.check() {
            Ok(()) => self.inner.start_delete_many(keys),
            Err(e) => Deferred::Ready(Err(e)),
        }
    }
    fn reactor_stats(&self) -> Option<crate::reactor::ReactorStatsSnapshot> {
        self.inner.reactor_stats()
    }
}

/// Blanket impls so `Arc<C>` and `&C` are clients too — MemFS holds its
/// server pool behind `Arc`s.
impl<C: KvClient + ?Sized> KvClient for Arc<C> {
    fn scan_keys(&self) -> KvResult<Vec<Vec<u8>>> {
        (**self).scan_keys()
    }

    fn set(&self, key: &[u8], value: Bytes) -> KvResult<()> {
        (**self).set(key, value)
    }
    fn add(&self, key: &[u8], value: Bytes) -> KvResult<()> {
        (**self).add(key, value)
    }
    fn get(&self, key: &[u8]) -> KvResult<Bytes> {
        (**self).get(key)
    }
    fn get_many(&self, keys: &[Bytes]) -> KvResult<Vec<KvResult<Bytes>>> {
        (**self).get_many(keys)
    }
    fn set_many(&self, items: &[(Bytes, Bytes)]) -> KvResult<Vec<KvResult<()>>> {
        (**self).set_many(items)
    }
    fn append(&self, key: &[u8], suffix: &[u8]) -> KvResult<()> {
        (**self).append(key, suffix)
    }
    fn delete(&self, key: &[u8]) -> KvResult<()> {
        (**self).delete(key)
    }
    fn delete_many(&self, keys: &[Bytes]) -> KvResult<Vec<KvResult<()>>> {
        (**self).delete_many(keys)
    }
    fn contains(&self, key: &[u8]) -> bool {
        (**self).contains(key)
    }
    fn supports_submit(&self) -> bool {
        (**self).supports_submit()
    }
    fn start_get_many(&self, keys: &[Bytes]) -> Deferred<Bytes> {
        (**self).start_get_many(keys)
    }
    fn start_set_many(&self, items: &[(Bytes, Bytes)]) -> Deferred<()> {
        (**self).start_set_many(items)
    }
    fn start_delete_many(&self, keys: &[Bytes]) -> Deferred<()> {
        (**self).start_delete_many(keys)
    }
    fn reactor_stats(&self) -> Option<crate::reactor::ReactorStatsSnapshot> {
        (**self).reactor_stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::StoreConfig;

    fn local() -> LocalClient {
        LocalClient::new(Arc::new(Store::new(StoreConfig::default())))
    }

    #[test]
    fn local_client_round_trip() {
        let c = local();
        c.set(b"k", Bytes::from_static(b"v")).unwrap();
        assert_eq!(c.get(b"k").unwrap().as_ref(), b"v");
        assert!(c.contains(b"k"));
        c.delete(b"k").unwrap();
        assert!(!c.contains(b"k"));
    }

    #[test]
    fn get_many_and_set_many_defaults() {
        let c = local();
        let items = vec![
            (Bytes::from_static(b"a"), Bytes::from_static(b"1")),
            (Bytes::from_static(b"b"), Bytes::from_static(b"2")),
        ];
        for r in c.set_many(&items).unwrap() {
            r.unwrap();
        }
        let out = c
            .get_many(&[
                Bytes::from_static(b"a"),
                Bytes::from_static(b"missing"),
                Bytes::from_static(b"b"),
            ])
            .unwrap();
        assert_eq!(out[0].as_ref().unwrap().as_ref(), b"1");
        assert!(out[1].is_err());
        assert_eq!(out[2].as_ref().unwrap().as_ref(), b"2");
        // LocalClient routes the batch through the engine's batched path.
        assert_eq!(c.store().stats().snapshot().mget_ops, 1);
    }

    #[test]
    fn delete_many_default_reports_per_key() {
        let c = local();
        c.set(b"a", Bytes::from_static(b"1")).unwrap();
        c.set(b"b", Bytes::from_static(b"2")).unwrap();
        let out = c
            .delete_many(&[
                Bytes::from_static(b"a"),
                Bytes::from_static(b"missing"),
                Bytes::from_static(b"b"),
            ])
            .unwrap();
        assert!(out[0].is_ok());
        assert!(matches!(out[1], Err(crate::error::KvError::NotFound)));
        assert!(out[2].is_ok());
        assert!(!c.contains(b"a") && !c.contains(b"b"));
    }

    #[test]
    fn failable_client_blocks_batches_too() {
        let c = FailableClient::new(local());
        c.set(b"k", Bytes::from_static(b"v")).unwrap();
        c.set_down(true);
        assert!(c.get_many(&[Bytes::from_static(b"k")]).is_err());
        assert!(c
            .set_many(&[(Bytes::from_static(b"k"), Bytes::new())])
            .is_err());
    }

    #[test]
    fn arc_blanket_impl_works() {
        let c: Arc<dyn KvClient> = Arc::new(local());
        c.set(b"k", Bytes::from_static(b"v")).unwrap();
        assert_eq!(c.get(b"k").unwrap().as_ref(), b"v");
    }

    #[test]
    fn throttled_client_adds_latency() {
        let shaped = ThrottledClient::new(
            local(),
            Shaping {
                latency: Duration::from_millis(2),
                bandwidth: f64::INFINITY,
            },
        );
        let start = Instant::now();
        shaped.set(b"k", Bytes::from_static(b"v")).unwrap();
        assert!(start.elapsed() >= Duration::from_millis(2));
    }

    #[test]
    fn throttled_client_charges_bandwidth() {
        let shaped = ThrottledClient::new(
            local(),
            Shaping {
                latency: Duration::ZERO,
                bandwidth: 1e6, // 1 MB/s
            },
        );
        let start = Instant::now();
        shaped.set(b"k", Bytes::from(vec![0u8; 10_000])).unwrap(); // 10 ms
        assert!(start.elapsed() >= Duration::from_millis(9));
    }

    #[test]
    fn failable_client_toggles() {
        let c = FailableClient::new(local());
        c.set(b"k", Bytes::from_static(b"v")).unwrap();
        c.set_down(true);
        assert!(matches!(c.get(b"k"), Err(crate::error::KvError::Io(_))));
        assert!(matches!(
            c.set(b"x", Bytes::new()),
            Err(crate::error::KvError::Io(_))
        ));
        assert!(!c.contains(b"k"));
        c.set_down(false);
        assert_eq!(c.get(b"k").unwrap().as_ref(), b"v");
        assert!(c.contains(b"k"));
    }

    #[test]
    fn throttled_semantics_pass_through() {
        let shaped = ThrottledClient::new(
            local(),
            Shaping {
                latency: Duration::ZERO,
                bandwidth: f64::INFINITY,
            },
        );
        shaped.set(b"dir", Bytes::from_static(b"a")).unwrap();
        shaped.append(b"dir", b"b").unwrap();
        assert_eq!(shaped.get(b"dir").unwrap().as_ref(), b"ab");
        assert!(shaped.get(b"missing").is_err());
    }
}
