//! Lock-free statistics counters for a [`crate::Store`].
//!
//! The paper's evaluation repeatedly reasons from these numbers: "Memcached
//! is reported to perform better for get rather than set" (§4.1) and the
//! memory-balance comparisons of Figure 9 / Table 3. Counters are plain
//! relaxed atomics — they are monotonic tallies, not synchronization.

use std::sync::atomic::{AtomicU64, Ordering};

/// Monotonic operation counters plus current occupancy gauges.
#[derive(Debug, Default)]
pub struct StoreStats {
    pub(crate) get_ops: AtomicU64,
    pub(crate) get_hits: AtomicU64,
    /// Batched multi-get *requests* (each also bumps `get_ops` once per
    /// key, so `get_misses = get_ops - get_hits` stays well-defined).
    pub(crate) mget_ops: AtomicU64,
    pub(crate) set_ops: AtomicU64,
    pub(crate) add_ops: AtomicU64,
    pub(crate) append_ops: AtomicU64,
    pub(crate) delete_ops: AtomicU64,
    pub(crate) cas_ops: AtomicU64,
    pub(crate) cas_misses: AtomicU64,
    pub(crate) evictions: AtomicU64,
    pub(crate) bytes_used: AtomicU64,
    pub(crate) item_count: AtomicU64,
    pub(crate) bytes_written: AtomicU64,
    pub(crate) bytes_read: AtomicU64,
}

/// A point-in-time copy of the counters, cheap to pass around.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StatsSnapshot {
    pub get_ops: u64,
    pub get_hits: u64,
    /// Batched multi-get requests served (one per `get k1 k2 …` frame).
    pub mget_ops: u64,
    pub set_ops: u64,
    pub add_ops: u64,
    pub append_ops: u64,
    pub delete_ops: u64,
    pub cas_ops: u64,
    pub cas_misses: u64,
    pub evictions: u64,
    pub bytes_used: u64,
    pub item_count: u64,
    pub bytes_written: u64,
    pub bytes_read: u64,
}

impl StoreStats {
    /// Take a consistent-enough snapshot (each counter individually exact).
    pub fn snapshot(&self) -> StatsSnapshot {
        StatsSnapshot {
            get_ops: self.get_ops.load(Ordering::Relaxed),
            get_hits: self.get_hits.load(Ordering::Relaxed),
            mget_ops: self.mget_ops.load(Ordering::Relaxed),
            set_ops: self.set_ops.load(Ordering::Relaxed),
            add_ops: self.add_ops.load(Ordering::Relaxed),
            append_ops: self.append_ops.load(Ordering::Relaxed),
            delete_ops: self.delete_ops.load(Ordering::Relaxed),
            cas_ops: self.cas_ops.load(Ordering::Relaxed),
            cas_misses: self.cas_misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            bytes_used: self.bytes_used.load(Ordering::Relaxed),
            item_count: self.item_count.load(Ordering::Relaxed),
            bytes_written: self.bytes_written.load(Ordering::Relaxed),
            bytes_read: self.bytes_read.load(Ordering::Relaxed),
        }
    }

    #[inline]
    pub(crate) fn bump(counter: &AtomicU64) {
        counter.fetch_add(1, Ordering::Relaxed);
    }

    #[inline]
    pub(crate) fn add(counter: &AtomicU64, n: u64) {
        counter.fetch_add(n, Ordering::Relaxed);
    }

    #[inline]
    pub(crate) fn sub(counter: &AtomicU64, n: u64) {
        counter.fetch_sub(n, Ordering::Relaxed);
    }
}

impl StatsSnapshot {
    /// Fraction of `get` operations that found their key (1.0 when no gets
    /// have happened — "nothing missed yet").
    pub fn hit_rate(&self) -> f64 {
        if self.get_ops == 0 {
            1.0
        } else {
            self.get_hits as f64 / self.get_ops as f64
        }
    }

    /// All mutation operations combined.
    pub fn total_writes(&self) -> u64 {
        self.set_ops + self.add_ops + self.append_ops + self.cas_ops
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_reflects_bumps() {
        let s = StoreStats::default();
        StoreStats::bump(&s.get_ops);
        StoreStats::bump(&s.get_ops);
        StoreStats::bump(&s.get_hits);
        StoreStats::add(&s.bytes_used, 100);
        StoreStats::sub(&s.bytes_used, 40);
        let snap = s.snapshot();
        assert_eq!(snap.get_ops, 2);
        assert_eq!(snap.get_hits, 1);
        assert_eq!(snap.bytes_used, 60);
        assert!((snap.hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn hit_rate_empty_is_one() {
        assert_eq!(StatsSnapshot::default().hit_rate(), 1.0);
    }

    #[test]
    fn total_writes_sums_mutations() {
        let snap = StatsSnapshot {
            set_ops: 1,
            add_ops: 2,
            append_ops: 3,
            cas_ops: 4,
            ..Default::default()
        };
        assert_eq!(snap.total_writes(), 10);
    }
}
