//! # memfs-memkv
//!
//! A from-scratch, memcached-style in-memory key-value store — the storage
//! layer of the MemFS reproduction (the paper uses Memcached \[27\] +
//! Libmemcached \[28\]; see DESIGN.md §3 for the substitution notes).
//!
//! The crate provides exactly the semantics MemFS relies on:
//!
//! * simple key-value commands: `set`, `add`, `get`, `append`, `delete`,
//!   `cas` — with **atomic, internally synchronized `append`** (the paper's
//!   directory-metadata protocol depends on it, §3.2.4);
//! * servers that do not communicate with each other and know nothing about
//!   data distribution — the *client* places data (§3.1.1);
//! * a per-item size limit (memcached's classic item limit motivates
//!   MemFS' striping, §3.2.1) and a configurable memory budget with either
//!   memcached-style LRU eviction or hard `OutOfMemory` errors (the mode a
//!   runtime file system needs);
//! * detailed statistics (`get` vs `set` counts, hit rate, bytes stored)
//!   used by the balance experiments.
//!
//! Three ways to reach a store:
//!
//! * [`Store`] — direct, in-process (what a MemFS server embeds);
//! * [`client::KvClient`] — the client abstraction MemFS programs against,
//!   with [`client::LocalClient`] and a latency/bandwidth-shaping
//!   [`client::ThrottledClient`] used to emulate remote servers in the
//!   real-engine benchmarks (Figure 3);
//! * [`net::KvServer`]/[`net::TcpClient`] — an actual TCP deployment
//!   speaking the memcached text protocol in [`proto`], for running a real
//!   distributed MemFS across processes.

pub mod audit;
pub mod client;
pub mod error;
pub mod net;
pub mod proto;
mod reactor;
pub mod stats;
pub mod store;
pub mod testutil;
pub mod wheel;

pub use client::{Deferred, FailableClient, KvClient, LocalClient, ThrottledClient};
pub use error::KvError;
pub use net::{KvServer, PoolConfig, TcpClient};
pub use reactor::{ReactorHandle, ReactorSet, ReactorStatsSnapshot};
pub use stats::StoreStats;
pub use store::{EvictionPolicy, Store, StoreConfig};
