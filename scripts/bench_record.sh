#!/usr/bin/env bash
# Record the perf-acceptance benches to BENCH_pr*.json.
#
#   scripts/bench_record.sh
#
# BENCH_pr3.json — `fanout_record`: the concurrent fan-out speedup over
# gigabit-Ethernet-shaped in-process servers (same experiment as
# `crates/bench/benches/fanout.rs`). Bars: at 4 servers, parallel read
# bandwidth >= 2.5x sequential, parallel write bandwidth >= 2x
# sequential, and single-stripe sequential reads must spread their
# batches over every server (max/min <= 2).
#
# BENCH_pr4.json — `scaling_record`: evented-transport scaling over
# real-TCP bandwidth-capped shaped proxies. Bar: 8-server aggregate
# fan-out read and write throughput each >= 1.5x the 4-server figure.
#
# BENCH_pr5.json — `reactor_record`: shared per-mount reactor
# consolidation. Bars: a 16-server mount runs exactly 1 reactor thread
# (vs 16 standalone), cross-server completion batching factor > 1, and
# 8v4 shaped scaling holds PR 4's 1.5x floor on the shared loop.
#
# BENCH_pr6.json — `linerate_record`: line-rate efficiency of the
# finished reactor (timer wheel, in-loop connects, one-copy writes) at
# 16 bandwidth-capped servers, 1 vs 2 reactor threads. Bars: the better
# config moves >= 90% of the aggregate shaped cap in both directions,
# and the thread census reads exactly 1 and 2 loops.
#
# Each binary exits non-zero if a bar is missed, failing this script.
set -euo pipefail
cd "$(dirname "$0")/.."

out="BENCH_pr3.json"
echo "==> cargo run --release -p memfs-bench --bin fanout_record"
cargo run --release -p memfs-bench --bin fanout_record > "$out"
echo "==> wrote $out"
grep -o '"acceptance": .*' "$out"

out="BENCH_pr4.json"
echo "==> cargo run --release -p memfs-bench --bin scaling_record"
cargo run --release -p memfs-bench --bin scaling_record > "$out"
echo "==> wrote $out"
grep -o '"acceptance": .*' "$out"

out="BENCH_pr5.json"
echo "==> cargo run --release -p memfs-bench --bin reactor_record"
cargo run --release -p memfs-bench --bin reactor_record > "$out"
echo "==> wrote $out"
grep -o '"acceptance": .*' "$out"

out="BENCH_pr6.json"
echo "==> cargo run --release -p memfs-bench --bin linerate_record"
cargo run --release -p memfs-bench --bin linerate_record > "$out"
echo "==> wrote $out"
grep -o '"acceptance": .*' "$out"
