#!/usr/bin/env bash
# Record the concurrent fan-out speedup to BENCH_pr3.json.
#
#   scripts/bench_record.sh
#
# Runs the self-timed `fanout_record` binary (same experiment as
# `crates/bench/benches/fanout.rs`, gigabit-Ethernet-shaped in-process
# servers) and writes its JSON report to the repo root. The binary exits
# non-zero if any acceptance bar is missed, failing this script: at 4
# servers, parallel read bandwidth >= 2.5x sequential, parallel write
# bandwidth >= 2x sequential, and single-stripe sequential reads must
# spread their batches over every server (max/min <= 2).
set -euo pipefail
cd "$(dirname "$0")/.."

out="BENCH_pr3.json"
echo "==> cargo run --release -p memfs-bench --bin fanout_record"
cargo run --release -p memfs-bench --bin fanout_record > "$out"
echo "==> wrote $out"
grep -o '"acceptance": .*' "$out"
