#!/usr/bin/env bash
# Record the concurrent fan-out speedup to BENCH_pr2.json.
#
#   scripts/bench_record.sh
#
# Runs the self-timed `fanout_record` binary (same experiment as
# `crates/bench/benches/fanout.rs`, gigabit-Ethernet-shaped in-process
# servers) and writes its JSON report to the repo root. The binary exits
# non-zero if the acceptance bar — parallel read bandwidth >= 2.5x the
# sequential dispatcher at 4 servers — is missed, failing this script.
set -euo pipefail
cd "$(dirname "$0")/.."

out="BENCH_pr2.json"
echo "==> cargo run --release -p memfs-bench --bin fanout_record"
cargo run --release -p memfs-bench --bin fanout_record > "$out"
echo "==> wrote $out"
grep -o '"acceptance": .*' "$out"
