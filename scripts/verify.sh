#!/usr/bin/env bash
# Repo verification gate: build, tests, formatting, lints.
#
#   scripts/verify.sh            # tier-1 gate + fmt + clippy
#   scripts/verify.sh --clippy   # fast path: fmt + clippy only, no build/tests
#   scripts/verify.sh --full     # additionally run the full workspace test suite
#   scripts/verify.sh --threads  # additionally stress the concurrency tests
#   scripts/verify.sh --soak     # shaped-cluster suites, N random seeds
#
# Tier-1 (must stay green, see ROADMAP.md): release build + root-package
# tests. fmt/clippy keep the tree warning-free; clippy runs with -D warnings
# so new lints fail the gate instead of scrolling by.
#
# --threads repeats the fan-out/thread-pool suites with a high test-thread
# count so the per-server dispatcher, the write drain, and the prefetcher
# race against each other — the schedule-dependent bugs (lost wakeups,
# in-flight gauges that never settle, out-of-order reassembly) that a
# single quiet run can miss. It also runs the (otherwise `--ignored`)
# shaped-cluster scaling regression: 8 bandwidth-capped servers must
# deliver >= 1.5x the 4-server aggregate batched throughput, plus the
# shared-reactor thread census and stall/kill isolation suites.
#
# --soak loops the shaped-cluster transport suites (failure injection,
# shaped e2e, scaling) with a randomized MEMFS_SHAPE_SEED per iteration
# (SOAK_ITERS, default 5). Each iteration prints its seed; export
# MEMFS_SHAPE_SEED to replay a failure deterministically.
set -euo pipefail
cd "$(dirname "$0")/.."

# Fast path: lints across every target (lib, tests, benches, bins)
# without paying for the release build or the test run. Keeps the
# edit-lint loop tight; the default gate still runs everything.
if [[ "${1:-}" == "--clippy" ]]; then
    echo "==> cargo fmt --check"
    cargo fmt --all -- --check
    echo "==> cargo clippy --workspace --all-targets -- -D warnings"
    cargo clippy --workspace --all-targets -- -D warnings
    echo "verify: OK (clippy fast path)"
    exit 0
fi

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q (tier-1)"
cargo test -q

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy --workspace -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

for arg in "$@"; do
    case "$arg" in
    --full)
        echo "==> cargo test --workspace -q (full)"
        cargo test --workspace -q
        ;;
    --threads)
        echo "==> stressed concurrency pass (RUST_TEST_THREADS=16, 5 rounds)"
        for round in 1 2 3 4 5; do
            echo "  -- round $round"
            RUST_TEST_THREADS=16 cargo test -q -p memfs-core --test fanout
            # engine_sharing counts process-wide threads: own binary, one test.
            cargo test -q -p memfs-core --test engine_sharing
            RUST_TEST_THREADS=16 cargo test -q -p memfs-core --lib -- \
                threadpool:: pool:: prefetch:: bufwrite::
            # Error-injection regressions: prefetch wedge recovery,
            # concurrent-miss coalescing, zombie unlink.
            RUST_TEST_THREADS=16 cargo test -q -p memfs-core --lib -- \
                prefetch_recovers_after_transient_errors \
                concurrent_misses_coalesce_into_one_fetch \
                cache_never_exceeds_capacity_under_random_ops \
                unlink_open_file
            # reactor_threads counts process-wide threads: own binary,
            # one test, no parallel siblings.
            cargo test -q --test reactor_threads
            RUST_TEST_THREADS=16 cargo test -q --test shared_reactor
        done
        echo "==> shaped-cluster scaling regression (8 vs 4 servers)"
        cargo test -q --release --test shaped_scaling -- --ignored --nocapture
        ;;
    --soak)
        iters="${SOAK_ITERS:-5}"
        echo "==> shaped-cluster soak ($iters iterations, randomized seeds)"
        for i in $(seq 1 "$iters"); do
            seed="${MEMFS_SHAPE_SEED:-$(od -An -N8 -tu8 /dev/urandom | tr -d ' ')}"
            echo "  -- iteration $i (MEMFS_SHAPE_SEED=$seed)"
            MEMFS_SHAPE_SEED="$seed" cargo test -q -p memfs-memkv --test tcp_failures
            MEMFS_SHAPE_SEED="$seed" cargo test -q --test tcp_e2e
            MEMFS_SHAPE_SEED="$seed" cargo test -q --test shared_reactor
            MEMFS_SHAPE_SEED="$seed" cargo test -q --release --test shaped_scaling -- --ignored
        done
        ;;
    *)
        echo "unknown option: $arg" >&2
        exit 2
        ;;
    esac
done

echo "verify: OK"
