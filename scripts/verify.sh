#!/usr/bin/env bash
# Repo verification gate: build, tests, formatting, lints.
#
#   scripts/verify.sh          # tier-1 gate + fmt + clippy
#   scripts/verify.sh --full   # additionally run the full workspace test suite
#
# Tier-1 (must stay green, see ROADMAP.md): release build + root-package
# tests. fmt/clippy keep the tree warning-free; clippy runs with -D warnings
# so new lints fail the gate instead of scrolling by.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q (tier-1)"
cargo test -q

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy --workspace -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

if [[ "${1:-}" == "--full" ]]; then
    echo "==> cargo test --workspace -q (full)"
    cargo test --workspace -q
fi

echo "verify: OK"
