//! # MemFS — facade crate
//!
//! Re-exports the full MemFS reproduction workspace behind one dependency:
//! the MemFS file system itself ([`memfs_core`]), the memcached-style
//! storage engine ([`memkv`]), key distribution ([`hashring`]), the AMFS
//! locality-based baseline ([`amfs`]), and the simulation substrate used to
//! reproduce the paper's cluster/cloud experiments ([`simcore`], [`netsim`],
//! [`cluster`], [`mtc`]).
//!
//! See the repository README for a quickstart, `DESIGN.md` for the system
//! inventory, and `EXPERIMENTS.md` for the paper-versus-measured record.

pub use memfs_amfs as amfs;
pub use memfs_cluster as cluster;
pub use memfs_core;
pub use memfs_hashring as hashring;
pub use memfs_memkv as memkv;
pub use memfs_mtc as mtc;
pub use memfs_netsim as netsim;
pub use memfs_simcore as simcore;

/// Commonly used types, re-exported for examples and downstream users.
pub mod prelude {
    pub use memfs_core::{DirEntry, EntryKind, FileStat, MemFs, MemFsConfig, MemFsError};
    pub use memfs_hashring::{Distributor, HashScheme};
    pub use memfs_memkv::{KvClient, LocalClient, Store, StoreConfig};
}
