//! `memfsd` — a MemFS storage server daemon.
//!
//! Serves one node's DRAM over the memcached text protocol. Start one per
//! storage node, then point `memfs-cli` (or any `MemFs` mount) at the full
//! server list.
//!
//! ```text
//! memfsd --listen 0.0.0.0:11211 --memory-gb 16
//! ```

use std::sync::Arc;

use memfs::memkv::net::KvServer;
use memfs::memkv::{EvictionPolicy, Store, StoreConfig};

fn usage() -> ! {
    eprintln!(
        "memfsd — MemFS storage server (memcached text protocol)\n\n\
         usage: memfsd [--listen ADDR] [--memory-gb N] [--lru]\n\n\
         options:\n\
           --listen ADDR   bind address (default 127.0.0.1:11211)\n\
           --memory-gb N   memory budget in GiB (default 4)\n\
           --lru           evict least-recently-used items when full\n\
                           (default: refuse writes — the runtime-FS mode)"
    );
    std::process::exit(2);
}

fn main() {
    let mut listen = "127.0.0.1:11211".to_string();
    let mut memory_gb: u64 = 4;
    let mut eviction = EvictionPolicy::Error;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--listen" => listen = args.next().unwrap_or_else(|| usage()),
            "--memory-gb" => {
                memory_gb = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage())
            }
            "--lru" => eviction = EvictionPolicy::Lru,
            _ => usage(),
        }
    }

    let store = Arc::new(Store::new(StoreConfig {
        memory_budget: memory_gb << 30,
        eviction,
        ..StoreConfig::default()
    }));
    let server = match KvServer::spawn(Arc::clone(&store), listen.as_str()) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("memfsd: cannot bind {listen}: {e}");
            std::process::exit(1);
        }
    };
    println!(
        "memfsd listening on {} ({} GiB budget, {:?} policy)",
        server.addr(),
        memory_gb,
        eviction
    );

    // Periodic one-line status until killed.
    loop {
        std::thread::sleep(std::time::Duration::from_secs(30));
        let snap = store.stats().snapshot();
        println!(
            "items={} bytes={} sets={} gets={} hit_rate={:.2}",
            snap.item_count,
            snap.bytes_used,
            snap.set_ops,
            snap.get_ops,
            snap.hit_rate()
        );
    }
}
